// checkpoint_nvm: NVM as fast checkpoint memory.
//
// The paper's related work (Kannan et al., IPDPS'13) motivates NVM as
// checkpoint storage. This example quantifies that scenario with the
// library's device models: a BT solver checkpoints its full working set
// every epoch, either to a PCM/STT-RAM/FeRAM device or to a disk-like
// target, and the model reports the checkpoint time and energy overhead on
// top of the base execution for a sweep of checkpoint frequencies.
#include <iostream>
#include <vector>

#include "hms/common/table.hpp"
#include "hms/designs/design.hpp"
#include "hms/mem/memory_device.hpp"
#include "hms/model/amat.hpp"
#include "hms/model/energy.hpp"
#include "hms/model/report.hpp"
#include "hms/sim/simulator.hpp"
#include "hms/workloads/registry.hpp"

int main() {
  using namespace hms;

  designs::DesignFactory factory(64);
  workloads::WorkloadParams params{(1815ull << 20) / 64, 42, 1};

  // Base run: BT through the reference system.
  const auto capture = sim::capture_front("BT", params, factory);
  auto base_back = factory.base_back(capture.footprint_bytes);
  const auto base_profile = sim::replay_back(capture, *base_back);
  const auto anchor =
      model::make_anchor(base_profile, capture.info.memory_bound_fraction);
  const auto base =
      model::evaluate("base", "BT", base_profile, anchor);

  std::cout << "BT working set " << fmt_bytes(capture.footprint_bytes)
            << ", base runtime "
            << fmt_fixed(base.runtime.nanoseconds() / 1e6, 2)
            << " ms (modeled), base energy "
            << fmt_fixed(base.total_energy().millijoules(), 2) << " mJ\n\n";

  // Checkpoint devices: sequential bulk write of the working set. The
  // "disk" row uses flash-storage-class figures (the pre-NVM baseline).
  struct Target {
    const char* name;
    double write_gbs;       // sustained sequential write bandwidth
    double write_pj_per_bit;
  };
  const Target targets[] = {
      {"PCM", 0.5, 210.3},
      {"STT-RAM", 4.0, 67.7},
      {"FeRAM", 1.6, 210.0},
      {"flash SSD", 0.2, 30.0},
  };

  TextTable table({"target", "checkpoints", "ckpt time (ms)",
                   "runtime overhead", "ckpt energy (mJ)",
                   "energy overhead"});
  const double bytes = static_cast<double>(capture.footprint_bytes);
  for (const auto& target : targets) {
    for (const int count : {1, 4, 16}) {
      const double total_bytes = bytes * count;
      const Time ckpt_time =
          Time::from_ns(total_bytes / target.write_gbs);  // GB/s = B/ns
      const Energy ckpt_energy =
          Energy::from_pj(total_bytes * 8.0 * target.write_pj_per_bit);
      table.add_row(
          {target.name, std::to_string(count),
           fmt_fixed(ckpt_time.nanoseconds() / 1e6, 2),
           fmt_fixed(ckpt_time / base.runtime, 3),
           fmt_fixed(ckpt_energy.millijoules(), 2),
           fmt_fixed(ckpt_energy.picojoules() /
                         base.total_energy().picojoules(),
                     3)});
    }
  }
  table.render(std::cout);
  std::cout << "\n(STT-RAM's balanced write path makes it the natural "
               "checkpoint target: PCM and flash pay heavily in either "
               "energy or bandwidth)\n";
  return 0;
}
