// design_explorer: command-line sweep over designs, configurations, NVM
// technologies, and workloads, with optional CSV output — the "what if"
// tool for exploring the paper's design space beyond its published points.
//
// Usage:
//   design_explorer [--workload NAME]... [--design base|4lc|nmm|ndm|4lcnvm]
//                   [--nvm PCM|STTRAM|FeRAM] [--l4 eDRAM|HMC]
//                   [--scale N] [--iterations N] [--seed N] [--csv]
//
// Examples:
//   design_explorer --design nmm --nvm STTRAM --workload Graph500
//   design_explorer --design 4lc --l4 HMC --csv
#include <iostream>
#include <string>
#include <vector>

#include "hms/common/csv.hpp"
#include "hms/common/error.hpp"
#include "hms/common/string_util.hpp"
#include "hms/common/table.hpp"
#include "hms/designs/configs.hpp"
#include "hms/sim/experiment.hpp"
#include "hms/workloads/registry.hpp"

namespace {

using namespace hms;

struct Options {
  std::vector<std::string> workloads;
  std::string design = "nmm";
  mem::Technology nvm = mem::Technology::PCM;
  mem::Technology l4 = mem::Technology::eDRAM;
  std::uint64_t scale = 64;
  std::uint32_t iterations = 1;
  std::uint64_t seed = 42;
  bool csv = false;
};

Options parse(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      check(i + 1 < argc, "missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--workload") {
      opts.workloads.push_back(value());
    } else if (arg == "--design") {
      opts.design = to_lower(value());
    } else if (arg == "--nvm") {
      opts.nvm = mem::technology_from_string(value());
    } else if (arg == "--l4") {
      opts.l4 = mem::technology_from_string(value());
    } else if (arg == "--scale") {
      opts.scale = std::stoull(value());
    } else if (arg == "--iterations") {
      opts.iterations = static_cast<std::uint32_t>(std::stoul(value()));
    } else if (arg == "--seed") {
      opts.seed = std::stoull(value());
    } else if (arg == "--csv") {
      opts.csv = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: design_explorer [--workload NAME]... "
                   "[--design base|4lc|nmm|ndm|4lcnvm] [--nvm TECH] "
                   "[--l4 eDRAM|HMC] [--scale N] [--iterations N] "
                   "[--seed N] [--csv]\n";
      std::exit(0);
    } else {
      throw Error("unknown argument: " + arg + " (try --help)");
    }
  }
  return opts;
}

void emit(const Options& opts, const std::vector<sim::SuiteResult>& results) {
  if (opts.csv) {
    CsvWriter csv(std::cout);
    csv.header({"design", "config", "workload", "norm_runtime",
                "norm_dynamic", "norm_static", "norm_energy", "norm_edp"});
    for (const auto& r : results) {
      for (const auto& wr : r.per_workload) {
        csv.row({opts.design, r.config_name, wr.report.workload,
                 fmt_fixed(wr.normalized.runtime, 6),
                 fmt_fixed(wr.normalized.dynamic, 6),
                 fmt_fixed(wr.normalized.leakage, 6),
                 fmt_fixed(wr.normalized.total_energy, 6),
                 fmt_fixed(wr.normalized.edp, 6)});
      }
    }
    return;
  }
  TextTable table({"config", "norm-runtime", "norm-energy", "norm-EDP"});
  for (const auto& r : results) {
    table.add_row({r.config_name, fmt_fixed(r.runtime),
                   fmt_fixed(r.total_energy), fmt_fixed(r.edp)});
  }
  table.render(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opts = parse(argc, argv);

    sim::ExperimentConfig cfg;
    cfg.scale_divisor = opts.scale;
    cfg.footprint_divisor = opts.scale;
    cfg.seed = opts.seed;
    cfg.iterations = opts.iterations;
    cfg.suite = opts.workloads;  // empty -> paper suite
    sim::ExperimentRunner runner(cfg);

    if (!opts.csv) {
      std::cout << "design=" << opts.design
                << " nvm=" << mem::to_string(opts.nvm)
                << " l4=" << mem::to_string(opts.l4)
                << " scale=1/" << opts.scale << "\n\n";
    }

    if (opts.design == "base") {
      TextTable table({"workload", "AMAT (ns)", "runtime (ms)",
                       "energy (mJ)"});
      for (const auto& w : runner.suite()) {
        const auto& base = runner.base_report(w);
        table.add_row({w, fmt_fixed(base.amat.nanoseconds(), 3),
                       fmt_fixed(base.runtime.nanoseconds() / 1e6, 3),
                       fmt_fixed(base.total_energy().millijoules(), 3)});
      }
      table.render(std::cout);
    } else if (opts.design == "4lc") {
      emit(opts, runner.four_lc_sweep(opts.l4, designs::eh_configs()));
    } else if (opts.design == "nmm") {
      emit(opts, runner.nmm_sweep(opts.nvm, designs::n_configs()));
    } else if (opts.design == "4lcnvm") {
      emit(opts, runner.four_lc_nvm_sweep(opts.l4, opts.nvm,
                                          designs::eh_configs()));
    } else if (opts.design == "ndm") {
      const auto results = runner.ndm_oracle(opts.nvm);
      TextTable table({"workload", "placement", "norm-runtime",
                       "norm-energy", "norm-EDP"});
      for (const auto& ndm : results) {
        table.add_row({ndm.workload, ndm.chosen.name,
                       fmt_fixed(ndm.result.normalized.runtime),
                       fmt_fixed(ndm.result.normalized.total_energy),
                       fmt_fixed(ndm.result.normalized.edp)});
      }
      table.render(std::cout);
    } else {
      throw Error("unknown design: " + opts.design);
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
