// genomics_capacity: the capacity story on a genomics pipeline.
//
// Velvet-style assembly (the paper's motivating "memory-intensive genomics
// application") holds a k-mer table far larger than per-core DRAM. This
// example sweeps the NMM design's DRAM-cache size (N1 -> N3) and NVM
// technology, showing how much DRAM can be removed before the runtime
// penalty bites — the question the NMM design exists to answer.
#include <iostream>

#include "hms/common/table.hpp"
#include "hms/designs/configs.hpp"
#include "hms/sim/experiment.hpp"

int main() {
  using namespace hms;

  sim::ExperimentConfig cfg;
  cfg.scale_divisor = 64;
  cfg.footprint_divisor = 64;
  cfg.suite = {"Velvet"};
  sim::ExperimentRunner runner(cfg);

  const auto& capture = runner.front("Velvet");
  std::cout << "Velvet assembly: footprint "
            << fmt_bytes(capture.footprint_bytes) << " ("
            << capture.front_profile.references << " references)\n"
            << "ranges:";
  for (const auto& r : capture.ranges) {
    std::cout << " " << r.name << "=" << fmt_bytes(r.length);
  }
  std::cout << "\n\n";

  for (const auto nvm : {mem::Technology::PCM, mem::Technology::STTRAM,
                         mem::Technology::FeRAM}) {
    std::cout << "NMM with " << mem::to_string(nvm)
              << " main memory, DRAM cache shrinking 512->128 MB:\n";
    TextTable table({"config", "DRAM cache", "page", "norm-runtime",
                     "norm-energy", "norm-EDP"});
    for (const char* name : {"N3", "N2", "N1"}) {
      const auto& n = designs::n_config(name);
      const auto results = runner.nmm_sweep(nvm, {n});
      table.add_row({n.name, fmt_bytes(n.dram_capacity_bytes),
                     fmt_bytes(n.page_bytes),
                     fmt_fixed(results[0].runtime),
                     fmt_fixed(results[0].total_energy),
                     fmt_fixed(results[0].edp)});
    }
    table.render(std::cout);
    std::cout << "\n";
  }

  std::cout << "Reading: smaller DRAM caches cut static energy but raise "
               "NVM traffic; the sweet spot depends on the technology's "
               "write cost (PCM/FeRAM write energy is ~20x DRAM, STT-RAM "
               "is balanced).\n";
  return 0;
}
