// Quickstart: simulate one workload on the base system and on an NMM
// design (PCM main memory behind a 512 MB DRAM cache), and print the
// paper-style normalized comparison.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "hms/common/table.hpp"
#include "hms/designs/configs.hpp"
#include "hms/designs/design.hpp"
#include "hms/model/report.hpp"
#include "hms/sim/simulator.hpp"
#include "hms/workloads/registry.hpp"

int main() {
  using namespace hms;

  // 1. Scale everything down 64x (capacities AND footprint) so the run
  //    takes seconds while preserving the footprint/capacity ratios.
  designs::DesignFactory factory(/*scale_divisor=*/64);

  // 2. Instantiate a workload: NPB CG with a 24 MiB footprint
  //    (= its 1.5 GB per-core Table 4 footprint / 64).
  workloads::WorkloadParams params;
  params.footprint_bytes = (1536ull << 20) / 64;
  params.seed = 42;
  params.iterations = 2;
  auto cg = workloads::make_workload("CG", params);
  std::cout << "workload: " << cg->info().name << " ("
            << cg->info().suite << "), footprint "
            << fmt_bytes(cg->footprint_bytes()) << "\n";

  // 3. Run it ONCE through the shared L1-L3 front, capturing the residual
  //    (post-L3) stream. This is the paper's online simulation: the full
  //    address stream is consumed as the kernel executes.
  const auto capture = sim::capture_front("CG", params, factory);
  std::cout << "references: " << capture.front_profile.references
            << ", residual stream: " << capture.residual.size()
            << " transactions\n\n";

  // 4. Replay the residual into the base design's memory and into the NMM
  //    design's back (DRAM page cache + PCM).
  auto base_back = factory.base_back(capture.footprint_bytes);
  const auto base_profile = sim::replay_back(capture, *base_back);

  auto nmm_back = factory.nvm_main_memory_back(
      designs::n_config("N6"), mem::Technology::PCM,
      capture.footprint_bytes);
  const auto nmm_profile = sim::replay_back(capture, *nmm_back);

  // 5. Evaluate both with the paper's models (Eqs. 1-4) and normalize.
  const auto anchor =
      model::make_anchor(base_profile, capture.info.memory_bound_fraction);
  const auto base = model::evaluate("base", "CG", base_profile, anchor);
  const auto nmm = model::evaluate("NMM-N6", "CG", nmm_profile, anchor);
  const auto n = model::normalize(nmm, base);

  std::cout << "base:   AMAT " << fmt_fixed(base.amat.nanoseconds(), 3)
            << " ns, energy "
            << fmt_fixed(base.total_energy().millijoules(), 3) << " mJ\n";
  std::cout << "NMM-N6: AMAT " << fmt_fixed(nmm.amat.nanoseconds(), 3)
            << " ns, energy "
            << fmt_fixed(nmm.total_energy().millijoules(), 3) << " mJ\n\n";
  std::cout << "normalized to base -> runtime " << fmt_fixed(n.runtime)
            << "x, dynamic energy " << fmt_fixed(n.dynamic)
            << "x, static energy " << fmt_fixed(n.leakage)
            << "x, total energy " << fmt_fixed(n.total_energy)
            << "x, EDP " << fmt_fixed(n.edp) << "x\n";
  std::cout << "\n(the paper's NMM story: a small runtime overhead buys a "
               "large static-energy saving from shrinking DRAM)\n";
  return 0;
}
