// graph_analytics: the data-intensive scenario from the paper's
// introduction — a Graph500-style BFS whose working set dwarfs per-core
// DRAM. Compares all four hybrid designs (plus the base system) on the
// same captured stream and reports where each wins.
#include <iostream>

#include "hms/common/table.hpp"
#include "hms/designs/configs.hpp"
#include "hms/designs/design.hpp"
#include "hms/model/report.hpp"
#include "hms/sim/experiment.hpp"

int main() {
  using namespace hms;

  sim::ExperimentConfig cfg;
  cfg.scale_divisor = 64;
  cfg.footprint_divisor = 64;
  cfg.iterations = 2;  // two BFS roots
  cfg.suite = {"Graph500"};
  sim::ExperimentRunner runner(cfg);

  const auto& capture = runner.front("Graph500");
  std::cout << "Graph500 BFS: footprint "
            << fmt_bytes(capture.footprint_bytes) << ", "
            << capture.front_profile.references << " references, "
            << capture.residual.size() << " post-L3 transactions\n\n";

  const auto& factory = runner.factory();
  const auto fp = capture.footprint_bytes;

  TextTable table({"design", "configuration", "norm-runtime",
                   "norm-energy", "norm-EDP"});
  auto add = [&](const std::string& design, const std::string& config,
                 cache::MemoryHierarchy& back) {
    const auto result = runner.evaluate_back(design, "Graph500", back);
    table.add_row({design, config, fmt_fixed(result.normalized.runtime),
                   fmt_fixed(result.normalized.total_energy),
                   fmt_fixed(result.normalized.edp)});
  };

  {
    auto back = factory.base_back(fp);
    add("base", "L1-L3 + DRAM", *back);
  }
  {
    auto back = factory.four_level_cache_back(designs::eh_config("EH1"),
                                              mem::Technology::eDRAM, fp);
    add("4LC", "EH1 eDRAM L4 + DRAM", *back);
  }
  {
    auto back = factory.nvm_main_memory_back(designs::n_config("N6"),
                                             mem::Technology::PCM, fp);
    add("NMM", "N6 DRAM$ + PCM", *back);
  }
  {
    auto back = factory.four_level_cache_nvm_back(
        designs::eh_config("EH1"), mem::Technology::eDRAM,
        mem::Technology::PCM, fp);
    add("4LCNVM", "EH1 eDRAM L4 + PCM", *back);
  }
  {
    const auto ndm = runner.ndm_oracle(mem::Technology::PCM);
    table.add_row({"NDM", "oracle: " + ndm[0].chosen.name,
                   fmt_fixed(ndm[0].result.normalized.runtime),
                   fmt_fixed(ndm[0].result.normalized.total_energy),
                   fmt_fixed(ndm[0].result.normalized.edp)});
  }
  table.render(std::cout);

  std::cout << "\nReading: for an irregular, large-footprint workload the "
               "NMM design wins — the DRAM page cache absorbs the graph's "
               "reuse while PCM supplies capacity without refresh power. "
               "The L4-only designs pay NVM latency on every L3 miss, and "
               "the static NDM split cannot separate hot from cold inside "
               "the adjacency structure.\n";
  return 0;
}
