// multicore_contention: shared-level pressure in a many-core node.
//
// The paper evaluates capacity *per core* and motivates NVM with future
// many-core systems where per-core DRAM shrinks. This example assembles a
// multi-core simulation from the library's pieces: each core runs its own
// kernel behind private L1/L2 caches, the post-L2 residual streams are
// interleaved round-robin into disjoint address regions, and the merged
// stream drives a shared L3 plus main memory. Comparing 1, 2, and 4 cores
// shows how contention inflates the shared L3 miss rate and how an
// NMM-style memory holds up under it.
#include <iostream>
#include <memory>
#include <vector>

#include "hms/common/table.hpp"
#include "hms/designs/configs.hpp"
#include "hms/designs/design.hpp"
#include "hms/model/report.hpp"
#include "hms/trace/interleave.hpp"
#include "hms/trace/trace_buffer.hpp"
#include "hms/workloads/registry.hpp"

namespace {

using namespace hms;

/// Private L1+L2 front for one core; returns its post-L2 residual stream.
trace::TraceBuffer core_front(const designs::DesignFactory& factory,
                              const std::string& workload,
                              std::uint64_t footprint, std::uint64_t seed,
                              Count& references) {
  trace::TraceBuffer residual;
  auto levels = factory.front_levels();
  levels.pop_back();  // drop L3: it is shared, simulated downstream
  cache::MemoryHierarchy front(
      std::move(levels), std::make_unique<cache::CaptureBackend>(residual));
  auto w = workloads::make_workload(
      workload, workloads::WorkloadParams{footprint, seed, 1});
  w->run(front);
  references += front.references();
  return residual;
}

/// Shared L3 + main memory; returns (L3 miss rate, AMAT proxy in ns/ref).
struct SharedResult {
  double l3_miss_rate = 0.0;
  double memory_ns_per_ref = 0.0;
};

SharedResult shared_back(const designs::DesignFactory& factory,
                         const trace::TraceBuffer& merged, Count references,
                         std::uint64_t total_footprint, bool nmm) {
  const auto& registry = mem::TechnologyRegistry::table1();
  std::vector<cache::CacheLevelSpec> levels;
  levels.push_back(factory.front_levels().back());  // the shared L3

  if (nmm) {
    // N6-style DRAM page cache in front of the NVM (composed by hand to
    // show the public API; the DesignFactory does the same internally).
    cache::CacheLevelSpec dram_cache;
    dram_cache.cache.name = "DRAM$";
    dram_cache.cache.capacity_bytes =
        (512ull << 20) / factory.scale_divisor();
    dram_cache.cache.modeled_capacity_bytes = 512ull << 20;
    dram_cache.cache.line_bytes = 512;
    dram_cache.cache.associativity = 16;
    dram_cache.tech = registry.get(mem::Technology::DRAM);
    levels.push_back(dram_cache);
  }

  mem::MemoryDeviceConfig device;
  device.name = nmm ? "PCM" : "DRAM";
  device.technology = registry.get(nmm ? mem::Technology::PCM
                                       : mem::Technology::DRAM);
  device.capacity_bytes = total_footprint;
  device.modeled_capacity_bytes = total_footprint * factory.scale_divisor();
  device.line_bytes = 256;

  cache::MemoryHierarchy back(
      std::move(levels),
      std::make_unique<cache::SingleMemoryBackend>(device));
  merged.replay(back);
  const auto profile = back.profile();
  SharedResult result;
  result.l3_miss_rate = profile.levels[0].cache_stats.miss_rate();
  Time total;
  for (const auto& level : profile.levels) {
    total += level.tech.read_latency * static_cast<double>(level.loads);
    total += level.tech.write_latency * static_cast<double>(level.stores);
  }
  result.memory_ns_per_ref =
      total.nanoseconds() / static_cast<double>(references);
  return result;
}

}  // namespace

int main() {
  designs::DesignFactory factory(64);
  const std::uint64_t per_core_fp = (1536ull << 20) / 64;  // CG, Table 4

  std::cout << "Shared-level contention: CG on 1/2/4 cores, private L1+L2, "
               "shared L3 + memory\n\n";
  TextTable table({"cores", "memory", "shared-L3 miss rate",
                   "shared ns/ref"});
  for (unsigned cores : {1u, 2u, 4u}) {
    Count references = 0;
    std::vector<trace::TraceBuffer> residuals;
    residuals.reserve(cores);
    for (unsigned c = 0; c < cores; ++c) {
      residuals.push_back(
          core_front(factory, "CG", per_core_fp, 42 + c, references));
    }
    std::vector<const trace::TraceBuffer*> ptrs;
    for (const auto& r : residuals) ptrs.push_back(&r);
    trace::TraceBuffer merged;
    trace::interleave(ptrs, merged,
                      {.burst = 4, .region_stride = 1ull << 32});

    for (const bool nmm : {false, true}) {
      const auto result = shared_back(factory, merged, references,
                                      per_core_fp * cores, nmm);
      table.add_row({std::to_string(cores), nmm ? "NMM-N6/PCM" : "DRAM",
                     fmt_fixed(result.l3_miss_rate, 4),
                     fmt_fixed(result.memory_ns_per_ref, 3)});
    }
  }
  table.render(std::cout);
  std::cout << "\n(more cores -> the shared L3 thrashes; the DRAM cache of "
               "the NMM design absorbs part of the extra misses before the "
               "slow NVM)\n";
  return 0;
}
