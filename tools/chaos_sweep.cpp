// chaos_sweep: kill/corrupt/resume soak harness for unattended sweeps.
//
// One binary, two roles:
//
//   chaos_sweep --child
//     Runs a fixed 3x2 NMM sweep grid (configs N1/N3/N6 x workloads
//     StreamTriad/CG, scale divisor 512) against the checkpoint file named
//     by CHAOS_CHECKPOINT, honoring HMS_REPLAY_MODE / HMS_THREADS, and on
//     success writes every checkpoint-persisted field of the SuiteResult
//     tables — config means, partial flags, failures, per-workload
//     normalized values — to CHAOS_TABLE as exact f64 bit patterns in hex.
//     If CHAOS_SELF_KILL_MS is set, a detached thread hard-kills the
//     process (_exit, no unwinding, no flushing) after that many
//     milliseconds, modeling an OOM kill / power cut at an arbitrary
//     instant. SIGTERM takes the cooperative path (ScopedSignalHandlers)
//     and exits with kExitInterrupted.
//
//   chaos_sweep [cycles-per-mode]   (default 20)
//     The driver. For each replay mode (chunk, config, shard): records a
//     clean reference run, then loops
//       kill the child mid-run (hard kill at a random instant, or SIGTERM)
//       -> maybe corrupt the checkpoint (flip a byte / truncate / append
//          junk)
//       -> maybe damage the persistent trace store (flip / truncate /
//          delete / append junk on a random .hmst entry)
//       -> rerun the child to completion
//     and asserts the resumed table is byte-identical to the reference.
//     Every child runs against one shared HMS_TRACE_CACHE directory, so
//     the soak also covers the store's full life cycle: the reference run
//     cold-fills it, resumes warm-load from it, kills can tear its tmp
//     files, and a damaged entry must read as a miss and recapture —
//     never as wrong bits in a resumed table. Any divergence, or a resume
//     that cannot reach a clean exit, fails the whole soak with exit 1.
//     CHAOS_SEED seeds the (deterministic) decision stream.
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <bit>
#include <chrono>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "hms/common/cancel.hpp"
#include "hms/common/env.hpp"
#include "hms/common/error.hpp"
#include "hms/designs/configs.hpp"
#include "hms/sim/experiment.hpp"

namespace {

using namespace hms;

// ---------------------------------------------------------------------------
// Child role
// ---------------------------------------------------------------------------

std::string hex64(double value) {
  std::ostringstream os;
  os << std::hex << std::setw(16) << std::setfill('0')
     << std::bit_cast<std::uint64_t>(value);
  return os.str();
}

/// Serializes exactly the fields a checkpoint round-trip preserves (see
/// sim/checkpoint.hpp): a resumed sweep restores config means, failures,
/// and per-workload normalized values, so those are what "bit-identical
/// across kill/resume" can and must mean.
std::string render_table(const std::vector<sim::SuiteResult>& results) {
  std::ostringstream os;
  for (const auto& r : results) {
    os << r.config_name << ' ' << (r.partial ? 1 : 0) << ' '
       << hex64(r.runtime) << ' ' << hex64(r.dynamic) << ' '
       << hex64(r.leakage) << ' ' << hex64(r.total_energy) << ' '
       << hex64(r.edp) << '\n';
    for (const auto& f : r.failures) {
      os << "  fail " << f.workload << ' ' << f.error << '\n';
    }
    for (const auto& wr : r.per_workload) {
      os << "  wl " << wr.report.workload << ' '
         << hex64(wr.normalized.runtime) << ' ' << hex64(wr.normalized.dynamic)
         << ' ' << hex64(wr.normalized.leakage) << ' '
         << hex64(wr.normalized.total_energy) << ' '
         << hex64(wr.normalized.edp) << '\n';
    }
  }
  return os.str();
}

int run_child() {
  const ScopedSignalHandlers handlers;
  if (const std::uint64_t kill_ms = env_u64("CHAOS_SELF_KILL_MS", 0);
      kill_ms != 0) {
    std::thread([kill_ms] {
      std::this_thread::sleep_for(std::chrono::milliseconds(kill_ms));
      _exit(137);  // hard kill: no unwinding, no stream flush, no fsync
    }).detach();
  }
  try {
    sim::ExperimentConfig cfg;
    cfg.scale_divisor = 512;
    cfg.footprint_divisor = 512;
    cfg.suite = {"StreamTriad", "CG"};
    cfg.threads = static_cast<unsigned>(env_u64("HMS_THREADS", 2));
    cfg.checkpoint_path = env_string("CHAOS_CHECKPOINT", "");
    check_config(!cfg.checkpoint_path.empty(),
                 "chaos_sweep --child requires CHAOS_CHECKPOINT");
    const std::string table_path = env_string("CHAOS_TABLE", "");
    check_config(!table_path.empty(),
                 "chaos_sweep --child requires CHAOS_TABLE");

    sim::ExperimentRunner runner(cfg);
    const std::vector<designs::NConfig> grid = {designs::n_config("N1"),
                                                designs::n_config("N3"),
                                                designs::n_config("N6")};
    const auto results = runner.nmm_sweep(mem::Technology::PCM, grid);

    std::ofstream out(table_path, std::ios::trunc);
    check(static_cast<bool>(out), "chaos_sweep: cannot write " + table_path);
    out << render_table(results);
    out.flush();
    check(static_cast<bool>(out), "chaos_sweep: short write " + table_path);
    for (const auto& r : results) {
      if (r.partial) return kExitDegraded;
    }
    return kExitOk;
  } catch (const CancelledError& e) {
    if (e.kind() == CancelKind::interrupt) {
      std::cerr << "chaos child: interrupted (" << e.what() << ")\n";
      return kExitInterrupted;
    }
    std::cerr << "chaos child failed: " << e.what() << "\n";
    return kExitError;
  } catch (const std::exception& e) {
    std::cerr << "chaos child failed: " << e.what() << "\n";
    return kExitError;
  }
}

// ---------------------------------------------------------------------------
// Driver role
// ---------------------------------------------------------------------------

/// SplitMix64: deterministic decision stream for kill instants and
/// corruption choices, reproducible from CHAOS_SEED.
struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t bound) {
    return bound == 0 ? 0 : next() % bound;
  }
};

pid_t spawn_child(const std::string& exe) {
  const pid_t pid = fork();
  if (pid == 0) {
    execl(exe.c_str(), exe.c_str(), "--child",
          static_cast<char*>(nullptr));
    _exit(127);
  }
  return pid;
}

int wait_status(pid_t pid) {
  int status = 0;
  while (waitpid(pid, &status, 0) < 0) {
    if (errno != EINTR) {
      std::cerr << "chaos driver: waitpid failed: " << std::strerror(errno)
                << "\n";
      return -1;
    }
  }
  return status;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Corrupts the checkpoint in one of three ways; returns a description
/// (or "none" when the file is too small to corrupt meaningfully).
std::string corrupt_checkpoint(const std::string& path, Rng& rng) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec || size == 0) return "none";
  switch (rng.below(3)) {
    case 0: {  // flip one bit-pattern byte anywhere in the file
      std::fstream f(path,
                     std::ios::in | std::ios::out | std::ios::binary);
      const auto offset =
          static_cast<std::streamoff>(rng.below(size));
      f.seekg(offset);
      char byte = 0;
      f.get(byte);
      byte = static_cast<char>(
          byte ^ static_cast<char>(1u << rng.below(8)));
      f.seekp(offset);
      f.put(byte);
      return "flip@" + std::to_string(offset);
    }
    case 1: {  // tear the tail off, as a mid-write crash would
      const auto keep = rng.below(size);
      std::filesystem::resize_file(path, keep, ec);
      return "truncate->" + std::to_string(keep);
    }
    default: {  // append junk past the last record
      std::ofstream f(path, std::ios::app | std::ios::binary);
      const auto n = 1 + rng.below(64);
      for (std::uint64_t i = 0; i < n; ++i) {
        f.put(static_cast<char>(rng.below(256)));
      }
      return "append+" + std::to_string(n);
    }
  }
}

/// Damages one random trace-store entry (or reports "none" on an empty
/// store). The store's contract makes every outcome a cache miss at
/// worst: a resumed run must recapture and still match the reference bit
/// for bit.
std::string corrupt_trace_store(const std::filesystem::path& dir, Rng& rng) {
  std::vector<std::filesystem::path> entries;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec), end;
  if (ec) return "none";
  for (; it != end; ++it) {
    if (it->path().extension() == ".hmst") entries.push_back(it->path());
  }
  if (entries.empty()) return "none";
  const auto path = entries[rng.below(entries.size())];
  const std::string name = path.filename().string();
  const auto size = std::filesystem::file_size(path, ec);
  if (ec || size == 0) return "none";
  switch (rng.below(4)) {
    case 0: {  // flip one byte anywhere (magic, CRC, payload, hash stamp)
      std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
      const auto offset = static_cast<std::streamoff>(rng.below(size));
      f.seekg(offset);
      char byte = 0;
      f.get(byte);
      byte = static_cast<char>(byte ^ static_cast<char>(1u << rng.below(8)));
      f.seekp(offset);
      f.put(byte);
      return "store-flip@" + std::to_string(offset) + ":" + name;
    }
    case 1: {  // tear the tail off
      const auto keep = rng.below(size);
      std::filesystem::resize_file(path, keep, ec);
      return "store-truncate->" + std::to_string(keep) + ":" + name;
    }
    case 2: {  // lose the entry outright
      std::filesystem::remove(path, ec);
      return "store-delete:" + name;
    }
    default: {  // junk past the last record
      std::ofstream f(path, std::ios::app | std::ios::binary);
      const auto n = 1 + rng.below(64);
      for (std::uint64_t i = 0; i < n; ++i) {
        f.put(static_cast<char>(rng.below(256)));
      }
      return "store-append+" + std::to_string(n) + ":" + name;
    }
  }
}

int run_driver(int argc, char** argv) {
  const std::uint64_t cycles =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20;
  Rng rng{env_u64("CHAOS_SEED", 0x5eed) + 1};

  char exe_buf[4096];
  const ssize_t exe_len =
      readlink("/proc/self/exe", exe_buf, sizeof(exe_buf) - 1);
  if (exe_len <= 0) {
    std::cerr << "chaos driver: cannot resolve /proc/self/exe\n";
    return kExitError;
  }
  const std::string exe(exe_buf, static_cast<std::size_t>(exe_len));

  std::string tmpl =
      (std::filesystem::temp_directory_path() / "chaos_sweep.XXXXXX")
          .string();
  if (mkdtemp(tmpl.data()) == nullptr) {
    std::cerr << "chaos driver: mkdtemp failed: " << std::strerror(errno)
              << "\n";
    return kExitError;
  }
  const std::filesystem::path dir(tmpl);
  const std::string ckpt = (dir / "ckpt.bin").string();
  const std::string table = (dir / "table.txt").string();
  const std::filesystem::path store_dir = dir / "trace_cache";
  setenv("CHAOS_CHECKPOINT", ckpt.c_str(), 1);
  setenv("CHAOS_TABLE", table.c_str(), 1);
  // Shared across every child and mode: the reference run cold-fills the
  // store, later runs warm-load from it — and must match regardless.
  setenv("HMS_TRACE_CACHE", store_dir.string().c_str(), 1);

  int rc = kExitOk;
  for (const char* mode : {"chunk", "config", "shard"}) {
    setenv("HMS_REPLAY_MODE", mode, 1);
    unsetenv("CHAOS_SELF_KILL_MS");
    std::filesystem::remove(ckpt);

    // Clean reference run: table bytes + wall time to scale kill instants.
    const auto t0 = std::chrono::steady_clock::now();
    int status = wait_status(spawn_child(exe));
    const auto ref_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    if (!WIFEXITED(status) || WEXITSTATUS(status) != kExitOk) {
      std::cerr << "chaos driver: reference run failed in mode " << mode
                << " (status " << status << ")\n";
      return kExitError;
    }
    const std::string reference = read_file(table);
    if (reference.empty()) {
      std::cerr << "chaos driver: empty reference table in mode " << mode
                << "\n";
      return kExitError;
    }
    const std::uint64_t window =
        std::max<std::uint64_t>(static_cast<std::uint64_t>(ref_ms), 20);

    std::uint64_t hard_kills = 0, sigterms = 0, corruptions = 0,
                  store_corruptions = 0, survived = 0;
    for (std::uint64_t cycle = 0; cycle < cycles; ++cycle) {
      std::filesystem::remove(ckpt);
      std::filesystem::remove(table);

      // Disrupt a fresh run mid-flight.
      const std::uint64_t delay = 1 + rng.below(window);
      const bool hard = rng.below(2) == 0;
      if (hard) {
        setenv("CHAOS_SELF_KILL_MS", std::to_string(delay).c_str(), 1);
        status = wait_status(spawn_child(exe));
        unsetenv("CHAOS_SELF_KILL_MS");
        ++hard_kills;
      } else {
        const pid_t pid = spawn_child(exe);
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
        kill(pid, SIGTERM);
        status = wait_status(pid);
        ++sigterms;
      }
      if (WIFEXITED(status) && WEXITSTATUS(status) == kExitOk) {
        ++survived;  // the grid finished before the disruption landed
      }

      // Half the cycles also corrupt whatever the kill left behind, and
      // (independently) half damage a persistent trace-store entry.
      std::string corruption = "none";
      if (rng.below(2) == 0) {
        corruption = corrupt_checkpoint(ckpt, rng);
        if (corruption != "none") ++corruptions;
      }
      std::string store_chaos = "none";
      if (rng.below(2) == 0) {
        store_chaos = corrupt_trace_store(store_dir, rng);
        if (store_chaos != "none") ++store_corruptions;
      }

      // Resume to completion and compare bit patterns.
      status = wait_status(spawn_child(exe));
      if (!WIFEXITED(status) || WEXITSTATUS(status) != kExitOk) {
        std::cerr << "chaos driver: resume failed (mode " << mode
                  << ", cycle " << cycle << ", corruption " << corruption
                  << ", store " << store_chaos << ", status " << status
                  << ")\n";
        rc = kExitError;
        break;
      }
      if (read_file(table) != reference) {
        std::cerr << "chaos driver: table diverged from reference (mode "
                  << mode << ", cycle " << cycle << ", kill "
                  << (hard ? "hard" : "sigterm") << "@" << delay
                  << "ms, corruption " << corruption << ", store "
                  << store_chaos << ")\n";
        rc = kExitError;
        break;
      }
    }
    std::cerr << "mode " << mode << ": " << cycles << " cycles ("
              << hard_kills << " hard kills, " << sigterms << " sigterms, "
              << corruptions << " checkpoint corruptions, "
              << store_corruptions << " trace-store corruptions, "
              << survived
              << " finished before the kill), tables bit-identical\n";
    if (rc != kExitOk) break;
  }

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  if (rc == kExitOk) std::cerr << "chaos soak passed\n";
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--child") return run_child();
  return run_driver(argc, argv);
}
