#!/usr/bin/env python3
"""Plot the paper's figure series from the benches' CSV exports.

Usage:
    mkdir -p csv && HMS_CSV_DIR=csv ./build/bench/bench_fig1_2_nmm
    HMS_CSV_DIR=csv ./build/bench/bench_fig3_4_4lc
    HMS_CSV_DIR=csv ./build/bench/bench_fig5_6_4lcnvm
    python3 tools/plot_figures.py csv/ out/

Produces one PNG per CSV: grouped bars of suite-average normalized runtime
and total energy per configuration (the paper's Figures 1-6 layout).
Requires matplotlib; degrades to printing the aggregated table without it.
"""

import csv
import pathlib
import sys
from collections import defaultdict


def aggregate(path: pathlib.Path):
    """Returns ordered (config, mean_runtime, mean_energy) rows."""
    sums = defaultdict(lambda: [0.0, 0.0, 0])
    order = []
    with path.open() as handle:
        for row in csv.DictReader(handle):
            key = row["config"]
            if key not in sums:
                order.append(key)
            entry = sums[key]
            entry[0] += float(row["norm_runtime"])
            entry[1] += float(row["norm_energy"])
            entry[2] += 1
    return [(key, sums[key][0] / sums[key][2], sums[key][1] / sums[key][2])
            for key in order]


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    csv_dir = pathlib.Path(sys.argv[1])
    out_dir = pathlib.Path(sys.argv[2])
    out_dir.mkdir(parents=True, exist_ok=True)

    files = sorted(csv_dir.glob("*.csv"))
    if not files:
        print(f"no CSV files in {csv_dir}; run the benches with "
              "HMS_CSV_DIR set")
        return 1

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        plt = None
        print("matplotlib unavailable; printing aggregated tables instead")

    for path in files:
        rows = aggregate(path)
        if plt is None:
            print(f"\n{path.stem}")
            for config, runtime, energy in rows:
                print(f"  {config:8s} runtime {runtime:6.3f}  "
                      f"energy {energy:6.3f}")
            continue
        configs = [r[0] for r in rows]
        runtime = [r[1] for r in rows]
        energy = [r[2] for r in rows]
        x = range(len(configs))
        width = 0.38
        fig, ax = plt.subplots(figsize=(1.2 * len(configs) + 2, 4))
        ax.bar([i - width / 2 for i in x], runtime, width,
               label="normalized runtime")
        ax.bar([i + width / 2 for i in x], energy, width,
               label="normalized total energy")
        ax.axhline(1.0, color="gray", linewidth=0.8, linestyle="--")
        ax.set_xticks(list(x))
        ax.set_xticklabels(configs)
        ax.set_ylabel("normalized to base design")
        ax.set_title(path.stem)
        ax.legend()
        fig.tight_layout()
        target = out_dir / f"{path.stem}.png"
        fig.savefig(target, dpi=150)
        plt.close(fig)
        print(f"wrote {target}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
