// CsvWriter and TextTable (hms/common/csv.hpp, table.hpp).
#include <gtest/gtest.h>

#include <sstream>

#include "hms/common/csv.hpp"
#include "hms/common/error.hpp"
#include "hms/common/table.hpp"

namespace hms {
namespace {

TEST(Csv, HeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"config", "runtime", "energy"});
  csv.row({"N1", "1.05", "1.12"});
  csv.row({"N6", "1.07", "0.79"});
  EXPECT_EQ(out.str(),
            "config,runtime,energy\nN1,1.05,1.12\nN6,1.07,0.79\n");
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, RowWidthMismatchThrows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a", "b"});
  EXPECT_THROW(csv.row({"only-one"}), Error);
}

TEST(Csv, DoubleHeaderThrows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a"});
  EXPECT_THROW(csv.header({"b"}), Error);
}

TEST(Csv, RowsWithoutHeaderAllowed) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"x", "y"});
  csv.row({"1", "2", "3"});  // width unconstrained without header
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1.5"});
  t.add_row({"b", "10.25"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  // Numeric column right-aligned: "10.25" ends at same column as header.
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only"}), Error);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), Error);
}

TEST(FmtFixed, Precision) {
  EXPECT_EQ(fmt_fixed(1.23456, 3), "1.235");
  EXPECT_EQ(fmt_fixed(2.0, 1), "2.0");
  EXPECT_EQ(fmt_fixed(-0.5, 2), "-0.50");
}

TEST(FmtBytes, BinaryUnits) {
  EXPECT_EQ(fmt_bytes(64), "64 B");
  EXPECT_EQ(fmt_bytes(512), "512 B");
  EXPECT_EQ(fmt_bytes(1024), "1 KiB");
  EXPECT_EQ(fmt_bytes(512 * 1024), "512 KiB");
  EXPECT_EQ(fmt_bytes(20ull << 20), "20 MiB");
  EXPECT_EQ(fmt_bytes(4ull << 30), "4 GiB");
  EXPECT_EQ(fmt_bytes(1536), "1536 B");  // not a clean KiB multiple
}

}  // namespace
}  // namespace hms
