// Sharded sweep engine: differential stress against the chunk- and
// config-major modes — bit-identical SuiteResults and identical
// degraded-cell sets over NMM and 4LC grids at 1/2/8 threads, with and
// without fault injection — plus direct run_sharded_sweep engine coverage
// (work-stealing settlement, callback failure, retry semantics).
#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "hms/common/error.hpp"
#include "hms/common/fault.hpp"
#include "hms/sim/experiment.hpp"
#include "hms/sim/sharded_sweep.hpp"

namespace hms::sim {
namespace {

using mem::Technology;

/// The 4x3 NMM stress grid: four N configs by three workloads.
const std::vector<designs::NConfig> four_configs() {
  return {designs::n_config("N1"), designs::n_config("N2"),
          designs::n_config("N3"), designs::n_config("N6")};
}

ExperimentConfig grid_config(ReplayMode mode, unsigned threads) {
  ExperimentConfig cfg;
  cfg.scale_divisor = 512;
  cfg.footprint_divisor = 512;
  cfg.seed = 42;
  cfg.iterations = 1;
  cfg.suite = {"StreamTriad", "CG", "IS"};
  cfg.threads = threads;
  cfg.replay_mode = mode;
  return cfg;
}

void expect_suites_identical(const std::vector<SuiteResult>& a,
                             const std::vector<SuiteResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(a[i].config_name);
    EXPECT_EQ(a[i].config_name, b[i].config_name);
    EXPECT_EQ(a[i].partial, b[i].partial);
    EXPECT_DOUBLE_EQ(a[i].runtime, b[i].runtime);
    EXPECT_DOUBLE_EQ(a[i].dynamic, b[i].dynamic);
    EXPECT_DOUBLE_EQ(a[i].leakage, b[i].leakage);
    EXPECT_DOUBLE_EQ(a[i].total_energy, b[i].total_energy);
    EXPECT_DOUBLE_EQ(a[i].edp, b[i].edp);
    ASSERT_EQ(a[i].per_workload.size(), b[i].per_workload.size());
    for (std::size_t w = 0; w < a[i].per_workload.size(); ++w) {
      const auto& na = a[i].per_workload[w].normalized;
      const auto& nb = b[i].per_workload[w].normalized;
      EXPECT_DOUBLE_EQ(na.runtime, nb.runtime);
      EXPECT_DOUBLE_EQ(na.dynamic, nb.dynamic);
      EXPECT_DOUBLE_EQ(na.leakage, nb.leakage);
      EXPECT_DOUBLE_EQ(na.total_energy, nb.total_energy);
      EXPECT_DOUBLE_EQ(na.edp, nb.edp);
    }
  }
}

/// The degraded-cell set of a sweep: (config, workload, error) triples.
std::set<std::vector<std::string>> degraded_cells(
    const std::vector<SuiteResult>& suites) {
  std::set<std::vector<std::string>> cells;
  for (const auto& suite : suites) {
    for (const auto& failure : suite.failures) {
      cells.insert({suite.config_name, failure.workload, failure.error});
    }
  }
  return cells;
}

TEST(ShardedSweep, NmmGridBitIdenticalAcrossModesAndThreads) {
  // The tentpole differential: a 4x3 NMM grid swept chunk-major,
  // config-major, and sharded at 1/2/8 threads must agree bit-for-bit.
  const auto chunk = ExperimentRunner(grid_config(ReplayMode::ChunkMajor, 2))
                         .nmm_sweep(Technology::PCM, four_configs());
  const auto config = ExperimentRunner(grid_config(ReplayMode::ConfigMajor, 2))
                          .nmm_sweep(Technology::PCM, four_configs());
  expect_suites_identical(chunk, config);
  for (const unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const auto shard =
        ExperimentRunner(grid_config(ReplayMode::Sharded, threads))
            .nmm_sweep(Technology::PCM, four_configs());
    expect_suites_identical(chunk, shard);
  }
}

TEST(ShardedSweep, FourLcGridBitIdenticalAcrossModesAndThreads) {
  // Second design family: a 2x2 4LC grid through the same differential.
  const std::vector<designs::EhConfig> configs = {designs::eh_config("EH1"),
                                                  designs::eh_config("EH4")};
  auto two_workloads = [](ReplayMode mode, unsigned threads) {
    auto cfg = grid_config(mode, threads);
    cfg.suite = {"StreamTriad", "CG"};
    return cfg;
  };
  const auto chunk =
      ExperimentRunner(two_workloads(ReplayMode::ChunkMajor, 2))
          .four_lc_sweep(Technology::eDRAM, configs);
  const auto config =
      ExperimentRunner(two_workloads(ReplayMode::ConfigMajor, 2))
          .four_lc_sweep(Technology::eDRAM, configs);
  expect_suites_identical(chunk, config);
  for (const unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const auto shard =
        ExperimentRunner(two_workloads(ReplayMode::Sharded, threads))
            .four_lc_sweep(Technology::eDRAM, configs);
    expect_suites_identical(chunk, shard);
  }
}

TEST(ShardedSweep, SingleFaultDegradesSameCellAcrossModesAndThreads) {
  // Arm the 4th "sim/replay_back" hit (3-workload warm-up takes 3): the
  // first grid cell (N1 / StreamTriad) fails in every mode. Chunk- and
  // config-major need threads=1 for a deterministic hit order; the sharded
  // engine's canonical indices make any thread count equivalent.
  auto degraded_sweep = [](ReplayMode mode, unsigned threads) {
    ScopedFaultInjector injector;
    FaultSpec spec;
    spec.skip_first = 3;
    spec.max_fires = 1;
    injector->arm("sim/replay_back", spec);
    return ExperimentRunner(grid_config(mode, threads))
        .nmm_sweep(Technology::PCM, four_configs());
  };

  const auto chunk = degraded_sweep(ReplayMode::ChunkMajor, 1);
  ASSERT_EQ(chunk.size(), 4u);
  EXPECT_TRUE(chunk[0].partial);
  const auto expected_cells = degraded_cells(chunk);
  ASSERT_EQ(expected_cells.size(), 1u);
  EXPECT_EQ(*expected_cells.begin(),
            (std::vector<std::string>{
                "N1", "StreamTriad",
                "config N1 / workload StreamTriad: replay_back: "
                "fault injected at sim/replay_back"}));

  const auto config = degraded_sweep(ReplayMode::ConfigMajor, 1);
  EXPECT_EQ(degraded_cells(config), expected_cells);
  expect_suites_identical(chunk, config);

  for (const unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const auto shard = degraded_sweep(ReplayMode::Sharded, threads);
    EXPECT_EQ(degraded_cells(shard), expected_cells);
    expect_suites_identical(chunk, shard);
  }
}

TEST(ShardedSweep, ProbabilityFaultsDegradeSameCellsAtEveryThreadCount) {
  // A probabilistic arming (bounded to 2 fires) fails whichever canonical
  // indices the seeded coin picks. Chunk-major at threads=1 takes its hits
  // in exactly the canonical order, so the sharded sweeps must reproduce
  // its degraded-cell set at 1, 2 and 8 threads bit-for-bit.
  auto degraded_sweep = [](ReplayMode mode, unsigned threads) {
    ScopedFaultInjector injector;
    FaultSpec spec;
    spec.skip_first = 3;  // let the serial warm-up through
    spec.probability = 0.35;
    spec.max_fires = 2;
    injector->arm("sim/replay_back", spec);
    return ExperimentRunner(grid_config(mode, threads))
        .nmm_sweep(Technology::PCM, four_configs());
  };

  const auto chunk = degraded_sweep(ReplayMode::ChunkMajor, 1);
  const auto expected_cells = degraded_cells(chunk);
  // The default injector seed fires inside this 12-cell grid; a vacuously
  // empty comparison would test nothing.
  ASSERT_FALSE(expected_cells.empty());
  for (const unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const auto shard = degraded_sweep(ReplayMode::Sharded, threads);
    EXPECT_EQ(degraded_cells(shard), expected_cells);
    expect_suites_identical(chunk, shard);
  }
}

TEST(ShardedSweep, RetriesRecoverTransientFaults) {
  // A transient fault on one cell is retried with a fresh back and a
  // standalone ring-fed replay; the recovered sweep is bit-identical to a
  // clean one and the retry does not double-spend the max_fires budget.
  const auto expected = ExperimentRunner(grid_config(ReplayMode::Sharded, 2))
                            .nmm_sweep(Technology::PCM, four_configs());

  ScopedFaultInjector injector;
  FaultSpec spec;
  spec.skip_first = 3;
  spec.max_fires = 1;
  spec.transient = true;
  injector->arm("sim/replay_back", spec);

  auto cfg = grid_config(ReplayMode::Sharded, 2);
  cfg.max_retries = 1;
  const auto results =
      ExperimentRunner(cfg).nmm_sweep(Technology::PCM, four_configs());
  EXPECT_EQ(injector->fires("sim/replay_back"), 1u);
  ASSERT_EQ(results.size(), 4u);
  for (const auto& r : results) {
    EXPECT_FALSE(r.partial) << r.config_name;
    EXPECT_TRUE(r.failures.empty()) << r.config_name;
  }
  expect_suites_identical(results, expected);
}

TEST(ShardedSweep, HitCountersMatchSerialAccounting) {
  // Shard-local tallies merge into the injector at seal time: after a
  // sweep, the global counters read exactly warm-up + one hit per cell, at
  // any thread count.
  for (const unsigned threads : {1u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ScopedFaultInjector injector;
    (void)ExperimentRunner(grid_config(ReplayMode::Sharded, threads))
        .nmm_sweep(Technology::PCM, four_configs());
    // 3 warm-up replays + 4 configs x 3 workloads.
    EXPECT_EQ(injector->hits("sim/replay_back"), 3u + 12u);
    EXPECT_EQ(injector->fires("sim/replay_back"), 0u);
  }
}

// -- Direct engine coverage -------------------------------------------------

TEST(ShardedSweep, EngineSettlesEveryCellOnceWithStealing) {
  // More units than any single queue holds: 8 workers over a 4-config x
  // 2-workload grid (8 units) must settle each cell exactly once with a
  // profile bit-identical to a standalone replay_back.
  ExperimentRunner runner(grid_config(ReplayMode::Sharded, 1));
  const std::vector<std::string> workloads = {"StreamTriad", "CG"};
  const std::vector<std::string> names = {"N1", "N2", "N3", "N6"};
  const auto& factory = runner.factory();

  ShardedSweepSpec spec;
  for (const auto& w : workloads) spec.captures.push_back(&runner.front(w));
  spec.configs = names.size();
  spec.threads = 8;
  spec.make_back = [&](std::size_t config, std::size_t workload) {
    return factory.nvm_main_memory_back(
        designs::n_config(names[config]), Technology::PCM,
        spec.captures[workload]->footprint_bytes);
  };
  std::map<std::pair<std::size_t, std::size_t>, ShardedCellOutcome> settled;
  spec.on_cell = [&](std::size_t config, std::size_t workload,
                     ShardedCellOutcome&& out) {
    const bool inserted =
        settled.emplace(std::make_pair(config, workload), std::move(out))
            .second;
    ASSERT_TRUE(inserted) << "cell settled twice: " << config << "," << workload;
  };
  run_sharded_sweep(spec);

  ASSERT_EQ(settled.size(), names.size() * workloads.size());
  for (std::size_t c = 0; c < names.size(); ++c) {
    for (std::size_t w = 0; w < workloads.size(); ++w) {
      SCOPED_TRACE(names[c] + "/" + workloads[w]);
      const auto& out = settled.at({c, w});
      ASSERT_TRUE(out.ok) << out.error;
      EXPECT_TRUE(out.constructed);
      const auto expected =
          replay_back(*spec.captures[w], *spec.make_back(c, w));
      EXPECT_EQ(out.profile.references, expected.references);
      ASSERT_EQ(out.profile.levels.size(), expected.levels.size());
      for (std::size_t l = 0; l < expected.levels.size(); ++l) {
        EXPECT_EQ(out.profile.levels[l].loads, expected.levels[l].loads) << l;
        EXPECT_EQ(out.profile.levels[l].stores, expected.levels[l].stores)
            << l;
        EXPECT_EQ(out.profile.levels[l].cache_stats,
                  expected.levels[l].cache_stats)
            << l;
      }
    }
  }
}

TEST(ShardedSweep, ConstructionFailuresAreFinalAndIsolated) {
  // A make_back that throws for one cell reports constructed=false for it
  // (no retries, no replay hit) and leaves every other cell intact.
  ExperimentRunner runner(grid_config(ReplayMode::Sharded, 1));
  const std::vector<std::string> names = {"N1", "N3"};
  const auto& factory = runner.factory();

  ShardedSweepSpec spec;
  spec.captures.push_back(&runner.front("StreamTriad"));
  spec.configs = names.size();
  spec.threads = 2;
  spec.max_retries = 3;
  spec.make_back = [&](std::size_t config, std::size_t workload)
      -> std::unique_ptr<cache::MemoryHierarchy> {
    if (config == 1) throw ConfigError("synthetic construction failure");
    return factory.nvm_main_memory_back(
        designs::n_config(names[config]), Technology::PCM,
        spec.captures[workload]->footprint_bytes);
  };
  std::map<std::size_t, ShardedCellOutcome> settled;
  spec.on_cell = [&](std::size_t config, std::size_t,
                     ShardedCellOutcome&& out) {
    settled.emplace(config, std::move(out));
  };
  run_sharded_sweep(spec);

  ASSERT_EQ(settled.size(), 2u);
  EXPECT_TRUE(settled.at(0).ok) << settled.at(0).error;
  EXPECT_FALSE(settled.at(1).ok);
  EXPECT_FALSE(settled.at(1).constructed);
  EXPECT_EQ(settled.at(1).error, "synthetic construction failure");
}

TEST(ShardedSweep, CallbackFailureAbortsSweepWithContext) {
  ExperimentRunner runner(grid_config(ReplayMode::Sharded, 1));
  ShardedSweepSpec spec;
  spec.captures.push_back(&runner.front("StreamTriad"));
  spec.configs = 2;
  spec.threads = 2;
  const auto& factory = runner.factory();
  spec.make_back = [&](std::size_t, std::size_t workload) {
    return factory.nvm_main_memory_back(
        designs::n_config("N1"), Technology::PCM,
        spec.captures[workload]->footprint_bytes);
  };
  spec.on_cell = [](std::size_t, std::size_t, ShardedCellOutcome&&) {
    throw std::runtime_error("sink exploded");
  };
  try {
    run_sharded_sweep(spec);
    FAIL() << "expected hms::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("on_cell callback failed"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("sink exploded"), std::string::npos);
  }
}

TEST(ShardedSweep, EmptyGridIsANoop) {
  ShardedSweepSpec spec;
  run_sharded_sweep(spec);  // no captures, no configs: nothing to do
  spec.configs = 3;
  run_sharded_sweep(spec);  // still no captures
}

}  // namespace
}  // namespace hms::sim
