// Bandwidth-bound analysis (hms/model/bandwidth.hpp).
#include <gtest/gtest.h>

#include "hms/common/error.hpp"
#include "hms/model/bandwidth.hpp"

namespace hms::model {
namespace {

using cache::HierarchyProfile;
using cache::LevelProfile;
using mem::Technology;

LevelProfile level(Technology t, std::uint64_t load_bytes,
                   std::uint64_t store_bytes) {
  LevelProfile p;
  p.name = std::string(mem::to_string(t));
  p.tech = t == Technology::SRAM
               ? mem::sram_level(3).as_params()
               : mem::TechnologyRegistry::table1().get(t);
  p.load_bytes = load_bytes;
  p.store_bytes = store_bytes;
  p.loads = load_bytes ? 1 : 0;
  p.stores = store_bytes ? 1 : 0;
  return p;
}

TEST(Bandwidth, TransferTimesByDirection) {
  HierarchyProfile profile;
  // 12.8 GB moved through a 12.8 GB/s DRAM port = 1 s.
  profile.levels.push_back(
      level(Technology::DRAM, 12'800'000'000ull, 0));
  const auto demand = bandwidth_demand(profile);
  ASSERT_EQ(demand.size(), 1u);
  EXPECT_NEAR(demand[0].read_time.seconds(), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(demand[0].write_time.nanoseconds(), 0.0);
}

TEST(Bandwidth, PcmWritesAreTheSlowDirection) {
  HierarchyProfile profile;
  profile.levels.push_back(level(Technology::PCM, 1'000'000, 1'000'000));
  const auto demand = bandwidth_demand(profile);
  // 2 GB/s reads vs 0.5 GB/s writes: writes take 4x longer.
  EXPECT_NEAR(demand[0].write_time / demand[0].read_time, 4.0, 1e-9);
}

TEST(Bandwidth, BoundPicksTheBusiestLevel) {
  HierarchyProfile profile;
  profile.levels.push_back(level(Technology::SRAM, 1ull << 30, 0));
  profile.levels.push_back(level(Technology::PCM, 1ull << 20, 1ull << 20));
  const auto bound = bandwidth_bound(profile);
  // SRAM moves 1024x the bytes but at 500 GB/s; PCM's 2 MiB at 0.5-2 GB/s
  // is still cheaper than SRAM's 1 GiB... compute: SRAM 2^30/500 ~ 2.1 ms
  // vs PCM 2^20/2 + 2^20/0.5 ~ 2.6 ms. PCM binds.
  EXPECT_EQ(bound.binding_level, "PCM");
}

TEST(Bandwidth, LimitationRatioAgainstLatencyModel) {
  HierarchyProfile profile;
  profile.references = 1;
  auto dram = level(Technology::DRAM, 64, 0);
  profile.levels.push_back(dram);
  // Latency model: 1 load x 10 ns = 10 ns. Bandwidth: 64 B / 12.8 GB/s =
  // 5 ns. Ratio = 0.5: latency-bound.
  EXPECT_NEAR(bandwidth_limitation(profile), 0.5, 1e-9);
}

TEST(Bandwidth, RejectsEmptyProfile) {
  HierarchyProfile profile;
  EXPECT_THROW((void)bandwidth_limitation(profile), hms::Error);
}

TEST(Bandwidth, HmcIsNeverTheBottleneckAtEqualTraffic) {
  HierarchyProfile profile;
  profile.levels.push_back(level(Technology::HMC, 1ull << 26, 1ull << 26));
  profile.levels.push_back(level(Technology::DRAM, 1ull << 26, 1ull << 26));
  EXPECT_EQ(bandwidth_bound(profile).binding_level, "DRAM");
}

}  // namespace
}  // namespace hms::model
