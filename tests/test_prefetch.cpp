// Prefetcher substrate: cache-side prefetch fills and hierarchy-side
// next-line / stride prefetchers.
#include <gtest/gtest.h>

#include "hms/cache/hierarchy.hpp"
#include "hms/common/random.hpp"
#include "hms/mem/technology.hpp"

namespace hms::cache {
namespace {

using mem::Technology;
using mem::TechnologyRegistry;

CacheLevelSpec level_spec(std::uint64_t capacity, std::uint64_t line,
                          std::uint32_t ways,
                          PrefetcherConfig prefetch = {}) {
  CacheLevelSpec spec;
  spec.cache.name = "L";
  spec.cache.capacity_bytes = capacity;
  spec.cache.line_bytes = line;
  spec.cache.associativity = ways;
  spec.tech = mem::sram_level(1).as_params();
  spec.prefetch = prefetch;
  return spec;
}

mem::MemoryDeviceConfig dram() {
  mem::MemoryDeviceConfig cfg;
  cfg.name = "DRAM";
  cfg.technology = TechnologyRegistry::table1().get(Technology::DRAM);
  cfg.capacity_bytes = 1ull << 24;
  cfg.line_bytes = 256;
  return cfg;
}

TEST(CachePrefetch, PrefetchMissFillsWithoutDemandStats) {
  SetAssocCache c({.name = "c",
                   .capacity_bytes = 1024,
                   .line_bytes = 64,
                   .associativity = 4});
  auto r = c.access(0x100, 64, AccessType::Load, /*prefetch=*/true);
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(c.contains(0x100));
  EXPECT_EQ(c.stats().load_misses, 0u);
  EXPECT_EQ(c.stats().prefetch_fills, 1u);
}

TEST(CachePrefetch, PrefetchHitIsNoop) {
  SetAssocCache c({.name = "c",
                   .capacity_bytes = 1024,
                   .line_bytes = 64,
                   .associativity = 4});
  c.access(0x100, 8, AccessType::Load);
  const auto before = c.stats();
  auto r = c.access(0x100, 64, AccessType::Load, /*prefetch=*/true);
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(c.stats().load_hits, before.load_hits);
  EXPECT_EQ(c.stats().prefetch_fills, 0u);
}

TEST(CachePrefetch, DemandHitOnPrefetchedLineCountsUseful) {
  SetAssocCache c({.name = "c",
                   .capacity_bytes = 1024,
                   .line_bytes = 64,
                   .associativity = 4});
  c.access(0x200, 64, AccessType::Load, /*prefetch=*/true);
  c.access(0x200, 8, AccessType::Load);
  EXPECT_EQ(c.stats().prefetch_useful, 1u);
  EXPECT_EQ(c.stats().load_hits, 1u);
  // Second demand hit no longer counts as useful.
  c.access(0x208, 8, AccessType::Load);
  EXPECT_EQ(c.stats().prefetch_useful, 1u);
}

TEST(CachePrefetch, PrefetchedStoreFillIsNotDirty) {
  SetAssocCache c({.name = "c",
                   .capacity_bytes = 1024,
                   .line_bytes = 64,
                   .associativity = 4});
  c.access(0x300, 64, AccessType::Store, /*prefetch=*/true);
  EXPECT_FALSE(c.is_dirty(0x300));
}

TEST(HierarchyPrefetch, NextLineEliminatesSequentialMisses) {
  // Sequential scan: next-line prefetching should convert most demand
  // misses into prefetch hits.
  auto run = [&](PrefetcherConfig pf) {
    std::vector<CacheLevelSpec> levels{level_spec(4096, 64, 4, pf)};
    MemoryHierarchy h(std::move(levels),
                      std::make_unique<SingleMemoryBackend>(dram()));
    for (Address a = 0; a < 1 << 16; a += 8) {
      h.access(trace::load(a, 8));
    }
    return h.profile();
  };
  const auto off = run({});
  const auto on =
      run({.kind = PrefetcherConfig::Kind::NextLine, .degree = 2});
  // Tagged prefetching sustains the chain: essentially only the first
  // access misses.
  EXPECT_LT(on.levels[0].cache_stats.misses(),
            off.levels[0].cache_stats.misses() / 10);
  EXPECT_GT(on.levels[0].cache_stats.prefetch_useful, 0u);
  // Total memory fetch volume is at least the demanded data.
  EXPECT_GE(on.levels[1].load_bytes, std::uint64_t{1} << 16);
}

TEST(HierarchyPrefetch, PrefetchTrafficCountsAtNextLevel) {
  std::vector<CacheLevelSpec> levels{level_spec(
      4096, 64, 4, {.kind = PrefetcherConfig::Kind::NextLine, .degree = 4})};
  MemoryHierarchy h(std::move(levels),
                    std::make_unique<SingleMemoryBackend>(dram()));
  h.access(trace::load(0, 8));  // miss -> fetch + 4 prefetch fetches
  const auto p = h.profile();
  EXPECT_EQ(p.levels[0].loads, 1u);  // only the demand access
  EXPECT_EQ(p.levels[1].loads, 5u);  // fill + 4 prefetches
  EXPECT_EQ(p.levels[0].cache_stats.prefetch_fills, 4u);
}

TEST(HierarchyPrefetch, StrideDetectorNeedsRepeatedStride) {
  std::vector<CacheLevelSpec> levels{level_spec(
      8192, 64, 4, {.kind = PrefetcherConfig::Kind::Stride, .degree = 1})};
  MemoryHierarchy h(std::move(levels),
                    std::make_unique<SingleMemoryBackend>(dram()));
  // Misses at stride 256: first two establish the stride, the third
  // confirms it and triggers a prefetch of +256.
  h.access(trace::load(0x0000, 8));
  h.access(trace::load(0x0100, 8));
  EXPECT_EQ(h.profile().levels[0].cache_stats.prefetch_fills, 0u);
  h.access(trace::load(0x0200, 8));
  EXPECT_EQ(h.profile().levels[0].cache_stats.prefetch_fills, 1u);
  EXPECT_TRUE(h.level(0).contains(0x0300));
}

TEST(HierarchyPrefetch, StridePrefetchHelpsStridedScan) {
  auto run = [&](PrefetcherConfig pf) {
    std::vector<CacheLevelSpec> levels{level_spec(4096, 64, 4, pf)};
    MemoryHierarchy h(std::move(levels),
                      std::make_unique<SingleMemoryBackend>(dram()));
    for (Address a = 0; a < 1 << 18; a += 256) {
      h.access(trace::load(a, 8));
    }
    return h.profile().levels[0].cache_stats.misses();
  };
  const auto off = run({});
  const auto on =
      run({.kind = PrefetcherConfig::Kind::Stride, .degree = 2});
  EXPECT_LT(on, off / 10);
}

TEST(HierarchyPrefetch, RandomAccessGainsNothing) {
  Xoshiro256 rng(3);
  std::vector<Address> addrs(20000);
  for (auto& a : addrs) a = rng.below(1 << 22) & ~7ull;
  auto run = [&](PrefetcherConfig pf) {
    std::vector<CacheLevelSpec> levels{level_spec(4096, 64, 4, pf)};
    MemoryHierarchy h(std::move(levels),
                      std::make_unique<SingleMemoryBackend>(dram()));
    for (Address a : addrs) h.access(trace::load(a, 8));
    return h.profile();
  };
  const auto off = run({});
  const auto on =
      run({.kind = PrefetcherConfig::Kind::NextLine, .degree = 1});
  // Useless prefetches: no fewer demand misses, strictly more memory
  // traffic.
  EXPECT_GE(on.levels[0].cache_stats.misses() + 200,
            off.levels[0].cache_stats.misses());
  EXPECT_GT(on.levels[1].load_bytes, off.levels[1].load_bytes);
}

}  // namespace
}  // namespace hms::cache
