// Technology registry — paper Table 1 values (hms/mem/technology.hpp).
#include <gtest/gtest.h>

#include "hms/common/error.hpp"
#include "hms/mem/technology.hpp"

namespace hms::mem {
namespace {

const TechnologyRegistry& reg() { return TechnologyRegistry::table1(); }

TEST(Table1, DramRow) {
  const auto& p = reg().get(Technology::DRAM);
  EXPECT_DOUBLE_EQ(p.read_latency.nanoseconds(), 10.0);
  EXPECT_DOUBLE_EQ(p.write_latency.nanoseconds(), 10.0);
  EXPECT_DOUBLE_EQ(p.read_pj_per_bit, 10.0);
  EXPECT_DOUBLE_EQ(p.write_pj_per_bit, 10.0);
  EXPECT_FALSE(p.non_volatile);
}

TEST(Table1, PcmRow) {
  const auto& p = reg().get(Technology::PCM);
  EXPECT_DOUBLE_EQ(p.read_latency.nanoseconds(), 21.0);
  EXPECT_DOUBLE_EQ(p.write_latency.nanoseconds(), 100.0);
  EXPECT_DOUBLE_EQ(p.read_pj_per_bit, 12.4);
  EXPECT_DOUBLE_EQ(p.write_pj_per_bit, 210.3);
  EXPECT_TRUE(p.non_volatile);
  EXPECT_GT(p.endurance_writes, 0u);  // PCM has finite endurance
}

TEST(Table1, SttramRow) {
  const auto& p = reg().get(Technology::STTRAM);
  EXPECT_DOUBLE_EQ(p.read_latency.nanoseconds(), 35.0);
  EXPECT_DOUBLE_EQ(p.write_latency.nanoseconds(), 35.0);
  EXPECT_DOUBLE_EQ(p.read_pj_per_bit, 58.5);
  EXPECT_DOUBLE_EQ(p.write_pj_per_bit, 67.7);
  EXPECT_TRUE(p.non_volatile);
  EXPECT_EQ(p.endurance_writes, 0u);  // effectively unlimited
}

TEST(Table1, FeramRow) {
  const auto& p = reg().get(Technology::FeRAM);
  EXPECT_DOUBLE_EQ(p.read_latency.nanoseconds(), 40.0);
  EXPECT_DOUBLE_EQ(p.write_latency.nanoseconds(), 65.0);
  EXPECT_DOUBLE_EQ(p.read_pj_per_bit, 12.4);
  EXPECT_DOUBLE_EQ(p.write_pj_per_bit, 210.0);
  EXPECT_TRUE(p.non_volatile);
}

TEST(Table1, EdramRow) {
  const auto& p = reg().get(Technology::eDRAM);
  EXPECT_DOUBLE_EQ(p.read_latency.nanoseconds(), 4.4);
  EXPECT_DOUBLE_EQ(p.write_latency.nanoseconds(), 4.4);
  EXPECT_DOUBLE_EQ(p.read_pj_per_bit, 3.11);
  EXPECT_DOUBLE_EQ(p.write_pj_per_bit, 3.09);
}

TEST(Table1, HmcRow) {
  const auto& p = reg().get(Technology::HMC);
  EXPECT_DOUBLE_EQ(p.read_latency.nanoseconds(), 0.18);
  EXPECT_DOUBLE_EQ(p.write_latency.nanoseconds(), 0.18);
  EXPECT_DOUBLE_EQ(p.read_pj_per_bit, 0.48);
  EXPECT_DOUBLE_EQ(p.write_pj_per_bit, 10.48);
}

TEST(Table1, NvmHasNoStaticPower) {
  for (Technology t :
       {Technology::PCM, Technology::STTRAM, Technology::FeRAM}) {
    EXPECT_DOUBLE_EQ(reg().get(t).static_power_per_mib.milliwatts(), 0.0)
        << to_string(t);
  }
}

TEST(Table1, VolatileTechnologiesHaveStaticPower) {
  for (Technology t :
       {Technology::DRAM, Technology::eDRAM, Technology::HMC}) {
    EXPECT_GT(reg().get(t).static_power_per_mib.milliwatts(), 0.0)
        << to_string(t);
  }
}

TEST(TechnologyParams, LatencyByAccessKind) {
  const auto& pcm = reg().get(Technology::PCM);
  EXPECT_DOUBLE_EQ(pcm.latency(false).nanoseconds(), 21.0);
  EXPECT_DOUBLE_EQ(pcm.latency(true).nanoseconds(), 100.0);
}

TEST(TechnologyParams, AccessEnergyScalesWithBytes) {
  const auto& dram = reg().get(Technology::DRAM);
  // 64 B read at 10 pJ/bit = 64*8*10 pJ.
  EXPECT_DOUBLE_EQ(dram.access_energy(false, 64).picojoules(), 5120.0);
  EXPECT_DOUBLE_EQ(dram.access_energy(true, 1).picojoules(), 80.0);
}

TEST(TechnologyParams, StaticPowerScalesWithCapacity) {
  const auto& dram = reg().get(Technology::DRAM);
  const Power one = dram.static_power(1ull << 20);
  const Power four = dram.static_power(4ull << 20);
  EXPECT_DOUBLE_EQ(four.milliwatts(), 4.0 * one.milliwatts());
}

TEST(Names, RoundTrip) {
  for (Technology t :
       {Technology::SRAM, Technology::DRAM, Technology::PCM,
        Technology::STTRAM, Technology::FeRAM, Technology::eDRAM,
        Technology::HMC}) {
    EXPECT_EQ(technology_from_string(to_string(t)), t);
  }
}

TEST(Names, Aliases) {
  EXPECT_EQ(technology_from_string("stt-ram"), Technology::STTRAM);
  EXPECT_EQ(technology_from_string("RAM"), Technology::DRAM);
  EXPECT_EQ(technology_from_string("pcm"), Technology::PCM);
  EXPECT_THROW((void)technology_from_string("memristor"), hms::Error);
}

TEST(Registry, WithOverridesOneTechnology) {
  TechnologyParams fast_pcm = reg().get(Technology::PCM);
  fast_pcm.write_latency = Time::from_ns(50.0);
  const auto modified = reg().with(fast_pcm);
  EXPECT_DOUBLE_EQ(modified.get(Technology::PCM).write_latency.nanoseconds(),
                   50.0);
  // Original untouched; other rows unchanged.
  EXPECT_DOUBLE_EQ(reg().get(Technology::PCM).write_latency.nanoseconds(),
                   100.0);
  EXPECT_DOUBLE_EQ(modified.get(Technology::DRAM).read_latency.nanoseconds(),
                   10.0);
}

TEST(SramLevels, MonotoneLatency) {
  EXPECT_LT(sram_level(1).access_latency, sram_level(2).access_latency);
  EXPECT_LT(sram_level(2).access_latency, sram_level(3).access_latency);
  EXPECT_THROW((void)sram_level(0), hms::Error);
  EXPECT_THROW((void)sram_level(4), hms::Error);
}

TEST(SramLevels, L3SlowerThanEdramFasterThanDram) {
  // The paper's premise: eDRAM sits between L3 SRAM and DRAM.
  const auto l3 = sram_level(3).access_latency;
  const auto edram = reg().get(Technology::eDRAM).read_latency;
  const auto dram = reg().get(Technology::DRAM).read_latency;
  EXPECT_LT(edram, dram);
  EXPECT_GT(dram, l3);
}

}  // namespace
}  // namespace hms::mem
