// PartitionedMemoryBackend — the NDM main memory router.
#include <gtest/gtest.h>

#include "hms/common/error.hpp"
#include "hms/cache/partitioned_memory.hpp"

namespace hms::cache {
namespace {

using mem::Technology;
using mem::TechnologyRegistry;

mem::MemoryDeviceConfig device(Technology t, std::string name,
                               std::uint64_t capacity = 1ull << 20) {
  mem::MemoryDeviceConfig cfg;
  cfg.name = std::move(name);
  cfg.technology = TechnologyRegistry::table1().get(t);
  cfg.capacity_bytes = capacity;
  cfg.line_bytes = 256;
  return cfg;
}

PartitionedMemoryBackend make_ndm() {
  std::vector<mem::MemoryDeviceConfig> devices;
  devices.push_back(device(Technology::DRAM, "DRAM"));
  devices.push_back(device(Technology::PCM, "PCM"));
  std::vector<AddressRangeRule> rules = {
      {0x10000, 0x8000, 1},  // [0x10000, 0x18000) -> PCM
  };
  return PartitionedMemoryBackend(std::move(devices), std::move(rules), 0);
}

TEST(PartitionedMemory, RoutesByRange) {
  auto ndm = make_ndm();
  EXPECT_EQ(ndm.route(0x0fff0), 0u);
  EXPECT_EQ(ndm.route(0x10000), 1u);
  EXPECT_EQ(ndm.route(0x17fff), 1u);
  EXPECT_EQ(ndm.route(0x18000), 0u);
}

TEST(PartitionedMemory, CountsPerDevice) {
  auto ndm = make_ndm();
  ndm.load(0x10000, 64);
  ndm.load(0x20000, 64);
  ndm.store(0x10040, 64);
  EXPECT_EQ(ndm.device(1).stats().reads, 1u);
  EXPECT_EQ(ndm.device(1).stats().writes, 1u);
  EXPECT_EQ(ndm.device(0).stats().reads, 1u);
  EXPECT_EQ(ndm.device(0).stats().writes, 0u);
}

TEST(PartitionedMemory, ProfilesPerDevice) {
  auto ndm = make_ndm();
  ndm.load(0x10000, 512);
  ndm.store(0x0, 64);
  const auto profiles = ndm.profiles();
  ASSERT_EQ(profiles.size(), 2u);
  EXPECT_EQ(profiles[0].name, "DRAM");
  EXPECT_EQ(profiles[1].name, "PCM");
  EXPECT_EQ(profiles[1].loads, 1u);
  EXPECT_EQ(profiles[1].load_bytes, 512u);
  EXPECT_EQ(profiles[0].stores, 1u);
  EXPECT_FALSE(profiles[0].is_cache);
}

TEST(PartitionedMemory, FirstMatchingRuleWins) {
  std::vector<mem::MemoryDeviceConfig> devices;
  devices.push_back(device(Technology::DRAM, "DRAM"));
  devices.push_back(device(Technology::PCM, "PCM"));
  devices.push_back(device(Technology::STTRAM, "STT"));
  std::vector<AddressRangeRule> rules = {
      {0x1000, 0x1000, 1},
      {0x1000, 0x2000, 2},  // overlaps; must lose to the first rule
  };
  PartitionedMemoryBackend ndm(std::move(devices), std::move(rules), 0);
  EXPECT_EQ(ndm.route(0x1800), 1u);
  EXPECT_EQ(ndm.route(0x2800), 2u);
}

TEST(PartitionedMemory, Validation) {
  std::vector<mem::MemoryDeviceConfig> devices;
  devices.push_back(device(Technology::DRAM, "DRAM"));
  EXPECT_THROW(PartitionedMemoryBackend({}, {}, 0), hms::ConfigError);
  EXPECT_THROW(PartitionedMemoryBackend(
                   {device(Technology::DRAM, "d")},
                   {{0x0, 0x100, 5}}, 0),
               hms::ConfigError);  // rule device out of range
  EXPECT_THROW(PartitionedMemoryBackend(
                   {device(Technology::DRAM, "d")},
                   {{0x0, 0, 0}}, 0),
               hms::ConfigError);  // empty range
  EXPECT_THROW(PartitionedMemoryBackend(
                   {device(Technology::DRAM, "d")}, {}, 3),
               hms::ConfigError);  // default out of range
}

TEST(AddressRangeRule, Contains) {
  AddressRangeRule rule{100, 50, 0};
  EXPECT_FALSE(rule.contains(99));
  EXPECT_TRUE(rule.contains(100));
  EXPECT_TRUE(rule.contains(149));
  EXPECT_FALSE(rule.contains(150));
}

}  // namespace
}  // namespace hms::cache
