// Endurance tracking and Start-Gap wear levelling (hms/mem/wear.hpp).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "hms/common/error.hpp"
#include "hms/common/random.hpp"
#include "hms/mem/wear.hpp"

namespace hms::mem {
namespace {

TEST(Endurance, CountsWrites) {
  EnduranceTracker t(8, 1000);
  t.record_write(3);
  t.record_write(3);
  t.record_write(5);
  EXPECT_EQ(t.total_writes(), 3u);
  EXPECT_EQ(t.max_line_writes(), 2u);
  EXPECT_EQ(t.writes_to(3), 2u);
  EXPECT_EQ(t.writes_to(0), 0u);
  EXPECT_DOUBLE_EQ(t.mean_line_writes(), 3.0 / 8.0);
}

TEST(Endurance, ImbalanceMetric) {
  EnduranceTracker t(4, 0);
  for (int i = 0; i < 4; ++i) t.record_write(0);
  // mean = 1, max = 4 -> imbalance 4.
  EXPECT_DOUBLE_EQ(t.imbalance(), 4.0);
}

TEST(Endurance, LifetimeConsumed) {
  EnduranceTracker t(4, 100);
  for (int i = 0; i < 50; ++i) t.record_write(1);
  EXPECT_DOUBLE_EQ(t.lifetime_consumed(), 0.5);
  EnduranceTracker unlimited(4, 0);
  unlimited.record_write(0);
  EXPECT_DOUBLE_EQ(unlimited.lifetime_consumed(), 0.0);
}

TEST(Endurance, OutOfRangeThrows) {
  EnduranceTracker t(4, 0);
  EXPECT_THROW(t.record_write(4), hms::Error);
  EXPECT_THROW((void)t.writes_to(4), hms::Error);
}

TEST(StartGap, InitialMappingIsIdentity) {
  StartGapWearLeveler sg(16, 100);
  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(sg.physical(i), i);
  }
}

TEST(StartGap, MappingIsAlwaysABijection) {
  StartGapWearLeveler sg(16, 3);
  for (int step = 0; step < 500; ++step) {
    std::set<std::uint64_t> physical;
    for (std::uint64_t l = 0; l < sg.logical_lines(); ++l) {
      const auto p = sg.physical(l);
      EXPECT_LT(p, sg.physical_lines());
      EXPECT_NE(p, sg.gap()) << "logical line mapped onto the gap";
      physical.insert(p);
    }
    EXPECT_EQ(physical.size(), sg.logical_lines());
    (void)sg.on_write();
  }
}

TEST(StartGap, GapMoveChangesExactlyOneMapping) {
  StartGapWearLeveler sg(32, 1);  // every write moves the gap
  for (int step = 0; step < 200; ++step) {
    std::vector<std::uint64_t> before(sg.logical_lines());
    for (std::uint64_t l = 0; l < sg.logical_lines(); ++l) {
      before[l] = sg.physical(l);
    }
    const std::uint64_t extra = sg.on_write();
    std::size_t changed = 0;
    for (std::uint64_t l = 0; l < sg.logical_lines(); ++l) {
      if (sg.physical(l) != before[l]) ++changed;
    }
    if (extra == 1) {
      EXPECT_EQ(changed, 1u) << "a migration must remap exactly one line";
    } else {
      EXPECT_EQ(changed, 0u) << "a wrap step must not remap anything";
    }
  }
}

TEST(StartGap, MigrationCadence) {
  StartGapWearLeveler sg(8, 10);
  std::uint64_t migrations = 0;
  for (int w = 0; w < 1000; ++w) migrations += sg.on_write();
  // One gap event every 10 writes; a few of the 100 events are free wraps.
  EXPECT_EQ(sg.migrations(), migrations);
  EXPECT_GT(migrations, 80u);
  EXPECT_LE(migrations, 100u);
}

TEST(StartGap, EveryPhysicalLineEventuallyRests) {
  StartGapWearLeveler sg(8, 1);
  std::set<std::uint64_t> gaps_seen;
  for (int w = 0; w < 100; ++w) {
    gaps_seen.insert(sg.gap());
    (void)sg.on_write();
  }
  EXPECT_EQ(gaps_seen.size(), sg.physical_lines());
}

TEST(StartGap, SpreadsHotLineWrites) {
  // Hammer a single logical line; Start-Gap must spread physical wear.
  constexpr std::uint64_t kLines = 64;
  StartGapWearLeveler sg(kLines, 16);
  EnduranceTracker tracker(kLines + 1, 0);
  for (int w = 0; w < 200000; ++w) {
    tracker.record_write(sg.physical(7));
    (void)sg.on_write();
  }
  // Without levelling, imbalance would be kLines+1 (all writes on one
  // line). With Start-Gap the hot line rotates across physical lines.
  EXPECT_LT(tracker.imbalance(), 10.0);
}

TEST(StartGap, InvalidConstruction) {
  EXPECT_THROW(StartGapWearLeveler(0, 10), hms::Error);
  EXPECT_THROW(StartGapWearLeveler(8, 0), hms::Error);
}

TEST(StartGap, LogicalOutOfRangeThrows) {
  StartGapWearLeveler sg(8, 10);
  EXPECT_THROW((void)sg.physical(8), hms::Error);
}

}  // namespace
}  // namespace hms::mem
