// MemoryHierarchy engine (hms/cache/hierarchy.hpp): traffic propagation,
// dirty write-back accounting, profiles, flush.
#include <gtest/gtest.h>

#include "hms/common/error.hpp"
#include "hms/common/random.hpp"
#include "hms/cache/hierarchy.hpp"
#include "hms/mem/technology.hpp"
#include "hms/trace/trace_buffer.hpp"

namespace hms::cache {
namespace {

using mem::Technology;
using mem::TechnologyRegistry;

CacheLevelSpec level(std::string name, std::uint64_t capacity,
                     std::uint64_t line, std::uint32_t ways,
                     int sram_idx = 1) {
  CacheLevelSpec spec;
  spec.cache.name = std::move(name);
  spec.cache.capacity_bytes = capacity;
  spec.cache.line_bytes = line;
  spec.cache.associativity = ways;
  spec.tech = mem::sram_level(sram_idx).as_params();
  return spec;
}

mem::MemoryDeviceConfig dram(std::uint64_t capacity = 1ull << 24) {
  mem::MemoryDeviceConfig cfg;
  cfg.name = "DRAM";
  cfg.technology = TechnologyRegistry::table1().get(Technology::DRAM);
  cfg.capacity_bytes = capacity;
  cfg.line_bytes = 256;
  return cfg;
}

std::unique_ptr<MemoryHierarchy> two_level(std::uint64_t l1 = 512,
                                           std::uint64_t l2 = 2048) {
  std::vector<CacheLevelSpec> levels;
  levels.push_back(level("L1", l1, 64, 2, 1));
  levels.push_back(level("L2", l2, 64, 4, 2));
  return std::make_unique<MemoryHierarchy>(
      std::move(levels), std::make_unique<SingleMemoryBackend>(dram()));
}

const mem::MemoryDevice& device_of(const MemoryHierarchy& h) {
  return static_cast<const SingleMemoryBackend&>(h.backend()).device();
}

TEST(Hierarchy, ColdMissWalksAllLevels) {
  auto h = two_level();
  h->access(trace::load(0x1000, 8));
  const auto p = h->profile();
  ASSERT_EQ(p.levels.size(), 3u);
  EXPECT_EQ(p.levels[0].loads, 1u);   // L1 access
  EXPECT_EQ(p.levels[1].loads, 1u);   // L1 miss -> L2 fetch
  EXPECT_EQ(p.levels[2].loads, 1u);   // L2 miss -> memory fetch
  EXPECT_EQ(p.levels[1].load_bytes, 64u);  // line-sized fetch
  EXPECT_EQ(p.levels[2].load_bytes, 64u);
  EXPECT_EQ(p.references, 1u);
}

TEST(Hierarchy, HitStopsAtFirstLevel) {
  auto h = two_level();
  h->access(trace::load(0x1000, 8));
  h->access(trace::load(0x1008, 8));  // same line: L1 hit
  const auto p = h->profile();
  EXPECT_EQ(p.levels[0].loads, 2u);
  EXPECT_EQ(p.levels[1].loads, 1u);
  EXPECT_EQ(p.levels[2].loads, 1u);
}

TEST(Hierarchy, StoreMissFetchesThenDirties) {
  auto h = two_level();
  h->access(trace::store(0x2000, 8));
  const auto p = h->profile();
  // Write-allocate: the store counts at L1; the fill is a LOAD at L2 and
  // memory ("every other access to fetch a cache line is counted as a
  // read", paper III.B).
  EXPECT_EQ(p.levels[0].stores, 1u);
  EXPECT_EQ(p.levels[1].loads, 1u);
  EXPECT_EQ(p.levels[1].stores, 0u);
  EXPECT_EQ(p.levels[2].loads, 1u);
  EXPECT_EQ(p.levels[2].stores, 0u);
}

TEST(Hierarchy, DirtyEvictionReachesMemoryAsStore) {
  // Tiny direct-mapped L1 (2 lines) over memory to force dirty eviction.
  std::vector<CacheLevelSpec> levels;
  levels.push_back(level("L1", 128, 64, 1));
  MemoryHierarchy h(std::move(levels),
                    std::make_unique<SingleMemoryBackend>(dram()));
  h.access(trace::store(0x0000, 8));   // set 0, dirty
  h.access(trace::load(0x0080, 8));    // set 0 conflict -> evict dirty
  const auto p = h.profile();
  EXPECT_EQ(p.levels[1].stores, 1u);       // write-back
  EXPECT_EQ(p.levels[1].store_bytes, 64u);
  EXPECT_EQ(device_of(h).stats().writes, 1u);
}

TEST(Hierarchy, ReferencesCountSplitPieces) {
  auto h = two_level();
  h->access(trace::load(60, 8));  // straddles two 64 B lines
  EXPECT_EQ(h->references(), 2u);
  const auto p = h->profile();
  EXPECT_EQ(p.levels[0].loads, 2u);
  EXPECT_EQ(p.levels[0].load_bytes, 8u);  // 4 + 4
}

TEST(Hierarchy, ConservationAtEveryBoundary) {
  // Next-level loads == this level's misses; next-level stores == this
  // level's write-backs (single-path hierarchy invariant).
  auto h = two_level(512, 4096);
  Xoshiro256 rng(41);
  for (int i = 0; i < 50000; ++i) {
    const Address a = rng.below(1 << 16) & ~7ull;
    if (rng.chance(0.3)) {
      h->access(trace::store(a, 8));
    } else {
      h->access(trace::load(a, 8));
    }
  }
  const auto p = h->profile();
  const auto& l1 = p.levels[0].cache_stats;
  const auto& l2 = p.levels[1].cache_stats;
  EXPECT_EQ(p.levels[1].loads, l1.misses());
  EXPECT_EQ(p.levels[1].stores, l1.writebacks);
  EXPECT_EQ(p.levels[2].loads, l2.misses());
  EXPECT_EQ(p.levels[2].stores, l2.writebacks);
  // Device counters match the profile's memory row.
  EXPECT_EQ(device_of(*h).stats().reads, p.levels[2].loads);
  EXPECT_EQ(device_of(*h).stats().writes, p.levels[2].stores);
}

TEST(Hierarchy, LargerPageFetchesMoreBytes) {
  // An L2 with 256 B pages fetches 256 B per miss from memory.
  std::vector<CacheLevelSpec> levels;
  levels.push_back(level("L1", 512, 64, 2, 1));
  levels.push_back(level("L2", 4096, 256, 4, 2));
  MemoryHierarchy h(std::move(levels),
                    std::make_unique<SingleMemoryBackend>(dram()));
  h.access(trace::load(0x0, 8));
  const auto p = h.profile();
  EXPECT_EQ(p.levels[2].load_bytes, 256u);
  // And an L2 hit from a different 64 B line inside the same 256 B page:
  h.access(trace::load(0x80, 8));  // L1 miss, L2 hit
  const auto p2 = h.profile();
  EXPECT_EQ(p2.levels[1].loads, 2u);
  EXPECT_EQ(p2.levels[2].loads, 1u);  // no extra memory fetch
}

TEST(Hierarchy, DecreasingLineSizeRejected) {
  std::vector<CacheLevelSpec> levels;
  levels.push_back(level("L1", 512, 128, 2));
  levels.push_back(level("L2", 2048, 64, 4));
  EXPECT_THROW(MemoryHierarchy(std::move(levels),
                               std::make_unique<SingleMemoryBackend>(dram())),
               hms::ConfigError);
}

TEST(Hierarchy, FlushDrainsAllDirtyData) {
  auto h = two_level();
  for (Address a = 0; a < 64 * 64; a += 64) {
    h->access(trace::store(a, 8));
  }
  const Count before = device_of(*h).stats().writes;
  h->flush();
  const Count after = device_of(*h).stats().writes;
  EXPECT_GT(after, before);
  // After flush both caches are empty.
  EXPECT_EQ(h->level(0).occupancy(), 0u);
  EXPECT_EQ(h->level(1).occupancy(), 0u);
  // All 64 dirtied lines reached memory exactly once in total.
  EXPECT_EQ(after, 64u);
}

TEST(Hierarchy, CaptureBackendForwardsResidual) {
  trace::TraceBuffer residual;
  std::vector<CacheLevelSpec> levels;
  levels.push_back(level("L1", 128, 64, 1));
  MemoryHierarchy h(std::move(levels),
                    std::make_unique<CaptureBackend>(residual));
  h.access(trace::store(0x0000, 8));
  h.access(trace::load(0x0080, 8));  // evicts dirty line 0
  ASSERT_EQ(residual.size(), 3u);  // fetch 0x0, fetch 0x80, wb 0x0
  EXPECT_EQ(residual.loads(), 2u);
  EXPECT_EQ(residual.stores(), 1u);
  // No memory profile rows from a capture backend.
  EXPECT_EQ(h.profile().levels.size(), 1u);
}

TEST(Hierarchy, ZeroLevelHierarchyGoesStraightToMemory) {
  MemoryHierarchy h({}, std::make_unique<SingleMemoryBackend>(dram()));
  h.access(trace::load(0x100, 64));
  h.access(trace::store(0x200, 64));
  EXPECT_EQ(device_of(h).stats().reads, 1u);
  EXPECT_EQ(device_of(h).stats().writes, 1u);
  EXPECT_EQ(h.references(), 2u);
}

TEST(Hierarchy, ProfileCombineConcatenates) {
  HierarchyProfile front;
  front.references = 100;
  front.levels.resize(3);
  front.levels[0].name = "L1";
  HierarchyProfile back;
  back.references = 7;  // residual count, must be ignored
  back.levels.resize(2);
  back.levels[0].name = "L4";
  const auto combined = HierarchyProfile::combine(front, back);
  EXPECT_EQ(combined.references, 100u);
  ASSERT_EQ(combined.levels.size(), 5u);
  EXPECT_EQ(combined.levels[0].name, "L1");
  EXPECT_EQ(combined.levels[3].name, "L4");
}

}  // namespace
}  // namespace hms::cache
