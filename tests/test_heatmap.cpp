// HeatMapper — analytic latency/energy re-pricing (Figs. 9-10).
#include <gtest/gtest.h>

#include "hms/common/error.hpp"
#include "hms/sim/experiment.hpp"
#include "hms/sim/heatmap.hpp"

namespace hms::sim {
namespace {

using mem::Technology;

/// Builds heat-map inputs from a tiny NMM-N6 run.
std::vector<HeatMapInput> tiny_inputs() {
  ExperimentConfig cfg;
  cfg.scale_divisor = 512;
  cfg.footprint_divisor = 512;
  cfg.suite = {"StreamTriad", "Hashing"};
  ExperimentRunner runner(cfg);

  std::vector<HeatMapInput> inputs;
  for (const auto& workload : runner.suite()) {
    const auto& base = runner.base_report(workload);
    const auto& capture = runner.front(workload);
    auto back = runner.factory().nvm_main_memory_back(
        designs::n_config("N6"), Technology::PCM, capture.footprint_bytes);
    const auto profile = replay_back(capture, *back);
    HeatMapInput input;
    input.workload = workload;
    input.profile = profile;
    input.anchor = runner.anchor(workload);
    input.base = base;
    inputs.push_back(std::move(input));
  }
  return inputs;
}

TEST(HeatMap, GridShapeMatchesAxes) {
  HeatMapper mapper(tiny_inputs());
  const std::vector<double> reads = {1.0, 5.0};
  const std::vector<double> writes = {1.0, 2.0, 20.0};
  const auto grid = mapper.runtime_map(reads, writes);
  ASSERT_EQ(grid.values.size(), 3u);
  ASSERT_EQ(grid.values[0].size(), 2u);
  EXPECT_EQ(grid.read_multipliers, reads);
  EXPECT_EQ(grid.write_multipliers, writes);
}

TEST(HeatMap, RuntimeMonotoneInBothAxes) {
  HeatMapper mapper(tiny_inputs());
  const auto mults = HeatMapper::default_multipliers();
  const auto grid = mapper.runtime_map(mults, mults);
  for (std::size_t w = 0; w < mults.size(); ++w) {
    for (std::size_t r = 0; r + 1 < mults.size(); ++r) {
      EXPECT_LE(grid.at(w, r), grid.at(w, r + 1) + 1e-12);
    }
  }
  for (std::size_t r = 0; r < mults.size(); ++r) {
    for (std::size_t w = 0; w + 1 < mults.size(); ++w) {
      EXPECT_LE(grid.at(w, r), grid.at(w + 1, r) + 1e-12);
    }
  }
}

TEST(HeatMap, EnergyMonotoneInBothAxes) {
  HeatMapper mapper(tiny_inputs());
  const auto mults = HeatMapper::default_multipliers();
  const auto grid = mapper.energy_map(mults, mults);
  for (std::size_t w = 0; w < mults.size(); ++w) {
    for (std::size_t r = 0; r + 1 < mults.size(); ++r) {
      EXPECT_LE(grid.at(w, r), grid.at(w, r + 1) + 1e-12);
    }
  }
}

TEST(HeatMap, ReadsDominateWrites) {
  // Paper: "an increase in read latency has higher impact than an increase
  // in write latency" — memory reads (fetches) outnumber write-backs.
  HeatMapper mapper(tiny_inputs());
  const std::vector<double> mults = {1.0, 5.0};
  const auto grid = mapper.runtime_map(mults, mults);
  const double read_penalty = grid.at(0, 1) - grid.at(0, 0);
  const double write_penalty = grid.at(1, 0) - grid.at(0, 0);
  EXPECT_GT(read_penalty, write_penalty);
}

TEST(HeatMap, UnityCellNearBaseline) {
  // At 1x/1x the synthetic memory IS DRAM; the only difference from base
  // is the DRAM-cache level, so normalized runtime is close to 1.
  HeatMapper mapper(tiny_inputs());
  const auto grid = mapper.runtime_map({1.0}, {1.0});
  EXPECT_GT(grid.at(0, 0), 0.8);
  EXPECT_LT(grid.at(0, 0), 1.6);
}

TEST(HeatMap, DefaultMultipliersSpanPaperRange) {
  const auto m = HeatMapper::default_multipliers();
  EXPECT_DOUBLE_EQ(m.front(), 1.0);
  EXPECT_DOUBLE_EQ(m.back(), 20.0);
}

TEST(HeatMap, EmptyInputsThrow) {
  EXPECT_THROW(HeatMapper({}), hms::Error);
}

}  // namespace
}  // namespace hms::sim
