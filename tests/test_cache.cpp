// Set-associative cache (hms/cache/set_assoc_cache.hpp).
#include <gtest/gtest.h>

#include "hms/common/error.hpp"
#include "hms/common/random.hpp"
#include "hms/cache/set_assoc_cache.hpp"

namespace hms::cache {
namespace {

CacheConfig small_cache(std::uint64_t capacity = 1024, std::uint64_t line = 64,
                        std::uint32_t ways = 4) {
  CacheConfig cfg;
  cfg.name = "test";
  cfg.capacity_bytes = capacity;
  cfg.line_bytes = line;
  cfg.associativity = ways;
  return cfg;
}

TEST(Cache, Geometry) {
  SetAssocCache c(small_cache(1024, 64, 4));
  EXPECT_EQ(c.lines(), 16u);
  EXPECT_EQ(c.ways(), 4u);
  EXPECT_EQ(c.sets(), 4u);
}

TEST(Cache, FullyAssociativeViaZero) {
  auto cfg = small_cache(1024, 64, 0);
  SetAssocCache c(cfg);
  EXPECT_EQ(c.sets(), 1u);
  EXPECT_EQ(c.ways(), 16u);
}

TEST(Cache, ColdMissThenHit) {
  SetAssocCache c(small_cache());
  auto r1 = c.access(0x100, 8, AccessType::Load);
  EXPECT_FALSE(r1.hit);
  auto r2 = c.access(0x100, 8, AccessType::Load);
  EXPECT_TRUE(r2.hit);
  auto r3 = c.access(0x138, 8, AccessType::Load);  // same 64 B line
  EXPECT_TRUE(r3.hit);
  EXPECT_EQ(c.stats().load_misses, 1u);
  EXPECT_EQ(c.stats().load_hits, 2u);
}

TEST(Cache, StoreMakesLineDirty) {
  SetAssocCache c(small_cache());
  c.access(0x40, 8, AccessType::Store);
  EXPECT_TRUE(c.contains(0x40));
  EXPECT_TRUE(c.is_dirty(0x40));
  c.access(0x80, 8, AccessType::Load);
  EXPECT_FALSE(c.is_dirty(0x80));
}

TEST(Cache, DirtyEvictionProducesWriteback) {
  // 1 set of 4 ways at the chosen addresses: use a direct-mapped layout.
  auto cfg = small_cache(256, 64, 1);  // 4 sets, direct mapped
  SetAssocCache c(cfg);
  c.access(0x000, 8, AccessType::Store);        // set 0, dirty
  auto r = c.access(0x100, 8, AccessType::Load);  // same set, evicts
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(r.evicted);
  EXPECT_TRUE(r.writeback);
  EXPECT_EQ(r.victim_address, 0x000u);
  EXPECT_EQ(r.writeback_bytes, 64u);
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, CleanEvictionHasNoWriteback) {
  auto cfg = small_cache(256, 64, 1);
  SetAssocCache c(cfg);
  c.access(0x000, 8, AccessType::Load);
  auto r = c.access(0x100, 8, AccessType::Load);
  EXPECT_TRUE(r.evicted);
  EXPECT_FALSE(r.writeback);
  EXPECT_EQ(c.stats().evictions, 1u);
  EXPECT_EQ(c.stats().writebacks, 0u);
}

TEST(Cache, WriteAllocateOnStoreMiss) {
  SetAssocCache c(small_cache());
  auto r = c.access(0x200, 8, AccessType::Store);
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(c.contains(0x200));
  EXPECT_TRUE(c.is_dirty(0x200));
  EXPECT_EQ(c.stats().store_misses, 1u);
}

TEST(Cache, LruOrderWithinSet) {
  auto cfg = small_cache(256, 64, 4);  // 1 set, 4 ways
  SetAssocCache c(cfg);
  // Fill 4 ways: lines 0,1,2,3 (all map to set 0 with one set).
  for (Address a = 0; a < 4 * 64; a += 64) c.access(a, 8, AccessType::Load);
  c.access(0, 8, AccessType::Load);  // refresh line 0
  auto r = c.access(4 * 64, 8, AccessType::Load);  // evicts LRU = line 1
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(r.victim_address, 64u);
  EXPECT_TRUE(c.contains(0));
  EXPECT_FALSE(c.contains(64));
}

TEST(Cache, StraddlingAccessThrows) {
  SetAssocCache c(small_cache());
  EXPECT_THROW(c.access(60, 8, AccessType::Load), hms::Error);
  EXPECT_THROW(c.access(0, 0, AccessType::Load), hms::Error);
}

TEST(Cache, OccupancyGrowsToCapacity) {
  SetAssocCache c(small_cache(1024, 64, 4));
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    c.access(rng.below(1 << 20) & ~63ull, 8, AccessType::Load);
  }
  EXPECT_EQ(c.occupancy(), c.lines());
}

TEST(Cache, FlushReturnsDirtyLinesAndEmpties) {
  SetAssocCache c(small_cache());
  c.access(0x000, 8, AccessType::Store);
  c.access(0x040, 8, AccessType::Load);
  c.access(0x080, 8, AccessType::Store);
  auto dirty = c.flush();
  EXPECT_EQ(dirty.size(), 2u);
  EXPECT_EQ(c.occupancy(), 0u);
  EXPECT_FALSE(c.contains(0x000));
  for (const auto& [addr, bytes] : dirty) {
    EXPECT_EQ(bytes, 64u);
    EXPECT_TRUE(addr == 0x000 || addr == 0x080);
  }
}

TEST(Cache, StatsInvariants) {
  SetAssocCache c(small_cache(512, 64, 2));
  Xoshiro256 rng(17);
  Count accesses = 0;
  for (int i = 0; i < 20000; ++i) {
    const Address a = rng.below(1 << 14) & ~7ull;
    const auto type = rng.chance(0.3) ? AccessType::Store : AccessType::Load;
    c.access(a, 8, type);
    ++accesses;
  }
  const auto& s = c.stats();
  EXPECT_EQ(s.accesses(), accesses);
  EXPECT_EQ(s.hits() + s.misses(), accesses);
  EXPECT_LE(s.writebacks, s.evictions);
  EXPECT_LE(s.evictions, s.misses());
  EXPECT_GE(s.miss_rate(), 0.0);
  EXPECT_LE(s.miss_rate(), 1.0);
}

TEST(Cache, MoreWaysNeverHurtWithLruSameSets) {
  // Classic inclusion-style property: with the same number of SETS and
  // LRU, doubling associativity (and thus capacity) cannot increase
  // misses for any trace.
  Xoshiro256 rng(23);
  std::vector<std::pair<Address, AccessType>> trace;
  for (int i = 0; i < 30000; ++i) {
    trace.emplace_back(rng.below(1 << 15) & ~7ull,
                       rng.chance(0.25) ? AccessType::Store
                                        : AccessType::Load);
  }
  auto run = [&](std::uint32_t ways) {
    CacheConfig cfg;
    cfg.capacity_bytes = 64ull * 8 * ways;  // 8 sets x ways
    cfg.line_bytes = 64;
    cfg.associativity = ways;
    SetAssocCache c(cfg);
    for (const auto& [a, t] : trace) c.access(a, 8, t);
    return c.stats().misses();
  };
  const Count m2 = run(2);
  const Count m4 = run(4);
  const Count m8 = run(8);
  EXPECT_GE(m2, m4);
  EXPECT_GE(m4, m8);
}

TEST(Cache, SectorDirtyTracksPartialWritebacks) {
  CacheConfig cfg;
  cfg.capacity_bytes = 4096;
  cfg.line_bytes = 1024;
  cfg.associativity = 1;  // 4 sets, direct mapped
  cfg.sector_bytes = 64;
  SetAssocCache c(cfg);
  c.access(0x0000, 8, AccessType::Store);   // dirties sector 0 of line 0
  c.access(0x0040, 8, AccessType::Store);   // dirties sector 1
  auto r = c.access(0x1000, 8, AccessType::Load);  // same set -> evict
  EXPECT_TRUE(r.writeback);
  EXPECT_EQ(r.writeback_bytes, 128u);  // two dirty 64 B sectors only
}

TEST(Cache, WholeLineDirtyWithoutSectors) {
  CacheConfig cfg;
  cfg.capacity_bytes = 4096;
  cfg.line_bytes = 1024;
  cfg.associativity = 1;
  SetAssocCache c(cfg);
  c.access(0x0000, 8, AccessType::Store);
  auto r = c.access(0x1000, 8, AccessType::Load);
  EXPECT_TRUE(r.writeback);
  EXPECT_EQ(r.writeback_bytes, 1024u);  // whole page
}

TEST(Cache, SectorConfigValidation) {
  CacheConfig cfg;
  cfg.capacity_bytes = 8192;
  cfg.line_bytes = 8192;
  cfg.associativity = 1;
  cfg.sector_bytes = 64;  // 128 sectors > 64 limit
  EXPECT_THROW(SetAssocCache{cfg}, hms::ConfigError);
  cfg.sector_bytes = 128;  // 64 sectors: ok
  EXPECT_NO_THROW(SetAssocCache{cfg});
}

TEST(Cache, ConfigValidation) {
  auto bad = small_cache(0);
  EXPECT_THROW(SetAssocCache{bad}, hms::ConfigError);
  bad = small_cache(1000, 100);  // non-pow2 line
  EXPECT_THROW(SetAssocCache{bad}, hms::ConfigError);
  bad = small_cache(1024, 64, 32);  // assoc > lines
  EXPECT_THROW(SetAssocCache{bad}, hms::ConfigError);
  bad = small_cache(192, 64, 1);  // 3 sets: not a power of two
  EXPECT_THROW(SetAssocCache{bad}, hms::ConfigError);
}

TEST(Cache, TwentyWayL3GeometryAccepted) {
  // The Sandy Bridge L3: 20 MB, 20-way, 64 B lines -> 16384 sets.
  CacheConfig cfg;
  cfg.capacity_bytes = 20ull << 20;
  cfg.line_bytes = 64;
  cfg.associativity = 20;
  SetAssocCache c(cfg);
  EXPECT_EQ(c.sets(), 16384u);
  EXPECT_EQ(c.ways(), 20u);
}

class PolicyMissRateTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(PolicyMissRateTest, AllPoliciesServeTraceConsistently) {
  CacheConfig cfg = small_cache(2048, 64, 8);
  cfg.policy = GetParam();
  SetAssocCache c(cfg);
  Xoshiro256 rng(31);
  Count accesses = 0;
  for (int i = 0; i < 20000; ++i) {
    c.access(rng.below(1 << 14) & ~7ull, 8, AccessType::Load);
    ++accesses;
  }
  EXPECT_EQ(c.stats().accesses(), accesses);
  // Footprint (16 KiB) exceeds capacity (2 KiB): must both hit and miss.
  EXPECT_GT(c.stats().hits(), 0u);
  EXPECT_GT(c.stats().misses(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Policies, PolicyMissRateTest,
                         ::testing::Values(PolicyKind::LRU,
                                           PolicyKind::TreePLRU,
                                           PolicyKind::FIFO,
                                           PolicyKind::Random,
                                           PolicyKind::SRRIP));

}  // namespace
}  // namespace hms::cache
