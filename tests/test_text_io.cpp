// Text trace format (hms/trace/text_io.hpp).
#include <gtest/gtest.h>

#include <sstream>

#include "hms/common/error.hpp"
#include "hms/common/random.hpp"
#include "hms/trace/text_io.hpp"

namespace hms::trace {
namespace {

TEST(TextTrace, FormatsSingleAccess) {
  EXPECT_EQ(to_text(load(0x40, 64)), "L 0x40 64");
  EXPECT_EQ(to_text(store(0x1000, 8)), "S 0x1000 8");
  MemoryAccess a = load(0x10, 4, /*core=*/3);
  EXPECT_EQ(to_text(a), "L 0x10 4 3");
}

TEST(TextTrace, RoundTrip) {
  TraceBuffer original;
  Xoshiro256 rng(5);
  for (int i = 0; i < 500; ++i) {
    MemoryAccess a;
    a.address = rng.below(1ull << 40);
    a.size = static_cast<std::uint32_t>(1 + rng.below(512));
    a.type = rng.chance(0.4) ? AccessType::Store : AccessType::Load;
    a.core = static_cast<CoreId>(rng.below(8));
    original.access(a);
  }
  std::stringstream stream;
  write_text_trace(stream, original);
  const TraceBuffer loaded = read_text_trace(stream);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded.entries()[i], original.entries()[i]) << i;
  }
}

TEST(TextTrace, SkipsCommentsAndBlankLines) {
  std::stringstream in;
  in << "# header comment\n\n  \nL 0x100 64\n# trailing\nS 0x200 8 2\n";
  const auto buffer = read_text_trace(in);
  ASSERT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer.entries()[0].address, 0x100u);
  EXPECT_EQ(buffer.entries()[1].core, 2u);
}

TEST(TextTrace, AcceptsDecimalAddresses) {
  std::stringstream in;
  in << "L 256 64\n";
  const auto buffer = read_text_trace(in);
  EXPECT_EQ(buffer.entries()[0].address, 256u);
}

TEST(TextTrace, RejectsMalformedLines) {
  for (const char* bad : {"X 0x100 64", "L zzz 64", "L 0x100 0",
                          "L 0x100", "loadit"}) {
    std::stringstream in;
    in << bad << "\n";
    EXPECT_THROW((void)read_text_trace(in), TraceError) << bad;
  }
}

TEST(TextTrace, ErrorsMentionLineNumber) {
  std::stringstream in;
  in << "L 0x1 8\nL 0x2 8\nBROKEN\n";
  try {
    (void)read_text_trace(in);
    FAIL() << "expected TraceError";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

}  // namespace
}  // namespace hms::trace
