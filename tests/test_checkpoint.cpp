// SweepCheckpoint + experiment_hash (hms/sim/checkpoint.hpp).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>

#include "hms/common/crc32c.hpp"
#include "hms/common/error.hpp"
#include "hms/sim/checkpoint.hpp"

namespace hms::sim {
namespace {

/// Unique-ish temp path per test; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& tag)
      : path_(::testing::TempDir() + "hms_checkpoint_" + tag + ".bin") {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

SuiteResult sample_result(const std::string& name, double runtime) {
  SuiteResult r;
  r.config_name = name;
  r.runtime = runtime;
  r.dynamic = 1.25;
  r.leakage = 0.75;
  r.total_energy = 1.1;
  r.edp = runtime * 1.1;
  WorkloadResult wr;
  wr.report.design = name;
  wr.report.workload = "CG";
  wr.normalized.design = name;
  wr.normalized.workload = "CG";
  wr.normalized.runtime = runtime;
  wr.normalized.edp = runtime * 1.1;
  r.per_workload.push_back(wr);
  return r;
}

TEST(ExperimentHash, SensitiveToResultAffectingFields) {
  ExperimentConfig a;
  const std::uint64_t base = experiment_hash(a, "nmm:PCM");
  EXPECT_EQ(base, experiment_hash(a, "nmm:PCM"));  // stable
  EXPECT_NE(base, experiment_hash(a, "nmm:STT-RAM"));

  ExperimentConfig b = a;
  b.seed = 43;
  EXPECT_NE(base, experiment_hash(b, "nmm:PCM"));
  ExperimentConfig c = a;
  c.suite = {"CG"};
  EXPECT_NE(base, experiment_hash(c, "nmm:PCM"));
  ExperimentConfig d = a;
  d.scale_divisor = 128;
  EXPECT_NE(base, experiment_hash(d, "nmm:PCM"));
}

TEST(ExperimentHash, IgnoresExecutionOnlyKnobs) {
  ExperimentConfig a;
  ExperimentConfig b = a;
  b.threads = 7;
  b.max_retries = 3;
  b.checkpoint_path = "/tmp/elsewhere.bin";
  EXPECT_EQ(experiment_hash(a, "x"), experiment_hash(b, "x"));
}

TEST(Checkpoint, RoundTripsResults) {
  TempFile file("roundtrip");
  {
    SweepCheckpoint ckpt(file.path(), 0xabcdu);
    EXPECT_EQ(ckpt.size(), 0u);
    ckpt.append(sample_result("N1", 1.5));
    ckpt.append(sample_result("N6", 2.5));
  }
  SweepCheckpoint reloaded(file.path(), 0xabcdu);
  EXPECT_EQ(reloaded.size(), 2u);
  const SuiteResult* n1 = reloaded.find("N1");
  ASSERT_NE(n1, nullptr);
  EXPECT_DOUBLE_EQ(n1->runtime, 1.5);
  EXPECT_DOUBLE_EQ(n1->dynamic, 1.25);
  EXPECT_DOUBLE_EQ(n1->edp, 1.5 * 1.1);
  ASSERT_EQ(n1->per_workload.size(), 1u);
  EXPECT_EQ(n1->per_workload[0].normalized.workload, "CG");
  EXPECT_DOUBLE_EQ(n1->per_workload[0].normalized.runtime, 1.5);
  EXPECT_EQ(n1->per_workload[0].report.design, "N1");
  EXPECT_EQ(reloaded.find("N9"), nullptr);
}

TEST(Checkpoint, HashMismatchResetsFile) {
  TempFile file("mismatch");
  {
    SweepCheckpoint ckpt(file.path(), 1);
    ckpt.append(sample_result("N1", 1.5));
  }
  SweepCheckpoint other(file.path(), 2);  // different experiment
  EXPECT_EQ(other.size(), 0u);
  // And the stale record is really gone, not merely hidden.
  SweepCheckpoint reloaded(file.path(), 2);
  EXPECT_EQ(reloaded.size(), 0u);
}

TEST(Checkpoint, ToleratesTruncatedTrailingRecord) {
  TempFile file("truncated");
  std::uintmax_t full_size = 0;
  {
    SweepCheckpoint ckpt(file.path(), 7);
    ckpt.append(sample_result("N1", 1.5));
    ckpt.append(sample_result("N6", 2.5));
  }
  {
    std::ifstream in(file.path(), std::ios::binary | std::ios::ate);
    full_size = static_cast<std::uintmax_t>(in.tellg());
  }
  // Chop the tail of the last record, as a mid-append kill would.
  {
    std::ifstream in(file.path(), std::ios::binary);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    data.resize(data.size() - 5);
    std::ofstream out(file.path(), std::ios::binary | std::ios::trunc);
    out << data;
  }
  SweepCheckpoint reloaded(file.path(), 7);
  EXPECT_EQ(reloaded.size(), 1u);
  EXPECT_NE(reloaded.find("N1"), nullptr);
  EXPECT_EQ(reloaded.find("N6"), nullptr);
  // Appending after a truncated load keeps working.
  reloaded.append(sample_result("N6", 2.5));
  SweepCheckpoint again(file.path(), 7);
  EXPECT_EQ(again.size(), 2u);
  (void)full_size;
}

TEST(Checkpoint, GarbageFileIsReset) {
  TempFile file("garbage");
  {
    std::ofstream out(file.path(), std::ios::binary);
    out << "this is not a checkpoint";
  }
  SweepCheckpoint ckpt(file.path(), 9);
  EXPECT_EQ(ckpt.size(), 0u);
  ckpt.append(sample_result("EH1", 0.9));
  SweepCheckpoint reloaded(file.path(), 9);
  EXPECT_EQ(reloaded.size(), 1u);
}

TEST(Checkpoint, UnopenablePathThrowsIoErrorWithContext) {
  // /dev/null is a file, so no parent chain can be created beneath it —
  // an unopenable path even for root. The error must carry the path and
  // the OS reason, not just "cannot open".
  const std::string path = "/dev/null/sub/ckpt.bin";
  try {
    SweepCheckpoint ckpt(path, 1);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos) << e.what();
  }
}

TEST(Checkpoint, CreatesMissingParentDirectories) {
  const std::string root = ::testing::TempDir() + "hms_ckpt_parents";
  std::filesystem::remove_all(root);
  const std::string path = root + "/a/b/ckpt.bin";
  {
    SweepCheckpoint ckpt(path, 5);
    ckpt.append(sample_result("N1", 1.5));
  }
  EXPECT_TRUE(std::filesystem::exists(path));
  SweepCheckpoint reloaded(path, 5);
  EXPECT_EQ(reloaded.size(), 1u);
  std::filesystem::remove_all(root);
}

// -- hand-built legacy bytes (v1/v2 payloads predate the sampling fields) ---

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

void put_string(std::string& out, const std::string& s) {
  put_varint(out, s.size());
  out.append(s);
}

void put_u32le(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
  }
}

/// Pre-v3 payload for `sample_result(name, runtime)`: no sampled flags, no
/// spreads — the shape v1/v2 writers produced.
std::string legacy_payload(const std::string& name, double runtime) {
  const SuiteResult r = sample_result(name, runtime);
  std::string out;
  put_string(out, r.config_name);
  out.push_back('\0');  // partial
  put_f64(out, r.runtime);
  put_f64(out, r.dynamic);
  put_f64(out, r.leakage);
  put_f64(out, r.total_energy);
  put_f64(out, r.edp);
  put_varint(out, 0);  // failures
  put_varint(out, r.per_workload.size());
  for (const auto& wr : r.per_workload) {
    put_string(out, wr.normalized.workload);
    put_string(out, wr.normalized.design);
    put_f64(out, wr.normalized.runtime);
    put_f64(out, wr.normalized.dynamic);
    put_f64(out, wr.normalized.leakage);
    put_f64(out, wr.normalized.total_energy);
    put_f64(out, wr.normalized.edp);
  }
  return out;
}

std::string legacy_header(std::uint32_t version, std::uint64_t hash) {
  std::string out = "HMSK";
  put_u32le(out, version);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((hash >> (8 * i)) & 0xff));
  }
  return out;
}

TEST(Checkpoint, LegacyV1FileLoadsAndUpgrades) {
  // Hand-build a version-1 file (records without per-record CRC or sampling
  // fields) and check it loads, then is rewritten as v3 (gaining CRCs and
  // zeroed sampling fields).
  TempFile file("v1upgrade");
  {
    std::string v1 = legacy_header(1, 21);
    for (const auto& [name, runtime] :
         {std::pair<const char*, double>{"N1", 1.5}, {"N6", 2.5}}) {
      const std::string payload = legacy_payload(name, runtime);
      put_varint(v1, payload.size());
      v1 += payload;
    }
    std::ofstream out(file.path(), std::ios::binary | std::ios::trunc);
    out << v1;
  }
  SweepCheckpoint reloaded(file.path(), 21);
  EXPECT_EQ(reloaded.size(), 2u);
  ASSERT_NE(reloaded.find("N1"), nullptr);
  EXPECT_DOUBLE_EQ(reloaded.find("N1")->runtime, 1.5);
  EXPECT_FALSE(reloaded.find("N1")->sampled);
  EXPECT_EQ(reloaded.find("N1")->spread, MetricSpread{});
  // The file on disk is now v3.
  std::ifstream in(file.path(), std::ios::binary);
  const std::string upgraded{std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>()};
  EXPECT_EQ(upgraded[4], '\3');
  SweepCheckpoint again(file.path(), 21);
  EXPECT_EQ(again.size(), 2u);
}

TEST(Checkpoint, V2FileLoadsAsExactAndUpgrades) {
  // Version-2 records carry CRCs but predate the sampling fields; they load
  // with sampled = false and zero spread (those results were exact) and the
  // file is upgraded in place to v3.
  TempFile file("v2upgrade");
  {
    std::string v2 = legacy_header(2, 33);
    const std::string payload = legacy_payload("EH1", 0.8);
    put_varint(v2, payload.size());
    put_u32le(v2, crc32c(payload.data(), payload.size()));
    v2 += payload;
    std::ofstream out(file.path(), std::ios::binary | std::ios::trunc);
    out << v2;
  }
  SweepCheckpoint reloaded(file.path(), 33);
  EXPECT_EQ(reloaded.size(), 1u);
  const SuiteResult* r = reloaded.find("EH1");
  ASSERT_NE(r, nullptr);
  EXPECT_DOUBLE_EQ(r->runtime, 0.8);
  EXPECT_FALSE(r->sampled);
  EXPECT_EQ(r->spread, MetricSpread{});
  ASSERT_EQ(r->per_workload.size(), 1u);
  EXPECT_FALSE(r->per_workload[0].sampled);
  std::ifstream in(file.path(), std::ios::binary);
  const std::string upgraded{std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>()};
  EXPECT_EQ(upgraded[4], '\3');
}

TEST(Checkpoint, SampledResultsRoundTripWithSpread) {
  TempFile file("sampled");
  SuiteResult r = sample_result("N3", 1.7);
  r.sampled = true;
  r.spread.runtime = 0.05;
  r.spread.edp = 0.125;
  r.per_workload[0].sampled = true;
  r.per_workload[0].spread.runtime = 0.03;
  r.per_workload[0].spread.total_energy = 0.01;
  {
    SweepCheckpoint ckpt(file.path(), 55);
    ckpt.append(r);
  }
  SweepCheckpoint reloaded(file.path(), 55);
  const SuiteResult* got = reloaded.find("N3");
  ASSERT_NE(got, nullptr);
  EXPECT_TRUE(got->sampled);
  EXPECT_EQ(got->spread, r.spread);
  ASSERT_EQ(got->per_workload.size(), 1u);
  EXPECT_TRUE(got->per_workload[0].sampled);
  EXPECT_EQ(got->per_workload[0].spread, r.per_workload[0].spread);
}

TEST(Checkpoint, CorruptedRecordTruncatesToLastGood) {
  TempFile file("bitrot");
  {
    SweepCheckpoint ckpt(file.path(), 31);
    ckpt.append(sample_result("N1", 1.5));
    ckpt.append(sample_result("N3", 2.0));
    ckpt.append(sample_result("N6", 2.5));
  }
  std::string data;
  {
    std::ifstream in(file.path(), std::ios::binary);
    data.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  // Flip one payload byte inside the SECOND record: first record survives,
  // second and third (everything at/after the corruption) are dropped.
  const auto len0 =
      static_cast<std::size_t>(static_cast<unsigned char>(data[16]));
  const std::size_t second = 16 + 1 + 4 + len0;
  data[second + 1 + 4 + 3] ^= 0x40;
  {
    std::ofstream out(file.path(), std::ios::binary | std::ios::trunc);
    out << data;
  }
  SweepCheckpoint reloaded(file.path(), 31);
  EXPECT_EQ(reloaded.size(), 1u);
  EXPECT_NE(reloaded.find("N1"), nullptr);
  EXPECT_EQ(reloaded.find("N3"), nullptr);
  // The corrupt suffix was physically truncated; appends resume cleanly.
  reloaded.append(sample_result("N3", 2.0));
  reloaded.append(sample_result("N6", 2.5));
  SweepCheckpoint again(file.path(), 31);
  EXPECT_EQ(again.size(), 3u);
}

TEST(Checkpoint, PersistsFailureListsForPartialResults) {
  // The sweep layer only checkpoints complete results today, but the format
  // round-trips failure lists so that policy can evolve without a version
  // bump.
  TempFile file("partial");
  SuiteResult partial = sample_result("N3", 1.2);
  partial.partial = true;
  partial.failures.push_back({"CG", "config N3 / workload CG: boom"});
  {
    SweepCheckpoint ckpt(file.path(), 11);
    ckpt.append(partial);
  }
  SweepCheckpoint reloaded(file.path(), 11);
  const SuiteResult* r = reloaded.find("N3");
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->partial);
  ASSERT_EQ(r->failures.size(), 1u);
  EXPECT_EQ(r->failures[0].workload, "CG");
  EXPECT_EQ(r->failures[0].error, "config N3 / workload CG: boom");
}

}  // namespace
}  // namespace hms::sim
