// SweepCheckpoint + experiment_hash (hms/sim/checkpoint.hpp).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "hms/common/error.hpp"
#include "hms/sim/checkpoint.hpp"

namespace hms::sim {
namespace {

/// Unique-ish temp path per test; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& tag)
      : path_(::testing::TempDir() + "hms_checkpoint_" + tag + ".bin") {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

SuiteResult sample_result(const std::string& name, double runtime) {
  SuiteResult r;
  r.config_name = name;
  r.runtime = runtime;
  r.dynamic = 1.25;
  r.leakage = 0.75;
  r.total_energy = 1.1;
  r.edp = runtime * 1.1;
  WorkloadResult wr;
  wr.report.design = name;
  wr.report.workload = "CG";
  wr.normalized.design = name;
  wr.normalized.workload = "CG";
  wr.normalized.runtime = runtime;
  wr.normalized.edp = runtime * 1.1;
  r.per_workload.push_back(wr);
  return r;
}

TEST(ExperimentHash, SensitiveToResultAffectingFields) {
  ExperimentConfig a;
  const std::uint64_t base = experiment_hash(a, "nmm:PCM");
  EXPECT_EQ(base, experiment_hash(a, "nmm:PCM"));  // stable
  EXPECT_NE(base, experiment_hash(a, "nmm:STT-RAM"));

  ExperimentConfig b = a;
  b.seed = 43;
  EXPECT_NE(base, experiment_hash(b, "nmm:PCM"));
  ExperimentConfig c = a;
  c.suite = {"CG"};
  EXPECT_NE(base, experiment_hash(c, "nmm:PCM"));
  ExperimentConfig d = a;
  d.scale_divisor = 128;
  EXPECT_NE(base, experiment_hash(d, "nmm:PCM"));
}

TEST(ExperimentHash, IgnoresExecutionOnlyKnobs) {
  ExperimentConfig a;
  ExperimentConfig b = a;
  b.threads = 7;
  b.max_retries = 3;
  b.checkpoint_path = "/tmp/elsewhere.bin";
  EXPECT_EQ(experiment_hash(a, "x"), experiment_hash(b, "x"));
}

TEST(Checkpoint, RoundTripsResults) {
  TempFile file("roundtrip");
  {
    SweepCheckpoint ckpt(file.path(), 0xabcdu);
    EXPECT_EQ(ckpt.size(), 0u);
    ckpt.append(sample_result("N1", 1.5));
    ckpt.append(sample_result("N6", 2.5));
  }
  SweepCheckpoint reloaded(file.path(), 0xabcdu);
  EXPECT_EQ(reloaded.size(), 2u);
  const SuiteResult* n1 = reloaded.find("N1");
  ASSERT_NE(n1, nullptr);
  EXPECT_DOUBLE_EQ(n1->runtime, 1.5);
  EXPECT_DOUBLE_EQ(n1->dynamic, 1.25);
  EXPECT_DOUBLE_EQ(n1->edp, 1.5 * 1.1);
  ASSERT_EQ(n1->per_workload.size(), 1u);
  EXPECT_EQ(n1->per_workload[0].normalized.workload, "CG");
  EXPECT_DOUBLE_EQ(n1->per_workload[0].normalized.runtime, 1.5);
  EXPECT_EQ(n1->per_workload[0].report.design, "N1");
  EXPECT_EQ(reloaded.find("N9"), nullptr);
}

TEST(Checkpoint, HashMismatchResetsFile) {
  TempFile file("mismatch");
  {
    SweepCheckpoint ckpt(file.path(), 1);
    ckpt.append(sample_result("N1", 1.5));
  }
  SweepCheckpoint other(file.path(), 2);  // different experiment
  EXPECT_EQ(other.size(), 0u);
  // And the stale record is really gone, not merely hidden.
  SweepCheckpoint reloaded(file.path(), 2);
  EXPECT_EQ(reloaded.size(), 0u);
}

TEST(Checkpoint, ToleratesTruncatedTrailingRecord) {
  TempFile file("truncated");
  std::uintmax_t full_size = 0;
  {
    SweepCheckpoint ckpt(file.path(), 7);
    ckpt.append(sample_result("N1", 1.5));
    ckpt.append(sample_result("N6", 2.5));
  }
  {
    std::ifstream in(file.path(), std::ios::binary | std::ios::ate);
    full_size = static_cast<std::uintmax_t>(in.tellg());
  }
  // Chop the tail of the last record, as a mid-append kill would.
  {
    std::ifstream in(file.path(), std::ios::binary);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    data.resize(data.size() - 5);
    std::ofstream out(file.path(), std::ios::binary | std::ios::trunc);
    out << data;
  }
  SweepCheckpoint reloaded(file.path(), 7);
  EXPECT_EQ(reloaded.size(), 1u);
  EXPECT_NE(reloaded.find("N1"), nullptr);
  EXPECT_EQ(reloaded.find("N6"), nullptr);
  // Appending after a truncated load keeps working.
  reloaded.append(sample_result("N6", 2.5));
  SweepCheckpoint again(file.path(), 7);
  EXPECT_EQ(again.size(), 2u);
  (void)full_size;
}

TEST(Checkpoint, GarbageFileIsReset) {
  TempFile file("garbage");
  {
    std::ofstream out(file.path(), std::ios::binary);
    out << "this is not a checkpoint";
  }
  SweepCheckpoint ckpt(file.path(), 9);
  EXPECT_EQ(ckpt.size(), 0u);
  ckpt.append(sample_result("EH1", 0.9));
  SweepCheckpoint reloaded(file.path(), 9);
  EXPECT_EQ(reloaded.size(), 1u);
}

TEST(Checkpoint, UnopenablePathThrowsIoErrorWithContext) {
  // /dev/null is a file, so no parent chain can be created beneath it —
  // an unopenable path even for root. The error must carry the path and
  // the OS reason, not just "cannot open".
  const std::string path = "/dev/null/sub/ckpt.bin";
  try {
    SweepCheckpoint ckpt(path, 1);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos) << e.what();
  }
}

TEST(Checkpoint, CreatesMissingParentDirectories) {
  const std::string root = ::testing::TempDir() + "hms_ckpt_parents";
  std::filesystem::remove_all(root);
  const std::string path = root + "/a/b/ckpt.bin";
  {
    SweepCheckpoint ckpt(path, 5);
    ckpt.append(sample_result("N1", 1.5));
  }
  EXPECT_TRUE(std::filesystem::exists(path));
  SweepCheckpoint reloaded(path, 5);
  EXPECT_EQ(reloaded.size(), 1u);
  std::filesystem::remove_all(root);
}

TEST(Checkpoint, LegacyV1FileLoadsAndUpgrades) {
  // Hand-build a version-1 file (records without per-record CRC) and check
  // it loads, then is rewritten as v2 (a corrupted byte in the re-written
  // file is caught by the CRC — v1 had no such detection).
  TempFile file("v1upgrade");
  {
    SweepCheckpoint ckpt(file.path(), 21);
    ckpt.append(sample_result("N1", 1.5));
    ckpt.append(sample_result("N6", 2.5));
  }
  // Down-convert the v2 file to v1 bytes: patch the version field and strip
  // each record's 4-byte CRC (records start after the 16-byte header).
  std::string data;
  {
    std::ifstream in(file.path(), std::ios::binary);
    data.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  data[4] = '\1';  // version u32 LE: 2 -> 1
  std::string v1(data.substr(0, 16));
  std::size_t pos = 16;
  while (pos < data.size()) {
    // varint length (these payloads are < 128 bytes each -> 1 byte)
    const auto len = static_cast<std::size_t>(
        static_cast<unsigned char>(data[pos]));
    ASSERT_LT(len, 128u);
    v1.push_back(data[pos]);
    v1.append(data.substr(pos + 1 + 4, len));  // skip the CRC
    pos += 1 + 4 + len;
  }
  {
    std::ofstream out(file.path(), std::ios::binary | std::ios::trunc);
    out << v1;
  }
  SweepCheckpoint reloaded(file.path(), 21);
  EXPECT_EQ(reloaded.size(), 2u);
  ASSERT_NE(reloaded.find("N1"), nullptr);
  EXPECT_DOUBLE_EQ(reloaded.find("N1")->runtime, 1.5);
  // The file on disk is now v2 again.
  std::ifstream in(file.path(), std::ios::binary);
  const std::string upgraded{std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>()};
  EXPECT_EQ(upgraded[4], '\2');
}

TEST(Checkpoint, CorruptedRecordTruncatesToLastGood) {
  TempFile file("bitrot");
  {
    SweepCheckpoint ckpt(file.path(), 31);
    ckpt.append(sample_result("N1", 1.5));
    ckpt.append(sample_result("N3", 2.0));
    ckpt.append(sample_result("N6", 2.5));
  }
  std::string data;
  {
    std::ifstream in(file.path(), std::ios::binary);
    data.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  // Flip one payload byte inside the SECOND record: first record survives,
  // second and third (everything at/after the corruption) are dropped.
  const auto len0 =
      static_cast<std::size_t>(static_cast<unsigned char>(data[16]));
  const std::size_t second = 16 + 1 + 4 + len0;
  data[second + 1 + 4 + 3] ^= 0x40;
  {
    std::ofstream out(file.path(), std::ios::binary | std::ios::trunc);
    out << data;
  }
  SweepCheckpoint reloaded(file.path(), 31);
  EXPECT_EQ(reloaded.size(), 1u);
  EXPECT_NE(reloaded.find("N1"), nullptr);
  EXPECT_EQ(reloaded.find("N3"), nullptr);
  // The corrupt suffix was physically truncated; appends resume cleanly.
  reloaded.append(sample_result("N3", 2.0));
  reloaded.append(sample_result("N6", 2.5));
  SweepCheckpoint again(file.path(), 31);
  EXPECT_EQ(again.size(), 3u);
}

TEST(Checkpoint, PersistsFailureListsForPartialResults) {
  // The sweep layer only checkpoints complete results today, but the format
  // round-trips failure lists so that policy can evolve without a version
  // bump.
  TempFile file("partial");
  SuiteResult partial = sample_result("N3", 1.2);
  partial.partial = true;
  partial.failures.push_back({"CG", "config N3 / workload CG: boom"});
  {
    SweepCheckpoint ckpt(file.path(), 11);
    ckpt.append(partial);
  }
  SweepCheckpoint reloaded(file.path(), 11);
  const SuiteResult* r = reloaded.find("N3");
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->partial);
  ASSERT_EQ(r->failures.size(), 1u);
  EXPECT_EQ(r->failures[0].workload, "CG");
  EXPECT_EQ(r->failures[0].error, "config N3 / workload CG: boom");
}

}  // namespace
}  // namespace hms::sim
