// SweepCheckpoint + experiment_hash (hms/sim/checkpoint.hpp).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "hms/common/error.hpp"
#include "hms/sim/checkpoint.hpp"

namespace hms::sim {
namespace {

/// Unique-ish temp path per test; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& tag)
      : path_(::testing::TempDir() + "hms_checkpoint_" + tag + ".bin") {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

SuiteResult sample_result(const std::string& name, double runtime) {
  SuiteResult r;
  r.config_name = name;
  r.runtime = runtime;
  r.dynamic = 1.25;
  r.leakage = 0.75;
  r.total_energy = 1.1;
  r.edp = runtime * 1.1;
  WorkloadResult wr;
  wr.report.design = name;
  wr.report.workload = "CG";
  wr.normalized.design = name;
  wr.normalized.workload = "CG";
  wr.normalized.runtime = runtime;
  wr.normalized.edp = runtime * 1.1;
  r.per_workload.push_back(wr);
  return r;
}

TEST(ExperimentHash, SensitiveToResultAffectingFields) {
  ExperimentConfig a;
  const std::uint64_t base = experiment_hash(a, "nmm:PCM");
  EXPECT_EQ(base, experiment_hash(a, "nmm:PCM"));  // stable
  EXPECT_NE(base, experiment_hash(a, "nmm:STT-RAM"));

  ExperimentConfig b = a;
  b.seed = 43;
  EXPECT_NE(base, experiment_hash(b, "nmm:PCM"));
  ExperimentConfig c = a;
  c.suite = {"CG"};
  EXPECT_NE(base, experiment_hash(c, "nmm:PCM"));
  ExperimentConfig d = a;
  d.scale_divisor = 128;
  EXPECT_NE(base, experiment_hash(d, "nmm:PCM"));
}

TEST(ExperimentHash, IgnoresExecutionOnlyKnobs) {
  ExperimentConfig a;
  ExperimentConfig b = a;
  b.threads = 7;
  b.max_retries = 3;
  b.checkpoint_path = "/tmp/elsewhere.bin";
  EXPECT_EQ(experiment_hash(a, "x"), experiment_hash(b, "x"));
}

TEST(Checkpoint, RoundTripsResults) {
  TempFile file("roundtrip");
  {
    SweepCheckpoint ckpt(file.path(), 0xabcdu);
    EXPECT_EQ(ckpt.size(), 0u);
    ckpt.append(sample_result("N1", 1.5));
    ckpt.append(sample_result("N6", 2.5));
  }
  SweepCheckpoint reloaded(file.path(), 0xabcdu);
  EXPECT_EQ(reloaded.size(), 2u);
  const SuiteResult* n1 = reloaded.find("N1");
  ASSERT_NE(n1, nullptr);
  EXPECT_DOUBLE_EQ(n1->runtime, 1.5);
  EXPECT_DOUBLE_EQ(n1->dynamic, 1.25);
  EXPECT_DOUBLE_EQ(n1->edp, 1.5 * 1.1);
  ASSERT_EQ(n1->per_workload.size(), 1u);
  EXPECT_EQ(n1->per_workload[0].normalized.workload, "CG");
  EXPECT_DOUBLE_EQ(n1->per_workload[0].normalized.runtime, 1.5);
  EXPECT_EQ(n1->per_workload[0].report.design, "N1");
  EXPECT_EQ(reloaded.find("N9"), nullptr);
}

TEST(Checkpoint, HashMismatchResetsFile) {
  TempFile file("mismatch");
  {
    SweepCheckpoint ckpt(file.path(), 1);
    ckpt.append(sample_result("N1", 1.5));
  }
  SweepCheckpoint other(file.path(), 2);  // different experiment
  EXPECT_EQ(other.size(), 0u);
  // And the stale record is really gone, not merely hidden.
  SweepCheckpoint reloaded(file.path(), 2);
  EXPECT_EQ(reloaded.size(), 0u);
}

TEST(Checkpoint, ToleratesTruncatedTrailingRecord) {
  TempFile file("truncated");
  std::uintmax_t full_size = 0;
  {
    SweepCheckpoint ckpt(file.path(), 7);
    ckpt.append(sample_result("N1", 1.5));
    ckpt.append(sample_result("N6", 2.5));
  }
  {
    std::ifstream in(file.path(), std::ios::binary | std::ios::ate);
    full_size = static_cast<std::uintmax_t>(in.tellg());
  }
  // Chop the tail of the last record, as a mid-append kill would.
  {
    std::ifstream in(file.path(), std::ios::binary);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    data.resize(data.size() - 5);
    std::ofstream out(file.path(), std::ios::binary | std::ios::trunc);
    out << data;
  }
  SweepCheckpoint reloaded(file.path(), 7);
  EXPECT_EQ(reloaded.size(), 1u);
  EXPECT_NE(reloaded.find("N1"), nullptr);
  EXPECT_EQ(reloaded.find("N6"), nullptr);
  // Appending after a truncated load keeps working.
  reloaded.append(sample_result("N6", 2.5));
  SweepCheckpoint again(file.path(), 7);
  EXPECT_EQ(again.size(), 2u);
  (void)full_size;
}

TEST(Checkpoint, GarbageFileIsReset) {
  TempFile file("garbage");
  {
    std::ofstream out(file.path(), std::ios::binary);
    out << "this is not a checkpoint";
  }
  SweepCheckpoint ckpt(file.path(), 9);
  EXPECT_EQ(ckpt.size(), 0u);
  ckpt.append(sample_result("EH1", 0.9));
  SweepCheckpoint reloaded(file.path(), 9);
  EXPECT_EQ(reloaded.size(), 1u);
}

TEST(Checkpoint, UnopenablePathThrowsIoError) {
  EXPECT_THROW(SweepCheckpoint("/nonexistent-dir/nope/ckpt.bin", 1), IoError);
}

TEST(Checkpoint, PersistsFailureListsForPartialResults) {
  // The sweep layer only checkpoints complete results today, but the format
  // round-trips failure lists so that policy can evolve without a version
  // bump.
  TempFile file("partial");
  SuiteResult partial = sample_result("N3", 1.2);
  partial.partial = true;
  partial.failures.push_back({"CG", "config N3 / workload CG: boom"});
  {
    SweepCheckpoint ckpt(file.path(), 11);
    ckpt.append(partial);
  }
  SweepCheckpoint reloaded(file.path(), 11);
  const SuiteResult* r = reloaded.find("N3");
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->partial);
  ASSERT_EQ(r->failures.size(), 1u);
  EXPECT_EQ(r->failures[0].workload, "CG");
  EXPECT_EQ(r->failures[0].error, "config N3 / workload CG: boom");
}

}  // namespace
}  // namespace hms::sim
