// Paper configuration tables (hms/designs/configs.hpp).
#include <gtest/gtest.h>

#include "hms/common/error.hpp"
#include "hms/designs/configs.hpp"

namespace hms::designs {
namespace {

TEST(Table2, EightConfigs) {
  const auto& ehs = eh_configs();
  ASSERT_EQ(ehs.size(), 8u);
  // EH1-EH6: 16 MB with page sizes 64..2048.
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(ehs[static_cast<std::size_t>(i)].l4_capacity_bytes,
              16ull << 20);
    EXPECT_EQ(ehs[static_cast<std::size_t>(i)].page_bytes,
              64ull << i);
  }
  EXPECT_EQ(ehs[6].l4_capacity_bytes, 8ull << 20);
  EXPECT_EQ(ehs[6].page_bytes, 2048u);
  // EH8 repaired from the corrupted printed row: next halving.
  EXPECT_EQ(ehs[7].l4_capacity_bytes, 4ull << 20);
  EXPECT_EQ(ehs[7].page_bytes, 2048u);
}

TEST(Table2, LookupByName) {
  EXPECT_EQ(eh_config("EH1").page_bytes, 64u);
  EXPECT_EQ(eh_config("eh5").page_bytes, 1024u);
  EXPECT_THROW((void)eh_config("EH9"), hms::Error);
}

TEST(Table3, NineConfigs) {
  const auto& ns = n_configs();
  ASSERT_EQ(ns.size(), 9u);
  EXPECT_EQ(ns[0].dram_capacity_bytes, 128ull << 20);
  EXPECT_EQ(ns[0].page_bytes, 4096u);
  EXPECT_EQ(ns[1].dram_capacity_bytes, 256ull << 20);
  EXPECT_EQ(ns[2].dram_capacity_bytes, 512ull << 20);
  // N3..N9: fixed 512 MB, page halving 4096 -> 64.
  for (int i = 2; i < 9; ++i) {
    EXPECT_EQ(ns[static_cast<std::size_t>(i)].dram_capacity_bytes,
              512ull << 20);
    EXPECT_EQ(ns[static_cast<std::size_t>(i)].page_bytes,
              4096ull >> (i - 2));
  }
}

TEST(Table3, LookupByName) {
  EXPECT_EQ(n_config("N6").page_bytes, 512u);
  EXPECT_EQ(n_config("n6").dram_capacity_bytes, 512ull << 20);
  EXPECT_THROW((void)n_config("N10"), hms::Error);
}

TEST(ReferenceCaches, SandyBridgeGeometry) {
  const ReferenceCaches ref;
  EXPECT_EQ(ref.line_bytes, 64u);
  EXPECT_EQ(ref.l1_capacity, 32ull << 10);
  EXPECT_EQ(ref.l1_ways, 8u);
  EXPECT_EQ(ref.l2_capacity, 256ull << 10);
  EXPECT_EQ(ref.l2_ways, 8u);
  EXPECT_EQ(ref.l3_capacity, 20ull << 20);
  EXPECT_EQ(ref.l3_ways, 20u);
}

TEST(Ndm, FixedDramPartition) {
  EXPECT_EQ(kNdmDramCapacity, 512ull << 20);
}

}  // namespace
}  // namespace hms::designs
