// Instrumented Array<T> (hms/workloads/instrumented.hpp).
#include <gtest/gtest.h>

#include "hms/trace/trace_buffer.hpp"
#include "hms/workloads/instrumented.hpp"

namespace hms::workloads {
namespace {

TEST(Array, GetEmitsLoadAtElementAddress) {
  VirtualAddressSpace vas;
  trace::TraceBuffer sink;
  Array<double> a(vas, sink, "a", 16, 1.5);
  EXPECT_DOUBLE_EQ(a.get(3), 1.5);
  ASSERT_EQ(sink.size(), 1u);
  const auto& rec = sink.entries()[0];
  EXPECT_EQ(rec.address, a.base() + 3 * sizeof(double));
  EXPECT_EQ(rec.size, sizeof(double));
  EXPECT_EQ(rec.type, AccessType::Load);
}

TEST(Array, SetEmitsStoreAndUpdatesValue) {
  VirtualAddressSpace vas;
  trace::TraceBuffer sink;
  Array<std::uint32_t> a(vas, sink, "a", 8);
  a.set(5, 77);
  EXPECT_EQ(a.raw(5), 77u);
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.entries()[0].type, AccessType::Store);
  EXPECT_EQ(sink.entries()[0].size, sizeof(std::uint32_t));
}

TEST(Array, UpdateEmitsLoadThenStore) {
  VirtualAddressSpace vas;
  trace::TraceBuffer sink;
  Array<int> a(vas, sink, "a", 4, 10);
  a.update(2, [](int v) { return v + 1; });
  EXPECT_EQ(a.raw(2), 11);
  ASSERT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.entries()[0].type, AccessType::Load);
  EXPECT_EQ(sink.entries()[1].type, AccessType::Store);
  EXPECT_EQ(sink.entries()[0].address, sink.entries()[1].address);
}

TEST(Array, RawDoesNotEmit) {
  VirtualAddressSpace vas;
  trace::TraceBuffer sink;
  Array<double> a(vas, sink, "a", 4);
  a.raw(0) = 9.0;
  (void)a.raw(0);
  EXPECT_TRUE(sink.empty());
}

TEST(Array, RegistersRangeInVas) {
  VirtualAddressSpace vas;
  trace::TraceBuffer sink;
  Array<double> a(vas, sink, "field", 100);
  const auto& r = vas.range("field");
  EXPECT_EQ(r.base, a.base());
  EXPECT_EQ(r.length, 100 * sizeof(double));
}

TEST(Array, TwoArraysDoNotOverlap) {
  VirtualAddressSpace vas;
  trace::TraceBuffer sink;
  Array<double> a(vas, sink, "a", 1000);
  Array<double> b(vas, sink, "b", 1000);
  EXPECT_GE(b.base(), a.base() + 1000 * sizeof(double));
}

TEST(Array, SequentialAddressesAreContiguous) {
  VirtualAddressSpace vas;
  trace::TraceBuffer sink;
  Array<float> a(vas, sink, "a", 10);
  for (std::size_t i = 0; i + 1 < a.size(); ++i) {
    EXPECT_EQ(a.address_of(i + 1) - a.address_of(i), sizeof(float));
  }
}

}  // namespace
}  // namespace hms::workloads
