// SimPoint-style sampled replay (sim/sampling.hpp + trace/interval_profile):
// knob parsing, signature/chunk alignment, plan determinism, degenerate
// exactness, cross-mode/thread identity of sampled sweeps, estimation
// accuracy against exact replay, error bars, degrade/retry parity, and
// checkpoint hash binding.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "hms/common/error.hpp"
#include "hms/common/fault.hpp"
#include "hms/designs/configs.hpp"
#include "hms/sim/checkpoint.hpp"
#include "hms/sim/experiment.hpp"
#include "hms/sim/sampling.hpp"
#include "hms/trace/chunked_trace.hpp"
#include "hms/trace/interval_profile.hpp"

namespace hms::sim {
namespace {

using mem::Technology;

/// RAII guard: sets (or clears) an env var and restores the previous value
/// on destruction so the ambient test environment stays clean.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

class TempFile {
 public:
  explicit TempFile(const std::string& tag)
      : path_(::testing::TempDir() + "hms_sampling_" + tag + ".bin") {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Tiny but non-degenerate grid: at scale 512 the CG residual spans ~14
/// chunks (so k = 4 genuinely samples) while StreamTriad has only 2 (its
/// plan degenerates to exact — the mixed case a real suite hits).
ExperimentConfig sampled_config(ReplayMode mode, SamplingMode sampling,
                                std::uint32_t k = 4) {
  ExperimentConfig cfg;
  cfg.scale_divisor = 512;
  cfg.footprint_divisor = 512;
  cfg.seed = 42;
  cfg.iterations = 1;
  cfg.suite = {"StreamTriad", "CG"};
  cfg.threads = 2;
  cfg.replay_mode = mode;
  cfg.sampling = sampling;
  cfg.sample_k = k;
  cfg.warmup_chunks = 1;
  return cfg;
}

const std::vector<designs::NConfig> three_configs() {
  return {designs::n_config("N1"), designs::n_config("N3"),
          designs::n_config("N6")};
}

void expect_suites_identical(const std::vector<SuiteResult>& a,
                             const std::vector<SuiteResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(a[i].config_name);
    EXPECT_EQ(a[i].config_name, b[i].config_name);
    EXPECT_EQ(a[i].partial, b[i].partial);
    EXPECT_EQ(a[i].sampled, b[i].sampled);
    EXPECT_DOUBLE_EQ(a[i].runtime, b[i].runtime);
    EXPECT_DOUBLE_EQ(a[i].dynamic, b[i].dynamic);
    EXPECT_DOUBLE_EQ(a[i].leakage, b[i].leakage);
    EXPECT_DOUBLE_EQ(a[i].total_energy, b[i].total_energy);
    EXPECT_DOUBLE_EQ(a[i].edp, b[i].edp);
    EXPECT_EQ(a[i].spread, b[i].spread);
    ASSERT_EQ(a[i].per_workload.size(), b[i].per_workload.size());
    for (std::size_t w = 0; w < a[i].per_workload.size(); ++w) {
      EXPECT_EQ(a[i].per_workload[w].sampled, b[i].per_workload[w].sampled);
      EXPECT_EQ(a[i].per_workload[w].spread, b[i].per_workload[w].spread);
      const auto& na = a[i].per_workload[w].normalized;
      const auto& nb = b[i].per_workload[w].normalized;
      EXPECT_DOUBLE_EQ(na.runtime, nb.runtime);
      EXPECT_DOUBLE_EQ(na.total_energy, nb.total_energy);
      EXPECT_DOUBLE_EQ(na.edp, nb.edp);
    }
  }
}

// -- knob parsing -----------------------------------------------------------

TEST(Sampling, ModeParsesEnv) {
  {
    ScopedEnv env("HMS_SAMPLING", nullptr);
    EXPECT_EQ(default_sampling_mode(), SamplingMode::Full);
  }
  {
    ScopedEnv env("HMS_SAMPLING", "");
    EXPECT_EQ(default_sampling_mode(), SamplingMode::Full);
  }
  {
    ScopedEnv env("HMS_SAMPLING", "full");
    EXPECT_EQ(default_sampling_mode(), SamplingMode::Full);
  }
  {
    ScopedEnv env("HMS_SAMPLING", "simpoint");
    EXPECT_EQ(default_sampling_mode(), SamplingMode::SimPoint);
  }
  {
    ScopedEnv env("HMS_SAMPLING", "bogus");
    try {
      (void)default_sampling_mode();
      FAIL() << "expected ConfigError";
    } catch (const ConfigError& e) {
      // The error must name the variable and echo the bad value.
      EXPECT_NE(std::string(e.what()).find("HMS_SAMPLING"), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos)
          << e.what();
    }
  }
}

TEST(Sampling, SampleKParsesEnvStrictly) {
  {
    ScopedEnv env("HMS_SAMPLE_K", nullptr);
    EXPECT_EQ(default_sample_k(), 16u);
  }
  {
    ScopedEnv env("HMS_SAMPLE_K", "8");
    EXPECT_EQ(default_sample_k(), 8u);
  }
  {
    // k = 0 is rejected explicitly, not clamped: zero representatives would
    // leave nothing to replay.
    ScopedEnv env("HMS_SAMPLE_K", "0");
    try {
      (void)default_sample_k();
      FAIL() << "expected ConfigError";
    } catch (const ConfigError& e) {
      EXPECT_NE(std::string(e.what()).find("HMS_SAMPLE_K"), std::string::npos)
          << e.what();
    }
  }
  {
    ScopedEnv env("HMS_SAMPLE_K", "banana");
    EXPECT_THROW((void)default_sample_k(), ConfigError);
  }
  {
    ScopedEnv env("HMS_SAMPLE_K", "-3");
    EXPECT_THROW((void)default_sample_k(), ConfigError);
  }
  {
    ScopedEnv env("HMS_SAMPLE_K", "99999999999999");
    EXPECT_THROW((void)default_sample_k(), ConfigError);
  }
}

TEST(Sampling, WarmupChunksParsesEnvStrictly) {
  {
    ScopedEnv env("HMS_WARMUP_CHUNKS", nullptr);
    EXPECT_EQ(default_warmup_chunks(), 2u);
  }
  {
    ScopedEnv env("HMS_WARMUP_CHUNKS", "0");  // 0 = no warming, valid
    EXPECT_EQ(default_warmup_chunks(), 0u);
  }
  {
    ScopedEnv env("HMS_WARMUP_CHUNKS", "5");
    EXPECT_EQ(default_warmup_chunks(), 5u);
  }
  {
    ScopedEnv env("HMS_WARMUP_CHUNKS", "nope");
    try {
      (void)default_warmup_chunks();
      FAIL() << "expected ConfigError";
    } catch (const ConfigError& e) {
      EXPECT_NE(std::string(e.what()).find("HMS_WARMUP_CHUNKS"),
                std::string::npos)
          << e.what();
    }
  }
}

// -- interval signatures ----------------------------------------------------

std::vector<trace::MemoryAccess> phased_stream(std::size_t n) {
  // Three alternating behavior phases: sequential line walk, strided walk,
  // and pseudo-random pointer chasing — distinct signatures to cluster.
  std::vector<trace::MemoryAccess> out;
  out.reserve(n);
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  for (std::size_t i = 0; i < n; ++i) {
    trace::MemoryAccess a;
    a.size = 64;
    const std::size_t phase = (i / 700) % 3;
    if (phase == 0) {
      a.address = 0x1000'0000ull + 64 * i;
      a.type = AccessType::Load;
    } else if (phase == 1) {
      a.address = 0x2000'0000ull + 64 * 33 * i;
      a.type = i % 4 == 0 ? AccessType::Store : AccessType::Load;
    } else {
      state ^= state << 13;
      state ^= state >> 7;
      state ^= state << 17;
      a.address = 0x3000'0000ull + (state % (1u << 22));
      a.type = i % 2 == 0 ? AccessType::Store : AccessType::Load;
    }
    out.push_back(a);
  }
  return out;
}

TEST(Sampling, SignaturesAlignWithChunksAndRebuildIdentically) {
  const auto stream = phased_stream(4000);
  trace::ChunkedTraceBuffer buffer(/*target_chunk_bytes=*/1024,
                                   /*max_chunk_accesses=*/256);
  trace::IntervalProfile live;
  buffer.attach_interval_profile(&live);
  buffer.access_batch(stream);
  buffer.attach_interval_profile(nullptr);

  ASSERT_EQ(live.interval_count(), buffer.chunk_count());
  const auto sigs = live.signatures();
  ASSERT_EQ(sigs.size(), buffer.chunk_count());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < sigs.size(); ++i) {
    // Signature i describes chunk i: the access counts must agree with the
    // chunk directory, and the sketch must have seen something.
    EXPECT_EQ(sigs[i].accesses, buffer.chunk_access_count(i)) << i;
    EXPECT_GT(sigs[i].new_lines, 0u) << i;
    std::uint64_t strides = 0;
    for (const auto s : sigs[i].strides) strides += s;
    EXPECT_EQ(strides, sigs[i].accesses) << i;
    total += sigs[i].accesses;
  }
  EXPECT_EQ(total, buffer.access_count());

  // Offline rebuild from the encoded chunks is bit-identical to live
  // observation — clustering cannot depend on how the profile was obtained.
  const auto rebuilt = trace::IntervalProfile::from_trace(buffer).signatures();
  ASSERT_EQ(rebuilt.size(), sigs.size());
  for (std::size_t i = 0; i < sigs.size(); ++i) {
    EXPECT_EQ(rebuilt[i], sigs[i]) << i;
  }
}

// -- plan construction ------------------------------------------------------

TEST(Sampling, PlanIsDeterministicAndWellFormed) {
  const auto stream = phased_stream(6000);
  trace::ChunkedTraceBuffer buffer(/*target_chunk_bytes=*/1024,
                                   /*max_chunk_accesses=*/256);
  const trace::IntervalProfile profile;  // detached: forces from_trace path
  buffer.access_batch(stream);

  const SamplePlan plan = build_sample_plan(buffer, profile, 4, 2, 42);
  ASSERT_FALSE(plan.exact);
  EXPECT_EQ(plan.total_chunks, buffer.chunk_count());
  EXPECT_EQ(plan.total_accesses, buffer.access_count());
  ASSERT_FALSE(plan.reps.empty());
  EXPECT_LE(plan.reps.size(), 4u);

  // Steps ascend strictly; measured steps correspond 1:1 with reps.
  std::size_t measured = 0;
  for (std::size_t s = 0; s < plan.steps.size(); ++s) {
    if (s > 0) {
      EXPECT_LT(plan.steps[s - 1].chunk, plan.steps[s].chunk);
    }
    if (plan.steps[s].measure) ++measured;
  }
  EXPECT_EQ(measured, plan.reps.size());

  // Every representative is preceded in the schedule by its warming prefix.
  std::uint64_t covered = 0;
  double share = 0;
  for (const auto& rep : plan.reps) {
    covered += rep.cluster_accesses;
    share += rep.share;
    EXPECT_EQ(rep.rep_accesses, buffer.chunk_access_count(rep.chunk));
    for (std::size_t c = rep.chunk - std::min<std::size_t>(2, rep.chunk);
         c < rep.chunk; ++c) {
      const bool scheduled =
          std::any_of(plan.steps.begin(), plan.steps.end(),
                      [c](const SampleStep& s) { return s.chunk == c; });
      EXPECT_TRUE(scheduled) << "warm chunk " << c << " missing";
    }
  }
  // Clusters partition the trace: shares sum to 1, accesses to the total.
  EXPECT_EQ(covered, plan.total_accesses);
  EXPECT_NEAR(share, 1.0, 1e-12);

  // Bit-stable: rebuilding with the same inputs gives the identical plan.
  const SamplePlan again = build_sample_plan(buffer, profile, 4, 2, 42);
  ASSERT_EQ(again.steps.size(), plan.steps.size());
  for (std::size_t s = 0; s < plan.steps.size(); ++s) {
    EXPECT_EQ(again.steps[s].chunk, plan.steps[s].chunk);
    EXPECT_EQ(again.steps[s].measure, plan.steps[s].measure);
    EXPECT_DOUBLE_EQ(again.steps[s].weight, plan.steps[s].weight);
  }
  ASSERT_EQ(again.reps.size(), plan.reps.size());
  for (std::size_t r = 0; r < plan.reps.size(); ++r) {
    EXPECT_EQ(again.reps[r].chunk, plan.reps[r].chunk);
    EXPECT_EQ(again.reps[r].members, plan.reps[r].members);
    EXPECT_DOUBLE_EQ(again.reps[r].share, plan.reps[r].share);
  }

  // A different seed is allowed to pick different representatives — the
  // determinism is in (trace, k, warmup, seed), not a global constant.
  const SamplePlan other = build_sample_plan(buffer, profile, 4, 2, 43);
  EXPECT_FALSE(other.exact);
}

TEST(Sampling, DegeneratePlansAreExact) {
  trace::IntervalProfile profile;
  {
    // Empty trace.
    trace::ChunkedTraceBuffer empty;
    EXPECT_TRUE(build_sample_plan(empty, profile, 4, 2, 1).exact);
  }
  {
    // Single chunk: nothing to cluster.
    trace::ChunkedTraceBuffer one;
    trace::MemoryAccess a;
    a.address = 64;
    a.size = 64;
    one.access(a);
    EXPECT_TRUE(build_sample_plan(one, profile, 4, 2, 1).exact);
  }
  {
    // k >= chunk count: one representative per interval already.
    const auto stream = phased_stream(2000);
    trace::ChunkedTraceBuffer buffer(/*target_chunk_bytes=*/1024,
                                     /*max_chunk_accesses=*/256);
    buffer.access_batch(stream);
    ASSERT_GT(buffer.chunk_count(), 1u);
    EXPECT_TRUE(
        build_sample_plan(buffer, profile,
                          static_cast<std::uint32_t>(buffer.chunk_count()), 2, 1)
            .exact);
    EXPECT_FALSE(
        build_sample_plan(buffer, profile,
                          static_cast<std::uint32_t>(buffer.chunk_count()) - 1,
                          2, 1)
            .exact);
  }
}

// -- sweep-level semantics --------------------------------------------------

TEST(Sampling, ExactPlansReplayBitIdenticalToFullMode) {
  // k far above every workload's chunk count: SimPoint mode must produce
  // byte-for-byte the Full-mode results, with sampled = false and zero
  // spread — the degenerate-exactness guarantee.
  ExperimentRunner full(
      sampled_config(ReplayMode::ChunkMajor, SamplingMode::Full));
  ExperimentRunner degenerate(sampled_config(
      ReplayMode::ChunkMajor, SamplingMode::SimPoint, /*k=*/1024));
  const auto a = full.nmm_sweep(Technology::PCM, three_configs());
  const auto b = degenerate.nmm_sweep(Technology::PCM, three_configs());
  expect_suites_identical(a, b);
  for (const auto& r : b) {
    EXPECT_FALSE(r.sampled) << r.config_name;
    EXPECT_EQ(r.spread, MetricSpread{}) << r.config_name;
  }
}

TEST(Sampling, SampledSweepsAreBitIdenticalAcrossModesAndThreads) {
  // The sampled differential: every replay mode and thread count walks the
  // identical deterministic plan, so estimates are bit-stable everywhere.
  std::vector<std::vector<SuiteResult>> runs;
  for (const ReplayMode mode : {ReplayMode::ChunkMajor, ReplayMode::ConfigMajor,
                                ReplayMode::Sharded}) {
    for (const unsigned threads : {1u, 2u, 8u}) {
      auto cfg = sampled_config(mode, SamplingMode::SimPoint);
      cfg.threads = threads;
      ExperimentRunner runner(cfg);
      runs.push_back(runner.nmm_sweep(Technology::PCM, three_configs()));
    }
  }
  ASSERT_EQ(runs.size(), 9u);
  for (std::size_t i = 1; i < runs.size(); ++i) {
    SCOPED_TRACE(i);
    expect_suites_identical(runs[0], runs[i]);
  }
  // And the results really are sampled (CG's 14-chunk residual, k = 4).
  for (const auto& r : runs[0]) EXPECT_TRUE(r.sampled) << r.config_name;
}

TEST(Sampling, EstimatesTrackExactResultsWithinTwoPercent) {
  // The accuracy bar from the issue: suite-level AMAT-derived metrics of
  // the sampled sweep stay within 2% of exact full replay. Normalized
  // metrics benefit from error cancellation — the base replay is sampled
  // with the same plan.
  ExperimentRunner full(
      sampled_config(ReplayMode::ChunkMajor, SamplingMode::Full));
  ExperimentRunner sampled(
      sampled_config(ReplayMode::ChunkMajor, SamplingMode::SimPoint));
  const auto exact = full.nmm_sweep(Technology::PCM, three_configs());
  const auto est = sampled.nmm_sweep(Technology::PCM, three_configs());
  ASSERT_EQ(exact.size(), est.size());
  for (std::size_t i = 0; i < exact.size(); ++i) {
    SCOPED_TRACE(exact[i].config_name);
    EXPECT_TRUE(est[i].sampled);
    EXPECT_NEAR(est[i].runtime, exact[i].runtime, 0.02 * exact[i].runtime);
    EXPECT_NEAR(est[i].total_energy, exact[i].total_energy,
                0.02 * exact[i].total_energy);
    EXPECT_NEAR(est[i].edp, exact[i].edp, 0.02 * exact[i].edp);
  }
}

TEST(Sampling, EstimatedProfileMissRatesTrackExactReplay) {
  // Below the model layer: the estimated back profile's per-level miss
  // rates must track the exact replay within 2% (relative), on the real
  // CG capture.
  auto cfg = sampled_config(ReplayMode::ChunkMajor, SamplingMode::SimPoint);
  ExperimentRunner runner(cfg);
  const FrontCapture& capture = runner.front("CG");
  const SamplePlan plan =
      build_sample_plan(capture.residual, capture.interval_profile,
                        cfg.sample_k, cfg.warmup_chunks, cfg.seed);
  ASSERT_FALSE(plan.exact);

  const auto& factory = runner.factory();
  auto exact_back = factory.nvm_main_memory_back(
      designs::n_config("N1"), Technology::PCM, capture.footprint_bytes);
  auto sampled_back = factory.nvm_main_memory_back(
      designs::n_config("N1"), Technology::PCM, capture.footprint_bytes);
  const auto exact = replay_back(capture, *exact_back);
  const auto est = replay_back(capture, *sampled_back, &plan);

  ASSERT_EQ(est.levels.size(), exact.levels.size());
  const std::size_t front_levels = capture.front_profile.levels.size();
  for (std::size_t l = front_levels; l < exact.levels.size(); ++l) {
    SCOPED_TRACE(l);
    const auto& e = exact.levels[l];
    const auto& s = est.levels[l];
    const double e_acc = static_cast<double>(e.loads + e.stores);
    const double s_acc = static_cast<double>(s.loads + s.stores);
    ASSERT_GT(e_acc, 0.0);
    EXPECT_NEAR(s_acc, e_acc, 0.02 * e_acc);
    const double e_miss = static_cast<double>(e.cache_stats.load_misses +
                                              e.cache_stats.store_misses) /
                          e_acc;
    const double s_miss = static_cast<double>(s.cache_stats.load_misses +
                                              s.cache_stats.store_misses) /
                          s_acc;
    EXPECT_NEAR(s_miss, e_miss, 0.02 * std::max(e_miss, 1e-6));
  }
}

TEST(Sampling, SampledResultsCarryErrorBars) {
  ExperimentRunner runner(
      sampled_config(ReplayMode::ChunkMajor, SamplingMode::SimPoint));
  const auto results = runner.nmm_sweep(Technology::PCM, three_configs());
  for (const auto& r : results) {
    SCOPED_TRACE(r.config_name);
    EXPECT_TRUE(r.sampled);
    // Suite spread combines the sampled workloads' spreads; CG's plan has
    // several representatives with distinct behavior, so it is nonzero.
    EXPECT_GT(r.spread.runtime, 0.0);
    EXPECT_GE(r.spread.total_energy, 0.0);
    EXPECT_GE(r.spread.edp, 0.0);
    ASSERT_EQ(r.per_workload.size(), 2u);
    for (const auto& wr : r.per_workload) {
      if (wr.normalized.workload == "StreamTriad") {
        // 2 chunks, k = 4: degenerate-exact workload inside a sampled suite.
        EXPECT_FALSE(wr.sampled);
        EXPECT_EQ(wr.spread, MetricSpread{});
      } else {
        EXPECT_TRUE(wr.sampled);
        EXPECT_GT(wr.spread.runtime, 0.0);
      }
    }
  }
}

// -- resilience parity ------------------------------------------------------

TEST(Sampling, DegradedCellsAreIdenticalAcrossModes) {
  // Same degrade semantics as full replay: fault the first grid cell in
  // each mode under SimPoint sampling; failures and survivors must agree.
  auto degraded_sweep = [](ReplayMode mode) {
    ScopedFaultInjector injector;
    FaultSpec spec;
    spec.skip_first = 2;  // 2-workload warm-up takes the first two hits
    spec.max_fires = 1;
    injector->arm("sim/replay_back", spec);
    auto cfg = sampled_config(mode, SamplingMode::SimPoint);
    cfg.threads = 1;  // deterministic task order for targeted injection
    ExperimentRunner runner(cfg);
    return runner.nmm_sweep(Technology::PCM, three_configs());
  };

  const auto chunk = degraded_sweep(ReplayMode::ChunkMajor);
  const auto config = degraded_sweep(ReplayMode::ConfigMajor);
  const auto shard = degraded_sweep(ReplayMode::Sharded);
  ASSERT_EQ(chunk.size(), 3u);
  EXPECT_TRUE(chunk[0].partial);
  ASSERT_EQ(chunk[0].failures.size(), 1u);
  EXPECT_EQ(chunk[0].failures[0].workload, "StreamTriad");
  ASSERT_EQ(config.size(), 3u);
  ASSERT_EQ(config[0].failures.size(), 1u);
  EXPECT_EQ(chunk[0].failures[0].error, config[0].failures[0].error);
  expect_suites_identical(chunk, config);
  ASSERT_EQ(shard.size(), 3u);
  ASSERT_EQ(shard[0].failures.size(), 1u);
  EXPECT_EQ(chunk[0].failures[0].error, shard[0].failures[0].error);
  expect_suites_identical(chunk, shard);
}

TEST(Sampling, RetriesRecoverTransientFaultsInSampledCells) {
  ExperimentRunner clean(
      sampled_config(ReplayMode::ChunkMajor, SamplingMode::SimPoint));
  const auto expected = clean.nmm_sweep(Technology::PCM, three_configs());

  ScopedFaultInjector injector;
  FaultSpec spec;
  spec.skip_first = 2;
  spec.max_fires = 1;
  spec.transient = true;
  injector->arm("sim/replay_back", spec);

  auto cfg = sampled_config(ReplayMode::ChunkMajor, SamplingMode::SimPoint);
  cfg.threads = 1;
  cfg.max_retries = 1;
  ExperimentRunner runner(cfg);
  const auto results = runner.nmm_sweep(Technology::PCM, three_configs());
  EXPECT_EQ(injector->fires("sim/replay_back"), 1u);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) {
    EXPECT_FALSE(r.partial) << r.config_name;
    EXPECT_TRUE(r.failures.empty()) << r.config_name;
  }
  // The retried cell re-walks the same plan: bit-identical to a clean run.
  expect_suites_identical(results, expected);
}

// -- checkpoint binding -----------------------------------------------------

TEST(Sampling, ExperimentHashBindsSamplingKnobs) {
  ExperimentConfig full = sampled_config(ReplayMode::ChunkMajor,
                                         SamplingMode::Full);
  ExperimentConfig sp =
      sampled_config(ReplayMode::ChunkMajor, SamplingMode::SimPoint);
  // Estimates and exact results must never satisfy each other's resumes.
  EXPECT_NE(experiment_hash(full, "nmm:PCM"), experiment_hash(sp, "nmm:PCM"));

  ExperimentConfig sp_k = sp;
  sp_k.sample_k = 8;
  EXPECT_NE(experiment_hash(sp, "nmm:PCM"), experiment_hash(sp_k, "nmm:PCM"));
  ExperimentConfig sp_w = sp;
  sp_w.warmup_chunks = 7;
  EXPECT_NE(experiment_hash(sp, "nmm:PCM"), experiment_hash(sp_w, "nmm:PCM"));

  // In Full mode the sampling knobs are inert, and the hash ignores them —
  // pre-sampling checkpoints stay resumable.
  ExperimentConfig full_k = full;
  full_k.sample_k = 8;
  full_k.warmup_chunks = 7;
  EXPECT_EQ(experiment_hash(full, "nmm:PCM"),
            experiment_hash(full_k, "nmm:PCM"));
}

TEST(Sampling, CheckpointsResumeWithinSimPointOnly) {
  TempFile file("resume");
  auto sp_cfg = sampled_config(ReplayMode::ChunkMajor, SamplingMode::SimPoint);
  sp_cfg.checkpoint_path = file.path();
  ExperimentRunner first(sp_cfg);
  const auto initial = first.nmm_sweep(Technology::PCM, three_configs());
  EXPECT_EQ(first.last_checkpoint_skips(), 0u);

  // Same sampled experiment resumes fully — estimates, spreads and all.
  ExperimentRunner second(sp_cfg);
  const auto resumed = second.nmm_sweep(Technology::PCM, three_configs());
  EXPECT_EQ(second.last_checkpoint_skips(), 3u);
  expect_suites_identical(initial, resumed);
  EXPECT_TRUE(resumed[0].sampled);

  // A Full-mode rerun has a different hash: the sampled checkpoint is
  // reset, nothing is skipped, and the results come out exact.
  auto full_cfg = sampled_config(ReplayMode::ChunkMajor, SamplingMode::Full);
  full_cfg.checkpoint_path = file.path();
  ExperimentRunner third(full_cfg);
  const auto fresh = third.nmm_sweep(Technology::PCM, three_configs());
  EXPECT_EQ(third.last_checkpoint_skips(), 0u);
  for (const auto& r : fresh) EXPECT_FALSE(r.sampled) << r.config_name;
}

}  // namespace
}  // namespace hms::sim
