// Trace substrate: sinks, buffer, binary IO, filters, interleave.
#include <gtest/gtest.h>

#include <span>
#include <sstream>
#include <vector>

#include "hms/common/error.hpp"
#include "hms/common/fault.hpp"
#include "hms/common/random.hpp"
#include "hms/trace/filters.hpp"
#include "hms/trace/interleave.hpp"
#include "hms/trace/sink.hpp"
#include "hms/trace/trace_buffer.hpp"
#include "hms/trace/trace_io.hpp"

namespace hms::trace {
namespace {

TEST(Sinks, CountingSink) {
  CountingSink sink;
  sink.access(load(0x100, 8));
  sink.access(store(0x108, 4));
  sink.access(load(0x200, 64));
  EXPECT_EQ(sink.loads(), 2u);
  EXPECT_EQ(sink.stores(), 1u);
  EXPECT_EQ(sink.total(), 3u);
  EXPECT_EQ(sink.bytes(), 76u);
}

TEST(Sinks, TeeDuplicates) {
  CountingSink a, b;
  TeeSink tee;
  tee.add(a);
  tee.add(b);
  tee.access(load(0x0));
  tee.access(store(0x8));
  EXPECT_EQ(tee.fan_out(), 2u);
  EXPECT_EQ(a.total(), 2u);
  EXPECT_EQ(b.total(), 2u);
}

TEST(Sinks, ForwardingSinkDropsWhenUnbound) {
  ForwardingSink fwd;
  CountingSink target;
  fwd.access(load(0x0));  // dropped silently
  fwd.bind(target);
  EXPECT_TRUE(fwd.bound());
  fwd.access(load(0x8));
  fwd.unbind();
  fwd.access(load(0x10));  // dropped
  EXPECT_EQ(target.total(), 1u);
}

TEST(TraceBuffer, RecordAndReplay) {
  TraceBuffer buffer;
  buffer.access(load(0x100, 8));
  buffer.access(store(0x140, 8));
  EXPECT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer.loads(), 1u);
  EXPECT_EQ(buffer.stores(), 1u);

  CountingSink sink;
  buffer.replay(sink);
  buffer.replay(sink);  // replayable repeatedly
  EXPECT_EQ(sink.total(), 4u);
}

/// Records how replay delivered the stream: per-access or in batches.
class BatchRecordingSink final : public BatchAccessSink {
 public:
  void access(const MemoryAccess&) override { ++single_calls_; }
  void access_batch(std::span<const MemoryAccess> batch) override {
    batch_sizes_.push_back(batch.size());
  }

  std::size_t single_calls_ = 0;
  std::vector<std::size_t> batch_sizes_;
};

TEST(TraceBuffer, ReplayUsesBatchPathForBatchSinks) {
  TraceBuffer buffer;
  for (int i = 0; i < 100; ++i) buffer.access(load(i * 64, 8));

  // A batch-capable sink gets the whole stream in one dispatch...
  BatchRecordingSink batch_sink;
  buffer.replay(batch_sink);
  EXPECT_EQ(batch_sink.single_calls_, 0u);
  ASSERT_EQ(batch_sink.batch_sizes_.size(), 1u);
  EXPECT_EQ(batch_sink.batch_sizes_[0], 100u);

  // ...while a plain sink still gets one access() per entry.
  CountingSink plain;
  buffer.replay(plain);
  EXPECT_EQ(plain.total(), 100u);
}

TEST(TraceBuffer, RunningCountersTrackEveryMutationPath) {
  // loads()/stores() are O(1) running counters; they must stay consistent
  // with the entries across per-access, batch, clear, and vector-ctor
  // ingestion.
  TraceBuffer buffer;
  buffer.access(load(0x0, 8));
  buffer.access(store(0x40, 8));
  const std::vector<MemoryAccess> batch = {load(0x80, 8), load(0xc0, 8),
                                           store(0x100, 8)};
  buffer.access_batch(batch);
  EXPECT_EQ(buffer.loads(), 3u);
  EXPECT_EQ(buffer.stores(), 2u);

  buffer.clear();
  EXPECT_EQ(buffer.loads(), 0u);
  EXPECT_EQ(buffer.stores(), 0u);
  buffer.access(store(0x0, 8));
  EXPECT_EQ(buffer.loads(), 0u);
  EXPECT_EQ(buffer.stores(), 1u);

  const TraceBuffer adopted{std::vector<MemoryAccess>(batch)};
  EXPECT_EQ(adopted.loads(), 2u);
  EXPECT_EQ(adopted.stores(), 1u);
}

TEST(TraceBuffer, ReplayFaultSiteFiresBeforeDelivery) {
  TraceBuffer buffer;
  for (int i = 0; i < 10; ++i) buffer.access(load(i * 64, 8));

  ScopedFaultInjector injector;
  injector->arm("trace/replay", {});
  CountingSink sink;
  EXPECT_THROW(buffer.replay(sink), FaultInjectedError);
  EXPECT_EQ(sink.total(), 0u);  // fault precedes any delivery
  EXPECT_EQ(injector->hits("trace/replay"), 1u);

  injector->disarm("trace/replay");
  buffer.replay(sink);
  EXPECT_EQ(sink.total(), 10u);
}

TEST(TraceBuffer, FootprintLines) {
  TraceBuffer buffer;
  buffer.access(load(0, 8));
  buffer.access(load(8, 8));    // same 64 B line
  buffer.access(load(64, 8));   // next line
  buffer.access(load(60, 8));   // straddles 64 B lines 0 and 1
  EXPECT_EQ(buffer.footprint_lines(64), 2u);
  // At 16 B granularity: bytes 0-15 (line 0), 60-67 (lines 3, 4).
  EXPECT_EQ(buffer.footprint_lines(16), 3u);
}

TEST(TraceBuffer, FootprintLinesMultiLineSpan) {
  // One access spanning three lines must count all of them, even though
  // the single-line fast path handles its neighbours.
  TraceBuffer buffer;
  buffer.access(load(60, 136));  // bytes 60-195: 64 B lines 0, 1, 2, 3
  EXPECT_EQ(buffer.footprint_lines(64), 4u);
  buffer.access(load(64, 64));  // exactly line 1: fast path, no new lines
  EXPECT_EQ(buffer.footprint_lines(64), 4u);
  buffer.access(load(256, 192));  // lines 4-6, aligned 3-line span
  EXPECT_EQ(buffer.footprint_lines(64), 7u);
}

TEST(TraceIo, RoundTrip) {
  TraceBuffer original;
  Xoshiro256 rng(3);
  for (int i = 0; i < 5000; ++i) {
    MemoryAccess a;
    a.address = rng.below(1ull << 40);
    a.size = static_cast<std::uint32_t>(1 + rng.below(64));
    a.type = rng.chance(0.3) ? AccessType::Store : AccessType::Load;
    a.core = static_cast<CoreId>(rng.below(4));
    original.access(a);
  }
  std::stringstream stream;
  write_trace(stream, original);
  const TraceBuffer loaded = read_trace(stream);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded.entries()[i], original.entries()[i]) << "entry " << i;
  }
}

TEST(TraceIo, CompressesStridedStreams) {
  TraceBuffer buffer;
  for (int i = 0; i < 10000; ++i) {
    buffer.access(load(static_cast<Address>(i) * 8, 8));
  }
  std::stringstream stream;
  write_trace(stream, buffer);
  // Raw encoding would be ~16 B/record; delta+varint should be ~3 B.
  EXPECT_LT(stream.str().size(), buffer.size() * 6);
}

TEST(TraceIo, RejectsBadMagic) {
  std::stringstream stream;
  stream << "NOPE-this-is-not-a-trace";
  EXPECT_THROW((void)read_trace(stream), TraceError);
}

TEST(TraceIo, RejectsTruncated) {
  TraceBuffer buffer;
  buffer.access(load(0x1234, 8));
  buffer.access(store(0x5678, 8));
  std::stringstream stream;
  write_trace(stream, buffer);
  std::string data = stream.str();
  data.resize(data.size() - 1);
  std::stringstream cut(data);
  EXPECT_THROW((void)read_trace(cut), TraceError);
}

TEST(TraceIo, RejectsTruncatedHeader) {
  // Valid magic + version but the count field is cut short.
  std::string data = "HMST";
  data.append({1, 0, 0, 0});  // version 1, little-endian
  data.append(3, '\0');       // 3 of the 8 count bytes
  std::stringstream stream(data);
  EXPECT_THROW((void)read_trace(stream), TraceError);
}

TEST(TraceIo, RejectsImpossibleHeaderCount) {
  // A corrupt count must throw TraceError up front, not drive a multi-GB
  // reserve: every record needs >= 3 bytes, and this stream has 6.
  std::string data = "HMST";
  data.append({1, 0, 0, 0});
  const std::uint64_t huge = 1ull << 61;
  for (int i = 0; i < 8; ++i) {
    data.push_back(static_cast<char>((huge >> (8 * i)) & 0xff));
  }
  data.append(6, '\x01');
  std::stringstream stream(data);
  try {
    (void)read_trace(stream);
    FAIL() << "expected TraceError";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find("impossible"), std::string::npos)
        << e.what();
  }
}

TEST(TraceIo, RejectsOverstatedCountOnValidPayload) {
  TraceBuffer buffer;
  buffer.access(load(0x100, 8));
  buffer.access(store(0x140, 8));
  std::stringstream stream;
  write_trace(stream, buffer);
  std::string data = stream.str();
  // Patch the count field (bytes 8-15) from 2 to 1000: the payload cannot
  // possibly hold that many records.
  data[8] = static_cast<char>(0xe8);
  data[9] = static_cast<char>(0x03);
  std::stringstream patched(data);
  EXPECT_THROW((void)read_trace(patched), TraceError);
}

TEST(TraceIo, TraceErrorIsAnIoError) {
  // The taxonomy nests trace corruption under I/O failures so callers can
  // catch either level.
  std::stringstream stream;
  stream << "NOPE";
  EXPECT_THROW((void)read_trace(stream), IoError);
}

TEST(Filters, Sampling) {
  CountingSink sink;
  SamplingFilter filter(sink, 10);
  for (int i = 0; i < 100; ++i) filter.access(load(0));
  EXPECT_EQ(sink.total(), 10u);
  EXPECT_THROW(SamplingFilter(sink, 0), Error);
}

TEST(Filters, Range) {
  CountingSink sink;
  RangeFilter filter(sink, 0x1000, 0x100);
  filter.access(load(0xfff));   // below
  filter.access(load(0x1000));  // first byte in
  filter.access(load(0x10ff));  // last byte in
  filter.access(load(0x1100));  // past end
  EXPECT_EQ(sink.total(), 2u);
}

TEST(Filters, Truncate) {
  CountingSink sink;
  TruncateFilter filter(sink, 3);
  for (int i = 0; i < 10; ++i) filter.access(load(0));
  EXPECT_EQ(sink.total(), 3u);
  EXPECT_EQ(filter.forwarded(), 3u);
  EXPECT_EQ(filter.dropped(), 7u);
}

TEST(Filters, LineSplitPassesAligned) {
  TraceBuffer out;
  LineSplitFilter filter(out, 64);
  filter.access(load(0, 64));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.entries()[0].size, 64u);
}

TEST(Filters, LineSplitSplitsStraddlers) {
  TraceBuffer out;
  LineSplitFilter filter(out, 64);
  filter.access(store(60, 8));  // 4 bytes in line 0, 4 in line 1
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.entries()[0].address, 60u);
  EXPECT_EQ(out.entries()[0].size, 4u);
  EXPECT_EQ(out.entries()[1].address, 64u);
  EXPECT_EQ(out.entries()[1].size, 4u);
  EXPECT_EQ(out.entries()[1].type, AccessType::Store);
}

TEST(Filters, LineSplitLargeAccess) {
  TraceBuffer out;
  LineSplitFilter filter(out, 64);
  filter.access(load(32, 256));  // spans 5 lines partially
  std::uint64_t total = 0;
  for (const auto& a : out.entries()) {
    total += a.size;
    // Each piece confined to one line.
    EXPECT_EQ(a.address / 64, (a.address + a.size - 1) / 64);
  }
  EXPECT_EQ(total, 256u);
}

TEST(Interleave, RoundRobinTagsCores) {
  TraceBuffer s0, s1;
  s0.access(load(0x0));
  s0.access(load(0x8));
  s1.access(store(0x100));
  TraceBuffer merged;
  const TraceBuffer* streams[] = {&s0, &s1};
  interleave(streams, merged);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged.entries()[0].core, 0u);
  EXPECT_EQ(merged.entries()[1].core, 1u);
  EXPECT_EQ(merged.entries()[2].core, 0u);
}

TEST(Interleave, RegionStrideSeparatesCores) {
  TraceBuffer s0, s1;
  s0.access(load(0x10));
  s1.access(load(0x10));
  TraceBuffer merged;
  const TraceBuffer* streams[] = {&s0, &s1};
  interleave(streams, merged, {.burst = 1, .region_stride = 1ull << 30});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged.entries()[0].address, 0x10u);
  EXPECT_EQ(merged.entries()[1].address, (1ull << 30) + 0x10);
}

TEST(Interleave, BurstGrouping) {
  TraceBuffer s0, s1;
  for (int i = 0; i < 4; ++i) s0.access(load(static_cast<Address>(i)));
  for (int i = 0; i < 4; ++i) s1.access(load(static_cast<Address>(100 + i)));
  TraceBuffer merged;
  const TraceBuffer* streams[] = {&s0, &s1};
  interleave(streams, merged, {.burst = 2});
  ASSERT_EQ(merged.size(), 8u);
  // Pattern: s0 s0 s1 s1 s0 s0 s1 s1.
  EXPECT_EQ(merged.entries()[0].core, 0u);
  EXPECT_EQ(merged.entries()[1].core, 0u);
  EXPECT_EQ(merged.entries()[2].core, 1u);
  EXPECT_EQ(merged.entries()[3].core, 1u);
  EXPECT_EQ(merged.entries()[4].core, 0u);
}

TEST(Interleave, ZeroBurstThrows) {
  TraceBuffer s0, merged;
  const TraceBuffer* streams[] = {&s0};
  EXPECT_THROW(interleave(streams, merged, {.burst = 0}), Error);
}

}  // namespace
}  // namespace hms::trace
