// Persistent trace store: byte-exact round trips, every-byte corruption
// fuzz (a flipped bit is a miss, never wrong bytes), capture-hash
// rejection, concurrent readers, and the cached-capture fallback path
// (sim::capture_front_cached recaptures through the degrade path on any
// store failure and repairs the entry).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "hms/common/fault.hpp"
#include "hms/designs/design.hpp"
#include "hms/mem/technology.hpp"
#include "hms/sim/simulator.hpp"
#include "hms/trace/trace_store.hpp"

namespace hms::trace {
namespace {

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(::testing::TempDir() + "hms_trace_store_" + tag + ".dir") {
    std::filesystem::remove_all(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

TraceStoreEntry small_entry() {
  TraceStoreEntry entry;
  entry.metadata = "meta: not interpreted by the store";
  entry.interval_profile = std::string("\x00\x01\x02\xff profile", 12);
  entry.residual = "residual bytes with \0 embedded";
  entry.residual.push_back('\0');
  return entry;
}

TEST(TraceStore, WriterReaderRoundTripsEveryFieldShape) {
  StoreWriter w;
  w.varint(0);
  w.varint(127);
  w.varint(128);
  w.varint(0xffffffffffffffffull);
  w.u8(0xab);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.f64(-0.1875);
  w.str("");
  w.str(std::string("nul\0byte", 8));

  StoreReader r(w.data());
  EXPECT_EQ(r.varint(), 0u);
  EXPECT_EQ(r.varint(), 127u);
  EXPECT_EQ(r.varint(), 128u);
  EXPECT_EQ(r.varint(), 0xffffffffffffffffull);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.f64(), -0.1875);
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), std::string("nul\0byte", 8));
  r.expect_done();
}

TEST(TraceStore, ReaderRejectsTruncationAndOversizedLengths) {
  StoreWriter w;
  w.str("payload");
  const std::string bytes = w.data();
  // Truncated at every prefix length: always TraceError, never a read past
  // the end.
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    StoreReader r(std::string_view(bytes).substr(0, n));
    EXPECT_THROW((void)r.str(), TraceError) << n;
  }
  // A length claiming more than remains is rejected before allocation.
  StoreWriter huge;
  huge.varint(1ull << 40);
  StoreReader r(huge.data());
  EXPECT_THROW((void)r.str(), TraceError);
}

TEST(TraceStore, EntryRoundTripIsByteExact) {
  TempDir dir("roundtrip");
  const TraceStore store(dir.path());
  const TraceStoreEntry entry = small_entry();
  store.store(0x1122334455667788ull, entry);

  const auto loaded = store.load(0x1122334455667788ull);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->metadata, entry.metadata);
  EXPECT_EQ(loaded->interval_profile, entry.interval_profile);
  EXPECT_EQ(loaded->residual, entry.residual);

  // A second store instance over the same directory sees the same bytes.
  const TraceStore reopened(dir.path());
  const auto again = reopened.load(0x1122334455667788ull);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->residual, entry.residual);
}

TEST(TraceStore, MissingEntryAndHashMismatchAreMisses) {
  TempDir dir("mismatch");
  const TraceStore store(dir.path());
  EXPECT_FALSE(store.load(42).has_value());

  // A renamed (or colliding) file is rejected by the embedded hash stamp.
  store.store(1, small_entry());
  std::filesystem::rename(store.entry_path(1), store.entry_path(2));
  EXPECT_FALSE(store.load(2).has_value());
}

TEST(TraceStoreFuzz, EveryByteFlipIsARejectedMiss) {
  TempDir dir("fuzz");
  const TraceStore store(dir.path());
  const std::uint64_t key = 0xfeedfacecafebeefull;
  store.store(key, small_entry());
  const std::string clean = read_file(store.entry_path(key));
  ASSERT_FALSE(clean.empty());

  for (std::size_t i = 0; i < clean.size(); ++i) {
    std::string mutated = clean;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xff);
    write_file(store.entry_path(key), mutated);
    EXPECT_FALSE(store.load(key).has_value()) << "flipped byte " << i;
  }
  // Truncation at every length is a miss too.
  for (std::size_t n = 0; n < clean.size(); ++n) {
    write_file(store.entry_path(key), clean.substr(0, n));
    EXPECT_FALSE(store.load(key).has_value()) << "truncated to " << n;
  }
  // Trailing junk past the last record is rejected as well.
  write_file(store.entry_path(key), clean + "junk");
  EXPECT_FALSE(store.load(key).has_value());
  // The clean bytes still load after all that.
  write_file(store.entry_path(key), clean);
  EXPECT_TRUE(store.load(key).has_value());
}

TEST(TraceStore, ConcurrentReadersShareOneDirectory) {
  TempDir dir("concurrent");
  const TraceStore store(dir.path());
  const TraceStoreEntry entry = small_entry();
  for (std::uint64_t key = 0; key < 4; ++key) store.store(key, entry);

  std::vector<std::thread> readers;
  std::vector<int> failures(4, 0);
  for (std::size_t t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      const TraceStore own(dir.path());
      for (int i = 0; i < 50; ++i) {
        const auto loaded = own.load(static_cast<std::uint64_t>(i % 4));
        if (!loaded || loaded->residual != entry.residual) ++failures[t];
      }
    });
  }
  for (auto& r : readers) r.join();
  for (std::size_t t = 0; t < 4; ++t) EXPECT_EQ(failures[t], 0) << t;
}

// -- Cached front-capture integration ------------------------------------

designs::DesignFactory tiny_factory() {
  return designs::DesignFactory(512, mem::TechnologyRegistry::table1(),
                                designs::DesignOptions{});
}

workloads::WorkloadParams tiny_params() {
  return workloads::WorkloadParams{1ull << 20, 42, 1};
}

void expect_captures_identical(const sim::FrontCapture& a,
                               const sim::FrontCapture& b) {
  EXPECT_EQ(a.workload_name, b.workload_name);
  EXPECT_EQ(a.info.name, b.info.name);
  EXPECT_EQ(a.info.suite, b.info.suite);
  EXPECT_EQ(a.info.paper_footprint_bytes, b.info.paper_footprint_bytes);
  EXPECT_DOUBLE_EQ(a.info.memory_bound_fraction, b.info.memory_bound_fraction);
  EXPECT_EQ(a.footprint_bytes, b.footprint_bytes);
  ASSERT_EQ(a.ranges.size(), b.ranges.size());
  for (std::size_t i = 0; i < a.ranges.size(); ++i) {
    EXPECT_EQ(a.ranges[i].name, b.ranges[i].name);
    EXPECT_EQ(a.ranges[i].base, b.ranges[i].base);
    EXPECT_EQ(a.ranges[i].length, b.ranges[i].length);
  }
  EXPECT_EQ(a.front_profile.references, b.front_profile.references);
  ASSERT_EQ(a.front_profile.levels.size(), b.front_profile.levels.size());
  for (std::size_t l = 0; l < a.front_profile.levels.size(); ++l) {
    EXPECT_EQ(a.front_profile.levels[l].name, b.front_profile.levels[l].name);
    EXPECT_EQ(a.front_profile.levels[l].loads, b.front_profile.levels[l].loads);
    EXPECT_EQ(a.front_profile.levels[l].stores,
              b.front_profile.levels[l].stores);
    EXPECT_EQ(a.front_profile.levels[l].cache_stats,
              b.front_profile.levels[l].cache_stats);
  }
  // The decisive check: both residual streams and interval profiles encode
  // to the same bytes, so every downstream replay is bit-identical.
  std::string residual_a, residual_b, profile_a, profile_b;
  a.residual.serialize(residual_a);
  b.residual.serialize(residual_b);
  EXPECT_EQ(residual_a, residual_b);
  a.interval_profile.serialize(profile_a);
  b.interval_profile.serialize(profile_b);
  EXPECT_EQ(profile_a, profile_b);
}

TEST(TraceStoreCapture, ColdMissFillsStoreAndWarmHitIsBitIdentical) {
  TempDir dir("capture");
  const TraceStore store(dir.path());
  const auto factory = tiny_factory();
  const auto params = tiny_params();

  const auto fresh =
      sim::capture_front_cached("StreamTriad", params, factory, nullptr);
  const auto cold =
      sim::capture_front_cached("StreamTriad", params, factory, &store);
  expect_captures_identical(fresh, cold);

  const std::uint64_t key =
      sim::capture_hash("StreamTriad", params, factory);
  EXPECT_TRUE(std::filesystem::exists(store.entry_path(key)));

  const auto warm =
      sim::capture_front_cached("StreamTriad", params, factory, &store);
  expect_captures_identical(fresh, warm);
}

TEST(TraceStoreCapture, KeyDependsOnParamsScaleAndWorkload) {
  const auto factory = tiny_factory();
  const auto params = tiny_params();
  const std::uint64_t base = sim::capture_hash("StreamTriad", params, factory);
  EXPECT_NE(base, sim::capture_hash("CG", params, factory));
  auto other = params;
  other.seed = 43;
  EXPECT_NE(base, sim::capture_hash("StreamTriad", other, factory));
  other = params;
  other.footprint_bytes *= 2;
  EXPECT_NE(base, sim::capture_hash("StreamTriad", other, factory));
  const designs::DesignFactory rescaled(
      1024, mem::TechnologyRegistry::table1(), designs::DesignOptions{});
  EXPECT_NE(base, sim::capture_hash("StreamTriad", params, rescaled));
}

TEST(TraceStoreCapture, CorruptEntryRecapturesAndRepairsTheStore) {
  TempDir dir("repair");
  const TraceStore store(dir.path());
  const auto factory = tiny_factory();
  const auto params = tiny_params();
  const std::uint64_t key = sim::capture_hash("StreamTriad", params, factory);

  const auto fresh =
      sim::capture_front_cached("StreamTriad", params, factory, &store);
  // Corrupt one payload byte (past the 16-byte header): the load misses,
  // the capture falls back to simulation, and the fresh bytes are written
  // back over the corrupt entry.
  std::string bytes = read_file(store.entry_path(key));
  ASSERT_GT(bytes.size(), 32u);
  bytes[24] = static_cast<char>(bytes[24] ^ 0xff);
  write_file(store.entry_path(key), bytes);
  EXPECT_FALSE(store.load(key).has_value());

  const auto recaptured =
      sim::capture_front_cached("StreamTriad", params, factory, &store);
  expect_captures_identical(fresh, recaptured);
  EXPECT_TRUE(store.load(key).has_value()) << "entry was not repaired";
}

TEST(TraceStoreCapture, ReadAndWriteFaultsDegradeToFreshCapture) {
  TempDir dir("faults");
  const TraceStore store(dir.path());
  const auto factory = tiny_factory();
  const auto params = tiny_params();
  const auto fresh =
      sim::capture_front_cached("StreamTriad", params, factory, &store);

  {
    // A read fault on a warm store degrades to recapture.
    ScopedFaultInjector injector;
    FaultSpec spec;
    spec.max_fires = 1;
    injector->arm("trace/read", spec);
    const auto degraded =
        sim::capture_front_cached("StreamTriad", params, factory, &store);
    expect_captures_identical(fresh, degraded);
    EXPECT_EQ(injector->fires("trace/read"), 1u);
  }
  {
    // A write fault is swallowed: the capture is still returned.
    TempDir cold_dir("faults_cold");
    const TraceStore cold(cold_dir.path());
    ScopedFaultInjector injector;
    FaultSpec spec;
    spec.max_fires = 1;
    injector->arm("trace/write", spec);
    const auto captured =
        sim::capture_front_cached("StreamTriad", params, factory, &cold);
    expect_captures_identical(fresh, captured);
    EXPECT_EQ(injector->fires("trace/write"), 1u);
  }
}

}  // namespace
}  // namespace hms::trace
