// RunningStat, means, Histogram (hms/common/stats.hpp).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "hms/common/error.hpp"
#include "hms/common/random.hpp"
#include "hms/common/stats.hpp"

namespace hms {
namespace {

TEST(RunningStat, Empty) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownValues) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, SingleValueHasZeroVariance) {
  RunningStat s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, MergeMatchesSequential) {
  Xoshiro256 rng(7);
  RunningStat all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01() * 100.0 - 50.0;
    all.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // adopt
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Means, Geometric) {
  const std::vector<double> v = {1.0, 4.0, 16.0};
  EXPECT_NEAR(geometric_mean(v), 4.0, 1e-12);
}

TEST(Means, GeometricRejectsNonPositive) {
  const std::vector<double> v = {1.0, 0.0};
  EXPECT_THROW((void)geometric_mean(v), Error);
  EXPECT_THROW((void)geometric_mean(std::vector<double>{}), Error);
}

TEST(Means, Arithmetic) {
  const std::vector<double> v = {1.0, 2.0, 6.0};
  EXPECT_DOUBLE_EQ(arithmetic_mean(v), 3.0);
  EXPECT_THROW((void)arithmetic_mean(std::vector<double>{}), Error);
}

TEST(Means, GeometricNeverExceedsArithmetic) {
  Xoshiro256 rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> v;
    for (int i = 0; i < 10; ++i) v.push_back(0.1 + rng.uniform01() * 10.0);
    EXPECT_LE(geometric_mean(v), arithmetic_mean(v) + 1e-12);
  }
}

TEST(Histogram, BasicBinning) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_EQ(h.total(), 10u);
  for (std::size_t b = 0; b < 10; ++b) {
    EXPECT_EQ(h.bin_count(b), 1u) << "bin " << b;
  }
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(9), 10.0);
}

TEST(Histogram, OutOfRangeClamped) {
  Histogram h(0.0, 1.0, 4);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(3), 1u);
}

TEST(Histogram, Quantiles) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.5);
  EXPECT_THROW((void)h.quantile(1.5), Error);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
  EXPECT_THROW(Histogram(1.0, 0.0, 4), Error);
}

TEST(Histogram, QuantileOnEmptyThrows) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_THROW((void)h.quantile(0.5), Error);
}

}  // namespace
}  // namespace hms
