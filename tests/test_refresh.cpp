// Refresh/static power model (hms/mem/refresh.hpp).
#include <gtest/gtest.h>

#include "hms/common/error.hpp"
#include "hms/mem/refresh.hpp"

namespace hms::mem {
namespace {

TEST(Refresh, PowerScalesLinearlyWithCapacity) {
  RefreshParams params;
  const Power p1 = refresh_power(params, 1ull << 30);
  const Power p4 = refresh_power(params, 4ull << 30);
  EXPECT_NEAR(p4.milliwatts(), 4.0 * p1.milliwatts(), 1e-9);
}

TEST(Refresh, DefaultMagnitudeIsDdr3Like) {
  // ~40 mW for 4 GiB (doc comment in refresh.hpp).
  const Power p = refresh_power(RefreshParams{}, 4ull << 30);
  EXPECT_GT(p.milliwatts(), 10.0);
  EXPECT_LT(p.milliwatts(), 200.0);
}

TEST(Refresh, ShorterRetentionCostsMore) {
  RefreshParams fast;
  fast.retention = Time::from_seconds(32e-3);
  RefreshParams slow;
  slow.retention = Time::from_seconds(64e-3);
  EXPECT_GT(refresh_power(fast, 1ull << 30).milliwatts(),
            refresh_power(slow, 1ull << 30).milliwatts());
}

TEST(Refresh, InvalidParamsThrow) {
  RefreshParams bad;
  bad.row_bytes = 0;
  EXPECT_THROW((void)refresh_power(bad, 1ull << 20), hms::Error);
  RefreshParams bad2;
  bad2.retention = Time::from_ns(0.0);
  EXPECT_THROW((void)refresh_power(bad2, 1ull << 20), hms::Error);
}

TEST(StaticPower, NvmIsZero) {
  const auto& reg = TechnologyRegistry::table1();
  for (Technology t :
       {Technology::PCM, Technology::STTRAM, Technology::FeRAM}) {
    EXPECT_DOUBLE_EQ(static_power(reg.get(t), 4ull << 30).milliwatts(), 0.0)
        << to_string(t);
  }
}

TEST(StaticPower, DramIncludesRefreshAndLeakage) {
  const auto& dram = TechnologyRegistry::table1().get(Technology::DRAM);
  const std::uint64_t cap = 4ull << 30;
  const Power leak_only = dram.static_power(cap);
  const Power total = static_power(dram, cap);
  EXPECT_GT(total.milliwatts(), leak_only.milliwatts());
}

TEST(StaticPower, SramHasNoRefresh) {
  const auto sram = sram_level(3).as_params();
  const std::uint64_t cap = 20ull << 20;
  EXPECT_DOUBLE_EQ(static_power(sram, cap).milliwatts(),
                   sram.static_power(cap).milliwatts());
}

TEST(StaticPower, BiggerDramDrawsMore) {
  // The NMM design's premise: shrinking DRAM cuts static power.
  const auto& dram = TechnologyRegistry::table1().get(Technology::DRAM);
  EXPECT_GT(static_power(dram, 4ull << 30).milliwatts(),
            static_power(dram, 512ull << 20).milliwatts());
}

}  // namespace
}  // namespace hms::mem
