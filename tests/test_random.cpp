// Deterministic PRNG (hms/common/random.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "hms/common/random.hpp"

namespace hms {
namespace {

TEST(SplitMix64, Deterministic) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, SeedsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro, DeterministicAcrossInstances) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256 a(42), b(43);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro, BelowInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Xoshiro, BelowOneIsAlwaysZero) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro, BetweenInclusiveBounds) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.between(3, 7);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Xoshiro, Uniform01InRange) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);  // mean close to 1/2
}

TEST(Xoshiro, BelowIsRoughlyUniform) {
  Xoshiro256 rng(13);
  constexpr std::uint64_t buckets = 8;
  std::vector<int> counts(buckets, 0);
  constexpr int n = 80000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<std::size_t>(rng.below(buckets))];
  }
  for (auto c : counts) {
    EXPECT_NEAR(c, n / static_cast<int>(buckets), n / 100);
  }
}

TEST(Xoshiro, ChanceExtremes) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Xoshiro, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256>);
  SUCCEED();
}

TEST(Zipf, RanksInRange) {
  ZipfSampler zipf(100, 1.0);
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf(rng), 100u);
  }
}

TEST(Zipf, HeadIsHotterThanTail) {
  ZipfSampler zipf(1000, 1.0);
  Xoshiro256 rng(7);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf(rng)];
  EXPECT_GT(counts[0], counts[100]);
  EXPECT_GT(counts[0], 20 * std::max(counts[900], 1));
}

TEST(Zipf, HarmonicRatioMatchesTheory) {
  // With s = 1, P(0)/P(1) = 2.
  ZipfSampler zipf(10000, 1.0);
  Xoshiro256 rng(11);
  int c0 = 0, c1 = 0;
  for (int i = 0; i < 400000; ++i) {
    const auto r = zipf(rng);
    if (r == 0) ++c0;
    if (r == 1) ++c1;
  }
  EXPECT_NEAR(static_cast<double>(c0) / static_cast<double>(c1), 2.0, 0.25);
}

TEST(Zipf, HigherSkewConcentratesMass) {
  Xoshiro256 rng_a(13), rng_b(13);
  ZipfSampler flat(10000, 0.5), steep(10000, 1.5);
  int flat_head = 0, steep_head = 0;
  for (int i = 0; i < 50000; ++i) {
    if (flat(rng_a) < 10) ++flat_head;
    if (steep(rng_b) < 10) ++steep_head;
  }
  EXPECT_GT(steep_head, 2 * flat_head);
}

TEST(Zipf, DeterministicGivenRngState) {
  ZipfSampler zipf(500, 0.9);
  Xoshiro256 a(21), b(21);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(zipf(a), zipf(b));
  }
}

}  // namespace
}  // namespace hms
