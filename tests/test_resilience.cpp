// Resilient sweeps end-to-end: fault-injected cells degrade into
// SuiteResult::failures, transient faults retry, and checkpointed sweeps
// resume without re-simulating completed configs.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "hms/common/fault.hpp"
#include "hms/sim/experiment.hpp"

namespace hms::sim {
namespace {

using mem::Technology;

ExperimentConfig tiny_config() {
  ExperimentConfig cfg;
  cfg.scale_divisor = 512;
  cfg.footprint_divisor = 512;
  cfg.seed = 42;
  cfg.iterations = 1;
  cfg.suite = {"StreamTriad", "CG", "Hashing"};
  cfg.threads = 1;  // deterministic task order for targeted injection
  return cfg;
}

class TempFile {
 public:
  explicit TempFile(const std::string& tag)
      : path_(::testing::TempDir() + "hms_resilience_" + tag + ".bin") {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

const std::vector<designs::NConfig> two_configs() {
  return {designs::n_config("N1"), designs::n_config("N6")};
}

TEST(Resilience, DegradeRecordsFailedCellAndAveragesSurvivors) {
  // Reference: the same sweep with nothing armed.
  ExperimentRunner clean(tiny_config());
  const auto expected = clean.nmm_sweep(Technology::PCM, two_configs());

  ScopedFaultInjector injector;
  // Warm-up replays the base back once per workload (3 hits); the 4th
  // replay_back is the first grid cell: config N1 / workload StreamTriad.
  FaultSpec spec;
  spec.skip_first = 3;
  spec.max_fires = 1;
  injector->arm("sim/replay_back", spec);

  ExperimentRunner runner(tiny_config());
  const auto results = runner.nmm_sweep(Technology::PCM, two_configs());
  ASSERT_EQ(results.size(), 2u);

  const SuiteResult& hit = results[0];
  EXPECT_TRUE(hit.partial);
  ASSERT_EQ(hit.failures.size(), 1u);
  EXPECT_EQ(hit.failures[0].workload, "StreamTriad");
  EXPECT_EQ(hit.failures[0].error,
            "config N1 / workload StreamTriad: replay_back: "
            "fault injected at sim/replay_back");
  ASSERT_EQ(hit.per_workload.size(), 2u);

  // The suite means cover exactly the two survivors (CG, Hashing).
  double runtime = 0, edp = 0;
  for (const auto& wr : expected[0].per_workload) {
    if (wr.report.workload == "StreamTriad") continue;
    runtime += wr.normalized.runtime;
    edp += wr.normalized.edp;
  }
  EXPECT_DOUBLE_EQ(hit.runtime, runtime / 2.0);
  EXPECT_DOUBLE_EQ(hit.edp, edp / 2.0);

  // The untouched config is bit-identical to the clean sweep.
  const SuiteResult& untouched = results[1];
  EXPECT_FALSE(untouched.partial);
  EXPECT_TRUE(untouched.failures.empty());
  EXPECT_EQ(untouched.per_workload.size(), 3u);
  EXPECT_DOUBLE_EQ(untouched.runtime, expected[1].runtime);
  EXPECT_DOUBLE_EQ(untouched.edp, expected[1].edp);
}

TEST(Resilience, BoundedRetryRecoversTransientFault) {
  ExperimentRunner clean(tiny_config());
  const auto expected = clean.nmm_sweep(Technology::PCM, two_configs());

  ScopedFaultInjector injector;
  FaultSpec spec;
  spec.skip_first = 3;
  spec.max_fires = 1;  // fires once, so the immediate retry succeeds
  spec.transient = true;
  injector->arm("sim/replay_back", spec);

  auto cfg = tiny_config();
  cfg.max_retries = 1;
  ExperimentRunner runner(cfg);
  const auto results = runner.nmm_sweep(Technology::PCM, two_configs());
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].partial);
  EXPECT_TRUE(results[0].failures.empty());
  EXPECT_EQ(results[0].per_workload.size(), 3u);
  EXPECT_DOUBLE_EQ(results[0].runtime, expected[0].runtime);
  EXPECT_DOUBLE_EQ(results[0].edp, expected[0].edp);
  EXPECT_EQ(injector->fires("sim/replay_back"), 1u);
}

TEST(Resilience, WarmupFailureExcludesWorkloadFromEveryConfig) {
  ScopedFaultInjector injector;
  FaultSpec spec;
  spec.max_fires = 1;  // first capture_front = warm-up of StreamTriad
  injector->arm("sim/capture_front", spec);

  ExperimentRunner runner(tiny_config());
  const auto results = runner.nmm_sweep(Technology::PCM, two_configs());
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    EXPECT_TRUE(r.partial) << r.config_name;
    ASSERT_EQ(r.failures.size(), 1u) << r.config_name;
    EXPECT_EQ(r.failures[0].workload, "StreamTriad");
    EXPECT_NE(r.failures[0].error.find("warm-up"), std::string::npos);
    EXPECT_EQ(r.per_workload.size(), 2u);
  }
}

TEST(Resilience, SweepFailsLoudlyWhenEveryCellDies) {
  ScopedFaultInjector injector;
  injector->arm("sim/replay_back");  // every replay, warm-up included
  ExperimentRunner runner(tiny_config());
  EXPECT_THROW(
      (void)runner.nmm_sweep(Technology::PCM, {designs::n_config("N1")}),
      SimulationError);
}

TEST(Resilience, CheckpointResumeSkipsCompletedConfigs) {
  TempFile file("resume");
  auto cfg = tiny_config();
  cfg.checkpoint_path = file.path();

  // "Killed" run: only N1 completed before the interruption.
  ExperimentRunner first(cfg);
  const auto partial_run =
      first.nmm_sweep(Technology::PCM, {designs::n_config("N1")});
  EXPECT_EQ(first.last_checkpoint_skips(), 0u);
  ASSERT_EQ(partial_run.size(), 1u);

  // Rerun with the same ExperimentConfig asks for the full sweep: N1 must
  // come from the checkpoint, only N6 is simulated.
  ExperimentRunner second(cfg);
  const auto resumed = second.nmm_sweep(Technology::PCM, two_configs());
  EXPECT_EQ(second.last_checkpoint_skips(), 1u);
  ASSERT_EQ(resumed.size(), 2u);
  EXPECT_DOUBLE_EQ(resumed[0].runtime, partial_run[0].runtime);
  EXPECT_DOUBLE_EQ(resumed[0].edp, partial_run[0].edp);

  // A third run finds both configs checkpointed and simulates nothing; the
  // restored values are bit-identical.
  ExperimentRunner third(cfg);
  const auto restored = third.nmm_sweep(Technology::PCM, two_configs());
  EXPECT_EQ(third.last_checkpoint_skips(), 2u);
  for (std::size_t i = 0; i < restored.size(); ++i) {
    EXPECT_EQ(restored[i].config_name, resumed[i].config_name);
    EXPECT_DOUBLE_EQ(restored[i].runtime, resumed[i].runtime);
    EXPECT_DOUBLE_EQ(restored[i].dynamic, resumed[i].dynamic);
    EXPECT_DOUBLE_EQ(restored[i].leakage, resumed[i].leakage);
    EXPECT_DOUBLE_EQ(restored[i].total_energy, resumed[i].total_energy);
    EXPECT_DOUBLE_EQ(restored[i].edp, resumed[i].edp);
    EXPECT_EQ(restored[i].per_workload.size(), 3u);
  }

  // A different experiment (new seed) must not reuse the stale checkpoint.
  auto other = cfg;
  other.seed = 43;
  ExperimentRunner fourth(other);
  (void)fourth.nmm_sweep(Technology::PCM, {designs::n_config("N1")});
  EXPECT_EQ(fourth.last_checkpoint_skips(), 0u);
}

TEST(Resilience, PartialResultsAreRecomputedOnResume) {
  TempFile file("partial");
  auto cfg = tiny_config();
  cfg.checkpoint_path = file.path();

  {
    ScopedFaultInjector injector;
    FaultSpec spec;
    spec.skip_first = 3;
    spec.max_fires = 1;
    injector->arm("sim/replay_back", spec);
    ExperimentRunner runner(cfg);
    const auto results = runner.nmm_sweep(Technology::PCM, two_configs());
    EXPECT_TRUE(results[0].partial);   // N1 degraded...
    EXPECT_FALSE(results[1].partial);  // ...N6 checkpointed complete
  }

  // Resume with the fault gone: N6 is skipped, N1 is re-simulated whole.
  ExperimentRunner runner(cfg);
  const auto results = runner.nmm_sweep(Technology::PCM, two_configs());
  EXPECT_EQ(runner.last_checkpoint_skips(), 1u);
  EXPECT_FALSE(results[0].partial);
  EXPECT_EQ(results[0].per_workload.size(), 3u);
}

}  // namespace
}  // namespace hms::sim
