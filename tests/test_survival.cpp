// Unattended-sweep survival guarantees, end to end: exhaustive checkpoint
// corruption fuzzing, chunk-CRC detection, the per-cell watchdog in every
// replay mode, clean-interrupt abort + bit-identical resume, and the
// deterministic retry backoff / strict env-knob contracts they ride on.
// (The out-of-process counterpart — real SIGKILL/SIGTERM against a live
// sweep — is tools/chaos_sweep.)
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "hms/common/backoff.hpp"
#include "hms/common/cancel.hpp"
#include "hms/common/env.hpp"
#include "hms/common/error.hpp"
#include "hms/common/fault.hpp"
#include "hms/sim/checkpoint.hpp"
#include "hms/sim/experiment.hpp"
#include "hms/trace/chunked_trace.hpp"

namespace hms::sim {
namespace {

using mem::Technology;

class TempFile {
 public:
  explicit TempFile(const std::string& tag)
      : path_(::testing::TempDir() + "hms_survival_" + tag + ".bin") {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

SuiteResult sample_result(const std::string& name, double runtime) {
  SuiteResult r;
  r.config_name = name;
  r.runtime = runtime;
  r.dynamic = 1.25;
  r.leakage = 0.75;
  r.total_energy = 1.1;
  r.edp = runtime * 1.1;
  WorkloadResult wr;
  wr.report.design = name;
  wr.report.workload = "CG";
  wr.normalized.design = name;
  wr.normalized.workload = "CG";
  wr.normalized.runtime = runtime;
  wr.normalized.edp = runtime * 1.1;
  r.per_workload.push_back(wr);
  return r;
}

/// Byte offsets where each checkpoint record starts, plus the end offset —
/// parsed from the v2 layout (16-byte header, then varint len | u32 CRC |
/// payload per record).
std::vector<std::size_t> record_boundaries(const std::string& bytes) {
  std::vector<std::size_t> bounds = {16};
  std::size_t pos = 16;
  while (pos < bytes.size()) {
    std::uint64_t len = 0;
    int shift = 0;
    while (true) {
      const auto byte = static_cast<std::uint8_t>(bytes.at(pos++));
      len |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
    }
    pos += 4 + len;
    bounds.push_back(pos);
  }
  return bounds;
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Asserts two sweep results agree on every checkpoint-persisted field,
/// bit-for-bit (resumed results restore exactly these).
void expect_bit_identical(const std::vector<SuiteResult>& got,
                          const std::vector<SuiteResult>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    SCOPED_TRACE(want[i].config_name);
    EXPECT_EQ(got[i].config_name, want[i].config_name);
    EXPECT_EQ(got[i].partial, want[i].partial);
    EXPECT_EQ(bits(got[i].runtime), bits(want[i].runtime));
    EXPECT_EQ(bits(got[i].dynamic), bits(want[i].dynamic));
    EXPECT_EQ(bits(got[i].leakage), bits(want[i].leakage));
    EXPECT_EQ(bits(got[i].total_energy), bits(want[i].total_energy));
    EXPECT_EQ(bits(got[i].edp), bits(want[i].edp));
    ASSERT_EQ(got[i].per_workload.size(), want[i].per_workload.size());
    for (std::size_t w = 0; w < got[i].per_workload.size(); ++w) {
      const auto& g = got[i].per_workload[w].normalized;
      const auto& e = want[i].per_workload[w].normalized;
      EXPECT_EQ(g.workload, e.workload);
      EXPECT_EQ(bits(g.runtime), bits(e.runtime));
      EXPECT_EQ(bits(g.total_energy), bits(e.total_energy));
      EXPECT_EQ(bits(g.edp), bits(e.edp));
    }
  }
}

ExperimentConfig tiny_config() {
  ExperimentConfig cfg;
  cfg.scale_divisor = 512;
  cfg.footprint_divisor = 512;
  cfg.seed = 42;
  cfg.iterations = 1;
  cfg.suite = {"StreamTriad", "CG"};
  cfg.threads = 1;
  cfg.cell_timeout_ms = 0;
  cfg.retry_backoff_ms = 0;
  return cfg;
}

const std::vector<designs::NConfig> two_configs() {
  return {designs::n_config("N1"), designs::n_config("N6")};
}

constexpr ReplayMode kAllModes[] = {ReplayMode::ChunkMajor,
                                    ReplayMode::ConfigMajor,
                                    ReplayMode::Sharded};

// ---------------------------------------------------------------------------
// Checkpoint corruption fuzzing
// ---------------------------------------------------------------------------

// Flip every byte of a v2 checkpoint, one at a time. The loader must never
// crash and never serve a corrupted record: whatever survives must be an
// exact prefix of the original records, and the repaired file must accept
// further appends.
TEST(CheckpointFuzz, EveryByteFlipYieldsConsistentPrefix) {
  TempFile file("fuzz");
  const std::vector<SuiteResult> originals = {
      sample_result("N1", 1.5), sample_result("N3", 2.0),
      sample_result("N6", 2.5)};
  {
    SweepCheckpoint ckpt(file.path(), 0xf022u);
    for (const auto& r : originals) ckpt.append(r);
  }
  const std::string pristine = read_file(file.path());
  const auto bounds = record_boundaries(pristine);
  ASSERT_EQ(bounds.size(), originals.size() + 1);

  for (std::size_t offset = 0; offset < pristine.size(); ++offset) {
    SCOPED_TRACE("flip at byte " + std::to_string(offset));
    std::string mutated = pristine;
    mutated[offset] = static_cast<char>(mutated[offset] ^ 0x01);
    write_file(file.path(), mutated);

    std::size_t loaded = 0;
    {
      SweepCheckpoint ckpt(file.path(), 0xf022u);
      loaded = ckpt.size();
      // A header flip resets the file; a flip inside record k must keep
      // records 0..k-1 intact and drop k..end (CRC32C detects every
      // single-byte corruption within a record).
      if (offset < 16) {
        EXPECT_EQ(loaded, 0u);
      } else {
        std::size_t record = 0;
        while (record + 1 < bounds.size() && bounds[record + 1] <= offset) {
          ++record;
        }
        EXPECT_EQ(loaded, record);
      }
      for (std::size_t i = 0; i < originals.size(); ++i) {
        const SuiteResult* found = ckpt.find(originals[i].config_name);
        if (i < loaded) {
          ASSERT_NE(found, nullptr);
          EXPECT_EQ(bits(found->runtime), bits(originals[i].runtime));
          EXPECT_EQ(bits(found->edp), bits(originals[i].edp));
        } else {
          EXPECT_EQ(found, nullptr);  // never a corrupted survivor
        }
      }
      ckpt.append(sample_result("X1", 9.0));  // repaired file still appends
    }
    SweepCheckpoint reloaded(file.path(), 0xf022u);
    EXPECT_EQ(reloaded.size(), loaded + 1);
    ASSERT_NE(reloaded.find("X1"), nullptr);
  }
}

// ---------------------------------------------------------------------------
// Trace chunk integrity
// ---------------------------------------------------------------------------

TEST(Survival, ChunkCrcFlipSurfacesAsTraceError) {
  trace::ChunkedTraceBuffer buffer(/*target_chunk_bytes=*/256,
                                   /*max_chunk_accesses=*/128);
  for (std::uint64_t i = 0; i < 4096; ++i) {
    buffer.access(trace::load(0x1000 + 64 * i));
  }
  ASSERT_GT(buffer.chunk_count(), 2u);
  std::vector<trace::MemoryAccess> scratch;
  ASSERT_GT(buffer.decode_chunk(0, scratch), 0u);  // healthy before

  buffer.corrupt_encoded_byte_for_test(7);
  try {
    buffer.decode_chunk(0, scratch);
    FAIL() << "corrupted chunk decoded silently";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find("CRC32C mismatch"),
              std::string::npos)
        << e.what();
  }
  buffer.corrupt_encoded_byte_for_test(7);        // flip back
  EXPECT_GT(buffer.decode_chunk(0, scratch), 0u);  // healthy again
}

// ---------------------------------------------------------------------------
// Watchdog: a hung cell degrades instead of hanging the sweep
// ---------------------------------------------------------------------------

TEST(Survival, WatchdogDegradesHungCellInEveryMode) {
  for (const ReplayMode mode : kAllModes) {
    SCOPED_TRACE(static_cast<int>(mode));
    ScopedFaultInjector injector;
    // Warm-up replays the base back once per workload (2 hits); the 3rd
    // hit — canonical index base(2) + workload(0)*configs + config(0) + 1
    // in the sharded engine, the same cell serially elsewhere — is config
    // N1 / workload StreamTriad. Stall it far past the watchdog budget.
    FaultSpec spec;
    spec.skip_first = 2;
    spec.max_fires = 1;
    spec.stall_ms = 60'000;
    injector->arm("sim/replay_back", spec);

    auto cfg = tiny_config();
    cfg.replay_mode = mode;
    // Healthy cells finish in ~20 ms unloaded; the budget leaves two
    // orders of magnitude for oversubscribed parallel ctest runs (1-core
    // hosts at -j8 stretch wall time well past 10x) while staying far
    // under the 60 s stall. The stalled cell waits out the full budget,
    // so this is also the dominant term of the test's runtime.
    cfg.cell_timeout_ms = 2500;
    ExperimentRunner runner(cfg);
    const auto results = runner.nmm_sweep(Technology::PCM, two_configs());

    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].partial);
    ASSERT_GE(results[0].failures.size(), 1u);
    EXPECT_EQ(results[0].failures[0].workload, "StreamTriad");
    EXPECT_NE(results[0].failures[0].error.find("timed out"),
              std::string::npos)
        << results[0].failures[0].error;
    // The stalled cell was cancelled, not waited out, and the surviving
    // cells got a fresh budget: the untouched config is complete.
    EXPECT_FALSE(results[1].partial);
    EXPECT_EQ(results[1].per_workload.size(), 2u);
  }
}

// ---------------------------------------------------------------------------
// Interrupt: abort-before-assembly, then bit-identical resume
// ---------------------------------------------------------------------------

TEST(Survival, InterruptAbortsSweepAndResumeIsBitIdentical) {
  ExperimentRunner clean(tiny_config());
  const auto reference = clean.nmm_sweep(Technology::PCM, two_configs());

  for (const ReplayMode mode : kAllModes) {
    SCOPED_TRACE(static_cast<int>(mode));
    TempFile file("interrupt");
    auto cfg = tiny_config();
    cfg.replay_mode = mode;
    cfg.checkpoint_path = file.path();

    raise_interrupt(15);
    try {
      ExperimentRunner runner(cfg);
      (void)runner.nmm_sweep(Technology::PCM, two_configs());
      clear_interrupt();
      FAIL() << "interrupted sweep assembled results";
    } catch (const CancelledError& e) {
      clear_interrupt();
      EXPECT_EQ(e.kind(), CancelKind::interrupt);
      EXPECT_NE(std::string(e.what()).find("interrupted by signal 15"),
                std::string::npos)
          << e.what();
    }

    // The rerun resumes off whatever the interrupt left checkpointed and
    // lands on the exact same tables.
    ExperimentRunner resumed(cfg);
    const auto results = resumed.nmm_sweep(Technology::PCM, two_configs());
    expect_bit_identical(results, reference);
  }
}

// ---------------------------------------------------------------------------
// In-process soak: every truncation point and a mid-record flip, per mode
// ---------------------------------------------------------------------------

TEST(Survival, DamagedCheckpointResumesBitIdenticalInEveryMode) {
  ExperimentRunner clean(tiny_config());
  const auto reference = clean.nmm_sweep(Technology::PCM, two_configs());

  for (const ReplayMode mode : kAllModes) {
    SCOPED_TRACE(static_cast<int>(mode));
    TempFile file("soak");
    auto cfg = tiny_config();
    cfg.replay_mode = mode;
    cfg.checkpoint_path = file.path();

    {
      ExperimentRunner runner(cfg);
      expect_bit_identical(runner.nmm_sweep(Technology::PCM, two_configs()),
                           reference);
    }
    const std::string pristine = read_file(file.path());
    const auto bounds = record_boundaries(pristine);
    ASSERT_EQ(bounds.size(), 3u);  // two complete configs checkpointed

    // Kill-points: resume from the file cut at every record boundary and
    // at an unaligned offset (a torn in-flight append).
    std::vector<std::size_t> cuts(bounds.begin(), bounds.end() - 1);
    cuts.push_back(bounds[1] + 3);
    for (const std::size_t cut : cuts) {
      SCOPED_TRACE("cut at " + std::to_string(cut));
      write_file(file.path(), pristine.substr(0, cut));
      ExperimentRunner resumed(cfg);
      expect_bit_identical(
          resumed.nmm_sweep(Technology::PCM, two_configs()), reference);
      const std::size_t intact = cut >= bounds[2] ? 2 : cut >= bounds[1];
      EXPECT_EQ(resumed.last_checkpoint_skips(), intact);
    }

    // Bit-rot in the middle of the first record: both configs re-simulate
    // (or the second resumes, if the flip hit the second record) — either
    // way the tables must not move.
    std::string flipped = pristine;
    const std::size_t target = bounds[0] + (bounds[1] - bounds[0]) / 2;
    flipped[target] = static_cast<char>(flipped[target] ^ 0x40);
    write_file(file.path(), flipped);
    ExperimentRunner repaired(cfg);
    expect_bit_identical(repaired.nmm_sweep(Technology::PCM, two_configs()),
                         reference);
  }
}

// ---------------------------------------------------------------------------
// Strict env knobs
// ---------------------------------------------------------------------------

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (value == nullptr) {
      unsetenv(name);
    } else {
      setenv(name, value, 1);
    }
  }
  ~ScopedEnv() { unsetenv(name_); }

 private:
  const char* name_;
};

TEST(Survival, EnvKnobsParseStrictly) {
  {
    const ScopedEnv env("HMS_SURVIVAL_KNOB", "42");
    EXPECT_EQ(env_u64("HMS_SURVIVAL_KNOB", 7), 42u);
  }
  {
    const ScopedEnv env("HMS_SURVIVAL_KNOB", nullptr);
    EXPECT_EQ(env_u64("HMS_SURVIVAL_KNOB", 7), 7u);
  }
  {
    const ScopedEnv env("HMS_SURVIVAL_KNOB", "");
    EXPECT_EQ(env_u64("HMS_SURVIVAL_KNOB", 7), 7u);
  }
  {
    const ScopedEnv env("HMS_SURVIVAL_KNOB", "three");
    try {
      (void)env_u64("HMS_SURVIVAL_KNOB", 7);
      FAIL() << "garbage knob accepted";
    } catch (const ConfigError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("HMS_SURVIVAL_KNOB"), std::string::npos) << what;
      EXPECT_NE(what.find("\"three\""), std::string::npos) << what;
    }
  }
  {
    const ScopedEnv env("HMS_SURVIVAL_KNOB", "-3");
    try {
      (void)env_u64("HMS_SURVIVAL_KNOB", 7);
      FAIL() << "negative knob accepted";
    } catch (const ConfigError& e) {
      EXPECT_NE(std::string(e.what()).find("negative"), std::string::npos)
          << e.what();
    }
  }
  {
    const ScopedEnv env("HMS_SURVIVAL_KNOB", "99999999999999999999999");
    EXPECT_THROW((void)env_u64("HMS_SURVIVAL_KNOB", 7), ConfigError);
  }
  // The runner's watchdog knobs go through the same strict parser.
  {
    const ScopedEnv env("HMS_CELL_TIMEOUT_MS", "soon");
    EXPECT_THROW((void)default_cell_timeout_ms(), ConfigError);
  }
  {
    const ScopedEnv env("HMS_RETRY_BACKOFF_MS", "0x10");
    EXPECT_THROW((void)default_retry_backoff_ms(), ConfigError);
  }
  {
    const ScopedEnv env("HMS_CELL_TIMEOUT_MS", nullptr);
    EXPECT_EQ(default_cell_timeout_ms(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Backoff schedule
// ---------------------------------------------------------------------------

TEST(Survival, BackoffScheduleIsDeterministicExponentialCapped) {
  // Pure function of (attempt, seed, base): identical every call.
  EXPECT_EQ(backoff_delay_ms(3, 99, 10), backoff_delay_ms(3, 99, 10));
  // base 0 disables backoff entirely.
  EXPECT_EQ(backoff_delay_ms(5, 99, 0), 0u);
  // Exponential envelope with jitter in [0, delay/2].
  for (std::uint32_t attempt = 0; attempt < 8; ++attempt) {
    const std::uint64_t exponential = 16ull << attempt;
    const std::uint64_t d = backoff_delay_ms(attempt, 7, 16, 100'000);
    EXPECT_GE(d, exponential);
    EXPECT_LE(d, exponential + exponential / 2);
  }
  // The cap bounds runaway attempts (including the saturating shift).
  for (const std::uint32_t attempt : {20u, 40u, 70u}) {
    const std::uint64_t d = backoff_delay_ms(attempt, 7, 100, 10'000);
    EXPECT_GE(d, 10'000u);
    EXPECT_LE(d, 15'000u);
  }
  // Different seeds decorrelate cells retrying in the same round.
  EXPECT_NE(backoff_delay_ms(2, 1, 50), backoff_delay_ms(2, 2, 50));
}

// ---------------------------------------------------------------------------
// Fault stalls honor cancellation
// ---------------------------------------------------------------------------

TEST(Survival, FaultStallHonorsAmbientCancellation) {
  ScopedFaultInjector injector;
  FaultSpec hung;
  hung.stall_ms = 60'000;
  injector->arm("test/hung", hung);

  CancellationToken token(50);
  const CancelScope scope(token);
  const auto t0 = std::chrono::steady_clock::now();
  try {
    injector->hit("test/hung");
    FAIL() << "stall ignored the deadline";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.kind(), CancelKind::timeout);
    EXPECT_NE(std::string(e.what()).find("stalled at test/hung"),
              std::string::npos)
        << e.what();
  }
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  EXPECT_LT(waited, 10'000) << "stall was waited out, not cancelled";
  EXPECT_EQ(injector->fires("test/hung"), 1u);
}

TEST(Survival, ShortFaultStallCompletesWithoutToken) {
  ScopedFaultInjector injector;
  FaultSpec slow;
  slow.stall_ms = 5;
  injector->arm("test/slow", slow);
  injector->hit("test/slow");  // no ambient token: sleeps 5 ms, no throw
  EXPECT_EQ(injector->fires("test/slow"), 1u);
  // The shard-local path reports stall fires through its return value.
  EXPECT_TRUE(injector->hit_at("test/slow", 2));
}

}  // namespace
}  // namespace hms::sim
