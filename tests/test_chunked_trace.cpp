// ChunkedTraceBuffer: compressed chunked residual recording — round-trip
// properties, chunk sealing, chunk-boundary replay equivalence against the
// flat buffer, compression floors, and the trace/decode_chunk fault site.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "hms/common/error.hpp"
#include "hms/common/fault.hpp"
#include "hms/common/random.hpp"
#include "hms/designs/configs.hpp"
#include "hms/designs/design.hpp"
#include "hms/trace/chunked_trace.hpp"
#include "hms/trace/sink.hpp"
#include "hms/trace/trace_buffer.hpp"

namespace hms::trace {
namespace {

std::vector<MemoryAccess> random_stream(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<MemoryAccess> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    MemoryAccess a;
    a.address = rng.below(1ull << 40);
    a.size = static_cast<std::uint32_t>(1 + rng.below(64));
    a.type = rng.chance(0.3) ? AccessType::Store : AccessType::Load;
    a.core = static_cast<CoreId>(rng.below(4));
    out.push_back(a);
  }
  return out;
}

/// A residual-shaped stream: mostly next-line 64 B fetches with occasional
/// far jumps, like what falls out of the L3.
std::vector<MemoryAccess> residual_stream(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<MemoryAccess> out;
  out.reserve(n);
  Address addr = 0;
  for (std::size_t i = 0; i < n; ++i) {
    addr = rng.chance(0.85) ? addr + 64 : rng.below(1ull << 30) & ~63ull;
    out.push_back({addr, 64,
                   rng.chance(0.3) ? AccessType::Store : AccessType::Load, 0});
  }
  return out;
}

void expect_equal(std::span<const MemoryAccess> got,
                  std::span<const MemoryAccess> want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "record " << i;
  }
}

TEST(ChunkedTrace, EmptyBuffer) {
  ChunkedTraceBuffer buffer;
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.loads(), 0u);
  EXPECT_EQ(buffer.stores(), 0u);
  EXPECT_EQ(buffer.chunk_count(), 0u);
  EXPECT_EQ(buffer.encoded_bytes(), 0u);
  EXPECT_TRUE(buffer.decode_all().empty());
  CountingSink sink;
  buffer.replay(sink);
  EXPECT_EQ(sink.total(), 0u);
}

TEST(ChunkedTrace, RoundTripRandom) {
  const auto stream = random_stream(50000, 7);
  ChunkedTraceBuffer buffer{std::span<const MemoryAccess>(stream)};
  EXPECT_EQ(buffer.size(), stream.size());
  expect_equal(buffer.decode_all(), stream);
}

TEST(ChunkedTrace, RoundTripMaxDeltaJumps) {
  // Alternating ends of the address space: the wrapping delta must
  // round-trip even when |delta| exceeds INT64_MAX.
  std::vector<MemoryAccess> stream;
  for (int i = 0; i < 100; ++i) {
    const Address addr = (i % 2 == 0) ? 0 : ~0ull - 63;
    stream.push_back(load(addr, 64));
  }
  ChunkedTraceBuffer buffer{std::span<const MemoryAccess>(stream)};
  expect_equal(buffer.decode_all(), stream);
}

TEST(ChunkedTrace, RoundTripStoresOnly) {
  std::vector<MemoryAccess> stream;
  for (int i = 0; i < 1000; ++i) {
    stream.push_back(store(static_cast<Address>(i) * 64, 64));
  }
  ChunkedTraceBuffer buffer{std::span<const MemoryAccess>(stream)};
  EXPECT_EQ(buffer.loads(), 0u);
  EXPECT_EQ(buffer.stores(), 1000u);
  expect_equal(buffer.decode_all(), stream);
}

TEST(ChunkedTrace, CountersMatchStream) {
  const auto stream = random_stream(10000, 11);
  ChunkedTraceBuffer buffer{std::span<const MemoryAccess>(stream)};
  Count loads = 0;
  for (const auto& a : stream) loads += a.type == AccessType::Load ? 1 : 0;
  EXPECT_EQ(buffer.loads(), loads);
  EXPECT_EQ(buffer.stores(), stream.size() - loads);
}

TEST(ChunkedTrace, BatchAndPerAccessEncodeIdentically) {
  const auto stream = random_stream(5000, 3);
  ChunkedTraceBuffer one_by_one;
  for (const auto& a : stream) one_by_one.access(a);
  ChunkedTraceBuffer batched;
  batched.access_batch(stream);
  EXPECT_EQ(one_by_one.encoded_bytes(), batched.encoded_bytes());
  EXPECT_EQ(one_by_one.chunk_count(), batched.chunk_count());
  expect_equal(one_by_one.decode_all(), batched.decode_all());
}

TEST(ChunkedTrace, ChunksSealAtLimitsAndDecodeIndependently) {
  const auto stream = random_stream(2000, 5);
  ChunkedTraceBuffer buffer(/*target_chunk_bytes=*/256,
                            /*max_chunk_accesses=*/64);
  buffer.access_batch(stream);
  ASSERT_GT(buffer.chunk_count(), 10u);

  // Decoding chunks out of order must still reproduce each chunk exactly:
  // every chunk encodes from the fixed reset state.
  std::vector<std::vector<MemoryAccess>> parts(buffer.chunk_count());
  std::size_t total = 0;
  for (std::size_t i = buffer.chunk_count(); i-- > 0;) {
    total += buffer.decode_chunk(i, parts[i]);
    EXPECT_LE(parts[i].size(), 64u) << "chunk " << i;
  }
  EXPECT_EQ(total, stream.size());
  std::vector<MemoryAccess> joined;
  for (const auto& part : parts) {
    joined.insert(joined.end(), part.begin(), part.end());
  }
  expect_equal(joined, stream);
}

TEST(ChunkedTrace, MaxAccessCapBoundsDecodedChunks) {
  // A line-strided stream encodes ~2 B/record, so the byte target alone
  // would leave huge decoded batches; the access cap must bound them.
  ChunkedTraceBuffer buffer;
  const std::size_t n = 3 * ChunkedTraceBuffer::kMaxChunkAccesses;
  for (std::size_t i = 0; i < n; ++i) {
    buffer.access(load(static_cast<Address>(i) * 64, 64));
  }
  std::vector<MemoryAccess> scratch;
  for (std::size_t i = 0; i < buffer.chunk_count(); ++i) {
    buffer.decode_chunk(i, scratch);
    EXPECT_LE(scratch.size(), ChunkedTraceBuffer::kMaxChunkAccesses);
  }
  EXPECT_GE(buffer.chunk_count(), 3u);
}

TEST(ChunkedTrace, CompresssesResidualShapedStreams) {
  // The acceptance floor for the sweep's resident residual footprint: at
  // least 2.5x under the flat buffer's 16 B/access, even with jumps.
  const auto stream = residual_stream(100000, 9);
  ChunkedTraceBuffer buffer{std::span<const MemoryAccess>(stream)};
  const double flat =
      static_cast<double>(stream.size() * sizeof(MemoryAccess));
  EXPECT_GE(flat / static_cast<double>(buffer.resident_bytes()), 2.5);

  // Pure line stride is the best case: ~2 B/record, 8x-class.
  ChunkedTraceBuffer strided;
  for (int i = 0; i < 100000; ++i) {
    strided.access(load(static_cast<Address>(i) * 64, 64));
  }
  EXPECT_GE(flat / static_cast<double>(strided.resident_bytes()), 6.0);
}

/// Records how replay delivered the stream: per-access or in batches.
class BatchRecordingSink final : public BatchAccessSink {
 public:
  void access(const MemoryAccess&) override { ++single_calls_; }
  void access_batch(std::span<const MemoryAccess> batch) override {
    batch_sizes_.push_back(batch.size());
  }

  std::size_t single_calls_ = 0;
  std::vector<std::size_t> batch_sizes_;
};

TEST(ChunkedTrace, ReplayBatchesOncePerChunk) {
  const auto stream = random_stream(1000, 13);
  ChunkedTraceBuffer buffer(/*target_chunk_bytes=*/1024,
                            /*max_chunk_accesses=*/256);
  buffer.access_batch(stream);

  BatchRecordingSink batch_sink;
  buffer.replay(batch_sink);
  EXPECT_EQ(batch_sink.single_calls_, 0u);
  EXPECT_EQ(batch_sink.batch_sizes_.size(), buffer.chunk_count());
  std::size_t total = 0;
  for (const auto s : batch_sink.batch_sizes_) total += s;
  EXPECT_EQ(total, stream.size());

  CountingSink plain;
  buffer.replay(plain);
  EXPECT_EQ(plain.total(), stream.size());
}

TEST(ChunkedTrace, ChunkBoundaryReplayMatchesFlatOnRealHierarchy) {
  // The load-bearing equivalence: replaying through many tiny chunks (all
  // boundary resets exercised) must leave a real cache hierarchy in exactly
  // the state a flat replay leaves it in.
  const auto stream = residual_stream(20000, 21);
  TraceBuffer flat{std::vector<MemoryAccess>(stream.begin(), stream.end())};
  ChunkedTraceBuffer chunked(/*target_chunk_bytes=*/512,
                             /*max_chunk_accesses=*/128);
  chunked.access_batch(stream);
  ASSERT_GT(chunked.chunk_count(), 50u);

  const designs::DesignFactory factory(512);
  const std::uint64_t footprint = 1ull << 30;
  const auto cfg = designs::n_config("N1");
  auto a = factory.nvm_main_memory_back(cfg, mem::Technology::PCM, footprint);
  auto b = factory.nvm_main_memory_back(cfg, mem::Technology::PCM, footprint);
  flat.replay(*a);
  chunked.replay(*b);

  const auto pa = a->profile();
  const auto pb = b->profile();
  ASSERT_EQ(pa.levels.size(), pb.levels.size());
  for (std::size_t i = 0; i < pa.levels.size(); ++i) {
    EXPECT_EQ(pa.levels[i].loads, pb.levels[i].loads) << i;
    EXPECT_EQ(pa.levels[i].stores, pb.levels[i].stores) << i;
    EXPECT_EQ(pa.levels[i].load_bytes, pb.levels[i].load_bytes) << i;
    EXPECT_EQ(pa.levels[i].store_bytes, pb.levels[i].store_bytes) << i;
    EXPECT_EQ(pa.levels[i].cache_stats, pb.levels[i].cache_stats) << i;
  }
}

TEST(ChunkedTrace, DecodeChunkFaultSite) {
  ChunkedTraceBuffer buffer;
  for (int i = 0; i < 10; ++i) {
    buffer.access(load(static_cast<Address>(i) * 64, 64));
  }

  ScopedFaultInjector injector;
  injector->arm("trace/decode_chunk", {});
  std::vector<MemoryAccess> scratch;
  EXPECT_THROW((void)buffer.decode_chunk(0, scratch), FaultInjectedError);

  CountingSink sink;
  EXPECT_THROW(buffer.replay(sink), FaultInjectedError);
  EXPECT_EQ(sink.total(), 0u);  // fault precedes any delivery

  injector->disarm("trace/decode_chunk");
  buffer.replay(sink);
  EXPECT_EQ(sink.total(), 10u);
}

TEST(ChunkedTrace, DecodeChunkRejectsOutOfRangeIndex) {
  ChunkedTraceBuffer buffer;
  buffer.access(load(0, 64));
  std::vector<MemoryAccess> scratch;
  EXPECT_THROW((void)buffer.decode_chunk(1, scratch), Error);
}

TEST(ChunkedTrace, RejectsZeroChunkLimits) {
  EXPECT_THROW(ChunkedTraceBuffer(0, 16), Error);
  EXPECT_THROW(ChunkedTraceBuffer(64, 0), Error);
}

TEST(ChunkedTrace, AccessCountIsRunningTotal) {
  const auto stream = random_stream(500, 23);
  ChunkedTraceBuffer buffer(/*target_chunk_bytes=*/256,
                            /*max_chunk_accesses=*/64);
  EXPECT_EQ(buffer.access_count(), 0u);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    buffer.access(stream[i]);
    ASSERT_EQ(buffer.access_count(), i + 1);
  }
  // Per-chunk counts come from the chunk directory and sum to the total.
  std::size_t sum = 0;
  for (std::size_t c = 0; c < buffer.chunk_count(); ++c) {
    const std::size_t n = buffer.chunk_access_count(c);
    EXPECT_GT(n, 0u) << c;
    std::vector<MemoryAccess> scratch;
    EXPECT_EQ(buffer.decode_chunk(c, scratch), n) << c;
    sum += n;
  }
  EXPECT_EQ(sum, buffer.access_count());
  // Past-the-end indices report zero instead of faulting.
  EXPECT_EQ(buffer.chunk_access_count(buffer.chunk_count()), 0u);
  EXPECT_EQ(buffer.chunk_access_count(buffer.chunk_count() + 7), 0u);
  buffer.clear();
  EXPECT_EQ(buffer.access_count(), 0u);
  EXPECT_EQ(buffer.chunk_access_count(0), 0u);
}

TEST(ChunkedTrace, ClearResetsEverything) {
  const auto stream = random_stream(1000, 17);
  ChunkedTraceBuffer buffer(/*target_chunk_bytes=*/256,
                            /*max_chunk_accesses=*/64);
  buffer.access_batch(stream);
  buffer.clear();
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.loads(), 0u);
  EXPECT_EQ(buffer.stores(), 0u);
  EXPECT_EQ(buffer.chunk_count(), 0u);
  EXPECT_EQ(buffer.encoded_bytes(), 0u);
  // Re-encoding after clear starts from the reset state, not stale prevs.
  buffer.access_batch(stream);
  expect_equal(buffer.decode_all(), stream);
}

}  // namespace
}  // namespace hms::trace
