// Bit helpers (hms/common/bitops.hpp).
#include <gtest/gtest.h>

#include "hms/common/bitops.hpp"
#include "hms/common/error.hpp"

namespace hms {
namespace {

TEST(BitOps, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ull << 40));
  EXPECT_FALSE(is_pow2((1ull << 40) + 1));
}

TEST(BitOps, Log2Exact) {
  EXPECT_EQ(log2_exact(1), 0u);
  EXPECT_EQ(log2_exact(64), 6u);
  EXPECT_EQ(log2_exact(1ull << 33), 33u);
  EXPECT_THROW((void)log2_exact(0), Error);
  EXPECT_THROW((void)log2_exact(3), Error);
}

TEST(BitOps, AlignDown) {
  EXPECT_EQ(align_down(0, 64), 0u);
  EXPECT_EQ(align_down(63, 64), 0u);
  EXPECT_EQ(align_down(64, 64), 64u);
  EXPECT_EQ(align_down(130, 64), 128u);
}

TEST(BitOps, AlignUp) {
  EXPECT_EQ(align_up(0, 64), 0u);
  EXPECT_EQ(align_up(1, 64), 64u);
  EXPECT_EQ(align_up(64, 64), 64u);
  EXPECT_EQ(align_up(65, 64), 128u);
}

TEST(BitOps, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(4), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
}

class AlignParamTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AlignParamTest, DownUpConsistency) {
  const std::uint64_t align = GetParam();
  for (std::uint64_t v : {0ull, 1ull, 63ull, 64ull, 65ull, 4095ull, 4096ull,
                          1'000'000ull}) {
    const auto d = align_down(v, align);
    const auto u = align_up(v, align);
    EXPECT_LE(d, v);
    EXPECT_GE(u, v);
    EXPECT_EQ(d % align, 0u);
    EXPECT_EQ(u % align, 0u);
    EXPECT_LT(v - d, align);
    EXPECT_LT(u - v, align);
  }
}

INSTANTIATE_TEST_SUITE_P(Alignments, AlignParamTest,
                         ::testing::Values(1, 2, 64, 256, 4096, 1ull << 20));

}  // namespace
}  // namespace hms
