// NDM oracle partitioner (hms/designs/partition.hpp).
#include <gtest/gtest.h>

#include "hms/common/error.hpp"
#include "hms/designs/partition.hpp"
#include "hms/trace/access.hpp"

namespace hms::designs {
namespace {

using workloads::AddressRange;

std::vector<AddressRange> three_ranges() {
  return {
      {"hot", 0x1000, 0x1000},
      {"warm", 0x2000, 0x2000},
      {"cold", 0x4000, 0x8000},
  };
}

TEST(RangeProfiler, AttributesAccesses) {
  RangeProfiler p(three_ranges());
  p.access(trace::load(0x1000, 64));
  p.access(trace::load(0x1800, 64));
  p.access(trace::store(0x2000, 64));
  p.access(trace::load(0x4100, 64));
  p.access(trace::load(0xf0000, 64));  // outside everything
  ASSERT_EQ(p.usages().size(), 3u);
  EXPECT_EQ(p.usages()[0].loads, 2u);
  EXPECT_EQ(p.usages()[0].stores, 0u);
  EXPECT_EQ(p.usages()[1].stores, 1u);
  EXPECT_EQ(p.usages()[2].loads, 1u);
  EXPECT_EQ(p.unmatched(), 1u);
}

TEST(RangeProfiler, BelowFirstRangeIsUnmatched) {
  RangeProfiler p(three_ranges());
  p.access(trace::load(0x10, 8));
  EXPECT_EQ(p.unmatched(), 1u);
}

TEST(RangeUsage, DensityPerKib) {
  RangeUsage u{{"r", 0, 2048}, 10, 10};
  EXPECT_DOUBLE_EQ(u.density(), 10.0);  // 20 accesses / 2 KiB
  EXPECT_EQ(u.total(), 20u);
}

TEST(MergeRanges, KeepsAtMostMaxCandidates) {
  std::vector<RangeUsage> usages;
  for (int i = 0; i < 10; ++i) {
    usages.push_back(RangeUsage{
        {"r" + std::to_string(i), static_cast<Address>(i) * 0x1000, 0x1000},
        static_cast<Count>(10 * (i + 1)),
        0});
  }
  const auto merged = merge_ranges(usages, 3);
  ASSERT_EQ(merged.size(), 3u);
  // Coverage preserved: merged ranges span the originals contiguously.
  Count total = 0;
  std::uint64_t length = 0;
  for (const auto& m : merged) {
    total += m.total();
    length += m.range.length;
  }
  EXPECT_EQ(total, 10u + 20 + 30 + 40 + 50 + 60 + 70 + 80 + 90 + 100);
  EXPECT_EQ(length, 10u * 0x1000);
}

TEST(MergeRanges, MergesSimilarDensitiesFirst) {
  // hot (1000/page), hot2 (900/page), cold (1/page): with 2 candidates the
  // two hot ranges must merge, leaving cold alone.
  std::vector<RangeUsage> usages = {
      {{"hot", 0x0000, 0x1000}, 1000, 0},
      {{"hot2", 0x1000, 0x1000}, 900, 0},
      {{"cold", 0x2000, 0x1000}, 1, 0},
  };
  const auto merged = merge_ranges(usages, 2);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].range.name, "hot+hot2");
  EXPECT_EQ(merged[0].total(), 1900u);
  EXPECT_EQ(merged[1].range.name, "cold");
}

TEST(MergeRanges, NoopWhenAlreadyFew) {
  std::vector<RangeUsage> usages = {{{"only", 0, 64}, 5, 5}};
  const auto merged = merge_ranges(usages, 3);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].range.name, "only");
}

TEST(MergeRanges, ZeroCandidatesThrows) {
  EXPECT_THROW((void)merge_ranges({}, 0), hms::Error);
}

TEST(Placements, OnePerCandidatePlusAllDram) {
  std::vector<RangeUsage> candidates = {
      {{"a", 0x0000, 0x1000}, 30, 10},
      {{"b", 0x1000, 0x3000}, 5, 5},
  };
  const auto placements = enumerate_placements(candidates);
  ASSERT_EQ(placements.size(), 3u);
  EXPECT_EQ(placements[0].name, "all-DRAM");
  EXPECT_TRUE(placements[0].nvm_rules.empty());
  EXPECT_EQ(placements[1].name, "a -> NVM");
  ASSERT_EQ(placements[1].nvm_rules.size(), 1u);
  EXPECT_EQ(placements[1].nvm_rules[0].base, 0x0000u);
  EXPECT_EQ(placements[1].nvm_rules[0].length, 0x1000u);
  EXPECT_DOUBLE_EQ(placements[1].nvm_reference_fraction, 0.8);
  EXPECT_DOUBLE_EQ(placements[2].nvm_reference_fraction, 0.2);
}

TEST(Placements, EmptyCandidates) {
  const auto placements = enumerate_placements({});
  ASSERT_EQ(placements.size(), 1u);
  EXPECT_EQ(placements[0].name, "all-DRAM");
}

TEST(SubsetPlacements, EnumeratesAllSubsets) {
  std::vector<RangeUsage> candidates = {
      {{"a", 0x0000, 0x1000}, 10, 0},
      {{"b", 0x1000, 0x2000}, 20, 0},
      {{"c", 0x3000, 0x4000}, 30, 0},
  };
  const auto placements = enumerate_subset_placements(candidates, 1ull << 40);
  EXPECT_EQ(placements.size(), 8u);  // 2^3
  // Mask 0 = all-DRAM.
  EXPECT_EQ(placements[0].name, "all-DRAM");
  EXPECT_EQ(placements[0].dram_bytes, 0x7000u);
  // Full subset leaves nothing in DRAM.
  EXPECT_EQ(placements[7].dram_bytes, 0u);
  EXPECT_EQ(placements[7].nvm_rules.size(), 3u);
  EXPECT_DOUBLE_EQ(placements[7].nvm_reference_fraction, 1.0);
}

TEST(SubsetPlacements, FeasibilityAgainstDramCapacity) {
  std::vector<RangeUsage> candidates = {
      {{"small", 0x0000, 0x1000}, 10, 0},
      {{"big", 0x1000, 0x10000}, 5, 0},
  };
  // DRAM can hold 0x2000 bytes: only placements sending "big" to NVM fit.
  const auto placements = enumerate_subset_placements(candidates, 0x2000);
  for (const auto& p : placements) {
    const bool big_in_nvm =
        p.name.find("big") != std::string::npos;
    EXPECT_EQ(p.feasible, big_in_nvm) << p.name;
  }
}

TEST(SubsetPlacements, TooManyCandidatesThrow) {
  std::vector<RangeUsage> candidates(17);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    candidates[i] = RangeUsage{
        {"r" + std::to_string(i), static_cast<Address>(i) * 0x1000, 0x1000},
        1,
        0};
  }
  EXPECT_THROW((void)enumerate_subset_placements(candidates, 1ull << 30),
               hms::Error);
}

}  // namespace
}  // namespace hms::designs
