// FaultInjector (hms/common/fault.hpp): deterministic fault injection.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "hms/common/fault.hpp"
#include "hms/mem/memory_device.hpp"
#include "hms/mem/technology.hpp"
#include "hms/trace/trace_buffer.hpp"
#include "hms/trace/trace_io.hpp"
#include "hms/workloads/registry.hpp"

namespace hms {
namespace {

TEST(Fault, InactiveByDefault) {
  EXPECT_EQ(FaultInjector::active(), nullptr);
  // The macro is a no-op without an active injector.
  HMS_FAULT_POINT("nowhere/nothing");
}

TEST(Fault, ScopedInstallAndNestedRestore) {
  EXPECT_EQ(FaultInjector::active(), nullptr);
  {
    ScopedFaultInjector outer;
    EXPECT_EQ(FaultInjector::active(), &*outer);
    {
      ScopedFaultInjector inner;
      EXPECT_EQ(FaultInjector::active(), &*inner);
    }
    EXPECT_EQ(FaultInjector::active(), &*outer);
  }
  EXPECT_EQ(FaultInjector::active(), nullptr);
}

TEST(Fault, ArmedSiteFiresWithDefaultSpec) {
  ScopedFaultInjector injector;
  injector->arm("unit/site");
  try {
    HMS_FAULT_POINT("unit/site");
    FAIL() << "expected FaultInjectedError";
  } catch (const FaultInjectedError& e) {
    EXPECT_STREQ(e.what(), "fault injected at unit/site");
    EXPECT_FALSE(e.transient());
  }
  EXPECT_EQ(injector->hits("unit/site"), 1u);
  EXPECT_EQ(injector->fires("unit/site"), 1u);
}

TEST(Fault, CustomMessageAndTransientFlag) {
  ScopedFaultInjector injector;
  FaultSpec spec;
  spec.message = "disk on fire";
  spec.transient = true;
  injector->arm("unit/site", spec);
  try {
    HMS_FAULT_POINT("unit/site");
    FAIL() << "expected FaultInjectedError";
  } catch (const FaultInjectedError& e) {
    EXPECT_STREQ(e.what(), "disk on fire");
    EXPECT_TRUE(e.transient());
  }
}

TEST(Fault, SkipFirstDelaysFiring) {
  ScopedFaultInjector injector;
  FaultSpec spec;
  spec.skip_first = 2;
  injector->arm("unit/site", spec);
  EXPECT_NO_THROW(HMS_FAULT_POINT("unit/site"));
  EXPECT_NO_THROW(HMS_FAULT_POINT("unit/site"));
  EXPECT_THROW(HMS_FAULT_POINT("unit/site"), FaultInjectedError);
  EXPECT_EQ(injector->hits("unit/site"), 3u);
  EXPECT_EQ(injector->fires("unit/site"), 1u);
}

TEST(Fault, MaxFiresDisarmsAfterBudget) {
  ScopedFaultInjector injector;
  FaultSpec spec;
  spec.max_fires = 2;
  injector->arm("unit/site", spec);
  EXPECT_THROW(HMS_FAULT_POINT("unit/site"), FaultInjectedError);
  EXPECT_THROW(HMS_FAULT_POINT("unit/site"), FaultInjectedError);
  EXPECT_NO_THROW(HMS_FAULT_POINT("unit/site"));
  EXPECT_NO_THROW(HMS_FAULT_POINT("unit/site"));
  EXPECT_EQ(injector->fires("unit/site"), 2u);
}

TEST(Fault, DisarmStopsFiringButKeepsCounting) {
  ScopedFaultInjector injector;
  injector->arm("unit/site");
  EXPECT_THROW(HMS_FAULT_POINT("unit/site"), FaultInjectedError);
  injector->disarm("unit/site");
  EXPECT_NO_THROW(HMS_FAULT_POINT("unit/site"));
  EXPECT_EQ(injector->hits("unit/site"), 2u);
}

TEST(Fault, UnarmedSitesStillCountHits) {
  ScopedFaultInjector injector;
  HMS_FAULT_POINT("unit/other");
  HMS_FAULT_POINT("unit/other");
  EXPECT_EQ(injector->hits("unit/other"), 2u);
  EXPECT_EQ(injector->fires("unit/other"), 0u);
}

TEST(Fault, ProbabilityIsDeterministicPerSeed) {
  const auto pattern = [](std::uint64_t seed) {
    ScopedFaultInjector injector(seed);
    FaultSpec spec;
    spec.probability = 0.3;
    injector->arm("unit/site", spec);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      try {
        HMS_FAULT_POINT("unit/site");
        fired.push_back(false);
      } catch (const FaultInjectedError&) {
        fired.push_back(true);
      }
    }
    return fired;
  };
  const auto a = pattern(7);
  EXPECT_EQ(a, pattern(7));
  EXPECT_NE(a, pattern(8));
  // Fire rate should be in the right ballpark for p = 0.3 over 200 trials.
  const auto fires = std::count(a.begin(), a.end(), true);
  EXPECT_GT(fires, 30);
  EXPECT_LT(fires, 90);
}

TEST(Fault, HitAtMatchesSerialHitDecisions) {
  // hit_at(site, i) is the pure-function form of the i-th serial hit():
  // for any spec, walking indices 1..N must reproduce the exact fire
  // pattern of N sequential hit() calls under the same seed.
  const auto serial_pattern = [](const FaultSpec& spec) {
    ScopedFaultInjector injector(7);
    injector->arm("unit/site", spec);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      try {
        HMS_FAULT_POINT("unit/site");
        fired.push_back(false);
      } catch (const FaultInjectedError&) {
        fired.push_back(true);
      }
    }
    return fired;
  };
  const auto indexed_pattern = [](const FaultSpec& spec) {
    ScopedFaultInjector injector(7);
    injector->arm("unit/site", spec);
    std::vector<bool> fired;
    for (std::uint64_t i = 1; i <= 64; ++i) {
      try {
        injector->hit_at("unit/site", i);
        fired.push_back(false);
      } catch (const FaultInjectedError&) {
        fired.push_back(true);
      }
    }
    return fired;
  };

  for (const double probability : {1.0, 0.3}) {
    for (const std::uint64_t skip_first : {std::uint64_t{0}, std::uint64_t{5}}) {
      for (const std::uint64_t max_fires :
           {std::numeric_limits<std::uint64_t>::max(), std::uint64_t{1},
            std::uint64_t{3}}) {
        FaultSpec spec;
        spec.probability = probability;
        spec.skip_first = skip_first;
        spec.max_fires = max_fires;
        SCOPED_TRACE("p=" + std::to_string(probability) +
                     " skip=" + std::to_string(skip_first) +
                     " max=" + std::to_string(max_fires));
        EXPECT_EQ(serial_pattern(spec), indexed_pattern(spec));
      }
    }
  }
}

TEST(Fault, HitAtIsOrderIndependent) {
  // The decision for an index does not depend on which indices were probed
  // before it — the property that makes sharded sweeps deterministic.
  FaultSpec spec;
  spec.probability = 0.4;
  spec.max_fires = 3;
  const auto probe = [&](std::uint64_t index) {
    ScopedFaultInjector injector(11);
    injector->arm("unit/site", spec);
    try {
      injector->hit_at("unit/site", index);
      return false;
    } catch (const FaultInjectedError&) {
      return true;
    }
  };
  std::vector<bool> forward, backward;
  for (std::uint64_t i = 1; i <= 32; ++i) forward.push_back(probe(i));
  for (std::uint64_t i = 32; i >= 1; --i) backward.push_back(probe(i));
  std::reverse(backward.begin(), backward.end());
  EXPECT_EQ(forward, backward);
}

TEST(Fault, HitAtDoesNotTouchCounters) {
  // hit_at leaves accounting to the caller (ShardFaultAccount); the shared
  // counters only move when the tallies merge.
  ScopedFaultInjector injector;
  injector->arm("unit/site");
  EXPECT_THROW(injector->hit_at("unit/site", 1), FaultInjectedError);
  EXPECT_EQ(injector->hits("unit/site"), 0u);
  EXPECT_EQ(injector->fires("unit/site"), 0u);
  injector->merge_counts("unit/site", 5, 2);
  injector->merge_counts("unit/other", 1, 0);
  EXPECT_EQ(injector->hits("unit/site"), 5u);
  EXPECT_EQ(injector->fires("unit/site"), 2u);
  EXPECT_EQ(injector->hits("unit/other"), 1u);
}

TEST(Fault, ShardAccountTalliesAndSealsOnce) {
  ScopedFaultInjector injector;
  FaultSpec spec;
  spec.skip_first = 2;
  injector->arm("unit/site", spec);
  {
    ShardFaultAccount account;
    EXPECT_NO_THROW(account.hit("unit/site", 1));
    EXPECT_NO_THROW(account.hit("unit/site", 2));
    EXPECT_THROW(account.hit("unit/site", 3), FaultInjectedError);
    EXPECT_NO_THROW(account.hit("unit/quiet", 1));
    // Nothing merged yet: counters move only at seal.
    EXPECT_EQ(injector->hits("unit/site"), 0u);
    account.seal();
    EXPECT_EQ(injector->hits("unit/site"), 3u);
    EXPECT_EQ(injector->fires("unit/site"), 1u);
    EXPECT_EQ(injector->hits("unit/quiet"), 1u);
    // The destructor's implicit seal is a no-op after an explicit one.
  }
  EXPECT_EQ(injector->hits("unit/site"), 3u);
  EXPECT_EQ(injector->fires("unit/site"), 1u);
}

TEST(Fault, ShardAccountIsInertWithoutInjector) {
  ShardFaultAccount account;
  EXPECT_NO_THROW(account.hit("unit/site", 1));
  EXPECT_NO_THROW(account.seal());
}

TEST(Fault, ResetClearsEverything) {
  ScopedFaultInjector injector;
  injector->arm("unit/site");
  EXPECT_THROW(HMS_FAULT_POINT("unit/site"), FaultInjectedError);
  injector->reset();
  EXPECT_NO_THROW(HMS_FAULT_POINT("unit/site"));
  EXPECT_EQ(injector->hits("unit/site"), 1u);  // recounted after reset
}

// -- the production fault points ------------------------------------------

TEST(Fault, TraceReadSiteFires) {
  ScopedFaultInjector injector;
  injector->arm("trace/read");
  trace::TraceBuffer buffer;
  buffer.access(trace::load(0x100, 8));
  std::stringstream stream;
  trace::write_trace(stream, buffer);
  EXPECT_THROW((void)trace::read_trace(stream), FaultInjectedError);
  injector->disarm("trace/read");
  EXPECT_EQ(trace::read_trace(stream).size(), 1u);
}

TEST(Fault, MemoryDeviceWriteSiteFires) {
  ScopedFaultInjector injector;
  mem::MemoryDeviceConfig config;
  config.technology = mem::TechnologyRegistry::table1().get(
      mem::Technology::DRAM);
  config.capacity_bytes = 1 << 20;
  config.line_bytes = 64;
  mem::MemoryDevice device(config);
  device.write(0, 64);  // unarmed: counted, not fired
  injector->arm("mem/device_write");
  EXPECT_THROW(device.write(64, 64), FaultInjectedError);
  EXPECT_EQ(injector->hits("mem/device_write"), 2u);
}

TEST(Fault, WorkloadRunSiteFires) {
  ScopedFaultInjector injector;
  injector->arm("workload/run");
  auto workload = workloads::make_workload(
      "StreamTriad", workloads::WorkloadParams{1ull << 20, 42, 1});
  trace::TraceBuffer sink;
  EXPECT_THROW(workload->run(sink), FaultInjectedError);
}

}  // namespace
}  // namespace hms
