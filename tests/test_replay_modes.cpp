// Replay-mode equivalence: all three sweep strategies (chunk-major,
// config-major, sharded) must produce bit-identical SuiteResults,
// replay_back_many must match sequential replay_back exactly, and
// checkpoints must resume across modes. test_sharded_sweep.cpp adds the
// larger-grid / multi-thread stress differentials for the sharded engine.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "hms/common/fault.hpp"
#include "hms/sim/experiment.hpp"

namespace hms::sim {
namespace {

using mem::Technology;

ExperimentConfig tiny_config(ReplayMode mode) {
  ExperimentConfig cfg;
  cfg.scale_divisor = 512;
  cfg.footprint_divisor = 512;
  cfg.seed = 42;
  cfg.iterations = 1;
  cfg.suite = {"StreamTriad", "CG"};
  cfg.threads = 2;
  cfg.replay_mode = mode;
  return cfg;
}

const std::vector<designs::NConfig> three_configs() {
  return {designs::n_config("N1"), designs::n_config("N3"),
          designs::n_config("N6")};
}

class TempFile {
 public:
  explicit TempFile(const std::string& tag)
      : path_(::testing::TempDir() + "hms_replay_modes_" + tag + ".bin") {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// RAII guard: sets (or clears) HMS_REPLAY_MODE and restores the previous
/// value on destruction so the ambient test environment stays clean.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

TEST(ReplayModes, DefaultModeParsesEnv) {
  {
    ScopedEnv env("HMS_REPLAY_MODE", nullptr);
    EXPECT_EQ(default_replay_mode(), ReplayMode::ChunkMajor);
  }
  {
    ScopedEnv env("HMS_REPLAY_MODE", "");
    EXPECT_EQ(default_replay_mode(), ReplayMode::ChunkMajor);
  }
  {
    ScopedEnv env("HMS_REPLAY_MODE", "chunk");
    EXPECT_EQ(default_replay_mode(), ReplayMode::ChunkMajor);
  }
  {
    ScopedEnv env("HMS_REPLAY_MODE", "config");
    EXPECT_EQ(default_replay_mode(), ReplayMode::ConfigMajor);
  }
  {
    ScopedEnv env("HMS_REPLAY_MODE", "shard");
    EXPECT_EQ(default_replay_mode(), ReplayMode::Sharded);
  }
  {
    ScopedEnv env("HMS_REPLAY_MODE", "bogus");
    EXPECT_THROW((void)default_replay_mode(), ConfigError);
  }
}

void expect_suites_identical(const std::vector<SuiteResult>& a,
                             const std::vector<SuiteResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(a[i].config_name);
    EXPECT_EQ(a[i].config_name, b[i].config_name);
    EXPECT_EQ(a[i].partial, b[i].partial);
    EXPECT_DOUBLE_EQ(a[i].runtime, b[i].runtime);
    EXPECT_DOUBLE_EQ(a[i].dynamic, b[i].dynamic);
    EXPECT_DOUBLE_EQ(a[i].leakage, b[i].leakage);
    EXPECT_DOUBLE_EQ(a[i].total_energy, b[i].total_energy);
    EXPECT_DOUBLE_EQ(a[i].edp, b[i].edp);
    ASSERT_EQ(a[i].per_workload.size(), b[i].per_workload.size());
    for (std::size_t w = 0; w < a[i].per_workload.size(); ++w) {
      const auto& na = a[i].per_workload[w].normalized;
      const auto& nb = b[i].per_workload[w].normalized;
      EXPECT_DOUBLE_EQ(na.runtime, nb.runtime);
      EXPECT_DOUBLE_EQ(na.total_energy, nb.total_energy);
      EXPECT_DOUBLE_EQ(na.edp, nb.edp);
    }
  }
}

TEST(ReplayModes, SweepsAreBitIdenticalAcrossModes) {
  // The differential test the chunk-major and sharded paths are gated on:
  // a 3-config x 2-workload grid must produce bit-identical SuiteResults
  // in all three modes.
  ExperimentRunner chunk(tiny_config(ReplayMode::ChunkMajor));
  ExperimentRunner config(tiny_config(ReplayMode::ConfigMajor));
  ExperimentRunner shard(tiny_config(ReplayMode::Sharded));
  const auto a = chunk.nmm_sweep(Technology::PCM, three_configs());
  const auto b = config.nmm_sweep(Technology::PCM, three_configs());
  const auto c = shard.nmm_sweep(Technology::PCM, three_configs());
  expect_suites_identical(a, b);
  expect_suites_identical(a, c);
}

TEST(ReplayModes, FourLcSweepsAreBitIdenticalAcrossModes) {
  // Second workload family/design shape through the same differential.
  const std::vector<designs::EhConfig> configs = {designs::eh_config("EH1"),
                                                  designs::eh_config("EH4")};
  ExperimentRunner chunk(tiny_config(ReplayMode::ChunkMajor));
  ExperimentRunner config(tiny_config(ReplayMode::ConfigMajor));
  ExperimentRunner shard(tiny_config(ReplayMode::Sharded));
  const auto a = chunk.four_lc_sweep(Technology::eDRAM, configs);
  const auto b = config.four_lc_sweep(Technology::eDRAM, configs);
  const auto c = shard.four_lc_sweep(Technology::eDRAM, configs);
  expect_suites_identical(a, b);
  expect_suites_identical(a, c);
}

TEST(ReplayModes, ReplayBackManyMatchesSequentialReplay) {
  ExperimentRunner runner(tiny_config(ReplayMode::ChunkMajor));
  const FrontCapture& capture = runner.front("CG");
  const auto& factory = runner.factory();
  const std::vector<std::string> names = {"N1", "N2", "N3", "N6"};

  std::vector<std::unique_ptr<cache::MemoryHierarchy>> seq, many;
  std::vector<cache::MemoryHierarchy*> ptrs;
  for (const auto& n : names) {
    seq.push_back(factory.nvm_main_memory_back(
        designs::n_config(n), Technology::PCM, capture.footprint_bytes));
    many.push_back(factory.nvm_main_memory_back(
        designs::n_config(n), Technology::PCM, capture.footprint_bytes));
    ptrs.push_back(many.back().get());
  }

  const auto outcomes = replay_back_many(capture, ptrs);
  ASSERT_EQ(outcomes.size(), names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    SCOPED_TRACE(names[i]);
    ASSERT_TRUE(outcomes[i].ok) << outcomes[i].error;
    const auto expected = replay_back(capture, *seq[i]);
    const auto& got = outcomes[i].profile;
    EXPECT_EQ(got.references, expected.references);
    ASSERT_EQ(got.levels.size(), expected.levels.size());
    for (std::size_t l = 0; l < got.levels.size(); ++l) {
      EXPECT_EQ(got.levels[l].loads, expected.levels[l].loads) << l;
      EXPECT_EQ(got.levels[l].stores, expected.levels[l].stores) << l;
      EXPECT_EQ(got.levels[l].load_bytes, expected.levels[l].load_bytes) << l;
      EXPECT_EQ(got.levels[l].store_bytes, expected.levels[l].store_bytes)
          << l;
      EXPECT_EQ(got.levels[l].cache_stats, expected.levels[l].cache_stats)
          << l;
    }
  }
}

TEST(ReplayModes, ReplayBackManyIsolatesPerBackFaults) {
  ExperimentRunner runner(tiny_config(ReplayMode::ChunkMajor));
  const FrontCapture& capture = runner.front("CG");
  const auto& factory = runner.factory();

  std::vector<std::unique_ptr<cache::MemoryHierarchy>> backs;
  std::vector<cache::MemoryHierarchy*> ptrs;
  for (const char* n : {"N1", "N3", "N6"}) {
    backs.push_back(factory.nvm_main_memory_back(
        designs::n_config(n), Technology::PCM, capture.footprint_bytes));
    ptrs.push_back(backs.back().get());
  }

  // replay_back_many takes one sim/replay_back hit per back, in order,
  // before decoding: the second armed hit fails exactly the second back.
  ScopedFaultInjector injector;
  FaultSpec spec;
  spec.skip_first = 1;
  spec.max_fires = 1;
  injector->arm("sim/replay_back", spec);

  const auto outcomes = replay_back_many(capture, ptrs);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[0].ok) << outcomes[0].error;
  EXPECT_FALSE(outcomes[1].ok);
  EXPECT_EQ(outcomes[1].error, "fault injected at sim/replay_back");
  EXPECT_TRUE(outcomes[2].ok) << outcomes[2].error;

  // Survivors match a clean standalone replay bit-for-bit.
  injector->disarm("sim/replay_back");
  auto clean = factory.nvm_main_memory_back(
      designs::n_config("N6"), Technology::PCM, capture.footprint_bytes);
  const auto expected = replay_back(capture, *clean);
  ASSERT_EQ(outcomes[2].profile.levels.size(), expected.levels.size());
  for (std::size_t l = 0; l < expected.levels.size(); ++l) {
    EXPECT_EQ(outcomes[2].profile.levels[l].loads, expected.levels[l].loads);
    EXPECT_EQ(outcomes[2].profile.levels[l].cache_stats,
              expected.levels[l].cache_stats);
  }
}

TEST(ReplayModes, DegradedCellsAreIdenticalAcrossModes) {
  // Fault the first grid cell (4th replay_back hit: 2-workload warm-up
  // takes 2, then config N1 / workload StreamTriad) in each mode; the
  // degraded SuiteResults must agree on the failure and the survivors.
  auto degraded_sweep = [](ReplayMode mode) {
    ScopedFaultInjector injector;
    FaultSpec spec;
    spec.skip_first = 2;
    spec.max_fires = 1;
    injector->arm("sim/replay_back", spec);
    auto cfg = tiny_config(mode);
    cfg.threads = 1;  // deterministic task order for targeted injection
    ExperimentRunner runner(cfg);
    return runner.nmm_sweep(Technology::PCM, three_configs());
  };

  const auto chunk = degraded_sweep(ReplayMode::ChunkMajor);
  const auto config = degraded_sweep(ReplayMode::ConfigMajor);
  const auto shard = degraded_sweep(ReplayMode::Sharded);
  ASSERT_EQ(chunk.size(), 3u);
  EXPECT_TRUE(chunk[0].partial);
  ASSERT_EQ(chunk[0].failures.size(), 1u);
  EXPECT_EQ(chunk[0].failures[0].workload, "StreamTriad");
  EXPECT_EQ(chunk[0].failures[0].error,
            "config N1 / workload StreamTriad: replay_back: "
            "fault injected at sim/replay_back");
  ASSERT_EQ(config.size(), 3u);
  ASSERT_EQ(config[0].failures.size(), 1u);
  EXPECT_EQ(chunk[0].failures[0].error, config[0].failures[0].error);
  expect_suites_identical(chunk, config);
  ASSERT_EQ(shard.size(), 3u);
  ASSERT_EQ(shard[0].failures.size(), 1u);
  EXPECT_EQ(chunk[0].failures[0].error, shard[0].failures[0].error);
  expect_suites_identical(chunk, shard);
}

TEST(ReplayModes, RetriesRecoverTransientFaultsInChunkMajor) {
  // A transient fault on one cell of the chunk-major grid is retried via
  // the standalone replay fallback and leaves no trace in the result.
  ExperimentRunner clean(tiny_config(ReplayMode::ChunkMajor));
  const auto expected = clean.nmm_sweep(Technology::PCM, three_configs());

  ScopedFaultInjector injector;
  FaultSpec spec;
  spec.skip_first = 2;
  spec.max_fires = 1;
  spec.transient = true;
  injector->arm("sim/replay_back", spec);

  auto cfg = tiny_config(ReplayMode::ChunkMajor);
  cfg.threads = 1;
  cfg.max_retries = 1;
  ExperimentRunner runner(cfg);
  const auto results = runner.nmm_sweep(Technology::PCM, three_configs());
  EXPECT_EQ(injector->fires("sim/replay_back"), 1u);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) {
    EXPECT_FALSE(r.partial) << r.config_name;
    EXPECT_TRUE(r.failures.empty()) << r.config_name;
  }
  expect_suites_identical(results, expected);
}

/// RAII temp directory for trace-store tests.
class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(::testing::TempDir() + "hms_replay_modes_" + tag + ".dir") {
    std::filesystem::remove_all(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(ReplayModes, ParallelWarmupIsBitIdenticalInEveryMode) {
  // The pipelined warm-up is execution-only: serial (warmup_threads = 1,
  // threads = 1) and parallel (4 x 4) sweeps must produce bit-identical
  // SuiteResults in every replay mode, full and sampled.
  for (const ReplayMode mode : {ReplayMode::ChunkMajor, ReplayMode::ConfigMajor,
                                ReplayMode::Sharded}) {
    for (const bool simpoint : {false, true}) {
      SCOPED_TRACE("mode=" + std::to_string(static_cast<int>(mode)) +
                   " simpoint=" + std::to_string(simpoint));
      auto serial_cfg = tiny_config(mode);
      serial_cfg.threads = 1;
      serial_cfg.warmup_threads = 1;
      auto parallel_cfg = tiny_config(mode);
      parallel_cfg.threads = 4;
      parallel_cfg.warmup_threads = 4;
      if (simpoint) {
        for (auto* cfg : {&serial_cfg, &parallel_cfg}) {
          cfg->sampling = SamplingMode::SimPoint;
          cfg->sample_k = 3;
          cfg->warmup_chunks = 1;
        }
      }
      ExperimentRunner serial(serial_cfg);
      ExperimentRunner parallel(parallel_cfg);
      const auto a = serial.nmm_sweep(Technology::PCM, three_configs());
      const auto b = parallel.nmm_sweep(Technology::PCM, three_configs());
      expect_suites_identical(a, b);
    }
  }
}

TEST(ReplayModes, TraceCacheColdAndWarmSweepsAreBitIdentical) {
  // A sweep without a trace store, one that fills it cold, and one per
  // mode that replays from the warm store must all agree bit-for-bit.
  TempDir cache("trace_cache");
  ExperimentRunner none(tiny_config(ReplayMode::ChunkMajor));
  const auto expected = none.nmm_sweep(Technology::PCM, three_configs());

  auto cold_cfg = tiny_config(ReplayMode::ChunkMajor);
  cold_cfg.trace_cache_dir = cache.path();
  ExperimentRunner cold(cold_cfg);
  expect_suites_identical(expected,
                          cold.nmm_sweep(Technology::PCM, three_configs()));

  // The cold sweep appended one entry per suite workload.
  std::size_t entries = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(cache.path())) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 2u);

  for (const ReplayMode mode : {ReplayMode::ChunkMajor, ReplayMode::ConfigMajor,
                                ReplayMode::Sharded}) {
    SCOPED_TRACE("warm mode=" + std::to_string(static_cast<int>(mode)));
    auto warm_cfg = tiny_config(mode);
    warm_cfg.trace_cache_dir = cache.path();
    ExperimentRunner warm(warm_cfg);
    expect_suites_identical(expected,
                            warm.nmm_sweep(Technology::PCM, three_configs()));
  }
}

TEST(ReplayModes, TraceCacheSampledSweepsAreBitIdentical) {
  // SimPoint plans are rebuilt from the decoded interval profile, so a
  // store hit must reproduce the sampled estimates exactly too.
  TempDir cache("trace_cache_simpoint");
  auto make_cfg = [&](bool cached) {
    auto cfg = tiny_config(ReplayMode::ChunkMajor);
    cfg.sampling = SamplingMode::SimPoint;
    cfg.sample_k = 3;
    cfg.warmup_chunks = 1;
    if (cached) cfg.trace_cache_dir = cache.path();
    return cfg;
  };
  ExperimentRunner none(make_cfg(false));
  ExperimentRunner cold(make_cfg(true));
  ExperimentRunner warm(make_cfg(true));
  const auto expected = none.nmm_sweep(Technology::PCM, three_configs());
  expect_suites_identical(expected,
                          cold.nmm_sweep(Technology::PCM, three_configs()));
  expect_suites_identical(expected,
                          warm.nmm_sweep(Technology::PCM, three_configs()));
}

TEST(ReplayModes, WarmupFailureDegradesIdenticallyAtAnyThreadCount) {
  // capture_front decisions use canonical per-workload slots: max_fires=1
  // always fails slot 1 (StreamTriad, warm rank 0) no matter how many
  // warm-up workers race, in every replay mode.
  auto failed_sweep = [](ReplayMode mode, unsigned threads) {
    ScopedFaultInjector injector;
    FaultSpec spec;
    spec.max_fires = 1;
    injector->arm("sim/capture_front", spec);
    auto cfg = tiny_config(mode);
    cfg.threads = threads;
    cfg.warmup_threads = threads;
    ExperimentRunner runner(cfg);
    return runner.nmm_sweep(Technology::PCM, three_configs());
  };

  const auto reference = failed_sweep(ReplayMode::ChunkMajor, 1);
  for (const ReplayMode mode : {ReplayMode::ChunkMajor, ReplayMode::ConfigMajor,
                                ReplayMode::Sharded}) {
    for (const unsigned threads : {1u, 4u}) {
      SCOPED_TRACE("mode=" + std::to_string(static_cast<int>(mode)) +
                   " threads=" + std::to_string(threads));
      const auto results = failed_sweep(mode, threads);
      ASSERT_EQ(results.size(), 3u);
      for (const auto& suite : results) {
        EXPECT_TRUE(suite.partial);
        ASSERT_EQ(suite.failures.size(), 1u);
        EXPECT_EQ(suite.failures[0].workload, "StreamTriad");
        EXPECT_NE(suite.failures[0].error.find("warm-up"), std::string::npos)
            << suite.failures[0].error;
      }
      expect_suites_identical(reference, results);
    }
  }
}

TEST(ReplayModes, WarmupThreadsEnvParsesStrictly) {
  {
    ScopedEnv env("HMS_WARMUP_THREADS", nullptr);
    EXPECT_EQ(default_warmup_threads(), 0u);
  }
  {
    ScopedEnv env("HMS_WARMUP_THREADS", "");
    EXPECT_EQ(default_warmup_threads(), 0u);
  }
  {
    ScopedEnv env("HMS_WARMUP_THREADS", "3");
    EXPECT_EQ(default_warmup_threads(), 3u);
  }
  {
    // An explicit 0 is rejected (unset the variable to follow threads).
    ScopedEnv env("HMS_WARMUP_THREADS", "0");
    EXPECT_THROW((void)default_warmup_threads(), ConfigError);
  }
  {
    ScopedEnv env("HMS_WARMUP_THREADS", "banana");
    EXPECT_THROW((void)default_warmup_threads(), ConfigError);
  }
}

TEST(ReplayModes, CheckpointsResumeAcrossModes) {
  // The replay mode is deliberately excluded from experiment_hash: a
  // checkpoint written chunk-major must satisfy a config-major rerun, and
  // a sharded rerun must both resume it and extend it for other modes.
  TempFile file("cross_mode");
  auto chunk_cfg = tiny_config(ReplayMode::ChunkMajor);
  chunk_cfg.checkpoint_path = file.path();
  ExperimentRunner first(chunk_cfg);
  const auto partial =
      first.nmm_sweep(Technology::PCM, {designs::n_config("N1")});
  ASSERT_EQ(partial.size(), 1u);
  EXPECT_EQ(first.last_checkpoint_skips(), 0u);

  auto shard_cfg = tiny_config(ReplayMode::Sharded);
  shard_cfg.checkpoint_path = file.path();
  ExperimentRunner second(shard_cfg);
  const auto resumed = second.nmm_sweep(Technology::PCM, three_configs());
  EXPECT_EQ(second.last_checkpoint_skips(), 1u);
  ASSERT_EQ(resumed.size(), 3u);
  EXPECT_DOUBLE_EQ(resumed[0].runtime, partial[0].runtime);
  EXPECT_DOUBLE_EQ(resumed[0].edp, partial[0].edp);

  // The sharded run checkpointed the two new configs: a config-major rerun
  // of the full grid restores all three without re-simulating.
  auto config_cfg = tiny_config(ReplayMode::ConfigMajor);
  config_cfg.checkpoint_path = file.path();
  ExperimentRunner third(config_cfg);
  const auto restored = third.nmm_sweep(Technology::PCM, three_configs());
  EXPECT_EQ(third.last_checkpoint_skips(), 3u);
  ASSERT_EQ(restored.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(restored[i].runtime, resumed[i].runtime);
    EXPECT_DOUBLE_EQ(restored[i].edp, resumed[i].edp);
  }
}

}  // namespace
}  // namespace hms::sim
