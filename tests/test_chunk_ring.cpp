// ChunkBatchRing: shared-ownership decode handles — decode-once under
// concurrent consumers, bounded-window retention vs consumer-held views,
// and decode-fault propagation without poisoning later retries.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "hms/common/error.hpp"
#include "hms/common/fault.hpp"
#include "hms/common/random.hpp"
#include "hms/trace/chunk_ring.hpp"
#include "hms/trace/chunked_trace.hpp"

namespace hms::trace {
namespace {

/// A residual-shaped stream (mostly next-line 64 B fetches) recorded into
/// deliberately tiny chunks so a few thousand accesses span many of them.
ChunkedTraceBuffer tiny_chunked_trace(std::size_t n, std::uint64_t seed,
                                      std::size_t target_chunk_bytes = 256) {
  Xoshiro256 rng(seed);
  ChunkedTraceBuffer buffer(target_chunk_bytes);
  Address addr = 0;
  for (std::size_t i = 0; i < n; ++i) {
    addr = rng.chance(0.85) ? addr + 64 : rng.below(1ull << 30) & ~63ull;
    buffer.access({addr, 64,
                   rng.chance(0.3) ? AccessType::Store : AccessType::Load, 0});
  }
  return buffer;
}

TEST(ChunkRing, RejectsZeroCapacity) {
  const ChunkedTraceBuffer trace = tiny_chunked_trace(64, 1);
  EXPECT_THROW(ChunkBatchRing(trace, 0), Error);
}

TEST(ChunkRing, BatchesMatchDecodeChunk) {
  const ChunkedTraceBuffer trace = tiny_chunked_trace(4096, 7);
  ASSERT_GT(trace.chunk_count(), 4u);
  ChunkBatchRing ring(trace, 4);
  EXPECT_EQ(ring.chunk_count(), trace.chunk_count());

  std::vector<MemoryAccess> expected;
  for (std::size_t c = 0; c < trace.chunk_count(); ++c) {
    const DecodedBatchView batch = ring.get(c);
    trace.decode_chunk(c, expected);
    ASSERT_EQ(batch->size(), expected.size()) << "chunk " << c;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ((*batch)[i], expected[i]) << "chunk " << c << " record " << i;
    }
  }
  // A single in-order consumer never re-decodes.
  EXPECT_EQ(ring.decodes(), trace.chunk_count());
}

TEST(ChunkRing, RepeatedGetWithinWindowSharesOneDecode) {
  const ChunkedTraceBuffer trace = tiny_chunked_trace(1024, 11);
  ChunkBatchRing ring(trace, 4);
  const DecodedBatchView first = ring.get(0);
  const DecodedBatchView second = ring.get(0);
  EXPECT_EQ(first.get(), second.get());  // literally the same batch
  EXPECT_EQ(ring.decodes(), 1u);
}

TEST(ChunkRing, HeldViewSurvivesWindowEviction) {
  const ChunkedTraceBuffer trace = tiny_chunked_trace(4096, 13);
  ASSERT_GT(trace.chunk_count(), 3u);
  // Capacity 1: every later get() evicts chunk 0 from the ring's own
  // window, but the consumer-held view must keep it decoded and shared.
  ChunkBatchRing ring(trace, 1);
  const DecodedBatchView held = ring.get(0);
  for (std::size_t c = 1; c < trace.chunk_count(); ++c) (void)ring.get(c);
  const DecodedBatchView again = ring.get(0);
  EXPECT_EQ(held.get(), again.get());
  EXPECT_EQ(ring.decodes(), trace.chunk_count());
}

TEST(ChunkRing, LapsedConsumerRedecodesOnlyAfterAllViewsDropped) {
  const ChunkedTraceBuffer trace = tiny_chunked_trace(2048, 17);
  ASSERT_GT(trace.chunk_count(), 2u);
  ChunkBatchRing ring(trace, 1);
  (void)ring.get(0);  // view dropped immediately
  (void)ring.get(1);  // evicts chunk 0 from the window
  (void)ring.get(0);  // nothing kept it alive: second decode, time-only cost
  EXPECT_EQ(ring.decodes(), 3u);
}

TEST(ChunkRing, ConcurrentConsumersOfSameChunksDecodeOnce) {
  const ChunkedTraceBuffer trace = tiny_chunked_trace(8192, 19);
  const std::size_t chunks = trace.chunk_count();
  ASSERT_GT(chunks, 8u);
  // Window spans the whole stream so any re-decode can only come from a
  // race in get(), which is exactly what this test hunts.
  ChunkBatchRing ring(trace, chunks);

  constexpr unsigned kThreads = 8;
  std::atomic<unsigned> ready{0};
  std::atomic<bool> failed{false};
  std::vector<std::size_t> sums(kThreads, 0);

  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      try {
        // Every thread walks every chunk; odd threads walk twice to mix
        // first-requester and waiter/reuse paths.
        const unsigned laps = 1 + (t % 2);
        for (unsigned lap = 0; lap < laps; ++lap) {
          for (std::size_t c = 0; c < chunks; ++c) {
            const DecodedBatchView batch = ring.get(c);
            sums[t] += batch->size();
          }
        }
      } catch (...) {
        failed.store(true);
      }
    });
  }
  for (auto& t : pool) t.join();

  EXPECT_FALSE(failed.load());
  EXPECT_EQ(ring.decodes(), chunks);
  for (unsigned t = 0; t < kThreads; ++t) {
    EXPECT_EQ(sums[t], (1 + (t % 2)) * trace.size()) << "thread " << t;
  }
}

TEST(ChunkRing, DecodeFaultPropagatesAndIsNotCached) {
  const ChunkedTraceBuffer trace = tiny_chunked_trace(1024, 23);
  ChunkBatchRing ring(trace, 2);

  ScopedFaultInjector injector;
  FaultSpec spec;
  spec.max_fires = 1;
  injector->arm("trace/decode_chunk", spec);

  EXPECT_THROW((void)ring.get(0), FaultInjectedError);
  // The poisoned entry was dropped: the retry re-attempts the decode and
  // succeeds now that the fault budget is spent.
  const DecodedBatchView batch = ring.get(0);
  std::vector<MemoryAccess> expected;
  trace.decode_chunk(0, expected);
  EXPECT_EQ(batch->size(), expected.size());
  // Both the failed claim and the successful retry count as decodes.
  EXPECT_EQ(ring.decodes(), 2u);
}

TEST(ChunkRing, DecodeFaultReachesConcurrentWaiters) {
  const ChunkedTraceBuffer trace = tiny_chunked_trace(1024, 29);
  ChunkBatchRing ring(trace, 2);

  ScopedFaultInjector injector;
  FaultSpec spec;
  spec.max_fires = 1;
  injector->arm("trace/decode_chunk", spec);

  // All threads race for the same chunk: exactly one claims the decode and
  // fires the fault; every waiter must see the same exception (and none may
  // hang). Later serial retries succeed.
  constexpr unsigned kThreads = 4;
  std::atomic<unsigned> ready{0};
  std::atomic<unsigned> threw{0};
  std::atomic<unsigned> succeeded{0};
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      try {
        (void)ring.get(0);
        succeeded.fetch_add(1);
      } catch (const FaultInjectedError&) {
        threw.fetch_add(1);
      }
    });
  }
  for (auto& t : pool) t.join();

  // At least the claiming thread throws; threads that arrived after the
  // poisoned entry was dropped may have re-decoded successfully.
  EXPECT_GE(threw.load(), 1u);
  EXPECT_EQ(threw.load() + succeeded.load(), kThreads);
  const DecodedBatchView batch = ring.get(0);
  EXPECT_FALSE(batch->empty());
}

}  // namespace
}  // namespace hms::trace
