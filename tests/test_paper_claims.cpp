// Integration tests of the paper's qualitative claims at tiny scale.
// These guard the *shapes* the benchmark harness reproduces: if a change
// breaks an ordering or a mechanism the paper reports, it fails here
// rather than silently corrupting EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "hms/designs/configs.hpp"
#include "hms/sim/experiment.hpp"

namespace hms::sim {
namespace {

using mem::Technology;

/// Small but representative: three workloads (one streaming, one sparse,
/// one irregular) at 1/512 scale.
ExperimentConfig claims_config() {
  ExperimentConfig cfg;
  cfg.scale_divisor = 512;
  cfg.footprint_divisor = 512;
  cfg.seed = 42;
  cfg.iterations = 1;
  cfg.suite = {"BT", "CG", "Hashing"};
  return cfg;
}

TEST(PaperClaims, NmmCapacityGrowthImprovesRuntime) {
  // Fig. 1: N1 -> N2 -> N3 (growing DRAM cache, same page) improves
  // runtime monotonically.
  ExperimentRunner runner(claims_config());
  const auto results = runner.nmm_sweep(
      Technology::PCM, {designs::n_config("N1"), designs::n_config("N2"),
                        designs::n_config("N3")});
  EXPECT_GE(results[0].runtime, results[1].runtime - 1e-9);
  EXPECT_GE(results[1].runtime, results[2].runtime - 1e-9);
}

TEST(PaperClaims, NmmPageShrinkCutsDynamicEnergy) {
  // Fig. 2 mechanism: "less bits will be accessed" — N3 (4 KiB) vs N6
  // (512 B) vs N9 (64 B) at fixed capacity.
  ExperimentRunner runner(claims_config());
  const auto results = runner.nmm_sweep(
      Technology::PCM, {designs::n_config("N3"), designs::n_config("N6"),
                        designs::n_config("N9")});
  EXPECT_GT(results[0].dynamic, results[1].dynamic);
  EXPECT_GT(results[1].dynamic, results[2].dynamic);
}

TEST(PaperClaims, NmmShrinksStaticEnergy) {
  // The NMM design's purpose: replacing footprint-sized DRAM with a
  // 512 MB cache plus NVM cuts static energy below base.
  ExperimentRunner runner(claims_config());
  const auto results =
      runner.nmm_sweep(Technology::PCM, {designs::n_config("N6")});
  EXPECT_LT(results[0].leakage, 1.0);
}

TEST(PaperClaims, FourLcEnergyGrowsWithPageSize) {
  // Fig. 4: EH1 -> EH6 dynamic energy rises monotonically.
  ExperimentRunner runner(claims_config());
  const auto results = runner.four_lc_sweep(
      Technology::eDRAM,
      {designs::eh_config("EH1"), designs::eh_config("EH3"),
       designs::eh_config("EH6")});
  EXPECT_LT(results[0].dynamic, results[1].dynamic);
  EXPECT_LT(results[1].dynamic, results[2].dynamic);
}

TEST(PaperClaims, HmcL4IsFasterThanEdramL4) {
  // Table 1: HMC's 0.18 ns vs eDRAM's 4.4 ns must show up as runtime.
  ExperimentRunner runner(claims_config());
  const auto edram = runner.four_lc_sweep(Technology::eDRAM,
                                          {designs::eh_config("EH4")});
  const auto hmc =
      runner.four_lc_sweep(Technology::HMC, {designs::eh_config("EH4")});
  EXPECT_LT(hmc[0].runtime, edram[0].runtime);
}

TEST(PaperClaims, FourLcNvmRemovesDramStatic) {
  // Figs. 5-6: replacing DRAM entirely drops static energy below both
  // base and NMM.
  ExperimentRunner runner(claims_config());
  const auto nmm =
      runner.nmm_sweep(Technology::PCM, {designs::n_config("N6")});
  const auto lcnvm = runner.four_lc_nvm_sweep(
      Technology::eDRAM, Technology::PCM, {designs::eh_config("EH1")});
  EXPECT_LT(lcnvm[0].leakage, nmm[0].leakage);
  EXPECT_LT(lcnvm[0].leakage, 1.0);
}

TEST(PaperClaims, SttramIsKinderToWritesThanPcm) {
  // Table 1 asymmetry: PCM's 100 ns writes vs STT-RAM's 35 ns should make
  // STT-RAM's NMM runtime no worse for a write-heavy workload mix.
  auto cfg = claims_config();
  cfg.suite = {"BT"};  // write-back heavy (five-component sweeps)
  ExperimentRunner runner(cfg);
  const auto pcm =
      runner.nmm_sweep(Technology::PCM, {designs::n_config("N9")});
  const auto stt =
      runner.nmm_sweep(Technology::STTRAM, {designs::n_config("N9")});
  // N9's 64 B pages make write-backs frequent; PCM pays 100 ns each.
  EXPECT_LE(stt[0].runtime, pcm[0].runtime + 1e-9);
}

TEST(PaperClaims, NdmOracleRespectsDramCapacity) {
  // Section III.A: the NDM DRAM partition is fixed at 512 MB; the oracle
  // must leave no more than that (scaled) in DRAM when feasible.
  ExperimentRunner runner(claims_config());
  const auto results = runner.ndm_oracle(Technology::PCM);
  const auto dram_capacity =
      runner.factory().scaled(designs::kNdmDramCapacity, 4096);
  for (const auto& ndm : results) {
    bool any_feasible = false;
    for (const auto& [placement, normalized] : ndm.all_placements) {
      any_feasible |= placement.feasible && !placement.nvm_rules.empty();
    }
    if (any_feasible) {
      EXPECT_LE(ndm.chosen.dram_bytes, dram_capacity) << ndm.workload;
    }
  }
}

TEST(PaperClaims, SectorDirtyNeverWorseOnEnergy) {
  // Ablation A2's direction: sector write-backs can only reduce NVM write
  // bytes, so total energy never increases.
  auto cfg = claims_config();
  ExperimentRunner whole(cfg);
  auto sector_cfg = cfg;
  sector_cfg.design_options.sector_bytes = 64;
  ExperimentRunner sector(sector_cfg);
  const auto w =
      whole.nmm_sweep(Technology::PCM, {designs::n_config("N4")});
  const auto s =
      sector.nmm_sweep(Technology::PCM, {designs::n_config("N4")});
  EXPECT_LE(s[0].total_energy, w[0].total_energy + 1e-9);
  // Latency counts are untouched: identical runtimes.
  EXPECT_NEAR(s[0].runtime, w[0].runtime, 1e-9);
}

}  // namespace
}  // namespace hms::sim
