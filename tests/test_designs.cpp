// DesignFactory: hierarchy construction for all five designs.
#include <gtest/gtest.h>

#include "hms/common/error.hpp"
#include "hms/designs/design.hpp"
#include "hms/trace/trace_buffer.hpp"

namespace hms::designs {
namespace {

using cache::MemoryHierarchy;
using cache::SingleMemoryBackend;
using mem::Technology;

constexpr std::uint64_t kFootprint = 8ull << 20;

TEST(Factory, ScaleMustBePow2) {
  EXPECT_NO_THROW(DesignFactory{64});
  EXPECT_THROW(DesignFactory{48}, hms::ConfigError);
}

TEST(Factory, FrontLevelsMatchScaledReference) {
  DesignFactory f(64);
  const auto levels = f.front_levels();
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_EQ(levels[0].cache.name, "L1");
  EXPECT_EQ(levels[0].cache.capacity_bytes, (32ull << 10) / 64);
  EXPECT_EQ(levels[1].cache.capacity_bytes, (256ull << 10) / 64);
  EXPECT_EQ(levels[2].cache.capacity_bytes, (20ull << 20) / 64);
  for (const auto& l : levels) {
    EXPECT_EQ(l.cache.line_bytes, 64u);
    EXPECT_EQ(l.tech.technology, Technology::SRAM);
  }
  EXPECT_EQ(levels[2].cache.associativity, 20u);
}

TEST(Factory, UnscaledFrontIsFullSize) {
  DesignFactory f(1);
  const auto levels = f.front_levels();
  EXPECT_EQ(levels[2].cache.capacity_bytes, 20ull << 20);
}

TEST(Factory, ScaledFloorsAtUsableGeometry) {
  DesignFactory f(1ull << 20);  // absurd scale
  const auto levels = f.front_levels();
  // Floor: one set of `ways` lines.
  EXPECT_EQ(levels[0].cache.capacity_bytes, 64ull * 8);
  // Must still construct valid hierarchies.
  EXPECT_NO_THROW((void)f.base(kFootprint));
}

TEST(Factory, BaseDesign) {
  DesignFactory f(64);
  auto h = f.base(kFootprint);
  EXPECT_EQ(h->cache_levels(), 3u);
  const auto& backend =
      static_cast<const SingleMemoryBackend&>(h->backend());
  EXPECT_EQ(backend.device().technology().technology, Technology::DRAM);
  // DRAM sized to the footprint ("large enough").
  EXPECT_GE(backend.device().config().capacity_bytes, kFootprint);
}

TEST(Factory, FourLevelCacheAddsL4) {
  DesignFactory f(64);
  auto h = f.four_level_cache(eh_config("EH1"), Technology::eDRAM,
                              kFootprint);
  ASSERT_EQ(h->cache_levels(), 4u);
  EXPECT_EQ(h->level(3).config().line_bytes, 64u);
  EXPECT_EQ(h->level(3).config().capacity_bytes, (16ull << 20) / 64);
  // HMC variant names the level accordingly.
  auto h2 =
      f.four_level_cache(eh_config("EH6"), Technology::HMC, kFootprint);
  EXPECT_EQ(h2->level(3).config().name, "L4-HMC");
  EXPECT_EQ(h2->level(3).config().line_bytes, 2048u);
}

TEST(Factory, NmmUsesDramCacheOverNvm) {
  DesignFactory f(64);
  auto h = f.nvm_main_memory(n_config("N6"), Technology::PCM, kFootprint);
  ASSERT_EQ(h->cache_levels(), 4u);
  EXPECT_EQ(h->level(3).config().name, "DRAM$");
  EXPECT_EQ(h->level(3).config().capacity_bytes, (512ull << 20) / 64);
  EXPECT_EQ(h->level(3).config().line_bytes, 512u);
  const auto& backend =
      static_cast<const SingleMemoryBackend&>(h->backend());
  EXPECT_EQ(backend.device().technology().technology, Technology::PCM);
}

TEST(Factory, FourLcNvmHasNoDram) {
  DesignFactory f(64);
  auto h = f.four_level_cache_nvm(eh_config("EH1"), Technology::eDRAM,
                                  Technology::STTRAM, kFootprint);
  ASSERT_EQ(h->cache_levels(), 4u);
  const auto& backend =
      static_cast<const SingleMemoryBackend&>(h->backend());
  EXPECT_EQ(backend.device().technology().technology, Technology::STTRAM);
}

TEST(Factory, NdmRoutesRulesToNvm) {
  DesignFactory f(64);
  std::vector<cache::AddressRangeRule> rules = {{0x10000, 0x10000, 999}};
  auto h = f.nvm_plus_dram(Technology::FeRAM, rules, kFootprint);
  EXPECT_EQ(h->cache_levels(), 3u);  // no extra cache level
  const auto profiles = h->backend().profiles();
  ASSERT_EQ(profiles.size(), 2u);
  EXPECT_EQ(profiles[0].tech.technology, Technology::DRAM);
  EXPECT_EQ(profiles[1].tech.technology, Technology::FeRAM);
  // Rule device index is forced to the NVM device regardless of input.
  h->access(trace::load(0x10000, 8));
  const auto after = h->backend().profiles();
  EXPECT_EQ(after[1].loads, 1u);
}

TEST(Factory, BackHierarchiesHaveNoFront) {
  DesignFactory f(64);
  EXPECT_EQ(f.base_back(kFootprint)->cache_levels(), 0u);
  EXPECT_EQ(f.four_level_cache_back(eh_config("EH1"), Technology::eDRAM,
                                    kFootprint)
                ->cache_levels(),
            1u);
  EXPECT_EQ(f.nvm_main_memory_back(n_config("N1"), Technology::PCM,
                                   kFootprint)
                ->cache_levels(),
            1u);
  EXPECT_EQ(f.nvm_plus_dram_back(Technology::PCM, {}, kFootprint)
                ->cache_levels(),
            0u);
}

TEST(Factory, FrontFeedsCaptureSink) {
  DesignFactory f(64);
  trace::TraceBuffer residual;
  auto front = f.front(residual);
  EXPECT_EQ(front->cache_levels(), 3u);
  front->access(trace::load(0x1000, 8));
  // Cold miss must reach the capture backend.
  EXPECT_EQ(residual.size(), 1u);
  EXPECT_EQ(residual.entries()[0].size, 64u);
}

TEST(Factory, DesignOptionsPropagate) {
  DesignOptions opts;
  opts.l4_policy = cache::PolicyKind::FIFO;
  opts.sector_bytes = 64;
  opts.nvm_wear_leveling = true;
  DesignFactory f(64, mem::TechnologyRegistry::table1(), opts);
  auto h = f.nvm_main_memory(n_config("N6"), Technology::PCM, kFootprint);
  EXPECT_EQ(h->level(3).config().policy, cache::PolicyKind::FIFO);
  EXPECT_EQ(h->level(3).config().sector_bytes, 64u);
  const auto& backend =
      static_cast<const SingleMemoryBackend&>(h->backend());
  EXPECT_TRUE(backend.device().config().wear_leveling);
  EXPECT_NE(backend.device().wear_leveler(), nullptr);
}

TEST(Factory, AllTable2And3ConfigsConstruct) {
  DesignFactory f(64);
  for (const auto& eh : eh_configs()) {
    for (Technology l4 : {Technology::eDRAM, Technology::HMC}) {
      EXPECT_NO_THROW((void)f.four_level_cache(eh, l4, kFootprint))
          << eh.name;
      for (Technology nvm :
           {Technology::PCM, Technology::STTRAM, Technology::FeRAM}) {
        EXPECT_NO_THROW(
            (void)f.four_level_cache_nvm(eh, l4, nvm, kFootprint))
            << eh.name;
      }
    }
  }
  for (const auto& n : n_configs()) {
    for (Technology nvm :
         {Technology::PCM, Technology::STTRAM, Technology::FeRAM}) {
      EXPECT_NO_THROW((void)f.nvm_main_memory(n, nvm, kFootprint))
          << n.name;
    }
  }
}

TEST(Factory, UnscaledConfigsConstructToo) {
  DesignFactory f(1);
  for (const auto& n : n_configs()) {
    EXPECT_NO_THROW(
        (void)f.nvm_main_memory(n, Technology::PCM, 4ull << 30))
        << n.name;
  }
  for (const auto& eh : eh_configs()) {
    EXPECT_NO_THROW(
        (void)f.four_level_cache(eh, Technology::eDRAM, 4ull << 30))
        << eh.name;
  }
}

}  // namespace
}  // namespace hms::designs
