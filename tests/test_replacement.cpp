// Replacement policies (hms/cache/replacement.hpp).
#include <gtest/gtest.h>

#include <set>

#include "hms/common/error.hpp"
#include "hms/cache/replacement.hpp"

namespace hms::cache {
namespace {

TEST(PolicyNames, RoundTrip) {
  for (PolicyKind k : {PolicyKind::LRU, PolicyKind::TreePLRU,
                       PolicyKind::FIFO, PolicyKind::Random,
                       PolicyKind::SRRIP}) {
    EXPECT_EQ(policy_from_string(to_string(k)), k);
  }
  EXPECT_EQ(policy_from_string("plru"), PolicyKind::TreePLRU);
  EXPECT_THROW((void)policy_from_string("magic"), hms::Error);
}

TEST(Lru, EvictsLeastRecentlyUsed) {
  auto p = make_policy(PolicyKind::LRU, 1, 4);
  for (std::uint32_t w = 0; w < 4; ++w) p->on_insert(0, w);
  p->on_access(0, 0);  // 0 is now most recent; 1 is oldest
  EXPECT_EQ(p->choose_victim(0), 1u);
  p->on_access(0, 1);
  EXPECT_EQ(p->choose_victim(0), 2u);
}

TEST(Lru, SetsAreIndependent) {
  auto p = make_policy(PolicyKind::LRU, 2, 2);
  p->on_insert(0, 0);
  p->on_insert(1, 0);
  p->on_insert(0, 1);
  p->on_insert(1, 1);
  p->on_access(0, 0);
  // Set 0: way 1 oldest. Set 1: way 0 oldest.
  EXPECT_EQ(p->choose_victim(0), 1u);
  EXPECT_EQ(p->choose_victim(1), 0u);
}

TEST(Fifo, IgnoresHits) {
  auto p = make_policy(PolicyKind::FIFO, 1, 3);
  p->on_insert(0, 0);
  p->on_insert(0, 1);
  p->on_insert(0, 2);
  p->on_access(0, 0);  // hit must NOT refresh
  EXPECT_EQ(p->choose_victim(0), 0u);
}

TEST(Random, VictimsAreValidAndVaried) {
  auto p = make_policy(PolicyKind::Random, 1, 8, /*seed=*/99);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 200; ++i) {
    const auto v = p->choose_victim(0);
    ASSERT_LT(v, 8u);
    seen.insert(v);
  }
  EXPECT_GT(seen.size(), 4u);  // not stuck on one way
}

TEST(Random, DeterministicWithSeed) {
  auto a = make_policy(PolicyKind::Random, 1, 8, 7);
  auto b = make_policy(PolicyKind::Random, 1, 8, 7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a->choose_victim(0), b->choose_victim(0));
  }
}

TEST(TreePlru, RequiresPow2Ways) {
  EXPECT_THROW((void)make_policy(PolicyKind::TreePLRU, 1, 3),
               hms::ConfigError);
  EXPECT_NO_THROW((void)make_policy(PolicyKind::TreePLRU, 1, 8));
}

TEST(TreePlru, VictimAvoidsRecentlyTouched) {
  auto p = make_policy(PolicyKind::TreePLRU, 1, 4);
  for (std::uint32_t w = 0; w < 4; ++w) p->on_insert(0, w);
  p->on_access(0, 2);
  const auto v = p->choose_victim(0);
  EXPECT_NE(v, 2u);  // just-touched way is never the PLRU victim
  ASSERT_LT(v, 4u);
}

TEST(TreePlru, NeverReturnsJustTouchedWay) {
  auto p = make_policy(PolicyKind::TreePLRU, 4, 8);
  for (std::uint32_t set = 0; set < 4; ++set) {
    for (std::uint32_t w = 0; w < 8; ++w) p->on_insert(set, w);
    for (std::uint32_t w = 0; w < 8; ++w) {
      p->on_access(set, w);
      EXPECT_NE(p->choose_victim(set), w) << "set " << set;
    }
  }
}

TEST(Srrip, HitPromotionProtectsLine) {
  auto p = make_policy(PolicyKind::SRRIP, 1, 4);
  for (std::uint32_t w = 0; w < 4; ++w) p->on_insert(0, w);
  p->on_access(0, 3);  // promote way 3 to RRPV 0
  const auto v = p->choose_victim(0);
  EXPECT_NE(v, 3u);
  ASSERT_LT(v, 4u);
}

TEST(Srrip, AgingEventuallyFindsVictim) {
  auto p = make_policy(PolicyKind::SRRIP, 1, 4);
  for (std::uint32_t w = 0; w < 4; ++w) {
    p->on_insert(0, w);
    p->on_access(0, w);  // all at RRPV 0
  }
  // choose_victim must terminate by aging everyone to max.
  const auto v = p->choose_victim(0);
  ASSERT_LT(v, 4u);
}

TEST(Factory, RejectsZeroGeometry) {
  EXPECT_THROW((void)make_policy(PolicyKind::LRU, 0, 4), hms::ConfigError);
  EXPECT_THROW((void)make_policy(PolicyKind::LRU, 4, 0), hms::ConfigError);
}

class AllPoliciesTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(AllPoliciesTest, VictimAlwaysInRange) {
  auto p = make_policy(GetParam(), 8, 4);
  for (std::uint32_t set = 0; set < 8; ++set) {
    for (std::uint32_t w = 0; w < 4; ++w) p->on_insert(set, w);
  }
  for (int i = 0; i < 100; ++i) {
    for (std::uint32_t set = 0; set < 8; ++set) {
      const auto v = p->choose_victim(set);
      ASSERT_LT(v, 4u);
      p->on_insert(set, v);  // simulate replacement
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, AllPoliciesTest,
                         ::testing::Values(PolicyKind::LRU,
                                           PolicyKind::TreePLRU,
                                           PolicyKind::FIFO,
                                           PolicyKind::Random,
                                           PolicyKind::SRRIP));

}  // namespace
}  // namespace hms::cache
