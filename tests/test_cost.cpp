// Cost model (hms/model/cost.hpp).
#include <gtest/gtest.h>

#include "hms/model/cost.hpp"

namespace hms::model {
namespace {

using cache::HierarchyProfile;
using cache::LevelProfile;
using mem::Technology;

LevelProfile level(Technology t, std::uint64_t capacity) {
  LevelProfile p;
  p.tech.technology = t;
  p.capacity_bytes = capacity;
  return p;
}

TEST(Cost, LevelCostScalesWithCapacity) {
  const CostParams params;
  const auto one = level_cost_usd(level(Technology::DRAM, 1ull << 30));
  const auto four = level_cost_usd(level(Technology::DRAM, 4ull << 30));
  EXPECT_DOUBLE_EQ(one, params.dram_usd_per_gib);
  EXPECT_DOUBLE_EQ(four, 4.0 * one);
}

TEST(Cost, DefaultRelativeEconomics) {
  const CostParams p;
  // PCM is the cheap-capacity option; SRAM is by far the priciest.
  EXPECT_LT(p.usd_per_gib(Technology::PCM),
            p.usd_per_gib(Technology::DRAM));
  EXPECT_GT(p.usd_per_gib(Technology::SRAM),
            p.usd_per_gib(Technology::eDRAM));
  EXPECT_GT(p.usd_per_gib(Technology::eDRAM),
            p.usd_per_gib(Technology::DRAM));
}

TEST(Cost, MemoryCostSumsLevels) {
  HierarchyProfile profile;
  profile.levels.push_back(level(Technology::SRAM, 20ull << 20));
  profile.levels.push_back(level(Technology::DRAM, 4ull << 30));
  const CostParams p;
  const double expected =
      (20.0 / 1024.0) * p.sram_usd_per_gib + 4.0 * p.dram_usd_per_gib;
  EXPECT_NEAR(memory_cost_usd(profile), expected, 1e-9);
}

TEST(Cost, NmmTradesDramForCheapPcm) {
  // 512 MB DRAM + 4 GiB PCM costs less than 4 GiB DRAM — the paper's
  // capacity-economics motivation.
  HierarchyProfile base;
  base.levels.push_back(level(Technology::DRAM, 4ull << 30));
  HierarchyProfile nmm;
  nmm.levels.push_back(level(Technology::DRAM, 512ull << 20));
  nmm.levels.push_back(level(Technology::PCM, 4ull << 30));
  EXPECT_LT(memory_cost_usd(nmm), memory_cost_usd(base));
}

TEST(Cost, CostReportCombinesRuntimeAndEdp) {
  HierarchyProfile profile;
  profile.levels.push_back(level(Technology::DRAM, 1ull << 30));
  DesignReport report;
  report.runtime = Time::from_seconds(2.0);
  report.dynamic = Energy::from_pj(100.0);
  report.leakage = Energy::from_pj(0.0);
  const auto cost = CostReport::make(profile, report);
  EXPECT_DOUBLE_EQ(cost.cost_usd, 8.0);
  EXPECT_DOUBLE_EQ(cost.cost_delay, 16.0);
  EXPECT_DOUBLE_EQ(cost.cost_edp, 8.0 * report.edp().value);
}

}  // namespace
}  // namespace hms::model
