// Cross-cutting property tests: invariants that must hold across random
// traces and configuration sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "hms/common/fault.hpp"
#include "hms/common/random.hpp"
#include "hms/cache/hierarchy.hpp"
#include "hms/designs/design.hpp"
#include "hms/model/amat.hpp"
#include "hms/model/energy.hpp"
#include "hms/sim/simulator.hpp"
#include "hms/workloads/registry.hpp"

namespace hms {
namespace {

using cache::CacheConfig;
using cache::CacheLevelSpec;
using cache::MemoryHierarchy;
using cache::SetAssocCache;
using cache::SingleMemoryBackend;
using mem::Technology;
using mem::TechnologyRegistry;

std::vector<trace::MemoryAccess> random_trace(std::uint64_t seed,
                                              std::size_t n,
                                              Address space,
                                              double store_fraction) {
  Xoshiro256 rng(seed);
  std::vector<trace::MemoryAccess> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(trace::MemoryAccess{
        rng.below(space) & ~7ull, 8,
        rng.chance(store_fraction) ? AccessType::Store : AccessType::Load,
        0});
  }
  return out;
}

/// LRU stack property: with full associativity, a cache of 2x capacity
/// never misses more than the smaller one on ANY trace.
class LruStackPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(LruStackPropertyTest, FullyAssociativeNesting) {
  const auto trace = random_trace(GetParam(), 30000, 1 << 16, 0.3);
  Count previous = ~Count{0};
  for (std::uint64_t capacity : {1024u, 2048u, 4096u, 8192u}) {
    CacheConfig cfg;
    cfg.capacity_bytes = capacity;
    cfg.line_bytes = 64;
    cfg.associativity = 0;  // fully associative
    SetAssocCache c(cfg);
    for (const auto& a : trace) c.access(a.address, a.size, a.type);
    EXPECT_LE(c.stats().misses(), previous) << "capacity " << capacity;
    previous = c.stats().misses();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LruStackPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

/// Sector dirty tracking never increases write-back bytes vs whole-page.
class SectorDirtyPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SectorDirtyPropertyTest, SectorWritebacksNeverExceedWholePage) {
  const auto trace = random_trace(GetParam(), 40000, 1 << 18, 0.4);
  auto run = [&](std::uint64_t sector) {
    CacheLevelSpec level;
    level.cache.capacity_bytes = 16384;
    level.cache.line_bytes = 1024;
    level.cache.associativity = 4;
    level.cache.sector_bytes = sector;
    level.tech = mem::sram_level(1).as_params();
    mem::MemoryDeviceConfig dev;
    dev.name = "mem";
    dev.technology = TechnologyRegistry::table1().get(Technology::DRAM);
    dev.capacity_bytes = 1 << 20;
    dev.line_bytes = 256;
    MemoryHierarchy h({level}, std::make_unique<SingleMemoryBackend>(dev));
    for (const auto& a : trace) h.access(a);
    h.flush();
    return h.profile().levels[1].store_bytes;
  };
  const auto whole = run(0);
  const auto sectored = run(64);
  EXPECT_LE(sectored, whole);
  EXPECT_GT(sectored, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SectorDirtyPropertyTest,
                         ::testing::Values(11, 12, 13));

/// Builds the 2-level + DRAM hierarchy used by the batching properties.
std::unique_ptr<MemoryHierarchy> batch_property_hierarchy() {
  std::vector<CacheLevelSpec> levels(2);
  levels[0].cache.name = "L1";
  levels[0].cache.capacity_bytes = 8192;
  levels[0].cache.line_bytes = 64;
  levels[0].cache.associativity = 8;
  levels[0].tech = mem::sram_level(1).as_params();
  levels[1].cache.name = "L2";
  levels[1].cache.capacity_bytes = 65536;
  levels[1].cache.line_bytes = 64;
  levels[1].cache.associativity = 16;
  levels[1].tech = mem::sram_level(2).as_params();
  mem::MemoryDeviceConfig dev;
  dev.name = "mem";
  dev.technology = TechnologyRegistry::table1().get(Technology::DRAM);
  dev.capacity_bytes = 1 << 22;
  dev.line_bytes = 256;
  return std::make_unique<MemoryHierarchy>(
      std::move(levels), std::make_unique<SingleMemoryBackend>(dev));
}

void expect_profiles_equal(const cache::HierarchyProfile& got,
                           const cache::HierarchyProfile& want) {
  EXPECT_EQ(got.references, want.references);
  ASSERT_EQ(got.levels.size(), want.levels.size());
  for (std::size_t i = 0; i < got.levels.size(); ++i) {
    EXPECT_EQ(got.levels[i].loads, want.levels[i].loads) << "level " << i;
    EXPECT_EQ(got.levels[i].stores, want.levels[i].stores) << "level " << i;
    EXPECT_EQ(got.levels[i].load_bytes, want.levels[i].load_bytes)
        << "level " << i;
    EXPECT_EQ(got.levels[i].store_bytes, want.levels[i].store_bytes)
        << "level " << i;
    EXPECT_TRUE(got.levels[i].cache_stats == want.levels[i].cache_stats)
        << "level " << i;
  }
}

/// Batching invariant (trace/sink.hpp): access_batch over ANY chunking of a
/// stream is observably identical to per-access access() calls in order.
class BatchChunkingPropertyTest
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BatchChunkingPropertyTest, AnyChunkingMatchesPerAccess) {
  const auto trace = random_trace(0xba7c4, 20000, 1 << 20, 0.3);
  auto reference = batch_property_hierarchy();
  for (const auto& a : trace) reference->access(a);

  const std::size_t chunk = GetParam();
  auto batched = batch_property_hierarchy();
  const std::span<const trace::MemoryAccess> all(trace);
  for (std::size_t i = 0; i < all.size(); i += chunk) {
    batched->access_batch(all.subspan(i, std::min(chunk, all.size() - i)));
  }
  expect_profiles_equal(batched->profile(), reference->profile());
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, BatchChunkingPropertyTest,
                         ::testing::Values(1, 7, 1024, 20000));

/// A fault armed at the batch entry point fires before the chunk is
/// processed, so the observable stats are exactly the prior chunks' — the
/// batched path has no partial-chunk side effects at its fault site.
TEST(BatchFaultProperty, FaultAtBatchSiteLeavesCleanPrefix) {
  const auto trace = random_trace(0xbadc0de, 9000, 1 << 20, 0.3);
  const std::size_t chunk = 3000;
  const std::span<const trace::MemoryAccess> all(trace);

  auto reference = batch_property_hierarchy();
  for (std::size_t i = 0; i < 2 * chunk; ++i) reference->access(trace[i]);

  ScopedFaultInjector injector;
  FaultSpec spec;
  spec.skip_first = 2;  // let two chunks through, fail the third
  injector->arm("cache/access_batch", spec);
  auto faulted = batch_property_hierarchy();
  std::size_t delivered = 0;
  try {
    for (std::size_t i = 0; i < all.size(); i += chunk) {
      faulted->access_batch(all.subspan(i, chunk));
      delivered += chunk;
    }
    FAIL() << "armed batch site did not fire";
  } catch (const FaultInjectedError&) {
  }
  EXPECT_EQ(delivered, 2 * chunk);
  EXPECT_EQ(injector->hits("cache/access_batch"), 3u);
  expect_profiles_equal(faulted->profile(), reference->profile());
}

/// The hit/miss/eviction ledger balances at every level for any stream:
/// fills - evictions == resident lines.
class LedgerPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LedgerPropertyTest, FillsMinusEvictionsEqualsOccupancy) {
  const auto trace = random_trace(GetParam(), 50000, 1 << 17, 0.25);
  CacheConfig cfg;
  cfg.capacity_bytes = 4096;
  cfg.line_bytes = 64;
  cfg.associativity = 8;
  SetAssocCache c(cfg);
  for (const auto& a : trace) c.access(a.address, a.size, a.type);
  const auto& s = c.stats();
  // Every miss allocates; evictions displace previously allocated lines.
  EXPECT_EQ(s.misses() - s.evictions, c.occupancy());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LedgerPropertyTest,
                         ::testing::Values(21, 22, 23, 24));

/// Front/back equivalence holds with prefetchers in the back design.
TEST(FrontBackProperty, HoldsWithPrefetchingBack) {
  designs::DesignOptions opts;
  opts.l4_prefetch = {cache::PrefetcherConfig::Kind::NextLine, 2};
  designs::DesignFactory factory(256, TechnologyRegistry::table1(), opts);
  workloads::WorkloadParams params{2ull << 20, 42, 1};

  auto w_full = workloads::make_workload("CG", params);
  auto full_h = factory.nvm_main_memory(designs::n_config("N6"),
                                        Technology::PCM,
                                        w_full->footprint_bytes());
  const auto full = sim::simulate(*w_full, *full_h);

  const auto capture = sim::capture_front("CG", params, factory);
  auto back = factory.nvm_main_memory_back(designs::n_config("N6"),
                                           Technology::PCM,
                                           capture.footprint_bytes);
  const auto combined = sim::replay_back(capture, *back);

  ASSERT_EQ(full.levels.size(), combined.levels.size());
  for (std::size_t i = 0; i < full.levels.size(); ++i) {
    EXPECT_EQ(full.levels[i].loads, combined.levels[i].loads) << i;
    EXPECT_EQ(full.levels[i].stores, combined.levels[i].stores) << i;
    EXPECT_EQ(full.levels[i].cache_stats.prefetch_fills,
              combined.levels[i].cache_stats.prefetch_fills)
        << i;
  }
}

/// AMAT is additive over profile levels: combining front and back profiles
/// gives total time = sum of parts.
TEST(AmatProperty, AdditiveOverCombine) {
  designs::DesignFactory factory(256);
  const auto capture = sim::capture_front(
      "StreamTriad", workloads::WorkloadParams{2ull << 20, 42, 1}, factory);
  auto back = factory.base_back(capture.footprint_bytes);
  const auto combined = sim::replay_back(capture, *back);

  const auto front_time = model::total_access_time(capture.front_profile);
  const auto back_time = model::total_access_time(back->profile());
  const auto combined_time = model::total_access_time(combined);
  EXPECT_NEAR(combined_time.nanoseconds(),
              (front_time + back_time).nanoseconds(),
              combined_time.nanoseconds() * 1e-12);
}

/// Larger NVM write latency can only increase AMAT (Eq. 2 monotonicity).
TEST(AmatProperty, MonotoneInLatency) {
  designs::DesignFactory factory(256);
  const auto capture = sim::capture_front(
      "Hashing", workloads::WorkloadParams{2ull << 20, 42, 1}, factory);
  auto back = factory.nvm_main_memory_back(designs::n_config("N6"),
                                           Technology::PCM,
                                           capture.footprint_bytes);
  auto profile = sim::replay_back(capture, *back);
  const auto before = model::amat(profile);
  for (auto& level : profile.levels) {
    if (!level.is_cache) {
      level.tech.write_latency = level.tech.write_latency * 3.0;
    }
  }
  EXPECT_GE(model::amat(profile).nanoseconds(), before.nanoseconds());
}

/// Dynamic energy is invariant to latency changes (Eq. 3 only sees bytes).
TEST(EnergyProperty, DynamicIndependentOfLatency) {
  designs::DesignFactory factory(256);
  const auto capture = sim::capture_front(
      "CG", workloads::WorkloadParams{2ull << 20, 42, 1}, factory);
  auto back = factory.base_back(capture.footprint_bytes);
  auto profile = sim::replay_back(capture, *back);
  const auto before = model::dynamic_energy(profile);
  for (auto& level : profile.levels) {
    level.tech.read_latency = level.tech.read_latency * 7.0;
    level.tech.write_latency = level.tech.write_latency * 7.0;
  }
  EXPECT_DOUBLE_EQ(model::dynamic_energy(profile).picojoules(),
                   before.picojoules());
}

}  // namespace
}  // namespace hms
