// Terminal memory device model (hms/mem/memory_device.hpp).
#include <gtest/gtest.h>

#include "hms/common/error.hpp"
#include "hms/mem/memory_device.hpp"

namespace hms::mem {
namespace {

MemoryDeviceConfig pcm_config(std::uint64_t capacity = 1ull << 20) {
  MemoryDeviceConfig cfg;
  cfg.name = "pcm";
  cfg.technology = TechnologyRegistry::table1().get(Technology::PCM);
  cfg.capacity_bytes = capacity;
  cfg.line_bytes = 256;
  return cfg;
}

TEST(MemoryDevice, CountsReadsAndWrites) {
  MemoryDevice dev(pcm_config());
  dev.read(0, 512);
  dev.read(4096, 64);
  dev.write(0, 512);
  EXPECT_EQ(dev.stats().reads, 2u);
  EXPECT_EQ(dev.stats().writes, 1u);
  EXPECT_EQ(dev.stats().read_bytes, 576u);
  EXPECT_EQ(dev.stats().write_bytes, 512u);
  EXPECT_EQ(dev.stats().total(), 3u);
}

TEST(MemoryDevice, ResetStats) {
  MemoryDevice dev(pcm_config());
  dev.write(0, 64);
  dev.reset_stats();
  EXPECT_EQ(dev.stats().total(), 0u);
  EXPECT_EQ(dev.stats().write_bytes, 0u);
}

TEST(MemoryDevice, NoTrackingByDefault) {
  MemoryDevice dev(pcm_config());
  EXPECT_EQ(dev.endurance(), nullptr);
  EXPECT_EQ(dev.wear_leveler(), nullptr);
}

TEST(MemoryDevice, EnduranceTracking) {
  auto cfg = pcm_config();
  cfg.track_endurance = true;
  MemoryDevice dev(cfg);
  ASSERT_NE(dev.endurance(), nullptr);
  dev.write(0, 256);
  dev.write(0, 256);
  dev.write(256, 256);
  EXPECT_EQ(dev.endurance()->total_writes(), 3u);
  EXPECT_EQ(dev.endurance()->max_line_writes(), 2u);
}

TEST(MemoryDevice, WearLevelingAddsMigrationWrites) {
  auto cfg = pcm_config(64 * 256);  // 64 lines
  cfg.wear_leveling = true;
  cfg.gap_write_interval = 4;
  MemoryDevice dev(cfg);
  ASSERT_NE(dev.wear_leveler(), nullptr);
  // Enough writes for the gap to cycle the 65-slot ring several times and
  // the start register to rotate the hot line across physical slots.
  constexpr std::uint64_t kWrites = 40000;
  for (std::uint64_t i = 0; i < kWrites; ++i) {
    dev.write(0, 256);  // hammer one logical line
  }
  EXPECT_GT(dev.stats().migration_writes, 0u);
  // Migration bytes are accounted in write_bytes.
  EXPECT_EQ(dev.stats().write_bytes,
            kWrites * 256u + dev.stats().migration_writes * 256u);
  // Without levelling imbalance would be ~65 (every write on one line);
  // Start-Gap must spread the wear.
  EXPECT_LT(dev.endurance()->imbalance(), 10.0);
}

TEST(MemoryDevice, AddressesWrapModuloCapacity) {
  auto cfg = pcm_config(16 * 256);
  cfg.track_endurance = true;
  MemoryDevice dev(cfg);
  dev.write(0, 256);
  dev.write(16 * 256, 256);  // wraps to line 0
  EXPECT_EQ(dev.endurance()->writes_to(0), 2u);
}

TEST(MemoryDevice, InvalidConfigThrows) {
  auto cfg = pcm_config(0);
  EXPECT_THROW(MemoryDevice{cfg}, hms::ConfigError);
  cfg = pcm_config();
  cfg.line_bytes = 100;  // not a power of two
  EXPECT_THROW(MemoryDevice{cfg}, hms::ConfigError);
  cfg = pcm_config(1000);  // not a line multiple
  cfg.line_bytes = 256;
  EXPECT_THROW(MemoryDevice{cfg}, hms::ConfigError);
}

}  // namespace
}  // namespace hms::mem
