// VirtualAddressSpace (hms/workloads/virtual_address_space.hpp).
#include <gtest/gtest.h>

#include "hms/common/error.hpp"
#include "hms/workloads/virtual_address_space.hpp"

namespace hms::workloads {
namespace {

TEST(Vas, AllocationsAreAlignedAndDisjoint) {
  VirtualAddressSpace vas(0x1000, 4096);
  const Address a = vas.allocate("a", 100);
  const Address b = vas.allocate("b", 5000);
  const Address c = vas.allocate("c", 1);
  EXPECT_EQ(a % 4096, 0u);
  EXPECT_EQ(b % 4096, 0u);
  EXPECT_EQ(c % 4096, 0u);
  EXPECT_GE(b, a + 100);
  EXPECT_GE(c, b + 5000);
  EXPECT_EQ(vas.ranges().size(), 3u);
}

TEST(Vas, TotalAllocatedSumsLengths) {
  VirtualAddressSpace vas;
  vas.allocate("x", 100);
  vas.allocate("y", 200);
  EXPECT_EQ(vas.total_allocated(), 300u);
}

TEST(Vas, RangeLookupByName) {
  VirtualAddressSpace vas;
  const Address base = vas.allocate("values", 4096);
  const auto& r = vas.range("values");
  EXPECT_EQ(r.base, base);
  EXPECT_EQ(r.length, 4096u);
  EXPECT_TRUE(vas.has_range("values"));
  EXPECT_FALSE(vas.has_range("missing"));
  EXPECT_THROW((void)vas.range("missing"), hms::Error);
}

TEST(Vas, FindByAddress) {
  VirtualAddressSpace vas;
  const Address a = vas.allocate("a", 4096);
  const Address b = vas.allocate("b", 4096);
  EXPECT_EQ(vas.find(a)->name, "a");
  EXPECT_EQ(vas.find(a + 4095)->name, "a");
  EXPECT_EQ(vas.find(b)->name, "b");
  EXPECT_EQ(vas.find(b + 8192), nullptr);
}

TEST(Vas, DuplicateNameThrows) {
  VirtualAddressSpace vas;
  vas.allocate("dup", 64);
  EXPECT_THROW((void)vas.allocate("dup", 64), hms::Error);
}

TEST(Vas, ZeroSizeThrows) {
  VirtualAddressSpace vas;
  EXPECT_THROW((void)vas.allocate("zero", 0), hms::Error);
}

TEST(Vas, InvalidConstruction) {
  EXPECT_THROW(VirtualAddressSpace(0x1000, 3), hms::ConfigError);
  EXPECT_THROW(VirtualAddressSpace(0x1001, 4096), hms::ConfigError);
}

TEST(AddressRange, ContainsAndEnd) {
  AddressRange r{"r", 0x1000, 0x100};
  EXPECT_EQ(r.end(), 0x1100u);
  EXPECT_TRUE(r.contains(0x1000));
  EXPECT_TRUE(r.contains(0x10ff));
  EXPECT_FALSE(r.contains(0x1100));
  EXPECT_FALSE(r.contains(0xfff));
}

}  // namespace
}  // namespace hms::workloads
