// Differential test: SetAssocCache against an independently written naive
// reference model, over randomized traces and geometries. Any divergence
// in hit/miss/writeback behaviour or final dirty state is a bug in one of
// the two implementations.
#include <gtest/gtest.h>

#include <list>
#include <map>
#include <vector>

#include "hms/common/random.hpp"
#include "hms/cache/set_assoc_cache.hpp"

namespace hms::cache {
namespace {

/// Naive LRU set-associative cache: per-set std::list in recency order.
/// Deliberately written in a different style from the production cache.
class NaiveCache {
 public:
  NaiveCache(std::uint64_t capacity, std::uint64_t line, std::uint32_t ways)
      : line_(line), ways_(ways), sets_(capacity / line / ways) {
    contents_.resize(sets_);
  }

  struct Result {
    bool hit = false;
    bool writeback = false;
    Address victim = 0;
  };

  Result access(Address addr, AccessType type) {
    const Address line_addr = addr - addr % line_;
    const std::size_t set =
        static_cast<std::size_t>((line_addr / line_) % sets_);
    auto& lru = contents_[set];  // front = most recent
    Result result;
    for (auto it = lru.begin(); it != lru.end(); ++it) {
      if (it->first == line_addr) {
        result.hit = true;
        if (type == AccessType::Store) it->second = true;
        lru.splice(lru.begin(), lru, it);  // promote
        return result;
      }
    }
    // Miss: insert, possibly evicting the back.
    if (lru.size() == ways_) {
      if (lru.back().second) {
        result.writeback = true;
        result.victim = lru.back().first;
      }
      lru.pop_back();
    }
    lru.emplace_front(line_addr, type == AccessType::Store);
    return result;
  }

  [[nodiscard]] bool dirty(Address addr) const {
    const Address line_addr = addr - addr % line_;
    const std::size_t set =
        static_cast<std::size_t>((line_addr / line_) % sets_);
    for (const auto& [tag, d] : contents_[set]) {
      if (tag == line_addr) return d;
    }
    return false;
  }

 private:
  std::uint64_t line_;
  std::uint32_t ways_;
  std::uint64_t sets_;
  /// per set: (line address, dirty) in recency order.
  std::vector<std::list<std::pair<Address, bool>>> contents_;
};

struct Geometry {
  std::uint64_t capacity;
  std::uint64_t line;
  std::uint32_t ways;
};

class DifferentialTest : public ::testing::TestWithParam<Geometry> {};

TEST_P(DifferentialTest, MatchesNaiveLruModel) {
  const auto [capacity, line, ways] = GetParam();
  CacheConfig cfg;
  cfg.capacity_bytes = capacity;
  cfg.line_bytes = line;
  cfg.associativity = ways;
  cfg.policy = PolicyKind::LRU;
  SetAssocCache cache(cfg);
  NaiveCache naive(capacity, line, ways);

  Xoshiro256 rng(0xd1ff + capacity + ways);
  for (int i = 0; i < 60000; ++i) {
    const Address addr = rng.below(capacity * 8) & ~7ull;
    const auto type =
        rng.chance(0.35) ? AccessType::Store : AccessType::Load;
    const auto got = cache.access(addr, 8, type);
    const auto want = naive.access(addr, type);
    ASSERT_EQ(got.hit, want.hit) << "access " << i << " @ " << addr;
    ASSERT_EQ(got.writeback, want.writeback) << "access " << i;
    if (want.writeback) {
      ASSERT_EQ(got.victim_address, want.victim) << "access " << i;
    }
    // Spot-check dirty state of the just-touched line.
    ASSERT_EQ(cache.is_dirty(addr), naive.dirty(addr)) << "access " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, DifferentialTest,
    ::testing::Values(Geometry{1024, 64, 1},     // direct mapped
                      Geometry{2048, 64, 4},
                      Geometry{4096, 64, 16},
                      Geometry{4096, 64, 0x40},  // fully associative (64)
                      Geometry{8192, 256, 8},    // page-ish lines
                      Geometry{16384, 1024, 16}),
    [](const ::testing::TestParamInfo<Geometry>& info) {
      return "c" + std::to_string(info.param.capacity) + "_l" +
             std::to_string(info.param.line) + "_w" +
             std::to_string(info.param.ways);
    });

}  // namespace
}  // namespace hms::cache
