// Differential test: SetAssocCache against an independently written naive
// reference model, over randomized traces and geometries. Any divergence
// in hit/miss/writeback behaviour or final dirty state is a bug in one of
// the two implementations.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hms/common/random.hpp"
#include "hms/cache/set_assoc_cache.hpp"

namespace hms::cache {
namespace {

/// Naive LRU set-associative cache: per-set std::list in recency order.
/// Deliberately written in a different style from the production cache.
class NaiveCache {
 public:
  NaiveCache(std::uint64_t capacity, std::uint64_t line, std::uint32_t ways)
      : line_(line), ways_(ways), sets_(capacity / line / ways) {
    contents_.resize(sets_);
  }

  struct Result {
    bool hit = false;
    bool writeback = false;
    Address victim = 0;
  };

  Result access(Address addr, AccessType type) {
    const Address line_addr = addr - addr % line_;
    const std::size_t set =
        static_cast<std::size_t>((line_addr / line_) % sets_);
    auto& lru = contents_[set];  // front = most recent
    Result result;
    for (auto it = lru.begin(); it != lru.end(); ++it) {
      if (it->first == line_addr) {
        result.hit = true;
        if (type == AccessType::Store) it->second = true;
        lru.splice(lru.begin(), lru, it);  // promote
        return result;
      }
    }
    // Miss: insert, possibly evicting the back.
    if (lru.size() == ways_) {
      if (lru.back().second) {
        result.writeback = true;
        result.victim = lru.back().first;
      }
      lru.pop_back();
    }
    lru.emplace_front(line_addr, type == AccessType::Store);
    return result;
  }

  [[nodiscard]] bool dirty(Address addr) const {
    const Address line_addr = addr - addr % line_;
    const std::size_t set =
        static_cast<std::size_t>((line_addr / line_) % sets_);
    for (const auto& [tag, d] : contents_[set]) {
      if (tag == line_addr) return d;
    }
    return false;
  }

 private:
  std::uint64_t line_;
  std::uint32_t ways_;
  std::uint64_t sets_;
  /// per set: (line address, dirty) in recency order.
  std::vector<std::list<std::pair<Address, bool>>> contents_;
};

struct Geometry {
  std::uint64_t capacity;
  std::uint64_t line;
  std::uint32_t ways;
};

class DifferentialTest : public ::testing::TestWithParam<Geometry> {};

TEST_P(DifferentialTest, MatchesNaiveLruModel) {
  const auto [capacity, line, ways] = GetParam();
  CacheConfig cfg;
  cfg.capacity_bytes = capacity;
  cfg.line_bytes = line;
  cfg.associativity = ways;
  cfg.policy = PolicyKind::LRU;
  SetAssocCache cache(cfg);
  NaiveCache naive(capacity, line, ways);

  Xoshiro256 rng(0xd1ff + capacity + ways);
  for (int i = 0; i < 60000; ++i) {
    const Address addr = rng.below(capacity * 8) & ~7ull;
    const auto type =
        rng.chance(0.35) ? AccessType::Store : AccessType::Load;
    const auto got = cache.access(addr, 8, type);
    const auto want = naive.access(addr, type);
    ASSERT_EQ(got.hit, want.hit) << "access " << i << " @ " << addr;
    ASSERT_EQ(got.writeback, want.writeback) << "access " << i;
    if (want.writeback) {
      ASSERT_EQ(got.victim_address, want.victim) << "access " << i;
    }
    // Spot-check dirty state of the just-touched line.
    ASSERT_EQ(cache.is_dirty(addr), naive.dirty(addr)) << "access " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, DifferentialTest,
    ::testing::Values(Geometry{1024, 64, 1},     // direct mapped
                      Geometry{2048, 64, 4},
                      Geometry{4096, 64, 16},
                      Geometry{4096, 64, 0x40},  // fully associative (64)
                      Geometry{8192, 256, 8},    // page-ish lines
                      Geometry{16384, 1024, 16}),
    [](const ::testing::TestParamInfo<Geometry>& info) {
      return "c" + std::to_string(info.param.capacity) + "_l" +
             std::to_string(info.param.line) + "_w" +
             std::to_string(info.param.ways);
    });

// ---------------------------------------------------------------------------
// Inline-engine vs virtual-reference differential.
//
// The access kernel runs the replacement policy inline from per-set metadata
// arrays (and on AVX-512 hosts through a vectorized kernel variant); the
// virtual ReplacementPolicy hierarchy is retained as the reference
// implementation. This suite drives both engines through identical traces
// for every PolicyKind x sector-mode x prefetch mix and requires the full
// AccessOutcome of every access and the final CacheStats to agree bit for
// bit.
// ---------------------------------------------------------------------------

/// Reference engine: AoS way records + virtual policy dispatch — the shape
/// the production kernel was refactored away from.
class ReferenceEngine {
 public:
  explicit ReferenceEngine(const CacheConfig& cfg)
      : line_(cfg.line_bytes), sector_(cfg.sector_bytes) {
    const std::uint64_t lines = cfg.capacity_bytes / cfg.line_bytes;
    ways_ = cfg.associativity == 0 ? static_cast<std::uint32_t>(lines)
                                   : cfg.associativity;
    sets_ = static_cast<std::uint32_t>(lines / ways_);
    policy_ = make_policy(cfg.policy, sets_, ways_, cfg.policy_seed);
    ways_store_.resize(std::size_t{sets_} * ways_);
  }

  AccessOutcome access(Address address, std::uint64_t size, AccessType type,
                       bool prefetch) {
    const Address line_addr = address - address % line_;
    const Address tag = line_addr / line_;
    const auto set = static_cast<std::uint32_t>(tag % sets_);
    Way* row = ways_store_.data() + std::size_t{set} * ways_;
    AccessOutcome outcome;
    for (std::uint32_t w = 0; w < ways_; ++w) {
      if (row[w].valid && row[w].tag == tag) {
        outcome.hit = true;
        if (prefetch) return outcome;
        if (row[w].prefetched) {
          row[w].prefetched = false;
          outcome.prefetched_hit = true;
          ++stats_.prefetch_useful;
        }
        if (type == AccessType::Store) {
          ++stats_.store_hits;
          row[w].dirty |= sector_mask(address, size);
        } else {
          ++stats_.load_hits;
        }
        policy_->on_access(set, w);
        return outcome;
      }
    }
    if (prefetch) {
      ++stats_.prefetch_fills;
    } else if (type == AccessType::Store) {
      ++stats_.store_misses;
    } else {
      ++stats_.load_misses;
    }
    std::uint32_t victim = ways_;
    for (std::uint32_t w = 0; w < ways_; ++w) {
      if (!row[w].valid) {
        victim = w;
        break;
      }
    }
    if (victim == ways_) {
      victim = policy_->choose_victim(set);
      outcome.evicted = true;
      ++stats_.evictions;
      outcome.victim_address = row[victim].tag * line_;
      if (row[victim].dirty != 0) {
        outcome.writeback = true;
        outcome.writeback_bytes = static_cast<std::uint32_t>(
            sector_ == 0 ? line_
                         : static_cast<std::uint64_t>(
                               std::popcount(row[victim].dirty)) *
                               sector_);
        ++stats_.writebacks;
      }
    }
    row[victim].valid = true;
    row[victim].tag = tag;
    row[victim].dirty = (!prefetch && type == AccessType::Store)
                            ? sector_mask(address, size)
                            : 0;
    row[victim].prefetched = prefetch;
    policy_->on_insert(set, victim);
    return outcome;
  }

  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }

 private:
  struct Way {
    Address tag = 0;
    std::uint64_t dirty = 0;
    bool valid = false;
    bool prefetched = false;
  };

  [[nodiscard]] std::uint64_t sector_mask(Address address,
                                          std::uint64_t size) const {
    if (sector_ == 0) return ~std::uint64_t{0};
    const std::uint64_t offset = address % line_;
    const std::uint64_t first = offset / sector_;
    const std::uint64_t last = (offset + size - 1) / sector_;
    const std::uint64_t width = last - first + 1;
    const std::uint64_t ones =
        width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
    return ones << first;
  }

  std::uint64_t line_;
  std::uint64_t sector_;
  std::uint32_t sets_ = 0;
  std::uint32_t ways_ = 0;
  std::vector<Way> ways_store_;
  std::unique_ptr<ReplacementPolicy> policy_;
  CacheStats stats_;
};

struct EngineCase {
  PolicyKind policy;
  std::uint64_t sector_bytes;  ///< 0 = whole-line dirty tracking
  bool with_prefetch;          ///< mix speculative fills into the trace
};

class EngineDifferentialTest : public ::testing::TestWithParam<EngineCase> {};

TEST_P(EngineDifferentialTest, InlineKernelMatchesVirtualReference) {
  const auto [policy, sector_bytes, with_prefetch] = GetParam();
  // 8- and 16-way geometries take the vectorized kernel on AVX-512 hosts;
  // 4-way and fully associative take the scalar paths.
  const Geometry geometries[] = {{8192, 64, 8},
                                 {16384, 64, 16},
                                 {2048, 64, 4},
                                 {2048, 64, 0}};
  for (const auto& g : geometries) {
    CacheConfig cfg;
    cfg.capacity_bytes = g.capacity;
    cfg.line_bytes = sector_bytes != 0 ? 512 : g.line;
    cfg.associativity = g.ways;
    cfg.policy = policy;
    cfg.sector_bytes = sector_bytes;
    cfg.policy_seed = 0xfeed + g.capacity;
    SetAssocCache cache(cfg);
    ReferenceEngine reference(cfg);

    Xoshiro256 rng(0xd1ff2 + g.capacity + g.ways);
    const Address space = cfg.capacity_bytes * 6;
    for (int i = 0; i < 40000; ++i) {
      Address addr = rng.below(space);
      std::uint64_t size = 1 + rng.below(8);
      bool prefetch = false;
      if (with_prefetch && rng.chance(0.15)) {
        // Speculative line fill, as a hierarchy prefetcher would issue it.
        addr -= addr % cfg.line_bytes;
        size = cfg.line_bytes;
        prefetch = true;
      } else if (addr % cfg.line_bytes + size > cfg.line_bytes) {
        addr -= addr % cfg.line_bytes;  // keep the access within one line
      }
      const auto type =
          rng.chance(0.4) ? AccessType::Store : AccessType::Load;
      const auto got = cache.access(addr, size, type, prefetch);
      const auto want = reference.access(addr, size, type, prefetch);
      ASSERT_EQ(got.hit, want.hit) << "access " << i << " @ " << addr;
      ASSERT_EQ(got.prefetched_hit, want.prefetched_hit) << "access " << i;
      ASSERT_EQ(got.evicted, want.evicted) << "access " << i;
      ASSERT_EQ(got.writeback, want.writeback) << "access " << i;
      ASSERT_EQ(got.victim_address, want.victim_address) << "access " << i;
      ASSERT_EQ(got.writeback_bytes, want.writeback_bytes) << "access " << i;
    }
    ASSERT_TRUE(cache.stats() == reference.stats())
        << "final stats diverge for geometry c" << g.capacity << "_w"
        << g.ways;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicyCombos, EngineDifferentialTest,
    ::testing::Values(
        EngineCase{PolicyKind::LRU, 0, false},
        EngineCase{PolicyKind::LRU, 0, true},
        EngineCase{PolicyKind::LRU, 64, false},
        EngineCase{PolicyKind::LRU, 64, true},
        EngineCase{PolicyKind::TreePLRU, 0, false},
        EngineCase{PolicyKind::TreePLRU, 0, true},
        EngineCase{PolicyKind::TreePLRU, 64, false},
        EngineCase{PolicyKind::TreePLRU, 64, true},
        EngineCase{PolicyKind::FIFO, 0, false},
        EngineCase{PolicyKind::FIFO, 0, true},
        EngineCase{PolicyKind::FIFO, 64, false},
        EngineCase{PolicyKind::FIFO, 64, true},
        EngineCase{PolicyKind::Random, 0, false},
        EngineCase{PolicyKind::Random, 0, true},
        EngineCase{PolicyKind::Random, 64, false},
        EngineCase{PolicyKind::Random, 64, true},
        EngineCase{PolicyKind::SRRIP, 0, false},
        EngineCase{PolicyKind::SRRIP, 0, true},
        EngineCase{PolicyKind::SRRIP, 64, false},
        EngineCase{PolicyKind::SRRIP, 64, true}),
    [](const ::testing::TestParamInfo<EngineCase>& param_info) {
      return std::string(to_string(param_info.param.policy)) + "_sector" +
             std::to_string(param_info.param.sector_bytes) +
             (param_info.param.with_prefetch ? "_prefetch" : "_demand");
    });

}  // namespace
}  // namespace hms::cache
