// String helpers (hms/common/string_util.hpp).
#include <gtest/gtest.h>

#include "hms/common/error.hpp"
#include "hms/common/string_util.hpp"

namespace hms {
namespace {

TEST(Split, Basic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, KeepsEmptyFields) {
  const auto parts = split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(Split, NoDelimiter) {
  const auto parts = split("alone", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "alone");
}

TEST(Trim, StripsWhitespace) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(ToLower, Basic) {
  EXPECT_EQ(to_lower("ABC def"), "abc def");
  EXPECT_EQ(to_lower("PCM"), "pcm");
}

TEST(IEquals, CaseInsensitive) {
  EXPECT_TRUE(iequals("sttram", "STTRAM"));
  EXPECT_TRUE(iequals("", ""));
  EXPECT_FALSE(iequals("a", "ab"));
  EXPECT_FALSE(iequals("abc", "abd"));
}

TEST(ParseByteSize, PlainBytes) {
  EXPECT_EQ(parse_byte_size("64"), 64u);
  EXPECT_EQ(parse_byte_size("64B"), 64u);
  EXPECT_EQ(parse_byte_size(" 128 "), 128u);
}

TEST(ParseByteSize, Suffixes) {
  EXPECT_EQ(parse_byte_size("4KB"), 4096u);
  EXPECT_EQ(parse_byte_size("4KiB"), 4096u);
  EXPECT_EQ(parse_byte_size("4k"), 4096u);
  EXPECT_EQ(parse_byte_size("16MB"), 16ull << 20);
  EXPECT_EQ(parse_byte_size("2GB"), 2ull << 30);
  EXPECT_EQ(parse_byte_size("512kb"), 512ull << 10);
}

TEST(ParseByteSize, Malformed) {
  EXPECT_THROW((void)parse_byte_size(""), Error);
  EXPECT_THROW((void)parse_byte_size("KB"), Error);
  EXPECT_THROW((void)parse_byte_size("12XB"), Error);
}

}  // namespace
}  // namespace hms
