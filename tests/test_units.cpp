// Unit-safe quantity arithmetic (hms/common/units.hpp).
#include <gtest/gtest.h>

#include "hms/common/units.hpp"

namespace hms {
namespace {

TEST(Time, ConstructionAndConversion) {
  const Time t = Time::from_ns(1500.0);
  EXPECT_DOUBLE_EQ(t.nanoseconds(), 1500.0);
  EXPECT_DOUBLE_EQ(t.seconds(), 1.5e-6);
  EXPECT_DOUBLE_EQ(Time::from_seconds(2.0).nanoseconds(), 2e9);
}

TEST(Time, Arithmetic) {
  const Time a = Time::from_ns(10.0);
  const Time b = Time::from_ns(4.0);
  EXPECT_DOUBLE_EQ((a + b).nanoseconds(), 14.0);
  EXPECT_DOUBLE_EQ((a - b).nanoseconds(), 6.0);
  EXPECT_DOUBLE_EQ((a * 3.0).nanoseconds(), 30.0);
  EXPECT_DOUBLE_EQ((3.0 * a).nanoseconds(), 30.0);
  EXPECT_DOUBLE_EQ((a / 2.0).nanoseconds(), 5.0);
  EXPECT_DOUBLE_EQ(a / b, 2.5);  // dimensionless ratio
}

TEST(Time, CompoundAssignment) {
  Time t = Time::from_ns(1.0);
  t += Time::from_ns(2.0);
  EXPECT_DOUBLE_EQ(t.nanoseconds(), 3.0);
  t -= Time::from_ns(0.5);
  EXPECT_DOUBLE_EQ(t.nanoseconds(), 2.5);
}

TEST(Time, Comparison) {
  EXPECT_LT(Time::from_ns(1.0), Time::from_ns(2.0));
  EXPECT_EQ(Time::from_ns(5.0), Time::from_ns(5.0));
  EXPECT_GE(Time::from_ns(5.0), Time::from_ns(4.0));
}

TEST(Energy, ConstructionAndConversion) {
  const Energy e = Energy::from_pj(2'000'000.0);
  EXPECT_DOUBLE_EQ(e.picojoules(), 2e6);
  EXPECT_DOUBLE_EQ(e.joules(), 2e-6);
  EXPECT_DOUBLE_EQ(e.millijoules(), 2e-3);
  EXPECT_DOUBLE_EQ(Energy::from_joules(1.0).picojoules(), 1e12);
}

TEST(Power, ConstructionAndConversion) {
  const Power p = Power::from_mw(250.0);
  EXPECT_DOUBLE_EQ(p.milliwatts(), 250.0);
  EXPECT_DOUBLE_EQ(p.watts(), 0.25);
  EXPECT_DOUBLE_EQ(Power::from_watts(1.5).milliwatts(), 1500.0);
}

TEST(Units, PowerTimesTimeIsEnergy) {
  // 1 mW for 1 s = 1 mJ = 1e9 pJ.
  const Energy e = Power::from_mw(1.0) * Time::from_seconds(1.0);
  EXPECT_DOUBLE_EQ(e.picojoules(), 1e9);
  // Commutes.
  const Energy e2 = Time::from_seconds(1.0) * Power::from_mw(1.0);
  EXPECT_DOUBLE_EQ(e2.picojoules(), e.picojoules());
}

TEST(Units, EnergyOverTimeIsPower) {
  const Power p = Energy::from_joules(1.0) / Time::from_seconds(2.0);
  EXPECT_DOUBLE_EQ(p.watts(), 0.5);
}

TEST(Units, EnergyDelayProduct) {
  const EnergyDelay edp = Energy::from_pj(10.0) * Time::from_ns(5.0);
  EXPECT_DOUBLE_EQ(edp.value, 50.0);
  const EnergyDelay edp2 = Time::from_ns(5.0) * Energy::from_pj(10.0);
  EXPECT_DOUBLE_EQ(edp2.value, edp.value);
  EXPECT_DOUBLE_EQ(edp / edp2, 1.0);
}

TEST(Units, RoundTripNsPicojouleScale) {
  // The stored representations (ns, pJ, mW) multiply with no factor:
  // 1 mW * 1 ns = 1 pJ exactly.
  const Energy e = Power::from_mw(1.0) * Time::from_ns(1.0);
  EXPECT_DOUBLE_EQ(e.picojoules(), 1.0);
}

}  // namespace
}  // namespace hms
