// Workload kernels: determinism, footprint sizing, stream sanity, and the
// per-kernel correctness self-checks (solver residuals, BFS tree, tables).
#include <gtest/gtest.h>

#include <algorithm>

#include "hms/common/error.hpp"
#include "hms/trace/sink.hpp"
#include "hms/trace/trace_buffer.hpp"
#include "hms/workloads/registry.hpp"

namespace hms::workloads {
namespace {

constexpr std::uint64_t kTestFootprint = 3ull << 20;  // 3 MiB: fast kernels

WorkloadParams small_params(std::uint64_t seed = 42) {
  WorkloadParams p;
  p.footprint_bytes = kTestFootprint;
  p.seed = seed;
  p.iterations = 2;
  return p;
}

TEST(Registry, KnowsAllNames) {
  const auto& names = workload_names();
  EXPECT_EQ(names.size(), 11u);
  for (const auto& name : names) {
    EXPECT_NO_THROW((void)make_workload(name, small_params())) << name;
  }
  EXPECT_THROW((void)make_workload("nonsense", small_params()), hms::Error);
}

TEST(Registry, Aliases) {
  EXPECT_EQ(make_workload("AMG", small_params())->info().name, "AMG2013");
  EXPECT_EQ(make_workload("hash", small_params())->info().name, "Hashing");
  EXPECT_EQ(make_workload("bt", small_params())->info().name, "BT");
}

TEST(Registry, PaperSuiteMatchesTable4PlusSp) {
  const auto& suite = paper_suite();
  EXPECT_EQ(suite.size(), 8u);
  EXPECT_NE(std::find(suite.begin(), suite.end(), "Graph500"), suite.end());
  EXPECT_NE(std::find(suite.begin(), suite.end(), "SP"), suite.end());
}

TEST(Workloads, OneShotEnforced) {
  auto w = make_workload("StreamTriad", small_params());
  trace::NullSink sink;
  w->run(sink);
  EXPECT_THROW(w->run(sink), hms::Error);
}

struct KernelCase {
  const char* name;
  double min_refs_per_kib;  // stream density sanity floor
};

class KernelTest : public ::testing::TestWithParam<KernelCase> {};

TEST_P(KernelTest, FootprintIsNearTarget) {
  auto w = make_workload(GetParam().name, small_params());
  // Sizing targets the requested footprint: between 25% and 115% of it
  // (kernels round data-structure geometry down).
  EXPECT_GE(w->footprint_bytes(), kTestFootprint / 4) << GetParam().name;
  EXPECT_LE(w->footprint_bytes(), kTestFootprint + kTestFootprint / 8);
}

TEST_P(KernelTest, DeterministicStream) {
  auto w1 = make_workload(GetParam().name, small_params(7));
  auto w2 = make_workload(GetParam().name, small_params(7));
  trace::TraceBuffer t1, t2;
  w1->run(t1);
  w2->run(t2);
  ASSERT_EQ(t1.size(), t2.size());
  EXPECT_TRUE(std::equal(t1.entries().begin(), t1.entries().end(),
                         t2.entries().begin()));
}

TEST_P(KernelTest, SeedChangesStreamForRandomKernels) {
  // Structured-grid kernels are seed-independent in their address stream;
  // irregular kernels must differ.
  const std::string name = GetParam().name;
  if (name == "BT" || name == "SP" || name == "LU" ||
      name == "StreamTriad" || name == "AMG2013" || name == "FT") {
    GTEST_SKIP() << "deterministic access pattern by construction";
  }
  auto w1 = make_workload(name, small_params(1));
  auto w2 = make_workload(name, small_params(2));
  trace::TraceBuffer t1, t2;
  w1->run(t1);
  w2->run(t2);
  const bool same = t1.size() == t2.size() &&
                    std::equal(t1.entries().begin(), t1.entries().end(),
                               t2.entries().begin());
  EXPECT_FALSE(same);
}

TEST_P(KernelTest, StreamTouchesItsAddressSpaceOnly) {
  auto w = make_workload(GetParam().name, small_params());
  trace::TraceBuffer t;
  w->run(t);
  const auto& vas = w->address_space();
  for (const auto& a : t.entries()) {
    ASSERT_GE(a.address, vas.base());
    ASSERT_LT(a.address + a.size, vas.top() + 1);
  }
}

TEST_P(KernelTest, StreamHasLoadsAndStores) {
  auto w = make_workload(GetParam().name, small_params());
  trace::CountingSink sink;
  w->run(sink);
  EXPECT_GT(sink.loads(), 0u);
  EXPECT_GT(sink.stores(), 0u);
  // Density floor: the kernel must genuinely traverse its data.
  const double refs_per_kib =
      static_cast<double>(sink.total()) /
      (static_cast<double>(w->footprint_bytes()) / 1024.0);
  EXPECT_GT(refs_per_kib, GetParam().min_refs_per_kib) << GetParam().name;
}

TEST_P(KernelTest, SelfCheckPasses) {
  auto w = make_workload(GetParam().name, small_params());
  trace::NullSink sink;
  w->run(sink);
  EXPECT_TRUE(w->validate()) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelTest,
    ::testing::Values(KernelCase{"BT", 20.0}, KernelCase{"SP", 20.0},
                      KernelCase{"LU", 20.0}, KernelCase{"CG", 10.0},
                      KernelCase{"AMG2013", 10.0},
                      KernelCase{"Graph500", 10.0},
                      KernelCase{"Hashing", 1.0}, KernelCase{"Velvet", 1.0},
                      KernelCase{"StreamTriad", 5.0}, KernelCase{"FT", 20.0},
                      KernelCase{"IS", 5.0}),
    [](const ::testing::TestParamInfo<KernelCase>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Table4Metadata, MatchesPaper) {
  const auto p = small_params();
  EXPECT_EQ(make_workload("BT", p)->info().paper_reference_seconds, 36.0);
  EXPECT_EQ(make_workload("Graph500", p)->info().paper_reference_seconds,
            157.0);
  EXPECT_EQ(make_workload("Hashing", p)->info().paper_reference_seconds,
            389.6);
  EXPECT_EQ(make_workload("AMG2013", p)->info().paper_reference_seconds,
            156.3);
  EXPECT_EQ(make_workload("CG", p)->info().paper_reference_seconds, 54.8);
  EXPECT_EQ(make_workload("Velvet", p)->info().paper_reference_seconds,
            116.5);
  // Footprints per core (Table 4).
  EXPECT_EQ(make_workload("Graph500", p)->info().paper_footprint_bytes,
            4096ull << 20);
  EXPECT_EQ(make_workload("CG", p)->info().paper_footprint_bytes,
            1536ull << 20);
}

TEST(Table4Metadata, SuitesAssigned) {
  const auto p = small_params();
  EXPECT_EQ(make_workload("BT", p)->info().suite, "NPB");
  EXPECT_EQ(make_workload("Graph500", p)->info().suite, "CORAL");
  EXPECT_EQ(make_workload("Velvet", p)->info().suite, "Application");
}

TEST(StructuredKernels, SweepDirectionStridesDiffer) {
  // BT's x/y/z sweeps produce different dominant strides; check the stream
  // contains both unit-stride runs and large jumps.
  auto w = make_workload("BT", small_params());
  trace::TraceBuffer t;
  w->run(t);
  std::size_t unit_strides = 0, large_strides = 0;
  const auto entries = t.entries();
  for (std::size_t i = 1; i < std::min<std::size_t>(entries.size(), 200000);
       ++i) {
    const auto d = static_cast<std::int64_t>(entries[i].address) -
                   static_cast<std::int64_t>(entries[i - 1].address);
    if (d == 8) ++unit_strides;
    if (d > 1024 || d < -1024) ++large_strides;
  }
  EXPECT_GT(unit_strides, 0u);
  EXPECT_GT(large_strides, 0u);
}

TEST(IrregularKernels, Graph500StreamIsIrregular) {
  auto w = make_workload("Graph500", small_params());
  trace::TraceBuffer t;
  w->run(t);
  // Count distinct jump magnitudes; BFS gathers produce many.
  std::size_t big_jumps = 0;
  const auto entries = t.entries();
  for (std::size_t i = 1; i < entries.size(); ++i) {
    const auto d = static_cast<std::int64_t>(entries[i].address) -
                   static_cast<std::int64_t>(entries[i - 1].address);
    if (d > 4096 || d < -4096) ++big_jumps;
  }
  EXPECT_GT(static_cast<double>(big_jumps) /
                static_cast<double>(entries.size()),
            0.05);
}

TEST(Iterations, MoreIterationsMoreReferences) {
  auto p1 = small_params();
  p1.iterations = 1;
  auto p3 = small_params();
  p3.iterations = 3;
  for (const char* name : {"BT", "CG", "StreamTriad"}) {
    auto w1 = make_workload(name, p1);
    auto w3 = make_workload(name, p3);
    trace::CountingSink s1, s3;
    w1->run(s1);
    w3->run(s3);
    EXPECT_GT(s3.total(), 2 * s1.total()) << name;
  }
}

}  // namespace
}  // namespace hms::workloads
