// DynamicPartitionBackend — epoch-based DRAM/NVM migration (the paper's
// future-work NDM variant).
#include <gtest/gtest.h>

#include "hms/common/error.hpp"
#include "hms/common/random.hpp"
#include "hms/cache/dynamic_partition.hpp"

namespace hms::cache {
namespace {

using mem::Technology;
using mem::TechnologyRegistry;

DynamicPartitionConfig config(std::uint64_t dram_capacity = 4ull << 20,
                              std::uint64_t region = 1ull << 20,
                              std::uint64_t epoch = 1000) {
  DynamicPartitionConfig cfg;
  cfg.dram.name = "DRAM";
  cfg.dram.technology = TechnologyRegistry::table1().get(Technology::DRAM);
  cfg.dram.capacity_bytes = dram_capacity;
  cfg.dram.line_bytes = 256;
  cfg.nvm.name = "PCM";
  cfg.nvm.technology = TechnologyRegistry::table1().get(Technology::PCM);
  cfg.nvm.capacity_bytes = 64ull << 20;
  cfg.nvm.line_bytes = 256;
  cfg.region_bytes = region;
  cfg.epoch_accesses = epoch;
  return cfg;
}

TEST(DynamicPartition, EverythingStartsInNvm) {
  DynamicPartitionBackend b(config());
  b.load(0x100, 64);
  b.store(0x100, 64);
  EXPECT_EQ(b.nvm().stats().reads, 1u);
  EXPECT_EQ(b.nvm().stats().writes, 1u);
  EXPECT_EQ(b.dram().stats().total(), 0u);
  EXPECT_FALSE(b.in_dram(0x100));
}

TEST(DynamicPartition, HotRegionPromotesAfterEpoch) {
  DynamicPartitionBackend b(config(4ull << 20, 1ull << 20, 100));
  for (int i = 0; i < 100; ++i) b.load(0x1000, 64);  // region 0, hot
  EXPECT_EQ(b.epochs(), 1u);
  EXPECT_TRUE(b.in_dram(0x1000));
  // Promotion cost: one bulk NVM read + one bulk DRAM write.
  EXPECT_EQ(b.migrations(), 1u);
  EXPECT_EQ(b.migrated_bytes(), 1ull << 20);
  EXPECT_EQ(b.dram().stats().writes, 1u);
  EXPECT_EQ(b.dram().stats().write_bytes, 1ull << 20);
  // Subsequent traffic to the region lands in DRAM.
  b.load(0x1000, 64);
  EXPECT_EQ(b.dram().stats().reads, 1u);
}

TEST(DynamicPartition, CapacityLimitRespected) {
  // DRAM holds 2 regions; touch 6 regions with distinct heat.
  DynamicPartitionBackend b(config(2ull << 20, 1ull << 20, 600));
  for (int r = 0; r < 6; ++r) {
    for (int i = 0; i < 100; ++i) {
      b.load(static_cast<Address>(r) << 20, 64);
    }
  }
  EXPECT_GE(b.epochs(), 1u);
  EXPECT_LE(b.resident_regions(), b.dram_region_capacity());
}

TEST(DynamicPartition, HottestRegionsWin) {
  DynamicPartitionBackend b(config(2ull << 20, 1ull << 20, 1000));
  // Region 0: 500 accesses, region 1: 300, region 2: 150, region 3: 50.
  const int heats[] = {500, 300, 150, 50};
  for (int r = 0; r < 4; ++r) {
    for (int i = 0; i < heats[r]; ++i) {
      b.load(static_cast<Address>(r) << 20, 64);
    }
  }
  EXPECT_EQ(b.epochs(), 1u);
  EXPECT_TRUE(b.in_dram(0ull << 20));
  EXPECT_TRUE(b.in_dram(1ull << 20));
  EXPECT_FALSE(b.in_dram(2ull << 20));
  EXPECT_FALSE(b.in_dram(3ull << 20));
}

TEST(DynamicPartition, PhaseChangeSwapsResidents) {
  DynamicPartitionBackend b(config(1ull << 20, 1ull << 20, 1000));
  // Phase 1: region 0 hot.
  for (int i = 0; i < 1000; ++i) b.load(0x0, 64);
  EXPECT_TRUE(b.in_dram(0x0));
  // Phase 2: region 5 hot for several epochs (decay must flush region 0's
  // score).
  for (int e = 0; e < 4; ++e) {
    for (int i = 0; i < 1000; ++i) b.load(5ull << 20, 64);
  }
  EXPECT_TRUE(b.in_dram(5ull << 20));
  EXPECT_FALSE(b.in_dram(0x0));
  // A demotion happened: DRAM read + NVM write of the region.
  EXPECT_GE(b.migrations(), 3u);
  EXPECT_GT(b.nvm().stats().write_bytes, 0u);
}

TEST(DynamicPartition, ManualRebalance) {
  DynamicPartitionBackend b(config(4ull << 20, 1ull << 20, 1ull << 60));
  for (int i = 0; i < 10; ++i) b.load(0x0, 64);
  EXPECT_FALSE(b.in_dram(0x0));
  b.rebalance();
  EXPECT_TRUE(b.in_dram(0x0));
}

TEST(DynamicPartition, ProfilesExposeBothDevices) {
  DynamicPartitionBackend b(config());
  b.load(0x0, 512);
  const auto profiles = b.profiles();
  ASSERT_EQ(profiles.size(), 2u);
  EXPECT_EQ(profiles[0].name, "DRAM");
  EXPECT_EQ(profiles[1].name, "PCM");
  EXPECT_EQ(profiles[1].loads, 1u);
  EXPECT_EQ(profiles[1].load_bytes, 512u);
}

TEST(DynamicPartition, ConfigValidation) {
  auto bad = config();
  bad.region_bytes = 3ull << 20;  // not a power of two
  EXPECT_THROW(DynamicPartitionBackend{bad}, hms::ConfigError);
  bad = config(512ull << 10, 1ull << 20);  // DRAM < one region
  EXPECT_THROW(DynamicPartitionBackend{bad}, hms::ConfigError);
  bad = config();
  bad.epoch_accesses = 0;
  EXPECT_THROW(DynamicPartitionBackend{bad}, hms::ConfigError);
  bad = config();
  bad.score_decay = 1.0;
  EXPECT_THROW(DynamicPartitionBackend{bad}, hms::ConfigError);
}

TEST(DynamicPartition, DeterministicAcrossRuns) {
  auto run = [] {
    DynamicPartitionBackend b(config(2ull << 20, 1ull << 20, 500));
    Xoshiro256 rng(9);
    for (int i = 0; i < 20000; ++i) {
      const Address a = rng.below(16ull << 20) & ~63ull;
      if (rng.chance(0.3)) {
        b.store(a, 64);
      } else {
        b.load(a, 64);
      }
    }
    return std::make_tuple(b.migrations(), b.dram().stats().reads,
                           b.nvm().stats().writes);
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace hms::cache
