// AMAT / runtime / energy / EDP models (Eqs. 1-4) against hand computation.
#include <gtest/gtest.h>

#include "hms/common/error.hpp"
#include "hms/model/amat.hpp"
#include "hms/model/energy.hpp"
#include "hms/model/report.hpp"

namespace hms::model {
namespace {

using cache::HierarchyProfile;
using cache::LevelProfile;
using mem::Technology;
using mem::TechnologyRegistry;

/// Two-level profile with hand-computable numbers:
///   L1 SRAM-ish: 1 ns, 0 pJ/bit, no static; 100 loads, 50 stores.
///   Memory: DRAM Table 1 (10 ns, 10 pJ/bit); 10 loads, 5 stores of 64 B.
HierarchyProfile hand_profile() {
  HierarchyProfile p;
  p.references = 150;

  LevelProfile l1;
  l1.name = "L1";
  l1.tech.technology = Technology::SRAM;
  l1.tech.read_latency = Time::from_ns(1.0);
  l1.tech.write_latency = Time::from_ns(1.0);
  l1.tech.read_pj_per_bit = 0.0;
  l1.tech.write_pj_per_bit = 0.0;
  l1.tech.static_power_per_mib = Power::from_mw(0.0);
  l1.capacity_bytes = 32 << 10;
  l1.loads = 100;
  l1.stores = 50;
  l1.load_bytes = 800;
  l1.store_bytes = 400;
  l1.is_cache = true;
  p.levels.push_back(l1);

  LevelProfile memlvl;
  memlvl.name = "DRAM";
  memlvl.tech = TechnologyRegistry::table1().get(Technology::DRAM);
  memlvl.tech.static_power_per_mib = Power::from_mw(0.0);  // hand calc
  // Zero capacity keeps DRAM refresh power out of the hand computation;
  // tests that exercise refresh set a capacity explicitly.
  memlvl.capacity_bytes = 0;
  memlvl.loads = 10;
  memlvl.stores = 5;
  memlvl.load_bytes = 640;
  memlvl.store_bytes = 320;
  p.levels.push_back(memlvl);
  return p;
}

TEST(Amat, HandComputedValue) {
  const auto p = hand_profile();
  // Total time = 150 * 1 ns + 15 * 10 ns = 300 ns. AMAT = 300 / 150 = 2 ns.
  EXPECT_DOUBLE_EQ(total_access_time(p).nanoseconds(), 300.0);
  EXPECT_DOUBLE_EQ(amat(p).nanoseconds(), 2.0);
}

TEST(Amat, AsymmetricLatencies) {
  auto p = hand_profile();
  p.levels[1].tech = TechnologyRegistry::table1().get(Technology::PCM);
  // Total = 150*1 + 10*21 + 5*100 = 860 ns.
  EXPECT_DOUBLE_EQ(total_access_time(p).nanoseconds(), 860.0);
}

TEST(Amat, EmptyProfileThrows) {
  HierarchyProfile p;
  EXPECT_THROW((void)amat(p), hms::Error);
}

TEST(Runtime, Eq1Scaling) {
  const Time t = scaled_runtime(Time::from_seconds(36.0),
                                Time::from_ns(2.0), Time::from_ns(2.2));
  EXPECT_NEAR(t.seconds(), 39.6, 1e-9);
  EXPECT_THROW((void)scaled_runtime(Time::from_seconds(1.0),
                                    Time::from_ns(0.0), Time::from_ns(1.0)),
               hms::Error);
}

TEST(Runtime, ModeledReferenceRuntime) {
  const auto p = hand_profile();
  // Memory time 300 ns / 0.5 memory-bound = 600 ns wall clock.
  EXPECT_DOUBLE_EQ(modeled_reference_runtime(p, 0.5).nanoseconds(), 600.0);
  EXPECT_THROW((void)modeled_reference_runtime(p, 0.0), hms::Error);
  EXPECT_THROW((void)modeled_reference_runtime(p, 1.5), hms::Error);
}

TEST(Energy, DynamicHandComputed) {
  const auto p = hand_profile();
  // L1 contributes 0. DRAM: (640 + 320) bytes * 8 bits * 10 pJ/bit.
  EXPECT_DOUBLE_EQ(dynamic_energy(p).picojoules(), 960.0 * 8.0 * 10.0);
}

TEST(Energy, DynamicRespectsAsymmetricCosts) {
  auto p = hand_profile();
  p.levels[1].tech = TechnologyRegistry::table1().get(Technology::PCM);
  // 640*8*12.4 + 320*8*210.3 pJ.
  EXPECT_NEAR(dynamic_energy(p).picojoules(),
              640.0 * 8 * 12.4 + 320.0 * 8 * 210.3, 1e-6);
}

TEST(Energy, StaticUsesCapacityAndRuntime) {
  auto p = hand_profile();
  p.levels[0].tech.static_power_per_mib = Power::from_mw(10.0);
  p.levels[0].capacity_bytes = 2ull << 20;  // 2 MiB -> 20 mW leakage
  // SRAM: no refresh. Static energy = 20 mW * 1000 ns = 20000 pJ.
  const Energy e = static_energy(p, Time::from_ns(1000.0));
  EXPECT_DOUBLE_EQ(e.picojoules(), 20000.0);
}

TEST(Energy, NvmContributesNoStatic) {
  auto p = hand_profile();
  p.levels[1].tech = TechnologyRegistry::table1().get(Technology::PCM);
  p.levels[1].capacity_bytes = 1ull << 30;
  EXPECT_DOUBLE_EQ(static_power(p).milliwatts(), 0.0);
}

TEST(Energy, DramIncludesRefresh) {
  auto p = hand_profile();
  p.levels[1].tech = TechnologyRegistry::table1().get(Technology::DRAM);
  p.levels[1].capacity_bytes = 1ull << 30;
  EXPECT_GT(static_power(p).milliwatts(), 0.0);
}

TEST(Report, EvaluateAndNormalize) {
  const auto base_profile = hand_profile();
  const auto anchor = make_anchor(base_profile, 0.5);
  const auto base = evaluate("base", "toy", base_profile, anchor);
  EXPECT_DOUBLE_EQ(base.amat.nanoseconds(), 2.0);
  EXPECT_DOUBLE_EQ(base.runtime.nanoseconds(), 600.0);

  // A design with double memory latency.
  auto design_profile = base_profile;
  design_profile.levels[1].tech.read_latency = Time::from_ns(20.0);
  design_profile.levels[1].tech.write_latency = Time::from_ns(20.0);
  const auto design = evaluate("slow", "toy", design_profile, anchor);
  // AMAT = (150 + 15*20)/150 = 3 ns -> runtime 900 ns.
  EXPECT_DOUBLE_EQ(design.amat.nanoseconds(), 3.0);
  EXPECT_DOUBLE_EQ(design.runtime.nanoseconds(), 900.0);

  const auto n = normalize(design, base);
  EXPECT_DOUBLE_EQ(n.runtime, 1.5);
  EXPECT_DOUBLE_EQ(n.dynamic, 1.0);  // same bytes moved
  EXPECT_DOUBLE_EQ(n.total_energy, 1.0);  // zero static in hand profile
  // EDP = energy * runtime -> scales by 1.5.
  EXPECT_DOUBLE_EQ(n.edp, 1.5);
}

TEST(Report, SelfNormalizationIsUnity) {
  const auto p = hand_profile();
  const auto anchor = make_anchor(p, 0.7);
  const auto r = evaluate("base", "toy", p, anchor);
  const auto n = normalize(r, r);
  EXPECT_DOUBLE_EQ(n.runtime, 1.0);
  EXPECT_DOUBLE_EQ(n.total_energy, 1.0);
  EXPECT_DOUBLE_EQ(n.edp, 1.0);
}

TEST(Report, EdpCombinesEnergyAndTime) {
  const auto p = hand_profile();
  const auto anchor = make_anchor(p, 0.5);
  const auto r = evaluate("base", "toy", p, anchor);
  EXPECT_DOUBLE_EQ(r.edp().value,
                   r.total_energy().picojoules() * r.runtime.nanoseconds());
}

}  // namespace
}  // namespace hms::model
