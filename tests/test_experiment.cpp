// ExperimentRunner end-to-end: figure sweeps at tiny scale.
#include <gtest/gtest.h>

#include "hms/sim/experiment.hpp"

namespace hms::sim {
namespace {

using mem::Technology;

ExperimentConfig tiny_config() {
  ExperimentConfig cfg;
  cfg.scale_divisor = 512;
  cfg.footprint_divisor = 512;
  cfg.seed = 42;
  cfg.iterations = 1;
  cfg.suite = {"StreamTriad", "CG", "Hashing"};
  return cfg;
}

TEST(Experiment, FrontIsCachedAcrossCalls) {
  ExperimentRunner runner(tiny_config());
  const auto& a = runner.front("CG");
  const auto& b = runner.front("CG");
  EXPECT_EQ(&a, &b);
}

TEST(Experiment, BaseReportNormalizesToUnity) {
  ExperimentRunner runner(tiny_config());
  const auto& base = runner.base_report("CG");
  EXPECT_EQ(base.design, "base");
  EXPECT_GT(base.runtime.nanoseconds(), 0.0);
  EXPECT_GT(base.total_energy().picojoules(), 0.0);
  const auto n = model::normalize(base, base);
  EXPECT_DOUBLE_EQ(n.runtime, 1.0);
  EXPECT_DOUBLE_EQ(n.total_energy, 1.0);
}

TEST(Experiment, NmmSweepProducesOneResultPerConfig) {
  ExperimentRunner runner(tiny_config());
  const std::vector<designs::NConfig> configs = {designs::n_config("N1"),
                                                 designs::n_config("N6")};
  const auto results = runner.nmm_sweep(Technology::PCM, configs);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].config_name, "N1");
  EXPECT_EQ(results[1].config_name, "N6");
  for (const auto& r : results) {
    EXPECT_EQ(r.per_workload.size(), 3u);
    EXPECT_GT(r.runtime, 0.5);
    EXPECT_LT(r.runtime, 3.0);
    EXPECT_GT(r.total_energy, 0.0);
  }
}

TEST(Experiment, NmmRuntimeNeverBeatsBaseByMuch) {
  // NMM adds a level and a slower main memory: normalized runtime >= ~1.
  ExperimentRunner runner(tiny_config());
  const auto results =
      runner.nmm_sweep(Technology::PCM, {designs::n_config("N3")});
  for (const auto& wr : results[0].per_workload) {
    EXPECT_GT(wr.normalized.runtime, 0.98) << wr.report.workload;
  }
}

TEST(Experiment, FourLcSweep) {
  ExperimentRunner runner(tiny_config());
  const auto results =
      runner.four_lc_sweep(Technology::eDRAM, {designs::eh_config("EH1")});
  ASSERT_EQ(results.size(), 1u);
  // An eDRAM L4 in front of DRAM cannot slow things dramatically.
  EXPECT_LT(results[0].runtime, 1.5);
}

TEST(Experiment, FourLcNvmSweep) {
  ExperimentRunner runner(tiny_config());
  const auto results = runner.four_lc_nvm_sweep(
      Technology::eDRAM, Technology::PCM, {designs::eh_config("EH1")});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_GT(results[0].runtime, 0.0);
  EXPECT_GT(results[0].total_energy, 0.0);
}

TEST(Experiment, NdmOracleChoosesNonTrivialPlacement) {
  ExperimentRunner runner(tiny_config());
  const auto results = runner.ndm_oracle(Technology::PCM);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& ndm : results) {
    EXPECT_FALSE(ndm.chosen.nvm_rules.empty()) << ndm.workload;
    // All placements include the all-DRAM anchor plus the candidates.
    EXPECT_GE(ndm.all_placements.size(), 2u);
    EXPECT_EQ(ndm.all_placements[0].first.name, "all-DRAM");
    // The oracle's choice is the best-EDP FEASIBLE non-trivial placement.
    for (const auto& [placement, normalized] : ndm.all_placements) {
      if (!placement.feasible || placement.nvm_rules.empty()) continue;
      EXPECT_LE(ndm.result.normalized.edp, normalized.edp + 1e-9);
    }
    // The chosen placement respects the DRAM partition (or is the least
    // infeasible fallback, still the minimum DRAM residency seen).
    for (const auto& [placement, normalized] : ndm.all_placements) {
      if (placement.feasible) {
        EXPECT_LE(ndm.chosen.dram_bytes,
                  ndm.all_placements[0].first.dram_bytes);
        break;
      }
    }
  }
}

TEST(Experiment, DefaultSuiteIsPaperSuite) {
  ExperimentConfig cfg = tiny_config();
  cfg.suite.clear();
  ExperimentRunner runner(cfg);
  EXPECT_EQ(runner.suite().size(), 8u);
}

TEST(Experiment, ParamsForScalesFootprint) {
  const auto cfg = tiny_config();
  workloads::WorkloadInfo info;
  info.paper_footprint_bytes = 4096ull << 20;
  const auto p = cfg.params_for(info);
  EXPECT_EQ(p.footprint_bytes, (4096ull << 20) / 512);
  // Tiny paper footprints floor at 1 MiB.
  info.paper_footprint_bytes = 1ull << 20;
  EXPECT_EQ(cfg.params_for(info).footprint_bytes, 1ull << 20);
}

TEST(Experiment, DeterministicAcrossRunners) {
  ExperimentRunner r1(tiny_config());
  ExperimentRunner r2(tiny_config());
  const auto a = r1.nmm_sweep(Technology::PCM, {designs::n_config("N6")});
  const auto b = r2.nmm_sweep(Technology::PCM, {designs::n_config("N6")});
  EXPECT_DOUBLE_EQ(a[0].runtime, b[0].runtime);
  EXPECT_DOUBLE_EQ(a[0].total_energy, b[0].total_energy);
  EXPECT_DOUBLE_EQ(a[0].edp, b[0].edp);
}

}  // namespace
}  // namespace hms::sim
