// Simulator and the front/back split (hms/sim/simulator.hpp).
//
// The load-bearing invariant: replaying a captured residual stream into a
// design's back half must produce EXACTLY the same combined statistics as
// simulating the full hierarchy online.
#include <gtest/gtest.h>

#include "hms/designs/design.hpp"
#include "hms/sim/simulator.hpp"
#include "hms/workloads/registry.hpp"

namespace hms::sim {
namespace {

using designs::DesignFactory;
using mem::Technology;

workloads::WorkloadParams params() {
  workloads::WorkloadParams p;
  p.footprint_bytes = 2ull << 20;
  p.seed = 42;
  p.iterations = 1;
  return p;
}

void expect_profiles_equal(const cache::HierarchyProfile& a,
                           const cache::HierarchyProfile& b) {
  ASSERT_EQ(a.levels.size(), b.levels.size());
  EXPECT_EQ(a.references, b.references);
  for (std::size_t i = 0; i < a.levels.size(); ++i) {
    SCOPED_TRACE("level " + a.levels[i].name);
    EXPECT_EQ(a.levels[i].name, b.levels[i].name);
    EXPECT_EQ(a.levels[i].loads, b.levels[i].loads);
    EXPECT_EQ(a.levels[i].stores, b.levels[i].stores);
    EXPECT_EQ(a.levels[i].load_bytes, b.levels[i].load_bytes);
    EXPECT_EQ(a.levels[i].store_bytes, b.levels[i].store_bytes);
    EXPECT_EQ(a.levels[i].cache_stats.hits(), b.levels[i].cache_stats.hits());
    EXPECT_EQ(a.levels[i].cache_stats.writebacks,
              b.levels[i].cache_stats.writebacks);
  }
}

TEST(Simulator, RunsWorkloadIntoHierarchy) {
  DesignFactory f(256);
  auto w = workloads::make_workload("StreamTriad", params());
  auto h = f.base(w->footprint_bytes());
  const auto profile = simulate(*w, *h);
  EXPECT_GT(profile.references, 0u);
  ASSERT_EQ(profile.levels.size(), 4u);
  EXPECT_GT(profile.levels[3].loads, 0u);
}

TEST(Simulator, CaptureFrontRecordsMetadata) {
  DesignFactory f(256);
  const auto capture = capture_front("CG", params(), f);
  EXPECT_EQ(capture.workload_name, "CG");
  EXPECT_EQ(capture.info.name, "CG");
  EXPECT_GT(capture.footprint_bytes, 0u);
  EXPECT_FALSE(capture.ranges.empty());
  EXPECT_FALSE(capture.residual.empty());
  EXPECT_EQ(capture.front_profile.levels.size(), 3u);
  EXPECT_GT(capture.front_profile.references, 0u);
}

class FrontBackEquivalenceTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(FrontBackEquivalenceTest, BaseDesignMatchesFullSimulation) {
  DesignFactory f(256);
  const std::string name = GetParam();

  auto w_full = workloads::make_workload(name, params());
  auto h_full = f.base(w_full->footprint_bytes());
  const auto full = simulate(*w_full, *h_full);

  const auto capture = capture_front(name, params(), f);
  auto back = f.base_back(capture.footprint_bytes);
  const auto combined = replay_back(capture, *back);

  expect_profiles_equal(full, combined);
}

TEST_P(FrontBackEquivalenceTest, NmmDesignMatchesFullSimulation) {
  DesignFactory f(256);
  const std::string name = GetParam();

  auto w_full = workloads::make_workload(name, params());
  auto h_full = f.nvm_main_memory(designs::n_config("N6"), Technology::PCM,
                                  w_full->footprint_bytes());
  const auto full = simulate(*w_full, *h_full);

  const auto capture = capture_front(name, params(), f);
  auto back = f.nvm_main_memory_back(designs::n_config("N6"),
                                     Technology::PCM,
                                     capture.footprint_bytes);
  const auto combined = replay_back(capture, *back);

  expect_profiles_equal(full, combined);
}

INSTANTIATE_TEST_SUITE_P(Workloads, FrontBackEquivalenceTest,
                         ::testing::Values("StreamTriad", "CG", "Hashing"));

TEST(Simulator, ReplayIsRepeatable) {
  DesignFactory f(256);
  const auto capture = capture_front("StreamTriad", params(), f);
  auto b1 = f.base_back(capture.footprint_bytes);
  auto b2 = f.base_back(capture.footprint_bytes);
  expect_profiles_equal(replay_back(capture, *b1),
                        replay_back(capture, *b2));
}

TEST(Simulator, ResidualIsMuchSmallerThanFullStream) {
  DesignFactory f(256);
  auto w = workloads::make_workload("BT", params());
  trace::CountingSink counter;
  w->run(counter);
  const auto capture = capture_front("BT", params(), f);
  // The L1-L3 front filters the stream heavily even at small scale.
  EXPECT_LT(capture.residual.size(), counter.total() / 2);
}

}  // namespace
}  // namespace hms::sim
