// run_parallel (hms/sim/parallel.hpp).
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "hms/sim/parallel.hpp"

namespace hms::sim {
namespace {

TEST(Parallel, RunsEveryTaskExactlyOnce) {
  constexpr int kTasks = 100;
  std::vector<std::atomic<int>> counts(kTasks);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < kTasks; ++i) {
    tasks.emplace_back([&counts, i] { ++counts[static_cast<std::size_t>(i)]; });
  }
  run_parallel(std::move(tasks), 4);
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(Parallel, EmptyTaskListIsNoop) {
  EXPECT_NO_THROW(run_parallel({}, 4));
}

TEST(Parallel, SingleThreadFallback) {
  std::atomic<int> sum{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 10; ++i) tasks.emplace_back([&sum] { ++sum; });
  run_parallel(std::move(tasks), 1);
  EXPECT_EQ(sum.load(), 10);
}

TEST(Parallel, DefaultThreadCount) {
  std::atomic<int> sum{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 20; ++i) tasks.emplace_back([&sum] { ++sum; });
  run_parallel(std::move(tasks), 0);  // hardware concurrency
  EXPECT_EQ(sum.load(), 20);
}

TEST(Parallel, PropagatesFirstException) {
  std::atomic<int> completed{0};
  std::vector<std::function<void()>> tasks;
  tasks.emplace_back([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 20; ++i) tasks.emplace_back([&completed] { ++completed; });
  EXPECT_THROW(run_parallel(std::move(tasks), 4), std::runtime_error);
  // Other tasks still ran (workers drain the queue before rethrow).
  EXPECT_EQ(completed.load(), 20);
}

TEST(Parallel, MoreThreadsThanTasks) {
  std::atomic<int> sum{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 3; ++i) tasks.emplace_back([&sum] { ++sum; });
  run_parallel(std::move(tasks), 64);
  EXPECT_EQ(sum.load(), 3);
}

}  // namespace
}  // namespace hms::sim
