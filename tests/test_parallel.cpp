// run_parallel (hms/sim/parallel.hpp).
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "hms/common/error.hpp"
#include "hms/sim/parallel.hpp"

namespace hms::sim {
namespace {

TEST(Parallel, ResolveWorkersPassesExplicitRequestThrough) {
  EXPECT_EQ(resolve_workers(3, 0), 3u);
  EXPECT_EQ(resolve_workers(1, 16), 1u);
  EXPECT_EQ(resolve_workers(8, 4), 8u);
}

TEST(Parallel, ResolveWorkersAutoUsesHardwareConcurrency) {
  EXPECT_EQ(resolve_workers(0, 8), 8u);
  EXPECT_EQ(resolve_workers(0, 1), 1u);
}

TEST(Parallel, ResolveWorkersUnknownHostFallsBackToMinimumTwo) {
  // Regression: threads=0 on a host whose hardware_concurrency() probe
  // returns 0 must resolve to the documented minimum of 2 workers, not
  // silently serialize the sweep.
  EXPECT_EQ(resolve_workers(0, 0), kFallbackWorkers);
  EXPECT_EQ(kFallbackWorkers, 2u);
  EXPECT_GE(resolve_workers(0), 1u);  // never zero whatever the host says
}

TEST(Parallel, RunsEveryTaskExactlyOnce) {
  constexpr int kTasks = 100;
  std::vector<std::atomic<int>> counts(kTasks);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < kTasks; ++i) {
    tasks.emplace_back([&counts, i] { ++counts[static_cast<std::size_t>(i)]; });
  }
  run_parallel(std::move(tasks), 4);
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(Parallel, EmptyTaskListIsNoop) {
  EXPECT_NO_THROW(run_parallel({}, 4));
}

TEST(Parallel, SingleThreadFallback) {
  std::atomic<int> sum{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 10; ++i) tasks.emplace_back([&sum] { ++sum; });
  run_parallel(std::move(tasks), 1);
  EXPECT_EQ(sum.load(), 10);
}

TEST(Parallel, DefaultThreadCount) {
  std::atomic<int> sum{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 20; ++i) tasks.emplace_back([&sum] { ++sum; });
  run_parallel(std::move(tasks), 0);  // hardware concurrency
  EXPECT_EQ(sum.load(), 20);
}

TEST(Parallel, PropagatesFirstException) {
  std::atomic<int> completed{0};
  std::vector<std::function<void()>> tasks;
  tasks.emplace_back([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 20; ++i) tasks.emplace_back([&completed] { ++completed; });
  EXPECT_THROW(run_parallel(std::move(tasks), 4), std::runtime_error);
  // Other tasks still ran (workers drain the queue before rethrow).
  EXPECT_EQ(completed.load(), 20);
}

TEST(Parallel, MoreThreadsThanTasks) {
  std::atomic<int> sum{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 3; ++i) tasks.emplace_back([&sum] { ++sum; });
  run_parallel(std::move(tasks), 64);
  EXPECT_EQ(sum.load(), 3);
}

// -- structured API -------------------------------------------------------

TEST(Parallel, FailFastKeepsSuppressedErrorMessages) {
  std::vector<ParallelTask> tasks;
  tasks.push_back({"a", [] { throw Error("a failed"); }, false});
  tasks.push_back({"b", [] {}, false});
  tasks.push_back({"c", [] { throw Error("c failed"); }, false});
  ParallelOptions options;
  options.threads = 1;  // deterministic "first" error
  options.policy = ErrorPolicy::fail_fast;
  try {
    (void)run_parallel(std::move(tasks), options);
    FAIL() << "expected SimulationError";
  } catch (const SimulationError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("a failed"), std::string::npos) << what;
    EXPECT_NE(what.find("suppressed 1 task(s) failed"), std::string::npos)
        << what;
    EXPECT_NE(what.find("c: c failed"), std::string::npos) << what;
  }
}

TEST(Parallel, FailFastSingleFailureRethrowsOriginalType) {
  std::vector<ParallelTask> tasks;
  tasks.push_back({"only", [] { throw std::logic_error("just me"); }, false});
  ParallelOptions options;
  options.threads = 1;
  EXPECT_THROW((void)run_parallel(std::move(tasks), options),
               std::logic_error);
}

TEST(Parallel, CollectAllEnumeratesEveryFailure) {
  std::vector<ParallelTask> tasks;
  for (int i = 0; i < 4; ++i) {
    const std::string label = "t" + std::to_string(i);
    tasks.push_back({label, [label] { throw Error(label + " boom"); }, false});
  }
  ParallelOptions options;
  options.threads = 2;
  options.policy = ErrorPolicy::collect_all;
  try {
    (void)run_parallel(std::move(tasks), options);
    FAIL() << "expected SimulationError";
  } catch (const SimulationError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("4 task(s) failed"), std::string::npos) << what;
    for (int i = 0; i < 4; ++i) {
      EXPECT_NE(what.find("t" + std::to_string(i) + " boom"),
                std::string::npos)
          << what;
    }
  }
}

TEST(Parallel, DegradeNeverThrowsAndReportsOutcomes) {
  std::vector<ParallelTask> tasks;
  tasks.push_back({"good", [] {}, false});
  tasks.push_back({"bad", [] { throw Error("nope"); }, false});
  ParallelOptions options;
  options.threads = 2;
  options.policy = ErrorPolicy::degrade;
  const ParallelReport report = run_parallel(std::move(tasks), options);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.failures, 1u);
  ASSERT_EQ(report.tasks.size(), 2u);
  EXPECT_EQ(report.tasks[0].outcome, TaskOutcome::ok);
  EXPECT_TRUE(report.tasks[0].error.empty());
  EXPECT_EQ(report.tasks[1].outcome, TaskOutcome::failed);
  EXPECT_EQ(report.tasks[1].error, "nope");
  EXPECT_NE(report.summary().find("bad: nope"), std::string::npos);
}

TEST(Parallel, TransientTasksRetryDeterministically) {
  std::atomic<int> attempts{0};
  std::vector<ParallelTask> tasks;
  tasks.push_back({"flaky",
                   [&attempts] {
                     if (++attempts < 3) throw Error("transient glitch");
                   },
                   true});
  ParallelOptions options;
  options.threads = 1;
  options.policy = ErrorPolicy::degrade;
  options.max_retries = 2;
  const ParallelReport report = run_parallel(std::move(tasks), options);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.tasks[0].outcome, TaskOutcome::ok);
  EXPECT_EQ(report.tasks[0].attempts, 3u);
  EXPECT_EQ(attempts.load(), 3);
}

TEST(Parallel, RetryBudgetIsBounded) {
  std::atomic<int> attempts{0};
  std::vector<ParallelTask> tasks;
  tasks.push_back({"hopeless",
                   [&attempts] {
                     ++attempts;
                     throw Error("always");
                   },
                   true});
  ParallelOptions options;
  options.threads = 1;
  options.policy = ErrorPolicy::degrade;
  options.max_retries = 2;
  const ParallelReport report = run_parallel(std::move(tasks), options);
  EXPECT_EQ(report.failures, 1u);
  EXPECT_EQ(report.tasks[0].attempts, 3u);  // 1 try + 2 retries
  EXPECT_EQ(attempts.load(), 3);
}

TEST(Parallel, NonTransientTasksNeverRetry) {
  std::atomic<int> attempts{0};
  std::vector<ParallelTask> tasks;
  tasks.push_back({"strict",
                   [&attempts] {
                     ++attempts;
                     throw Error("once");
                   },
                   false});
  ParallelOptions options;
  options.threads = 1;
  options.policy = ErrorPolicy::degrade;
  options.max_retries = 5;
  const ParallelReport report = run_parallel(std::move(tasks), options);
  EXPECT_EQ(report.tasks[0].attempts, 1u);
  EXPECT_EQ(attempts.load(), 1);
}

TEST(Parallel, OnCompleteSeesEveryTaskSerialized) {
  constexpr std::size_t kTasks = 50;
  std::vector<ParallelTask> tasks;
  for (std::size_t i = 0; i < kTasks; ++i) {
    tasks.push_back({"t" + std::to_string(i),
                     [i] {
                       if (i % 7 == 0) throw Error("mod7");
                     },
                     false});
  }
  std::vector<bool> seen(kTasks, false);
  std::size_t failed = 0;
  ParallelOptions options;
  options.threads = 4;
  options.policy = ErrorPolicy::degrade;
  // No locking here: the pool serializes on_complete.
  options.on_complete = [&](std::size_t index, const TaskReport& report) {
    seen[index] = true;
    if (report.outcome == TaskOutcome::failed) ++failed;
  };
  const ParallelReport report = run_parallel(std::move(tasks), options);
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_TRUE(seen[i]) << i;
  EXPECT_EQ(failed, report.failures);
  EXPECT_EQ(failed, 8u);  // i = 0, 7, 14, ..., 49
}

TEST(Parallel, OnCompleteExceptionAbortsRun) {
  std::vector<ParallelTask> tasks;
  tasks.push_back({"fine", [] {}, false});
  ParallelOptions options;
  options.threads = 1;
  options.policy = ErrorPolicy::degrade;
  options.on_complete = [](std::size_t, const TaskReport&) {
    throw Error("callback bug");
  };
  try {
    (void)run_parallel(std::move(tasks), options);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("callback"), std::string::npos);
  }
}

}  // namespace
}  // namespace hms::sim
