// Ablation A4: hardware prefetching at the L4/DRAM-cache level. The paper
// models no prefetching; this bounds how much a next-line or stride
// prefetcher in the DRAM cache would change the NMM picture (prefetching
// into the page cache trades extra NVM read traffic for latency).
//
// One runner captures the fronts; per-variant factories supply the backs.
#include <iostream>

#include "bench_common.hpp"
#include "hms/designs/configs.hpp"

int main() {
  using namespace hms;
  const auto cfg = bench::config_from_env();
  const auto nvm = bench::nvm_from_env();
  bench::print_banner("Ablation A4: DRAM-cache prefetching (NMM N6)", cfg);

  sim::ExperimentRunner runner(cfg);
  const auto& n6 = designs::n_config("N6");

  using Kind = cache::PrefetcherConfig::Kind;
  struct Variant {
    const char* name;
    cache::PrefetcherConfig pf;
  };
  const Variant variants[] = {
      {"none", {}},
      {"next-line x1", {Kind::NextLine, 1}},
      {"next-line x4", {Kind::NextLine, 4}},
      {"stride x2", {Kind::Stride, 2}},
  };

  TextTable table({"prefetcher", "norm-runtime", "norm-dynamic",
                   "norm-energy", "norm-EDP"});
  for (const auto& variant : variants) {
    designs::DesignOptions options = cfg.design_options;
    options.l4_prefetch = variant.pf;
    designs::DesignFactory factory(cfg.scale_divisor,
                                   mem::TechnologyRegistry::table1(),
                                   options);
    double runtime = 0, dynamic = 0, energy = 0, edp = 0;
    for (const auto& workload : runner.suite()) {
      auto back = factory.nvm_main_memory_back(
          n6, nvm, runner.front(workload).footprint_bytes);
      const auto r = runner.evaluate_back("N6", workload, *back);
      runtime += r.normalized.runtime;
      dynamic += r.normalized.dynamic;
      energy += r.normalized.total_energy;
      edp += r.normalized.edp;
    }
    const double n = static_cast<double>(runner.suite().size());
    table.add_row({variant.name, fmt_fixed(runtime / n),
                   fmt_fixed(dynamic / n), fmt_fixed(energy / n),
                   fmt_fixed(edp / n)});
  }
  table.render(std::cout);
  std::cout << "\n(prefetch fills are free of demand latency at the DRAM "
               "cache but are charged as NVM reads; useless prefetches "
               "therefore show up as dynamic-energy growth)\n";
  return 0;
}
