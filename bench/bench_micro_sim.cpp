// Simulator-throughput harness with machine-readable output.
//
// Measures accesses/sec of the hot simulation paths — single-cache access
// per replacement policy and sector mode, full-hierarchy access per level
// count, and residual-stream replay — and writes BENCH_micro_sim.json so
// the perf trajectory of the engine is tracked run over run.
//
// Each config replays a deterministic access stream and reports the best
// repetition (least interference). A per-config stats checksum folds every
// simulated counter into one value: engine refactors must leave every
// checksum bit-identical while moving accesses/sec.
//
// Knobs:
//   HMS_BENCH_ACCESSES  accesses per timed repetition (default 4194304)
//   HMS_BENCH_REPS      repetitions per config; best is kept (default 3)
//   HMS_BENCH_OUT       JSON output path (default BENCH_micro_sim.json)
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "hms/cache/hierarchy.hpp"
#include "hms/cache/set_assoc_cache.hpp"
#include "hms/common/random.hpp"
#include "hms/designs/design.hpp"
#include "hms/mem/memory_device.hpp"
#include "hms/mem/technology.hpp"
#include "hms/sim/simulator.hpp"
#include "hms/trace/trace_buffer.hpp"

namespace {

using namespace hms;

struct BenchResult {
  std::string name;
  std::string policy;
  int levels = 0;            ///< simulated cache levels (0 = single cache)
  std::uint64_t sector_bytes = 0;
  bool batched = false;      ///< driven through the batch/replay path
  std::uint64_t accesses = 0;
  double best_seconds = 0.0;
  double accesses_per_sec = 0.0;
  std::uint64_t stats_checksum = 0;
};

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t checksum_stats(const cache::CacheStats& s) {
  std::uint64_t h = 0;
  h = mix(h, s.load_hits);
  h = mix(h, s.load_misses);
  h = mix(h, s.store_hits);
  h = mix(h, s.store_misses);
  h = mix(h, s.evictions);
  h = mix(h, s.writebacks);
  h = mix(h, s.prefetch_fills);
  h = mix(h, s.prefetch_useful);
  return h;
}

std::uint64_t checksum_profile(const cache::HierarchyProfile& p) {
  std::uint64_t h = mix(0, p.references);
  for (const auto& level : p.levels) {
    h = mix(h, level.loads);
    h = mix(h, level.stores);
    h = mix(h, level.load_bytes);
    h = mix(h, level.store_bytes);
    if (level.is_cache) h = mix(h, checksum_stats(level.cache_stats));
  }
  return h;
}

/// Deterministic load/store ring the timed loops cycle through.
std::vector<trace::MemoryAccess> make_stream(std::uint64_t seed,
                                             Address space,
                                             double store_fraction) {
  Xoshiro256 rng(seed);
  std::vector<trace::MemoryAccess> out(std::size_t{1} << 16);
  for (auto& a : out) {
    a = trace::MemoryAccess{rng.below(space) & ~7ull, 8,
                            rng.chance(store_fraction) ? AccessType::Store
                                                       : AccessType::Load,
                            0};
  }
  return out;
}

/// Times `run(accesses)` over `reps` repetitions; keeps the fastest.
template <typename Run>
BenchResult time_config(BenchResult base, std::uint64_t accesses, int reps,
                        const Run& run) {
  base.accesses = accesses;
  base.best_seconds = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    const std::uint64_t checksum = run(accesses);
    const auto stop = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(stop - start).count();
    if (base.best_seconds == 0.0 || seconds < base.best_seconds) {
      base.best_seconds = seconds;
    }
    if (r == 0) {
      base.stats_checksum = checksum;
    } else if (base.stats_checksum != checksum) {
      std::cerr << "ERROR: " << base.name
                << ": stats checksum varies across repetitions\n";
      std::exit(1);
    }
  }
  base.accesses_per_sec =
      static_cast<double>(accesses) / base.best_seconds;
  return base;
}

cache::CacheConfig cache_config(cache::PolicyKind policy,
                                std::uint64_t sector_bytes) {
  cache::CacheConfig cfg;
  cfg.name = "bench";
  cfg.line_bytes = sector_bytes != 0 ? 1024 : 64;
  cfg.associativity = 8;
  cfg.capacity_bytes = cfg.line_bytes * 8 * 256;  // 256 sets
  cfg.policy = policy;
  cfg.sector_bytes = sector_bytes;
  return cfg;
}

/// Single-cache throughput: policy updates and tag probes dominate.
BenchResult bench_cache(cache::PolicyKind policy, std::uint64_t sector_bytes,
                        std::uint64_t accesses, int reps) {
  const auto cfg = cache_config(policy, sector_bytes);
  // 4x capacity: a mixed hit/miss regime exercising victim selection.
  const auto stream = make_stream(42, cfg.capacity_bytes * 4, 0.3);
  BenchResult r;
  r.name = std::string("cache_") + std::string(cache::to_string(policy)) +
           (sector_bytes != 0 ? "_sector" + std::to_string(sector_bytes)
                              : "");
  r.policy = cache::to_string(policy);
  r.sector_bytes = sector_bytes;
  return time_config(std::move(r), accesses, reps, [&](std::uint64_t n) {
    cache::SetAssocCache c(cfg);
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto& a = stream[i & 0xffff];
      (void)c.access(a.address, a.size, a.type);
    }
    return checksum_stats(c.stats());
  });
}

std::vector<cache::CacheLevelSpec> hierarchy_levels(int levels,
                                                    cache::PolicyKind policy) {
  using namespace hms::literals;
  std::vector<cache::CacheLevelSpec> specs;
  const std::uint64_t capacities[] = {32_KiB, 256_KiB, 2_MiB};
  const std::uint32_t ways[] = {8, 8, 16};
  const char* names[] = {"L1", "L2", "L3"};
  for (int i = 0; i < levels; ++i) {
    cache::CacheLevelSpec spec;
    spec.cache.name = names[i];
    spec.cache.capacity_bytes = capacities[i];
    spec.cache.line_bytes = 64;
    spec.cache.associativity = ways[i];
    spec.cache.policy = policy;
    spec.tech = mem::sram_level(i + 1).as_params();
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::unique_ptr<cache::MemoryHierarchy> make_hierarchy(
    int levels, cache::PolicyKind policy) {
  using namespace hms::literals;
  mem::MemoryDeviceConfig dev;
  dev.name = "DRAM";
  dev.technology =
      mem::TechnologyRegistry::table1().get(mem::Technology::DRAM);
  dev.capacity_bytes = 64_MiB;
  dev.line_bytes = 256;
  return std::make_unique<cache::MemoryHierarchy>(
      hierarchy_levels(levels, policy),
      std::make_unique<cache::SingleMemoryBackend>(dev));
}

/// Full-hierarchy throughput via the per-access AccessSink path.
/// `footprint` picks the regime: larger than the last level = miss-heavy
/// (host-memory-latency bound), fitting the last level = locality regime
/// (kernel-compute bound, the representative case for the paper's
/// workloads).
BenchResult bench_hierarchy(int levels, cache::PolicyKind policy,
                            std::uint64_t footprint, const char* suffix,
                            std::uint64_t accesses, int reps) {
  const auto stream = make_stream(7, footprint, 0.3);
  BenchResult r;
  r.name = "hier_" + std::string(cache::to_string(policy)) + "_l" +
           std::to_string(levels) + suffix;
  r.policy = cache::to_string(policy);
  r.levels = levels;
  return time_config(std::move(r), accesses, reps, [&](std::uint64_t n) {
    auto h = make_hierarchy(levels, policy);
    for (std::uint64_t i = 0; i < n; ++i) {
      h->access(stream[i & 0xffff]);
    }
    return checksum_profile(h->profile());
  });
}

/// Full-hierarchy throughput via TraceBuffer::replay (the sweep fast path).
BenchResult bench_replay(int levels, cache::PolicyKind policy,
                         std::uint64_t footprint, const char* suffix,
                         std::uint64_t accesses, int reps) {
  trace::TraceBuffer buffer(make_stream(7, footprint, 0.3));
  BenchResult r;
  r.name = "replay_" + std::string(cache::to_string(policy)) + "_l" +
           std::to_string(levels) + suffix;
  r.policy = cache::to_string(policy);
  r.levels = levels;
  r.batched = true;
  return time_config(std::move(r), accesses, reps, [&](std::uint64_t n) {
    auto h = make_hierarchy(levels, policy);
    const std::uint64_t rounds = n / buffer.size();
    for (std::uint64_t i = 0; i < rounds; ++i) buffer.replay(*h);
    return checksum_profile(h->profile());
  });
}

/// End-to-end sweep cell: residual capture replayed into an NMM back.
BenchResult bench_replay_back(std::uint64_t accesses, int reps) {
  designs::DesignFactory factory(256);
  const auto capture = sim::capture_front(
      "CG", workloads::WorkloadParams{2ull << 20, 42, 1}, factory);
  BenchResult r;
  r.name = "replay_back_N6_PCM";
  r.policy = "LRU";
  r.levels = 1;
  r.batched = true;
  const std::uint64_t per_round = capture.residual.size();
  const std::uint64_t rounds =
      std::max<std::uint64_t>(1, accesses / std::max<std::uint64_t>(
                                                per_round, 1));
  return time_config(std::move(r), rounds * per_round, reps,
                     [&](std::uint64_t) {
                       std::uint64_t checksum = 0;
                       for (std::uint64_t i = 0; i < rounds; ++i) {
                         auto back = factory.nvm_main_memory_back(
                             designs::n_config("N6"), mem::Technology::PCM,
                             capture.footprint_bytes);
                         checksum =
                             mix(checksum, checksum_profile(
                                               sim::replay_back(capture,
                                                                *back)));
                       }
                       return checksum;
                     });
}

void write_json(const std::string& path, std::uint64_t accesses, int reps,
                bool optimized, const std::vector<BenchResult>& results) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "ERROR: cannot write " << path << "\n";
    std::exit(1);
  }
  out << "{\n"
      << "  \"bench\": \"micro_sim\",\n"
      << "  \"schema_version\": 1,\n"
      << "  \"optimized\": " << (optimized ? "true" : "false") << ",\n"
      << "  \"accesses_per_rep\": " << accesses << ",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    out << "    {\"name\": \"" << r.name << "\", \"policy\": \"" << r.policy
        << "\", \"levels\": " << r.levels
        << ", \"sector_bytes\": " << r.sector_bytes
        << ", \"batched\": " << (r.batched ? "true" : "false")
        << ", \"accesses\": " << r.accesses << ", \"best_seconds\": "
        << std::setprecision(6) << r.best_seconds
        << ", \"accesses_per_sec\": " << std::setprecision(8)
        << r.accesses_per_sec << ", \"stats_checksum\": \""
        << std::hex << r.stats_checksum << std::dec << "\"}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main() {
  const std::uint64_t accesses =
      hms::bench::env_u64("HMS_BENCH_ACCESSES", 1ull << 22);
  const int reps =
      static_cast<int>(hms::bench::env_u64("HMS_BENCH_REPS", 3));
  const std::string out_path =
      hms::bench::env_str("HMS_BENCH_OUT", "BENCH_micro_sim.json");
#ifdef NDEBUG
  const bool optimized = true;
#else
  const bool optimized = false;
  std::cerr << "*** WARNING: bench_micro_sim built without optimization "
               "(NDEBUG unset) — throughput numbers are meaningless. "
               "Configure with -DCMAKE_BUILD_TYPE=Release. ***\n";
#endif

  std::cout << "== micro_sim throughput ==\n"
            << "accesses/rep " << accesses << ", reps " << reps << "\n\n";

  std::vector<BenchResult> results;
  for (auto policy :
       {cache::PolicyKind::LRU, cache::PolicyKind::TreePLRU,
        cache::PolicyKind::FIFO, cache::PolicyKind::Random,
        cache::PolicyKind::SRRIP}) {
    results.push_back(bench_cache(policy, 0, accesses, reps));
  }
  results.push_back(bench_cache(cache::PolicyKind::LRU, 64, accesses, reps));
  {
    using namespace hms::literals;
    // Miss-heavy regime: footprint 4x the last-level capacity.
    for (int levels : {1, 2, 3}) {
      results.push_back(bench_hierarchy(levels, cache::PolicyKind::LRU,
                                        8_MiB, "", accesses, reps));
    }
    results.push_back(bench_replay(3, cache::PolicyKind::LRU, 8_MiB, "",
                                   accesses, reps));
    // Locality regime: footprint fits the simulated L3.
    results.push_back(bench_hierarchy(3, cache::PolicyKind::LRU, 1536_KiB,
                                      "_hot", accesses, reps));
    results.push_back(bench_replay(3, cache::PolicyKind::LRU, 1536_KiB,
                                   "_hot", accesses, reps));
  }
  results.push_back(bench_replay_back(accesses, reps));

  std::cout << std::left << std::setw(24) << "config" << std::right
            << std::setw(14) << "Maccesses/s" << std::setw(12) << "seconds"
            << std::setw(20) << "stats checksum" << "\n";
  for (const auto& r : results) {
    std::cout << std::left << std::setw(24) << r.name << std::right
              << std::setw(14) << std::fixed << std::setprecision(2)
              << r.accesses_per_sec / 1e6 << std::setw(12)
              << std::setprecision(4) << r.best_seconds << std::setw(20)
              << std::hex << r.stats_checksum << std::dec << "\n";
    std::cout.unsetf(std::ios::fixed);
  }

  write_json(out_path, accesses, reps, optimized, results);
  std::cout << "\n(JSON written to " << out_path << ")\n";
  return 0;
}
