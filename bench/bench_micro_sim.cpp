// Simulator-throughput harness with machine-readable output.
//
// Measures accesses/sec of the hot simulation paths — single-cache access
// per replacement policy and sector mode, full-hierarchy access per level
// count, residual-stream replay (flat and chunk-encoded), and chunk-major
// multi-config replay — and writes BENCH_micro_sim.json so the perf
// trajectory of the engine is tracked run over run. Since schema v2 the
// JSON also records host provenance (CPU model, SIMD dispatch taken,
// compiler) and the residual trace's compression ratio; schema v3 adds a
// "parallel" block with the sharded sweep engine's thread-scaling curve
// (1/2/4/8 workers over a multi-config grid, speedup vs 1 thread, with the
// grid checksum asserted identical at every thread count); schema v4 adds a
// "sampling" block: full vs SimPoint-sampled replay of a phased residual
// capture at 4x the parallel grid's footprint, with the wall-clock speedup
// and the estimation error vs exact replay (DRAM-cache miss rate, NVM
// traffic). At the default size and above the block is gated: speedup
// >= 5x, miss-rate error <= 2%, traffic error <= 5%. Schema v5 adds a
// "warmup" block covering the sweep warm-up pipeline: serial vs
// thread-per-workload front capture over a 4-workload pool, plus the
// persistent trace store's cold (simulate + append) vs warm (CRC-checked
// load) capture of CG — all checksummed, with the warm-load speedup gated
// >= 3x at the default size on optimized builds.
//
// Each config replays a deterministic access stream and reports the best
// repetition (least interference). A per-config stats checksum folds every
// simulated counter into one value: engine refactors must leave every
// checksum bit-identical while moving accesses/sec. The multi_replay pair
// additionally cross-checks flat vs chunk-major checksums in-process.
//
// Knobs:
//   HMS_BENCH_ACCESSES  accesses per timed repetition (default 4194304)
//   HMS_BENCH_REPS      repetitions per config; best is kept (default 3)
//   HMS_BENCH_OUT       JSON output path (default BENCH_micro_sim.json)
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "hms/common/error.hpp"
#include "hms/cache/hierarchy.hpp"
#include "hms/cache/set_assoc_cache.hpp"
#include "hms/common/random.hpp"
#include "hms/designs/design.hpp"
#include "hms/mem/memory_device.hpp"
#include "hms/mem/technology.hpp"
#include "hms/sim/sampling.hpp"
#include "hms/sim/sharded_sweep.hpp"
#include "hms/sim/simulator.hpp"
#include "hms/trace/chunked_trace.hpp"
#include "hms/trace/interval_profile.hpp"
#include "hms/trace/trace_buffer.hpp"
#include "hms/trace/trace_store.hpp"

namespace {

using namespace hms;

struct BenchResult {
  std::string name;
  std::string policy;
  int levels = 0;            ///< simulated cache levels (0 = single cache)
  std::uint64_t sector_bytes = 0;
  bool batched = false;      ///< driven through the batch/replay path
  bool encoded = false;      ///< stream stored as a ChunkedTraceBuffer
  int backs = 0;             ///< back hierarchies fed per pass (multi_replay)
  std::uint64_t accesses = 0;
  double best_seconds = 0.0;
  double accesses_per_sec = 0.0;
  std::uint64_t stats_checksum = 0;
};

/// Resident-footprint comparison of one real residual capture: the flat
/// 16 B/access buffer vs the chunk-encoded form actually held by sweeps.
struct ResidualFootprint {
  std::string workload;
  std::uint64_t accesses = 0;
  std::uint64_t flat_bytes = 0;
  std::uint64_t resident_bytes = 0;
  std::uint64_t chunks = 0;
  double ratio = 0.0;
};

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t checksum_stats(const cache::CacheStats& s) {
  std::uint64_t h = 0;
  h = mix(h, s.load_hits);
  h = mix(h, s.load_misses);
  h = mix(h, s.store_hits);
  h = mix(h, s.store_misses);
  h = mix(h, s.evictions);
  h = mix(h, s.writebacks);
  h = mix(h, s.prefetch_fills);
  h = mix(h, s.prefetch_useful);
  return h;
}

std::uint64_t checksum_profile(const cache::HierarchyProfile& p) {
  std::uint64_t h = mix(0, p.references);
  for (const auto& level : p.levels) {
    h = mix(h, level.loads);
    h = mix(h, level.stores);
    h = mix(h, level.load_bytes);
    h = mix(h, level.store_bytes);
    if (level.is_cache) h = mix(h, checksum_stats(level.cache_stats));
  }
  return h;
}

/// Deterministic load/store ring the timed loops cycle through.
std::vector<trace::MemoryAccess> make_stream(std::uint64_t seed,
                                             Address space,
                                             double store_fraction) {
  Xoshiro256 rng(seed);
  std::vector<trace::MemoryAccess> out(std::size_t{1} << 16);
  for (auto& a : out) {
    a = trace::MemoryAccess{rng.below(space) & ~7ull, 8,
                            rng.chance(store_fraction) ? AccessType::Store
                                                       : AccessType::Load,
                            0};
  }
  return out;
}

/// Times `run(accesses)` over `reps` repetitions; keeps the fastest.
template <typename Run>
BenchResult time_config(BenchResult base, std::uint64_t accesses, int reps,
                        const Run& run) {
  base.accesses = accesses;
  base.best_seconds = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    const std::uint64_t checksum = run(accesses);
    const auto stop = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(stop - start).count();
    if (base.best_seconds == 0.0 || seconds < base.best_seconds) {
      base.best_seconds = seconds;
    }
    if (r == 0) {
      base.stats_checksum = checksum;
    } else if (base.stats_checksum != checksum) {
      std::cerr << "ERROR: " << base.name
                << ": stats checksum varies across repetitions\n";
      std::exit(1);
    }
  }
  base.accesses_per_sec =
      static_cast<double>(accesses) / base.best_seconds;
  return base;
}

cache::CacheConfig cache_config(cache::PolicyKind policy,
                                std::uint64_t sector_bytes) {
  cache::CacheConfig cfg;
  cfg.name = "bench";
  cfg.line_bytes = sector_bytes != 0 ? 1024 : 64;
  cfg.associativity = 8;
  cfg.capacity_bytes = cfg.line_bytes * 8 * 256;  // 256 sets
  cfg.policy = policy;
  cfg.sector_bytes = sector_bytes;
  return cfg;
}

/// Single-cache throughput: policy updates and tag probes dominate.
BenchResult bench_cache(cache::PolicyKind policy, std::uint64_t sector_bytes,
                        std::uint64_t accesses, int reps) {
  const auto cfg = cache_config(policy, sector_bytes);
  // 4x capacity: a mixed hit/miss regime exercising victim selection.
  const auto stream = make_stream(42, cfg.capacity_bytes * 4, 0.3);
  BenchResult r;
  r.name = std::string("cache_") + std::string(cache::to_string(policy)) +
           (sector_bytes != 0 ? "_sector" + std::to_string(sector_bytes)
                              : "");
  r.policy = cache::to_string(policy);
  r.sector_bytes = sector_bytes;
  return time_config(std::move(r), accesses, reps, [&](std::uint64_t n) {
    cache::SetAssocCache c(cfg);
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto& a = stream[i & 0xffff];
      (void)c.access(a.address, a.size, a.type);
    }
    return checksum_stats(c.stats());
  });
}

std::vector<cache::CacheLevelSpec> hierarchy_levels(int levels,
                                                    cache::PolicyKind policy) {
  using namespace hms::literals;
  std::vector<cache::CacheLevelSpec> specs;
  const std::uint64_t capacities[] = {32_KiB, 256_KiB, 2_MiB};
  const std::uint32_t ways[] = {8, 8, 16};
  const char* names[] = {"L1", "L2", "L3"};
  for (int i = 0; i < levels; ++i) {
    cache::CacheLevelSpec spec;
    spec.cache.name = names[i];
    spec.cache.capacity_bytes = capacities[i];
    spec.cache.line_bytes = 64;
    spec.cache.associativity = ways[i];
    spec.cache.policy = policy;
    spec.tech = mem::sram_level(i + 1).as_params();
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::unique_ptr<cache::MemoryHierarchy> make_hierarchy(
    int levels, cache::PolicyKind policy) {
  using namespace hms::literals;
  mem::MemoryDeviceConfig dev;
  dev.name = "DRAM";
  dev.technology =
      mem::TechnologyRegistry::table1().get(mem::Technology::DRAM);
  dev.capacity_bytes = 64_MiB;
  dev.line_bytes = 256;
  return std::make_unique<cache::MemoryHierarchy>(
      hierarchy_levels(levels, policy),
      std::make_unique<cache::SingleMemoryBackend>(dev));
}

/// Full-hierarchy throughput via the per-access AccessSink path.
/// `footprint` picks the regime: larger than the last level = miss-heavy
/// (host-memory-latency bound), fitting the last level = locality regime
/// (kernel-compute bound, the representative case for the paper's
/// workloads).
BenchResult bench_hierarchy(int levels, cache::PolicyKind policy,
                            std::uint64_t footprint, const char* suffix,
                            std::uint64_t accesses, int reps) {
  const auto stream = make_stream(7, footprint, 0.3);
  BenchResult r;
  r.name = "hier_" + std::string(cache::to_string(policy)) + "_l" +
           std::to_string(levels) + suffix;
  r.policy = cache::to_string(policy);
  r.levels = levels;
  return time_config(std::move(r), accesses, reps, [&](std::uint64_t n) {
    auto h = make_hierarchy(levels, policy);
    for (std::uint64_t i = 0; i < n; ++i) {
      h->access(stream[i & 0xffff]);
    }
    return checksum_profile(h->profile());
  });
}

/// Full-hierarchy throughput via TraceBuffer::replay (the sweep fast path).
BenchResult bench_replay(int levels, cache::PolicyKind policy,
                         std::uint64_t footprint, const char* suffix,
                         std::uint64_t accesses, int reps) {
  trace::TraceBuffer buffer(make_stream(7, footprint, 0.3));
  BenchResult r;
  r.name = "replay_" + std::string(cache::to_string(policy)) + "_l" +
           std::to_string(levels) + suffix;
  r.policy = cache::to_string(policy);
  r.levels = levels;
  r.batched = true;
  return time_config(std::move(r), accesses, reps, [&](std::uint64_t n) {
    auto h = make_hierarchy(levels, policy);
    const std::uint64_t rounds = n / buffer.size();
    for (std::uint64_t i = 0; i < rounds; ++i) buffer.replay(*h);
    return checksum_profile(h->profile());
  });
}

/// Full-hierarchy throughput via ChunkedTraceBuffer::replay: the same
/// stream as bench_replay, but stored chunk-encoded and decoded per chunk
/// into an L2-resident scratch batch. Checksums must match the flat
/// variant's bit for bit.
BenchResult bench_replay_enc(int levels, cache::PolicyKind policy,
                             std::uint64_t footprint, const char* suffix,
                             std::uint64_t accesses, int reps) {
  const auto stream = make_stream(7, footprint, 0.3);
  trace::ChunkedTraceBuffer buffer{
      std::span<const trace::MemoryAccess>(stream)};
  BenchResult r;
  r.name = "replay_enc_" + std::string(cache::to_string(policy)) + "_l" +
           std::to_string(levels) + suffix;
  r.policy = cache::to_string(policy);
  r.levels = levels;
  r.batched = true;
  r.encoded = true;
  return time_config(std::move(r), accesses, reps, [&](std::uint64_t n) {
    auto h = make_hierarchy(levels, policy);
    const std::uint64_t rounds = n / buffer.size();
    for (std::uint64_t i = 0; i < rounds; ++i) buffer.replay(*h);
    return checksum_profile(h->profile());
  });
}

/// Deterministic residual-shaped stream: line-aligned 64 B transactions,
/// mostly the next sequential line with occasional far jumps — the shape a
/// capture's post-L3 stream actually has. Unlike make_stream's 64 Ki ring,
/// every record is materialized, so a flat replay genuinely streams
/// count x 16 bytes from host memory.
std::vector<trace::MemoryAccess> make_residual_stream(std::uint64_t count,
                                                      Address space,
                                                      std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<trace::MemoryAccess> out(static_cast<std::size_t>(count));
  Address line = 0;
  for (auto& a : out) {
    line = rng.chance(0.85) ? (line + 64) % space : rng.below(space) & ~63ull;
    a = trace::MemoryAccess{line, 64,
                            rng.chance(0.3) ? AccessType::Store
                                            : AccessType::Load,
                            0};
  }
  return out;
}

/// The sweep's inner grid, isolated: one residual stream replayed into
/// `n_backs` NMM design backs. `chunked` selects chunk-major replay
/// (sim::replay_back_many — decode each chunk once, feed every back) vs the
/// flat config-major baseline (full 16 B/access buffer re-streamed per
/// back). Reported accesses/sec is the aggregate across backs; checksums of
/// the two variants must match bit for bit.
BenchResult bench_multi_replay(bool chunked, int n_backs,
                               const std::vector<trace::MemoryAccess>& stream,
                               std::uint64_t space, int reps) {
  designs::DesignFactory factory(256);
  const auto& configs = designs::n_configs();
  const auto n = static_cast<std::size_t>(n_backs);
  check(configs.size() >= n, "bench: not enough N configs");

  sim::FrontCapture capture;  // synthetic: empty front, known residual
  capture.workload_name = "synthetic";
  capture.footprint_bytes = space;
  capture.residual.reserve(stream.size());
  capture.residual.access_batch(stream);
  capture.residual.shrink_to_fit();
  trace::TraceBuffer flat{std::vector<trace::MemoryAccess>(stream)};

  BenchResult r;
  r.name = std::string("multi_replay_") + (chunked ? "chunk" : "flat") +
           "_b" + std::to_string(n_backs);
  r.policy = "LRU";
  r.levels = 1;
  r.batched = true;
  r.encoded = chunked;
  r.backs = n_backs;
  const std::uint64_t aggregate = stream.size() * n;
  return time_config(std::move(r), aggregate, reps, [&](std::uint64_t) {
    std::vector<std::unique_ptr<cache::MemoryHierarchy>> owned;
    owned.reserve(n);
    for (std::size_t b = 0; b < n; ++b) {
      owned.push_back(factory.nvm_main_memory_back(
          configs[b], mem::Technology::PCM, space));
    }
    std::uint64_t checksum = 0;
    if (chunked) {
      std::vector<cache::MemoryHierarchy*> backs;
      backs.reserve(n);
      for (const auto& h : owned) backs.push_back(h.get());
      const auto outcomes = sim::replay_back_many(capture, backs);
      for (const auto& o : outcomes) {
        if (!o.ok) {
          std::cerr << "ERROR: multi_replay back failed: " << o.error << "\n";
          std::exit(1);
        }
        checksum = mix(checksum, checksum_profile(o.profile));
      }
    } else {
      for (const auto& h : owned) {
        flat.replay(*h);
        checksum = mix(checksum,
                       checksum_profile(cache::HierarchyProfile::combine(
                           capture.front_profile, h->profile())));
      }
    }
    return checksum;
  });
}

/// End-to-end sweep cell: residual capture replayed into an NMM back.
/// Also fills `footprint` with the capture's flat-vs-encoded residency.
BenchResult bench_replay_back(std::uint64_t accesses, int reps,
                              ResidualFootprint& footprint) {
  designs::DesignFactory factory(256);
  const auto capture = sim::capture_front(
      "CG", workloads::WorkloadParams{2ull << 20, 42, 1}, factory);
  footprint.workload = "CG";
  footprint.accesses = capture.residual.size();
  footprint.flat_bytes =
      capture.residual.size() * sizeof(trace::MemoryAccess);
  footprint.resident_bytes = capture.residual.resident_bytes();
  footprint.chunks = capture.residual.chunk_count();
  footprint.ratio = static_cast<double>(footprint.flat_bytes) /
                    static_cast<double>(footprint.resident_bytes);
  BenchResult r;
  r.name = "replay_back_N6_PCM";
  r.policy = "LRU";
  r.levels = 1;
  r.batched = true;
  r.encoded = true;  // captures store the residual chunk-encoded now
  const std::uint64_t per_round = capture.residual.size();
  const std::uint64_t rounds =
      std::max<std::uint64_t>(1, accesses / std::max<std::uint64_t>(
                                                per_round, 1));
  return time_config(std::move(r), rounds * per_round, reps,
                     [&](std::uint64_t) {
                       std::uint64_t checksum = 0;
                       for (std::uint64_t i = 0; i < rounds; ++i) {
                         auto back = factory.nvm_main_memory_back(
                             designs::n_config("N6"), mem::Technology::PCM,
                             capture.footprint_bytes);
                         checksum =
                             mix(checksum, checksum_profile(
                                               sim::replay_back(capture,
                                                                *back)));
                       }
                       return checksum;
                     });
}

/// Full-vs-sampled replay comparison of one large phased capture.
struct SamplingBench {
  std::uint64_t space_bytes = 0;  ///< capture address-space footprint
  std::uint64_t accesses = 0;     ///< residual records in the capture
  std::uint64_t chunks = 0;
  std::uint64_t sample_k = 0;
  std::uint64_t warmup_chunks = 0;
  std::uint64_t plan_steps = 0;  ///< chunks one sampled pass decodes
  std::uint64_t representatives = 0;
  double full_seconds = 0.0;
  double sampled_seconds = 0.0;  ///< includes plan construction
  double speedup = 0.0;
  double traffic_rel_err = 0.0;    ///< NVM-device accesses vs exact
  double miss_rate_rel_err = 0.0;  ///< DRAM-cache miss rate vs exact
  std::uint64_t full_checksum = 0;
  std::uint64_t sampled_checksum = 0;
};

/// Phased residual stream for the sampling block: behavior alternates
/// between a sequential line scan, a strided walk, and random accesses in a
/// sliding window, switching every ~3 chunks — enough regime structure that
/// clustering has something real to find.
std::vector<trace::MemoryAccess> make_phased_stream(std::uint64_t count,
                                                    Address space,
                                                    std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<trace::MemoryAccess> out(static_cast<std::size_t>(count));
  constexpr std::uint64_t kPhaseLen = 3 * (16u << 10);
  Address line = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t phase = (i / kPhaseLen) % 3;
    if (phase == 0) {
      line = (line + 64) % space;
    } else if (phase == 1) {
      line = (line + 64 * 33) % space;
    } else {
      const Address window = space / 8;
      const Address base = (i / kPhaseLen) * window % space;
      line = (base + (rng.below(window) & ~63ull)) % space;
    }
    out[i] = trace::MemoryAccess{line, 64,
                                 rng.chance(phase == 2 ? 0.5 : 0.2)
                                     ? AccessType::Store
                                     : AccessType::Load,
                                 0};
  }
  return out;
}

/// The SimPoint sampled-replay comparison (schema v4 "sampling" block): one
/// phased capture at `space` (4x the parallel grid's 2 MiB), replayed into
/// an NMM back exactly (every chunk) and via a sampled plan (representative
/// chunks + warming prefixes). Reports the wall-clock speedup and the
/// estimation error of the DRAM-cache miss rate and the NVM-device traffic.
/// `gated` turns the acceptance thresholds (speedup >= 5x, miss rate <= 2%,
/// traffic <= 5%) into hard failures — enabled at the default size and
/// above, where the capture is large enough for clusters to be
/// representative and timings are meaningful.
SamplingBench bench_sampling(std::uint64_t accesses, int reps, bool gated) {
  using namespace hms::literals;
  designs::DesignFactory factory(256);
  const Address space = 8_MiB;
  // At least 64 chunks even at smoke sizes, so the plan never degenerates;
  // doubled at full size so the schedule (k + warming) stays a small
  // fraction of the stream and the speedup target has headroom.
  const std::uint64_t count =
      2 * std::max<std::uint64_t>(accesses, std::uint64_t{1} << 19);

  sim::FrontCapture capture;  // synthetic: empty front, known residual
  capture.workload_name = "phased";
  capture.footprint_bytes = space;
  capture.residual.reserve(count);
  trace::IntervalProfile profile;
  capture.residual.attach_interval_profile(&profile);
  capture.residual.access_batch(make_phased_stream(count, space, 7));
  capture.residual.attach_interval_profile(nullptr);
  capture.residual.shrink_to_fit();

  SamplingBench b;
  b.space_bytes = space;
  b.accesses = capture.residual.access_count();
  b.chunks = capture.residual.chunk_count();
  b.sample_k = sim::default_sample_k();
  b.warmup_chunks = sim::default_warmup_chunks();

  const auto make_back = [&] {
    return factory.nvm_main_memory_back(designs::n_config("N6"),
                                        mem::Technology::PCM, space);
  };

  cache::HierarchyProfile exact, estimated;
  for (int r = 0; r < reps; ++r) {
    auto back = make_back();
    const auto start = std::chrono::steady_clock::now();
    exact = sim::replay_back(capture, *back);
    const auto stop = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(stop - start).count();
    if (b.full_seconds == 0.0 || seconds < b.full_seconds) {
      b.full_seconds = seconds;
    }
  }
  b.full_checksum = checksum_profile(exact);

  for (int r = 0; r < reps; ++r) {
    auto back = make_back();
    // Plan construction is inside the timed region: a real sweep builds it
    // once per workload, so the sampled path must win even carrying it.
    const auto start = std::chrono::steady_clock::now();
    const sim::SamplePlan plan = sim::build_sample_plan(
        capture.residual, profile, static_cast<std::uint32_t>(b.sample_k),
        static_cast<std::uint32_t>(b.warmup_chunks), 42);
    check(!plan.exact, "bench: sampling plan unexpectedly degenerate");
    estimated = sim::replay_back(capture, *back, &plan);
    const auto stop = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(stop - start).count();
    if (b.sampled_seconds == 0.0 || seconds < b.sampled_seconds) {
      b.sampled_seconds = seconds;
    }
    if (r == 0) {
      b.plan_steps = plan.steps.size();
      b.representatives = plan.reps.size();
      b.sampled_checksum = checksum_profile(estimated);
    } else if (b.sampled_checksum != checksum_profile(estimated)) {
      std::cerr << "ERROR: sampled replay checksum varies across reps\n";
      std::exit(1);
    }
  }
  b.speedup = b.full_seconds / b.sampled_seconds;

  // Estimation error: the DRAM cache's miss rate (level 0 — the metric the
  // paper's AMAT model keys on) and the NVM device's access traffic (last
  // level — the hardest quantity to estimate, since only misses reach it).
  const auto& e0 = exact.levels.front();
  const auto& s0 = estimated.levels.front();
  const auto& e1 = exact.levels.back();
  const auto& s1 = estimated.levels.back();
  const double e_miss = static_cast<double>(e0.cache_stats.load_misses +
                                            e0.cache_stats.store_misses) /
                        static_cast<double>(e0.loads + e0.stores);
  const double s_miss = static_cast<double>(s0.cache_stats.load_misses +
                                            s0.cache_stats.store_misses) /
                        static_cast<double>(s0.loads + s0.stores);
  const double e_traffic = static_cast<double>(e1.loads + e1.stores);
  const double s_traffic = static_cast<double>(s1.loads + s1.stores);
  b.miss_rate_rel_err = std::abs(s_miss - e_miss) / e_miss;
  b.traffic_rel_err = std::abs(s_traffic - e_traffic) / e_traffic;

  if (gated) {
    if (b.speedup < 5.0) {
      std::cerr << "ERROR: sampled replay speedup " << b.speedup
                << "x below the 5x target\n";
      std::exit(1);
    }
    if (b.miss_rate_rel_err > 0.02 || b.traffic_rel_err > 0.05) {
      std::cerr << "ERROR: sampled estimation error above bounds (miss rate "
                << b.miss_rate_rel_err << " vs 0.02, traffic "
                << b.traffic_rel_err << " vs 0.05)\n";
      std::exit(1);
    }
  }
  return b;
}

/// Sweep warm-up pipeline comparison (schema v5 "warmup" block).
struct WarmupBench {
  std::uint64_t pool = 0;            ///< workloads captured per warm pass
  unsigned parallel_threads = 0;     ///< one capture thread per workload
  double serial_seconds = 0.0;       ///< captures one after another
  double parallel_seconds = 0.0;     ///< same captures, pipelined
  double parallel_speedup = 0.0;
  std::uint64_t pool_checksum = 0;   ///< fold of every capture, suite order
  std::string store_workload;
  std::uint64_t store_entry_bytes = 0;
  double cold_capture_seconds = 0.0;  ///< store miss: simulate + append
  double warm_capture_seconds = 0.0;  ///< store hit: CRC-checked load
  double store_speedup = 0.0;
  std::uint64_t capture_checksum = 0;  ///< cold == warm, asserted in-process
};

/// Strong capture identity: the serialized residual and interval profile
/// (byte-exact encoder output) folded with the front hierarchy profile.
std::uint64_t checksum_capture(const sim::FrontCapture& c) {
  trace::Fnv1a h;
  h.mix(c.workload_name);
  h.mix(c.footprint_bytes);
  h.mix(checksum_profile(c.front_profile));
  std::string bytes;
  c.residual.serialize(bytes);
  h.mix(bytes);
  bytes.clear();
  c.interval_profile.serialize(bytes);
  h.mix(bytes);
  return h.digest();
}

/// The warm-up phase a sweep pays before its grid can start, isolated: a
/// pool of front captures run serially (the pre-pipeline baseline) vs one
/// thread per workload (what HMS_WARMUP_THREADS >= pool buys), then the
/// persistent trace store's cold-vs-warm capture of CG at the same
/// footprint bench_replay_back uses. Checksums must be bit-identical
/// serial vs parallel and cold vs warm; `gated` turns the warm-load
/// speedup target (>= 3x over a fresh capture) into a hard failure.
WarmupBench bench_warmup(int reps, bool gated) {
  designs::DesignFactory factory(256);
  const std::vector<std::string> pool = {"StreamTriad", "CG", "IS",
                                         "Hashing"};
  const workloads::WorkloadParams params{2ull << 20, 42, 1};

  WarmupBench b;
  b.pool = pool.size();
  b.parallel_threads = static_cast<unsigned>(pool.size());

  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    std::uint64_t sum = 0;
    for (const auto& name : pool) {
      sum = mix(sum, checksum_capture(sim::capture_front(name, params,
                                                         factory)));
    }
    const auto stop = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(stop - start).count();
    if (b.serial_seconds == 0.0 || seconds < b.serial_seconds) {
      b.serial_seconds = seconds;
    }
    if (r == 0) {
      b.pool_checksum = sum;
    } else if (b.pool_checksum != sum) {
      std::cerr << "ERROR: serial warm-up checksum varies across reps\n";
      std::exit(1);
    }
  }

  for (int r = 0; r < reps; ++r) {
    std::vector<std::uint64_t> sums(pool.size(), 0);
    std::vector<std::string> errors(pool.size());
    std::vector<std::thread> threads;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < pool.size(); ++i) {
      threads.emplace_back([&, i] {
        try {
          sums[i] = checksum_capture(sim::capture_front(pool[i], params,
                                                        factory));
        } catch (const std::exception& e) {
          errors[i] = e.what();
        }
      });
    }
    for (auto& t : threads) t.join();
    const auto stop = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (!errors[i].empty()) {
        std::cerr << "ERROR: parallel warm-up capture " << pool[i]
                  << " failed: " << errors[i] << "\n";
        std::exit(1);
      }
    }
    std::uint64_t sum = 0;
    for (const std::uint64_t s : sums) sum = mix(sum, s);
    if (b.pool_checksum != sum) {
      std::cerr << "ERROR: parallel warm-up checksum differs from serial\n";
      std::exit(1);
    }
    const double seconds = std::chrono::duration<double>(stop - start).count();
    if (b.parallel_seconds == 0.0 || seconds < b.parallel_seconds) {
      b.parallel_seconds = seconds;
    }
  }
  b.parallel_speedup = b.serial_seconds / b.parallel_seconds;

  // Persistent trace store: cold misses re-simulate and append; warm hits
  // decode the CRC-verified bytes. Entry removed before each cold rep so
  // every cold timing pays the full simulate + encode + fsync + rename.
  b.store_workload = "CG";
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("hms_bench_trace_store." + std::to_string(getpid())))
          .string();
  std::filesystem::remove_all(dir);
  {
    const trace::TraceStore store(dir);
    const std::uint64_t key = sim::capture_hash("CG", params, factory);
    for (int r = 0; r < reps; ++r) {
      std::filesystem::remove(store.entry_path(key));
      const auto start = std::chrono::steady_clock::now();
      const auto capture =
          sim::capture_front_cached("CG", params, factory, &store);
      const auto stop = std::chrono::steady_clock::now();
      const double seconds =
          std::chrono::duration<double>(stop - start).count();
      if (b.cold_capture_seconds == 0.0 ||
          seconds < b.cold_capture_seconds) {
        b.cold_capture_seconds = seconds;
      }
      const std::uint64_t sum = checksum_capture(capture);
      if (r == 0) {
        b.capture_checksum = sum;
      } else if (b.capture_checksum != sum) {
        std::cerr << "ERROR: cold capture checksum varies across reps\n";
        std::exit(1);
      }
    }
    std::error_code ec;
    b.store_entry_bytes = std::filesystem::file_size(store.entry_path(key),
                                                     ec);
    if (ec || b.store_entry_bytes == 0) {
      std::cerr << "ERROR: trace store entry missing after cold capture\n";
      std::exit(1);
    }
    for (int r = 0; r < reps; ++r) {
      const auto start = std::chrono::steady_clock::now();
      const auto capture =
          sim::capture_front_cached("CG", params, factory, &store);
      const auto stop = std::chrono::steady_clock::now();
      const double seconds =
          std::chrono::duration<double>(stop - start).count();
      if (b.warm_capture_seconds == 0.0 ||
          seconds < b.warm_capture_seconds) {
        b.warm_capture_seconds = seconds;
      }
      if (checksum_capture(capture) != b.capture_checksum) {
        std::cerr << "ERROR: warm store load differs from the fresh "
                     "capture\n";
        std::exit(1);
      }
    }
  }
  std::filesystem::remove_all(dir);
  b.store_speedup = b.cold_capture_seconds / b.warm_capture_seconds;

  if (gated && b.store_speedup < 3.0) {
    std::cerr << "ERROR: warm trace-store capture speedup " << b.store_speedup
              << "x below the 3x target\n";
    std::exit(1);
  }
  return b;
}

/// One point of the sharded engine's thread-scaling curve.
struct ParallelPoint {
  unsigned threads = 0;
  std::uint64_t accesses = 0;  ///< fed accesses per pass (grid aggregate)
  double best_seconds = 0.0;
  double accesses_per_sec = 0.0;
  double speedup = 1.0;  ///< vs the 1-thread point
  std::uint64_t stats_checksum = 0;
};

/// The sharded sweep engine over a synthetic multi-config grid at 1/2/4/8
/// worker threads, plus a chunk-major reference pass (replay_back_many per
/// workload, serial — the same grid and timed work, returned through
/// `chunk_ref`). The grid checksum is folded in fixed (config, workload)
/// order after each pass, so it must be bit-identical at every thread
/// count, across repetitions, and against the chunk-major reference — the
/// bench doubles as a determinism differential on the release build. At
/// non-smoke sizes the 1-thread point must stay within 5% of the
/// reference: the sharding machinery may not tax the serial case.
std::vector<ParallelPoint> bench_parallel_scaling(std::uint64_t accesses,
                                                  int reps,
                                                  std::size_t& grid_configs,
                                                  std::size_t& grid_workloads,
                                                  ParallelPoint& chunk_ref) {
  using namespace hms::literals;
  designs::DesignFactory factory(256);
  const auto& configs = designs::n_configs();
  const std::size_t n_configs = std::min<std::size_t>(configs.size(), 8);
  check(n_configs >= 6, "bench: not enough N configs for the parallel grid");
  constexpr std::size_t kWorkloads = 2;
  const Address space = 2_MiB;
  grid_configs = n_configs;
  grid_workloads = kWorkloads;

  // Per-workload stream sized so one pass feeds roughly `accesses` records
  // per thread-count point in aggregate across the grid.
  const std::uint64_t per_stream = std::max<std::uint64_t>(
      accesses / (n_configs * kWorkloads), std::uint64_t{1} << 14);
  std::vector<sim::FrontCapture> captures(kWorkloads);
  for (std::size_t w = 0; w < kWorkloads; ++w) {
    const auto stream = make_residual_stream(per_stream, space, 101 + w);
    captures[w].workload_name = "synthetic" + std::to_string(w);
    captures[w].footprint_bytes = space;
    captures[w].residual.reserve(stream.size());
    captures[w].residual.access_batch(stream);
    captures[w].residual.shrink_to_fit();
  }

  // Chunk-major reference: the identical grid driven by replay_back_many,
  // one workload at a time on one thread, back construction included in
  // the timed region exactly like the sharded passes below.
  chunk_ref = ParallelPoint{};
  chunk_ref.threads = 1;
  chunk_ref.accesses = per_stream * n_configs * kWorkloads;
  for (int r = 0; r < reps; ++r) {
    std::vector<std::uint64_t> cell_sums(n_configs * kWorkloads, 0);
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t w = 0; w < kWorkloads; ++w) {
      std::vector<std::unique_ptr<cache::MemoryHierarchy>> owned;
      std::vector<cache::MemoryHierarchy*> backs;
      for (std::size_t b = 0; b < n_configs; ++b) {
        owned.push_back(factory.nvm_main_memory_back(
            configs[b], mem::Technology::PCM, space));
        backs.push_back(owned.back().get());
      }
      const auto outcomes = sim::replay_back_many(captures[w], backs);
      for (std::size_t b = 0; b < n_configs; ++b) {
        if (!outcomes[b].ok) {
          std::cerr << "ERROR: chunk_ref back failed: " << outcomes[b].error
                    << "\n";
          std::exit(1);
        }
        cell_sums[b * kWorkloads + w] = checksum_profile(outcomes[b].profile);
      }
    }
    const auto stop = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(stop - start).count();
    std::uint64_t checksum = 0;
    for (const std::uint64_t sum : cell_sums) checksum = mix(checksum, sum);
    if (chunk_ref.best_seconds == 0.0 || seconds < chunk_ref.best_seconds) {
      chunk_ref.best_seconds = seconds;
    }
    chunk_ref.stats_checksum = checksum;
  }
  chunk_ref.accesses_per_sec =
      static_cast<double>(chunk_ref.accesses) / chunk_ref.best_seconds;

  std::vector<ParallelPoint> points;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    ParallelPoint p;
    p.threads = threads;
    p.accesses = per_stream * n_configs * kWorkloads;
    for (int r = 0; r < reps; ++r) {
      std::vector<std::uint64_t> cell_sums(n_configs * kWorkloads, 0);
      sim::ShardedSweepSpec spec;
      for (auto& capture : captures) spec.captures.push_back(&capture);
      spec.configs = n_configs;
      spec.threads = threads;
      spec.make_back = [&](std::size_t config, std::size_t) {
        return factory.nvm_main_memory_back(configs[config],
                                            mem::Technology::PCM, space);
      };
      spec.on_cell = [&](std::size_t config, std::size_t workload,
                         sim::ShardedCellOutcome&& out) {
        if (!out.ok) {
          std::cerr << "ERROR: parallel sweep cell failed: " << out.error
                    << "\n";
          std::exit(1);
        }
        cell_sums[config * kWorkloads + workload] =
            checksum_profile(out.profile);
      };

      const auto start = std::chrono::steady_clock::now();
      sim::run_sharded_sweep(spec);
      const auto stop = std::chrono::steady_clock::now();
      const double seconds =
          std::chrono::duration<double>(stop - start).count();
      std::uint64_t checksum = 0;
      for (const std::uint64_t sum : cell_sums) checksum = mix(checksum, sum);
      if (p.best_seconds == 0.0 || seconds < p.best_seconds) {
        p.best_seconds = seconds;
      }
      if (r == 0) {
        p.stats_checksum = checksum;
      } else if (p.stats_checksum != checksum) {
        std::cerr << "ERROR: parallel sweep checksum varies across reps at "
                  << threads << " threads\n";
        std::exit(1);
      }
    }
    p.accesses_per_sec = static_cast<double>(p.accesses) / p.best_seconds;
    if (!points.empty() && points.front().stats_checksum != p.stats_checksum) {
      std::cerr << "ERROR: parallel sweep checksum differs between 1 and "
                << threads << " threads\n";
      std::exit(1);
    }
    p.speedup = points.empty()
                    ? 1.0
                    : p.accesses_per_sec / points.front().accesses_per_sec;
    points.push_back(p);
  }
  if (points.front().stats_checksum != chunk_ref.stats_checksum) {
    std::cerr << "ERROR: sharded sweep checksum differs from the "
                 "chunk-major reference\n";
    std::exit(1);
  }
  // Serial-overhead gate, skipped at smoke sizes where per-pass times are
  // a few milliseconds and timer noise swamps a 5% band.
  if (accesses >= (std::uint64_t{1} << 20) &&
      points.front().accesses_per_sec < 0.95 * chunk_ref.accesses_per_sec) {
    std::cerr << "ERROR: sharded sweep at 1 thread is more than 5% slower "
                 "than the chunk-major reference on the same grid\n";
    std::exit(1);
  }
  return points;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // control chars
    out.push_back(c);
  }
  return out;
}

/// First "model name" line of /proc/cpuinfo, or "unknown".
std::string host_cpu_model() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("model name", 0) != 0) continue;
    const auto colon = line.find(':');
    if (colon == std::string::npos) break;
    auto value = line.substr(colon + 1);
    const auto first = value.find_first_not_of(" \t");
    return first == std::string::npos ? "unknown" : value.substr(first);
  }
  return "unknown";
}

std::string compiler_id() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

void write_json(const std::string& path, std::uint64_t accesses, int reps,
                bool optimized, const std::vector<BenchResult>& results,
                const ResidualFootprint& footprint,
                const std::vector<ParallelPoint>& parallel,
                const ParallelPoint& chunk_ref, std::size_t grid_configs,
                std::size_t grid_workloads, const SamplingBench& sampling,
                const WarmupBench& warmup) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "ERROR: cannot write " << path << "\n";
    std::exit(1);
  }
  out << "{\n"
      << "  \"bench\": \"micro_sim\",\n"
      << "  \"schema_version\": 5,\n"
      << "  \"optimized\": " << (optimized ? "true" : "false") << ",\n"
      // Host provenance: trajectory points are only comparable within the
      // same (cpu, simd dispatch, compiler) triple.
      << "  \"host\": {\"cpu\": \"" << json_escape(host_cpu_model())
      << "\", \"simd\": \""
      << (cache::avx512_kernel_active() ? "avx512" : "scalar")
      << "\", \"compiler\": \"" << json_escape(compiler_id()) << "\"},\n"
      << "  \"accesses_per_rep\": " << accesses << ",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"residual_footprint\": {\"workload\": \""
      << json_escape(footprint.workload)
      << "\", \"accesses\": " << footprint.accesses
      << ", \"flat_bytes\": " << footprint.flat_bytes
      << ", \"resident_bytes\": " << footprint.resident_bytes
      << ", \"chunks\": " << footprint.chunks
      << ", \"ratio\": " << std::setprecision(6) << footprint.ratio
      << "},\n"
      // Sharded engine thread-scaling curve (HMS_REPLAY_MODE=shard). Points
      // share one stats checksum: the grid result is thread-count-invariant.
      << "  \"parallel\": {\"engine\": \"sharded_sweep\", \"grid_configs\": "
      << grid_configs << ", \"grid_workloads\": " << grid_workloads
      // Chunk-major (replay_back_many) over the identical grid, serial:
      // the baseline the 1-thread point is gated against.
      << ",\n  \"chunk_ref\": {\"accesses\": " << chunk_ref.accesses
      << ", \"best_seconds\": " << std::setprecision(6)
      << chunk_ref.best_seconds << ", \"accesses_per_sec\": "
      << std::setprecision(8) << chunk_ref.accesses_per_sec
      << ", \"stats_checksum\": \"" << std::hex << chunk_ref.stats_checksum
      << std::dec << "\"},\n"
      << "  \"points\": [\n";
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    const auto& p = parallel[i];
    out << "    {\"threads\": " << p.threads
        << ", \"accesses\": " << p.accesses
        << ", \"best_seconds\": " << std::setprecision(6) << p.best_seconds
        << ", \"accesses_per_sec\": " << std::setprecision(8)
        << p.accesses_per_sec << ", \"speedup\": " << std::setprecision(4)
        << p.speedup << ", \"stats_checksum\": \"" << std::hex
        << p.stats_checksum << std::dec << "\"}"
        << (i + 1 < parallel.size() ? "," : "") << "\n";
  }
  out << "  ]},\n"
      // SimPoint sampled replay vs exact full replay of one phased capture
      // (HMS_SAMPLING=simpoint). sampled_seconds includes plan construction.
      << "  \"sampling\": {\"space_bytes\": " << sampling.space_bytes
      << ", \"accesses\": " << sampling.accesses
      << ", \"chunks\": " << sampling.chunks
      << ", \"sample_k\": " << sampling.sample_k
      << ", \"warmup_chunks\": " << sampling.warmup_chunks
      << ", \"plan_steps\": " << sampling.plan_steps
      << ", \"representatives\": " << sampling.representatives
      << ",\n    \"full_seconds\": " << std::setprecision(6)
      << sampling.full_seconds << ", \"sampled_seconds\": "
      << std::setprecision(6) << sampling.sampled_seconds
      << ", \"speedup\": " << std::setprecision(4) << sampling.speedup
      << ",\n    \"miss_rate_rel_err\": " << std::setprecision(6)
      << sampling.miss_rate_rel_err << ", \"traffic_rel_err\": "
      << std::setprecision(6) << sampling.traffic_rel_err
      << ", \"full_checksum\": \"" << std::hex << sampling.full_checksum
      << "\", \"sampled_checksum\": \"" << sampling.sampled_checksum
      << std::dec << "\"},\n"
      // Warm-up pipeline (schema v5): serial vs thread-per-workload front
      // capture, and the persistent trace store's cold-vs-warm capture.
      // Both checksum pairs are asserted identical in-process before the
      // JSON is written.
      << "  \"warmup\": {\"pool\": " << warmup.pool
      << ", \"parallel_threads\": " << warmup.parallel_threads
      << ", \"serial_seconds\": " << std::setprecision(6)
      << warmup.serial_seconds << ", \"parallel_seconds\": "
      << std::setprecision(6) << warmup.parallel_seconds
      << ", \"parallel_speedup\": " << std::setprecision(4)
      << warmup.parallel_speedup << ", \"pool_checksum\": \"" << std::hex
      << warmup.pool_checksum << std::dec
      << "\",\n    \"store\": {\"workload\": \""
      << json_escape(warmup.store_workload)
      << "\", \"entry_bytes\": " << warmup.store_entry_bytes
      << ", \"cold_capture_seconds\": " << std::setprecision(6)
      << warmup.cold_capture_seconds << ", \"warm_capture_seconds\": "
      << std::setprecision(6) << warmup.warm_capture_seconds
      << ", \"speedup\": " << std::setprecision(4) << warmup.store_speedup
      << ", \"capture_checksum\": \"" << std::hex
      << warmup.capture_checksum << std::dec << "\"}},\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    out << "    {\"name\": \"" << r.name << "\", \"policy\": \"" << r.policy
        << "\", \"levels\": " << r.levels
        << ", \"sector_bytes\": " << r.sector_bytes
        << ", \"batched\": " << (r.batched ? "true" : "false")
        << ", \"encoded\": " << (r.encoded ? "true" : "false")
        << ", \"backs\": " << r.backs
        << ", \"accesses\": " << r.accesses << ", \"best_seconds\": "
        << std::setprecision(6) << r.best_seconds
        << ", \"accesses_per_sec\": " << std::setprecision(8)
        << r.accesses_per_sec << ", \"stats_checksum\": \""
        << std::hex << r.stats_checksum << std::dec << "\"}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main() {
  const std::uint64_t accesses =
      hms::bench::env_u64("HMS_BENCH_ACCESSES", 1ull << 22);
  const int reps =
      static_cast<int>(hms::bench::env_u64("HMS_BENCH_REPS", 3));
  const std::string out_path =
      hms::bench::env_str("HMS_BENCH_OUT", "BENCH_micro_sim.json");
#ifdef NDEBUG
  const bool optimized = true;
#else
  const bool optimized = false;
  std::cerr << "*** WARNING: bench_micro_sim built without optimization "
               "(NDEBUG unset) — throughput numbers are meaningless. "
               "Configure with -DCMAKE_BUILD_TYPE=Release. ***\n";
#endif

  std::cout << "== micro_sim throughput ==\n"
            << "accesses/rep " << accesses << ", reps " << reps << "\n\n";

  std::vector<BenchResult> results;
  for (auto policy :
       {cache::PolicyKind::LRU, cache::PolicyKind::TreePLRU,
        cache::PolicyKind::FIFO, cache::PolicyKind::Random,
        cache::PolicyKind::SRRIP}) {
    results.push_back(bench_cache(policy, 0, accesses, reps));
  }
  results.push_back(bench_cache(cache::PolicyKind::LRU, 64, accesses, reps));
  {
    using namespace hms::literals;
    // Miss-heavy regime: footprint 4x the last-level capacity.
    for (int levels : {1, 2, 3}) {
      results.push_back(bench_hierarchy(levels, cache::PolicyKind::LRU,
                                        8_MiB, "", accesses, reps));
    }
    results.push_back(bench_replay(3, cache::PolicyKind::LRU, 8_MiB, "",
                                   accesses, reps));
    results.push_back(bench_replay_enc(3, cache::PolicyKind::LRU, 8_MiB, "",
                                       accesses, reps));
    // Locality regime: footprint fits the simulated L3.
    results.push_back(bench_hierarchy(3, cache::PolicyKind::LRU, 1536_KiB,
                                      "_hot", accesses, reps));
    results.push_back(bench_replay(3, cache::PolicyKind::LRU, 1536_KiB,
                                   "_hot", accesses, reps));
    results.push_back(bench_replay_enc(3, cache::PolicyKind::LRU, 1536_KiB,
                                       "_hot", accesses, reps));
  }
  ResidualFootprint footprint;
  results.push_back(bench_replay_back(accesses, reps, footprint));
  {
    using namespace hms::literals;
    // Sweep inner grid: same residual stream into 6 NMM backs, flat
    // config-major vs chunk-major. Checksums must agree bit for bit.
    const auto stream = make_residual_stream(accesses, 2_MiB, 99);
    results.push_back(bench_multi_replay(false, 6, stream, 2_MiB, reps));
    results.push_back(bench_multi_replay(true, 6, stream, 2_MiB, reps));
    const auto& flat = results[results.size() - 2];
    const auto& chunk = results[results.size() - 1];
    if (flat.stats_checksum != chunk.stats_checksum) {
      std::cerr << "ERROR: multi_replay flat vs chunk checksum mismatch\n";
      return 1;
    }
    std::cout << "multi_replay chunk-major speedup: " << std::fixed
              << std::setprecision(2)
              << chunk.accesses_per_sec / flat.accesses_per_sec << "x\n\n";
    std::cout.unsetf(std::ios::fixed);
  }

  std::size_t grid_configs = 0, grid_workloads = 0;
  ParallelPoint chunk_ref;
  const auto parallel = bench_parallel_scaling(accesses, reps, grid_configs,
                                               grid_workloads, chunk_ref);
  std::cout << "sharded sweep scaling (" << grid_configs << " configs x "
            << grid_workloads << " workloads):\n"
            << "  chunk-major ref: " << std::fixed << std::setprecision(2)
            << chunk_ref.accesses_per_sec / 1e6 << " Macc/s\n";
  std::cout.unsetf(std::ios::fixed);
  for (const auto& p : parallel) {
    std::cout << "  " << std::setw(2) << p.threads << " thread(s): "
              << std::fixed << std::setprecision(2)
              << p.accesses_per_sec / 1e6 << " Macc/s, speedup "
              << p.speedup << "x\n";
    std::cout.unsetf(std::ios::fixed);
  }
  std::cout << "\n";

  // Only gate from the default size up on optimized builds; CI smoke runs
  // (200k accesses) still exercise the path and report the numbers.
  const bool sampling_gated = optimized && accesses >= (std::uint64_t{1} << 22);
  const SamplingBench sampling = bench_sampling(accesses, reps, sampling_gated);
  std::cout << "sampled replay (SimPoint, k=" << sampling.sample_k
            << ", warmup=" << sampling.warmup_chunks << "): "
            << sampling.plan_steps << "/" << sampling.chunks
            << " chunks decoded, speedup " << std::fixed
            << std::setprecision(2) << sampling.speedup << "x, rel err "
            << std::setprecision(4) << sampling.miss_rate_rel_err
            << " (miss rate) / " << sampling.traffic_rel_err
            << " (traffic)" << (sampling_gated ? "" : " [ungated]") << "\n\n";
  std::cout.unsetf(std::ios::fixed);

  const bool warmup_gated = optimized && accesses >= (std::uint64_t{1} << 22);
  const WarmupBench warmup = bench_warmup(reps, warmup_gated);
  std::cout << "warm-up pipeline (" << warmup.pool << " captures): serial "
            << std::fixed << std::setprecision(3) << warmup.serial_seconds
            << "s, " << warmup.parallel_threads << "-thread "
            << warmup.parallel_seconds << "s (speedup "
            << std::setprecision(2) << warmup.parallel_speedup << "x)\n"
            << "trace store (CG, " << warmup.store_entry_bytes
            << " B entry): cold " << std::setprecision(3)
            << warmup.cold_capture_seconds << "s, warm "
            << warmup.warm_capture_seconds << "s (speedup "
            << std::setprecision(2) << warmup.store_speedup << "x)"
            << (warmup_gated ? "" : " [ungated]") << "\n\n";
  std::cout.unsetf(std::ios::fixed);

  std::cout << std::left << std::setw(24) << "config" << std::right
            << std::setw(14) << "Maccesses/s" << std::setw(12) << "seconds"
            << std::setw(20) << "stats checksum" << "\n";
  for (const auto& r : results) {
    std::cout << std::left << std::setw(24) << r.name << std::right
              << std::setw(14) << std::fixed << std::setprecision(2)
              << r.accesses_per_sec / 1e6 << std::setw(12)
              << std::setprecision(4) << r.best_seconds << std::setw(20)
              << std::hex << r.stats_checksum << std::dec << "\n";
    std::cout.unsetf(std::ios::fixed);
  }

  write_json(out_path, accesses, reps, optimized, results, footprint,
             parallel, chunk_ref, grid_configs, grid_workloads, sampling,
             warmup);
  std::cout << "\n(JSON written to " << out_path << ")\n";
  return 0;
}
