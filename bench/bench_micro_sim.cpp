// M1: google-benchmark microbenchmarks of the simulation substrate —
// cache lookup throughput, full-hierarchy throughput, workload generation,
// and residual-trace replay.
#include <benchmark/benchmark.h>

#include "hms/common/random.hpp"
#include "hms/cache/hierarchy.hpp"
#include "hms/designs/design.hpp"
#include "hms/sim/simulator.hpp"
#include "hms/trace/trace_buffer.hpp"
#include "hms/workloads/registry.hpp"

namespace {

using namespace hms;

void BM_CacheAccess(benchmark::State& state) {
  cache::CacheConfig cfg;
  const auto ways = static_cast<std::uint32_t>(state.range(0));
  cfg.line_bytes = 64;
  cfg.associativity = ways;
  // 256 sets regardless of associativity (sets must be a power of two).
  cfg.capacity_bytes = 64ull * ways * 256;
  cache::SetAssocCache cache(cfg);
  Xoshiro256 rng(42);
  std::vector<Address> addresses(1 << 16);
  for (auto& a : addresses) a = rng.below(1ull << 22) & ~7ull;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.access(addresses[i & 0xffff], 8, AccessType::Load));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheAccess)->Arg(1)->Arg(8)->Arg(20);

void BM_HierarchyAccess(benchmark::State& state) {
  designs::DesignFactory factory(64);
  auto h = factory.base(16ull << 20);
  Xoshiro256 rng(42);
  std::vector<trace::MemoryAccess> accesses(1 << 16);
  for (auto& a : accesses) {
    a = trace::MemoryAccess{rng.below(16ull << 20) & ~7ull, 8,
                            rng.chance(0.3) ? AccessType::Store
                                            : AccessType::Load,
                            0};
  }
  std::size_t i = 0;
  for (auto _ : state) {
    h->access(accesses[i & 0xffff]);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HierarchyAccess);

void BM_WorkloadGeneration(benchmark::State& state) {
  for (auto _ : state) {
    auto w = workloads::make_workload(
        "StreamTriad", workloads::WorkloadParams{4ull << 20, 42, 1});
    trace::CountingSink sink;
    w->run(sink);
    benchmark::DoNotOptimize(sink.total());
    state.SetItemsProcessed(
        state.items_processed() + static_cast<std::int64_t>(sink.total()));
  }
}
BENCHMARK(BM_WorkloadGeneration)->Unit(benchmark::kMillisecond);

void BM_FrontCaptureAndReplay(benchmark::State& state) {
  designs::DesignFactory factory(256);
  const auto capture = sim::capture_front(
      "CG", workloads::WorkloadParams{2ull << 20, 42, 1}, factory);
  for (auto _ : state) {
    auto back = factory.nvm_main_memory_back(
        designs::n_config("N6"), mem::Technology::PCM,
        capture.footprint_bytes);
    benchmark::DoNotOptimize(sim::replay_back(capture, *back));
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(
                                capture.residual.size()));
  }
}
BENCHMARK(BM_FrontCaptureAndReplay)->Unit(benchmark::kMillisecond);

void BM_TraceReplayOverhead(benchmark::State& state) {
  trace::TraceBuffer buffer;
  Xoshiro256 rng(7);
  for (int i = 0; i < (1 << 18); ++i) {
    buffer.access(trace::load(rng.below(1ull << 30) & ~63ull, 64));
  }
  trace::CountingSink sink;
  for (auto _ : state) {
    buffer.replay(sink);
    benchmark::DoNotOptimize(sink.total());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buffer.size()));
}
BENCHMARK(BM_TraceReplayOverhead)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
