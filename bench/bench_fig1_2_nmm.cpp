// Figures 1 and 2: NMM design (NVM main memory behind a DRAM page cache),
// configurations N1-N9 of Table 3. Prints the normalized runtime series
// (Fig. 1) and normalized energy series (Fig. 2), averaged over the suite,
// plus the paper's headline checks (N5 best runtime, N6 best EDP/energy).
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "hms/designs/configs.hpp"

int main() {
  using namespace hms;
  return bench::run_sweep_tool("fig1_2_nmm", [](bench::SweepStatus& status) {
  const auto cfg = bench::config_from_env();
  const auto nvm = bench::nvm_from_env();
  bench::print_banner("Figures 1-2: NMM (" +
                          std::string(mem::to_string(nvm)) +
                          " main memory + DRAM cache), Table 3 configs",
                      cfg);

  std::cout << "Table 3: NMM configurations (capacity per core, unscaled)\n";
  TextTable t3({"config", "DRAM capacity", "page size"});
  for (const auto& n : designs::n_configs()) {
    t3.add_row({n.name, fmt_bytes(n.dram_capacity_bytes),
                fmt_bytes(n.page_bytes)});
  }
  t3.render(std::cout);
  std::cout << "\n";

  sim::ExperimentRunner runner(cfg);
  const auto results = runner.nmm_sweep(nvm, designs::n_configs());
  status.observe(results);

  bench::print_suite_results(
      "Figure 1 / Figure 2 series: suite-average normalized metrics "
      "(base = L1-L3 + footprint DRAM):",
      results);
  bench::maybe_write_csv("fig1_2_nmm", results);

  const auto best_runtime = std::min_element(
      results.begin(), results.end(),
      [](const auto& a, const auto& b) { return a.runtime < b.runtime; });
  const auto best_energy = std::min_element(
      results.begin(), results.end(), [](const auto& a, const auto& b) {
        return a.total_energy < b.total_energy;
      });
  const auto best_edp = std::min_element(
      results.begin(), results.end(),
      [](const auto& a, const auto& b) { return a.edp < b.edp; });
  std::cout << "least time overhead: " << best_runtime->config_name
            << " (paper: N5)\n"
            << "most energy savings: " << best_energy->config_name
            << " (paper: N6)\n"
            << "best EDP:            " << best_edp->config_name
            << " (paper: N6)\n\n";

  bench::print_per_workload("Per-workload breakdown at N6:",
                            results[5]);
  });
}
