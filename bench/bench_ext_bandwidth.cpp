// Extension E3: bandwidth-bound analysis. The paper motivates emerging
// memories with the bandwidth memory wall but models latency only (Eq. 2);
// this bench reports each design's binding level and how close its
// bandwidth lower bound comes to the latency-model memory time (ratio > 1
// means Eq. 1 is optimistic for that design).
#include <iostream>

#include "bench_common.hpp"
#include "hms/designs/configs.hpp"
#include "hms/model/amat.hpp"
#include "hms/model/bandwidth.hpp"
#include "hms/sim/simulator.hpp"

int main() {
  using namespace hms;
  const auto cfg = bench::config_from_env();
  bench::print_banner("Extension E3: bandwidth-bound analysis", cfg);

  sim::ExperimentRunner runner(cfg);
  const model::BandwidthParams bw;
  std::cout << "Peak bandwidths (GB/s): DRAM " << bw.dram_gbs << ", PCM "
            << bw.pcm_read_gbs << "r/" << bw.pcm_write_gbs << "w, STT-RAM "
            << bw.sttram_gbs << ", FeRAM " << bw.feram_gbs << ", eDRAM "
            << bw.edram_gbs << ", HMC " << bw.hmc_gbs << "\n\n";

  TextTable table({"workload", "design", "binding level",
                   "bw-bound / latency-time"});
  for (const auto& workload : runner.suite()) {
    const auto& capture = runner.front(workload);
    const auto fp = capture.footprint_bytes;
    struct Design {
      const char* name;
      std::unique_ptr<cache::MemoryHierarchy> back;
    };
    Design designs[] = {
        {"base", runner.factory().base_back(fp)},
        {"NMM N6/PCM",
         runner.factory().nvm_main_memory_back(designs::n_config("N6"),
                                               mem::Technology::PCM, fp)},
        {"4LCNVM EH1/eDRAM+PCM",
         runner.factory().four_level_cache_nvm_back(
             designs::eh_config("EH1"), mem::Technology::eDRAM,
             mem::Technology::PCM, fp)},
    };
    for (auto& design : designs) {
      const auto profile = sim::replay_back(capture, *design.back);
      const auto bound = model::bandwidth_bound(profile, bw);
      const double ratio = model::bandwidth_limitation(profile, bw);
      table.add_row({workload, design.name, bound.binding_level,
                     fmt_fixed(ratio, 3)});
    }
  }
  table.render(std::cout);
  std::cout << "\n(ratios > 1 flag designs whose Eq. 1 runtime is "
               "optimistic: the PCM write port is the usual culprit)\n";
  return 0;
}
