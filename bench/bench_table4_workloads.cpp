// Table 4: characteristics of the benchmark suite — the paper's metadata
// side by side with the scaled instantiation this harness simulates.
#include <iostream>

#include "bench_common.hpp"
#include "hms/common/table.hpp"
#include "hms/trace/sink.hpp"
#include "hms/workloads/registry.hpp"

int main() {
  using namespace hms;
  const auto cfg = bench::config_from_env();
  bench::print_banner("Table 4: benchmark characteristics", cfg);

  TextTable table({"suite", "benchmark", "paper fp/core", "paper time (s)",
                   "scaled fp", "references", "loads", "stores", "inputs"});
  for (const auto& name : (cfg.suite.empty() ? workloads::paper_suite()
                                             : cfg.suite)) {
    auto probe = workloads::make_workload(
        name, workloads::WorkloadParams{1ull << 20, cfg.seed, 1});
    const auto info = probe->info();
    probe.reset();
    const auto params = cfg.params_for(info);
    auto w = workloads::make_workload(name, params);
    trace::CountingSink counter;
    w->run(counter);
    table.add_row({info.suite, info.name,
                   fmt_bytes(info.paper_footprint_bytes),
                   fmt_fixed(info.paper_reference_seconds, 1),
                   fmt_bytes(w->footprint_bytes()),
                   std::to_string(counter.total()),
                   std::to_string(counter.loads()),
                   std::to_string(counter.stores()), info.inputs});
  }
  table.render(std::cout);
  std::cout << "\n(scaled fp = paper footprint / " << cfg.footprint_divisor
            << "; reference counts are the simulated streams fed to every "
               "design)\n";
  return 0;
}
