// Figures 7 and 8: NDM design (partitioned DRAM + NVM main memory with the
// oracle static address-range placement), per-workload normalized runtime
// (Fig. 7) and energy (Fig. 8) for PCM, STT-RAM, and FeRAM.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace hms;
  // The NDM oracle has no degradable sweep cells (any workload failure is
  // fatal), so the wrapper only supplies the interrupt/error exit contract.
  return bench::run_sweep_tool("fig7_8_ndm", [](bench::SweepStatus&) {
  const auto cfg = bench::config_from_env();
  bench::print_banner(
      "Figures 7-8: NDM (partitioned DRAM+NVM, oracle placement)", cfg);

  sim::ExperimentRunner runner(cfg);
  for (const auto nvm : {mem::Technology::PCM, mem::Technology::STTRAM,
                         mem::Technology::FeRAM}) {
    const auto results = runner.ndm_oracle(nvm);
    std::cout << "NVM = " << mem::to_string(nvm) << ":\n";
    TextTable table({"workload", "oracle placement", "NVM ref share",
                     "norm-runtime", "norm-dynamic", "norm-static",
                     "norm-energy"});
    for (const auto& ndm : results) {
      table.add_row({ndm.workload, ndm.chosen.name,
                     fmt_fixed(ndm.chosen.nvm_reference_fraction, 2),
                     fmt_fixed(ndm.result.normalized.runtime),
                     fmt_fixed(ndm.result.normalized.dynamic),
                     fmt_fixed(ndm.result.normalized.leakage),
                     fmt_fixed(ndm.result.normalized.total_energy)});
    }
    table.render(std::cout);
    std::cout << "\n";
  }
  std::cout
      << "paper checks: per-workload runtime overhead in the 5-63% band; "
         "energy savings for the static-energy-dominated workloads "
         "(Velvet, Hashing, AMG, Graph500), overhead for BT/SP.\n";
  });
}
