// Figures 3 and 4: 4LC design (eDRAM or HMC as L4 in front of DRAM),
// configurations EH1-EH8 of Table 2. Prints normalized runtime (Fig. 3)
// and normalized energy (Fig. 4) for both L4 technologies.
#include <iostream>

#include "bench_common.hpp"
#include "hms/designs/configs.hpp"

int main() {
  using namespace hms;
  return bench::run_sweep_tool("fig3_4_4lc", [](bench::SweepStatus& status) {
  const auto cfg = bench::config_from_env();
  bench::print_banner("Figures 3-4: 4LC (eDRAM/HMC L4 + DRAM), Table 2",
                      cfg);

  std::cout << "Table 2: eDRAM/HMC configurations (capacity per core, "
               "unscaled)\n";
  TextTable t2({"config", "L4 capacity", "page size"});
  for (const auto& eh : designs::eh_configs()) {
    t2.add_row({eh.name, fmt_bytes(eh.l4_capacity_bytes),
                fmt_bytes(eh.page_bytes)});
  }
  t2.render(std::cout);
  std::cout << "\n";

  sim::ExperimentRunner runner(cfg);
  for (const auto l4 : {mem::Technology::eDRAM, mem::Technology::HMC}) {
    const auto results = runner.four_lc_sweep(l4, designs::eh_configs());
    status.observe(results);
    bench::print_suite_results(
        "Figure 3 / Figure 4 series, L4 = " +
            std::string(mem::to_string(l4)) + ":",
        results);
    bench::maybe_write_csv(
        "fig3_4_4lc_" + std::string(mem::to_string(l4)), results);
  }
  std::cout << "paper checks: EH1 (64 B pages) has the least time overhead "
               "and the most energy saving; larger pages increase dynamic "
               "energy.\n";
  });
}
