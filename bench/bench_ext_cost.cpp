// Extension E2: memory-system cost — the total-cost-of-ownership dimension
// the paper defers to future work. Prices every design's memory system and
// ranks them by cost-delay and cost-EDP.
#include <functional>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "hms/designs/configs.hpp"
#include "hms/model/cost.hpp"
#include "hms/sim/simulator.hpp"

int main() {
  using namespace hms;
  auto cfg = bench::config_from_env();
  bench::print_banner("Extension E2: memory-system cost model", cfg);

  sim::ExperimentRunner runner(cfg);
  const model::CostParams prices;

  std::cout << "Unit costs ($/GiB): DRAM " << prices.dram_usd_per_gib
            << ", PCM " << prices.pcm_usd_per_gib << ", STT-RAM "
            << prices.sttram_usd_per_gib << ", FeRAM "
            << prices.feram_usd_per_gib << ", eDRAM "
            << prices.edram_usd_per_gib << ", HMC "
            << prices.hmc_usd_per_gib << ", SRAM "
            << prices.sram_usd_per_gib << "\n\n";

  TextTable table({"design", "memory cost ($)", "norm-runtime",
                   "norm-energy", "cost-delay vs base", "cost-EDP vs base"});

  const auto& factory = runner.factory();

  struct Design {
    std::string name;
    std::function<std::unique_ptr<cache::MemoryHierarchy>(std::uint64_t)>
        back;
  };
  const std::vector<Design> designs = {
      {"base",
       [&](std::uint64_t fp) { return factory.base_back(fp); }},
      {"4LC EH1 (eDRAM)",
       [&](std::uint64_t fp) {
         return factory.four_level_cache_back(
             designs::eh_config("EH1"), mem::Technology::eDRAM, fp);
       }},
      {"NMM N6 (PCM)",
       [&](std::uint64_t fp) {
         return factory.nvm_main_memory_back(designs::n_config("N6"),
                                             mem::Technology::PCM, fp);
       }},
      {"4LCNVM EH1 (eDRAM+PCM)",
       [&](std::uint64_t fp) {
         return factory.four_level_cache_nvm_back(
             designs::eh_config("EH1"), mem::Technology::eDRAM,
             mem::Technology::PCM, fp);
       }},
  };

  double base_cost_delay = 0.0, base_cost_edp = 0.0;
  for (const auto& design : designs) {
    // Average normalized metrics over the suite; cost from the profile
    // (per-core sizing: each workload's own footprint).
    double runtime = 0.0, energy = 0.0, cost_delay = 0.0, cost_edp = 0.0;
    double cost_usd = 0.0;
    for (const auto& workload : runner.suite()) {
      const auto fp = runner.front(workload).footprint_bytes;
      auto back = design.back(fp);
      const auto result = runner.evaluate_back(design.name, workload, *back);
      const auto profile = [&] {
        // Rebuild combined profile for costing (evaluate_back consumed it).
        auto b2 = design.back(fp);
        return sim::replay_back(runner.front(workload), *b2);
      }();
      const auto cost = model::CostReport::make(profile, result.report,
                                                prices);
      runtime += result.normalized.runtime;
      energy += result.normalized.total_energy;
      cost_delay += cost.cost_delay;
      cost_edp += cost.cost_edp;
      cost_usd = cost.cost_usd;
    }
    const double n = static_cast<double>(runner.suite().size());
    runtime /= n;
    energy /= n;
    if (design.name == "base") {
      base_cost_delay = cost_delay;
      base_cost_edp = cost_edp;
    }
    table.add_row({design.name, fmt_fixed(cost_usd, 2), fmt_fixed(runtime),
                   fmt_fixed(energy),
                   fmt_fixed(cost_delay / base_cost_delay),
                   fmt_fixed(cost_edp / base_cost_edp)});
  }
  table.render(std::cout);
  std::cout << "\n(NVM-backed designs buy capacity at a fraction of DRAM's "
               "$/GiB; cost-delay folds the runtime penalty back in)\n";
  return 0;
}
