// Ablation A2: page-granularity vs sector (64 B) dirty tracking in the NMM
// DRAM cache. The paper writes back whole dirty pages; sector dirty bits
// shrink NVM write traffic for large pages, directly attacking the
// write-energy penalty behind Figure 2's large-page behaviour.
//
// One runner captures the fronts; per-variant factories supply the backs.
#include <iostream>

#include "bench_common.hpp"
#include "hms/designs/configs.hpp"

int main() {
  using namespace hms;
  const auto cfg = bench::config_from_env();
  const auto nvm = bench::nvm_from_env();
  bench::print_banner(
      "Ablation A2: whole-page vs 64 B sector dirty write-backs (NMM)",
      cfg);

  sim::ExperimentRunner runner(cfg);
  const std::vector<designs::NConfig> configs = {
      designs::n_config("N3"), designs::n_config("N4"),
      designs::n_config("N5"), designs::n_config("N6")};

  for (const std::uint64_t sector : {std::uint64_t{0}, std::uint64_t{64}}) {
    designs::DesignOptions options = cfg.design_options;
    options.sector_bytes = sector;
    designs::DesignFactory variant(cfg.scale_divisor,
                                   mem::TechnologyRegistry::table1(),
                                   options);
    std::cout << (sector == 0
                      ? "Whole-page dirty write-backs (paper's model):"
                      : "64 B sector dirty write-backs:")
              << "\n";
    TextTable table({"config", "norm-runtime", "norm-dynamic",
                     "norm-energy", "norm-EDP"});
    for (const auto& n_cfg : configs) {
      double runtime = 0, dynamic = 0, energy = 0, edp = 0;
      for (const auto& workload : runner.suite()) {
        auto back = variant.nvm_main_memory_back(
            n_cfg, nvm, runner.front(workload).footprint_bytes);
        const auto r = runner.evaluate_back(n_cfg.name, workload, *back);
        runtime += r.normalized.runtime;
        dynamic += r.normalized.dynamic;
        energy += r.normalized.total_energy;
        edp += r.normalized.edp;
      }
      const double n = static_cast<double>(runner.suite().size());
      table.add_row({n_cfg.name, fmt_fixed(runtime / n),
                     fmt_fixed(dynamic / n), fmt_fixed(energy / n),
                     fmt_fixed(edp / n)});
    }
    table.render(std::cout);
    std::cout << "\n";
  }
  std::cout << "(sector tracking only changes write-back BYTES; latency "
               "counts are identical, so runtime columns match)\n";
  return 0;
}
