// Table 1: characteristics of the evaluated memory technologies, plus the
// derived per-64 B-access latency/energy costs the models actually charge.
#include <iostream>

#include "bench_common.hpp"
#include "hms/common/table.hpp"
#include "hms/mem/refresh.hpp"
#include "hms/mem/technology.hpp"

int main() {
  using namespace hms;
  const auto& registry = mem::TechnologyRegistry::table1();

  std::cout << "== Table 1: memory technology characteristics ==\n\n";
  TextTable table({"technology", "read delay (ns)", "write delay (ns)",
                   "read energy (pJ/bit)", "write energy (pJ/bit)",
                   "non-volatile", "static (mW/MiB)"});
  for (const auto& p : registry.all()) {
    table.add_row({std::string(mem::to_string(p.technology)),
                   fmt_fixed(p.read_latency.nanoseconds(), 2),
                   fmt_fixed(p.write_latency.nanoseconds(), 2),
                   fmt_fixed(p.read_pj_per_bit, 2),
                   fmt_fixed(p.write_pj_per_bit, 2),
                   p.non_volatile ? "yes" : "no",
                   fmt_fixed(p.static_power_per_mib.milliwatts(), 2)});
  }
  table.render(std::cout);

  std::cout << "\nDerived cost of one 64 B line transfer:\n";
  TextTable derived({"technology", "read (ns)", "write (ns)", "read (nJ)",
                     "write (nJ)"});
  for (const auto& p : registry.all()) {
    derived.add_row(
        {std::string(mem::to_string(p.technology)),
         fmt_fixed(p.read_latency.nanoseconds(), 2),
         fmt_fixed(p.write_latency.nanoseconds(), 2),
         fmt_fixed(p.access_energy(false, 64).picojoules() / 1000.0, 3),
         fmt_fixed(p.access_energy(true, 64).picojoules() / 1000.0, 3)});
  }
  derived.render(std::cout);

  std::cout << "\nStatic power of representative device sizes "
               "(leakage + refresh):\n";
  TextTable stat({"device", "capacity", "static power (mW)"});
  const auto& dram = registry.get(mem::Technology::DRAM);
  const auto& edram = registry.get(mem::Technology::eDRAM);
  const auto& pcm = registry.get(mem::Technology::PCM);
  stat.add_row({"DRAM main memory", "4 GiB",
                fmt_fixed(mem::static_power(dram, 4ull << 30).milliwatts(),
                          1)});
  stat.add_row({"DRAM cache (N6)", "512 MiB",
                fmt_fixed(mem::static_power(dram, 512ull << 20).milliwatts(),
                          1)});
  stat.add_row({"eDRAM L4 (EH1)", "16 MiB",
                fmt_fixed(mem::static_power(edram, 16ull << 20).milliwatts(),
                          1)});
  stat.add_row({"PCM main memory", "4 GiB",
                fmt_fixed(mem::static_power(pcm, 4ull << 30).milliwatts(),
                          1)});
  stat.render(std::cout);
  return 0;
}
