// Ablation A3: PCM endurance and Start-Gap wear levelling (paper §II.A
// notes PCM's low endurance and that wear levelling "adds variability").
// Reports NVM write traffic, migration overhead, and wear imbalance with
// and without levelling.
#include <iostream>

#include "bench_common.hpp"
#include "hms/cache/hierarchy.hpp"
#include "hms/designs/configs.hpp"

int main() {
  using namespace hms;
  auto cfg = bench::config_from_env();
  if (cfg.suite.empty()) {
    cfg.suite = {"Hashing", "Graph500", "BT"};  // write-heavy picks
  }
  bench::print_banner("Ablation A3: PCM Start-Gap wear levelling (NMM N6)",
                      cfg);

  sim::ExperimentRunner runner(cfg);
  TextTable table({"workload", "levelling", "NVM writes", "migrations",
                   "migration %", "wear imbalance (max/mean)"});
  for (const bool leveling : {false, true}) {
    designs::DesignOptions options = cfg.design_options;
    options.nvm_track_endurance = true;
    options.nvm_wear_leveling = leveling;
    // Short simulated horizons: shrink psi so the gap completes the same
    // fraction of a rotation a psi=100 device would over a real run.
    options.nvm_gap_write_interval = 4;
    designs::DesignFactory factory(cfg.scale_divisor,
                                   mem::TechnologyRegistry::table1(),
                                   options);
    for (const auto& workload : runner.suite()) {
      const auto& capture = runner.front(workload);
      auto back = factory.nvm_main_memory_back(
          designs::n_config("N6"), mem::Technology::PCM,
          capture.footprint_bytes);
      (void)sim::replay_back(capture, *back);
      const auto& device =
          static_cast<const cache::SingleMemoryBackend&>(back->backend())
              .device();
      const auto& stats = device.stats();
      const double migration_pct =
          stats.writes ? 100.0 * static_cast<double>(stats.migration_writes) /
                             static_cast<double>(stats.writes)
                       : 0.0;
      table.add_row({workload, leveling ? "Start-Gap" : "none",
                     std::to_string(stats.writes),
                     std::to_string(stats.migration_writes),
                     fmt_fixed(migration_pct, 2),
                     fmt_fixed(device.endurance()->imbalance(), 2)});
    }
  }
  table.render(std::cout);
  std::cout << "\n(Start-Gap trades ~1/psi extra writes for rotating wear "
               "across all lines; psi = 4 here so the short simulation "
               "covers the rotation a psi=100 device completes over a "
               "full-length run)\n";
  return 0;
}
