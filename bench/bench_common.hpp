// Shared scaffolding for the figure-regeneration benches.
//
// Every bench reads the same environment knobs so runs are reproducible and
// cheap-by-default:
//   HMS_SCALE       capacity/footprint divisor (power of two, default 64)
//   HMS_ITERATIONS  kernel outer iterations (default 1)
//   HMS_SEED        workload seed (default 42)
//   HMS_SUITE       comma-separated workload list (default: paper suite)
//   HMS_NVM         NVM technology for NMM/4LCNVM sweeps (default PCM)
//   HMS_CHECKPOINT  sweep checkpoint file; an interrupted bench rerun with
//                   the same knobs resumes instead of re-simulating
//   HMS_RETRIES     bounded retries for transient sweep-cell failures
//                   (default 0)
//   HMS_THREADS     sweep worker threads, and the shard count of the
//                   sharded replay mode (default 0 = auto: hardware
//                   concurrency, minimum 2 when the host cannot report it)
//   HMS_CELL_TIMEOUT_MS  per-cell watchdog budget in ms (default 0 = no
//                   watchdog); a cell exceeding it is cancelled
//                   cooperatively and degraded with a timeout failure
//   HMS_RETRY_BACKOFF_MS base delay for deterministic exponential backoff
//                   between cell retries (default 25; 0 = immediate)
//   HMS_SAMPLING    "full" (default; replay every residual chunk) or
//                   "simpoint" (cluster chunk signatures, replay one
//                   representative per cluster with a warming prefix, and
//                   scale the measured deltas by cluster weight; results
//                   carry error-bar spreads and are marked sampled)
//   HMS_SAMPLE_K    SimPoint cluster count (default 16; must be >= 1;
//                   captures with <= K chunks replay exactly)
//   HMS_WARMUP_CHUNKS  functional-warming prefix chunks replayed unmeasured
//                   before each representative (default 2; 0 = cold)
//   HMS_WARMUP_THREADS  worker threads for the pipelined warm-up phase
//                   (front captures + base reports run per-workload in
//                   parallel; unset = follow HMS_THREADS; must be >= 1 —
//                   an explicit 0 is a ConfigError)
//   HMS_TRACE_CACHE  persistent trace-store directory: front captures are
//                   looked up by capture hash before simulating and
//                   appended after a miss, so repeated runs skip the
//                   warm-up capture entirely (default unset = no store;
//                   corrupt or stale entries are CRC-rejected misses and
//                   recapture — results are bit-identical either way)
//
// Numeric knobs are parsed strictly: garbage, negative, or overflowing
// values abort with a ConfigError naming the variable and the value, so a
// typo'd unattended run dies at startup instead of silently running with
// a default.
//
// Sweep-driving benches follow the exit-code contract (hms/common/cancel.hpp):
//   0 clean + complete, 1 error, 2 clean interrupt (checkpoint flushed,
//   rerun resumes), 3 completed but degraded (partial tables).
//   HMS_REPLAY_MODE sweep replay traversal: "chunk" (default; decode each
//                   residual chunk once and feed every pending config),
//                   "config" (re-stream the residual per grid cell), or
//                   "shard" (decode-once sharded engine: HMS_THREADS
//                   workers each own a slice of the config axis and steal
//                   pending slices across workloads); results are
//                   bit-identical in all three (picked up inside
//                   ExperimentConfig via sim::default_replay_mode)
#pragma once

#include <cstdlib>
#include <exception>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "hms/common/cancel.hpp"
#include "hms/common/csv.hpp"
#include "hms/common/env.hpp"
#include "hms/common/error.hpp"
#include "hms/common/string_util.hpp"
#include "hms/common/table.hpp"
#include "hms/mem/technology.hpp"
#include "hms/sim/experiment.hpp"

namespace hms::bench {

/// Strict numeric knob parsing (common/env.hpp): throws ConfigError naming
/// the variable and offending value on anything but plain decimal digits.
inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  return hms::env_u64(name, fallback);
}

inline std::string env_str(const char* name, std::string fallback) {
  return hms::env_string(name, std::move(fallback));
}

/// Experiment configuration from the environment (see file comment).
inline sim::ExperimentConfig config_from_env() {
  sim::ExperimentConfig cfg;
  cfg.scale_divisor = env_u64("HMS_SCALE", 64);
  cfg.footprint_divisor = cfg.scale_divisor;
  cfg.seed = env_u64("HMS_SEED", 42);
  cfg.iterations = static_cast<std::uint32_t>(env_u64("HMS_ITERATIONS", 1));
  const std::string suite = env_str("HMS_SUITE", "");
  if (!suite.empty()) {
    for (const auto& name : split(suite, ',')) {
      if (!trim(name).empty()) cfg.suite.emplace_back(trim(name));
    }
  }
  cfg.checkpoint_path = env_str("HMS_CHECKPOINT", "");
  cfg.max_retries = static_cast<std::uint32_t>(env_u64("HMS_RETRIES", 0));
  cfg.threads = static_cast<unsigned>(env_u64("HMS_THREADS", 0));
  // cell_timeout_ms / retry_backoff_ms / warmup_threads / trace_cache_dir
  // already defaulted from HMS_CELL_TIMEOUT_MS / HMS_RETRY_BACKOFF_MS /
  // HMS_WARMUP_THREADS / HMS_TRACE_CACHE by ExperimentConfig's field
  // initializers (sim::default_cell_timeout_ms et al).
  return cfg;
}

inline mem::Technology nvm_from_env() {
  return mem::technology_from_string(env_str("HMS_NVM", "PCM"));
}

inline void print_banner(const std::string& title,
                         const sim::ExperimentConfig& cfg) {
  std::cout << "== " << title << " ==\n"
            << "scale divisor 1/" << cfg.scale_divisor << ", seed "
            << cfg.seed << ", iterations " << cfg.iterations << "\n\n";
}

/// Renders a sweep as the paper's figure series: one row per config, the
/// normalized metrics as columns. Partial rows (degraded sweeps) are marked
/// and their failed cells listed under the table; sampled rows
/// (HMS_SAMPLING=simpoint estimates) are marked `~` with their runtime
/// error bar footnoted.
inline void print_suite_results(const std::string& caption,
                                const std::vector<sim::SuiteResult>& results) {
  std::cout << caption << "\n";
  TextTable table({"config", "norm-runtime", "norm-dynamic", "norm-static",
                   "norm-energy", "norm-EDP"});
  bool any_partial = false;
  bool any_sampled = false;
  for (const auto& r : results) {
    any_partial |= r.partial;
    any_sampled |= r.sampled;
    table.add_row({r.config_name + (r.partial ? " *" : "") +
                       (r.sampled ? " ~" : ""),
                   fmt_fixed(r.runtime), fmt_fixed(r.dynamic),
                   fmt_fixed(r.leakage), fmt_fixed(r.total_energy),
                   fmt_fixed(r.edp)});
  }
  table.render(std::cout);
  if (any_sampled) {
    std::cout << "~ sampled estimate (SimPoint); norm-runtime spread:";
    for (const auto& r : results) {
      if (r.sampled) {
        std::cout << " " << r.config_name << " ±"
                  << fmt_fixed(r.spread.runtime);
      }
    }
    std::cout << "\n";
  }
  if (any_partial) {
    std::cout << "* partial: averages cover surviving workloads only\n";
    for (const auto& r : results) {
      for (const auto& f : r.failures) {
        std::cout << "  FAILED " << r.config_name << " / " << f.workload
                  << ": " << f.error << "\n";
      }
    }
  }
  std::cout << "\n";
}

/// If HMS_CSV_DIR is set, writes a sweep's full per-workload data to
/// <dir>/<name>.csv for plotting; otherwise does nothing.
inline void maybe_write_csv(const std::string& name,
                            const std::vector<sim::SuiteResult>& results) {
  const std::string dir = env_str("HMS_CSV_DIR", "");
  if (dir.empty()) return;
  const std::string path = dir + "/" + name + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write " << path << "\n";
    return;
  }
  CsvWriter csv(out);
  csv.header({"config", "workload", "norm_runtime", "norm_dynamic",
              "norm_static", "norm_energy", "norm_edp"});
  for (const auto& r : results) {
    for (const auto& wr : r.per_workload) {
      csv.row({r.config_name, wr.report.workload,
               fmt_fixed(wr.normalized.runtime, 6),
               fmt_fixed(wr.normalized.dynamic, 6),
               fmt_fixed(wr.normalized.leakage, 6),
               fmt_fixed(wr.normalized.total_energy, 6),
               fmt_fixed(wr.normalized.edp, 6)});
    }
  }
  std::cout << "(per-workload CSV written to " << path << ")\n";
}

/// Failure taxonomy accumulated over a tool's sweeps and printed to
/// stderr on exit: cell failures bucketed by cause so an unattended run's
/// log says at a glance whether it degraded because of timeouts, injected
/// faults, or something else.
struct SweepStatus {
  std::size_t degraded_cells = 0;
  std::size_t timeout_cells = 0;
  std::size_t fault_cells = 0;
  std::size_t other_cells = 0;

  /// Folds one sweep's failures into the taxonomy. Call once per sweep,
  /// right after it returns.
  void observe(const std::vector<sim::SuiteResult>& results) {
    for (const auto& r : results) {
      for (const auto& f : r.failures) {
        ++degraded_cells;
        if (f.error.find("timed out") != std::string::npos) {
          ++timeout_cells;
        } else if (f.error.find("fault injected") != std::string::npos) {
          ++fault_cells;
        } else {
          ++other_cells;
        }
      }
    }
  }

  void print_taxonomy(std::ostream& os) const {
    os << "degraded cells: " << degraded_cells << " (timeouts "
       << timeout_cells << ", injected faults " << fault_cells << ", other "
       << other_cells << ")\n";
  }
};

/// Runs a sweep-driving tool body under the exit-code contract
/// (hms/common/cancel.hpp): installs SIGINT/SIGTERM handlers for the
/// body's duration and maps outcomes to
///   kExitOk           clean, complete tables
///   kExitInterrupted  a signal arrived; completed configs are already
///                     fsync'd into the checkpoint, rerun to resume
///   kExitDegraded     finished, but some cells degraded (partial tables)
///   kExitError        any other failure
/// The body records partial-result counts through the passed SweepStatus
/// (call status.observe(results) after each sweep).
inline int run_sweep_tool(const std::string& name,
                          const std::function<void(SweepStatus&)>& body) {
  const ScopedSignalHandlers handlers;
  SweepStatus status;
  try {
    body(status);
  } catch (const CancelledError& e) {
    if (e.kind() == CancelKind::interrupt) {
      std::cerr << name << ": interrupted (" << e.what()
                << ")\ncompleted configs are checkpointed; rerun with the "
                   "same HMS_CHECKPOINT to resume\n";
      return kExitInterrupted;
    }
    std::cerr << name << " failed: " << e.what() << "\n";
    return kExitError;
  } catch (const std::exception& e) {
    std::cerr << name << " failed: " << e.what() << "\n";
    return kExitError;
  }
  if (interrupt_signal() != 0) {
    // The signal landed after the last sweep's engines drained; results
    // are complete, but exit distinguishably so wrappers don't re-launch.
    std::cerr << name << ": interrupted after completion\n";
    return kExitInterrupted;
  }
  if (status.degraded_cells != 0) {
    std::cerr << name << ": completed with degraded cells\n";
    status.print_taxonomy(std::cerr);
    return kExitDegraded;
  }
  return kExitOk;
}

/// Per-workload breakdown of one configuration.
inline void print_per_workload(const std::string& caption,
                               const sim::SuiteResult& result) {
  std::cout << caption << "\n";
  TextTable table({"workload", "norm-runtime", "norm-energy", "norm-EDP"});
  for (const auto& wr : result.per_workload) {
    table.add_row({wr.report.workload, fmt_fixed(wr.normalized.runtime),
                   fmt_fixed(wr.normalized.total_energy),
                   fmt_fixed(wr.normalized.edp)});
  }
  table.render(std::cout);
  std::cout << "\n";
}

}  // namespace hms::bench
