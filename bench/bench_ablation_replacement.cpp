// Ablation A1: replacement policy of the NMM DRAM page cache. The paper's
// simulator is LRU-only; this quantifies how sensitive the Fig. 1-2 results
// are to that choice.
//
// The L1-L3 front is policy-independent, so a single runner captures each
// workload once and per-policy DesignFactory variants supply the backs.
#include <iostream>

#include "bench_common.hpp"
#include "hms/designs/configs.hpp"

int main() {
  using namespace hms;
  const auto cfg = bench::config_from_env();
  const auto nvm = bench::nvm_from_env();
  bench::print_banner("Ablation A1: DRAM-cache replacement policy (NMM N6)",
                      cfg);

  sim::ExperimentRunner runner(cfg);
  const auto& n6 = designs::n_config("N6");

  TextTable table({"policy", "norm-runtime", "norm-dynamic", "norm-static",
                   "norm-energy", "norm-EDP"});
  for (const auto policy :
       {cache::PolicyKind::LRU, cache::PolicyKind::TreePLRU,
        cache::PolicyKind::FIFO, cache::PolicyKind::Random,
        cache::PolicyKind::SRRIP}) {
    designs::DesignOptions options = cfg.design_options;
    options.l4_policy = policy;
    designs::DesignFactory variant(cfg.scale_divisor,
                                   mem::TechnologyRegistry::table1(),
                                   options);
    double runtime = 0, dynamic = 0, leakage = 0, energy = 0, edp = 0;
    for (const auto& workload : runner.suite()) {
      auto back = variant.nvm_main_memory_back(
          n6, nvm, runner.front(workload).footprint_bytes);
      const auto r = runner.evaluate_back("N6", workload, *back);
      runtime += r.normalized.runtime;
      dynamic += r.normalized.dynamic;
      leakage += r.normalized.leakage;
      energy += r.normalized.total_energy;
      edp += r.normalized.edp;
    }
    const double n = static_cast<double>(runner.suite().size());
    table.add_row({std::string(cache::to_string(policy)),
                   fmt_fixed(runtime / n), fmt_fixed(dynamic / n),
                   fmt_fixed(leakage / n), fmt_fixed(energy / n),
                   fmt_fixed(edp / n)});
  }
  table.render(std::cout);
  std::cout << "\n(16-way page cache; differences bound the sensitivity of "
               "Figures 1-2 to the paper's LRU assumption)\n";
  return 0;
}
