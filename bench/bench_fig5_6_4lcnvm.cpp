// Figures 5 and 6: 4LCNVM design (eDRAM/HMC L4 directly over NVM, no
// DRAM), configurations EH1-EH8. Prints normalized runtime (Fig. 5) and
// normalized energy (Fig. 6); HMS_NVM selects the NVM technology.
#include <iostream>

#include "bench_common.hpp"
#include "hms/designs/configs.hpp"

int main() {
  using namespace hms;
  return bench::run_sweep_tool("fig5_6_4lcnvm",
                               [](bench::SweepStatus& status) {
  const auto cfg = bench::config_from_env();
  const auto nvm = bench::nvm_from_env();
  bench::print_banner("Figures 5-6: 4LCNVM (eDRAM/HMC L4 + " +
                          std::string(mem::to_string(nvm)) +
                          " main memory, no DRAM), Table 2",
                      cfg);

  sim::ExperimentRunner runner(cfg);
  for (const auto l4 : {mem::Technology::eDRAM, mem::Technology::HMC}) {
    const auto results =
        runner.four_lc_nvm_sweep(l4, nvm, designs::eh_configs());
    status.observe(results);
    bench::print_suite_results(
        "Figure 5 / Figure 6 series, L4 = " +
            std::string(mem::to_string(l4)) + ", NVM = " +
            std::string(mem::to_string(nvm)) + ":",
        results);
    bench::maybe_write_csv("fig5_6_4lcnvm_" +
                               std::string(mem::to_string(l4)) + "_" +
                               std::string(mem::to_string(nvm)),
                           results);
  }
  std::cout << "paper checks: EH1 gives ~57% energy saving with no runtime "
               "overhead; energy grows with page size as in 4LC.\n";
  });
}
