// Figures 9 and 10: heat maps of NMM (N6 profile: 512 MB DRAM cache, 512 B
// pages) normalized runtime as a function of read/write LATENCY multipliers
// (Fig. 9) and normalized energy as a function of read/write ENERGY
// multipliers (Fig. 10), both relative to DRAM.
#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "hms/designs/configs.hpp"
#include "hms/sim/heatmap.hpp"

namespace {

void print_grid(const std::string& caption, const hms::sim::HeatMapGrid& g,
                const char* row_label, const char* col_label) {
  std::cout << caption << "\n";
  std::cout << std::setw(10) << (std::string(row_label) + "\\" + col_label);
  for (double r : g.read_multipliers) {
    std::cout << std::setw(8) << hms::fmt_fixed(r, 0) + "x";
  }
  std::cout << "\n";
  for (std::size_t w = 0; w < g.write_multipliers.size(); ++w) {
    std::cout << std::setw(10) << hms::fmt_fixed(g.write_multipliers[w], 0) + "x";
    for (std::size_t r = 0; r < g.read_multipliers.size(); ++r) {
      std::cout << std::setw(8) << hms::fmt_fixed(g.at(w, r), 3);
    }
    std::cout << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace hms;
  // Heat maps are derived analytically from one captured profile per
  // workload; there are no degradable cells, so the wrapper only supplies
  // the interrupt/error exit contract.
  return bench::run_sweep_tool("fig9_10_heatmap", [](bench::SweepStatus&) {
  const auto cfg = bench::config_from_env();
  bench::print_banner(
      "Figures 9-10: latency/energy heat maps (NMM N6 profile)", cfg);

  sim::ExperimentRunner runner(cfg);
  std::vector<sim::HeatMapInput> inputs;
  for (const auto& workload : runner.suite()) {
    const auto& base = runner.base_report(workload);  // also builds anchor
    const auto& capture = runner.front(workload);
    auto back = runner.factory().nvm_main_memory_back(
        designs::n_config("N6"), mem::Technology::PCM,
        capture.footprint_bytes);
    sim::HeatMapInput input;
    input.workload = workload;
    input.profile = sim::replay_back(capture, *back);
    input.anchor = runner.anchor(workload);
    input.base = base;
    inputs.push_back(std::move(input));
  }

  sim::HeatMapper mapper(std::move(inputs));
  const auto mults = sim::HeatMapper::default_multipliers();

  const auto runtime = mapper.runtime_map(mults, mults);
  print_grid(
      "Figure 9: normalized runtime vs read (cols) / write (rows) "
      "latency multipliers over DRAM:",
      runtime, "wlat", "rlat");

  const auto energy = mapper.energy_map(mults, mults);
  print_grid(
      "Figure 10: normalized total energy vs read (cols) / write (rows) "
      "energy multipliers over DRAM:",
      energy, "wen", "ren");

  // Paper's headline observations.
  auto idx = [&](double m) {
    for (std::size_t i = 0; i < mults.size(); ++i) {
      if (mults[i] == m) return i;
    }
    return std::size_t{0};
  };
  std::cout << "paper checks (Fig. 9): 5x read latency -> ~5% runtime "
               "penalty (measured "
            << fmt_fixed((runtime.at(idx(1.0), idx(5.0)) /
                          runtime.at(idx(1.0), idx(1.0)) -
                          1.0) * 100.0, 1)
            << "%), 5x write latency -> ~1% (measured "
            << fmt_fixed((runtime.at(idx(5.0), idx(1.0)) /
                          runtime.at(idx(1.0), idx(1.0)) -
                          1.0) * 100.0, 1)
            << "%), 20x both -> ~17% (measured "
            << fmt_fixed((runtime.at(idx(20.0), idx(20.0)) /
                          runtime.at(idx(1.0), idx(1.0)) -
                          1.0) * 100.0, 1)
            << "%)\n";
  });
}
