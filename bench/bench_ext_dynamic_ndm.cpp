// Extension E1: dynamic NDM partitioning — the paper's future work
// ("explore dynamic partitioning, that may change between computation
// phases"). Compares the static oracle placement (Figs. 7-8) against
// epoch-based hot-region migration, including migration costs.
#include <iostream>

#include "bench_common.hpp"
#include "hms/cache/dynamic_partition.hpp"

int main() {
  using namespace hms;
  const auto cfg = bench::config_from_env();
  const auto nvm = bench::nvm_from_env();
  bench::print_banner("Extension E1: static oracle vs dynamic NDM (" +
                          std::string(mem::to_string(nvm)) + ")",
                      cfg);

  sim::ExperimentRunner runner(cfg);
  const auto oracle = runner.ndm_oracle(nvm);

  TextTable table({"workload", "variant", "norm-runtime", "norm-energy",
                   "norm-EDP", "migrations", "migrated"});
  for (const auto& ndm : oracle) {
    table.add_row({ndm.workload, "static oracle",
                   fmt_fixed(ndm.result.normalized.runtime),
                   fmt_fixed(ndm.result.normalized.total_energy),
                   fmt_fixed(ndm.result.normalized.edp), "-", "-"});
    auto back = runner.factory().nvm_plus_dram_dynamic_back(
        nvm, runner.front(ndm.workload).footprint_bytes);
    const auto result = runner.evaluate_back("NDM-dynamic", ndm.workload,
                                             *back);
    const auto& dyn = static_cast<const cache::DynamicPartitionBackend&>(
        back->backend());
    table.add_row({ndm.workload, "dynamic (epoch)",
                   fmt_fixed(result.normalized.runtime),
                   fmt_fixed(result.normalized.total_energy),
                   fmt_fixed(result.normalized.edp),
                   std::to_string(dyn.migrations()),
                   fmt_bytes(dyn.migrated_bytes())});
  }
  table.render(std::cout);
  std::cout << "\n(dynamic partitioning adapts the DRAM partition to phase "
               "changes at the price of bulk region migrations; the paper "
               "conjectured this could beat the static oracle)\n";
  return 0;
}
