file(REMOVE_RECURSE
  "CMakeFiles/hms_designs.dir/hms/designs/configs.cpp.o"
  "CMakeFiles/hms_designs.dir/hms/designs/configs.cpp.o.d"
  "CMakeFiles/hms_designs.dir/hms/designs/design.cpp.o"
  "CMakeFiles/hms_designs.dir/hms/designs/design.cpp.o.d"
  "CMakeFiles/hms_designs.dir/hms/designs/partition.cpp.o"
  "CMakeFiles/hms_designs.dir/hms/designs/partition.cpp.o.d"
  "libhms_designs.a"
  "libhms_designs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hms_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
