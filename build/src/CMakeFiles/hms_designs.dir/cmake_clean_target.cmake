file(REMOVE_RECURSE
  "libhms_designs.a"
)
