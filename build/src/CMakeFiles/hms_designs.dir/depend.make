# Empty dependencies file for hms_designs.
# This may be replaced when dependencies are built.
