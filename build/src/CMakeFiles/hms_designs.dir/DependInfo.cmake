
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hms/designs/configs.cpp" "src/CMakeFiles/hms_designs.dir/hms/designs/configs.cpp.o" "gcc" "src/CMakeFiles/hms_designs.dir/hms/designs/configs.cpp.o.d"
  "/root/repo/src/hms/designs/design.cpp" "src/CMakeFiles/hms_designs.dir/hms/designs/design.cpp.o" "gcc" "src/CMakeFiles/hms_designs.dir/hms/designs/design.cpp.o.d"
  "/root/repo/src/hms/designs/partition.cpp" "src/CMakeFiles/hms_designs.dir/hms/designs/partition.cpp.o" "gcc" "src/CMakeFiles/hms_designs.dir/hms/designs/partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hms_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hms_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hms_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hms_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hms_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
