# Empty dependencies file for hms_sim.
# This may be replaced when dependencies are built.
