file(REMOVE_RECURSE
  "libhms_sim.a"
)
