file(REMOVE_RECURSE
  "CMakeFiles/hms_sim.dir/hms/sim/experiment.cpp.o"
  "CMakeFiles/hms_sim.dir/hms/sim/experiment.cpp.o.d"
  "CMakeFiles/hms_sim.dir/hms/sim/heatmap.cpp.o"
  "CMakeFiles/hms_sim.dir/hms/sim/heatmap.cpp.o.d"
  "CMakeFiles/hms_sim.dir/hms/sim/parallel.cpp.o"
  "CMakeFiles/hms_sim.dir/hms/sim/parallel.cpp.o.d"
  "CMakeFiles/hms_sim.dir/hms/sim/simulator.cpp.o"
  "CMakeFiles/hms_sim.dir/hms/sim/simulator.cpp.o.d"
  "libhms_sim.a"
  "libhms_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hms_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
