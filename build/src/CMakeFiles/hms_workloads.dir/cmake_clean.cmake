file(REMOVE_RECURSE
  "CMakeFiles/hms_workloads.dir/hms/workloads/amg.cpp.o"
  "CMakeFiles/hms_workloads.dir/hms/workloads/amg.cpp.o.d"
  "CMakeFiles/hms_workloads.dir/hms/workloads/bt.cpp.o"
  "CMakeFiles/hms_workloads.dir/hms/workloads/bt.cpp.o.d"
  "CMakeFiles/hms_workloads.dir/hms/workloads/cg.cpp.o"
  "CMakeFiles/hms_workloads.dir/hms/workloads/cg.cpp.o.d"
  "CMakeFiles/hms_workloads.dir/hms/workloads/ft.cpp.o"
  "CMakeFiles/hms_workloads.dir/hms/workloads/ft.cpp.o.d"
  "CMakeFiles/hms_workloads.dir/hms/workloads/graph500.cpp.o"
  "CMakeFiles/hms_workloads.dir/hms/workloads/graph500.cpp.o.d"
  "CMakeFiles/hms_workloads.dir/hms/workloads/hashing.cpp.o"
  "CMakeFiles/hms_workloads.dir/hms/workloads/hashing.cpp.o.d"
  "CMakeFiles/hms_workloads.dir/hms/workloads/is.cpp.o"
  "CMakeFiles/hms_workloads.dir/hms/workloads/is.cpp.o.d"
  "CMakeFiles/hms_workloads.dir/hms/workloads/lu.cpp.o"
  "CMakeFiles/hms_workloads.dir/hms/workloads/lu.cpp.o.d"
  "CMakeFiles/hms_workloads.dir/hms/workloads/registry.cpp.o"
  "CMakeFiles/hms_workloads.dir/hms/workloads/registry.cpp.o.d"
  "CMakeFiles/hms_workloads.dir/hms/workloads/sp.cpp.o"
  "CMakeFiles/hms_workloads.dir/hms/workloads/sp.cpp.o.d"
  "CMakeFiles/hms_workloads.dir/hms/workloads/stream_triad.cpp.o"
  "CMakeFiles/hms_workloads.dir/hms/workloads/stream_triad.cpp.o.d"
  "CMakeFiles/hms_workloads.dir/hms/workloads/velvet.cpp.o"
  "CMakeFiles/hms_workloads.dir/hms/workloads/velvet.cpp.o.d"
  "CMakeFiles/hms_workloads.dir/hms/workloads/virtual_address_space.cpp.o"
  "CMakeFiles/hms_workloads.dir/hms/workloads/virtual_address_space.cpp.o.d"
  "CMakeFiles/hms_workloads.dir/hms/workloads/workload.cpp.o"
  "CMakeFiles/hms_workloads.dir/hms/workloads/workload.cpp.o.d"
  "libhms_workloads.a"
  "libhms_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hms_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
