file(REMOVE_RECURSE
  "libhms_workloads.a"
)
