
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hms/workloads/amg.cpp" "src/CMakeFiles/hms_workloads.dir/hms/workloads/amg.cpp.o" "gcc" "src/CMakeFiles/hms_workloads.dir/hms/workloads/amg.cpp.o.d"
  "/root/repo/src/hms/workloads/bt.cpp" "src/CMakeFiles/hms_workloads.dir/hms/workloads/bt.cpp.o" "gcc" "src/CMakeFiles/hms_workloads.dir/hms/workloads/bt.cpp.o.d"
  "/root/repo/src/hms/workloads/cg.cpp" "src/CMakeFiles/hms_workloads.dir/hms/workloads/cg.cpp.o" "gcc" "src/CMakeFiles/hms_workloads.dir/hms/workloads/cg.cpp.o.d"
  "/root/repo/src/hms/workloads/ft.cpp" "src/CMakeFiles/hms_workloads.dir/hms/workloads/ft.cpp.o" "gcc" "src/CMakeFiles/hms_workloads.dir/hms/workloads/ft.cpp.o.d"
  "/root/repo/src/hms/workloads/graph500.cpp" "src/CMakeFiles/hms_workloads.dir/hms/workloads/graph500.cpp.o" "gcc" "src/CMakeFiles/hms_workloads.dir/hms/workloads/graph500.cpp.o.d"
  "/root/repo/src/hms/workloads/hashing.cpp" "src/CMakeFiles/hms_workloads.dir/hms/workloads/hashing.cpp.o" "gcc" "src/CMakeFiles/hms_workloads.dir/hms/workloads/hashing.cpp.o.d"
  "/root/repo/src/hms/workloads/is.cpp" "src/CMakeFiles/hms_workloads.dir/hms/workloads/is.cpp.o" "gcc" "src/CMakeFiles/hms_workloads.dir/hms/workloads/is.cpp.o.d"
  "/root/repo/src/hms/workloads/lu.cpp" "src/CMakeFiles/hms_workloads.dir/hms/workloads/lu.cpp.o" "gcc" "src/CMakeFiles/hms_workloads.dir/hms/workloads/lu.cpp.o.d"
  "/root/repo/src/hms/workloads/registry.cpp" "src/CMakeFiles/hms_workloads.dir/hms/workloads/registry.cpp.o" "gcc" "src/CMakeFiles/hms_workloads.dir/hms/workloads/registry.cpp.o.d"
  "/root/repo/src/hms/workloads/sp.cpp" "src/CMakeFiles/hms_workloads.dir/hms/workloads/sp.cpp.o" "gcc" "src/CMakeFiles/hms_workloads.dir/hms/workloads/sp.cpp.o.d"
  "/root/repo/src/hms/workloads/stream_triad.cpp" "src/CMakeFiles/hms_workloads.dir/hms/workloads/stream_triad.cpp.o" "gcc" "src/CMakeFiles/hms_workloads.dir/hms/workloads/stream_triad.cpp.o.d"
  "/root/repo/src/hms/workloads/velvet.cpp" "src/CMakeFiles/hms_workloads.dir/hms/workloads/velvet.cpp.o" "gcc" "src/CMakeFiles/hms_workloads.dir/hms/workloads/velvet.cpp.o.d"
  "/root/repo/src/hms/workloads/virtual_address_space.cpp" "src/CMakeFiles/hms_workloads.dir/hms/workloads/virtual_address_space.cpp.o" "gcc" "src/CMakeFiles/hms_workloads.dir/hms/workloads/virtual_address_space.cpp.o.d"
  "/root/repo/src/hms/workloads/workload.cpp" "src/CMakeFiles/hms_workloads.dir/hms/workloads/workload.cpp.o" "gcc" "src/CMakeFiles/hms_workloads.dir/hms/workloads/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hms_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hms_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
