# Empty dependencies file for hms_workloads.
# This may be replaced when dependencies are built.
