
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hms/trace/filters.cpp" "src/CMakeFiles/hms_trace.dir/hms/trace/filters.cpp.o" "gcc" "src/CMakeFiles/hms_trace.dir/hms/trace/filters.cpp.o.d"
  "/root/repo/src/hms/trace/interleave.cpp" "src/CMakeFiles/hms_trace.dir/hms/trace/interleave.cpp.o" "gcc" "src/CMakeFiles/hms_trace.dir/hms/trace/interleave.cpp.o.d"
  "/root/repo/src/hms/trace/text_io.cpp" "src/CMakeFiles/hms_trace.dir/hms/trace/text_io.cpp.o" "gcc" "src/CMakeFiles/hms_trace.dir/hms/trace/text_io.cpp.o.d"
  "/root/repo/src/hms/trace/trace_buffer.cpp" "src/CMakeFiles/hms_trace.dir/hms/trace/trace_buffer.cpp.o" "gcc" "src/CMakeFiles/hms_trace.dir/hms/trace/trace_buffer.cpp.o.d"
  "/root/repo/src/hms/trace/trace_io.cpp" "src/CMakeFiles/hms_trace.dir/hms/trace/trace_io.cpp.o" "gcc" "src/CMakeFiles/hms_trace.dir/hms/trace/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hms_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
