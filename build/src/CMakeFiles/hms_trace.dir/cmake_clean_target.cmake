file(REMOVE_RECURSE
  "libhms_trace.a"
)
