# Empty compiler generated dependencies file for hms_trace.
# This may be replaced when dependencies are built.
