file(REMOVE_RECURSE
  "CMakeFiles/hms_trace.dir/hms/trace/filters.cpp.o"
  "CMakeFiles/hms_trace.dir/hms/trace/filters.cpp.o.d"
  "CMakeFiles/hms_trace.dir/hms/trace/interleave.cpp.o"
  "CMakeFiles/hms_trace.dir/hms/trace/interleave.cpp.o.d"
  "CMakeFiles/hms_trace.dir/hms/trace/text_io.cpp.o"
  "CMakeFiles/hms_trace.dir/hms/trace/text_io.cpp.o.d"
  "CMakeFiles/hms_trace.dir/hms/trace/trace_buffer.cpp.o"
  "CMakeFiles/hms_trace.dir/hms/trace/trace_buffer.cpp.o.d"
  "CMakeFiles/hms_trace.dir/hms/trace/trace_io.cpp.o"
  "CMakeFiles/hms_trace.dir/hms/trace/trace_io.cpp.o.d"
  "libhms_trace.a"
  "libhms_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hms_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
