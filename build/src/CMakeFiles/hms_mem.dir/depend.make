# Empty dependencies file for hms_mem.
# This may be replaced when dependencies are built.
