file(REMOVE_RECURSE
  "CMakeFiles/hms_mem.dir/hms/mem/memory_device.cpp.o"
  "CMakeFiles/hms_mem.dir/hms/mem/memory_device.cpp.o.d"
  "CMakeFiles/hms_mem.dir/hms/mem/refresh.cpp.o"
  "CMakeFiles/hms_mem.dir/hms/mem/refresh.cpp.o.d"
  "CMakeFiles/hms_mem.dir/hms/mem/technology.cpp.o"
  "CMakeFiles/hms_mem.dir/hms/mem/technology.cpp.o.d"
  "CMakeFiles/hms_mem.dir/hms/mem/wear.cpp.o"
  "CMakeFiles/hms_mem.dir/hms/mem/wear.cpp.o.d"
  "libhms_mem.a"
  "libhms_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hms_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
