
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hms/mem/memory_device.cpp" "src/CMakeFiles/hms_mem.dir/hms/mem/memory_device.cpp.o" "gcc" "src/CMakeFiles/hms_mem.dir/hms/mem/memory_device.cpp.o.d"
  "/root/repo/src/hms/mem/refresh.cpp" "src/CMakeFiles/hms_mem.dir/hms/mem/refresh.cpp.o" "gcc" "src/CMakeFiles/hms_mem.dir/hms/mem/refresh.cpp.o.d"
  "/root/repo/src/hms/mem/technology.cpp" "src/CMakeFiles/hms_mem.dir/hms/mem/technology.cpp.o" "gcc" "src/CMakeFiles/hms_mem.dir/hms/mem/technology.cpp.o.d"
  "/root/repo/src/hms/mem/wear.cpp" "src/CMakeFiles/hms_mem.dir/hms/mem/wear.cpp.o" "gcc" "src/CMakeFiles/hms_mem.dir/hms/mem/wear.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hms_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
