file(REMOVE_RECURSE
  "libhms_mem.a"
)
