file(REMOVE_RECURSE
  "libhms_model.a"
)
