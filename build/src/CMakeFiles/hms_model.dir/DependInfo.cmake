
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hms/model/amat.cpp" "src/CMakeFiles/hms_model.dir/hms/model/amat.cpp.o" "gcc" "src/CMakeFiles/hms_model.dir/hms/model/amat.cpp.o.d"
  "/root/repo/src/hms/model/bandwidth.cpp" "src/CMakeFiles/hms_model.dir/hms/model/bandwidth.cpp.o" "gcc" "src/CMakeFiles/hms_model.dir/hms/model/bandwidth.cpp.o.d"
  "/root/repo/src/hms/model/cost.cpp" "src/CMakeFiles/hms_model.dir/hms/model/cost.cpp.o" "gcc" "src/CMakeFiles/hms_model.dir/hms/model/cost.cpp.o.d"
  "/root/repo/src/hms/model/energy.cpp" "src/CMakeFiles/hms_model.dir/hms/model/energy.cpp.o" "gcc" "src/CMakeFiles/hms_model.dir/hms/model/energy.cpp.o.d"
  "/root/repo/src/hms/model/report.cpp" "src/CMakeFiles/hms_model.dir/hms/model/report.cpp.o" "gcc" "src/CMakeFiles/hms_model.dir/hms/model/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hms_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hms_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hms_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hms_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
