file(REMOVE_RECURSE
  "CMakeFiles/hms_model.dir/hms/model/amat.cpp.o"
  "CMakeFiles/hms_model.dir/hms/model/amat.cpp.o.d"
  "CMakeFiles/hms_model.dir/hms/model/bandwidth.cpp.o"
  "CMakeFiles/hms_model.dir/hms/model/bandwidth.cpp.o.d"
  "CMakeFiles/hms_model.dir/hms/model/cost.cpp.o"
  "CMakeFiles/hms_model.dir/hms/model/cost.cpp.o.d"
  "CMakeFiles/hms_model.dir/hms/model/energy.cpp.o"
  "CMakeFiles/hms_model.dir/hms/model/energy.cpp.o.d"
  "CMakeFiles/hms_model.dir/hms/model/report.cpp.o"
  "CMakeFiles/hms_model.dir/hms/model/report.cpp.o.d"
  "libhms_model.a"
  "libhms_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hms_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
