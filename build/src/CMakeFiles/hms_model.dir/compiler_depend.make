# Empty compiler generated dependencies file for hms_model.
# This may be replaced when dependencies are built.
