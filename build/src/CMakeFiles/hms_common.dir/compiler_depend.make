# Empty compiler generated dependencies file for hms_common.
# This may be replaced when dependencies are built.
