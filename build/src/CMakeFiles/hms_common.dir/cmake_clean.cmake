file(REMOVE_RECURSE
  "CMakeFiles/hms_common.dir/hms/common/csv.cpp.o"
  "CMakeFiles/hms_common.dir/hms/common/csv.cpp.o.d"
  "CMakeFiles/hms_common.dir/hms/common/stats.cpp.o"
  "CMakeFiles/hms_common.dir/hms/common/stats.cpp.o.d"
  "CMakeFiles/hms_common.dir/hms/common/string_util.cpp.o"
  "CMakeFiles/hms_common.dir/hms/common/string_util.cpp.o.d"
  "CMakeFiles/hms_common.dir/hms/common/table.cpp.o"
  "CMakeFiles/hms_common.dir/hms/common/table.cpp.o.d"
  "libhms_common.a"
  "libhms_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hms_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
