file(REMOVE_RECURSE
  "libhms_common.a"
)
