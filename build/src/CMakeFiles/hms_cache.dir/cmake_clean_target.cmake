file(REMOVE_RECURSE
  "libhms_cache.a"
)
