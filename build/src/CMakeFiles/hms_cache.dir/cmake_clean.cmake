file(REMOVE_RECURSE
  "CMakeFiles/hms_cache.dir/hms/cache/dynamic_partition.cpp.o"
  "CMakeFiles/hms_cache.dir/hms/cache/dynamic_partition.cpp.o.d"
  "CMakeFiles/hms_cache.dir/hms/cache/hierarchy.cpp.o"
  "CMakeFiles/hms_cache.dir/hms/cache/hierarchy.cpp.o.d"
  "CMakeFiles/hms_cache.dir/hms/cache/partitioned_memory.cpp.o"
  "CMakeFiles/hms_cache.dir/hms/cache/partitioned_memory.cpp.o.d"
  "CMakeFiles/hms_cache.dir/hms/cache/replacement.cpp.o"
  "CMakeFiles/hms_cache.dir/hms/cache/replacement.cpp.o.d"
  "CMakeFiles/hms_cache.dir/hms/cache/set_assoc_cache.cpp.o"
  "CMakeFiles/hms_cache.dir/hms/cache/set_assoc_cache.cpp.o.d"
  "libhms_cache.a"
  "libhms_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hms_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
