
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hms/cache/dynamic_partition.cpp" "src/CMakeFiles/hms_cache.dir/hms/cache/dynamic_partition.cpp.o" "gcc" "src/CMakeFiles/hms_cache.dir/hms/cache/dynamic_partition.cpp.o.d"
  "/root/repo/src/hms/cache/hierarchy.cpp" "src/CMakeFiles/hms_cache.dir/hms/cache/hierarchy.cpp.o" "gcc" "src/CMakeFiles/hms_cache.dir/hms/cache/hierarchy.cpp.o.d"
  "/root/repo/src/hms/cache/partitioned_memory.cpp" "src/CMakeFiles/hms_cache.dir/hms/cache/partitioned_memory.cpp.o" "gcc" "src/CMakeFiles/hms_cache.dir/hms/cache/partitioned_memory.cpp.o.d"
  "/root/repo/src/hms/cache/replacement.cpp" "src/CMakeFiles/hms_cache.dir/hms/cache/replacement.cpp.o" "gcc" "src/CMakeFiles/hms_cache.dir/hms/cache/replacement.cpp.o.d"
  "/root/repo/src/hms/cache/set_assoc_cache.cpp" "src/CMakeFiles/hms_cache.dir/hms/cache/set_assoc_cache.cpp.o" "gcc" "src/CMakeFiles/hms_cache.dir/hms/cache/set_assoc_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hms_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hms_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hms_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
