# Empty compiler generated dependencies file for hms_cache.
# This may be replaced when dependencies are built.
