file(REMOVE_RECURSE
  "CMakeFiles/test_partitioned_memory.dir/test_partitioned_memory.cpp.o"
  "CMakeFiles/test_partitioned_memory.dir/test_partitioned_memory.cpp.o.d"
  "test_partitioned_memory"
  "test_partitioned_memory.pdb"
  "test_partitioned_memory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partitioned_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
