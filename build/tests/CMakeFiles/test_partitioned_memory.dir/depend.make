# Empty dependencies file for test_partitioned_memory.
# This may be replaced when dependencies are built.
