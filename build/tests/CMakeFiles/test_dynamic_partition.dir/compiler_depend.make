# Empty compiler generated dependencies file for test_dynamic_partition.
# This may be replaced when dependencies are built.
