file(REMOVE_RECURSE
  "CMakeFiles/test_wear.dir/test_wear.cpp.o"
  "CMakeFiles/test_wear.dir/test_wear.cpp.o.d"
  "test_wear"
  "test_wear.pdb"
  "test_wear[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
