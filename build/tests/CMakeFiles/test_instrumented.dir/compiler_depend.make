# Empty compiler generated dependencies file for test_instrumented.
# This may be replaced when dependencies are built.
