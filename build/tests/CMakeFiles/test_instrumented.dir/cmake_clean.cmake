file(REMOVE_RECURSE
  "CMakeFiles/test_instrumented.dir/test_instrumented.cpp.o"
  "CMakeFiles/test_instrumented.dir/test_instrumented.cpp.o.d"
  "test_instrumented"
  "test_instrumented.pdb"
  "test_instrumented[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_instrumented.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
