file(REMOVE_RECURSE
  "CMakeFiles/test_refresh.dir/test_refresh.cpp.o"
  "CMakeFiles/test_refresh.dir/test_refresh.cpp.o.d"
  "test_refresh"
  "test_refresh.pdb"
  "test_refresh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_refresh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
