# Empty compiler generated dependencies file for test_memory_device.
# This may be replaced when dependencies are built.
