file(REMOVE_RECURSE
  "CMakeFiles/test_memory_device.dir/test_memory_device.cpp.o"
  "CMakeFiles/test_memory_device.dir/test_memory_device.cpp.o.d"
  "test_memory_device"
  "test_memory_device.pdb"
  "test_memory_device[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memory_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
