file(REMOVE_RECURSE
  "CMakeFiles/test_vas.dir/test_vas.cpp.o"
  "CMakeFiles/test_vas.dir/test_vas.cpp.o.d"
  "test_vas"
  "test_vas.pdb"
  "test_vas[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
