# Empty dependencies file for test_vas.
# This may be replaced when dependencies are built.
