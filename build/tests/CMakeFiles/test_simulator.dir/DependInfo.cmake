
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_simulator.cpp" "tests/CMakeFiles/test_simulator.dir/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/test_simulator.dir/test_simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hms_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hms_designs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hms_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hms_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hms_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hms_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hms_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hms_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
