# Empty compiler generated dependencies file for test_cache_differential.
# This may be replaced when dependencies are built.
