file(REMOVE_RECURSE
  "CMakeFiles/test_cache_differential.dir/test_cache_differential.cpp.o"
  "CMakeFiles/test_cache_differential.dir/test_cache_differential.cpp.o.d"
  "test_cache_differential"
  "test_cache_differential.pdb"
  "test_cache_differential[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_differential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
