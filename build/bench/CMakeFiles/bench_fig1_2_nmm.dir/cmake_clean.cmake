file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_2_nmm.dir/bench_fig1_2_nmm.cpp.o"
  "CMakeFiles/bench_fig1_2_nmm.dir/bench_fig1_2_nmm.cpp.o.d"
  "bench_fig1_2_nmm"
  "bench_fig1_2_nmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_2_nmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
