# Empty compiler generated dependencies file for bench_fig1_2_nmm.
# This may be replaced when dependencies are built.
