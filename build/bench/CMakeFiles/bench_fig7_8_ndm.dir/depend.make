# Empty dependencies file for bench_fig7_8_ndm.
# This may be replaced when dependencies are built.
