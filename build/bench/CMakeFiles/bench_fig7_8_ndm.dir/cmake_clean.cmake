file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_8_ndm.dir/bench_fig7_8_ndm.cpp.o"
  "CMakeFiles/bench_fig7_8_ndm.dir/bench_fig7_8_ndm.cpp.o.d"
  "bench_fig7_8_ndm"
  "bench_fig7_8_ndm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_8_ndm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
