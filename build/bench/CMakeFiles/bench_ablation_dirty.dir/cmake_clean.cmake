file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dirty.dir/bench_ablation_dirty.cpp.o"
  "CMakeFiles/bench_ablation_dirty.dir/bench_ablation_dirty.cpp.o.d"
  "bench_ablation_dirty"
  "bench_ablation_dirty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dirty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
