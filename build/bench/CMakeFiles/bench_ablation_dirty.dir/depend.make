# Empty dependencies file for bench_ablation_dirty.
# This may be replaced when dependencies are built.
