# Empty compiler generated dependencies file for bench_ext_cost.
# This may be replaced when dependencies are built.
