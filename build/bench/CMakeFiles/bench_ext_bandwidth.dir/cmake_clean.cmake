file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_bandwidth.dir/bench_ext_bandwidth.cpp.o"
  "CMakeFiles/bench_ext_bandwidth.dir/bench_ext_bandwidth.cpp.o.d"
  "bench_ext_bandwidth"
  "bench_ext_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
