file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_dynamic_ndm.dir/bench_ext_dynamic_ndm.cpp.o"
  "CMakeFiles/bench_ext_dynamic_ndm.dir/bench_ext_dynamic_ndm.cpp.o.d"
  "bench_ext_dynamic_ndm"
  "bench_ext_dynamic_ndm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_dynamic_ndm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
