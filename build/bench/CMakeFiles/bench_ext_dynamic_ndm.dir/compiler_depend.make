# Empty compiler generated dependencies file for bench_ext_dynamic_ndm.
# This may be replaced when dependencies are built.
