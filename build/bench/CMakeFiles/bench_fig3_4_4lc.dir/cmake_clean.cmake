file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_4_4lc.dir/bench_fig3_4_4lc.cpp.o"
  "CMakeFiles/bench_fig3_4_4lc.dir/bench_fig3_4_4lc.cpp.o.d"
  "bench_fig3_4_4lc"
  "bench_fig3_4_4lc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_4_4lc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
