# Empty dependencies file for bench_fig5_6_4lcnvm.
# This may be replaced when dependencies are built.
