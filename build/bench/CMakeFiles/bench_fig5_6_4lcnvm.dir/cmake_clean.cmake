file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_6_4lcnvm.dir/bench_fig5_6_4lcnvm.cpp.o"
  "CMakeFiles/bench_fig5_6_4lcnvm.dir/bench_fig5_6_4lcnvm.cpp.o.d"
  "bench_fig5_6_4lcnvm"
  "bench_fig5_6_4lcnvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_6_4lcnvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
