file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_tech.dir/bench_table1_tech.cpp.o"
  "CMakeFiles/bench_table1_tech.dir/bench_table1_tech.cpp.o.d"
  "bench_table1_tech"
  "bench_table1_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
