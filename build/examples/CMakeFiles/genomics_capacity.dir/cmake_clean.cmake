file(REMOVE_RECURSE
  "CMakeFiles/genomics_capacity.dir/genomics_capacity.cpp.o"
  "CMakeFiles/genomics_capacity.dir/genomics_capacity.cpp.o.d"
  "genomics_capacity"
  "genomics_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genomics_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
