# Empty dependencies file for genomics_capacity.
# This may be replaced when dependencies are built.
