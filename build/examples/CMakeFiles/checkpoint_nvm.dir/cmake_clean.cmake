file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_nvm.dir/checkpoint_nvm.cpp.o"
  "CMakeFiles/checkpoint_nvm.dir/checkpoint_nvm.cpp.o.d"
  "checkpoint_nvm"
  "checkpoint_nvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_nvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
