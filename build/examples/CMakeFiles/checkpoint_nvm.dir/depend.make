# Empty dependencies file for checkpoint_nvm.
# This may be replaced when dependencies are built.
