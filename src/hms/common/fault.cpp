#include "hms/common/fault.hpp"

#include <chrono>
#include <thread>

#include "hms/common/cancel.hpp"

namespace hms {

std::atomic<FaultInjector*> FaultInjector::active_{nullptr};

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Executes one fired fault. Runs OUTSIDE the injector mutex: a stall
/// sleeps in 1 ms slices polling the thread's ambient CancellationToken
/// (throwing CancelledError when the watchdog or an interrupt cuts it
/// short, returning normally if the stall runs its course); a non-stall
/// fault throws FaultInjectedError.
void execute_fire(const std::string& site, const FaultSpec& spec) {
  if (spec.stall_ms == 0) {
    const std::string message = spec.message.empty()
                                    ? "fault injected at " + site
                                    : spec.message;
    throw FaultInjectedError(message, spec.transient);
  }
  using clock = std::chrono::steady_clock;
  const auto until = clock::now() + std::chrono::milliseconds(spec.stall_ms);
  while (clock::now() < until) {
    if (CancellationToken* token = CancellationToken::current()) {
      token->throw_if_cancelled("stalled at " + site);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace

FaultInjector::FaultInjector(std::uint64_t seed) : seed_(seed) {}

void FaultInjector::arm(const std::string& site, FaultSpec spec) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& state = sites_[site];
  state.spec = std::move(spec);
  state.armed = true;
  state.fires = 0;
}

void FaultInjector::disarm(const std::string& site) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sites_.find(site);
  if (it != sites_.end()) it->second.armed = false;
}

void FaultInjector::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  sites_.clear();
}

void FaultInjector::hit(std::string_view site) {
  // A thread-local ScopedFaultIndex owns the decision for routed sites:
  // the hit is decided at its canonical slot and tallied shard-locally
  // instead of bumping the interleaving-dependent shared counter.
  if (ScopedFaultIndex::consume(site)) return;
  // Decide (and bump counters) under the mutex; run the consequence — a
  // throw or a stall that may sleep for the full budget — after releasing
  // it, so a stalled site never blocks other threads' fault points.
  FaultSpec spec;
  std::string site_name;
  bool fired = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = sites_.find(site);
    if (it == sites_.end()) {
      it = sites_.emplace(std::string(site), SiteState{}).first;
    }
    SiteState& state = it->second;
    ++state.hits;
    if (!state.armed) return;
    if (state.hits <= state.spec.skip_first) return;
    if (state.fires >= state.spec.max_fires) return;
    if (state.spec.probability < 1.0) {
      // Deterministic per-(seed, site, hit index) coin flip: identical
      // arming fires on identical hit indices regardless of thread
      // interleaving.
      const std::uint64_t roll =
          splitmix64(seed_ ^ fnv1a(site) ^ state.hits);
      const double uniform =
          static_cast<double>(roll >> 11) * 0x1.0p-53;  // [0, 1)
      if (uniform >= state.spec.probability) return;
    }
    ++state.fires;
    fired = true;
    spec = state.spec;
    site_name = it->first;
  }
  if (fired) execute_fire(site_name, spec);
}

bool FaultInjector::hit_at(std::string_view site, std::uint64_t index) {
  FaultSpec spec;
  std::string site_name;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sites_.find(site);
    if (it == sites_.end() || !it->second.armed) return false;
    spec = it->second.spec;
    site_name = it->first;
  }
  if (index <= spec.skip_first) return false;

  // The decision for one index is a pure function of (seed, site, index) —
  // the same coin hit() flips, with the shared counter replaced by the
  // caller's canonical index.
  const auto fires_at = [&](std::uint64_t i) {
    if (spec.probability >= 1.0) return true;
    const std::uint64_t roll = splitmix64(seed_ ^ fnv1a(site) ^ i);
    const double uniform = static_cast<double>(roll >> 11) * 0x1.0p-53;
    return uniform < spec.probability;
  };
  if (!fires_at(index)) return false;
  if (spec.max_fires != std::numeric_limits<std::uint64_t>::max()) {
    // Budget consumed before this index, recomputed from the pure decision
    // so it is interleaving-independent. Closed form when every eligible
    // hit fires; otherwise a scan over the eligible prefix (low-frequency
    // sites only; see header).
    std::uint64_t prior = 0;
    if (spec.probability >= 1.0) {
      prior = index - spec.skip_first - 1;
    } else {
      for (std::uint64_t i = spec.skip_first + 1; i < index; ++i) {
        if (fires_at(i)) ++prior;
      }
    }
    if (prior >= spec.max_fires) return false;
  }
  execute_fire(site_name, spec);
  return true;  // a stall fired and ran its course
}

void FaultInjector::merge_counts(std::string_view site, std::uint64_t hits,
                                 std::uint64_t fires) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    it = sites_.emplace(std::string(site), SiteState{}).first;
  }
  it->second.hits += hits;
  it->second.fires += fires;
}

void ShardFaultAccount::hit(std::string_view site, std::uint64_t index) {
  if (injector_ == nullptr) return;
  Tally* tally = nullptr;
  for (auto& t : tallies_) {
    if (t.site == site) {
      tally = &t;
      break;
    }
  }
  if (tally == nullptr) {
    tallies_.push_back(Tally{std::string(site), 0, 0});
    tally = &tallies_.back();
  }
  ++tally->hits;
  try {
    if (injector_->hit_at(site, index)) ++tally->fires;
  } catch (const FaultInjectedError&) {
    ++tally->fires;
    throw;
  } catch (const CancelledError&) {
    ++tally->fires;  // a stall cut short by the watchdog still fired
    throw;
  }
}

void ShardFaultAccount::seal() noexcept {
  if (injector_ == nullptr) return;
  for (const auto& t : tallies_) {
    injector_->merge_counts(t.site, t.hits, t.fires);
  }
  tallies_.clear();
}

thread_local ScopedFaultIndex* ScopedFaultIndex::current_ = nullptr;

ScopedFaultIndex::ScopedFaultIndex(ShardFaultAccount& account)
    : account_(account), previous_(current_) {
  current_ = this;
}

ScopedFaultIndex::~ScopedFaultIndex() { current_ = previous_; }

void ScopedFaultIndex::route(std::string site,
                             std::vector<std::uint64_t> slots) {
  routes_.push_back(Route{std::move(site), std::move(slots), 0});
}

bool ScopedFaultIndex::consume(std::string_view site) {
  ScopedFaultIndex* scope = current_;
  if (scope == nullptr) return false;
  for (auto& route : scope->routes_) {
    if (route.site == site && route.next < route.slots.size()) {
      // ShardFaultAccount::hit applies the canonical hit_at decision and
      // tallies locally; a fired fault propagates out of here exactly like
      // it would from the shared-counter path.
      scope->account_.hit(site, route.slots[route.next++]);
      return true;
    }
  }
  return false;
}

std::uint64_t FaultInjector::hits(const std::string& site) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sites_.find(site);
  return it != sites_.end() ? it->second.hits : 0;
}

std::uint64_t FaultInjector::fires(const std::string& site) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sites_.find(site);
  return it != sites_.end() ? it->second.fires : 0;
}

}  // namespace hms
