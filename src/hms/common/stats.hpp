// Streaming statistics used by experiment aggregation and the test suite.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace hms {

/// Welford streaming mean/variance with min/max tracking.
class RunningStat {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Merges another accumulator (Chan et al. parallel combination).
  void merge(const RunningStat& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Geometric mean of strictly positive values; throws hms::Error otherwise.
/// The paper reports figure values as averages of per-benchmark normalized
/// ratios; we expose both arithmetic and geometric means.
[[nodiscard]] double geometric_mean(std::span<const double> values);

/// Arithmetic mean; throws hms::Error on an empty span.
[[nodiscard]] double arithmetic_mean(std::span<const double> values);

/// Fixed-width histogram over [lo, hi); values outside are clamped into the
/// first/last bin. Used by the wear-levelling ablation to report per-line
/// write-count distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const;
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Value below which `q` (0..1) of the mass lies, by linear interpolation
  /// within the containing bin.
  [[nodiscard]] double quantile(double q) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace hms
