// Deterministic exponential backoff with jitter for sweep-cell retries.
//
// The retry loops used to re-attempt immediately, which is the wrong shape
// for the conditions retries model (transient I/O pressure, a contended
// device): an immediate retry re-fires into the same condition, and a
// fixed delay synchronizes retries across cells. The schedule here is the
// production one — exponential growth, a cap, and jitter — but fully
// deterministic: the jitter is a pure function of (seed, attempt), so a
// sweep replays the identical retry timing run-to-run and the simulation
// results stay reproducible.
//
// delay(attempt) = min(base << attempt, cap) + jitter,
//   jitter in [0, delay/2] from splitmix64(seed ^ attempt)
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

#include "hms/common/cancel.hpp"
#include "hms/common/random.hpp"

namespace hms {

/// Backoff delay in ms before retry `attempt` (0-based: the first retry
/// waits roughly base_ms). base_ms == 0 disables backoff entirely.
[[nodiscard]] inline std::uint64_t backoff_delay_ms(
    std::uint32_t attempt, std::uint64_t seed, std::uint64_t base_ms,
    std::uint64_t cap_ms = 10'000) {
  if (base_ms == 0) return 0;
  // Saturating shift: past 63 doublings the cap has long since won.
  const std::uint64_t exponential =
      attempt < 63 && (base_ms << attempt) >> attempt == base_ms
          ? base_ms << attempt
          : cap_ms;
  const std::uint64_t delay = exponential < cap_ms ? exponential : cap_ms;
  SplitMix64 mix(seed ^ (0x5bf0'3635'dad2'3f1dull + attempt));
  const std::uint64_t jitter = mix.next() % (delay / 2 + 1);
  return delay + jitter;
}

/// Sleeps `delay_ms`, polling the process interrupt flag every millisecond
/// so a signal cuts the wait short. (Watchdog deadlines deliberately do not
/// cancel the sleep — a deliberate wait is not a hung cell; retry loops
/// re-arm their deadline after the sleep, before the next attempt.) Returns
/// false when interrupted — callers should stop retrying and surface the
/// interrupt instead.
inline bool backoff_sleep(std::uint64_t delay_ms) {
  using clock = std::chrono::steady_clock;
  const auto until = clock::now() + std::chrono::milliseconds(delay_ms);
  while (clock::now() < until) {
    if (interrupt_signal() != 0) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return interrupt_signal() == 0;
}

}  // namespace hms
