// Small string helpers shared by CLI-style examples and report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hms {

/// Splits on `delim`, keeping empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// Strips ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view s);

/// ASCII lowercase copy.
[[nodiscard]] std::string to_lower(std::string_view s);

/// True if `s` equals `other` ignoring ASCII case.
[[nodiscard]] bool iequals(std::string_view a, std::string_view b);

/// Parses a byte size with optional binary suffix: "64", "512B", "4KB",
/// "4KiB", "16MB", "2GB" (KB/MB/GB treated as binary, matching the paper's
/// usage). Throws hms::Error on malformed input.
[[nodiscard]] std::uint64_t parse_byte_size(std::string_view s);

}  // namespace hms
