// Fundamental vocabulary types shared by every hms module.
#pragma once

#include <cstdint>
#include <string_view>

namespace hms {

/// Byte address in the simulated virtual address space.
using Address = std::uint64_t;

/// Counter type for access/hit/miss statistics. 64-bit: long simulations
/// easily exceed 2^32 references.
using Count = std::uint64_t;

/// Whether a memory reference reads or writes.
enum class AccessType : std::uint8_t { Load = 0, Store = 1 };

[[nodiscard]] constexpr std::string_view to_string(AccessType t) noexcept {
  return t == AccessType::Load ? "load" : "store";
}

/// Identifies the originating hardware context of a reference when streams
/// from several cores are interleaved. 16 bits keeps MemoryAccess at
/// 16 bytes; the paper's systems top out well below 65536 contexts.
using CoreId = std::uint16_t;

namespace literals {
// Binary byte-size literals: 4_KiB, 20_MiB, 2_GiB.
constexpr std::uint64_t operator""_KiB(unsigned long long v) { return v << 10; }
constexpr std::uint64_t operator""_MiB(unsigned long long v) { return v << 20; }
constexpr std::uint64_t operator""_GiB(unsigned long long v) { return v << 30; }
}  // namespace literals

}  // namespace hms
