// ASCII table rendering for bench/example output (the "same rows the paper
// reports" requirement of the benchmark harness).
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace hms {

/// Collects rows of string cells and renders a column-aligned ASCII table.
/// Numeric-looking cells are right-aligned, text cells left-aligned.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds a data row; must match the header width.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders with a rule under the header, e.g.
  ///   config  pages  norm-time
  ///   ------  -----  ---------
  ///   N1      4096       1.052
  void render(std::ostream& out) const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimal places (fixed).
[[nodiscard]] std::string fmt_fixed(double v, int digits = 3);

/// Formats a byte count using binary units ("64 B", "512 KiB", "20 MiB").
[[nodiscard]] std::string fmt_bytes(std::uint64_t bytes);

}  // namespace hms
