#include "hms/common/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <iomanip>
#include <sstream>

#include "hms/common/error.hpp"

namespace hms {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  bool digit_seen = false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit_seen = true;
    } else if (c != '.' && c != '-' && c != '+' && c != 'e' && c != 'E' &&
               c != '%' && c != 'x') {
      return false;
    }
  }
  return digit_seen;
}

}  // namespace

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  check(!header_.empty(), "TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> cells) {
  check(cells.size() == header_.size(),
        "TextTable: row width does not match header");
  rows_.push_back(std::move(cells));
}

void TextTable::render(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << "  ";
      const bool right = looks_numeric(row[c]);
      out << (right ? std::right : std::left)
          << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    out << '\n';
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c) out << "  ";
    out << std::string(widths[c], '-');
  }
  out << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string TextTable::to_string() const {
  std::ostringstream oss;
  render(oss);
  return oss.str();
}

std::string fmt_fixed(double v, int digits) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(digits) << v;
  return oss.str();
}

std::string fmt_bytes(std::uint64_t bytes) {
  constexpr std::uint64_t kib = 1024, mib = kib * 1024, gib = mib * 1024;
  std::ostringstream oss;
  if (bytes >= gib && bytes % gib == 0) {
    oss << bytes / gib << " GiB";
  } else if (bytes >= mib && bytes % mib == 0) {
    oss << bytes / mib << " MiB";
  } else if (bytes >= kib && bytes % kib == 0) {
    oss << bytes / kib << " KiB";
  } else {
    oss << bytes << " B";
  }
  return oss.str();
}

}  // namespace hms
