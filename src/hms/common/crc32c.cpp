#include "hms/common/crc32c.hpp"

#include <array>

#if defined(__x86_64__) || defined(__i386__)
#define HMS_HAVE_SSE42_CRC 1
#include <nmmintrin.h>
#else
#define HMS_HAVE_SSE42_CRC 0
#endif

namespace hms {

namespace {

// Reflected Castagnoli polynomial.
constexpr std::uint32_t kPoly = 0x82f63b78u;

/// Slice-by-8 tables: table[0] is the classic byte-at-a-time table,
/// table[k][b] advances byte b through k additional zero bytes, so eight
/// input bytes fold in one round of table lookups.
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
};

constexpr Tables make_tables() {
  Tables tables;
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) != 0 ? kPoly : 0u);
    }
    tables.t[0][i] = crc;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      const std::uint32_t prev = tables.t[k - 1][i];
      tables.t[k][i] = tables.t[0][prev & 0xffu] ^ (prev >> 8);
    }
  }
  return tables;
}

constexpr Tables kTables = make_tables();

std::uint32_t crc32c_sw(const std::uint8_t* p, std::size_t n,
                        std::uint32_t crc) noexcept {
  const auto& t = kTables.t;
  while (n >= 8) {
    const std::uint32_t lo =
        crc ^ (static_cast<std::uint32_t>(p[0]) |
               (static_cast<std::uint32_t>(p[1]) << 8) |
               (static_cast<std::uint32_t>(p[2]) << 16) |
               (static_cast<std::uint32_t>(p[3]) << 24));
    crc = t[7][lo & 0xffu] ^ t[6][(lo >> 8) & 0xffu] ^
          t[5][(lo >> 16) & 0xffu] ^ t[4][lo >> 24] ^ t[3][p[4]] ^
          t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- != 0) {
    crc = t[0][(crc ^ *p++) & 0xffu] ^ (crc >> 8);
  }
  return crc;
}

#if HMS_HAVE_SSE42_CRC

__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw(
    const std::uint8_t* p, std::size_t n, std::uint32_t crc) noexcept {
  // Head bytes up to 8-byte alignment, then 8-at-a-time, then the tail.
  while (n != 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --n;
  }
#if defined(__x86_64__)
  std::uint64_t crc64 = crc;
  while (n >= 8) {
    crc64 = _mm_crc32_u64(crc64, *reinterpret_cast<const std::uint64_t*>(p));
    p += 8;
    n -= 8;
  }
  crc = static_cast<std::uint32_t>(crc64);
#else
  while (n >= 4) {
    crc = _mm_crc32_u32(crc, *reinterpret_cast<const std::uint32_t*>(p));
    p += 4;
    n -= 4;
  }
#endif
  while (n-- != 0) {
    crc = _mm_crc32_u8(crc, *p++);
  }
  return crc;
}

const bool kUseHardwareCrc = __builtin_cpu_supports("sse4.2") != 0;

#else
constexpr bool kUseHardwareCrc = false;
#endif

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t size,
                     std::uint32_t seed) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  const std::uint32_t crc = ~seed;
#if HMS_HAVE_SSE42_CRC
  if (kUseHardwareCrc) return ~crc32c_hw(p, size, crc);
#endif
  return ~crc32c_sw(p, size, crc);
}

bool crc32c_hardware_active() noexcept { return kUseHardwareCrc; }

}  // namespace hms
