// Deterministic pseudo-random number generation for workload synthesis.
//
// Workload kernels must reproduce bit-identical address streams across runs
// and platforms given the same seed (DESIGN.md "Determinism"), so we carry
// our own generator instead of relying on the unspecified std::mt19937
// distributions: xoshiro256** seeded via SplitMix64, with explicitly
// specified bounded-integer and floating-point mappings.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace hms {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality, 2^256-1 period. Satisfies
/// std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  constexpr explicit Xoshiro256(std::uint64_t seed = 0x9df3a1c25b6e48f7ULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound), bound > 0. Lemire-style multiply-shift
  /// mapping: tiny bias (< 2^-64 * bound) is irrelevant for workload
  /// synthesis and keeps the stream platform-deterministic.
  constexpr std::uint64_t below(std::uint64_t bound) {
    __extension__ using Wide = unsigned __int128;
    const auto x = (*this)();
    return static_cast<std::uint64_t>((static_cast<Wide>(x) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  constexpr double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  constexpr bool chance(double p) { return uniform01() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Zipf-distributed sampler over [0, n): P(k) proportional to 1/(k+1)^s.
/// Real data-intensive workloads touch their keys with heavy skew (hot
/// hash-table entries, graph hubs, genome repeats); the workload kernels
/// use this to reproduce that locality. Deterministic given the caller's
/// Xoshiro256 stream. Construction is O(n); sampling O(log n).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) : cdf_(n) {
    double sum = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      sum += 1.0 / pow_s(static_cast<double>(k + 1), s);
      cdf_[k] = sum;
    }
    for (auto& c : cdf_) c /= sum;
  }

  /// Draws a rank in [0, n); rank 0 is the hottest.
  std::size_t operator()(Xoshiro256& rng) const {
    const double u = rng.uniform01();
    // First index with cdf >= u.
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

 private:
  /// pow(base, s) without <cmath> in a header: exp/log via builtins.
  static double pow_s(double base, double s) {
    return __builtin_exp(s * __builtin_log(base));
  }

  std::vector<double> cdf_;
};

}  // namespace hms
