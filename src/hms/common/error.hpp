// Error handling: all precondition violations throw hms::Error so callers
// (tests, examples, benches) get a message instead of UB.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace hms {

/// Base exception for all hms failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a configuration is structurally invalid (non-power-of-two
/// capacity, zero associativity, page smaller than upstream line, ...).
class ConfigError : public Error {
 public:
  using Error::Error;
};

/// Thrown on malformed trace files or streams.
class TraceError : public Error {
 public:
  using Error::Error;
};

/// Throws ConfigError with `message` unless `condition` holds.
inline void check_config(bool condition, std::string_view message) {
  if (!condition) throw ConfigError(std::string(message));
}

/// Throws Error with `message` unless `condition` holds. Used for
/// preconditions that indicate a caller bug rather than bad user input.
inline void check(bool condition, std::string_view message) {
  if (!condition) throw Error(std::string(message));
}

}  // namespace hms
