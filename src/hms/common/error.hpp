// Error handling: all precondition violations throw hms::Error so callers
// (tests, examples, benches) get a message instead of UB.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace hms {

/// Base exception for all hms failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a configuration is structurally invalid (non-power-of-two
/// capacity, zero associativity, page smaller than upstream line, ...).
class ConfigError : public Error {
 public:
  using Error::Error;
};

/// Thrown on file/stream failures: unreadable paths, short reads, corrupt
/// headers, failed writes. Base of the more specific TraceError.
class IoError : public Error {
 public:
  using Error::Error;
};

/// Thrown on malformed trace files or streams.
class TraceError : public IoError {
 public:
  using IoError::IoError;
};

/// Thrown when a simulation step fails at runtime (a sweep cell, a replay,
/// an injected fault) as opposed to being misconfigured up front.
class SimulationError : public Error {
 public:
  using Error::Error;
};

/// "context: what" — the message shape used when chaining errors outward
/// ("config N3 / workload cg: replay_back: ...").
[[nodiscard]] inline std::string with_context(std::string_view context,
                                              std::string_view what) {
  std::string out;
  out.reserve(context.size() + 2 + what.size());
  out.append(context).append(": ").append(what);
  return out;
}

/// Rethrows the in-flight exception with `context` prepended to its message,
/// preserving the hms error subclass (foreign exceptions become hms::Error).
/// Call from a catch block only.
[[noreturn]] inline void rethrow_with_context(std::string_view context) {
  try {
    throw;
  } catch (const ConfigError& e) {
    throw ConfigError(with_context(context, e.what()));
  } catch (const TraceError& e) {
    throw TraceError(with_context(context, e.what()));
  } catch (const IoError& e) {
    throw IoError(with_context(context, e.what()));
  } catch (const SimulationError& e) {
    throw SimulationError(with_context(context, e.what()));
  } catch (const std::exception& e) {
    throw Error(with_context(context, e.what()));
  } catch (...) {
    throw Error(with_context(context, "unknown exception"));
  }
}

/// Throws ConfigError with `message` unless `condition` holds.
inline void check_config(bool condition, std::string_view message) {
  if (!condition) throw ConfigError(std::string(message));
}

/// Throws Error with `message` unless `condition` holds. Used for
/// preconditions that indicate a caller bug rather than bad user input.
inline void check(bool condition, std::string_view message) {
  if (!condition) throw Error(std::string(message));
}

}  // namespace hms
