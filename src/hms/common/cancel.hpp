// Cooperative cancellation: watchdog deadlines and clean interrupts.
//
// Long unattended sweeps need two kinds of "stop": a per-cell watchdog that
// turns a hung cell into a degraded cell instead of hanging the whole
// sweep, and a process-level interrupt (SIGINT/SIGTERM) that seals
// in-flight work, flushes the checkpoint, and exits distinguishably from a
// failure. Both are cooperative — replay loops poll a CancellationToken at
// chunk granularity, and blocking primitives (the fault injector's stall
// faults) poll the thread's ambient token — so no thread is ever killed
// mid-update.
//
// A token combines an optional deadline (armed per replay attempt from
// HMS_CELL_TIMEOUT_MS) with the process-wide interrupt flag that the signal
// handlers set. `CancelScope` publishes a token as the calling thread's
// ambient token (CancellationToken::current()), which is how code that
// cannot take a token parameter — fault-point stalls deep inside a replay —
// still honors the watchdog.
//
// Exit-code contract for sweep-driving tools (DESIGN.md §6):
//   0  clean, complete results
//   1  error (setup failure, unrecoverable sweep abort)
//   2  clean interrupt (signal observed; checkpoint flushed and resumable)
//   3  completed, but one or more cells degraded (partial tables)
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "hms/common/error.hpp"

namespace hms {

enum class CancelKind : std::uint8_t { none = 0, timeout, interrupt };

/// Exit-code contract (see file comment).
inline constexpr int kExitOk = 0;
inline constexpr int kExitError = 1;
inline constexpr int kExitInterrupted = 2;
inline constexpr int kExitDegraded = 3;

/// Thrown when a cancellation point observes a timeout or interrupt.
/// Timeout cancellations degrade one cell; interrupt cancellations abort
/// the sweep (callers map kind() == interrupt to kExitInterrupted).
class CancelledError : public SimulationError {
 public:
  CancelledError(const std::string& what, CancelKind kind)
      : SimulationError(what), kind_(kind) {}
  [[nodiscard]] CancelKind kind() const noexcept { return kind_; }

 private:
  CancelKind kind_;
};

/// The signal number recorded by the last interrupt request (0 = none).
/// Set asynchronously by the installed signal handlers; tests drive it
/// directly via raise_interrupt / clear_interrupt.
[[nodiscard]] int interrupt_signal() noexcept;
/// Records an interrupt request. Async-signal-safe (one atomic store).
void raise_interrupt(int sig) noexcept;
/// Clears a recorded interrupt (tests; a fresh tool process starts clear).
void clear_interrupt() noexcept;

/// Installs SIGINT + SIGTERM handlers that call raise_interrupt, restoring
/// the previous handlers on destruction. Tools install one at the top of
/// main; library code never installs handlers itself.
class ScopedSignalHandlers {
 public:
  ScopedSignalHandlers();
  ~ScopedSignalHandlers();
  ScopedSignalHandlers(const ScopedSignalHandlers&) = delete;
  ScopedSignalHandlers& operator=(const ScopedSignalHandlers&) = delete;

 private:
  struct Impl;
  Impl* impl_;
};

/// See file comment. A default-constructed token never cancels; a token
/// with a timeout arms a deadline that can be re-armed per attempt. Every
/// token observes the process interrupt flag. One token belongs to one
/// thread (deadline state is unsynchronized); the interrupt flag it reads
/// is atomic.
class CancellationToken {
 public:
  CancellationToken() = default;
  /// timeout_ms == 0 means no deadline (interrupt-only token).
  explicit CancellationToken(std::uint64_t timeout_ms) {
    if (timeout_ms != 0) arm_deadline(timeout_ms);
  }

  /// Arms (or replaces) the deadline at now + timeout_ms and remembers the
  /// budget for rearm().
  void arm_deadline(std::uint64_t timeout_ms) {
    timeout_ms_ = timeout_ms;
    rearm();
  }
  /// Resets the deadline to now + the stored budget. Replay loops call this
  /// after degrading a timed-out cell so the surviving cells get a fresh
  /// budget. No-op on tokens without a deadline.
  void rearm() noexcept {
    if (timeout_ms_ != 0) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms_);
    }
  }

  [[nodiscard]] std::uint64_t timeout_ms() const noexcept {
    return timeout_ms_;
  }

  /// Polls. Interrupt wins over timeout (process shutdown outranks a cell).
  [[nodiscard]] CancelKind state() const noexcept {
    if (interrupt_signal() != 0) return CancelKind::interrupt;
    if (timeout_ms_ != 0 && std::chrono::steady_clock::now() >= deadline_) {
      return CancelKind::timeout;
    }
    return CancelKind::none;
  }
  [[nodiscard]] bool cancelled() const noexcept {
    return state() != CancelKind::none;
  }

  /// Throws CancelledError("<context>: timed out after Nms" / ": interrupted
  /// by signal S") when cancelled; otherwise returns.
  void throw_if_cancelled(std::string_view context) const;

  /// The calling thread's ambient token (innermost CancelScope), or nullptr.
  [[nodiscard]] static CancellationToken* current() noexcept;

 private:
  friend class CancelScope;
  std::uint64_t timeout_ms_ = 0;
  std::chrono::steady_clock::time_point deadline_{};
};

/// Publishes a token as the calling thread's ambient token for the scope's
/// lifetime. Nests; the innermost token wins.
class CancelScope {
 public:
  explicit CancelScope(CancellationToken& token) noexcept;
  ~CancelScope();
  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

 private:
  CancellationToken* previous_;
};

}  // namespace hms
