#include "hms/common/csv.hpp"

#include <algorithm>

#include "hms/common/error.hpp"

namespace hms {

std::string CsvWriter::escape(std::string_view cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(cell);
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::write_cells(std::span<const std::string_view> cells) {
  bool first = true;
  for (auto cell : cells) {
    if (!first) *out_ << ',';
    first = false;
    *out_ << escape(cell);
  }
  *out_ << '\n';
}

void CsvWriter::header(std::span<const std::string> columns) {
  check(columns_ == 0, "CsvWriter: header already written");
  check(!columns.empty(), "CsvWriter: empty header");
  std::vector<std::string_view> views(columns.begin(), columns.end());
  write_cells(views);
  columns_ = columns.size();
}

void CsvWriter::header(std::initializer_list<std::string_view> columns) {
  std::vector<std::string> owned(columns.begin(), columns.end());
  header(owned);
}

void CsvWriter::row(std::span<const std::string> cells) {
  check(columns_ == 0 || cells.size() == columns_,
        "CsvWriter: row width does not match header");
  std::vector<std::string_view> views(cells.begin(), cells.end());
  write_cells(views);
  ++rows_;
}

void CsvWriter::row(std::initializer_list<std::string_view> cells) {
  std::vector<std::string> owned(cells.begin(), cells.end());
  row(owned);
}

}  // namespace hms
