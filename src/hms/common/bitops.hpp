// Small bit-manipulation helpers used by the cache and memory models.
#pragma once

#include <bit>
#include <cstdint>

#include "hms/common/error.hpp"

namespace hms {

[[nodiscard]] constexpr bool is_pow2(std::uint64_t v) noexcept {
  return v != 0 && (v & (v - 1)) == 0;
}

/// log2 of a power of two; throws if `v` is not a power of two.
[[nodiscard]] inline unsigned log2_exact(std::uint64_t v) {
  check(is_pow2(v), "log2_exact: value is not a power of two");
  return static_cast<unsigned>(std::countr_zero(v));
}

/// Rounds `v` down to a multiple of pow2 `align` (align must be a power of 2).
[[nodiscard]] constexpr std::uint64_t align_down(std::uint64_t v,
                                                 std::uint64_t align) noexcept {
  return v & ~(align - 1);
}

/// Rounds `v` up to a multiple of pow2 `align`.
[[nodiscard]] constexpr std::uint64_t align_up(std::uint64_t v,
                                               std::uint64_t align) noexcept {
  return (v + align - 1) & ~(align - 1);
}

/// Smallest power of two >= v (v must be nonzero and representable).
[[nodiscard]] constexpr std::uint64_t next_pow2(std::uint64_t v) noexcept {
  return std::bit_ceil(v);
}

}  // namespace hms
