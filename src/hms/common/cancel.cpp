#include "hms/common/cancel.hpp"

#include <csignal>

namespace hms {

namespace {

/// Process-wide interrupt record: the last signal requested, 0 = none.
/// std::atomic<int> store/load is lock-free on every supported target, so
/// the handler's store is async-signal-safe.
std::atomic<int> g_interrupt{0};

extern "C" void hms_signal_handler(int sig) { raise_interrupt(sig); }

thread_local CancellationToken* t_current = nullptr;

}  // namespace

int interrupt_signal() noexcept {
  return g_interrupt.load(std::memory_order_acquire);
}

void raise_interrupt(int sig) noexcept {
  g_interrupt.store(sig, std::memory_order_release);
}

void clear_interrupt() noexcept {
  g_interrupt.store(0, std::memory_order_release);
}

struct ScopedSignalHandlers::Impl {
  struct sigaction old_int {};
  struct sigaction old_term {};
};

ScopedSignalHandlers::ScopedSignalHandlers() : impl_(new Impl) {
  struct sigaction action {};
  action.sa_handler = hms_signal_handler;
  sigemptyset(&action.sa_mask);
  // No SA_RESTART: an interrupted blocking syscall should return EINTR so
  // the tool reaches its next cancellation point promptly.
  action.sa_flags = 0;
  ::sigaction(SIGINT, &action, &impl_->old_int);
  ::sigaction(SIGTERM, &action, &impl_->old_term);
}

ScopedSignalHandlers::~ScopedSignalHandlers() {
  ::sigaction(SIGINT, &impl_->old_int, nullptr);
  ::sigaction(SIGTERM, &impl_->old_term, nullptr);
  delete impl_;
}

void CancellationToken::throw_if_cancelled(std::string_view context) const {
  switch (state()) {
    case CancelKind::none:
      return;
    case CancelKind::timeout:
      throw CancelledError(std::string(context) + ": timed out after " +
                               std::to_string(timeout_ms_) + "ms",
                           CancelKind::timeout);
    case CancelKind::interrupt:
      throw CancelledError(std::string(context) + ": interrupted by signal " +
                               std::to_string(interrupt_signal()),
                           CancelKind::interrupt);
  }
}

CancellationToken* CancellationToken::current() noexcept { return t_current; }

CancelScope::CancelScope(CancellationToken& token) noexcept
    : previous_(t_current) {
  t_current = &token;
}

CancelScope::~CancelScope() { t_current = previous_; }

}  // namespace hms
