#include "hms/common/env.hpp"

#include <cstdlib>
#include <limits>

#include "hms/common/error.hpp"

namespace hms {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;

  const std::string value(raw);
  const auto reject = [&](const char* why) {
    throw ConfigError(std::string(name) + ": " + why + ", got \"" + value +
                      "\" (expected a non-negative integer)");
  };

  std::uint64_t out = 0;
  for (const char c : value) {
    if (c < '0' || c > '9') {
      reject(c == '-' ? "negative values are not allowed"
                      : "not a decimal integer");
    }
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (out > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      reject("value overflows 64 bits");
    }
    out = out * 10 + digit;
  }
  return out;
}

std::string env_string(const char* name, std::string fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::string(v) : fallback;
}

}  // namespace hms
