// Unit-safe physical quantities used by the performance and energy models.
//
// The paper's models mix nanoseconds (Table 1 latencies), picojoules-per-bit
// (Table 1 energies), milliwatts (static power), and seconds (Table 4
// runtimes). Mixing these up silently is the classic failure mode of energy
// models, so each quantity is a distinct strong type with only the physically
// meaningful operators defined (e.g. Power * Time -> Energy).
#pragma once

#include <compare>
#include <cstdint>

namespace hms {

namespace detail {

/// CRTP base providing the arithmetic shared by all scalar quantities.
template <typename Derived>
struct Quantity {
  double value = 0.0;

  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : value(v) {}

  friend constexpr Derived operator+(Derived a, Derived b) {
    return Derived{a.value + b.value};
  }
  friend constexpr Derived operator-(Derived a, Derived b) {
    return Derived{a.value - b.value};
  }
  friend constexpr Derived operator*(Derived a, double s) {
    return Derived{a.value * s};
  }
  friend constexpr Derived operator*(double s, Derived a) {
    return Derived{a.value * s};
  }
  friend constexpr Derived operator/(Derived a, double s) {
    return Derived{a.value / s};
  }
  /// Ratio of two like quantities is dimensionless.
  friend constexpr double operator/(Derived a, Derived b) {
    return a.value / b.value;
  }
  friend constexpr auto operator<=>(Derived a, Derived b) {
    return a.value <=> b.value;
  }
  friend constexpr bool operator==(Derived a, Derived b) {
    return a.value == b.value;
  }
  constexpr Derived& operator+=(Derived other) {
    value += other.value;
    return static_cast<Derived&>(*this);
  }
  constexpr Derived& operator-=(Derived other) {
    value -= other.value;
    return static_cast<Derived&>(*this);
  }
};

}  // namespace detail

/// Elapsed or access time, stored in nanoseconds.
struct Time : detail::Quantity<Time> {
  using Quantity::Quantity;
  [[nodiscard]] constexpr double nanoseconds() const { return value; }
  [[nodiscard]] constexpr double seconds() const { return value * 1e-9; }
  [[nodiscard]] static constexpr Time from_ns(double ns) { return Time{ns}; }
  [[nodiscard]] static constexpr Time from_seconds(double s) {
    return Time{s * 1e9};
  }
};

/// Energy, stored in picojoules.
struct Energy : detail::Quantity<Energy> {
  using Quantity::Quantity;
  [[nodiscard]] constexpr double picojoules() const { return value; }
  [[nodiscard]] constexpr double joules() const { return value * 1e-12; }
  [[nodiscard]] constexpr double millijoules() const { return value * 1e-9; }
  [[nodiscard]] static constexpr Energy from_pj(double pj) {
    return Energy{pj};
  }
  [[nodiscard]] static constexpr Energy from_joules(double j) {
    return Energy{j * 1e12};
  }
};

/// Power, stored in milliwatts.
struct Power : detail::Quantity<Power> {
  using Quantity::Quantity;
  [[nodiscard]] constexpr double milliwatts() const { return value; }
  [[nodiscard]] constexpr double watts() const { return value * 1e-3; }
  [[nodiscard]] static constexpr Power from_mw(double mw) { return Power{mw}; }
  [[nodiscard]] static constexpr Power from_watts(double w) {
    return Power{w * 1e3};
  }
};

/// Power * Time = Energy (Eq. 4 of the paper).
/// 1 mW * 1 ns = 1e-3 J/s * 1e-9 s = 1e-12 J = 1 pJ, so the stored
/// representations multiply with no conversion factor.
[[nodiscard]] constexpr Energy operator*(Power p, Time t) {
  return Energy{p.value * t.value};
}
[[nodiscard]] constexpr Energy operator*(Time t, Power p) { return p * t; }

/// Energy / Time = Power.
[[nodiscard]] constexpr Power operator/(Energy e, Time t) {
  return Power{e.value / t.value};
}

/// Energy-delay product, the paper's cross-design figure of merit
/// (Section III.C). Stored in pJ * ns; only ratios of EDPs are meaningful
/// to the study, so the unit never needs converting.
struct EnergyDelay : detail::Quantity<EnergyDelay> {
  using Quantity::Quantity;
};

[[nodiscard]] constexpr EnergyDelay operator*(Energy e, Time t) {
  return EnergyDelay{e.value * t.value};
}
[[nodiscard]] constexpr EnergyDelay operator*(Time t, Energy e) {
  return e * t;
}

}  // namespace hms
