// Minimal CSV emission for experiment results (RFC 4180 quoting).
#pragma once

#include <initializer_list>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace hms {

/// Streams rows to an std::ostream as CSV. The header, once set, fixes the
/// column count; writing a row of a different width throws hms::Error.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  void header(std::span<const std::string> columns);
  void header(std::initializer_list<std::string_view> columns);

  void row(std::span<const std::string> cells);
  void row(std::initializer_list<std::string_view> cells);

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

  /// Quotes a single cell per RFC 4180 (only when needed).
  [[nodiscard]] static std::string escape(std::string_view cell);

 private:
  void write_cells(std::span<const std::string_view> cells);

  std::ostream* out_;
  std::size_t columns_ = 0;
  std::size_t rows_ = 0;
};

}  // namespace hms
