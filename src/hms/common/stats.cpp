#include "hms/common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "hms/common/error.hpp"

namespace hms {

void RunningStat::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double geometric_mean(std::span<const double> values) {
  check(!values.empty(), "geometric_mean: empty input");
  double log_sum = 0.0;
  for (double v : values) {
    check(v > 0.0, "geometric_mean: non-positive value");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double arithmetic_mean(std::span<const double> values) {
  check(!values.empty(), "arithmetic_mean: empty input");
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins) {
  check(bins > 0, "Histogram: need at least one bin");
  check(hi > lo, "Histogram: hi must exceed lo");
}

void Histogram::add(double x) noexcept {
  auto idx = static_cast<std::int64_t>((x - lo_) / width_);
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::uint64_t Histogram::bin_count(std::size_t i) const {
  check(i < counts_.size(), "Histogram: bin index out of range");
  return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
  check(i < counts_.size(), "Histogram: bin index out of range");
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + width_; }

double Histogram::quantile(double q) const {
  check(q >= 0.0 && q <= 1.0, "Histogram::quantile: q outside [0,1]");
  check(total_ > 0, "Histogram::quantile: empty histogram");
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double frac =
          counts_[i] == 0
              ? 0.0
              : (target - cumulative) / static_cast<double>(counts_[i]);
      return bin_lo(i) + frac * width_;
    }
    cumulative = next;
  }
  return bin_hi(counts_.size() - 1);
}

}  // namespace hms
