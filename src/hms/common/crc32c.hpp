// CRC32C (Castagnoli) checksums for crash/corruption integrity checks.
//
// Used by the survival layer to detect bit rot and torn writes in durable
// sweep state: every sealed ChunkedTraceBuffer chunk payload and every
// SweepCheckpoint record carries a CRC32C that is verified before the bytes
// are trusted (DESIGN.md §6). CRC32C guarantees detection of all single-bit
// errors and all error bursts up to 32 bits, so a flipped byte can never be
// silently accepted.
//
// The implementation dispatches once at first use: the SSE4.2 `crc32`
// instruction (~8 bytes/cycle) on hosts that have it, a slice-by-8 table
// fallback (~1 byte/cycle) elsewhere — the same runtime-gate idiom as the
// AVX-512 tag-scan kernel. Both paths produce identical digests.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hms {

/// CRC32C of `size` bytes at `data`. `seed` chains incremental computation:
/// crc32c(ab) == crc32c(b, crc32c(a)). The empty-input digest of seed 0 is 0.
[[nodiscard]] std::uint32_t crc32c(const void* data, std::size_t size,
                                   std::uint32_t seed = 0) noexcept;

/// True when the hardware (SSE4.2) path is active (introspection for tests
/// and bench provenance; both paths are digest-identical).
[[nodiscard]] bool crc32c_hardware_active() noexcept;

}  // namespace hms
