// Strict environment-knob parsing, shared by every tool and the runner.
//
// The HMS_* knobs (HMS_RETRIES, HMS_THREADS, HMS_CELL_TIMEOUT_MS, ...) used
// to be read with strtoull and a silent fallback, so `HMS_RETRIES=three` or
// `HMS_THREADS=-2` quietly became the default — exactly the kind of typo an
// unattended sweep should refuse to start under. These helpers reject
// garbage and negative values with a ConfigError naming the variable and
// the offending value; unset (or empty) still means "use the fallback".
#pragma once

#include <cstdint>
#include <string>

namespace hms {

/// Reads env var `name` as a non-negative decimal integer. Unset or empty
/// returns `fallback`; anything else that is not a plain decimal number in
/// range (garbage, a sign, trailing junk, overflow) throws ConfigError
/// naming the variable and the offending value.
[[nodiscard]] std::uint64_t env_u64(const char* name, std::uint64_t fallback);

/// Reads env var `name` as a string; unset returns `fallback` (an empty
/// value is returned as-is — emptiness is meaningful for path knobs).
[[nodiscard]] std::string env_string(const char* name, std::string fallback);

}  // namespace hms
