// Deterministic fault injection.
//
// Production code marks interesting failure sites with a one-line
// HMS_FAULT_POINT("module/operation"); the macro is a no-op (one relaxed
// atomic load) unless a FaultInjector is installed as the process-global
// active injector. Tests and benches install one with ScopedFaultInjector,
// arm sites with a probability / skip-count / fire-budget, and the armed
// site throws FaultInjectedError from inside the real call path — no
// test-only seams at the call sites.
//
// Firing decisions are a pure function of (injector seed, site name, per-site
// hit index), so a given arming fires on the same hit indices no matter how
// worker threads interleave — sweeps stay reproducible under injection.
//
// Site naming convention: "<module>/<operation>", e.g. "trace/read",
// "mem/device_write", "workload/run", "sim/replay_back" (DESIGN.md
// "Robustness & fault injection" keeps the full list).
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "hms/common/error.hpp"

namespace hms {

/// Thrown by an armed fault point. `transient()` marks faults that model
/// recoverable conditions (the retry policy in sim::run_parallel is decided
/// per task, but tests use the flag to assert what was injected).
class FaultInjectedError : public SimulationError {
 public:
  FaultInjectedError(const std::string& what, bool transient)
      : SimulationError(what), transient_(transient) {}
  [[nodiscard]] bool transient() const noexcept { return transient_; }

 private:
  bool transient_;
};

/// How an armed site misbehaves.
struct FaultSpec {
  /// Chance that an eligible hit fires, decided deterministically from the
  /// injector seed and the site's hit index.
  double probability = 1.0;
  /// Hits to let through before the site becomes eligible.
  std::uint64_t skip_first = 0;
  /// Disarm after this many fires (default: unlimited).
  std::uint64_t max_fires = std::numeric_limits<std::uint64_t>::max();
  /// Marks the injected error transient (see FaultInjectedError).
  bool transient = false;
  /// Exception message; empty = "fault injected at <site>".
  std::string message;
  /// When non-zero, a firing hit stalls for this many milliseconds instead
  /// of throwing — modeling a hung cell for the watchdog. The stall sleeps
  /// in 1 ms slices polling the thread's ambient CancellationToken
  /// (CancellationToken::current()), so a cell deadline or interrupt cuts
  /// it short with CancelledError; with no ambient token it sleeps the full
  /// duration and returns normally (a slow-but-alive site).
  std::uint64_t stall_ms = 0;
};

/// See file comment. Thread-safe; hit/fire counters are kept for every site
/// touched while the injector is active, armed or not, so tests can assert
/// a code path actually crossed a site.
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 0x9e3779b97f4a7c15ull);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void arm(const std::string& site, FaultSpec spec = {});
  void disarm(const std::string& site);
  /// Disarms every site and zeroes all counters.
  void reset();

  /// Called by HMS_FAULT_POINT. Throws FaultInjectedError when the site is
  /// armed and the deterministic decision says fire.
  void hit(std::string_view site);

  /// Shard-local variant: decides for the hit with the caller-supplied
  /// 1-based logical index (its position in the canonical serial hit
  /// order) instead of the shared hit counter, so the decision is
  /// identical under any worker interleaving. Returns true when a stall
  /// fault fired (and completed), false when nothing fired; throwing
  /// faults raise FaultInjectedError as usual. Does NOT bump the site's
  /// counters — the caller tallies shard-locally and folds the totals in
  /// at seal time (ShardFaultAccount / merge_counts). skip_first,
  /// max_fires, and probability armings keep their serial meaning: the
  /// fire budget consumed by index N is recomputed from the pure decision
  /// function over indices (skip_first, N), which is O(N - skip_first)
  /// only when probability < 1 and max_fires is bounded — intended for
  /// low-frequency sites (per sweep cell, not per access).
  bool hit_at(std::string_view site, std::uint64_t index);

  /// Folds shard-local accounting into the site's counters, creating the
  /// site record if this is its first touch (so hits() asserts work like
  /// they do for hit()).
  void merge_counts(std::string_view site, std::uint64_t hits,
                    std::uint64_t fires);

  [[nodiscard]] std::uint64_t hits(const std::string& site) const;
  [[nodiscard]] std::uint64_t fires(const std::string& site) const;

  /// The process-global injector consulted by HMS_FAULT_POINT, or nullptr
  /// when fault injection is inactive (the default).
  [[nodiscard]] static FaultInjector* active() noexcept {
    return active_.load(std::memory_order_acquire);
  }

 private:
  friend class ScopedFaultInjector;
  static std::atomic<FaultInjector*> active_;

  struct SiteState {
    FaultSpec spec;
    bool armed = false;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
  };

  mutable std::mutex mutex_;
  std::uint64_t seed_;
  std::map<std::string, SiteState, std::less<>> sites_;
};

/// Installs a FaultInjector as the process-global active one for its
/// lifetime and restores the previous injector (usually nullptr) on exit.
/// Scopes nest; the innermost wins.
class ScopedFaultInjector {
 public:
  explicit ScopedFaultInjector(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
      : injector_(seed),
        previous_(FaultInjector::active_.exchange(
            &injector_, std::memory_order_acq_rel)) {}
  ~ScopedFaultInjector() {
    FaultInjector::active_.store(previous_, std::memory_order_release);
  }
  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;

  [[nodiscard]] FaultInjector& operator*() noexcept { return injector_; }
  [[nodiscard]] FaultInjector* operator->() noexcept { return &injector_; }

 private:
  FaultInjector injector_;
  FaultInjector* previous_;
};

/// Shard-local fault accounting for engines whose workers cross sites in a
/// non-serial order (sim/sharded_sweep). Decisions go through
/// FaultInjector::hit_at with canonical indices, so armings fire on the
/// same logical hits no matter how workers interleave; the hits and fires
/// are tallied locally and folded into the injector's shared counters when
/// the shard seals, so post-run hits()/fires() totals match a serial run
/// while the hot decision path never contends on them.
///
/// No-op (no allocation, no locking) when no injector is active at
/// construction.
class ShardFaultAccount {
 public:
  ShardFaultAccount() : injector_(FaultInjector::active()) {}
  ~ShardFaultAccount() { seal(); }
  ShardFaultAccount(const ShardFaultAccount&) = delete;
  ShardFaultAccount& operator=(const ShardFaultAccount&) = delete;

  /// Tallies one hit of `site` at canonical `index` and applies the armed
  /// decision; a fired fault is tallied, then rethrown.
  void hit(std::string_view site, std::uint64_t index);

  /// Folds the tallies into the injector and clears them. Idempotent;
  /// the destructor seals whatever is pending.
  void seal() noexcept;

 private:
  struct Tally {
    std::string site;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
  };

  FaultInjector* injector_;
  std::vector<Tally> tallies_;  ///< few sites per shard; linear scan
};

/// Thread-local canonical-index redirect for fault sites that are crossed
/// deep inside code which cannot take an index parameter (capture_front,
/// replay_back). While a scope is installed on a thread, a plain
/// HMS_FAULT_POINT whose site matches one of the scope's routes is decided
/// through FaultInjector::hit_at at the route's next canonical slot —
/// tallied into the scope's ShardFaultAccount instead of bumping the
/// order-dependent shared counter — so pipelined engines keep
/// skip_first/max_fires armings meaningful at any thread count. Hits past
/// the end of a route's slot sequence, and sites with no route, fall
/// through to the normal shared-counter path. Scopes nest per thread; the
/// innermost scope owns every decision while installed (outer routes are
/// not consulted).
class ScopedFaultIndex {
 public:
  explicit ScopedFaultIndex(ShardFaultAccount& account);
  ~ScopedFaultIndex();
  ScopedFaultIndex(const ScopedFaultIndex&) = delete;
  ScopedFaultIndex& operator=(const ScopedFaultIndex&) = delete;

  /// Routes the next `slots.size()` hits of `site` on this thread to the
  /// given canonical 1-based indices, in sequence. Slot sequences are
  /// explicit (not base + counter) so callers can leave holes for hits
  /// that a serial run would have taken but this worker skips.
  void route(std::string site, std::vector<std::uint64_t> slots);

  /// Consulted by FaultInjector::hit before touching the shared counter.
  /// True: the innermost scope on this thread consumed the hit (decision
  /// taken at its canonical slot, tallied shard-locally). False: no scope,
  /// no matching route, or the route is exhausted — take the normal path.
  [[nodiscard]] static bool consume(std::string_view site);

 private:
  struct Route {
    std::string site;
    std::vector<std::uint64_t> slots;
    std::size_t next = 0;
  };

  static thread_local ScopedFaultIndex* current_;

  ShardFaultAccount& account_;
  std::vector<Route> routes_;
  ScopedFaultIndex* previous_;
};

}  // namespace hms

/// Marks a named fault-injection site. Free when no injector is active.
#define HMS_FAULT_POINT(site)                                         \
  do {                                                                \
    if (::hms::FaultInjector* hms_fault_injector_ =                   \
            ::hms::FaultInjector::active())                           \
      hms_fault_injector_->hit(site);                                 \
  } while (0)
