#include "hms/common/string_util.hpp"

#include <cctype>
#include <charconv>
#include <cstdint>

#include "hms/common/error.hpp"

namespace hms {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const auto pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::uint64_t parse_byte_size(std::string_view input) {
  const std::string_view s = trim(input);
  check(!s.empty(), "parse_byte_size: empty input");
  std::uint64_t value = 0;
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  check(ec == std::errc{} && ptr != begin,
        "parse_byte_size: no leading integer");
  std::string suffix = to_lower(trim(std::string_view(
      ptr, static_cast<std::size_t>(end - ptr))));
  std::uint64_t mult = 1;
  if (suffix.empty() || suffix == "b") {
    mult = 1;
  } else if (suffix == "k" || suffix == "kb" || suffix == "kib") {
    mult = 1ULL << 10;
  } else if (suffix == "m" || suffix == "mb" || suffix == "mib") {
    mult = 1ULL << 20;
  } else if (suffix == "g" || suffix == "gb" || suffix == "gib") {
    mult = 1ULL << 30;
  } else {
    throw Error("parse_byte_size: unknown suffix '" + suffix + "'");
  }
  return value * mult;
}

}  // namespace hms
