// Stream filters: composable AccessSink adapters.
#pragma once

#include <cstdint>

#include "hms/common/error.hpp"
#include "hms/trace/sink.hpp"

namespace hms::trace {

/// Forwards every Nth reference (systematic sampling). Sampling a stream
/// distorts locality, so this is only intended for quick profiling passes,
/// never for the figure benches.
class SamplingFilter final : public AccessSink {
 public:
  SamplingFilter(AccessSink& downstream, std::uint64_t period)
      : downstream_(&downstream), period_(period) {
    check(period > 0, "SamplingFilter: period must be positive");
  }

  void access(const MemoryAccess& a) override {
    if (counter_++ % period_ == 0) downstream_->access(a);
  }

 private:
  AccessSink* downstream_;
  std::uint64_t period_;
  std::uint64_t counter_ = 0;
};

/// Forwards only references inside [base, base+length).
class RangeFilter final : public AccessSink {
 public:
  RangeFilter(AccessSink& downstream, Address base, std::uint64_t length)
      : downstream_(&downstream), base_(base), end_(base + length) {}

  void access(const MemoryAccess& a) override {
    if (a.address >= base_ && a.address < end_) downstream_->access(a);
  }

  [[nodiscard]] Address base() const noexcept { return base_; }
  [[nodiscard]] Address end() const noexcept { return end_; }

 private:
  AccessSink* downstream_;
  Address base_;
  Address end_;
};

/// Caps the stream at `limit` references, then drops the rest. Lets a bench
/// bound simulation cost for very long kernels (the paper reduced iteration
/// counts for the same reason).
class TruncateFilter final : public AccessSink {
 public:
  TruncateFilter(AccessSink& downstream, std::uint64_t limit)
      : downstream_(&downstream), limit_(limit) {}

  void access(const MemoryAccess& a) override {
    if (forwarded_ < limit_) {
      downstream_->access(a);
      ++forwarded_;
    } else {
      ++dropped_;
    }
  }

  [[nodiscard]] std::uint64_t forwarded() const noexcept { return forwarded_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  AccessSink* downstream_;
  std::uint64_t limit_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Splits references that straddle a line boundary into per-line references.
/// Guarantees downstream consumers (caches) that every access touches one
/// line of the given width only.
class LineSplitFilter final : public AccessSink {
 public:
  LineSplitFilter(AccessSink& downstream, std::uint64_t line_size);

  void access(const MemoryAccess& a) override;

 private:
  AccessSink* downstream_;
  std::uint64_t line_size_;
};

}  // namespace hms::trace
