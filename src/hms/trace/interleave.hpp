// Round-robin interleaving of per-core streams into one stream, used to
// emulate multi-core pressure on shared levels. Each input stream is tagged
// with its core id; addresses are optionally offset into disjoint per-core
// regions (the paper evaluates capacity *per core*).
#pragma once

#include <cstdint>
#include <span>

#include "hms/trace/sink.hpp"
#include "hms/trace/trace_buffer.hpp"

namespace hms::trace {

struct InterleaveOptions {
  /// References taken from one stream before rotating to the next.
  std::uint32_t burst = 1;
  /// If nonzero, core i's addresses are rebased by i * region_stride so the
  /// cores occupy disjoint address regions.
  std::uint64_t region_stride = 0;
};

/// Merges `streams` round-robin into `sink`, tagging accesses with the
/// stream's index as core id. Streams of different lengths are drained in
/// rotation until all are exhausted. Throws hms::Error if burst == 0.
void interleave(std::span<const TraceBuffer* const> streams, AccessSink& sink,
                const InterleaveOptions& options = {});

}  // namespace hms::trace
