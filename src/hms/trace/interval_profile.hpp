// Per-chunk behavior signatures for SimPoint-style sampled replay.
//
// The sampling layer (sim/sampling.hpp) clusters trace intervals by
// behavior and replays one representative per cluster. The interval is the
// residual chunk: ChunkedTraceBuffer already seals the stream into
// independently decodable slices, so aligning signatures to chunk
// boundaries means a selected interval can be decoded (and its
// functional-warming prefix fed) without touching the rest of the stream.
//
// A signature is deliberately cheap — O(1) state per access, accumulated
// inline during capture so no second pass over the stream is needed:
//
//   - load/store mix,
//   - footprint-lines delta: misses in a small fixed direct-mapped line-tag
//     table, a proxy for "how many lines does this interval newly touch"
//     (the table resets per interval, so the count is an interval-local
//     reuse/footprint sketch, independent of history),
//   - a log2-bucketed line-stride histogram (same line, next line, then
//     widening magnitude bands), the stride/locality sketch.
//
// Signatures are a pure function of the chunk's access sequence: observing
// live during capture and rebuilding offline from the encoded chunks
// (from_trace) produce identical vectors, which keeps clustering identical
// whether or not the capture path attached a profile.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hms/trace/access.hpp"

namespace hms::trace {

class ChunkedTraceBuffer;

/// Behavior summary of one interval (= one residual chunk).
struct IntervalSignature {
  /// Stride histogram buckets over |line delta| (in 64 B lines):
  /// 0, 1, <16, <256, <4096, >=4096.
  static constexpr std::size_t kStrideBuckets = 6;

  std::uint64_t accesses = 0;
  std::uint64_t loads = 0;
  /// Line-tag-table misses: interval-local new-footprint proxy.
  std::uint64_t new_lines = 0;
  std::array<std::uint64_t, kStrideBuckets> strides{};

  /// Fixed-dimension normalized feature vector for clustering: store
  /// fraction, new-line fraction, then the stride bucket fractions.
  static constexpr std::size_t kFeatures = 2 + kStrideBuckets;
  [[nodiscard]] std::array<double, kFeatures> features() const;

  [[nodiscard]] bool operator==(const IntervalSignature&) const = default;
};

/// See file comment. Attach to a ChunkedTraceBuffer during capture
/// (ChunkedTraceBuffer::attach_interval_profile) or rebuild offline with
/// from_trace; either way signature i describes chunk i.
class IntervalProfile {
 public:
  /// Line-tag reuse table entries (direct-mapped, 64 B lines). Small by
  /// design: ~4 KiB of tags, reset per interval.
  static constexpr std::size_t kReuseTableSize = 512;

  IntervalProfile();

  /// Accumulates one access into the open interval.
  void observe(const MemoryAccess& a);
  /// Seals the open interval (no-op when it is empty) and resets the
  /// interval-local sketch state. Called by the buffer at chunk seals.
  void seal_interval();
  void clear() noexcept;

  /// Sealed signatures plus the open tail (mirrors chunk_count semantics:
  /// signature i describes chunk i, including the unsealed tail).
  [[nodiscard]] std::vector<IntervalSignature> signatures() const;
  [[nodiscard]] std::size_t interval_count() const noexcept {
    return sealed_.size() + (open_.accesses != 0 ? 1 : 0);
  }

  /// Appends every signature — exactly what signatures() returns, sealed
  /// plus open tail — to `out` (StoreWriter dialect, see trace_store.hpp).
  void serialize(std::string& out) const;

  /// Rebuilds a profile from serialize()'s bytes. Every signature is
  /// restored as sealed, so signatures()/interval_count() are identical to
  /// the source; the restored profile is a read-only record — it must not
  /// observe further accesses. Throws TraceError on malformed input.
  [[nodiscard]] static IntervalProfile deserialize(std::string_view data);

  /// Rebuilds the profile offline by decoding `trace` chunk by chunk —
  /// bit-identical to a live-attached profile of the same stream. For
  /// captures assembled without an attached profile (synthetic benches,
  /// deserialized traces).
  [[nodiscard]] static IntervalProfile from_trace(
      const ChunkedTraceBuffer& trace);

 private:
  std::vector<IntervalSignature> sealed_;
  IntervalSignature open_{};
  /// Interval-local direct-mapped line tags; kEmptyTag marks unused slots.
  static constexpr std::uint64_t kEmptyTag = ~0ull;
  std::vector<std::uint64_t> table_;
  std::uint64_t prev_line_ = 0;
};

}  // namespace hms::trace
