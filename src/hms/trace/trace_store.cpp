#include "hms/trace/trace_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <thread>
#include <utility>

#include "hms/common/crc32c.hpp"
#include "hms/common/fault.hpp"

namespace hms::trace {

namespace {

constexpr char kMagic[4] = {'H', 'M', 'S', 'T'};
constexpr std::uint32_t kFormatVersion = 1;

[[noreturn]] void throw_io(const std::string& doing, const std::string& path) {
  const int err = errno;
  throw IoError("trace store: " + doing + ": " + path + ": " +
                std::strerror(err));
}

void write_all(int fd, const char* data, std::size_t size,
               const std::string& path) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_io("write failed", path);
    }
    written += static_cast<std::size_t>(n);
  }
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf, 16);
}

/// One framed record: varint length | u32le CRC32C | payload.
void put_record(StoreWriter& out, const std::string& payload) {
  out.varint(payload.size());
  out.u32(crc32c(payload.data(), payload.size()));
  out.bytes(payload.data(), payload.size());
}

/// Reads and verifies one framed record; throws TraceError on anything
/// suspect (caught by load and turned into a miss).
std::string get_record(StoreReader& in) {
  const std::uint64_t len = in.varint();
  if (len > in.remaining()) {
    throw TraceError("trace store: record length exceeds file size");
  }
  const std::uint32_t crc = in.u32();
  const std::string_view payload = in.bytes(static_cast<std::size_t>(len));
  if (crc32c(payload.data(), payload.size()) != crc) {
    throw TraceError("trace store: record CRC mismatch");
  }
  return std::string(payload);
}

}  // namespace

void StoreWriter::varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  buf_.push_back(static_cast<char>(v));
}

void StoreWriter::u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }

void StoreWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void StoreWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void StoreWriter::f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void StoreWriter::str(std::string_view s) {
  varint(s.size());
  buf_.append(s.data(), s.size());
}

void StoreWriter::bytes(const void* data, std::size_t size) {
  buf_.append(static_cast<const char*>(data), size);
}

void StoreReader::fail(const char* what) const {
  throw TraceError(std::string("trace store: ") + what);
}

std::uint64_t StoreReader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= data_.size()) fail("truncated varint");
    if (shift >= 64) fail("varint overflow");
    const auto b = static_cast<std::uint8_t>(data_[pos_++]);
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

std::uint8_t StoreReader::u8() {
  if (remaining() < 1) fail("truncated u8");
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t StoreReader::u32() {
  if (remaining() < 4) fail("truncated u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data_[pos_++]))
         << (8 * i);
  }
  return v;
}

std::uint64_t StoreReader::u64() {
  if (remaining() < 8) fail("truncated u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data_[pos_++]))
         << (8 * i);
  }
  return v;
}

double StoreReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string StoreReader::str() {
  const std::uint64_t len = varint();
  if (len > remaining()) fail("string length exceeds remaining bytes");
  std::string s(data_.substr(pos_, static_cast<std::size_t>(len)));
  pos_ += static_cast<std::size_t>(len);
  return s;
}

std::string_view StoreReader::bytes(std::size_t size) {
  if (size > remaining()) fail("byte run exceeds remaining bytes");
  const std::string_view view = data_.substr(pos_, size);
  pos_ += size;
  return view;
}

void StoreReader::expect_done() const {
  if (!done()) fail("trailing bytes after last field");
}

TraceStore::TraceStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    throw IoError("trace store: cannot create directory " + dir_ + ": " +
                  ec.message());
  }
}

std::string TraceStore::entry_path(std::uint64_t capture_hash) const {
  return dir_ + "/" + hex16(capture_hash) + ".hmst";
}

std::optional<TraceStoreEntry> TraceStore::load(
    std::uint64_t capture_hash) const {
  HMS_FAULT_POINT("trace/read");
  const std::string path = entry_path(capture_hash);
  std::string raw;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) return std::nullopt;
    raw.assign(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
    if (in.bad()) return std::nullopt;
  }
  try {
    StoreReader reader(raw);
    const std::string_view magic = reader.bytes(sizeof(kMagic));
    if (std::memcmp(magic.data(), kMagic, sizeof(kMagic)) != 0) {
      return std::nullopt;
    }
    if (reader.u32() != kFormatVersion) return std::nullopt;
    if (reader.u64() != capture_hash) return std::nullopt;
    TraceStoreEntry entry;
    entry.metadata = get_record(reader);
    entry.interval_profile = get_record(reader);
    entry.residual = get_record(reader);
    reader.expect_done();
    return entry;
  } catch (const TraceError&) {
    // Truncation, CRC mismatch, garbage framing: a miss, never an error.
    return std::nullopt;
  }
}

void TraceStore::store(std::uint64_t capture_hash,
                       const TraceStoreEntry& entry) const {
  HMS_FAULT_POINT("trace/write");
  StoreWriter out;
  out.bytes(kMagic, sizeof(kMagic));
  out.u32(kFormatVersion);
  out.u64(capture_hash);
  put_record(out, entry.metadata);
  put_record(out, entry.interval_profile);
  put_record(out, entry.residual);

  const std::string path = entry_path(capture_hash);
  const std::string tmp =
      path + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(std::hash<std::thread::id>{}(std::this_thread::get_id()));
  const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) throw_io("cannot open temp file", tmp);
  try {
    write_all(fd, out.data().data(), out.data().size(), tmp);
    while (::fsync(fd) != 0) {
      if (errno != EINTR) throw_io("fsync failed", tmp);
    }
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw_io("rename failed", path);
  }
}

}  // namespace hms::trace
