#include "hms/trace/text_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "hms/common/error.hpp"
#include "hms/common/string_util.hpp"

namespace hms::trace {

std::string to_text(const MemoryAccess& a) {
  std::ostringstream oss;
  oss << (a.type == AccessType::Store ? 'S' : 'L') << " 0x" << std::hex
      << a.address << std::dec << ' ' << a.size;
  if (a.core != 0) oss << ' ' << a.core;
  return oss.str();
}

void write_text_trace(std::ostream& out, const TraceBuffer& buffer) {
  out << "# hms text trace, " << buffer.size() << " accesses\n";
  for (const auto& a : buffer.entries()) {
    out << to_text(a) << '\n';
  }
  if (!out) throw TraceError("text trace: write failed");
}

TraceBuffer read_text_trace(std::istream& in) {
  TraceBuffer buffer;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    std::istringstream fields{std::string(trimmed)};
    std::string kind, address_text;
    std::uint64_t size = 0;
    std::uint64_t core = 0;
    fields >> kind >> address_text >> size;
    if (fields.fail() || (kind != "L" && kind != "S") || size == 0) {
      throw TraceError("text trace: malformed line " +
                       std::to_string(line_no) + ": " + line);
    }
    fields >> core;  // optional
    MemoryAccess a;
    try {
      a.address = std::stoull(address_text, nullptr, 0);
    } catch (const std::exception&) {
      throw TraceError("text trace: bad address on line " +
                       std::to_string(line_no));
    }
    a.size = static_cast<std::uint32_t>(size);
    a.type = kind == "S" ? AccessType::Store : AccessType::Load;
    a.core = static_cast<CoreId>(core);
    buffer.access(a);
  }
  return buffer;
}

}  // namespace hms::trace
