// Human-readable trace format for debugging and tool interchange.
//
// One record per line: "<L|S> <hex address> <size> [core]", '#' comments
// and blank lines ignored, e.g.
//   # residual stream, CG seed 42
//   L 0x10000040 64
//   S 0x10000080 64 1
#pragma once

#include <iosfwd>
#include <string>

#include "hms/trace/trace_buffer.hpp"

namespace hms::trace {

/// Writes one line per access. Throws hms::TraceError on stream failure.
void write_text_trace(std::ostream& out, const TraceBuffer& buffer);

/// Parses a text trace; throws hms::TraceError with the offending line
/// number on malformed input.
[[nodiscard]] TraceBuffer read_text_trace(std::istream& in);

/// Formats a single access as its text-trace line (no newline).
[[nodiscard]] std::string to_text(const MemoryAccess& a);

}  // namespace hms::trace
