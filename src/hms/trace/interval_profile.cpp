#include "hms/trace/interval_profile.hpp"

#include "hms/trace/chunked_trace.hpp"
#include "hms/trace/trace_store.hpp"

namespace hms::trace {

namespace {

constexpr std::uint64_t kLineShift = 6;  // 64 B lines, matching kResetSize

std::size_t stride_bucket(std::uint64_t line, std::uint64_t prev) {
  const std::uint64_t d = line >= prev ? line - prev : prev - line;
  if (d == 0) return 0;
  if (d == 1) return 1;
  if (d < 16) return 2;
  if (d < 256) return 3;
  if (d < 4096) return 4;
  return 5;
}

}  // namespace

std::array<double, IntervalSignature::kFeatures> IntervalSignature::features()
    const {
  std::array<double, kFeatures> f{};
  if (accesses == 0) return f;
  const double n = static_cast<double>(accesses);
  f[0] = static_cast<double>(accesses - loads) / n;  // store fraction
  f[1] = static_cast<double>(new_lines) / n;         // new-footprint rate
  for (std::size_t b = 0; b < kStrideBuckets; ++b) {
    f[2 + b] = static_cast<double>(strides[b]) / n;
  }
  return f;
}

IntervalProfile::IntervalProfile() : table_(kReuseTableSize, kEmptyTag) {}

void IntervalProfile::observe(const MemoryAccess& a) {
  const std::uint64_t line = a.address >> kLineShift;
  ++open_.accesses;
  if (a.type == AccessType::Load) ++open_.loads;
  // The first access of an interval strides from line 0 — arbitrary but
  // fixed, so the signature stays a pure function of the chunk contents.
  ++open_.strides[stride_bucket(line, prev_line_)];
  prev_line_ = line;
  std::uint64_t& slot = table_[line % kReuseTableSize];
  if (slot != line) {
    ++open_.new_lines;
    slot = line;
  }
}

void IntervalProfile::seal_interval() {
  if (open_.accesses == 0) return;
  sealed_.push_back(open_);
  open_ = IntervalSignature{};
  prev_line_ = 0;
  table_.assign(kReuseTableSize, kEmptyTag);
}

void IntervalProfile::clear() noexcept {
  sealed_.clear();
  open_ = IntervalSignature{};
  prev_line_ = 0;
  table_.assign(kReuseTableSize, kEmptyTag);
}

std::vector<IntervalSignature> IntervalProfile::signatures() const {
  std::vector<IntervalSignature> out = sealed_;
  if (open_.accesses != 0) out.push_back(open_);
  return out;
}

void IntervalProfile::serialize(std::string& out) const {
  StoreWriter w;
  const std::vector<IntervalSignature> sigs = signatures();
  w.varint(sigs.size());
  for (const auto& s : sigs) {
    w.varint(s.accesses);
    w.varint(s.loads);
    w.varint(s.new_lines);
    for (const std::uint64_t bucket : s.strides) w.varint(bucket);
  }
  out.append(w.data());
}

IntervalProfile IntervalProfile::deserialize(std::string_view data) {
  StoreReader r(data);
  IntervalProfile profile;
  const auto count = static_cast<std::size_t>(r.varint());
  // Each signature costs at least 9 encoded bytes; bound the reserve so a
  // corrupt count byte cannot demand a giant allocation.
  if (count > r.remaining() / 9) {
    throw TraceError("trace: deserialize: signature count exceeds payload");
  }
  profile.sealed_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    IntervalSignature s;
    s.accesses = r.varint();
    s.loads = r.varint();
    s.new_lines = r.varint();
    for (std::uint64_t& bucket : s.strides) bucket = r.varint();
    if (s.accesses == 0 || s.loads > s.accesses ||
        s.new_lines > s.accesses) {
      throw TraceError("trace: deserialize: malformed interval signature");
    }
    profile.sealed_.push_back(s);
  }
  r.expect_done();
  return profile;
}

IntervalProfile IntervalProfile::from_trace(const ChunkedTraceBuffer& trace) {
  IntervalProfile profile;
  std::vector<MemoryAccess> scratch;
  const std::size_t chunks = trace.chunk_count();
  for (std::size_t i = 0; i < chunks; ++i) {
    trace.decode_chunk(i, scratch);
    for (const auto& a : scratch) profile.observe(a);
    profile.seal_interval();
  }
  return profile;
}

}  // namespace hms::trace
