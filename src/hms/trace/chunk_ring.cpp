#include "hms/trace/chunk_ring.hpp"

#include <utility>

#include "hms/common/error.hpp"

namespace hms::trace {

ChunkBatchRing::ChunkBatchRing(const ChunkedTraceBuffer& trace,
                               std::size_t capacity)
    : trace_(&trace), capacity_(capacity) {
  check(capacity_ > 0, "ChunkBatchRing: capacity must be positive");
  window_.reserve(capacity_);
}

DecodedBatchView ChunkBatchRing::get(std::size_t index) {
  std::shared_ptr<Entry> entry;
  bool decoder = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = entries_.find(index);
    if (it != entries_.end()) {
      entry = it->second.lock();
      if (entry == nullptr) entries_.erase(it);
    }
    if (entry == nullptr) {
      entry = std::make_shared<Entry>();
      entries_[index] = entry;
      // Retain in the bounded window, overwriting the oldest slot. Evicted
      // entries survive only while a consumer still holds a view.
      if (window_.size() < capacity_) {
        window_.push_back(entry);
      } else {
        window_[window_next_] = entry;
        window_next_ = (window_next_ + 1) % capacity_;
      }
      decoder = true;
      ++decodes_;
    }
  }

  if (decoder) {
    // Decode outside the ring lock so distinct chunks decode in parallel;
    // requesters of *this* chunk wait on the entry instead.
    std::exception_ptr error;
    std::vector<MemoryAccess> batch;
    try {
      trace_->decode_chunk(index, batch);
    } catch (...) {
      error = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (error == nullptr) {
        entry->batch = std::move(batch);
      } else {
        entry->error = error;
        // Drop the poisoned entry so a later request re-attempts the
        // decode (the error may be an injected transient fault).
        const auto it = entries_.find(index);
        if (it != entries_.end() && it->second.lock() == entry) {
          entries_.erase(it);
        }
        for (auto& held : window_) {
          if (held == entry) held.reset();
        }
      }
      entry->ready = true;
    }
    decoded_.notify_all();
    if (error != nullptr) std::rethrow_exception(error);
  } else {
    std::unique_lock<std::mutex> lock(mutex_);
    decoded_.wait(lock, [&] { return entry->ready; });
    if (entry->error != nullptr) std::rethrow_exception(entry->error);
  }
  // Aliasing view: consumers keep the whole entry (and thus the ring's
  // never-re-decode promise for this chunk) alive through the batch.
  return DecodedBatchView(entry, &entry->batch);
}

std::size_t ChunkBatchRing::decodes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return decodes_;
}

}  // namespace hms::trace
