#include "hms/trace/interleave.hpp"

#include <vector>

#include "hms/common/error.hpp"

namespace hms::trace {

void interleave(std::span<const TraceBuffer* const> streams, AccessSink& sink,
                const InterleaveOptions& options) {
  check(options.burst > 0, "interleave: burst must be positive");
  std::vector<std::size_t> cursor(streams.size(), 0);
  bool any = true;
  while (any) {
    any = false;
    for (std::size_t s = 0; s < streams.size(); ++s) {
      auto entries = streams[s]->entries();
      for (std::uint32_t b = 0;
           b < options.burst && cursor[s] < entries.size(); ++b) {
        MemoryAccess a = entries[cursor[s]++];
        a.core = static_cast<CoreId>(s);
        a.address += options.region_stride * s;
        sink.access(a);
        any = true;
      }
      if (cursor[s] < entries.size()) any = true;
    }
  }
}

}  // namespace hms::trace
