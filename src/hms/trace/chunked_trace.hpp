// Compressed, chunked trace recording for the residual stream.
//
// A full-suite sweep holds one residual buffer per workload live for its
// whole duration and re-reads each one once per design config. At 16 B per
// access (trace_buffer.hpp) those re-reads are host-DRAM streams; the
// paper's trace-reduction instinct (PEBIL online filtering, §III.B) applied
// to the replay side says: store fewer bytes, decode near the core.
//
// ChunkedTraceBuffer stores the stream as independently decodable chunks of
// ~64 KiB encoded bytes (capped at 16 Ki accesses, so a decoded chunk is at
// most 256 KiB — L2-resident scratch). Records use the trace-I/O delta
// shape, tightened to a header byte per access:
//
//   bit 0    kind: 1 = store, 0 = load
//   bit 1    1 = size varint follows (size changed vs previous record)
//   bit 2    1 = core varint follows (core changed vs previous record)
//   bit 3    1 = delta-extension varint follows (zigzag(delta) >> 4 != 0)
//   bits 4-7 low 4 bits of zigzag(address delta)
//
// A line-strided residual stream (64 B fetches) costs 2 bytes per access —
// 8x under the flat buffer; random far jumps still beat 16 B. Each chunk
// encodes from a fixed reset state (prev address 0, prev size 64, prev
// core 0), so chunk-major replay (sim::replay_back_many) can decode any
// chunk without touching the ones before it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "hms/trace/access.hpp"
#include "hms/trace/sink.hpp"

namespace hms::trace {

class IntervalProfile;

/// See file comment. Records a stream in compressed chunks; replayable any
/// number of times, in whole (replay) or chunk by chunk (decode_chunk).
class ChunkedTraceBuffer final : public BatchAccessSink {
 public:
  /// Encoded-byte target per chunk; a chunk seals at the first record
  /// boundary at or past it.
  static constexpr std::size_t kTargetChunkBytes = 64u << 10;
  /// Access-count cap per chunk: bounds the decoded scratch batch to
  /// 16 Ki * 16 B = 256 KiB regardless of how well the stream compresses.
  static constexpr std::size_t kMaxChunkAccesses = 16u << 10;
  /// Reset state each chunk decodes from ("previous" size of the first
  /// record): the residual stream is dominated by 64 B line transactions.
  static constexpr std::uint32_t kResetSize = 64;

  explicit ChunkedTraceBuffer(std::size_t target_chunk_bytes = kTargetChunkBytes,
                              std::size_t max_chunk_accesses = kMaxChunkAccesses);
  explicit ChunkedTraceBuffer(std::span<const MemoryAccess> accesses);

  void access(const MemoryAccess& a) override { encode_one(a); }
  void access_batch(std::span<const MemoryAccess> batch) override;

  /// Reserves encoded capacity for roughly `accesses` typical residual
  /// records (heuristic bytes-per-access; growth still works past it).
  void reserve(std::size_t accesses);
  /// Releases slack capacity after capture (captures are held live for a
  /// whole sweep; see TraceBuffer::shrink_to_fit).
  void shrink_to_fit();
  void clear() noexcept;

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  /// Total recorded accesses — O(1), a running total maintained at record
  /// time (the sampler's cluster weighting and the bench harness read it
  /// once per chunk-selection pass; summing SealedChunk::count on demand
  /// would make every pass O(chunks)).
  [[nodiscard]] std::size_t access_count() const noexcept { return size_; }
  [[nodiscard]] Count loads() const noexcept { return loads_; }
  [[nodiscard]] Count stores() const noexcept {
    return static_cast<Count>(size_) - loads_;
  }

  /// Chunks currently decodable, including the unsealed tail.
  [[nodiscard]] std::size_t chunk_count() const noexcept {
    return sealed_.size() + (open_count_ != 0 ? 1 : 0);
  }
  /// Accesses recorded in chunk `index` — O(1) (the per-chunk count is
  /// part of the chunk directory; no decode). Returns 0 past chunk_count.
  [[nodiscard]] std::size_t chunk_access_count(std::size_t index) const noexcept {
    if (index < sealed_.size()) return sealed_[index].count;
    return index == sealed_.size() ? open_count_ : 0;
  }

  /// Attaches (or detaches, with nullptr) an IntervalProfile that observes
  /// every subsequently recorded access and seals an interval at every
  /// chunk seal, so signature i describes chunk i. The profile is not
  /// owned; the caller must detach before the profile's storage moves.
  void attach_interval_profile(IntervalProfile* profile) noexcept {
    interval_profile_ = profile;
  }
  /// Encoded payload bytes.
  [[nodiscard]] std::size_t encoded_bytes() const noexcept {
    return bytes_.size();
  }
  /// Total resident footprint: encoded payload plus the chunk index. The
  /// flat-buffer equivalent is size() * sizeof(MemoryAccess).
  [[nodiscard]] std::size_t resident_bytes() const noexcept {
    return bytes_.size() + sealed_.size() * sizeof(SealedChunk);
  }

  /// Decodes chunk `index` into `out` (replacing its contents) and returns
  /// the number of records. Every sealed chunk carries a CRC32C over its
  /// encoded payload, verified here before decoding — a flipped bit in a
  /// resident chunk surfaces as TraceError (quarantining the cell through
  /// the normal degrade path) instead of silently decoding to a wrong
  /// stream. Throws hms::TraceError on CRC mismatch or internal corruption
  /// and honors the "trace/decode_chunk" fault site.
  std::size_t decode_chunk(std::size_t index,
                           std::vector<MemoryAccess>& out) const;

  /// Test/chaos hook: XOR-flips `mask` into the encoded byte at `offset`
  /// (offset taken modulo encoded_bytes()), simulating in-memory
  /// corruption that the per-chunk CRC must catch.
  void corrupt_encoded_byte_for_test(std::size_t offset,
                                     std::uint8_t mask = 0x01) noexcept;

  /// Appends the buffer's complete state — chunk directory, encoder tail
  /// state, encoded payload — to `out` (StoreWriter dialect, see
  /// trace_store.hpp), still in the delta/varint chunk encoding. The
  /// attached IntervalProfile is not part of the state; profiles
  /// serialize separately.
  void serialize(std::string& out) const;

  /// Rebuilds a buffer from serialize()'s bytes — bit-identical to the
  /// source on every read path (decode_chunk, replay, counters) with no
  /// flat re-expansion, and recording may continue from the restored
  /// encoder state. Throws TraceError on malformed input.
  [[nodiscard]] static ChunkedTraceBuffer deserialize(std::string_view data);

  /// Decodes the whole stream in order (round-trip testing / tooling).
  [[nodiscard]] std::vector<MemoryAccess> decode_all() const;

  /// Feeds the recorded stream, in order, into `sink`: each chunk is
  /// decoded once into a scratch batch; batch-capable sinks receive one
  /// access_batch call per chunk, others the per-access path.
  void replay(AccessSink& sink) const;

 private:
  struct SealedChunk {
    std::size_t begin;  ///< offset of the chunk's first byte in bytes_
    std::size_t count;  ///< records in the chunk
    std::uint32_t crc;  ///< CRC32C over the chunk's encoded payload
  };

  void encode_one(const MemoryAccess& a);
  void seal_open_chunk();
  void put_varint(std::uint64_t v);

  std::size_t target_chunk_bytes_ = kTargetChunkBytes;
  std::size_t max_chunk_accesses_ = kMaxChunkAccesses;

  std::vector<std::uint8_t> bytes_;
  std::vector<SealedChunk> sealed_;
  std::size_t open_begin_ = 0;  ///< offset where the unsealed tail starts
  std::size_t open_count_ = 0;  ///< records in the unsealed tail

  std::size_t size_ = 0;
  Count loads_ = 0;
  IntervalProfile* interval_profile_ = nullptr;  ///< not owned; may be null

  // Encoder state for the open chunk (reset at every seal).
  Address prev_addr_ = 0;
  std::uint32_t prev_size_ = kResetSize;
  CoreId prev_core_ = 0;
};

}  // namespace hms::trace
