// The memory reference record that flows from instrumented workloads into
// the cache simulator — the analog of the PEBIL-captured address stream
// (paper Section III.B).
#pragma once

#include <cstdint>

#include "hms/common/types.hpp"

namespace hms::trace {

/// One memory reference as issued by the (simulated) core.
struct MemoryAccess {
  Address address = 0;
  std::uint32_t size = 8;  ///< bytes touched by the instruction
  AccessType type = AccessType::Load;
  CoreId core = 0;

  friend constexpr bool operator==(const MemoryAccess&,
                                   const MemoryAccess&) = default;
};

// Replay throughput is bound by streaming this struct from memory; keep it
// to a single 16-byte slot (4 per cache line).
static_assert(sizeof(MemoryAccess) == 16);

[[nodiscard]] constexpr MemoryAccess load(Address a, std::uint32_t size = 8,
                                          CoreId core = 0) {
  return MemoryAccess{a, size, AccessType::Load, core};
}

[[nodiscard]] constexpr MemoryAccess store(Address a, std::uint32_t size = 8,
                                           CoreId core = 0) {
  return MemoryAccess{a, size, AccessType::Store, core};
}

}  // namespace hms::trace
