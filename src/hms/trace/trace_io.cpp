#include "hms/trace/trace_io.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "hms/common/error.hpp"
#include "hms/common/fault.hpp"

namespace hms::trace {

namespace {

constexpr std::array<char, 4> kMagic = {'H', 'M', 'S', 'T'};
constexpr std::uint32_t kVersion = 1;

void put_varint(std::ostream& out, std::uint64_t v) {
  while (v >= 0x80) {
    const char byte = static_cast<char>((v & 0x7f) | 0x80);
    out.put(byte);
    v >>= 7;
  }
  out.put(static_cast<char>(v));
}

std::uint64_t get_varint(std::istream& in) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    const int c = in.get();
    if (c == std::char_traits<char>::eof()) {
      throw TraceError("trace: truncated varint");
    }
    v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) break;
    shift += 7;
    if (shift >= 64) throw TraceError("trace: varint too long");
  }
  return v;
}

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

}  // namespace

void write_trace(std::ostream& out, const TraceBuffer& buffer) {
  HMS_FAULT_POINT("trace/write");
  out.write(kMagic.data(), kMagic.size());
  std::uint32_t version = kVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  const std::uint64_t count = buffer.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));

  Address prev = 0;
  for (const auto& a : buffer.entries()) {
    const auto delta =
        static_cast<std::int64_t>(a.address) - static_cast<std::int64_t>(prev);
    put_varint(out, zigzag(delta));
    put_varint(out, a.size);
    const std::uint64_t meta =
        (static_cast<std::uint64_t>(a.core) << 1) |
        (a.type == AccessType::Store ? 1u : 0u);
    put_varint(out, meta);
    prev = a.address;
  }
  if (!out) throw TraceError("trace: write failed");
}

TraceBuffer read_trace(std::istream& in) {
  HMS_FAULT_POINT("trace/read");
  std::array<char, 4> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) throw TraceError("trace: bad magic");
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || version != kVersion) throw TraceError("trace: bad version");
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) throw TraceError("trace: truncated header");

  std::vector<MemoryAccess> accesses;
  // The header count is untrusted input: a corrupt 8-byte field must not
  // drive a multi-GB reserve. Every record is at least 3 bytes (three
  // one-byte varints), so a seekable stream bounds the plausible count.
  constexpr std::uint64_t kMinRecordBytes = 3;
  const auto pos = in.tellg();
  if (pos != std::istream::pos_type(-1)) {
    in.seekg(0, std::ios::end);
    const auto end = in.tellg();
    in.seekg(pos);
    if (!in || end < pos) throw TraceError("trace: stream not seekable");
    const auto remaining = static_cast<std::uint64_t>(end - pos);
    if (count > remaining / kMinRecordBytes) {
      throw TraceError("trace: header count " + std::to_string(count) +
                       " impossible for " + std::to_string(remaining) +
                       " payload bytes");
    }
    accesses.reserve(count);
  } else {
    in.clear();  // tellg on a non-seekable stream may set failbit
  }
  Address prev = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    MemoryAccess a;
    const std::int64_t delta = unzigzag(get_varint(in));
    a.address = static_cast<Address>(static_cast<std::int64_t>(prev) + delta);
    a.size = static_cast<std::uint32_t>(get_varint(in));
    const std::uint64_t meta = get_varint(in);
    a.type = (meta & 1) ? AccessType::Store : AccessType::Load;
    a.core = static_cast<CoreId>(meta >> 1);
    prev = a.address;
    accesses.push_back(a);
  }
  return TraceBuffer(std::move(accesses));
}

void save_trace(const std::string& path, const TraceBuffer& buffer) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw TraceError("trace: cannot open for write: " + path);
  write_trace(out, buffer);
}

TraceBuffer load_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw TraceError("trace: cannot open for read: " + path);
  return read_trace(in);
}

}  // namespace hms::trace
