// Shared-ownership decode handles over a ChunkedTraceBuffer.
//
// The sharded sweep engine (sim/sharded_sweep.hpp) has several worker
// threads consuming the same workload's residual stream at their own pace.
// Decoding a chunk per consumer would multiply the decode cost by the shard
// count; ChunkBatchRing instead hands out refcounted immutable batches so
// that concurrent consumers of the same chunk share a single decode.
//
// Retention is a bounded ring: the ring itself keeps the last `capacity`
// distinct chunks alive (so shards progressing near each other hit the
// cache), and a batch additionally stays alive — and is never re-decoded —
// for as long as any consumer still holds its view. Only a consumer that
// falls more than `capacity` chunks behind every other live reference can
// observe a second decode of the same chunk; decode is deterministic, so
// that costs time, never correctness.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "hms/trace/access.hpp"
#include "hms/trace/chunked_trace.hpp"

namespace hms::trace {

/// Immutable shared view of one decoded chunk. Holding it keeps the batch
/// (and its cache entry) alive; drop it to let the ring retire the chunk.
using DecodedBatchView = std::shared_ptr<const std::vector<MemoryAccess>>;

/// See file comment. Thread-safe; decode errors (including injected
/// "trace/decode_chunk" faults) propagate to every concurrent requester of
/// the failing chunk and are not cached, so a later retry re-attempts the
/// decode.
class ChunkBatchRing {
 public:
  /// `capacity` bounds the decoded batches the ring itself keeps alive
  /// (~256 KiB each at the default chunk limits).
  ChunkBatchRing(const ChunkedTraceBuffer& trace, std::size_t capacity);

  ChunkBatchRing(const ChunkBatchRing&) = delete;
  ChunkBatchRing& operator=(const ChunkBatchRing&) = delete;

  [[nodiscard]] std::size_t chunk_count() const noexcept {
    return trace_->chunk_count();
  }

  /// Returns the decoded batch for chunk `index`, decoding it at most once
  /// across all concurrent callers. Blocks callers that arrive while the
  /// chunk is mid-decode; rethrows the decoder's exception to every waiter
  /// when the decode fails.
  [[nodiscard]] DecodedBatchView get(std::size_t index);

  /// Chunks decoded since construction (>= distinct chunks requested;
  /// equality means no chunk was ever re-decoded). For tests and the bench
  /// harness's decode-amplification accounting.
  [[nodiscard]] std::size_t decodes() const;

 private:
  struct Entry {
    std::vector<MemoryAccess> batch;
    std::exception_ptr error;  ///< non-null when the decode failed
    bool ready = false;        ///< decode settled (batch or error valid)
  };

  const ChunkedTraceBuffer* trace_;
  std::size_t capacity_;

  mutable std::mutex mutex_;
  std::condition_variable decoded_;
  /// Live entries: any entry some consumer still references, plus the ring
  /// window below. Values are weak so consumer drops retire entries.
  std::unordered_map<std::size_t, std::weak_ptr<Entry>> entries_;
  /// FIFO of the last `capacity_` distinct chunks, held strongly.
  std::vector<std::shared_ptr<Entry>> window_;
  std::size_t window_next_ = 0;  ///< next slot to overwrite in window_
  std::size_t decodes_ = 0;
};

}  // namespace hms::trace
