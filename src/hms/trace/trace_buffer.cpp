#include "hms/trace/trace_buffer.hpp"

#include <algorithm>
#include <unordered_set>

#include "hms/common/bitops.hpp"
#include "hms/common/fault.hpp"

namespace hms::trace {

void TraceBuffer::access_batch(std::span<const MemoryAccess> batch) {
  accesses_.insert(accesses_.end(), batch.begin(), batch.end());
  loads_ += static_cast<Count>(
      std::count_if(batch.begin(), batch.end(), [](const auto& a) {
        return a.type == AccessType::Load;
      }));
}

void TraceBuffer::replay(AccessSink& sink) const {
  HMS_FAULT_POINT("trace/replay");
  if (auto* batch = dynamic_cast<BatchAccessSink*>(&sink)) {
    batch->access_batch(accesses_);
    return;
  }
  for (const auto& a : accesses_) sink.access(a);
}

Count TraceBuffer::count_loads(
    const std::vector<MemoryAccess>& accesses) noexcept {
  return static_cast<Count>(
      std::count_if(accesses.begin(), accesses.end(), [](const auto& a) {
        return a.type == AccessType::Load;
      }));
}

std::size_t TraceBuffer::footprint_lines(std::uint64_t line_size) const {
  std::unordered_set<Address> lines;
  lines.reserve(accesses_.size() / 4 + 1);
  for (const auto& a : accesses_) {
    const Address first = align_down(a.address, line_size);
    const Address last = align_down(a.address + a.size - 1, line_size);
    if (first == last) {
      // Residual-stream accesses are line transactions: the single-line
      // case is essentially every record, so skip the loop setup.
      lines.insert(first);
      continue;
    }
    for (Address line = first; line <= last; line += line_size) {
      lines.insert(line);
    }
  }
  return lines.size();
}

}  // namespace hms::trace
