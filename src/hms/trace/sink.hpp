// AccessSink: the online consumption interface. Workload kernels emit each
// reference into a sink as they execute, so no full trace is ever required
// on disk — the paper's central framework property (Section III.B).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hms/trace/access.hpp"

namespace hms::trace {

/// Consumer of a memory reference stream. Implemented by the cache
/// hierarchy, trace recorders, statistics collectors, and filters.
class AccessSink {
 public:
  virtual ~AccessSink() = default;

  /// Consumes one reference. Called once per simulated memory instruction,
  /// in program order.
  virtual void access(const MemoryAccess& a) = 0;
};

/// A sink that can consume a whole chunk of references per virtual call.
/// Hot consumers (the cache hierarchy) override access_batch with a loop
/// over their non-virtual per-access path, so batched producers
/// (TraceBuffer::replay) pay one dispatch per chunk instead of one per
/// reference. Batching is an invariant-free optimization: access_batch
/// must be observably identical to calling access() per entry in order.
class BatchAccessSink : public AccessSink {
 public:
  virtual void access_batch(std::span<const MemoryAccess> batch) {
    for (const auto& a : batch) access(a);
  }
};

/// Discards everything; useful to measure generator-only cost.
class NullSink final : public AccessSink {
 public:
  void access(const MemoryAccess&) override {}
};

/// Counts loads/stores and bytes; the cheapest useful sink.
class CountingSink final : public AccessSink {
 public:
  void access(const MemoryAccess& a) override {
    if (a.type == AccessType::Load) {
      ++loads_;
    } else {
      ++stores_;
    }
    bytes_ += a.size;
  }

  [[nodiscard]] Count loads() const noexcept { return loads_; }
  [[nodiscard]] Count stores() const noexcept { return stores_; }
  [[nodiscard]] Count total() const noexcept { return loads_ + stores_; }
  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }

 private:
  Count loads_ = 0;
  Count stores_ = 0;
  std::uint64_t bytes_ = 0;
};

/// Forwards to a rebindable target; drops accesses while unbound. Lets
/// long-lived producers (instrumented arrays) bind to the consumer only for
/// the duration of a run.
class ForwardingSink final : public AccessSink {
 public:
  void bind(AccessSink& target) noexcept { target_ = &target; }
  void unbind() noexcept { target_ = nullptr; }
  [[nodiscard]] bool bound() const noexcept { return target_ != nullptr; }

  void access(const MemoryAccess& a) override {
    if (target_ != nullptr) target_->access(a);
  }

 private:
  AccessSink* target_ = nullptr;
};

/// Duplicates a stream into several sinks — this is how one workload
/// execution drives many design configurations simultaneously (online
/// multi-configuration simulation).
class TeeSink final : public AccessSink {
 public:
  void add(AccessSink& sink) { sinks_.push_back(&sink); }

  void access(const MemoryAccess& a) override {
    for (auto* s : sinks_) s->access(a);
  }

  [[nodiscard]] std::size_t fan_out() const noexcept { return sinks_.size(); }

 private:
  std::vector<AccessSink*> sinks_;
};

}  // namespace hms::trace
