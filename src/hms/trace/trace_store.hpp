// Persistent CRC-checked trace store: capture once, replay forever.
//
// The warm-up phase of a sweep (front capture + base report) re-simulates
// every workload from scratch in every process — every fig bench, every
// chaos-resumed run. The store persists the *encoded* capture to disk so a
// later process with the same capture key decodes straight from the
// compressed bytes instead of re-running the workload: the SimPoint-style
// "capture once, persist, overlap with replay" move applied to the front.
//
// On-disk format (one file per capture, `<dir>/<16-hex-hash>.hmst`):
//
//   "HMST" | u32le version (1) | u64le capture hash
//   3 records, each: varint payload length | u32le CRC32C | payload
//     record 0  capture metadata (sim-layer encoded: key echo, workload
//               info, footprint, ranges, front hierarchy profile)
//     record 1  serialized trace::IntervalProfile
//     record 2  serialized trace::ChunkedTraceBuffer (the residual stream,
//               still in its delta/varint chunk encoding — loading never
//               re-expands to flat accesses)
//
// The record framing is the checkpoint discipline (sim/checkpoint.cpp):
// length-prefixed, CRC32C-verified before a byte is trusted, written to a
// temp file and atomically renamed after fsync. Any load failure — missing
// file, bad magic/version, hash mismatch, truncation, CRC mismatch, a
// flipped byte anywhere — returns "miss" and the caller recaptures through
// the normal degrade path; a corrupt store can cost time, never wrong bits.
//
// Store files are keyed AND stamped with the capture hash (workload name,
// params, capacity scale, seed, encoder version — sim::capture_hash), so a
// renamed or collided file is rejected by the stamp, and metadata echoes
// the key fields for a second, content-level check.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "hms/common/error.hpp"

namespace hms::trace {

/// Bumped whenever the ChunkedTraceBuffer / IntervalProfile encodings or
/// the metadata layout change shape: the version is mixed into the capture
/// hash, so stores written by older encoders simply miss.
inline constexpr std::uint32_t kTraceEncoderVersion = 1;

/// FNV-1a accumulator for capture keys (same construction as the
/// checkpoint's experiment hash: every field is length- or width-framed so
/// concatenation ambiguities cannot collide).
class Fnv1a {
 public:
  void mix(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      byte(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void mix(std::string_view s) noexcept {
    mix(static_cast<std::uint64_t>(s.size()));
    for (const char c : s) byte(static_cast<std::uint8_t>(c));
  }
  [[nodiscard]] std::uint64_t digest() const noexcept { return hash_; }

 private:
  void byte(std::uint8_t b) noexcept {
    hash_ ^= b;
    hash_ *= 0x100000001b3ull;
  }
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

/// Append-only byte encoder shared by the store's record payloads (the
/// checkpoint framing primitives, packaged so the sim layer and the trace
/// serializers speak one dialect).
class StoreWriter {
 public:
  void varint(std::uint64_t v);
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);   ///< fixed-width little-endian
  void u64(std::uint64_t v);   ///< fixed-width little-endian
  void f64(double v);          ///< IEEE-754 bit pattern, little-endian
  void str(std::string_view s);  ///< varint length + raw bytes
  void bytes(const void* data, std::size_t size);

  [[nodiscard]] const std::string& data() const noexcept { return buf_; }
  [[nodiscard]] std::string take() noexcept { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked cursor over one record payload. Every read throws
/// TraceError on truncation or malformed varints, and every
/// length-prefixed field checks the length against the bytes actually
/// remaining *before* allocating — a flipped length byte cannot turn into
/// a giant allocation or an out-of-range substr.
class StoreReader {
 public:
  explicit StoreReader(std::string_view data) : data_(data) {}

  [[nodiscard]] std::uint64_t varint();
  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();
  [[nodiscard]] std::string_view bytes(std::size_t size);

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool done() const noexcept { return pos_ == data_.size(); }
  /// Throws TraceError if any bytes trail the last expected field.
  void expect_done() const;

 private:
  [[noreturn]] void fail(const char* what) const;

  std::string_view data_;
  std::size_t pos_ = 0;
};

/// One stored capture: three opaque payload blobs (the store itself never
/// interprets them — metadata is sim-layer encoded, the other two are the
/// trace serializers' output).
struct TraceStoreEntry {
  std::string metadata;
  std::string interval_profile;
  std::string residual;
};

/// See file comment. A directory of `<16-hex-hash>.hmst` files; safe for
/// concurrent readers and concurrent writers of distinct hashes (same-hash
/// writers race benignly: both write identical bytes via rename).
class TraceStore {
 public:
  /// Creates `dir` (and parents) if missing. Throws IoError on failure.
  explicit TraceStore(std::string dir);

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] std::string entry_path(std::uint64_t capture_hash) const;

  /// Looks up a capture. Returns the verified entry, or nullopt on any
  /// miss or validation failure (see file comment — corruption is a miss,
  /// never an error). Honors the "trace/read" fault site; an injected
  /// fault propagates to the caller, whose degrade path recaptures.
  [[nodiscard]] std::optional<TraceStoreEntry> load(
      std::uint64_t capture_hash) const;

  /// Persists a capture: full file assembled in memory, written to a
  /// process/thread-unique temp file, fsync'd, then renamed over the final
  /// path — a concurrent reader sees the old file or the new one, never a
  /// torn write. Throws IoError on failure (callers append best-effort and
  /// may swallow it). Honors the "trace/write" fault site.
  void store(std::uint64_t capture_hash, const TraceStoreEntry& entry) const;

 private:
  std::string dir_;
};

}  // namespace hms::trace
