#include "hms/trace/chunked_trace.hpp"

#include <string>

#include "hms/common/crc32c.hpp"
#include "hms/common/error.hpp"
#include "hms/common/fault.hpp"
#include "hms/trace/interval_profile.hpp"
#include "hms/trace/trace_store.hpp"

namespace hms::trace {

namespace {

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

// Record header bits; bits 4-7 carry the low nibble of zigzag(delta).
constexpr std::uint8_t kStoreBit = 0x01;
constexpr std::uint8_t kSizeBit = 0x02;
constexpr std::uint8_t kCoreBit = 0x04;
constexpr std::uint8_t kDeltaExtBit = 0x08;

std::uint64_t get_varint(const std::uint8_t*& p, const std::uint8_t* end) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (p == end) throw TraceError("trace: truncated chunk varint");
    const std::uint8_t byte = *p++;
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    if (shift >= 64) throw TraceError("trace: chunk varint too long");
  }
  return v;
}

}  // namespace

ChunkedTraceBuffer::ChunkedTraceBuffer(std::size_t target_chunk_bytes,
                                       std::size_t max_chunk_accesses)
    : target_chunk_bytes_(target_chunk_bytes),
      max_chunk_accesses_(max_chunk_accesses) {
  check(target_chunk_bytes_ > 0 && max_chunk_accesses_ > 0,
        "ChunkedTraceBuffer: chunk limits must be positive");
}

ChunkedTraceBuffer::ChunkedTraceBuffer(std::span<const MemoryAccess> accesses)
    : ChunkedTraceBuffer() {
  access_batch(accesses);
}

void ChunkedTraceBuffer::access_batch(std::span<const MemoryAccess> batch) {
  for (const auto& a : batch) encode_one(a);
}

void ChunkedTraceBuffer::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    bytes_.push_back(static_cast<std::uint8_t>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  bytes_.push_back(static_cast<std::uint8_t>(v));
}

void ChunkedTraceBuffer::encode_one(const MemoryAccess& a) {
  // Wrapping unsigned subtraction, then reinterpreted as signed: round-trips
  // any address pair (including max-delta jumps) without signed overflow.
  const auto delta = static_cast<std::int64_t>(a.address - prev_addr_);
  const std::uint64_t z = zigzag(delta);

  std::uint8_t header = static_cast<std::uint8_t>((z & 0x0f) << 4);
  if (a.type == AccessType::Store) header |= kStoreBit;
  if (a.size != prev_size_) header |= kSizeBit;
  if (a.core != prev_core_) header |= kCoreBit;
  if ((z >> 4) != 0) header |= kDeltaExtBit;
  bytes_.push_back(header);
  if ((header & kDeltaExtBit) != 0) put_varint(z >> 4);
  if ((header & kSizeBit) != 0) put_varint(a.size);
  if ((header & kCoreBit) != 0) put_varint(a.core);

  prev_addr_ = a.address;
  prev_size_ = a.size;
  prev_core_ = a.core;
  ++size_;
  if (a.type == AccessType::Load) ++loads_;
  ++open_count_;
  if (interval_profile_ != nullptr) interval_profile_->observe(a);
  if (bytes_.size() - open_begin_ >= target_chunk_bytes_ ||
      open_count_ >= max_chunk_accesses_) {
    seal_open_chunk();
  }
}

void ChunkedTraceBuffer::seal_open_chunk() {
  if (open_count_ == 0) return;
  const std::uint32_t crc =
      crc32c(bytes_.data() + open_begin_, bytes_.size() - open_begin_);
  sealed_.push_back(SealedChunk{open_begin_, open_count_, crc});
  open_begin_ = bytes_.size();
  open_count_ = 0;
  prev_addr_ = 0;
  prev_size_ = kResetSize;
  prev_core_ = 0;
  if (interval_profile_ != nullptr) interval_profile_->seal_interval();
}

void ChunkedTraceBuffer::reserve(std::size_t accesses) {
  // Typical residual records (line-strided, few far jumps) encode in 2-4
  // bytes; 3 is a safe middle that avoids most growth reallocations.
  bytes_.reserve(accesses * 3);
}

void ChunkedTraceBuffer::shrink_to_fit() {
  bytes_.shrink_to_fit();
  sealed_.shrink_to_fit();
}

void ChunkedTraceBuffer::clear() noexcept {
  bytes_.clear();
  sealed_.clear();
  open_begin_ = 0;
  open_count_ = 0;
  size_ = 0;
  loads_ = 0;
  prev_addr_ = 0;
  prev_size_ = kResetSize;
  prev_core_ = 0;
  if (interval_profile_ != nullptr) interval_profile_->clear();
}

std::size_t ChunkedTraceBuffer::decode_chunk(
    std::size_t index, std::vector<MemoryAccess>& out) const {
  HMS_FAULT_POINT("trace/decode_chunk");
  const std::size_t chunks = chunk_count();
  check(index < chunks, "ChunkedTraceBuffer: chunk index out of range");

  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t count = 0;
  if (index < sealed_.size()) {
    begin = sealed_[index].begin;
    end = index + 1 < sealed_.size() ? sealed_[index + 1].begin : open_begin_;
    count = sealed_[index].count;
  } else {
    begin = open_begin_;
    end = bytes_.size();
    count = open_count_;
  }

  if (index < sealed_.size()) {
    // Sealed payloads are immutable from seal to replay; a CRC mismatch
    // means the resident bytes were corrupted in between. (The unsealed
    // tail is still being appended to, so it has no checksum yet.)
    const std::uint32_t crc = crc32c(bytes_.data() + begin, end - begin);
    if (crc != sealed_[index].crc) {
      throw TraceError("trace: chunk " + std::to_string(index) +
                       " CRC32C mismatch (resident corruption)");
    }
  }

  out.resize(count);
  MemoryAccess* dst = out.data();
  const std::uint8_t* p = bytes_.data() + begin;
  const std::uint8_t* const stop = bytes_.data() + end;
  Address prev_addr = 0;
  std::uint32_t prev_size = kResetSize;
  CoreId prev_core = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (p == stop) throw TraceError("trace: truncated chunk record");
    const std::uint8_t header = *p++;
    std::uint64_t z = static_cast<std::uint64_t>(header) >> 4;
    if ((header & kDeltaExtBit) != 0) {
      // Inlined single-byte fast path: a one-byte extension covers zigzag
      // deltas below 2 KiB, including the dominant next-line step.
      if (p == stop) throw TraceError("trace: truncated chunk varint");
      const std::uint8_t b = *p++;
      if (b < 0x80) {
        z |= static_cast<std::uint64_t>(b) << 4;
      } else {
        std::uint64_t ext = b & 0x7f;
        int shift = 7;
        while (true) {
          if (p == stop) throw TraceError("trace: truncated chunk varint");
          const std::uint8_t nb = *p++;
          ext |= static_cast<std::uint64_t>(nb & 0x7f) << shift;
          if ((nb & 0x80) == 0) break;
          shift += 7;
          if (shift >= 64) throw TraceError("trace: chunk varint too long");
        }
        z |= ext << 4;
      }
    }
    // Wrapping add mirrors the encoder's wrapping subtraction.
    prev_addr += static_cast<Address>(unzigzag(z));
    if ((header & (kSizeBit | kCoreBit)) != 0) {
      if ((header & kSizeBit) != 0) {
        prev_size = static_cast<std::uint32_t>(get_varint(p, stop));
      }
      if ((header & kCoreBit) != 0) {
        prev_core = static_cast<CoreId>(get_varint(p, stop));
      }
    }
    dst[i] = MemoryAccess{
        prev_addr, prev_size,
        (header & kStoreBit) != 0 ? AccessType::Store : AccessType::Load,
        prev_core};
  }
  if (p != stop) throw TraceError("trace: trailing bytes in chunk");
  return count;
}

void ChunkedTraceBuffer::corrupt_encoded_byte_for_test(
    std::size_t offset, std::uint8_t mask) noexcept {
  if (bytes_.empty()) return;
  bytes_[offset % bytes_.size()] ^= (mask != 0 ? mask : std::uint8_t{1});
}

void ChunkedTraceBuffer::serialize(std::string& out) const {
  StoreWriter w;
  w.varint(target_chunk_bytes_);
  w.varint(max_chunk_accesses_);
  w.varint(size_);
  w.varint(loads_);
  w.varint(open_begin_);
  w.varint(open_count_);
  w.varint(prev_addr_);
  w.varint(prev_size_);
  w.varint(prev_core_);
  w.varint(sealed_.size());
  for (const auto& chunk : sealed_) {
    w.varint(chunk.begin);
    w.varint(chunk.count);
    w.u32(chunk.crc);
  }
  w.varint(bytes_.size());
  w.bytes(bytes_.data(), bytes_.size());
  out.append(w.data());
}

ChunkedTraceBuffer ChunkedTraceBuffer::deserialize(std::string_view data) {
  StoreReader r(data);
  const auto target_chunk_bytes = static_cast<std::size_t>(r.varint());
  const auto max_chunk_accesses = static_cast<std::size_t>(r.varint());
  if (target_chunk_bytes == 0 || max_chunk_accesses == 0) {
    throw TraceError("trace: deserialize: zero chunk limits");
  }
  ChunkedTraceBuffer buf(target_chunk_bytes, max_chunk_accesses);
  buf.size_ = static_cast<std::size_t>(r.varint());
  buf.loads_ = r.varint();
  buf.open_begin_ = static_cast<std::size_t>(r.varint());
  buf.open_count_ = static_cast<std::size_t>(r.varint());
  buf.prev_addr_ = r.varint();
  buf.prev_size_ = static_cast<std::uint32_t>(r.varint());
  buf.prev_core_ = static_cast<CoreId>(r.varint());
  const auto chunks = static_cast<std::size_t>(r.varint());
  // A sealed-chunk directory entry costs at least 6 encoded bytes, so a
  // flipped count byte cannot demand a bigger reserve than the payload
  // could possibly carry.
  if (chunks > r.remaining() / 6) {
    throw TraceError("trace: deserialize: chunk directory exceeds payload");
  }
  buf.sealed_.reserve(chunks);
  std::size_t prev_begin = 0;
  Count total = 0;
  for (std::size_t i = 0; i < chunks; ++i) {
    SealedChunk chunk{};
    chunk.begin = static_cast<std::size_t>(r.varint());
    chunk.count = static_cast<std::size_t>(r.varint());
    chunk.crc = r.u32();
    if (chunk.count == 0 || (i == 0 ? chunk.begin != 0
                                    : chunk.begin <= prev_begin)) {
      throw TraceError("trace: deserialize: malformed chunk directory");
    }
    prev_begin = chunk.begin;
    total += chunk.count;
    buf.sealed_.push_back(chunk);
  }
  const auto payload = static_cast<std::size_t>(r.varint());
  if (payload != r.remaining()) {
    throw TraceError("trace: deserialize: payload length mismatch");
  }
  const std::string_view bytes = r.bytes(payload);
  buf.bytes_.assign(bytes.begin(), bytes.end());
  // Structural invariants the decoder relies on; payload contents are
  // further guarded by the per-chunk CRCs at decode time.
  if (buf.open_begin_ > buf.bytes_.size() ||
      (!buf.sealed_.empty() && buf.sealed_.back().begin >= buf.open_begin_) ||
      (buf.open_count_ == 0 && buf.open_begin_ != buf.bytes_.size()) ||
      (buf.open_count_ != 0 && buf.open_begin_ == buf.bytes_.size()) ||
      total + buf.open_count_ != buf.size_ || buf.loads_ > buf.size_) {
    throw TraceError("trace: deserialize: inconsistent buffer state");
  }
  return buf;
}

std::vector<MemoryAccess> ChunkedTraceBuffer::decode_all() const {
  std::vector<MemoryAccess> all;
  all.reserve(size_);
  std::vector<MemoryAccess> scratch;
  const std::size_t chunks = chunk_count();
  for (std::size_t i = 0; i < chunks; ++i) {
    decode_chunk(i, scratch);
    all.insert(all.end(), scratch.begin(), scratch.end());
  }
  return all;
}

void ChunkedTraceBuffer::replay(AccessSink& sink) const {
  HMS_FAULT_POINT("trace/replay");
  auto* batch = dynamic_cast<BatchAccessSink*>(&sink);
  std::vector<MemoryAccess> scratch;
  const std::size_t chunks = chunk_count();
  for (std::size_t i = 0; i < chunks; ++i) {
    decode_chunk(i, scratch);
    if (batch != nullptr) {
      batch->access_batch(scratch);
    } else {
      for (const auto& a : scratch) sink.access(a);
    }
  }
}

}  // namespace hms::trace
