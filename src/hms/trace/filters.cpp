#include "hms/trace/filters.hpp"

#include <algorithm>

#include "hms/common/bitops.hpp"

namespace hms::trace {

LineSplitFilter::LineSplitFilter(AccessSink& downstream,
                                 std::uint64_t line_size)
    : downstream_(&downstream), line_size_(line_size) {
  check_config(is_pow2(line_size),
               "LineSplitFilter: line size must be a power of two");
}

void LineSplitFilter::access(const MemoryAccess& a) {
  const Address first_line = align_down(a.address, line_size_);
  const Address last_line = align_down(a.address + a.size - 1, line_size_);
  if (first_line == last_line) {
    downstream_->access(a);
    return;
  }
  Address addr = a.address;
  std::uint64_t remaining = a.size;
  while (remaining > 0) {
    const Address line_end = align_down(addr, line_size_) + line_size_;
    const std::uint64_t chunk = std::min<std::uint64_t>(remaining,
                                                        line_end - addr);
    MemoryAccess piece = a;
    piece.address = addr;
    piece.size = static_cast<std::uint32_t>(chunk);
    downstream_->access(piece);
    addr += chunk;
    remaining -= chunk;
  }
}

}  // namespace hms::trace
