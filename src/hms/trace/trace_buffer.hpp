// In-memory trace recording and replay.
//
// Used for the front/back split (DESIGN.md §5): the residual stream behind
// the fixed L1–L3 front is small, so it is recorded once per workload and
// replayed into every design configuration.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "hms/trace/access.hpp"
#include "hms/trace/sink.hpp"

namespace hms::trace {

/// Records a stream into memory; replayable any number of times.
class TraceBuffer final : public BatchAccessSink {
 public:
  TraceBuffer() = default;
  explicit TraceBuffer(std::vector<MemoryAccess> accesses)
      : accesses_(std::move(accesses)), loads_(count_loads(accesses_)) {}

  void access(const MemoryAccess& a) override {
    accesses_.push_back(a);
    if (a.type == AccessType::Load) ++loads_;
  }
  void access_batch(std::span<const MemoryAccess> batch) override;

  void reserve(std::size_t n) { accesses_.reserve(n); }
  /// Releases slack capacity after capture; long-lived residual buffers
  /// (one per workload, held across a whole sweep) keep no growth headroom.
  void shrink_to_fit() { accesses_.shrink_to_fit(); }
  void clear() noexcept {
    accesses_.clear();
    loads_ = 0;
  }

  [[nodiscard]] bool empty() const noexcept { return accesses_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return accesses_.size(); }
  [[nodiscard]] std::span<const MemoryAccess> entries() const noexcept {
    return accesses_;
  }

  /// Feeds the recorded stream, in order, into `sink`. Sinks that implement
  /// BatchAccessSink receive the whole stream in one access_batch call
  /// (no per-access virtual dispatch); others get the per-access path.
  void replay(AccessSink& sink) const;

  /// Summary statistics of the recorded stream. loads()/stores() are O(1):
  /// a running counter is maintained by every mutation path.
  [[nodiscard]] Count loads() const noexcept { return loads_; }
  [[nodiscard]] Count stores() const noexcept {
    return static_cast<Count>(accesses_.size()) - loads_;
  }
  /// Number of distinct cache lines of width `line_size` touched —
  /// the stream's footprint at that granularity.
  [[nodiscard]] std::size_t footprint_lines(std::uint64_t line_size) const;

 private:
  static Count count_loads(const std::vector<MemoryAccess>& accesses) noexcept;

  std::vector<MemoryAccess> accesses_;
  Count loads_ = 0;
};

}  // namespace hms::trace
