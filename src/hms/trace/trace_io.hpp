// Binary trace serialization.
//
// The paper's framework deliberately avoids offline traces for full runs,
// but residual (post-L3) streams are small and worth persisting for
// regression testing and for sharing workload profiles between tools.
//
// Format ("HMST" v1): little-endian header {magic, version, count}, then one
// varint-encoded record per access: zigzag(address delta), size, type|core.
// Delta+varint encoding compresses strided HPC streams by roughly 4-6x
// compared to raw 16-byte records.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "hms/trace/trace_buffer.hpp"

namespace hms::trace {

/// Writes the buffer to a binary stream. Throws hms::TraceError on I/O
/// failure.
void write_trace(std::ostream& out, const TraceBuffer& buffer);

/// Reads a trace written by write_trace. Throws hms::TraceError on a bad
/// magic, version, or truncated stream.
[[nodiscard]] TraceBuffer read_trace(std::istream& in);

/// Convenience file wrappers.
void save_trace(const std::string& path, const TraceBuffer& buffer);
[[nodiscard]] TraceBuffer load_trace(const std::string& path);

}  // namespace hms::trace
