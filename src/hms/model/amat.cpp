#include "hms/model/amat.hpp"

#include "hms/common/error.hpp"

namespace hms::model {

Time total_access_time(const cache::HierarchyProfile& profile) {
  Time total;
  for (const auto& level : profile.levels) {
    total += level.tech.read_latency * static_cast<double>(level.loads);
    total += level.tech.write_latency * static_cast<double>(level.stores);
  }
  return total;
}

Time amat(const cache::HierarchyProfile& profile) {
  check(profile.references > 0, "amat: profile has no references");
  return total_access_time(profile) /
         static_cast<double>(profile.references);
}

Time scaled_runtime(Time reference_runtime, Time amat_reference,
                    Time amat_design) {
  check(amat_reference.nanoseconds() > 0.0,
        "scaled_runtime: reference AMAT must be positive");
  return reference_runtime * (amat_design / amat_reference);
}

Time modeled_reference_runtime(
    const cache::HierarchyProfile& reference_profile,
    double memory_bound_fraction) {
  check(memory_bound_fraction > 0.0 && memory_bound_fraction <= 1.0,
        "modeled_reference_runtime: fraction must be in (0, 1]");
  return total_access_time(reference_profile) / memory_bound_fraction;
}

}  // namespace hms::model
