// Average Memory Access Time — Eq. 2 of the paper — and the Eq. 1 runtime
// scaling built on it.
#pragma once

#include "hms/cache/profile.hpp"
#include "hms/common/units.hpp"

namespace hms::model {

/// Total access time: sum over levels of
///   loads_Li * read_latency_Li + stores_Li * write_latency_Li
/// (the numerator of Eq. 2).
[[nodiscard]] Time total_access_time(const cache::HierarchyProfile& profile);

/// Eq. 2: total access time / total number of CPU references.
/// Throws hms::Error when the profile has no references.
[[nodiscard]] Time amat(const cache::HierarchyProfile& profile);

/// Eq. 1: T_design = T_ref * AMAT_design / AMAT_ref.
[[nodiscard]] Time scaled_runtime(Time reference_runtime, Time amat_reference,
                                  Time amat_design);

/// Models the reference wall-clock of a simulated run: the memory system is
/// busy for total_access_time; dividing by the workload's memory-bound
/// fraction yields wall-clock (fraction 1.0 = perfectly memory-bound).
/// This replaces the paper's measured Table 4 T_ref for scaled-down runs;
/// Eq. 1 ratios are unaffected by the choice (DESIGN.md).
[[nodiscard]] Time modeled_reference_runtime(
    const cache::HierarchyProfile& reference_profile,
    double memory_bound_fraction);

}  // namespace hms::model
