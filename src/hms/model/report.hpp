// DesignReport: the full model output for one (design, workload) pair, and
// its normalization against the base design — the quantity every figure of
// the paper plots.
#pragma once

#include <string>

#include "hms/cache/profile.hpp"
#include "hms/common/units.hpp"
#include "hms/mem/refresh.hpp"
#include "hms/model/amat.hpp"
#include "hms/model/energy.hpp"

namespace hms::model {

struct DesignReport {
  std::string design;
  std::string workload;
  Count references = 0;
  Time amat;
  Time runtime;  ///< Eq. 1 scaled wall-clock
  Energy dynamic;
  Energy leakage;

  [[nodiscard]] Energy total_energy() const { return dynamic + leakage; }
  [[nodiscard]] EnergyDelay edp() const { return total_energy() * runtime; }
};

/// Figure values: everything divided by the base design's report.
struct NormalizedReport {
  std::string design;
  std::string workload;
  double runtime = 1.0;
  double dynamic = 1.0;
  double leakage = 1.0;
  double total_energy = 1.0;
  double edp = 1.0;
};

/// The per-workload baseline every design is compared against: the base
/// system's AMAT and modeled reference runtime.
struct ReferenceAnchor {
  Time amat_ref;
  Time runtime_ref;
};

/// Builds the anchor from the base (3-level SRAM + DRAM) profile.
[[nodiscard]] ReferenceAnchor make_anchor(
    const cache::HierarchyProfile& base_profile,
    double memory_bound_fraction);

/// Full evaluation of a design profile against an anchor.
[[nodiscard]] DesignReport evaluate(std::string design_name,
                                    std::string workload_name,
                                    const cache::HierarchyProfile& profile,
                                    const ReferenceAnchor& anchor,
                                    const mem::RefreshParams& refresh = {});

/// Ratio of `report` to `base` (base normalizes to all-ones).
[[nodiscard]] NormalizedReport normalize(const DesignReport& report,
                                         const DesignReport& base);

}  // namespace hms::model
