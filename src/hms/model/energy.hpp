// Energy models — Eqs. 3 and 4 of the paper — and the EDP figure of merit.
#pragma once

#include "hms/cache/profile.hpp"
#include "hms/common/units.hpp"
#include "hms/mem/refresh.hpp"

namespace hms::model {

/// Eq. 3: sum over levels of bits-moved x energy-per-bit, split by
/// loads/stores. Uses the byte counts the hierarchy records per
/// transaction (fetch granularity = level line/page size, the mechanism
/// behind the paper's page-size energy results).
[[nodiscard]] Energy dynamic_energy(const cache::HierarchyProfile& profile);

/// Static power of the whole hierarchy: per-level leakage density x
/// capacity, plus refresh for DRAM-class levels, zero for NVM
/// (paper Section III.C).
[[nodiscard]] Power static_power(const cache::HierarchyProfile& profile,
                                 const mem::RefreshParams& refresh = {});

/// Eq. 4: static energy = runtime x static power.
[[nodiscard]] Energy static_energy(const cache::HierarchyProfile& profile,
                                   Time runtime,
                                   const mem::RefreshParams& refresh = {});

/// Dynamic + static split for one design evaluation.
struct EnergyBreakdown {
  Energy dynamic;
  Energy leakage;  ///< Eq. 4 static/refresh component

  [[nodiscard]] Energy total() const { return dynamic + leakage; }
};

[[nodiscard]] EnergyBreakdown energy(const cache::HierarchyProfile& profile,
                                     Time runtime,
                                     const mem::RefreshParams& refresh = {});

}  // namespace hms::model
