#include "hms/model/energy.hpp"

namespace hms::model {

Energy dynamic_energy(const cache::HierarchyProfile& profile) {
  Energy total;
  for (const auto& level : profile.levels) {
    total += level.tech.access_energy(/*is_store=*/false, level.load_bytes);
    total += level.tech.access_energy(/*is_store=*/true, level.store_bytes);
  }
  return total;
}

Power static_power(const cache::HierarchyProfile& profile,
                   const mem::RefreshParams& refresh) {
  Power total;
  for (const auto& level : profile.levels) {
    total += mem::static_power(level.tech, level.capacity_bytes, refresh);
  }
  return total;
}

Energy static_energy(const cache::HierarchyProfile& profile, Time runtime,
                     const mem::RefreshParams& refresh) {
  return static_power(profile, refresh) * runtime;
}

EnergyBreakdown energy(const cache::HierarchyProfile& profile, Time runtime,
                       const mem::RefreshParams& refresh) {
  return EnergyBreakdown{dynamic_energy(profile),
                         static_energy(profile, runtime, refresh)};
}

}  // namespace hms::model
