#include "hms/model/cost.hpp"

#include "hms/common/error.hpp"

namespace hms::model {

double CostParams::usd_per_gib(mem::Technology t) const {
  switch (t) {
    case mem::Technology::SRAM:
      return sram_usd_per_gib;
    case mem::Technology::DRAM:
      return dram_usd_per_gib;
    case mem::Technology::PCM:
      return pcm_usd_per_gib;
    case mem::Technology::STTRAM:
      return sttram_usd_per_gib;
    case mem::Technology::FeRAM:
      return feram_usd_per_gib;
    case mem::Technology::eDRAM:
      return edram_usd_per_gib;
    case mem::Technology::HMC:
      return hmc_usd_per_gib;
  }
  throw Error("CostParams: unknown technology");
}

double level_cost_usd(const cache::LevelProfile& level,
                      const CostParams& params) {
  const double gib =
      static_cast<double>(level.capacity_bytes) / (1024.0 * 1024.0 * 1024.0);
  return gib * params.usd_per_gib(level.tech.technology);
}

double memory_cost_usd(const cache::HierarchyProfile& profile,
                       const CostParams& params) {
  double total = 0.0;
  for (const auto& level : profile.levels) {
    total += level_cost_usd(level, params);
  }
  return total;
}

CostReport CostReport::make(const cache::HierarchyProfile& profile,
                            const DesignReport& report,
                            const CostParams& params) {
  CostReport out;
  out.cost_usd = memory_cost_usd(profile, params);
  out.cost_delay = out.cost_usd * report.runtime.seconds();
  out.cost_edp = out.cost_usd * report.edp().value;
  return out;
}

}  // namespace hms::model
