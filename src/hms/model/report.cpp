#include "hms/model/report.hpp"

#include "hms/common/error.hpp"

namespace hms::model {

ReferenceAnchor make_anchor(const cache::HierarchyProfile& base_profile,
                            double memory_bound_fraction) {
  ReferenceAnchor anchor;
  anchor.amat_ref = amat(base_profile);
  anchor.runtime_ref =
      modeled_reference_runtime(base_profile, memory_bound_fraction);
  return anchor;
}

DesignReport evaluate(std::string design_name, std::string workload_name,
                      const cache::HierarchyProfile& profile,
                      const ReferenceAnchor& anchor,
                      const mem::RefreshParams& refresh) {
  DesignReport report;
  report.design = std::move(design_name);
  report.workload = std::move(workload_name);
  report.references = profile.references;
  report.amat = amat(profile);
  report.runtime =
      scaled_runtime(anchor.runtime_ref, anchor.amat_ref, report.amat);
  const EnergyBreakdown e = energy(profile, report.runtime, refresh);
  report.dynamic = e.dynamic;
  report.leakage = e.leakage;
  return report;
}

NormalizedReport normalize(const DesignReport& report,
                           const DesignReport& base) {
  check(base.runtime.nanoseconds() > 0.0, "normalize: zero base runtime");
  check(base.total_energy().picojoules() > 0.0,
        "normalize: zero base energy");
  NormalizedReport n;
  n.design = report.design;
  n.workload = report.workload;
  n.runtime = report.runtime / base.runtime;
  n.dynamic = base.dynamic.picojoules() > 0.0
                  ? report.dynamic / base.dynamic
                  : 1.0;
  n.leakage = base.leakage.picojoules() > 0.0
                  ? report.leakage / base.leakage
                  : 1.0;
  n.total_energy = report.total_energy() / base.total_energy();
  n.edp = report.edp() / base.edp();
  return n;
}

}  // namespace hms::model
