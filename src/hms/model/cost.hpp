// Memory-system cost model — the total-cost-of-ownership angle the paper
// explicitly defers to future work ("We have not factored in the cost
// (e.g. total cost of ownership)").
//
// Each technology carries a $/GiB density-cost estimate; a design's memory
// cost is the sum over its levels of capacity x unit cost. Combined with a
// DesignReport this yields cost-performance metrics (cost x delay, cost x
// EDP) for ranking designs under a budget.
#pragma once

#include "hms/cache/profile.hpp"
#include "hms/model/report.hpp"

namespace hms::model {

/// Unit costs in $/GiB. Defaults are rough 2014-era estimates of the
/// *relative* economics (the study only needs ratios): commodity DRAM as
/// the anchor, PCM cheaper per bit (its capacity appeal), STT-RAM/FeRAM
/// immature and expensive, on-die eDRAM and stacked HMC at a large area
/// premium, SRAM cache area costliest of all.
struct CostParams {
  double sram_usd_per_gib = 2000.0;
  double dram_usd_per_gib = 8.0;
  double pcm_usd_per_gib = 4.0;
  double sttram_usd_per_gib = 60.0;
  double feram_usd_per_gib = 40.0;
  double edram_usd_per_gib = 120.0;
  double hmc_usd_per_gib = 40.0;

  [[nodiscard]] double usd_per_gib(mem::Technology t) const;
};

/// Cost of one level: modeled capacity x unit cost.
[[nodiscard]] double level_cost_usd(const cache::LevelProfile& level,
                                    const CostParams& params = {});

/// Total memory-system cost of a design profile.
[[nodiscard]] double memory_cost_usd(const cache::HierarchyProfile& profile,
                                     const CostParams& params = {});

/// Cost-delay and cost-EDP figures of merit (lower is better); both are
/// only meaningful as ratios between designs evaluated on the same
/// workload.
struct CostReport {
  double cost_usd = 0.0;
  double cost_delay = 0.0;  ///< $ x seconds
  double cost_edp = 0.0;    ///< $ x (pJ x ns)

  [[nodiscard]] static CostReport make(
      const cache::HierarchyProfile& profile, const DesignReport& report,
      const CostParams& params = {});
};

}  // namespace hms::model
