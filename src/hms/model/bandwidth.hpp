// Bandwidth-bound analysis — a generalization the paper's AMAT model
// omits. The paper motivates emerging memories with the bandwidth "memory
// wall" (Section I), yet Eq. 2 is latency-only: it cannot see a level
// saturating. This module computes, per level, the time the level's port
// needs to move the profile's bytes at the technology's peak bandwidth,
// and reports the binding level. A design whose bandwidth-bound time
// exceeds its Eq. 2 latency time is bandwidth-limited and the Eq. 1
// runtime is optimistic for it.
#pragma once

#include <string>
#include <vector>

#include "hms/cache/profile.hpp"
#include "hms/common/units.hpp"

namespace hms::model {

/// Peak sustained bandwidth per technology, GB/s. Defaults are 2014-era
/// magnitudes: DDR3-1600 channel ~12.8, PCM prototypes strongly
/// read/write asymmetric, HMC ~160 aggregate, on-die eDRAM and SRAM
/// effectively core-speed.
struct BandwidthParams {
  double sram_gbs = 500.0;
  double dram_gbs = 12.8;
  double pcm_read_gbs = 2.0;
  double pcm_write_gbs = 0.5;
  double sttram_gbs = 4.0;
  double feram_gbs = 1.6;
  double edram_gbs = 100.0;
  double hmc_gbs = 160.0;

  /// Read-direction bandwidth for a technology.
  [[nodiscard]] double read_gbs(mem::Technology t) const;
  /// Write-direction bandwidth (differs only for PCM by default).
  [[nodiscard]] double write_gbs(mem::Technology t) const;
};

/// Time one level's port needs for its recorded traffic.
struct LevelBandwidthDemand {
  std::string name;
  Time read_time;
  Time write_time;

  [[nodiscard]] Time total() const { return read_time + write_time; }
};

/// Per-level port-occupancy times for a profile.
[[nodiscard]] std::vector<LevelBandwidthDemand> bandwidth_demand(
    const cache::HierarchyProfile& profile,
    const BandwidthParams& params = {});

/// The largest per-level occupancy — a lower bound on memory time no
/// matter how well latency overlaps.
struct BandwidthBound {
  std::string binding_level;
  Time bound;
};

[[nodiscard]] BandwidthBound bandwidth_bound(
    const cache::HierarchyProfile& profile,
    const BandwidthParams& params = {});

/// Ratio of the bandwidth bound to the Eq. 2 latency-model total time;
/// > 1 means the design is bandwidth-limited and Eq. 1 underestimates its
/// runtime by at least this factor.
[[nodiscard]] double bandwidth_limitation(
    const cache::HierarchyProfile& profile,
    const BandwidthParams& params = {});

}  // namespace hms::model
