#include "hms/model/bandwidth.hpp"

#include <algorithm>

#include "hms/common/error.hpp"
#include "hms/model/amat.hpp"

namespace hms::model {

namespace {

/// Converts bytes at GB/s into nanoseconds (1 GB/s == 1 byte/ns).
Time transfer_time(std::uint64_t bytes, double gbs) {
  check(gbs > 0.0, "bandwidth: rate must be positive");
  return Time::from_ns(static_cast<double>(bytes) / gbs);
}

}  // namespace

double BandwidthParams::read_gbs(mem::Technology t) const {
  switch (t) {
    case mem::Technology::SRAM:
      return sram_gbs;
    case mem::Technology::DRAM:
      return dram_gbs;
    case mem::Technology::PCM:
      return pcm_read_gbs;
    case mem::Technology::STTRAM:
      return sttram_gbs;
    case mem::Technology::FeRAM:
      return feram_gbs;
    case mem::Technology::eDRAM:
      return edram_gbs;
    case mem::Technology::HMC:
      return hmc_gbs;
  }
  throw Error("BandwidthParams: unknown technology");
}

double BandwidthParams::write_gbs(mem::Technology t) const {
  if (t == mem::Technology::PCM) return pcm_write_gbs;
  return read_gbs(t);
}

std::vector<LevelBandwidthDemand> bandwidth_demand(
    const cache::HierarchyProfile& profile, const BandwidthParams& params) {
  std::vector<LevelBandwidthDemand> out;
  out.reserve(profile.levels.size());
  for (const auto& level : profile.levels) {
    LevelBandwidthDemand demand;
    demand.name = level.name;
    demand.read_time = transfer_time(
        level.load_bytes, params.read_gbs(level.tech.technology));
    demand.write_time = transfer_time(
        level.store_bytes, params.write_gbs(level.tech.technology));
    out.push_back(std::move(demand));
  }
  return out;
}

BandwidthBound bandwidth_bound(const cache::HierarchyProfile& profile,
                               const BandwidthParams& params) {
  BandwidthBound bound;
  for (const auto& demand : bandwidth_demand(profile, params)) {
    if (demand.total() > bound.bound) {
      bound.bound = demand.total();
      bound.binding_level = demand.name;
    }
  }
  return bound;
}

double bandwidth_limitation(const cache::HierarchyProfile& profile,
                            const BandwidthParams& params) {
  const Time latency_time = total_access_time(profile);
  check(latency_time.nanoseconds() > 0.0,
        "bandwidth_limitation: empty profile");
  return bandwidth_bound(profile, params).bound / latency_time;
}

}  // namespace hms::model
