// The workload abstraction: a one-shot kernel that executes on real data and
// emits its memory reference stream into an AccessSink (paper Section IV.B).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "hms/trace/sink.hpp"
#include "hms/workloads/virtual_address_space.hpp"

namespace hms::workloads {

/// Static workload metadata, mirroring paper Table 4 where applicable.
struct WorkloadInfo {
  std::string name;
  std::string suite;   ///< "NPB", "CORAL", "Application", "Synthetic"
  std::string inputs;  ///< the paper's runtime command / class
  /// Per-core footprint of the paper's full-size run (Table 4).
  std::uint64_t paper_footprint_bytes = 0;
  /// Reference-system execution time of the paper's run (Table 4).
  double paper_reference_seconds = 0.0;
  /// Fraction of wall-clock the reference run spends waiting on memory;
  /// converts simulated memory time into modeled wall-clock (DESIGN.md).
  double memory_bound_fraction = 0.5;
};

/// Parameters of one instantiation.
struct WorkloadParams {
  /// Target footprint of the scaled-down run. Kernels size their data
  /// structures to approximate (never exceed by more than a page-rounding)
  /// this total.
  std::uint64_t footprint_bytes = 64ull << 20;
  std::uint64_t seed = 42;
  /// Outer iterations (sweeps / CG steps / BFS roots / ...). The paper also
  /// reduced iteration counts "to keep the simulation time within
  /// reasonable limits".
  std::uint32_t iterations = 2;
};

/// A runnable kernel. Implementations allocate every data structure in
/// their VirtualAddressSpace so the NDM partitioner can see named ranges.
class Workload {
 public:
  virtual ~Workload() = default;

  [[nodiscard]] virtual const WorkloadInfo& info() const = 0;
  [[nodiscard]] virtual const WorkloadParams& params() const = 0;

  /// Executes the kernel once, emitting every memory reference into `sink`.
  /// One-shot: calling run twice throws hms::Error.
  virtual void run(trace::AccessSink& sink) = 0;

  /// The named ranges of this instance's data structures.
  [[nodiscard]] virtual const VirtualAddressSpace& address_space() const = 0;

  /// Post-run self-check of kernel correctness — solver residuals, BFS
  /// tree validity, hash-table membership, and similar. Only meaningful
  /// after run(); returns false on numerical or structural failure.
  [[nodiscard]] virtual bool validate() const { return true; }

  /// Actual allocated footprint (after sizing to params().footprint_bytes).
  [[nodiscard]] std::uint64_t footprint_bytes() const {
    return address_space().total_allocated();
  }
};

}  // namespace hms::workloads
