#include "hms/workloads/velvet.hpp"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "hms/common/bitops.hpp"
#include "hms/common/error.hpp"
#include "hms/workloads/workload_base.hpp"

namespace hms::workloads {

namespace {

constexpr unsigned kK = 21;             // k-mer length (odd, fits 2 bits/base)
constexpr std::size_t kReadLength = 100;
constexpr double kCoverage = 4.0;       // genome coverage by reads
// Sequencing-error probability per base. Errors create unique junk k-mers
// (each corrupts up to k table entries); modern short reads are ~0.1-0.5%.
constexpr double kErrorRate = 0.002;
// Fraction of the genome that is unique sequence; the rest is repeats
// copied from the unique core, as in real genomes. Repeats give the k-mer
// structures the hot-entry skew assemblers actually see.
constexpr double kUniqueFraction = 0.125;
constexpr std::uint32_t kNil = 0xffffffffu;

[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// De Bruijn graph construction with Velvet's actual memory organization:
/// a chained hash — a small bucket array of node indices plus an
/// append-only node pool. Nodes are allocated in first-insertion order, so
/// k-mers from the same genomic region sit on adjacent addresses and
/// repeats re-touch previously allocated (hot) nodes; the pool itself is
/// preallocated far beyond what the input fills, like the assembler's
/// "Default" run.
class VelvetWorkload final : public WorkloadBase {
 public:
  explicit VelvetWorkload(const WorkloadParams& params)
      : WorkloadBase(
            WorkloadInfo{
                .name = "Velvet",
                .suite = "Application",
                .inputs = "Default",
                .paper_footprint_bytes = 4096ull << 20,  // 4 GB
                .paper_reference_seconds = 116.5,
                .memory_bound_fraction = 0.65,
            },
            params),
        pool_capacity_(pick_pool(params.footprint_bytes)),
        genome_bases_(pick_genome(params.footprint_bytes)),
        bucket_count_(pick_buckets(genome_bases_)),
        read_count_(static_cast<std::size_t>(
            kCoverage * static_cast<double>(genome_bases_) / kReadLength)),
        reads_(vas_, sink_, "reads", read_count_ * kReadLength,
               std::uint8_t{0}),
        buckets_(vas_, sink_, "buckets", bucket_count_, kNil),
        node_keys_(vas_, sink_, "node_keys", pool_capacity_,
                   std::uint64_t{0}),
        node_counts_(vas_, sink_, "node_counts", pool_capacity_,
                     std::uint32_t{0}),
        node_next_(vas_, sink_, "node_next", pool_capacity_, kNil) {
    // Synthesize a repeat-rich genome (setup, uninstrumented — corresponds
    // to Velvet's input files): a unique core plus segments copied from it.
    std::vector<std::uint8_t> genome(genome_bases_);
    const std::size_t core = std::max<std::size_t>(
        static_cast<std::size_t>(kUniqueFraction *
                                 static_cast<double>(genome_bases_)),
        kReadLength * 2);
    for (std::size_t i = 0; i < std::min(core, genome.size()); ++i) {
      genome[i] = static_cast<std::uint8_t>(rng_.below(4));
    }
    std::size_t filled = std::min(core, genome.size());
    while (filled < genome.size()) {
      const std::size_t seg_len = std::min<std::size_t>(
          200 + rng_.below(600), genome.size() - filled);
      const std::size_t src = static_cast<std::size_t>(
          rng_.below(core - std::min(seg_len, core - 1)));
      for (std::size_t i = 0; i < seg_len; ++i) {
        genome[filled + i] = genome[src + i];
      }
      filled += seg_len;
    }
    for (std::size_t r = 0; r < read_count_; ++r) {
      const std::size_t start = static_cast<std::size_t>(
          rng_.below(genome_bases_ - kReadLength));
      for (std::size_t i = 0; i < kReadLength; ++i) {
        std::uint8_t base = genome[start + i];
        if (rng_.chance(kErrorRate)) {  // sequencing-error model
          base = static_cast<std::uint8_t>((base + 1 + rng_.below(3)) & 3);
        }
        reads_.raw(r * kReadLength + i) = base;
      }
    }
  }

  /// Node pool (key 8 + count 4 + next 4 = 16 B) takes ~3/4 of the
  /// footprint; only the distinct k-mers of the input fill it.
  [[nodiscard]] static std::size_t pick_pool(std::uint64_t footprint) {
    check(footprint >= 256 * 1024, "Velvet: footprint too small");
    return static_cast<std::size_t>(3 * footprint / 4 / 16);
  }

  /// Genome sized so reads occupy ~10% of the footprint and distinct
  /// k-mers (~0.29 x genome: unique core + error k-mers) fill well under
  /// a third of the pool.
  [[nodiscard]] static std::size_t pick_genome(std::uint64_t footprint) {
    return static_cast<std::size_t>(footprint / 40);
  }

  /// Bucket array: ~2 slots per expected distinct k-mer.
  [[nodiscard]] static std::size_t pick_buckets(std::size_t genome) {
    return next_pow2(std::max<std::uint64_t>(
        static_cast<std::uint64_t>(0.6 * static_cast<double>(genome)), 64));
  }

  [[nodiscard]] std::size_t distinct_kmers() const noexcept {
    return nodes_used_;
  }
  [[nodiscard]] std::size_t contigs_walked() const noexcept {
    return contigs_;
  }
  [[nodiscard]] std::size_t pool_capacity() const noexcept {
    return pool_capacity_;
  }

  /// The first read's first k-mer must be in the graph, and the walk phase
  /// must have produced contigs.
  [[nodiscard]] bool validate() const override {
    if (nodes_used_ == 0 || contigs_ == 0) return false;
    if (nodes_used_ > pool_capacity_) return false;
    constexpr std::uint64_t kKmerMask = (std::uint64_t{1} << (2 * kK)) - 1;
    std::uint64_t kmer = 0;
    for (std::size_t i = 0; i < kK; ++i) {
      kmer = ((kmer << 2) | reads_.raw(i)) & kKmerMask;
    }
    return count_of_raw(kmer) >= 1;
  }

  /// Un-instrumented count lookup, for validation.
  [[nodiscard]] std::uint32_t count_of_raw(std::uint64_t kmer) const {
    std::uint32_t idx = buckets_.raw(
        static_cast<std::size_t>(mix64(kmer)) & (bucket_count_ - 1));
    while (idx != kNil) {
      if (node_keys_.raw(idx) == kmer) return node_counts_.raw(idx);
      idx = node_next_.raw(idx);
    }
    return 0;
  }

 private:
  /// Inserts/increments a k-mer (instrumented chained-hash walk).
  void bump(std::uint64_t kmer) {
    const std::size_t b =
        static_cast<std::size_t>(mix64(kmer)) & (bucket_count_ - 1);
    const std::uint32_t head = buckets_.get(b);
    std::uint32_t idx = head;
    while (idx != kNil) {
      if (node_keys_.get(idx) == kmer) {
        node_counts_.update(idx, [](std::uint32_t c) { return c + 1; });
        return;
      }
      idx = node_next_.get(idx);
    }
    check(nodes_used_ < pool_capacity_, "Velvet: node pool exhausted");
    const auto fresh = static_cast<std::uint32_t>(nodes_used_++);
    node_keys_.set(fresh, kmer);
    node_counts_.set(fresh, 1);
    node_next_.set(fresh, head);
    buckets_.set(b, fresh);
  }

  /// Instrumented probe; returns count (0 if absent).
  [[nodiscard]] std::uint32_t count_of(std::uint64_t kmer) {
    std::uint32_t idx = buckets_.get(
        static_cast<std::size_t>(mix64(kmer)) & (bucket_count_ - 1));
    while (idx != kNil) {
      if (node_keys_.get(idx) == kmer) return node_counts_.get(idx);
      idx = node_next_.get(idx);
    }
    return 0;
  }

  void execute() override {
    constexpr std::uint64_t kKmerMask = (std::uint64_t{1} << (2 * kK)) - 1;
    // Phase 1: k-mer counting over all reads (sequential read scan +
    // chained-hash updates).
    for (std::size_t r = 0; r < read_count_; ++r) {
      std::uint64_t kmer = 0;
      for (std::size_t i = 0; i < kReadLength; ++i) {
        const std::uint8_t base = reads_.get(r * kReadLength + i);
        kmer = ((kmer << 2) | base) & kKmerMask;
        if (i + 1 >= kK) bump(kmer);
      }
    }
    // Phase 2: contig walking — from seed k-mers, repeatedly extend with
    // the unique solid successor (4 probes per step).
    const std::size_t walks = 1000 * params_.iterations;
    for (std::size_t w = 0; w < walks; ++w) {
      const std::size_t r =
          static_cast<std::size_t>(rng_.below(read_count_));
      std::uint64_t kmer = 0;
      for (std::size_t i = 0; i < kK; ++i) {
        kmer = ((kmer << 2) | reads_.get(r * kReadLength + i)) & kKmerMask;
      }
      std::size_t length = 0;
      while (length < 200) {
        std::uint64_t best = ~std::uint64_t{0};
        std::uint32_t best_count = 1;  // require count >= 2 ("solid")
        int candidates = 0;
        for (std::uint64_t base = 0; base < 4; ++base) {
          const std::uint64_t next = ((kmer << 2) | base) & kKmerMask;
          const std::uint32_t c = count_of(next);
          if (c > best_count) {
            best = next;
            best_count = c;
            candidates = 1;
          } else if (c == best_count && c > 1) {
            ++candidates;
          }
        }
        if (best == ~std::uint64_t{0} || candidates != 1) break;
        kmer = best;
        ++length;
      }
      ++contigs_;
    }
  }

  std::size_t pool_capacity_;
  std::size_t genome_bases_;
  std::size_t bucket_count_;
  std::size_t read_count_;
  Array<std::uint8_t> reads_;
  Array<std::uint32_t> buckets_;
  Array<std::uint64_t> node_keys_;
  Array<std::uint32_t> node_counts_;
  Array<std::uint32_t> node_next_;
  std::size_t nodes_used_ = 0;
  std::size_t contigs_ = 0;
};

}  // namespace

std::unique_ptr<Workload> make_velvet(const WorkloadParams& params) {
  return std::make_unique<VelvetWorkload>(params);
}

}  // namespace hms::workloads
