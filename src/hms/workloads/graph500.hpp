// Graph500: breadth-first search on a Kronecker (R-MAT) graph.
//
// Implements the real Graph500 pipeline: R-MAT edge generation with the
// reference (A,B,C,D) = (0.57, 0.19, 0.19, 0.05) probabilities, CSR
// construction (kernel 1), and top-down queue-based BFS from random roots
// (kernel 2). The pointer-chasing neighbour gathers are the paper's
// representative "graph algorithm performance" workload (inputs "-s 22").
#pragma once

#include <memory>

#include "hms/workloads/workload.hpp"

namespace hms::workloads {

[[nodiscard]] std::unique_ptr<Workload> make_graph500(
    const WorkloadParams& params);

}  // namespace hms::workloads
