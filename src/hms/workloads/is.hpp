// IS: NPB Integer Sort analog (suite extension, not in the paper's
// Table 4).
//
// Bucketed counting sort of random integer keys: sequential key scans, a
// histogram scatter into a bucket-count array, a prefix sum, and the
// permutation scatter into the output ranks — NPB IS's characteristic mix
// of streaming reads and data-dependent scattered writes.
#pragma once

#include <memory>

#include "hms/workloads/workload.hpp"

namespace hms::workloads {

[[nodiscard]] std::unique_ptr<Workload> make_is(const WorkloadParams& params);

}  // namespace hms::workloads
