#include "hms/workloads/is.hpp"

#include <cstddef>

#include "hms/common/bitops.hpp"
#include "hms/common/error.hpp"
#include "hms/workloads/workload_base.hpp"

namespace hms::workloads {

namespace {

// Bytes per key: key 4 + rank 4, plus the bucket array amortized.
constexpr std::size_t kBytesPerKey = 8;

class IsWorkload final : public WorkloadBase {
 public:
  explicit IsWorkload(const WorkloadParams& params)
      : WorkloadBase(
            WorkloadInfo{
                .name = "IS",
                .suite = "NPB",
                .inputs = "Class C (suite extension, not in Table 4)",
                .paper_footprint_bytes = 1024ull << 20,
                .paper_reference_seconds = 12.0,
                .memory_bound_fraction = 0.75,
            },
            params),
        keys_count_(pick_keys(params.footprint_bytes)),
        bucket_count_(next_pow2(keys_count_ / 16 + 16)),
        keys_(vas_, sink_, "keys", keys_count_, std::uint32_t{0}),
        ranks_(vas_, sink_, "ranks", keys_count_, std::uint32_t{0}),
        buckets_(vas_, sink_, "buckets", bucket_count_, std::uint32_t{0}) {
    // NPB IS keys: Gaussian-ish sums of uniforms, here 2-fold sum for a
    // triangular distribution over the bucket range (uninstrumented input
    // generation).
    for (std::size_t i = 0; i < keys_count_; ++i) {
      const std::uint64_t a = rng_.below(bucket_count_);
      const std::uint64_t b = rng_.below(bucket_count_);
      keys_.raw(i) = static_cast<std::uint32_t>((a + b) / 2);
    }
  }

  [[nodiscard]] static std::size_t pick_keys(std::uint64_t footprint) {
    check(footprint >= 64 * 1024, "IS: footprint too small");
    return footprint * 15 / 16 / kBytesPerKey;
  }

  [[nodiscard]] std::size_t keys() const noexcept { return keys_count_; }

  /// The computed ranks must be a permutation that sorts the keys:
  /// spot-check monotonicity via the rank array's defining property.
  [[nodiscard]] bool validate() const override {
    if (!ran_) return false;
    // rank[i] is key i's position in sorted order: keys with smaller
    // values must have smaller ranks (sample pairs).
    Xoshiro256 probe(123);
    for (int t = 0; t < 1000; ++t) {
      const auto i = static_cast<std::size_t>(probe.below(keys_count_));
      const auto j = static_cast<std::size_t>(probe.below(keys_count_));
      if (keys_.raw(i) < keys_.raw(j) && ranks_.raw(i) >= ranks_.raw(j)) {
        return false;
      }
      if (keys_.raw(i) == keys_.raw(j)) continue;
      if (keys_.raw(i) > keys_.raw(j) && ranks_.raw(i) <= ranks_.raw(j)) {
        return false;
      }
    }
    return true;
  }

 private:
  void execute() override {
    for (std::uint32_t it = 0; it < params_.iterations; ++it) {
      // Clear histogram (streaming writes).
      for (std::size_t b = 0; b < bucket_count_; ++b) {
        buckets_.set(b, 0);
      }
      // Histogram scatter: sequential key reads, data-dependent RMW.
      for (std::size_t i = 0; i < keys_count_; ++i) {
        const std::uint32_t key = keys_.get(i);
        buckets_.update(key, [](std::uint32_t c) { return c + 1; });
      }
      // Exclusive prefix sum (streaming RMW).
      std::uint32_t running = 0;
      for (std::size_t b = 0; b < bucket_count_; ++b) {
        const std::uint32_t count = buckets_.get(b);
        buckets_.set(b, running);
        running += count;
      }
      // Rank scatter: each key claims the next slot of its bucket.
      for (std::size_t i = 0; i < keys_count_; ++i) {
        const std::uint32_t key = keys_.get(i);
        const std::uint32_t rank = buckets_.get(key);
        buckets_.set(key, rank + 1);
        ranks_.set(i, rank);
      }
    }
  }

  std::size_t keys_count_;
  std::size_t bucket_count_;
  Array<std::uint32_t> keys_;
  Array<std::uint32_t> ranks_;
  Array<std::uint32_t> buckets_;
};

}  // namespace

std::unique_ptr<Workload> make_is(const WorkloadParams& params) {
  return std::make_unique<IsWorkload>(params);
}

}  // namespace hms::workloads
