// AMG: CORAL AMG2013 analog.
//
// A geometric multigrid V-cycle on a 3D 7-point Poisson system: weighted-
// Jacobi smoothing (SpMV-shaped sweeps), residual restriction to a coarser
// grid, recursive solve, prolongation back — the level-traversal and
// fixed-pattern update behaviour of algebraic multigrid solvers (paper:
// "updating points of the grid according to a fixed pattern").
#pragma once

#include <memory>

#include "hms/workloads/workload.hpp"

namespace hms::workloads {

[[nodiscard]] std::unique_ptr<Workload> make_amg(const WorkloadParams& params);

}  // namespace hms::workloads
