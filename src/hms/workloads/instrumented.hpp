// Instrumented containers: real data structures whose element accesses emit
// MemoryAccess records into an AccessSink as a side effect.
//
// This is the source-level substitute for PEBIL binary instrumentation
// (DESIGN.md substitutions table): kernels compute real results on real
// data while the simulator observes their address stream online.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hms/common/error.hpp"
#include "hms/trace/sink.hpp"
#include "hms/workloads/virtual_address_space.hpp"

namespace hms::workloads {

/// A contiguous typed array placed in a VirtualAddressSpace.
///
/// `get`/`set` emit one load/store of sizeof(T) at the element's simulated
/// address; `raw` bypasses instrumentation for setup/verification code whose
/// accesses must not appear in the stream.
template <typename T>
class Array {
  static_assert(std::is_trivially_copyable_v<T>,
                "Array elements must be trivially copyable");

 public:
  Array(VirtualAddressSpace& vas, trace::AccessSink& sink, std::string name,
        std::size_t count, T init = T{})
      : sink_(&sink),
        base_(vas.allocate(std::move(name), count * sizeof(T))),
        data_(count, init) {}

  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] Address base() const noexcept { return base_; }
  [[nodiscard]] Address address_of(std::size_t i) const noexcept {
    return base_ + i * sizeof(T);
  }

  /// Instrumented read.
  [[nodiscard]] T get(std::size_t i) const {
    sink_->access(trace::MemoryAccess{address_of(i), sizeof(T),
                                      AccessType::Load, 0});
    return data_[i];
  }

  /// Instrumented write.
  void set(std::size_t i, T value) {
    sink_->access(trace::MemoryAccess{address_of(i), sizeof(T),
                                      AccessType::Store, 0});
    data_[i] = value;
  }

  /// Instrumented read-modify-write (one load followed by one store).
  template <typename F>
  void update(std::size_t i, F&& f) {
    set(i, f(get(i)));
  }

  /// Un-instrumented access for initialization and result checking.
  [[nodiscard]] T& raw(std::size_t i) { return data_[i]; }
  [[nodiscard]] const T& raw(std::size_t i) const { return data_[i]; }

 private:
  trace::AccessSink* sink_;
  Address base_;
  std::vector<T> data_;
};

}  // namespace hms::workloads
