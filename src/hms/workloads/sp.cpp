#include "hms/workloads/sp.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "hms/common/error.hpp"
#include "hms/workloads/workload_base.hpp"

namespace hms::workloads {

namespace {

constexpr std::size_t kComponents = 5;
// Doubles per cell: u(5) + rhs(5) + five diagonals.
constexpr std::size_t kDoublesPerCell = 2 * kComponents + 5;

class SpWorkload final : public WorkloadBase {
 public:
  explicit SpWorkload(const WorkloadParams& params)
      : WorkloadBase(
            WorkloadInfo{
                .name = "SP",
                .suite = "NPB",
                .inputs = "Class C (reconstructed; used in Figs. 7-8)",
                .paper_footprint_bytes = 1024ull << 20,
                .paper_reference_seconds = 30.0,
                .memory_bound_fraction = 0.55,
            },
            params),
        n_(grid_side(params.footprint_bytes)),
        u_(vas_, sink_, "u", kComponents * n_ * n_ * n_, 0.0),
        rhs_(vas_, sink_, "rhs", kComponents * n_ * n_ * n_, 0.0),
        d0_(vas_, sink_, "diag_m2", n_ * n_ * n_, 0.0),
        d1_(vas_, sink_, "diag_m1", n_ * n_ * n_, 0.0),
        d2_(vas_, sink_, "diag_0", n_ * n_ * n_, 0.0),
        d3_(vas_, sink_, "diag_p1", n_ * n_ * n_, 0.0),
        d4_(vas_, sink_, "diag_p2", n_ * n_ * n_, 0.0),
        work_(vas_, sink_, "work", 4 * n_, 0.0) {
    initialize();
  }

  [[nodiscard]] static std::size_t grid_side(std::uint64_t footprint) {
    const double cells =
        static_cast<double>(footprint) / (kDoublesPerCell * sizeof(double));
    const auto side = static_cast<std::size_t>(std::cbrt(cells));
    check(side >= 6, "SP: footprint too small for a 6^3 grid");
    return side;
  }

  [[nodiscard]] std::size_t grid() const noexcept { return n_; }

  /// Pentadiagonal system is diagonally dominant: the solution stays
  /// finite and bounded by the RHS magnitude.
  [[nodiscard]] bool validate() const override {
    double m = 0.0;
    for (std::size_t i = 0; i < kComponents * n_ * n_ * n_; ++i) {
      const double v = std::abs(u_.raw(i));
      if (!std::isfinite(v)) return false;
      m = std::max(m, v);
    }
    return m > 0.0 && m < 10.0;
  }

 private:
  [[nodiscard]] std::size_t cell(std::size_t i, std::size_t j,
                                 std::size_t k) const noexcept {
    return (k * n_ + j) * n_ + i;
  }

  void initialize() {
    for (std::size_t idx = 0; idx < n_ * n_ * n_; ++idx) {
      d0_.raw(idx) = -0.5;
      d1_.raw(idx) = -1.0;
      d2_.raw(idx) = 6.0 + 0.1 * rng_.uniform01();
      d3_.raw(idx) = -1.0;
      d4_.raw(idx) = -0.5;
    }
    for (std::size_t m = 0; m < kComponents; ++m) {
      for (std::size_t idx = 0; idx < n_ * n_ * n_; ++idx) {
        rhs_.raw(m * n_ * n_ * n_ + idx) =
            std::cos(0.02 * static_cast<double>(idx) +
                     static_cast<double>(m));
      }
    }
  }

  /// Pentadiagonal forward elimination + back substitution along a line.
  /// Workspace layout (stride n): [0..n) alpha, [n..2n) beta, [2n..3n) z.
  void solve_line(std::size_t base, std::size_t stride,
                  std::size_t comp_off) {
    const std::size_t n = n_;
    auto alpha = [&](std::size_t i) { return i; };
    auto beta = [&](std::size_t i) { return n + i; };
    auto zi = [&](std::size_t i) { return 2 * n + i; };

    // i = 0
    {
      const std::size_t c0 = base;
      const double mu = d2_.get(c0);
      work_.set(alpha(0), d3_.get(c0) / mu);
      work_.set(beta(0), d4_.get(c0) / mu);
      work_.set(zi(0), rhs_.get(comp_off + c0) / mu);
    }
    // i = 1
    if (n > 1) {
      const std::size_t c1 = base + stride;
      const double l = d1_.get(c1);
      const double mu = d2_.get(c1) - l * work_.get(alpha(0));
      work_.set(alpha(1), (d3_.get(c1) - l * work_.get(beta(0))) / mu);
      work_.set(beta(1), d4_.get(c1) / mu);
      work_.set(zi(1),
                (rhs_.get(comp_off + c1) - l * work_.get(zi(0))) / mu);
    }
    for (std::size_t i = 2; i < n; ++i) {
      const std::size_t ci = base + i * stride;
      const double e = d0_.get(ci);
      const double l = d1_.get(ci) - e * work_.get(alpha(i - 2));
      const double mu = d2_.get(ci) - e * work_.get(beta(i - 2)) -
                        l * work_.get(alpha(i - 1));
      work_.set(alpha(i), (d3_.get(ci) - l * work_.get(beta(i - 1))) / mu);
      work_.set(beta(i), d4_.get(ci) / mu);
      work_.set(zi(i), (rhs_.get(comp_off + ci) - e * work_.get(zi(i - 2)) -
                        l * work_.get(zi(i - 1))) /
                           mu);
    }
    // Back substitution.
    double x1 = work_.get(zi(n - 1));
    u_.set(comp_off + base + (n - 1) * stride, x1);
    if (n > 1) {
      double x2 = work_.get(zi(n - 2)) - work_.get(alpha(n - 2)) * x1;
      u_.set(comp_off + base + (n - 2) * stride, x2);
      for (std::size_t i = n - 2; i-- > 0;) {
        const double x = work_.get(zi(i)) - work_.get(alpha(i)) * x2 -
                         work_.get(beta(i)) * x1;
        u_.set(comp_off + base + i * stride, x);
        x1 = x2;
        x2 = x;
      }
    }
  }

  void sweep_direction(int direction) {
    const std::size_t n = n_;
    const std::size_t plane = n * n;
    for (std::size_t outer = 0; outer < n; ++outer) {
      for (std::size_t inner = 0; inner < n; ++inner) {
        std::size_t base = 0;
        std::size_t stride = 0;
        switch (direction) {
          case 0:
            base = cell(0, inner, outer);
            stride = 1;
            break;
          case 1:
            base = cell(inner, 0, outer);
            stride = n;
            break;
          default:
            base = cell(inner, outer, 0);
            stride = plane;
            break;
        }
        for (std::size_t m = 0; m < kComponents; ++m) {
          solve_line(base, stride, m * n * plane);
        }
      }
    }
  }

  void execute() override {
    const std::size_t cells = n_ * n_ * n_;
    for (std::uint32_t it = 0; it < params_.iterations; ++it) {
      for (int direction = 0; direction < 3; ++direction) {
        sweep_direction(direction);
      }
      for (std::size_t m = 0; m < kComponents; ++m) {
        for (std::size_t idx = 0; idx < cells; ++idx) {
          rhs_.set(m * cells + idx, 0.75 * u_.get(m * cells + idx));
        }
      }
    }
  }

  std::size_t n_;
  Array<double> u_;
  Array<double> rhs_;
  Array<double> d0_;
  Array<double> d1_;
  Array<double> d2_;
  Array<double> d3_;
  Array<double> d4_;
  Array<double> work_;
};

}  // namespace

std::unique_ptr<Workload> make_sp(const WorkloadParams& params) {
  return std::make_unique<SpWorkload>(params);
}

}  // namespace hms::workloads
