// WorkloadRegistry: name -> factory mapping plus the paper's evaluation
// suite (Table 4 plus SP, which appears in the NDM figures).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "hms/workloads/workload.hpp"

namespace hms::workloads {

/// Creates a workload by name ("BT", "SP", "LU", "CG", "AMG2013",
/// "Graph500", "Hashing", "Velvet", "StreamTriad"; case-insensitive).
/// Throws hms::Error for unknown names.
[[nodiscard]] std::unique_ptr<Workload> make_workload(
    std::string_view name, const WorkloadParams& params);

/// All registered workload names.
[[nodiscard]] const std::vector<std::string>& workload_names();

/// The paper's evaluation suite: the seven Table 4 entries plus SP.
[[nodiscard]] const std::vector<std::string>& paper_suite();

}  // namespace hms::workloads
