// Velvet: de novo short-read assembly analog (Zerbino & Birney).
//
// Builds a de Bruijn graph from synthetic short reads sampled off a random
// genome: sequential read scanning, rolling 2-bit k-mer encoding, k-mer
// counting in an open-addressing table (random access), and a contig-walk
// phase that chases unique successors through the table — the mixed
// sequential/irregular behaviour of genome assemblers (paper Table 4:
// "Default", 4 GB/core).
#pragma once

#include <memory>

#include "hms/workloads/workload.hpp"

namespace hms::workloads {

[[nodiscard]] std::unique_ptr<Workload> make_velvet(
    const WorkloadParams& params);

}  // namespace hms::workloads
