// STREAM triad: a(i) = b(i) + s * c(i).
//
// Not part of the paper's suite; included as a calibration workload with a
// fully predictable stream (3 arrays, unit stride, 2:1 load:store on a) for
// tests and the simulator-throughput microbench.
#pragma once

#include <memory>

#include "hms/workloads/workload.hpp"

namespace hms::workloads {

[[nodiscard]] std::unique_ptr<Workload> make_stream_triad(
    const WorkloadParams& params);

}  // namespace hms::workloads
