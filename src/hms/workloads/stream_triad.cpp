#include "hms/workloads/stream_triad.hpp"

#include <cstddef>

#include "hms/common/error.hpp"
#include "hms/workloads/workload_base.hpp"

namespace hms::workloads {

namespace {

class StreamTriadWorkload final : public WorkloadBase {
 public:
  explicit StreamTriadWorkload(const WorkloadParams& params)
      : WorkloadBase(
            WorkloadInfo{
                .name = "StreamTriad",
                .suite = "Synthetic",
                .inputs = "triad",
                .paper_footprint_bytes = 0,
                .paper_reference_seconds = 0.0,
                .memory_bound_fraction = 0.90,
            },
            params),
        n_(pick_elements(params.footprint_bytes)),
        a_(vas_, sink_, "a", n_, 0.0),
        b_(vas_, sink_, "b", n_, 1.0),
        c_(vas_, sink_, "c", n_, 2.0) {}

  [[nodiscard]] static std::size_t pick_elements(std::uint64_t footprint) {
    const std::size_t n = footprint / (3 * sizeof(double));
    check(n >= 1, "StreamTriad: footprint too small");
    return n;
  }

  [[nodiscard]] std::size_t elements() const noexcept { return n_; }

 private:
  void execute() override {
    constexpr double kScalar = 3.0;
    for (std::uint32_t it = 0; it < params_.iterations; ++it) {
      for (std::size_t i = 0; i < n_; ++i) {
        a_.set(i, b_.get(i) + kScalar * c_.get(i));
      }
    }
  }

  std::size_t n_;
  Array<double> a_;
  Array<double> b_;
  Array<double> c_;
};

}  // namespace

std::unique_ptr<Workload> make_stream_triad(const WorkloadParams& params) {
  return std::make_unique<StreamTriadWorkload>(params);
}

}  // namespace hms::workloads
