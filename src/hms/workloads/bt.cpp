#include "hms/workloads/bt.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "hms/common/error.hpp"
#include "hms/workloads/workload_base.hpp"

namespace hms::workloads {

namespace {

constexpr std::size_t kComponents = 5;
// Doubles per cell: u(5) + rhs(5) + a,b,c coefficients(3).
constexpr std::size_t kDoublesPerCell = 2 * kComponents + 3;

class BtWorkload final : public WorkloadBase {
 public:
  explicit BtWorkload(const WorkloadParams& params)
      : WorkloadBase(
            WorkloadInfo{
                .name = "BT",
                .suite = "NPB",
                .inputs = "Class D",
                .paper_footprint_bytes = 1815ull << 20,  // 1.69 GB
                .paper_reference_seconds = 36.0,
                .memory_bound_fraction = 0.55,
            },
            params),
        n_(grid_side(params.footprint_bytes)),
        u_(vas_, sink_, "u", kComponents * n_ * n_ * n_, 0.0),
        rhs_(vas_, sink_, "rhs", kComponents * n_ * n_ * n_, 0.0),
        a_(vas_, sink_, "coeff_a", n_ * n_ * n_, 0.0),
        b_(vas_, sink_, "coeff_b", n_ * n_ * n_, 0.0),
        c_(vas_, sink_, "coeff_c", n_ * n_ * n_, 0.0),
        work_c_(vas_, sink_, "work_c", n_, 0.0),
        work_d_(vas_, sink_, "work_d", n_, 0.0) {
    initialize();
  }

  /// Grid edge length for a target footprint.
  [[nodiscard]] static std::size_t grid_side(std::uint64_t footprint) {
    const double cells =
        static_cast<double>(footprint) / (kDoublesPerCell * sizeof(double));
    const auto side = static_cast<std::size_t>(std::cbrt(cells));
    check(side >= 4, "BT: footprint too small for a 4^3 grid");
    return side;
  }

  [[nodiscard]] std::size_t grid() const noexcept { return n_; }

  /// Un-instrumented max |u| over the grid, for validation.
  [[nodiscard]] double max_abs_u() const {
    double m = 0.0;
    for (std::size_t i = 0; i < kComponents * n_ * n_ * n_; ++i) {
      m = std::max(m, std::abs(u_.raw(i)));
    }
    return m;
  }

  /// The diagonally dominant system is a contraction: the solved field must
  /// be finite, nonzero, and bounded by the RHS magnitude.
  [[nodiscard]] bool validate() const override {
    const double m = max_abs_u();
    return std::isfinite(m) && m > 0.0 && m < 10.0;
  }

 private:
  [[nodiscard]] std::size_t cell(std::size_t i, std::size_t j,
                                 std::size_t k) const noexcept {
    return (k * n_ + j) * n_ + i;
  }

  void initialize() {
    // Diagonally dominant constant-coefficient system with a smooth RHS;
    // raw writes keep setup out of the address stream.
    for (std::size_t idx = 0; idx < n_ * n_ * n_; ++idx) {
      a_.raw(idx) = -1.0;
      b_.raw(idx) = 4.0 + 0.1 * rng_.uniform01();
      c_.raw(idx) = -1.0;
    }
    for (std::size_t m = 0; m < kComponents; ++m) {
      for (std::size_t idx = 0; idx < n_ * n_ * n_; ++idx) {
        rhs_.raw(m * n_ * n_ * n_ + idx) =
            std::sin(0.01 * static_cast<double>(idx + m));
      }
    }
  }

  /// Thomas algorithm along one grid line for one component.
  /// `base` is the cell index of the line's first cell; `stride` is the
  /// cell-index step along the line; `comp_off` selects the component plane.
  void solve_line(std::size_t base, std::size_t stride,
                  std::size_t comp_off) {
    const std::size_t n = n_;
    // Forward elimination.
    {
      const std::size_t c0 = base;
      const double b0 = b_.get(c0);
      work_c_.set(0, c_.get(c0) / b0);
      work_d_.set(0, rhs_.get(comp_off + c0) / b0);
    }
    for (std::size_t i = 1; i < n; ++i) {
      const std::size_t ci = base + i * stride;
      const double ai = a_.get(ci);
      const double w = b_.get(ci) - ai * work_c_.get(i - 1);
      work_c_.set(i, c_.get(ci) / w);
      work_d_.set(i, (rhs_.get(comp_off + ci) - ai * work_d_.get(i - 1)) / w);
    }
    // Back substitution into u.
    double next = work_d_.get(n - 1);
    u_.set(comp_off + base + (n - 1) * stride, next);
    for (std::size_t i = n - 1; i-- > 0;) {
      next = work_d_.get(i) - work_c_.get(i) * next;
      u_.set(comp_off + base + i * stride, next);
    }
  }

  void sweep_direction(int direction) {
    const std::size_t n = n_;
    const std::size_t plane = n * n;
    for (std::size_t outer = 0; outer < n; ++outer) {
      for (std::size_t inner = 0; inner < n; ++inner) {
        std::size_t base = 0;
        std::size_t stride = 0;
        switch (direction) {
          case 0:  // x lines: vary i, fix (j,k)
            base = cell(0, inner, outer);
            stride = 1;
            break;
          case 1:  // y lines
            base = cell(inner, 0, outer);
            stride = n;
            break;
          default:  // z lines
            base = cell(inner, outer, 0);
            stride = plane;
            break;
        }
        for (std::size_t m = 0; m < kComponents; ++m) {
          solve_line(base, stride, m * n * plane);
        }
      }
    }
  }

  void execute() override {
    const std::size_t cells = n_ * n_ * n_;
    for (std::uint32_t it = 0; it < params_.iterations; ++it) {
      for (int direction = 0; direction < 3; ++direction) {
        sweep_direction(direction);
      }
      // Couple iterations: the solved field becomes the next RHS.
      for (std::size_t m = 0; m < kComponents; ++m) {
        for (std::size_t idx = 0; idx < cells; ++idx) {
          rhs_.set(m * cells + idx, 0.8 * u_.get(m * cells + idx));
        }
      }
    }
  }

  std::size_t n_;
  Array<double> u_;
  Array<double> rhs_;
  Array<double> a_;
  Array<double> b_;
  Array<double> c_;
  Array<double> work_c_;
  Array<double> work_d_;
};

}  // namespace

std::unique_ptr<Workload> make_bt(const WorkloadParams& params) {
  return std::make_unique<BtWorkload>(params);
}

}  // namespace hms::workloads
