#include "hms/workloads/hashing.hpp"

#include <algorithm>
#include <cstddef>

#include "hms/common/bitops.hpp"
#include "hms/common/error.hpp"
#include "hms/workloads/workload_base.hpp"

namespace hms::workloads {

namespace {

constexpr std::uint64_t kEmpty = 0;
/// Key popularity skew. Real hashing workloads (the CORAL benchmark hashes
/// genomic k-mers) touch keys with a heavy-tailed distribution; uniform
/// keys would overstate the randomness of the memory stream.
constexpr double kZipfSkew = 1.2;

/// Finalizer of SplitMix64 — a strong 64-bit mixer.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// The benchmark streams keys from an input buffer (sequential scan) and
/// probes an open-addressing table (skewed random access): the mix of
/// spatial-local and irregular references that characterizes the CORAL
/// Hash benchmark.
class HashingWorkload final : public WorkloadBase {
 public:
  explicit HashingWorkload(const WorkloadParams& params)
      : WorkloadBase(
            WorkloadInfo{
                .name = "Hashing",
                .suite = "CORAL",
                .inputs = "-m 30M -n 50K",
                .paper_footprint_bytes = 4096ull << 20,  // 4 GB
                .paper_reference_seconds = 389.6,
                .memory_bound_fraction = 0.70,
            },
            params),
        slots_(pick_slots(params.footprint_bytes)),
        key_count_(pick_keys(params.footprint_bytes)),
        keys_(vas_, sink_, "table_keys", slots_, kEmpty),
        values_(vas_, sink_, "table_values", slots_, std::uint64_t{0}),
        input_keys_(vas_, sink_, "input_keys", key_count_,
                    std::uint64_t{0}) {
    // The CORAL inputs ("-m 30M -n 50K") size the table far beyond the
    // operation count: only a small fraction of the allocated slots is
    // ever touched. Universe = slots/64 distinct keys, drawn Zipf-skewed.
    ZipfSampler zipf(std::max<std::size_t>(slots_ / 64, 64), kZipfSkew);
    for (std::size_t i = 0; i < key_count_; ++i) {
      input_keys_.raw(i) = mix64(zipf(rng_) + 1) | 1;
    }
  }

  /// Table (keys 8 B + values 8 B per slot) gets ~2/3 of the footprint.
  [[nodiscard]] static std::size_t pick_slots(std::uint64_t footprint) {
    check(footprint >= 16 * 1024, "Hashing: footprint too small");
    std::uint64_t slots = next_pow2(2 * footprint / 3 / 16);
    if (slots * 16 * 3 > footprint * 2) slots /= 2;
    return slots;
  }

  /// Input key buffer gets the remaining ~1/3 (8 B keys).
  [[nodiscard]] static std::size_t pick_keys(std::uint64_t footprint) {
    return std::max<std::size_t>(footprint / 3 / 8, 64);
  }

  [[nodiscard]] std::size_t slots() const noexcept { return slots_; }
  [[nodiscard]] std::uint64_t inserted() const noexcept { return inserted_; }
  [[nodiscard]] std::uint64_t lookup_hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t lookup_misses() const noexcept {
    return misses_;
  }

  /// Spot-checks a sample of streamed keys and requires both hit and miss
  /// lookups to have occurred.
  [[nodiscard]] bool validate() const override {
    if (inserted_ == 0 || hits_ == 0 || misses_ == 0) return false;
    for (std::size_t i = 0; i < std::min<std::size_t>(key_count_, 64);
         ++i) {
      if (!contains_raw(input_keys_.raw(i))) return false;
    }
    return true;
  }

  /// Un-instrumented membership check, for validation.
  [[nodiscard]] bool contains_raw(std::uint64_t key) const {
    std::size_t i = static_cast<std::size_t>(mix64(key)) & (slots_ - 1);
    for (std::size_t probes = 0; probes < slots_; ++probes) {
      const std::uint64_t k = keys_.raw(i);
      if (k == key) return true;
      if (k == kEmpty) return false;
      i = (i + 1) & (slots_ - 1);
    }
    return false;
  }

 private:
  void insert(std::uint64_t key, std::uint64_t value) {
    std::size_t i = static_cast<std::size_t>(mix64(key)) & (slots_ - 1);
    while (true) {
      const std::uint64_t k = keys_.get(i);
      if (k == key) {
        values_.set(i, value);
        return;
      }
      if (k == kEmpty) {
        keys_.set(i, key);
        values_.set(i, value);
        ++inserted_;
        return;
      }
      i = (i + 1) & (slots_ - 1);
    }
  }

  [[nodiscard]] bool lookup(std::uint64_t key) {
    std::size_t i = static_cast<std::size_t>(mix64(key)) & (slots_ - 1);
    while (true) {
      const std::uint64_t k = keys_.get(i);
      if (k == key) {
        (void)values_.get(i);
        return true;
      }
      if (k == kEmpty) return false;
      i = (i + 1) & (slots_ - 1);
    }
  }

  void execute() override {
    // Insert phase: sequential scan of the input buffer, skewed probes.
    for (std::size_t i = 0; i < key_count_; ++i) {
      insert(input_keys_.get(i), i);
    }
    // Lookup phase: rescan the buffer; ~1/10 of the probes are corrupted
    // keys that miss (the benchmark's negative lookups).
    for (std::uint32_t it = 0; it < params_.iterations; ++it) {
      for (std::size_t i = 0; i < key_count_; ++i) {
        std::uint64_t key = input_keys_.get(i);
        if (rng_.chance(0.10)) key ^= 0x8000000000000000ULL;
        if (lookup(key)) {
          ++hits_;
        } else {
          ++misses_;
        }
      }
    }
  }

  std::size_t slots_;
  std::size_t key_count_;
  Array<std::uint64_t> keys_;
  Array<std::uint64_t> values_;
  Array<std::uint64_t> input_keys_;
  std::uint64_t inserted_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace

std::unique_ptr<Workload> make_hashing(const WorkloadParams& params) {
  return std::make_unique<HashingWorkload>(params);
}

}  // namespace hms::workloads
