#include "hms/workloads/ft.hpp"

#include <cmath>
#include <cstddef>

#include "hms/common/bitops.hpp"
#include "hms/common/error.hpp"
#include "hms/workloads/workload_base.hpp"

namespace hms::workloads {

namespace {

// Doubles per cell: re + im.
constexpr std::size_t kDoublesPerCell = 2;

class FtWorkload final : public WorkloadBase {
 public:
  explicit FtWorkload(const WorkloadParams& params)
      : WorkloadBase(
            WorkloadInfo{
                .name = "FT",
                .suite = "NPB",
                .inputs = "Class C (suite extension, not in Table 4)",
                .paper_footprint_bytes = 1024ull << 20,
                .paper_reference_seconds = 35.0,
                .memory_bound_fraction = 0.60,
            },
            params),
        dims_(grid_dims(params.footprint_bytes)),
        re_(vas_, sink_, "re", cells(), 0.0),
        im_(vas_, sink_, "im", cells(), 0.0) {
    for (std::size_t i = 0; i < cells(); ++i) {
      re_.raw(i) = std::cos(0.01 * static_cast<double>(i));
      im_.raw(i) = 0.0;
    }
  }

  struct Dims {
    std::size_t x = 4, y = 4, z = 4;
  };

  /// Independent power-of-two dimensions (radix-2 per line) fitting the
  /// footprint: the smallest dimension doubles while the grid still fits,
  /// keeping the total within a factor of 2 of the target.
  [[nodiscard]] static Dims grid_dims(std::uint64_t footprint) {
    const std::uint64_t budget =
        footprint / (kDoublesPerCell * sizeof(double));
    check(budget >= 64, "FT: footprint too small for a 4^3 grid");
    Dims d;
    while (2 * d.x * d.y * d.z <= budget) {
      std::size_t& smallest =
          d.x <= d.y ? (d.x <= d.z ? d.x : d.z) : (d.y <= d.z ? d.y : d.z);
      smallest *= 2;
    }
    return d;
  }

  [[nodiscard]] std::size_t cells() const noexcept {
    return dims_.x * dims_.y * dims_.z;
  }

  /// Parseval-style check: forward+inverse along every dimension must
  /// restore the input signal (up to rounding).
  [[nodiscard]] bool validate() const override {
    double err = 0.0;
    const std::size_t samples = std::min<std::size_t>(cells(), 4096);
    for (std::size_t i = 0; i < samples; ++i) {
      const double expected = std::cos(0.01 * static_cast<double>(i));
      err = std::max(err, std::abs(re_.raw(i) - expected));
      err = std::max(err, std::abs(im_.raw(i)));
    }
    return err < 1e-6;
  }

 private:
  /// In-place radix-2 FFT of an n-point line (base + stride addressing);
  /// `inverse` flips the twiddle sign and normalizes.
  void fft_line(std::size_t base, std::size_t stride, std::size_t n,
                bool inverse) {
    // Bit-reversal permutation (the irregular shuffle).
    for (std::size_t i = 1, j = 0; i < n; ++i) {
      std::size_t bit = n >> 1;
      for (; j & bit; bit >>= 1) j ^= bit;
      j ^= bit;
      if (i < j) {
        const std::size_t a = base + i * stride;
        const std::size_t b = base + j * stride;
        const double ra = re_.get(a), ia = im_.get(a);
        const double rb = re_.get(b), ib = im_.get(b);
        re_.set(a, rb);
        im_.set(a, ib);
        re_.set(b, ra);
        im_.set(b, ia);
      }
    }
    // Butterflies.
    for (std::size_t len = 2; len <= n; len <<= 1) {
      const double angle =
          (inverse ? 2.0 : -2.0) * 3.14159265358979323846 /
          static_cast<double>(len);
      const double wr = std::cos(angle), wi = std::sin(angle);
      for (std::size_t block = 0; block < n; block += len) {
        double cr = 1.0, ci = 0.0;
        for (std::size_t k = 0; k < len / 2; ++k) {
          const std::size_t a = base + (block + k) * stride;
          const std::size_t b = base + (block + k + len / 2) * stride;
          const double ra = re_.get(a), ia = im_.get(a);
          const double rb = re_.get(b), ib = im_.get(b);
          const double tr = rb * cr - ib * ci;
          const double ti = rb * ci + ib * cr;
          re_.set(a, ra + tr);
          im_.set(a, ia + ti);
          re_.set(b, ra - tr);
          im_.set(b, ia - ti);
          const double ncr = cr * wr - ci * wi;
          ci = cr * wi + ci * wr;
          cr = ncr;
        }
      }
    }
    if (inverse) {
      const double inv = 1.0 / static_cast<double>(n);
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t a = base + i * stride;
        re_.set(a, re_.get(a) * inv);
        im_.set(a, im_.get(a) * inv);
      }
    }
  }

  void transform(bool inverse) {
    const std::size_t nx = dims_.x, ny = dims_.y, nz = dims_.z;
    const std::size_t plane = nx * ny;
    for (std::size_t z = 0; z < nz; ++z) {        // x lines: stride 1
      for (std::size_t y = 0; y < ny; ++y) {
        fft_line((z * ny + y) * nx, 1, nx, inverse);
      }
    }
    for (std::size_t z = 0; z < nz; ++z) {        // y lines: stride nx
      for (std::size_t x = 0; x < nx; ++x) {
        fft_line(z * plane + x, nx, ny, inverse);
      }
    }
    for (std::size_t y = 0; y < ny; ++y) {        // z lines: stride nx*ny
      for (std::size_t x = 0; x < nx; ++x) {
        fft_line(y * nx + x, plane, nz, inverse);
      }
    }
  }

  void execute() override {
    for (std::uint32_t it = 0; it < params_.iterations; ++it) {
      transform(/*inverse=*/false);
      transform(/*inverse=*/true);  // round-trip keeps data checkable
    }
  }

  Dims dims_;
  Array<double> re_;
  Array<double> im_;
};

}  // namespace

std::unique_ptr<Workload> make_ft(const WorkloadParams& params) {
  return std::make_unique<FtWorkload>(params);
}

}  // namespace hms::workloads
