// CG: NPB Conjugate-Gradient analog.
//
// Real conjugate-gradient iteration on a randomly structured symmetric
// positive-definite sparse matrix in CSR form. The SpMV gathers through a
// random column pattern — NPB CG's signature irregular access (paper:
// "conjugate gradient solver with irregular memory access").
#pragma once

#include <memory>

#include "hms/workloads/workload.hpp"

namespace hms::workloads {

[[nodiscard]] std::unique_ptr<Workload> make_cg(const WorkloadParams& params);

}  // namespace hms::workloads
