// FT: NPB 3-D FFT analog (not in the paper's Table 4; provided for suite
// completeness alongside the other NPB kernels).
//
// Performs real 1-D radix-2 FFT butterflies along each dimension of a 3-D
// complex grid. Memory behaviour is FT's signature: unit-stride passes,
// then passes strided by n and n^2, with the bit-reversal permutation's
// irregular shuffles in between.
#pragma once

#include <memory>

#include "hms/workloads/workload.hpp"

namespace hms::workloads {

[[nodiscard]] std::unique_ptr<Workload> make_ft(const WorkloadParams& params);

}  // namespace hms::workloads
