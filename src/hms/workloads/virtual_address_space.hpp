// VirtualAddressSpace: a named-range allocator for workload data structures.
//
// Every kernel allocates its arrays here, so each simulated data structure
// occupies a known contiguous address range. These ranges are exactly the
// "contiguous range of addresses that accounts for the bulk of the memory
// references" the paper's NDM oracle partitions between DRAM and NVM
// (Section V, NDM results).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hms/common/types.hpp"

namespace hms::workloads {

/// A named allocation.
struct AddressRange {
  std::string name;
  Address base = 0;
  std::uint64_t length = 0;

  [[nodiscard]] Address end() const noexcept { return base + length; }
  [[nodiscard]] bool contains(Address a) const noexcept {
    return a >= base && a - base < length;
  }
};

/// See file comment. Allocation is bump-pointer with page alignment;
/// ranges never overlap and are never freed (kernels are one-shot).
class VirtualAddressSpace {
 public:
  /// `base`: address of the first allocation (defaults clear of page 0);
  /// `alignment`: allocation granularity (power of two).
  explicit VirtualAddressSpace(Address base = 0x1000'0000,
                               std::uint64_t alignment = 4096);

  /// Reserves `bytes` under `name` and returns the range base.
  /// Throws hms::Error if the name is already taken or bytes == 0.
  Address allocate(std::string name, std::uint64_t bytes);

  [[nodiscard]] const std::vector<AddressRange>& ranges() const noexcept {
    return ranges_;
  }
  [[nodiscard]] const AddressRange& range(std::string_view name) const;
  [[nodiscard]] bool has_range(std::string_view name) const noexcept;

  /// Sum of all allocated range lengths — the workload footprint.
  [[nodiscard]] std::uint64_t total_allocated() const noexcept {
    return total_;
  }
  [[nodiscard]] Address base() const noexcept { return base_; }
  /// One past the highest allocated address.
  [[nodiscard]] Address top() const noexcept { return next_; }

  /// The range containing `a`, or nullptr.
  [[nodiscard]] const AddressRange* find(Address a) const noexcept;

 private:
  Address base_;
  Address next_;
  std::uint64_t alignment_;
  std::uint64_t total_ = 0;
  std::vector<AddressRange> ranges_;
};

}  // namespace hms::workloads
