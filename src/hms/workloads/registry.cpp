#include "hms/workloads/registry.hpp"

#include <functional>
#include <utility>

#include "hms/common/error.hpp"
#include "hms/common/string_util.hpp"
#include "hms/workloads/amg.hpp"
#include "hms/workloads/bt.hpp"
#include "hms/workloads/cg.hpp"
#include "hms/workloads/ft.hpp"
#include "hms/workloads/graph500.hpp"
#include "hms/workloads/hashing.hpp"
#include "hms/workloads/is.hpp"
#include "hms/workloads/lu.hpp"
#include "hms/workloads/sp.hpp"
#include "hms/workloads/stream_triad.hpp"
#include "hms/workloads/velvet.hpp"

namespace hms::workloads {

namespace {

using Factory =
    std::function<std::unique_ptr<Workload>(const WorkloadParams&)>;

const std::vector<std::pair<std::string, Factory>>& factories() {
  static const std::vector<std::pair<std::string, Factory>> table = {
      {"BT", make_bt},
      {"SP", make_sp},
      {"LU", make_lu},
      {"CG", make_cg},
      {"FT", make_ft},
      {"IS", make_is},
      {"AMG2013", make_amg},
      {"Graph500", make_graph500},
      {"Hashing", make_hashing},
      {"Velvet", make_velvet},
      {"StreamTriad", make_stream_triad},
  };
  return table;
}

}  // namespace

std::unique_ptr<Workload> make_workload(std::string_view name,
                                        const WorkloadParams& params) {
  for (const auto& [key, factory] : factories()) {
    if (iequals(key, name)) return factory(params);
  }
  if (iequals(name, "AMG")) return make_amg(params);
  if (iequals(name, "Hash") || iequals(name, "Hashing-2")) {
    return make_hashing(params);
  }
  throw Error("unknown workload: " + std::string(name));
}

const std::vector<std::string>& workload_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const auto& [key, factory] : factories()) out.push_back(key);
    return out;
  }();
  return names;
}

const std::vector<std::string>& paper_suite() {
  static const std::vector<std::string> suite = {
      "BT", "SP", "LU", "CG", "AMG2013", "Graph500", "Hashing", "Velvet"};
  return suite;
}

}  // namespace hms::workloads
