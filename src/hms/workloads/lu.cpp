#include "hms/workloads/lu.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "hms/common/error.hpp"
#include "hms/workloads/workload_base.hpp"

namespace hms::workloads {

namespace {

constexpr std::size_t kComponents = 5;
// Doubles per cell: u(5) + rhs(5).
constexpr std::size_t kDoublesPerCell = 2 * kComponents;

class LuWorkload final : public WorkloadBase {
 public:
  explicit LuWorkload(const WorkloadParams& params)
      : WorkloadBase(
            WorkloadInfo{
                .name = "LU",
                .suite = "NPB",
                .inputs = "Class C",
                .paper_footprint_bytes = 819ull << 20,  // 0.8 GB
                .paper_reference_seconds = 40.0,
                .memory_bound_fraction = 0.50,
            },
            params),
        n_(grid_side(params.footprint_bytes)),
        u_(vas_, sink_, "u", kComponents * n_ * n_ * n_, 0.0),
        rhs_(vas_, sink_, "rhs", kComponents * n_ * n_ * n_, 0.0) {
    for (std::size_t m = 0; m < kComponents; ++m) {
      for (std::size_t idx = 0; idx < n_ * n_ * n_; ++idx) {
        rhs_.raw(m * n_ * n_ * n_ + idx) =
            std::sin(0.015 * static_cast<double>(idx) +
                     0.5 * static_cast<double>(m));
      }
    }
  }

  [[nodiscard]] static std::size_t grid_side(std::uint64_t footprint) {
    const double cells =
        static_cast<double>(footprint) / (kDoublesPerCell * sizeof(double));
    const auto side = static_cast<std::size_t>(std::cbrt(cells));
    check(side >= 4, "LU: footprint too small for a 4^3 grid");
    return side;
  }

  [[nodiscard]] std::size_t grid() const noexcept { return n_; }

  /// SSOR with omega in (0,2) on a dominant diagonal converges: the field
  /// must be finite and bounded by max|rhs| / (diag - 3) = ~1/3.
  [[nodiscard]] bool validate() const override {
    double m = 0.0;
    for (std::size_t i = 0; i < kComponents * n_ * n_ * n_; ++i) {
      const double v = std::abs(u_.raw(i));
      if (!std::isfinite(v)) return false;
      m = std::max(m, v);
    }
    return m > 0.0 && m < 1.0;
  }

 private:
  [[nodiscard]] std::size_t cell(std::size_t i, std::size_t j,
                                 std::size_t k) const noexcept {
    return (k * n_ + j) * n_ + i;
  }

  void execute() override {
    constexpr double kOmega = 1.2;
    constexpr double kDiag = 6.0;
    const std::size_t n = n_;
    const std::size_t cells = n * n * n;
    for (std::uint32_t it = 0; it < params_.iterations; ++it) {
      // Forward (lower-triangular) sweep.
      for (std::size_t k = 1; k < n; ++k) {
        for (std::size_t j = 1; j < n; ++j) {
          for (std::size_t i = 1; i < n; ++i) {
            const std::size_t c = cell(i, j, k);
            for (std::size_t m = 0; m < kComponents; ++m) {
              const std::size_t off = m * cells;
              const double nb = u_.get(off + cell(i - 1, j, k)) +
                                u_.get(off + cell(i, j - 1, k)) +
                                u_.get(off + cell(i, j, k - 1));
              const double old = u_.get(off + c);
              const double updated =
                  (1.0 - kOmega) * old +
                  kOmega * (rhs_.get(off + c) + nb) / kDiag;
              u_.set(off + c, updated);
            }
          }
        }
      }
      // Backward (upper-triangular) sweep.
      for (std::size_t k = n - 1; k-- > 0;) {
        for (std::size_t j = n - 1; j-- > 0;) {
          for (std::size_t i = n - 1; i-- > 0;) {
            const std::size_t c = cell(i, j, k);
            for (std::size_t m = 0; m < kComponents; ++m) {
              const std::size_t off = m * cells;
              const double nb = u_.get(off + cell(i + 1, j, k)) +
                                u_.get(off + cell(i, j + 1, k)) +
                                u_.get(off + cell(i, j, k + 1));
              const double old = u_.get(off + c);
              const double updated =
                  (1.0 - kOmega) * old +
                  kOmega * (rhs_.get(off + c) + nb) / kDiag;
              u_.set(off + c, updated);
            }
          }
        }
      }
    }
  }

  std::size_t n_;
  Array<double> u_;
  Array<double> rhs_;
};

}  // namespace

std::unique_ptr<Workload> make_lu(const WorkloadParams& params) {
  return std::make_unique<LuWorkload>(params);
}

}  // namespace hms::workloads
