// BT: NPB Block-Tridiagonal solver analog.
//
// ADI-style sweeps over a 3D structured grid: in each direction, every grid
// line solves a tridiagonal system per solution component via the Thomas
// algorithm. Memory behaviour matches NPB BT's signature: unit-stride
// sweeps in x, n-strided in y, n^2-strided in z, with 5 solution components
// per cell (paper Table 4: Class D, 1.69 GB/core).
#pragma once

#include <memory>

#include "hms/workloads/workload.hpp"

namespace hms::workloads {

[[nodiscard]] std::unique_ptr<Workload> make_bt(const WorkloadParams& params);

}  // namespace hms::workloads
