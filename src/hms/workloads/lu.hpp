// LU: NPB LU (SSOR) solver analog.
//
// Symmetric successive over-relaxation sweeps over a 3D grid with 5
// solution components: a forward wavefront reading (i-1, j-1, k-1)
// neighbours and a backward wavefront reading (i+1, j+1, k+1) neighbours —
// NPB LU's characteristic dependence pattern (paper Table 4: Class C,
// 0.8 GB/core).
#pragma once

#include <memory>

#include "hms/workloads/workload.hpp"

namespace hms::workloads {

[[nodiscard]] std::unique_ptr<Workload> make_lu(const WorkloadParams& params);

}  // namespace hms::workloads
