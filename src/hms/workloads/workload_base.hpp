// Shared implementation scaffolding for the workload kernels.
#pragma once

#include "hms/common/random.hpp"
#include "hms/trace/sink.hpp"
#include "hms/workloads/instrumented.hpp"
#include "hms/workloads/workload.hpp"

namespace hms::workloads {

/// Base class handling sink binding, one-shot enforcement, and common state.
/// Kernels allocate their Array<T> members bound to `sink_` in their
/// constructor and implement `execute()`.
class WorkloadBase : public Workload {
 public:
  [[nodiscard]] const WorkloadInfo& info() const final { return info_; }
  [[nodiscard]] const WorkloadParams& params() const final { return params_; }
  [[nodiscard]] const VirtualAddressSpace& address_space() const final {
    return vas_;
  }

  void run(trace::AccessSink& sink) final;

 protected:
  WorkloadBase(WorkloadInfo info, WorkloadParams params)
      : info_(std::move(info)), params_(params), rng_(params.seed) {}

  /// The kernel body; every instrumented access lands in the bound sink.
  virtual void execute() = 0;

  WorkloadInfo info_;
  WorkloadParams params_;
  Xoshiro256 rng_;
  VirtualAddressSpace vas_;
  trace::ForwardingSink sink_;
  bool ran_ = false;
};

}  // namespace hms::workloads
