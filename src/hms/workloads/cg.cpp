#include "hms/workloads/cg.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <utility>
#include <vector>

#include "hms/common/error.hpp"
#include "hms/workloads/workload_base.hpp"

namespace hms::workloads {

namespace {

// Off-diagonal nonzeros per row (one triangle); total nnz/row ~ 2k+1.
constexpr std::size_t kOffdiagPerRow = 6;
// Bytes per row: values 8*(2k+1) + colidx 4*(2k+1) + rowptr 4 + 5 vectors.
constexpr std::size_t kBytesPerRow =
    12 * (2 * kOffdiagPerRow + 1) + 4 + 5 * 8;

class CgWorkload final : public WorkloadBase {
 public:
  explicit CgWorkload(const WorkloadParams& params)
      : WorkloadBase(
            WorkloadInfo{
                .name = "CG",
                .suite = "CORAL",
                .inputs = "Class D",
                .paper_footprint_bytes = 1536ull << 20,  // 1.5 GB
                .paper_reference_seconds = 54.8,
                .memory_bound_fraction = 0.60,
            },
            params),
        rows_(std::max<std::size_t>(params.footprint_bytes / kBytesPerRow,
                                    64)),
        structure_(build_structure()),
        rowptr_(vas_, sink_, "rowptr",
                rows_ + 1, 0),
        colidx_(vas_, sink_, "colidx", structure_.colidx.size(), 0),
        values_(vas_, sink_, "values", structure_.colidx.size(), 0.0),
        x_(vas_, sink_, "x", rows_, 0.0),
        r_(vas_, sink_, "r", rows_, 0.0),
        p_(vas_, sink_, "p", rows_, 0.0),
        q_(vas_, sink_, "q", rows_, 0.0),
        b_(vas_, sink_, "b", rows_, 1.0) {
    for (std::size_t i = 0; i <= rows_; ++i) {
      rowptr_.raw(i) = structure_.rowptr[i];
    }
    for (std::size_t i = 0; i < structure_.colidx.size(); ++i) {
      colidx_.raw(i) = structure_.colidx[i];
      values_.raw(i) = structure_.values[i];
    }
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }

  /// CG on the SPD system must strictly reduce the residual from its
  /// initial value ||b|| = sqrt(rows).
  [[nodiscard]] bool validate() const override {
    const double initial = std::sqrt(static_cast<double>(rows_));
    const double final_norm = residual_norm();
    return std::isfinite(final_norm) && final_norm < 0.9 * initial;
  }

  /// Un-instrumented residual norm ||b - A x||, for validation.
  [[nodiscard]] double residual_norm() const {
    double sum = 0.0;
    for (std::size_t i = 0; i < rows_; ++i) {
      double axi = 0.0;
      for (std::uint32_t e = rowptr_.raw(i); e < rowptr_.raw(i + 1); ++e) {
        axi += values_.raw(e) * x_.raw(colidx_.raw(e));
      }
      const double d = b_.raw(i) - axi;
      sum += d * d;
    }
    return std::sqrt(sum);
  }

 private:
  struct Structure {
    std::vector<std::uint32_t> rowptr;
    std::vector<std::uint32_t> colidx;
    std::vector<double> values;
  };

  /// Builds a random symmetric strictly-diagonally-dominant CSR matrix:
  /// for each row, kOffdiagPerRow random partners j != i are mirrored so
  /// A = A^T, and the diagonal exceeds the absolute row sum => SPD.
  [[nodiscard]] Structure build_structure() {
    std::vector<std::vector<std::pair<std::uint32_t, double>>> adj(rows_);
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t e = 0; e < kOffdiagPerRow; ++e) {
        auto j = static_cast<std::uint32_t>(rng_.below(rows_));
        if (j == i) j = static_cast<std::uint32_t>((j + 1) % rows_);
        const double v = -(0.25 + 0.5 * rng_.uniform01());
        adj[i].emplace_back(j, v);
        adj[j].emplace_back(static_cast<std::uint32_t>(i), v);
      }
    }
    Structure s;
    s.rowptr.resize(rows_ + 1, 0);
    for (std::size_t i = 0; i < rows_; ++i) {
      std::sort(adj[i].begin(), adj[i].end());
      double offdiag_sum = 0.0;
      for (const auto& [j, v] : adj[i]) offdiag_sum += std::abs(v);
      s.colidx.push_back(static_cast<std::uint32_t>(i));
      s.values.push_back(offdiag_sum + 1.0);  // dominant diagonal
      for (const auto& [j, v] : adj[i]) {
        s.colidx.push_back(j);
        s.values.push_back(v);
      }
      s.rowptr[i + 1] = static_cast<std::uint32_t>(s.colidx.size());
    }
    return s;
  }

  /// Instrumented SpMV: out = A * in.
  void spmv(Array<double>& out, const Array<double>& in) {
    for (std::size_t i = 0; i < rows_; ++i) {
      const std::uint32_t begin = rowptr_.get(i);
      const std::uint32_t end = rowptr_.get(i + 1);
      double acc = 0.0;
      for (std::uint32_t e = begin; e < end; ++e) {
        acc += values_.get(e) * in.get(colidx_.get(e));
      }
      out.set(i, acc);
    }
  }

  /// Instrumented dot product.
  [[nodiscard]] double dot(const Array<double>& a, const Array<double>& b) {
    double acc = 0.0;
    for (std::size_t i = 0; i < rows_; ++i) acc += a.get(i) * b.get(i);
    return acc;
  }

  void execute() override {
    // r = b - A x (x starts at 0) ; p = r.
    for (std::size_t i = 0; i < rows_; ++i) {
      const double bi = b_.get(i);
      r_.set(i, bi);
      p_.set(i, bi);
    }
    double rho = dot(r_, r_);
    for (std::uint32_t it = 0; it < params_.iterations; ++it) {
      spmv(q_, p_);
      const double alpha = rho / dot(p_, q_);
      for (std::size_t i = 0; i < rows_; ++i) {
        x_.set(i, x_.get(i) + alpha * p_.get(i));
        r_.set(i, r_.get(i) - alpha * q_.get(i));
      }
      const double rho_next = dot(r_, r_);
      const double beta = rho_next / rho;
      rho = rho_next;
      for (std::size_t i = 0; i < rows_; ++i) {
        p_.set(i, r_.get(i) + beta * p_.get(i));
      }
    }
  }

  std::size_t rows_;
  Structure structure_;
  Array<std::uint32_t> rowptr_;
  Array<std::uint32_t> colidx_;
  Array<double> values_;
  Array<double> x_;
  Array<double> r_;
  Array<double> p_;
  Array<double> q_;
  Array<double> b_;
};

}  // namespace

std::unique_ptr<Workload> make_cg(const WorkloadParams& params) {
  return std::make_unique<CgWorkload>(params);
}

}  // namespace hms::workloads
