#include "hms/workloads/virtual_address_space.hpp"

#include "hms/common/bitops.hpp"
#include "hms/common/error.hpp"

namespace hms::workloads {

VirtualAddressSpace::VirtualAddressSpace(Address base, std::uint64_t alignment)
    : base_(base), next_(base), alignment_(alignment) {
  check_config(is_pow2(alignment), "VAS: alignment must be a power of two");
  check_config(base % alignment == 0, "VAS: base must be aligned");
}

Address VirtualAddressSpace::allocate(std::string name, std::uint64_t bytes) {
  check(bytes > 0, "VAS: zero-size allocation");
  check(!has_range(name), "VAS: duplicate range name: " + name);
  const Address range_base = next_;
  next_ = align_up(next_ + bytes, alignment_);
  total_ += bytes;
  ranges_.push_back(AddressRange{std::move(name), range_base, bytes});
  return range_base;
}

const AddressRange& VirtualAddressSpace::range(std::string_view name) const {
  for (const auto& r : ranges_) {
    if (r.name == name) return r;
  }
  throw Error("VAS: no such range: " + std::string(name));
}

bool VirtualAddressSpace::has_range(std::string_view name) const noexcept {
  for (const auto& r : ranges_) {
    if (r.name == name) return true;
  }
  return false;
}

const AddressRange* VirtualAddressSpace::find(Address a) const noexcept {
  for (const auto& r : ranges_) {
    if (r.contains(a)) return &r;
  }
  return nullptr;
}

}  // namespace hms::workloads
