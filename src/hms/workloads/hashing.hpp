// Hashing: CORAL Hash benchmark analog.
//
// Open-addressing (linear probing) hash table of 64-bit keys exercised by
// an insert phase and a mixed hit/miss lookup phase — the data-centric
// integer-hashing pattern the paper uses for "memory-intensive genomics
// applications" (inputs "-m 30M -n 50K").
#pragma once

#include <memory>

#include "hms/workloads/workload.hpp"

namespace hms::workloads {

[[nodiscard]] std::unique_ptr<Workload> make_hashing(
    const WorkloadParams& params);

}  // namespace hms::workloads
