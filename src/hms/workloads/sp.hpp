// SP: NPB Scalar-Pentadiagonal solver analog.
//
// Like BT but each line solves a pentadiagonal system (two sub- and two
// super-diagonals), the distinguishing structure of NPB SP. Appears in the
// paper's NDM per-workload results (Figs. 7-8).
#pragma once

#include <memory>

#include "hms/workloads/workload.hpp"

namespace hms::workloads {

[[nodiscard]] std::unique_ptr<Workload> make_sp(const WorkloadParams& params);

}  // namespace hms::workloads
