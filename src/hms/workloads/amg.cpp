#include "hms/workloads/amg.hpp"

#include <cmath>
#include <cstddef>
#include <memory>
#include <vector>

#include "hms/common/error.hpp"
#include "hms/workloads/workload_base.hpp"

namespace hms::workloads {

namespace {

// Doubles per fine cell across the level hierarchy: x, b, r per level with
// level sizes n^3 * (1 + 1/8 + 1/64 + ...) ~ 8/7 n^3; ~3 * 8/7 ~ 3.43
// arrays of 8 bytes.
constexpr double kBytesPerFineCell = 3.0 * 8.0 * 8.0 / 7.0;

struct Level {
  std::size_t n = 0;  ///< grid side
  std::unique_ptr<Array<double>> x;
  std::unique_ptr<Array<double>> b;
  std::unique_ptr<Array<double>> r;
};

class AmgWorkload final : public WorkloadBase {
 public:
  explicit AmgWorkload(const WorkloadParams& params)
      : WorkloadBase(
            WorkloadInfo{
                .name = "AMG2013",
                .suite = "CORAL",
                .inputs = "-r 72 72 72 -P 1 1 1 -pooldist 1",
                .paper_footprint_bytes = 3072ull << 20,  // 3 GB
                .paper_reference_seconds = 156.3,
                .memory_bound_fraction = 0.60,
            },
            params) {
    std::size_t n = fine_side(params.footprint_bytes);
    int level_id = 0;
    while (n >= 4) {
      Level level;
      level.n = n;
      const std::size_t cells = n * n * n;
      const std::string tag = "L" + std::to_string(level_id);
      level.x = std::make_unique<Array<double>>(vas_, sink_, tag + "_x",
                                                cells, 0.0);
      level.b = std::make_unique<Array<double>>(vas_, sink_, tag + "_b",
                                                cells, 0.0);
      level.r = std::make_unique<Array<double>>(vas_, sink_, tag + "_r",
                                                cells, 0.0);
      levels_.push_back(std::move(level));
      n /= 2;
      ++level_id;
    }
    check(!levels_.empty(), "AMG: footprint too small for a 4^3 grid");
    // Smooth RHS on the finest level (uninstrumented setup).
    Level& fine = levels_.front();
    for (std::size_t idx = 0; idx < fine.n * fine.n * fine.n; ++idx) {
      fine.b->raw(idx) = std::sin(0.013 * static_cast<double>(idx));
    }
  }

  [[nodiscard]] static std::size_t fine_side(std::uint64_t footprint) {
    const double cells = static_cast<double>(footprint) / kBytesPerFineCell;
    const auto side = static_cast<std::size_t>(std::cbrt(cells));
    check(side >= 8, "AMG: footprint too small for an 8^3 fine grid");
    return side;
  }

  [[nodiscard]] std::size_t levels() const noexcept { return levels_.size(); }
  [[nodiscard]] std::size_t fine_grid() const noexcept {
    return levels_.front().n;
  }

  /// A V-cycle on the Poisson-like system must reduce the fine residual
  /// below the initial ||b||.
  [[nodiscard]] bool validate() const override {
    const Level& f = levels_.front();
    double b_norm = 0.0;
    for (std::size_t i = 0; i < f.n * f.n * f.n; ++i) {
      b_norm += f.b->raw(i) * f.b->raw(i);
    }
    const double r = residual_norm();
    return std::isfinite(r) && r < 0.9 * std::sqrt(b_norm);
  }

  /// Un-instrumented fine-level residual norm ||b - A x||.
  [[nodiscard]] double residual_norm() const {
    const Level& f = levels_.front();
    const std::size_t n = f.n;
    double sum = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t i = 0; i < n; ++i) {
          const double res = raw_residual_at(f, i, j, k);
          sum += res * res;
        }
      }
    }
    return std::sqrt(sum);
  }

 private:
  static std::size_t cell(std::size_t n, std::size_t i, std::size_t j,
                          std::size_t k) noexcept {
    return (k * n + j) * n + i;
  }

  /// 7-point Laplacian-like operator: A x = 6x - sum(neighbors), Dirichlet
  /// zero boundary (out-of-grid neighbours read as 0).
  [[nodiscard]] double raw_residual_at(const Level& l, std::size_t i,
                                       std::size_t j, std::size_t k) const {
    const std::size_t n = l.n;
    auto at = [&](std::size_t ii, std::size_t jj, std::size_t kk) {
      return l.x->raw(cell(n, ii, jj, kk));
    };
    double nb = 0.0;
    if (i > 0) nb += at(i - 1, j, k);
    if (i + 1 < n) nb += at(i + 1, j, k);
    if (j > 0) nb += at(i, j - 1, k);
    if (j + 1 < n) nb += at(i, j + 1, k);
    if (k > 0) nb += at(i, j, k - 1);
    if (k + 1 < n) nb += at(i, j, k + 1);
    return l.b->raw(cell(n, i, j, k)) - (6.0 * at(i, j, k) - nb);
  }

  /// Instrumented neighbour sum with zero boundary.
  [[nodiscard]] double neighbor_sum(Level& l, std::size_t i, std::size_t j,
                                    std::size_t k) {
    const std::size_t n = l.n;
    double nb = 0.0;
    if (i > 0) nb += l.x->get(cell(n, i - 1, j, k));
    if (i + 1 < n) nb += l.x->get(cell(n, i + 1, j, k));
    if (j > 0) nb += l.x->get(cell(n, i, j - 1, k));
    if (j + 1 < n) nb += l.x->get(cell(n, i, j + 1, k));
    if (k > 0) nb += l.x->get(cell(n, i, j, k - 1));
    if (k + 1 < n) nb += l.x->get(cell(n, i, j, k + 1));
    return nb;
  }

  void smooth(Level& l, int sweeps) {
    constexpr double kOmega = 0.8;
    const std::size_t n = l.n;
    for (int s = 0; s < sweeps; ++s) {
      for (std::size_t k = 0; k < n; ++k) {
        for (std::size_t j = 0; j < n; ++j) {
          for (std::size_t i = 0; i < n; ++i) {
            const std::size_t c = cell(n, i, j, k);
            const double nb = neighbor_sum(l, i, j, k);
            const double xi = l.x->get(c);
            const double res = l.b->get(c) - (6.0 * xi - nb);
            l.x->set(c, xi + kOmega * res / 6.0);
          }
        }
      }
    }
  }

  void compute_residual(Level& l) {
    const std::size_t n = l.n;
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t i = 0; i < n; ++i) {
          const std::size_t c = cell(n, i, j, k);
          const double nb = neighbor_sum(l, i, j, k);
          l.r->set(c, l.b->get(c) - (6.0 * l.x->get(c) - nb));
        }
      }
    }
  }

  /// Restriction: coarse b = average of the 2^3 fine children residuals.
  void restrict_residual(Level& fine, Level& coarse) {
    const std::size_t nc = coarse.n;
    const std::size_t nf = fine.n;
    for (std::size_t k = 0; k < nc; ++k) {
      for (std::size_t j = 0; j < nc; ++j) {
        for (std::size_t i = 0; i < nc; ++i) {
          double acc = 0.0;
          for (std::size_t dk = 0; dk < 2; ++dk) {
            for (std::size_t dj = 0; dj < 2; ++dj) {
              for (std::size_t di = 0; di < 2; ++di) {
                acc += fine.r->get(
                    cell(nf, 2 * i + di, 2 * j + dj, 2 * k + dk));
              }
            }
          }
          coarse.b->set(cell(nc, i, j, k), acc / 8.0);
          coarse.x->set(cell(nc, i, j, k), 0.0);
        }
      }
    }
  }

  /// Prolongation: add the coarse correction to each of its fine children.
  void prolong(Level& coarse, Level& fine) {
    const std::size_t nc = coarse.n;
    const std::size_t nf = fine.n;
    for (std::size_t k = 0; k < nc; ++k) {
      for (std::size_t j = 0; j < nc; ++j) {
        for (std::size_t i = 0; i < nc; ++i) {
          const double corr = coarse.x->get(cell(nc, i, j, k));
          for (std::size_t dk = 0; dk < 2; ++dk) {
            for (std::size_t dj = 0; dj < 2; ++dj) {
              for (std::size_t di = 0; di < 2; ++di) {
                const std::size_t f =
                    cell(nf, 2 * i + di, 2 * j + dj, 2 * k + dk);
                fine.x->set(f, fine.x->get(f) + corr);
              }
            }
          }
        }
      }
    }
  }

  void vcycle(std::size_t depth) {
    Level& l = levels_[depth];
    if (depth + 1 == levels_.size()) {
      smooth(l, 8);  // coarsest-level solve
      return;
    }
    smooth(l, 2);  // pre-smooth
    compute_residual(l);
    restrict_residual(l, levels_[depth + 1]);
    vcycle(depth + 1);
    prolong(levels_[depth + 1], l);
    smooth(l, 2);  // post-smooth
  }

  void execute() override {
    for (std::uint32_t it = 0; it < params_.iterations; ++it) {
      vcycle(0);
    }
  }

  std::vector<Level> levels_;
};

}  // namespace

std::unique_ptr<Workload> make_amg(const WorkloadParams& params) {
  return std::make_unique<AmgWorkload>(params);
}

}  // namespace hms::workloads
