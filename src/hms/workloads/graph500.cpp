#include "hms/workloads/graph500.hpp"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "hms/common/bitops.hpp"
#include "hms/common/error.hpp"
#include "hms/workloads/workload_base.hpp"

namespace hms::workloads {

namespace {

constexpr std::size_t kEdgeFactor = 8;  // edges per vertex
// Bytes per vertex: xadj 8 + adjacency 2*ef*4 (both directions, 32-bit
// vertex ids) + parent 4 + queue 4.
constexpr std::size_t kBytesPerVertex = 8 + 2 * kEdgeFactor * 4 + 4 + 4;

class Graph500Workload final : public WorkloadBase {
 public:
  explicit Graph500Workload(const WorkloadParams& params)
      : WorkloadBase(
            WorkloadInfo{
                .name = "Graph500",
                .suite = "CORAL",
                .inputs = "-s 22 -e 4",
                .paper_footprint_bytes = 4096ull << 20,  // 4 GB
                .paper_reference_seconds = 157.0,
                .memory_bound_fraction = 0.70,
            },
            params),
        scale_(pick_scale(params.footprint_bytes)),
        vertices_(std::size_t{1} << scale_),
        edges_(build_edges()),
        xadj_(vas_, sink_, "xadj", vertices_ + 1, 0),
        adjacency_(vas_, sink_, "adjacency", 2 * edges_.size(), 0),
        parent_(vas_, sink_, "parent", vertices_, kNoParent),
        queue_(vas_, sink_, "queue", vertices_, 0) {}

  static constexpr std::uint32_t kNoParent = 0xffffffffu;

  /// Largest scale whose 2^scale vertices fit the footprint.
  [[nodiscard]] static unsigned pick_scale(std::uint64_t footprint) {
    check(footprint >= 16 * kBytesPerVertex,
          "Graph500: footprint too small");
    unsigned s = 4;
    while ((std::uint64_t{1} << (s + 1)) * kBytesPerVertex <= footprint) {
      ++s;
    }
    return s;
  }

  [[nodiscard]] unsigned scale() const noexcept { return scale_; }
  [[nodiscard]] std::size_t vertex_count() const noexcept {
    return vertices_;
  }
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return edges_.size();
  }

  /// Un-instrumented: number of vertices reached in the last BFS.
  [[nodiscard]] std::size_t last_bfs_visited() const noexcept {
    return last_visited_;
  }

  /// Un-instrumented parent-array validity: every visited vertex other
  /// than the root must have a visited parent connected by an edge.
  [[nodiscard]] bool validate_bfs_tree() const;

  [[nodiscard]] bool validate() const override {
    return last_visited_ > 1 && validate_bfs_tree();
  }

 private:
  struct Edge {
    std::uint32_t u, v;
  };

  /// R-MAT sampling with the Graph500 reference probabilities, followed by
  /// degree-descending vertex relabelling. Relabelling is the standard
  /// Graph500 locality optimization: the Kronecker hubs that dominate BFS
  /// traffic land on the lowest vertex ids, clustering the hot portions of
  /// xadj/parent into a few pages.
  [[nodiscard]] std::vector<Edge> build_edges() {
    constexpr double kA = 0.57, kB = 0.19, kC = 0.19;
    const std::size_t count = vertices_ * kEdgeFactor;
    std::vector<Edge> edges;
    edges.reserve(count);
    for (std::size_t e = 0; e < count; ++e) {
      std::uint32_t u = 0, v = 0;
      for (unsigned bit = 0; bit < scale_; ++bit) {
        const double p = rng_.uniform01();
        unsigned du = 0, dv = 0;
        if (p < kA) {
        } else if (p < kA + kB) {
          dv = 1;
        } else if (p < kA + kB + kC) {
          du = 1;
        } else {
          du = 1;
          dv = 1;
        }
        u = (u << 1) | du;
        v = (v << 1) | dv;
      }
      if (u == v) continue;  // drop self-loops like the reference code
      edges.push_back(Edge{u, v});
    }
    relabel_by_degree(edges);
    return edges;
  }

  /// Renames vertices so id order is descending degree (uninstrumented:
  /// part of graph generation, not a timed kernel).
  void relabel_by_degree(std::vector<Edge>& edges) const {
    std::vector<std::uint32_t> degree(vertices_, 0);
    for (const Edge& e : edges) {
      ++degree[e.u];
      ++degree[e.v];
    }
    std::vector<std::uint32_t> order(vertices_);
    for (std::size_t v = 0; v < vertices_; ++v) {
      order[v] = static_cast<std::uint32_t>(v);
    }
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return degree[a] > degree[b];
              });
    std::vector<std::uint32_t> rename(vertices_);
    for (std::size_t rank = 0; rank < vertices_; ++rank) {
      rename[order[rank]] = static_cast<std::uint32_t>(rank);
    }
    for (Edge& e : edges) {
      e.u = rename[e.u];
      e.v = rename[e.v];
    }
  }

  /// Kernel 1: CSR construction (instrumented counting sort).
  void build_csr() {
    // Degree counting: read-modify-write per endpoint.
    for (const Edge& e : edges_) {
      xadj_.update(e.u + 1, [](std::uint64_t d) { return d + 1; });
      xadj_.update(e.v + 1, [](std::uint64_t d) { return d + 1; });
    }
    // Prefix sum.
    std::uint64_t run = 0;
    for (std::size_t i = 0; i <= vertices_; ++i) {
      run += xadj_.get(i);
      xadj_.set(i, run);
    }
    // Scatter via two source-sorted passes (the counting-sort construction
    // real implementations use): each pass writes the adjacency array in
    // ascending order, so kernel 1's stores are near-sequential. The edge
    // list itself lives outside the simulated address space (generator
    // state), matching the paper's per-core footprint accounting.
    std::vector<std::uint64_t> cursor(vertices_);
    for (std::size_t i = 0; i < vertices_; ++i) {
      cursor[i] = xadj_.raw(i);
    }
    std::vector<Edge> sorted = edges_;
    std::sort(sorted.begin(), sorted.end(),
              [](const Edge& a, const Edge& b) { return a.u < b.u; });
    for (const Edge& e : sorted) {
      adjacency_.set(static_cast<std::size_t>(cursor[e.u]++), e.v);
    }
    std::sort(sorted.begin(), sorted.end(),
              [](const Edge& a, const Edge& b) { return a.v < b.v; });
    for (const Edge& e : sorted) {
      adjacency_.set(static_cast<std::size_t>(cursor[e.v]++), e.u);
    }
  }

  /// Kernel 2: top-down BFS from `root`.
  void bfs(std::uint32_t root) {
    // Reset parents (instrumented sweep, as in the reference timed region).
    for (std::size_t i = 0; i < vertices_; ++i) {
      parent_.set(i, kNoParent);
    }
    std::size_t head = 0, tail = 0;
    parent_.set(root, root);
    queue_.set(tail++, root);
    while (head < tail) {
      const std::uint32_t u = queue_.get(head++);
      const std::uint64_t begin = xadj_.get(u);
      const std::uint64_t end = xadj_.get(u + 1);
      for (std::uint64_t e = begin; e < end; ++e) {
        const std::uint32_t v =
            adjacency_.get(static_cast<std::size_t>(e));
        if (parent_.get(v) == kNoParent) {
          parent_.set(v, u);
          queue_.set(tail++, v);
        }
      }
    }
    last_visited_ = tail;
  }

  void execute() override {
    build_csr();  // kernel 1, instrumented
    for (std::uint32_t it = 0; it < params_.iterations; ++it) {
      // Random roots with nonzero degree, like the reference harness.
      std::uint32_t root;
      do {
        root = static_cast<std::uint32_t>(rng_.below(vertices_));
      } while (xadj_.raw(root + 1) == xadj_.raw(root));
      bfs(root);
    }
  }

  unsigned scale_;
  std::size_t vertices_;
  std::vector<Edge> edges_;
  Array<std::uint64_t> xadj_;
  Array<std::uint32_t> adjacency_;
  Array<std::uint32_t> parent_;
  Array<std::uint32_t> queue_;
  std::size_t last_visited_ = 0;
};

bool Graph500Workload::validate_bfs_tree() const {
  if (last_visited_ == 0) return true;
  for (std::size_t v = 0; v < vertices_; ++v) {
    const std::uint32_t p = parent_.raw(v);
    if (p == kNoParent || p == v) continue;
    // p must be adjacent to v.
    bool adjacent = false;
    for (std::uint64_t e = xadj_.raw(v); e < xadj_.raw(v + 1); ++e) {
      if (adjacency_.raw(static_cast<std::size_t>(e)) == p) {
        adjacent = true;
        break;
      }
    }
    if (!adjacent) return false;
    if (parent_.raw(p) == kNoParent) return false;
  }
  return true;
}

}  // namespace

std::unique_ptr<Workload> make_graph500(const WorkloadParams& params) {
  return std::make_unique<Graph500Workload>(params);
}

}  // namespace hms::workloads
