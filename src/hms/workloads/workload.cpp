#include "hms/workloads/workload_base.hpp"

#include "hms/common/error.hpp"
#include "hms/common/fault.hpp"

namespace hms::workloads {

void WorkloadBase::run(trace::AccessSink& sink) {
  check(!ran_, "Workload::run: kernels are one-shot; construct a fresh "
               "instance (same seed reproduces the same stream)");
  HMS_FAULT_POINT("workload/run");
  ran_ = true;
  sink_.bind(sink);
  try {
    execute();
  } catch (...) {
    sink_.unbind();
    throw;
  }
  sink_.unbind();
}

}  // namespace hms::workloads
