#include "hms/designs/partition.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "hms/common/error.hpp"

namespace hms::designs {

RangeProfiler::RangeProfiler(const workloads::VirtualAddressSpace& vas)
    : RangeProfiler(vas.ranges()) {}

RangeProfiler::RangeProfiler(std::vector<workloads::AddressRange> ranges) {
  usages_.reserve(ranges.size());
  for (auto& r : ranges) {
    usages_.push_back(RangeUsage{std::move(r), 0, 0});
  }
  std::sort(usages_.begin(), usages_.end(),
            [](const RangeUsage& a, const RangeUsage& b) {
              return a.range.base < b.range.base;
            });
}

void RangeProfiler::access(const trace::MemoryAccess& a) {
  // Binary search over the sorted, non-overlapping ranges.
  auto it = std::upper_bound(
      usages_.begin(), usages_.end(), a.address,
      [](Address addr, const RangeUsage& u) { return addr < u.range.base; });
  if (it == usages_.begin()) {
    ++unmatched_;
    return;
  }
  --it;
  if (!it->range.contains(a.address)) {
    ++unmatched_;
    return;
  }
  if (a.type == AccessType::Store) {
    ++it->stores;
  } else {
    ++it->loads;
  }
}

std::vector<RangeUsage> merge_ranges(std::vector<RangeUsage> usages,
                                     std::size_t max_candidates) {
  check(max_candidates >= 1, "merge_ranges: need at least one candidate");
  std::sort(usages.begin(), usages.end(),
            [](const RangeUsage& a, const RangeUsage& b) {
              return a.range.base < b.range.base;
            });
  while (usages.size() > max_candidates) {
    // Find the adjacent pair with the most similar density (log-space so a
    // 2x difference counts the same at any magnitude).
    std::size_t best = 0;
    double best_score = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i + 1 < usages.size(); ++i) {
      const double da = usages[i].density() + 1.0;
      const double db = usages[i + 1].density() + 1.0;
      const double score = std::abs(std::log(da) - std::log(db));
      if (score < best_score) {
        best_score = score;
        best = i;
      }
    }
    RangeUsage& a = usages[best];
    const RangeUsage& b = usages[best + 1];
    a.range.name += "+" + b.range.name;
    a.range.length = (b.range.base + b.range.length) - a.range.base;
    a.loads += b.loads;
    a.stores += b.stores;
    usages.erase(usages.begin() + static_cast<std::ptrdiff_t>(best) + 1);
  }
  return usages;
}

namespace {

Placement subset_placement(const std::vector<RangeUsage>& candidates,
                           std::uint32_t mask, Count total_refs,
                           std::uint64_t total_bytes) {
  Placement p;
  Count nvm_refs = 0;
  std::uint64_t nvm_bytes = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if ((mask & (1u << i)) == 0) continue;
    const auto& c = candidates[i];
    if (!p.name.empty()) p.name += ", ";
    p.name += c.range.name;
    p.nvm_rules.push_back(
        cache::AddressRangeRule{c.range.base, c.range.length, 1});
    nvm_refs += c.total();
    nvm_bytes += c.range.length;
  }
  p.name = p.name.empty() ? "all-DRAM" : p.name + " -> NVM";
  p.nvm_reference_fraction =
      total_refs ? static_cast<double>(nvm_refs) /
                       static_cast<double>(total_refs)
                 : 0.0;
  p.dram_bytes = total_bytes - nvm_bytes;
  return p;
}

}  // namespace

std::vector<Placement> enumerate_placements(
    const std::vector<RangeUsage>& candidates) {
  Count total_refs = 0;
  std::uint64_t total_bytes = 0;
  for (const auto& c : candidates) {
    total_refs += c.total();
    total_bytes += c.range.length;
  }
  std::vector<Placement> placements;
  placements.push_back(
      subset_placement(candidates, 0, total_refs, total_bytes));
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    placements.push_back(subset_placement(
        candidates, std::uint32_t{1} << i, total_refs, total_bytes));
  }
  return placements;
}

std::vector<Placement> enumerate_subset_placements(
    const std::vector<RangeUsage>& candidates,
    std::uint64_t dram_capacity_bytes) {
  check(candidates.size() <= 16,
        "enumerate_subset_placements: too many candidates");
  Count total_refs = 0;
  std::uint64_t total_bytes = 0;
  for (const auto& c : candidates) {
    total_refs += c.total();
    total_bytes += c.range.length;
  }
  std::vector<Placement> placements;
  const std::uint32_t subsets = 1u << candidates.size();
  placements.reserve(subsets);
  for (std::uint32_t mask = 0; mask < subsets; ++mask) {
    Placement p =
        subset_placement(candidates, mask, total_refs, total_bytes);
    p.feasible = p.dram_bytes <= dram_capacity_bytes;
    placements.push_back(std::move(p));
  }
  return placements;
}

}  // namespace hms::designs
