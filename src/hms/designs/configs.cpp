#include "hms/designs/configs.hpp"

#include "hms/common/error.hpp"
#include "hms/common/string_util.hpp"

namespace hms::designs {

namespace {
constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = 1024 * 1024;
}  // namespace

const std::vector<EhConfig>& eh_configs() {
  static const std::vector<EhConfig> table = {
      {"EH1", 16 * kMiB, 64},   {"EH2", 16 * kMiB, 128},
      {"EH3", 16 * kMiB, 256},  {"EH4", 16 * kMiB, 512},
      {"EH5", 16 * kMiB, 1024}, {"EH6", 16 * kMiB, 2048},
      {"EH7", 8 * kMiB, 2048},  {"EH8", 4 * kMiB, 2048},
  };
  return table;
}

const EhConfig& eh_config(std::string_view name) {
  for (const auto& cfg : eh_configs()) {
    if (iequals(cfg.name, name)) return cfg;
  }
  throw Error("unknown EH config: " + std::string(name));
}

const std::vector<NConfig>& n_configs() {
  static const std::vector<NConfig> table = {
      {"N1", 128 * kMiB, 4 * kKiB}, {"N2", 256 * kMiB, 4 * kKiB},
      {"N3", 512 * kMiB, 4 * kKiB}, {"N4", 512 * kMiB, 2 * kKiB},
      {"N5", 512 * kMiB, 1 * kKiB}, {"N6", 512 * kMiB, 512},
      {"N7", 512 * kMiB, 256},      {"N8", 512 * kMiB, 128},
      {"N9", 512 * kMiB, 64},
  };
  return table;
}

const NConfig& n_config(std::string_view name) {
  for (const auto& cfg : n_configs()) {
    if (iequals(cfg.name, name)) return cfg;
  }
  throw Error("unknown N config: " + std::string(name));
}

}  // namespace hms::designs
