// The paper's configuration tables: the Sandy Bridge reference caches, the
// eDRAM/HMC L4 configurations (Table 2, EH1-EH8), and the NMM DRAM-cache
// configurations (Table 3, N1-N9).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hms::designs {

/// Table 2: L4 (eDRAM or HMC) capacity and page size, per core.
/// The printed table repeats the "8 MB / 2048 B" row for EH7 and EH8; we
/// keep EH7 as printed and read EH8 as the next halving (4 MB / 2048 B),
/// documented in DESIGN.md.
struct EhConfig {
  std::string name;
  std::uint64_t l4_capacity_bytes;
  std::uint64_t page_bytes;
};

[[nodiscard]] const std::vector<EhConfig>& eh_configs();
[[nodiscard]] const EhConfig& eh_config(std::string_view name);

/// Table 3: NMM DRAM-cache capacity and page size, per core.
struct NConfig {
  std::string name;
  std::uint64_t dram_capacity_bytes;
  std::uint64_t page_bytes;
};

[[nodiscard]] const std::vector<NConfig>& n_configs();
[[nodiscard]] const NConfig& n_config(std::string_view name);

/// Reference (Sandy Bridge) cache geometry, paper Section III.A.
struct ReferenceCaches {
  std::uint64_t line_bytes = 64;
  std::uint64_t l1_capacity = 32ull << 10;
  std::uint32_t l1_ways = 8;
  std::uint64_t l2_capacity = 256ull << 10;
  std::uint32_t l2_ways = 8;
  std::uint64_t l3_capacity = 20ull << 20;
  std::uint32_t l3_ways = 20;
};

/// NDM design: fixed 512 MB DRAM partition (paper Section IV.A).
inline constexpr std::uint64_t kNdmDramCapacity = 512ull << 20;

}  // namespace hms::designs
