// The NDM oracle partitioner (paper Section III.A / V).
//
// The paper identifies contiguous address ranges that account for the bulk
// of memory references, merges nearby ranges into 2-3 candidates, then
// "placed an address range to NVM at a time, and the rest to DRAM" and
// picked the best placement — an oracle static partition. Here the
// candidate ranges come from the workload's named VirtualAddressSpace
// allocations; profiling counts the *residual* (post-L3) traffic per range,
// because only traffic that reaches main memory is affected by placement.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hms/cache/partitioned_memory.hpp"
#include "hms/trace/sink.hpp"
#include "hms/workloads/virtual_address_space.hpp"

namespace hms::designs {

/// Residual main-memory traffic attributed to one address range.
struct RangeUsage {
  workloads::AddressRange range;
  Count loads = 0;
  Count stores = 0;

  [[nodiscard]] Count total() const noexcept { return loads + stores; }
  /// Accesses per KiB — the hot/cold metric used when merging.
  [[nodiscard]] double density() const noexcept {
    return range.length
               ? static_cast<double>(total()) * 1024.0 /
                     static_cast<double>(range.length)
               : 0.0;
  }
};

/// AccessSink that attributes a (residual) stream to the ranges of a
/// VirtualAddressSpace. Unmatched addresses are counted separately.
class RangeProfiler final : public trace::AccessSink {
 public:
  explicit RangeProfiler(const workloads::VirtualAddressSpace& vas);
  /// Profiles against an explicit (non-overlapping) range list.
  explicit RangeProfiler(std::vector<workloads::AddressRange> ranges);

  void access(const trace::MemoryAccess& a) override;

  [[nodiscard]] const std::vector<RangeUsage>& usages() const noexcept {
    return usages_;
  }
  [[nodiscard]] Count unmatched() const noexcept { return unmatched_; }

 private:
  std::vector<RangeUsage> usages_;  ///< sorted by range base
  Count unmatched_ = 0;
};

/// Merges adjacent ranges until at most `max_candidates` remain, always
/// merging the neighbouring pair with the most similar access density
/// (preserving the hot/cold split the NDM design exploits). The paper
/// "typically found 2 or 3 address ranges in each workload".
[[nodiscard]] std::vector<RangeUsage> merge_ranges(
    std::vector<RangeUsage> usages, std::size_t max_candidates = 3);

/// One oracle placement: the listed candidates live in NVM, the rest in
/// the (capacity-limited) DRAM partition.
struct Placement {
  std::string name;                          ///< e.g. "values+x -> NVM"
  std::vector<cache::AddressRangeRule> nvm_rules;
  /// Fraction of residual references the NVM side will absorb (from
  /// profiling; the oracle prefers placements that keep hot data in DRAM).
  double nvm_reference_fraction = 0.0;
  /// Bytes left on the DRAM side.
  std::uint64_t dram_bytes = 0;
  /// DRAM-side bytes fit the DRAM partition's capacity. The paper's NDM
  /// has a fixed 512 MB DRAM, so placements leaving more than that in
  /// DRAM are physically impossible.
  bool feasible = true;
};

/// Enumerates the paper's placements: one per candidate range (that range
/// in NVM, everything else DRAM). The first element is always the
/// all-DRAM placement (empty rule set) as a sanity anchor.
[[nodiscard]] std::vector<Placement> enumerate_placements(
    const std::vector<RangeUsage>& candidates);

/// Enumerates every subset of candidates as the NVM side (2^k placements,
/// k <= ~8) and marks feasibility against the DRAM partition capacity.
/// This is the capacity-constrained oracle: with footprints far beyond
/// the DRAM partition, the bulky ranges MUST live in NVM, which is what
/// produces the paper's 5-63 % NDM runtime overheads.
[[nodiscard]] std::vector<Placement> enumerate_subset_placements(
    const std::vector<RangeUsage>& candidates,
    std::uint64_t dram_capacity_bytes);

}  // namespace hms::designs
