#include "hms/designs/design.hpp"

#include "hms/cache/dynamic_partition.hpp"

#include <algorithm>

#include "hms/common/bitops.hpp"
#include "hms/common/error.hpp"

namespace hms::designs {

namespace {

/// Capacity of main-memory devices: footprint rounded up to a wear-line
/// multiple ("DRAM large enough to contain the memory footprint",
/// Section III.A).
constexpr std::uint64_t kDeviceLineBytes = 256;

}  // namespace

DesignFactory::DesignFactory(std::uint64_t scale_divisor,
                             const mem::TechnologyRegistry& registry,
                             const DesignOptions& options)
    : scale_(scale_divisor), registry_(registry), options_(options) {
  check_config(is_pow2(scale_divisor),
               "DesignFactory: scale divisor must be a power of two");
}

std::uint64_t DesignFactory::scaled(std::uint64_t capacity_bytes,
                                    std::uint64_t floor_bytes) const {
  return std::max(capacity_bytes / scale_, floor_bytes);
}

std::vector<cache::CacheLevelSpec> DesignFactory::front_levels() const {
  const std::uint64_t line = reference_.line_bytes;
  auto level = [&](std::string name, std::uint64_t capacity,
                   std::uint32_t ways, int sram_level_index) {
    cache::CacheLevelSpec spec;
    spec.cache.name = std::move(name);
    spec.cache.capacity_bytes = scaled(capacity, line * ways);
    spec.cache.modeled_capacity_bytes = capacity;
    spec.cache.line_bytes = line;
    spec.cache.associativity = ways;
    spec.cache.policy = cache::PolicyKind::LRU;
    spec.tech = mem::sram_level(sram_level_index).as_params();
    return spec;
  };
  return {
      level("L1", reference_.l1_capacity, reference_.l1_ways, 1),
      level("L2", reference_.l2_capacity, reference_.l2_ways, 2),
      level("L3", reference_.l3_capacity, reference_.l3_ways, 3),
  };
}

std::unique_ptr<cache::MemoryHierarchy> DesignFactory::front(
    trace::AccessSink& residual) const {
  return std::make_unique<cache::MemoryHierarchy>(
      front_levels(), std::make_unique<cache::CaptureBackend>(residual));
}

cache::CacheLevelSpec DesignFactory::l4_level(const EhConfig& cfg,
                                              mem::Technology l4_tech) const {
  cache::CacheLevelSpec spec;
  spec.cache.name = "L4-" + std::string(mem::to_string(l4_tech));
  spec.cache.capacity_bytes =
      scaled(cfg.l4_capacity_bytes, cfg.page_bytes * 16);
  spec.cache.modeled_capacity_bytes = cfg.l4_capacity_bytes;
  spec.cache.line_bytes = cfg.page_bytes;
  spec.cache.associativity = 16;
  spec.cache.policy = options_.l4_policy;
  spec.cache.sector_bytes = options_.sector_bytes;
  spec.tech = registry_.get(l4_tech);
  spec.prefetch = options_.l4_prefetch;
  return spec;
}

cache::CacheLevelSpec DesignFactory::dram_cache_level(
    const NConfig& cfg) const {
  cache::CacheLevelSpec spec;
  spec.cache.name = "DRAM$";
  spec.cache.capacity_bytes =
      scaled(cfg.dram_capacity_bytes, cfg.page_bytes * 16);
  spec.cache.modeled_capacity_bytes = cfg.dram_capacity_bytes;
  spec.cache.line_bytes = cfg.page_bytes;
  spec.cache.associativity = 16;
  spec.cache.policy = options_.l4_policy;
  spec.cache.sector_bytes = options_.sector_bytes;
  spec.tech = registry_.get(mem::Technology::DRAM);
  spec.prefetch = options_.l4_prefetch;
  return spec;
}

mem::MemoryDeviceConfig DesignFactory::dram_device(
    std::uint64_t capacity_bytes, std::string name) const {
  mem::MemoryDeviceConfig cfg;
  cfg.name = std::move(name);
  cfg.technology = registry_.get(mem::Technology::DRAM);
  cfg.capacity_bytes = align_up(std::max(capacity_bytes, kDeviceLineBytes),
                                kDeviceLineBytes);
  cfg.modeled_capacity_bytes = cfg.capacity_bytes * scale_;
  cfg.line_bytes = kDeviceLineBytes;
  return cfg;
}

mem::MemoryDeviceConfig DesignFactory::nvm_device(mem::Technology nvm_tech,
                                                  std::uint64_t capacity_bytes,
                                                  std::string name) const {
  mem::MemoryDeviceConfig cfg;
  cfg.name = std::move(name);
  cfg.technology = registry_.get(nvm_tech);
  cfg.capacity_bytes = align_up(std::max(capacity_bytes, kDeviceLineBytes),
                                kDeviceLineBytes);
  cfg.modeled_capacity_bytes = cfg.capacity_bytes * scale_;
  cfg.line_bytes = kDeviceLineBytes;
  cfg.track_endurance = options_.nvm_track_endurance;
  cfg.wear_leveling = options_.nvm_wear_leveling;
  cfg.gap_write_interval = options_.nvm_gap_write_interval;
  return cfg;
}

// -- Back halves ------------------------------------------------------------

std::unique_ptr<cache::MemoryHierarchy> DesignFactory::base_back(
    std::uint64_t footprint_bytes) const {
  return std::make_unique<cache::MemoryHierarchy>(
      std::vector<cache::CacheLevelSpec>{},
      std::make_unique<cache::SingleMemoryBackend>(
          dram_device(footprint_bytes, "DRAM")));
}

std::unique_ptr<cache::MemoryHierarchy> DesignFactory::four_level_cache_back(
    const EhConfig& cfg, mem::Technology l4_tech,
    std::uint64_t footprint_bytes) const {
  std::vector<cache::CacheLevelSpec> levels{l4_level(cfg, l4_tech)};
  return std::make_unique<cache::MemoryHierarchy>(
      std::move(levels), std::make_unique<cache::SingleMemoryBackend>(
                             dram_device(footprint_bytes, "DRAM")));
}

std::unique_ptr<cache::MemoryHierarchy> DesignFactory::nvm_main_memory_back(
    const NConfig& cfg, mem::Technology nvm_tech,
    std::uint64_t footprint_bytes) const {
  std::vector<cache::CacheLevelSpec> levels{dram_cache_level(cfg)};
  return std::make_unique<cache::MemoryHierarchy>(
      std::move(levels),
      std::make_unique<cache::SingleMemoryBackend>(nvm_device(
          nvm_tech, footprint_bytes,
          std::string(mem::to_string(nvm_tech)))));
}

std::unique_ptr<cache::MemoryHierarchy>
DesignFactory::four_level_cache_nvm_back(const EhConfig& cfg,
                                         mem::Technology l4_tech,
                                         mem::Technology nvm_tech,
                                         std::uint64_t footprint_bytes) const {
  std::vector<cache::CacheLevelSpec> levels{l4_level(cfg, l4_tech)};
  return std::make_unique<cache::MemoryHierarchy>(
      std::move(levels),
      std::make_unique<cache::SingleMemoryBackend>(nvm_device(
          nvm_tech, footprint_bytes,
          std::string(mem::to_string(nvm_tech)))));
}

std::unique_ptr<cache::MemoryHierarchy> DesignFactory::nvm_plus_dram_back(
    mem::Technology nvm_tech, std::vector<cache::AddressRangeRule> nvm_rules,
    std::uint64_t footprint_bytes,
    std::uint64_t dram_capacity_bytes) const {
  for (auto& rule : nvm_rules) rule.device_index = 1;
  std::vector<mem::MemoryDeviceConfig> devices;
  devices.push_back(
      dram_device(scaled(dram_capacity_bytes, kDeviceLineBytes), "DRAM"));
  devices.push_back(nvm_device(nvm_tech, footprint_bytes,
                               std::string(mem::to_string(nvm_tech))));
  return std::make_unique<cache::MemoryHierarchy>(
      std::vector<cache::CacheLevelSpec>{},
      std::make_unique<cache::PartitionedMemoryBackend>(
          std::move(devices), std::move(nvm_rules), /*default_device=*/0));
}

std::unique_ptr<cache::MemoryHierarchy>
DesignFactory::nvm_plus_dram_dynamic_back(
    mem::Technology nvm_tech, std::uint64_t footprint_bytes,
    std::uint64_t dram_capacity_bytes, std::uint64_t region_bytes,
    std::uint64_t epoch_accesses) const {
  cache::DynamicPartitionConfig cfg;
  cfg.dram = dram_device(scaled(dram_capacity_bytes, kDeviceLineBytes),
                         "DRAM");
  cfg.nvm = nvm_device(nvm_tech, footprint_bytes,
                       std::string(mem::to_string(nvm_tech)));
  cfg.region_bytes = std::max<std::uint64_t>(region_bytes / scale_, 4096);
  cfg.epoch_accesses = epoch_accesses;
  return std::make_unique<cache::MemoryHierarchy>(
      std::vector<cache::CacheLevelSpec>{},
      std::make_unique<cache::DynamicPartitionBackend>(std::move(cfg)));
}

// -- Complete hierarchies -----------------------------------------------------

std::unique_ptr<cache::MemoryHierarchy> DesignFactory::base(
    std::uint64_t footprint_bytes) const {
  return std::make_unique<cache::MemoryHierarchy>(
      front_levels(), std::make_unique<cache::SingleMemoryBackend>(
                          dram_device(footprint_bytes, "DRAM")));
}

std::unique_ptr<cache::MemoryHierarchy> DesignFactory::four_level_cache(
    const EhConfig& cfg, mem::Technology l4_tech,
    std::uint64_t footprint_bytes) const {
  auto levels = front_levels();
  levels.push_back(l4_level(cfg, l4_tech));
  return std::make_unique<cache::MemoryHierarchy>(
      std::move(levels), std::make_unique<cache::SingleMemoryBackend>(
                             dram_device(footprint_bytes, "DRAM")));
}

std::unique_ptr<cache::MemoryHierarchy> DesignFactory::nvm_main_memory(
    const NConfig& cfg, mem::Technology nvm_tech,
    std::uint64_t footprint_bytes) const {
  auto levels = front_levels();
  levels.push_back(dram_cache_level(cfg));
  return std::make_unique<cache::MemoryHierarchy>(
      std::move(levels),
      std::make_unique<cache::SingleMemoryBackend>(nvm_device(
          nvm_tech, footprint_bytes,
          std::string(mem::to_string(nvm_tech)))));
}

std::unique_ptr<cache::MemoryHierarchy> DesignFactory::four_level_cache_nvm(
    const EhConfig& cfg, mem::Technology l4_tech, mem::Technology nvm_tech,
    std::uint64_t footprint_bytes) const {
  auto levels = front_levels();
  levels.push_back(l4_level(cfg, l4_tech));
  return std::make_unique<cache::MemoryHierarchy>(
      std::move(levels),
      std::make_unique<cache::SingleMemoryBackend>(nvm_device(
          nvm_tech, footprint_bytes,
          std::string(mem::to_string(nvm_tech)))));
}

std::unique_ptr<cache::MemoryHierarchy> DesignFactory::nvm_plus_dram(
    mem::Technology nvm_tech, std::vector<cache::AddressRangeRule> nvm_rules,
    std::uint64_t footprint_bytes, std::uint64_t dram_capacity_bytes) const {
  for (auto& rule : nvm_rules) rule.device_index = 1;
  std::vector<mem::MemoryDeviceConfig> devices;
  devices.push_back(
      dram_device(scaled(dram_capacity_bytes, kDeviceLineBytes), "DRAM"));
  devices.push_back(nvm_device(nvm_tech, footprint_bytes,
                               std::string(mem::to_string(nvm_tech))));
  return std::make_unique<cache::MemoryHierarchy>(
      front_levels(), std::make_unique<cache::PartitionedMemoryBackend>(
                          std::move(devices), std::move(nvm_rules),
                          /*default_device=*/0));
}

}  // namespace hms::designs
