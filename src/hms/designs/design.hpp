// DesignFactory: builds simulable MemoryHierarchy instances for the paper's
// four designs plus the reference system (Section III.A).
//
// Every design shares the fixed L1-L3 front. To exploit that, the factory
// can build the *front* (L1-L3 over a CaptureBackend) and the *back* of
// each design separately; the experiment runner simulates the front once
// per workload and replays the captured residual stream into each design's
// back (DESIGN.md §5).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hms/cache/hierarchy.hpp"
#include "hms/cache/partitioned_memory.hpp"
#include "hms/designs/configs.hpp"
#include "hms/mem/technology.hpp"
#include "hms/trace/sink.hpp"

namespace hms::designs {

/// Options that apply across designs (ablation knobs).
struct DesignOptions {
  cache::PolicyKind l4_policy = cache::PolicyKind::LRU;
  /// Hardware prefetcher on the L4/DRAM-cache level. Ablation A4.
  cache::PrefetcherConfig l4_prefetch;
  /// Sector size for L4/DRAM-cache dirty tracking; 0 = whole-page
  /// write-backs (the paper's model). Ablation A2.
  std::uint64_t sector_bytes = 0;
  /// Enable Start-Gap wear levelling on NVM devices. Ablation A3.
  bool nvm_wear_leveling = false;
  /// Track per-line NVM endurance (implied by wear levelling).
  bool nvm_track_endurance = false;
  /// Start-Gap gap-move interval (psi). 100 is the published sweet spot
  /// for multi-day horizons; short simulations need a smaller psi for the
  /// gap to complete rotations.
  std::uint64_t nvm_gap_write_interval = 100;
};

/// See file comment. `scale_divisor` shrinks every capacity (reference
/// caches, L4, DRAM caches, NDM DRAM, and the implied main-memory sizing)
/// by a power of two so scaled-down workload footprints exercise the same
/// miss-rate regimes as the paper's full-size runs (DESIGN.md
/// substitutions).
class DesignFactory {
 public:
  explicit DesignFactory(
      std::uint64_t scale_divisor = 1,
      const mem::TechnologyRegistry& registry =
          mem::TechnologyRegistry::table1(),
      const DesignOptions& options = {});

  [[nodiscard]] std::uint64_t scale_divisor() const noexcept {
    return scale_;
  }
  [[nodiscard]] const mem::TechnologyRegistry& registry() const noexcept {
    return registry_;
  }

  /// Scales a full-size capacity down (never below one line/page).
  [[nodiscard]] std::uint64_t scaled(std::uint64_t capacity_bytes,
                                     std::uint64_t floor_bytes) const;

  /// The shared L1/L2/L3 front levels.
  [[nodiscard]] std::vector<cache::CacheLevelSpec> front_levels() const;

  /// Front hierarchy: L1-L3 over a CaptureBackend feeding `residual`.
  [[nodiscard]] std::unique_ptr<cache::MemoryHierarchy> front(
      trace::AccessSink& residual) const;

  // -- Complete hierarchies (front + back), for direct use ---------------

  /// Reference system: L1-L3 + DRAM sized to the workload footprint.
  [[nodiscard]] std::unique_ptr<cache::MemoryHierarchy> base(
      std::uint64_t footprint_bytes) const;

  /// 4LC: L1-L3 + eDRAM/HMC L4 + DRAM.
  [[nodiscard]] std::unique_ptr<cache::MemoryHierarchy> four_level_cache(
      const EhConfig& cfg, mem::Technology l4_tech,
      std::uint64_t footprint_bytes) const;

  /// NMM: L1-L3 + DRAM page cache + NVM main memory.
  [[nodiscard]] std::unique_ptr<cache::MemoryHierarchy> nvm_main_memory(
      const NConfig& cfg, mem::Technology nvm_tech,
      std::uint64_t footprint_bytes) const;

  /// 4LCNVM: L1-L3 + eDRAM/HMC L4 + NVM main memory (no DRAM).
  [[nodiscard]] std::unique_ptr<cache::MemoryHierarchy> four_level_cache_nvm(
      const EhConfig& cfg, mem::Technology l4_tech, mem::Technology nvm_tech,
      std::uint64_t footprint_bytes) const;

  /// NDM: L1-L3 + partitioned DRAM/NVM main memory. `nvm_rules` routes
  /// ranges to the NVM device (index 1); everything else goes to DRAM
  /// (index 0). `dram_capacity_bytes` is the *unscaled* DRAM partition
  /// size (default: the paper's 512 MB).
  [[nodiscard]] std::unique_ptr<cache::MemoryHierarchy> nvm_plus_dram(
      mem::Technology nvm_tech, std::vector<cache::AddressRangeRule> nvm_rules,
      std::uint64_t footprint_bytes,
      std::uint64_t dram_capacity_bytes = kNdmDramCapacity) const;

  // -- Back halves (no L1-L3), for residual-stream replay ----------------

  [[nodiscard]] std::unique_ptr<cache::MemoryHierarchy> base_back(
      std::uint64_t footprint_bytes) const;
  [[nodiscard]] std::unique_ptr<cache::MemoryHierarchy>
  four_level_cache_back(const EhConfig& cfg, mem::Technology l4_tech,
                        std::uint64_t footprint_bytes) const;
  [[nodiscard]] std::unique_ptr<cache::MemoryHierarchy> nvm_main_memory_back(
      const NConfig& cfg, mem::Technology nvm_tech,
      std::uint64_t footprint_bytes) const;
  [[nodiscard]] std::unique_ptr<cache::MemoryHierarchy>
  four_level_cache_nvm_back(const EhConfig& cfg, mem::Technology l4_tech,
                            mem::Technology nvm_tech,
                            std::uint64_t footprint_bytes) const;
  [[nodiscard]] std::unique_ptr<cache::MemoryHierarchy> nvm_plus_dram_back(
      mem::Technology nvm_tech, std::vector<cache::AddressRangeRule> nvm_rules,
      std::uint64_t footprint_bytes,
      std::uint64_t dram_capacity_bytes = kNdmDramCapacity) const;

  /// NDM with epoch-based dynamic partitioning (the paper's future-work
  /// variant) instead of a static oracle placement. `region_bytes` and
  /// `dram_capacity_bytes` are unscaled; the region shrinks with the scale
  /// divisor (minimum 4 KiB).
  [[nodiscard]] std::unique_ptr<cache::MemoryHierarchy>
  nvm_plus_dram_dynamic_back(
      mem::Technology nvm_tech, std::uint64_t footprint_bytes,
      std::uint64_t dram_capacity_bytes = kNdmDramCapacity,
      std::uint64_t region_bytes = 1ull << 20,
      std::uint64_t epoch_accesses = 64 * 1024) const;

 private:
  [[nodiscard]] cache::CacheLevelSpec l4_level(const EhConfig& cfg,
                                               mem::Technology l4_tech) const;
  [[nodiscard]] cache::CacheLevelSpec dram_cache_level(
      const NConfig& cfg) const;
  [[nodiscard]] mem::MemoryDeviceConfig dram_device(
      std::uint64_t capacity_bytes, std::string name) const;
  [[nodiscard]] mem::MemoryDeviceConfig nvm_device(
      mem::Technology nvm_tech, std::uint64_t capacity_bytes,
      std::string name) const;

  std::uint64_t scale_;
  mem::TechnologyRegistry registry_;
  DesignOptions options_;
  ReferenceCaches reference_;
};

}  // namespace hms::designs
