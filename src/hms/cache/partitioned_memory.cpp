#include "hms/cache/partitioned_memory.hpp"

#include "hms/common/error.hpp"

namespace hms::cache {

PartitionedMemoryBackend::PartitionedMemoryBackend(
    std::vector<mem::MemoryDeviceConfig> devices,
    std::vector<AddressRangeRule> rules, std::size_t default_device)
    : rules_(std::move(rules)), default_device_(default_device) {
  check_config(!devices.empty(),
               "PartitionedMemoryBackend: need at least one device");
  check_config(default_device < devices.size(),
               "PartitionedMemoryBackend: default device out of range");
  for (const auto& rule : rules_) {
    check_config(rule.device_index < devices.size(),
                 "PartitionedMemoryBackend: rule device out of range");
    check_config(rule.length > 0,
                 "PartitionedMemoryBackend: empty rule range");
  }
  devices_.reserve(devices.size());
  for (auto& cfg : devices) {
    devices_.emplace_back(std::move(cfg));
  }
}

std::size_t PartitionedMemoryBackend::route(Address address) const noexcept {
  for (const auto& rule : rules_) {
    if (rule.contains(address)) return rule.device_index;
  }
  return default_device_;
}

void PartitionedMemoryBackend::load(Address address, std::uint64_t bytes) {
  devices_[route(address)].read(address, bytes);
}

void PartitionedMemoryBackend::store(Address address, std::uint64_t bytes) {
  devices_[route(address)].write(address, bytes);
}

const mem::MemoryDevice& PartitionedMemoryBackend::device(
    std::size_t i) const {
  check(i < devices_.size(),
        "PartitionedMemoryBackend: device index out of range");
  return devices_[i];
}

std::vector<LevelProfile> PartitionedMemoryBackend::profiles() const {
  std::vector<LevelProfile> out;
  out.reserve(devices_.size());
  for (const auto& device : devices_) {
    LevelProfile p;
    p.name = device.config().name;
    p.tech = device.technology();
    p.capacity_bytes = device.config().modeled_capacity_bytes != 0
                           ? device.config().modeled_capacity_bytes
                           : device.config().capacity_bytes;
    p.loads = device.stats().reads;
    p.stores = device.stats().writes + device.stats().migration_writes;
    p.load_bytes = device.stats().read_bytes;
    p.store_bytes = device.stats().write_bytes;
    p.is_cache = false;
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace hms::cache
