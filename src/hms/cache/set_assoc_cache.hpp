// Set-associative write-back, write-allocate cache with dirty tracking —
// the paper's core simulation structure (Section III.B), extended with
// optional sector-granularity dirty bits (ablation A2).
//
// Hot-path layout (DESIGN.md "Hot-path architecture"): the tag store is
// struct-of-arrays so a set probe scans a contiguous run of tags, and the
// replacement policy runs inline from per-set metadata arrays — the access
// kernel is specialized per PolicyKind at compile time and selected by a
// single switch per access, so no virtual call fires on the hot path. The
// virtual ReplacementPolicy hierarchy in replacement.hpp is retained as the
// reference implementation for differential testing.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "hms/common/random.hpp"
#include "hms/common/types.hpp"
#include "hms/cache/replacement.hpp"

// The AVX-512 kernel variant is compiled with a per-function target
// attribute, so the translation unit (and every other object file) stays
// baseline x86-64; the variant is selected at runtime via cpuid.
#if defined(__x86_64__) && defined(__GNUC__)
#define HMS_HAVE_AVX512_KERNEL 1
#define HMS_TARGET_AVX512 \
  __attribute__((target("avx512f,avx512bw,avx512dq,avx512vl")))
#else
#define HMS_HAVE_AVX512_KERNEL 0
#define HMS_TARGET_AVX512
#endif

namespace hms::cache {

/// True when the runtime dispatch (cpuid + HMS_NO_AVX512) selected the
/// AVX-512 probe/victim kernel — bench provenance, not a behavior switch.
[[nodiscard]] bool avx512_kernel_active() noexcept;

struct CacheConfig {
  std::string name = "cache";
  std::uint64_t capacity_bytes = 0;
  /// Capacity the energy model should charge static power for; 0 = same as
  /// capacity_bytes. Scaled-down simulations set this to the full-size
  /// capacity so static/dynamic energy ratios match the unscaled system
  /// (DESIGN.md, substitutions).
  std::uint64_t modeled_capacity_bytes = 0;
  /// Allocation unit. For L1-L3 this is the 64 B line; for the L4 / DRAM
  /// caches it is the paper's "page size" parameter.
  std::uint64_t line_bytes = 64;
  /// 0 selects fully associative (ways == number of lines).
  std::uint32_t associativity = 8;
  PolicyKind policy = PolicyKind::LRU;
  /// When nonzero, dirtiness is tracked per sector of this many bytes and
  /// write-backs carry only the dirty sectors' bytes. Requires
  /// line_bytes / sector_bytes <= 64. 0 = whole-line dirty granularity.
  std::uint64_t sector_bytes = 0;
  std::uint64_t policy_seed = 0x5eed;
};

/// Hit/miss/write-back counters (the simulator's raw output; paper §III.B).
struct CacheStats {
  Count load_hits = 0;
  Count load_misses = 0;
  Count store_hits = 0;
  Count store_misses = 0;
  Count evictions = 0;   ///< lines displaced (clean or dirty)
  Count writebacks = 0;  ///< dirty lines displaced
  Count prefetch_fills = 0;   ///< lines inserted by prefetch requests
  Count prefetch_useful = 0;  ///< prefetched lines later hit by demand

  friend constexpr bool operator==(const CacheStats&,
                                   const CacheStats&) = default;

  [[nodiscard]] Count hits() const noexcept { return load_hits + store_hits; }
  [[nodiscard]] Count misses() const noexcept {
    return load_misses + store_misses;
  }
  [[nodiscard]] Count accesses() const noexcept { return hits() + misses(); }
  [[nodiscard]] double miss_rate() const noexcept {
    const Count total = accesses();
    return total ? static_cast<double>(misses()) / static_cast<double>(total)
                 : 0.0;
  }
};

/// Result of one cache access, from which the hierarchy derives next-level
/// traffic. Kept to 16 bytes so it returns in registers — this struct
/// crosses the hottest call boundary in the simulator several times per
/// reference.
struct AccessOutcome {
  bool hit = false;
  /// The demand hit consumed a line filled by prefetch — the trigger for
  /// tagged prefetching (sustains prefetch chains on streaming patterns).
  bool prefetched_hit = false;
  /// A resident line was displaced to make room.
  bool evicted = false;
  /// The displaced line was dirty and must be written downstream.
  bool writeback = false;
  /// Bytes the write-back carries (dirty sectors only in sector mode).
  /// 32 bits: bounded by the line size, which is far below 4 GiB.
  std::uint32_t writeback_bytes = 0;
  /// Line-aligned address of the displaced line (valid when evicted).
  Address victim_address = 0;
};

static_assert(sizeof(AccessOutcome) == 16);

/// See file comment. Accesses must not straddle a line boundary
/// (use trace::LineSplitFilter upstream if they can).
class SetAssocCache {
 public:
  explicit SetAssocCache(CacheConfig config);

  SetAssocCache(SetAssocCache&&) noexcept = default;
  SetAssocCache& operator=(SetAssocCache&&) noexcept = default;

  /// Performs lookup and, on miss, allocation (write-allocate for both
  /// loads and stores, per the paper's write-back model).
  ///
  /// `prefetch` marks a speculative fill request: hits are no-ops (no stat
  /// or recency update), misses allocate the line tagged as prefetched and
  /// count as prefetch_fills instead of demand misses. A later demand hit
  /// on a prefetched line counts prefetch_useful.
  AccessOutcome access(Address address, std::uint64_t size, AccessType type,
                       bool prefetch = false);

  /// Non-modifying presence check.
  [[nodiscard]] bool contains(Address address) const;

  /// Whether a resident line is dirty; false if absent.
  [[nodiscard]] bool is_dirty(Address address) const;

  /// Drains all dirty lines, invalidating the cache. Returns
  /// (line-aligned address, write-back bytes) pairs in set order.
  std::vector<std::pair<Address, std::uint64_t>> flush();

  /// Sink-callback flush: invokes `sink(line_address, writeback_bytes)` for
  /// every dirty line in set order without materializing a vector. The
  /// callback must not access this cache.
  void flush(const std::function<void(Address, std::uint64_t)>& sink);

  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint32_t sets() const noexcept { return sets_; }
  [[nodiscard]] std::uint32_t ways() const noexcept { return ways_; }
  [[nodiscard]] std::uint64_t lines() const noexcept {
    return std::uint64_t{sets_} * ways_;
  }
  /// Number of currently valid lines.
  [[nodiscard]] std::uint64_t occupancy() const noexcept { return valid_count_; }

  /// Host-memory footprint of the hot per-line metadata arrays. Batched
  /// drivers use this to decide whether set prefetching can pay off (it
  /// only does once the metadata outgrows the host's private caches).
  [[nodiscard]] std::size_t metadata_bytes() const noexcept {
    return tags_.size() * sizeof(Address) +
           dirty_.size() * sizeof(std::uint64_t) + flags_.size() +
           stamps_.size() * sizeof(std::uint64_t) + meta8_.size();
  }

  void reset_stats() noexcept { stats_ = CacheStats{}; }

  /// Hints the host CPU to pull the set metadata for `address` into cache.
  /// Issued by batched drivers a few accesses ahead of the demand probe;
  /// purely a host-side performance hint with no simulated effect.
  void prefetch_set(Address address) const noexcept {
    const auto set = static_cast<std::uint32_t>((address >> line_shift_) &
                                                (sets_ - 1));
    const std::size_t base = std::size_t{set} * ways_;
    const std::size_t row_bytes = std::size_t{ways_} * sizeof(Address);
    // Locality 3 (prefetcht0) pulls the rows all the way into the host L1:
    // the probe's loads are on the critical dependency chain, so even an
    // L2-resident row costs ~3x an L1 hit.
    const char* tags = reinterpret_cast<const char*>(tags_.data() + base);
    const char* dirty = reinterpret_cast<const char*>(dirty_.data() + base);
    for (std::size_t off = 0; off < row_bytes; off += 64) {
      __builtin_prefetch(tags + off, 0, 3);
      __builtin_prefetch(dirty + off, 1, 3);
    }
    if (!stamps_.empty()) {
      const char* stamps =
          reinterpret_cast<const char*>(stamps_.data() + base);
      for (std::size_t off = 0; off < row_bytes; off += 64) {
        __builtin_prefetch(stamps + off, 1, 3);
      }
    }
  }

 private:
  /// tags_ value marking an unoccupied way: lets the probe loop scan tags
  /// alone, with no separate validity load. Addresses in the top line of
  /// the 64-bit space (tag == ~0) are unsupported — line-boundary
  /// arithmetic upstream already overflows there.
  static constexpr Address kInvalidTag = ~Address{0};
  /// flags_ bit: line was filled by prefetch, not yet demand-hit.
  static constexpr std::uint8_t kPrefetched = 1;

  /// W is the compile-time way count (0 = use runtime ways_): common
  /// associativities get fully unrolled probe and victim scans.
  template <PolicyKind K, unsigned W>
  AccessOutcome access_kernel(Address address, std::uint64_t size,
                              AccessType type, bool prefetch);
#if HMS_HAVE_AVX512_KERNEL
  /// AVX-512 variant of access_kernel for the common 8/16-way geometries:
  /// the tag probe and the LRU/FIFO victim argmin run as 512-bit mask
  /// compares instead of scalar per-way passes. Selected at runtime (cpuid,
  /// overridable via HMS_NO_AVX512=1); bit-identical to the scalar kernel —
  /// the differential suite exercises whichever variant the host runs.
  template <PolicyKind K, unsigned W>
  HMS_TARGET_AVX512 AccessOutcome access_kernel_simd(Address address,
                                                     std::uint64_t size,
                                                     AccessType type,
                                                     bool prefetch);
#endif
  template <PolicyKind K>
  AccessOutcome dispatch_ways(Address address, std::uint64_t size,
                              AccessType type, bool prefetch);

  template <PolicyKind K>
  void policy_touch(std::uint32_t set, std::size_t base, std::uint32_t way);
  template <PolicyKind K>
  void policy_insert(std::uint32_t set, std::size_t base, std::uint32_t way);
  template <PolicyKind K, unsigned W>
  [[nodiscard]] std::uint32_t policy_victim(std::uint32_t set,
                                            std::size_t base);
  void plru_touch(std::uint32_t set, std::uint32_t way);

  [[nodiscard]] std::uint32_t set_of(Address line_addr) const noexcept;
  [[nodiscard]] std::uint64_t sector_mask(Address address,
                                          std::uint64_t size) const noexcept;
  [[nodiscard]] std::uint64_t dirty_bytes(std::uint64_t mask) const noexcept;

  CacheConfig config_;
  std::uint32_t sets_ = 0;
  std::uint32_t ways_ = 0;
  std::uint32_t set_mask_ = 0;  ///< sets_ - 1 (sets_ is a power of two)
  unsigned line_shift_ = 0;
  std::uint64_t valid_count_ = 0;
  // SoA tag store, sets_ x ways_ row-major: a set probe scans a contiguous
  // cache-line of tags_ instead of striding through an AoS of Way records.
  // Validity lives in the tags themselves (kInvalidTag), so the probe loop
  // touches exactly one array.
  std::vector<Address> tags_;
  std::vector<std::uint64_t> dirty_;  ///< dirty sector mask; nonzero => dirty
  std::vector<std::uint8_t> flags_;   ///< kPrefetched only; off the probe path
  // Inline replacement-engine state; which arrays are live depends on
  // config_.policy (LRU/FIFO: stamps_; TreePLRU: meta8_ as tree bits;
  // SRRIP: meta8_ as RRPVs; Random: rng_).
  std::vector<std::uint64_t> stamps_;
  std::vector<std::uint8_t> meta8_;
  /// LRU/FIFO recency clock. The victim argmin packs (stamp << 8 | way), so
  /// the clock must stay below 2^56 — about 7*10^16 accesses, several
  /// thousand years of simulation at current throughput.
  std::uint64_t clock_ = 0;
  unsigned plru_levels_ = 0;
  /// Whether any prefetch fill ever happened: while false (no prefetcher —
  /// the common case) the hit path skips the flags_ load entirely.
  bool has_prefetched_lines_ = false;
  Xoshiro256 rng_;
  CacheStats stats_;
};

}  // namespace hms::cache
