// Set-associative write-back, write-allocate cache with dirty tracking —
// the paper's core simulation structure (Section III.B), extended with
// optional sector-granularity dirty bits (ablation A2).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hms/common/types.hpp"
#include "hms/cache/replacement.hpp"

namespace hms::cache {

struct CacheConfig {
  std::string name = "cache";
  std::uint64_t capacity_bytes = 0;
  /// Capacity the energy model should charge static power for; 0 = same as
  /// capacity_bytes. Scaled-down simulations set this to the full-size
  /// capacity so static/dynamic energy ratios match the unscaled system
  /// (DESIGN.md, substitutions).
  std::uint64_t modeled_capacity_bytes = 0;
  /// Allocation unit. For L1-L3 this is the 64 B line; for the L4 / DRAM
  /// caches it is the paper's "page size" parameter.
  std::uint64_t line_bytes = 64;
  /// 0 selects fully associative (ways == number of lines).
  std::uint32_t associativity = 8;
  PolicyKind policy = PolicyKind::LRU;
  /// When nonzero, dirtiness is tracked per sector of this many bytes and
  /// write-backs carry only the dirty sectors' bytes. Requires
  /// line_bytes / sector_bytes <= 64. 0 = whole-line dirty granularity.
  std::uint64_t sector_bytes = 0;
  std::uint64_t policy_seed = 0x5eed;
};

/// Hit/miss/write-back counters (the simulator's raw output; paper §III.B).
struct CacheStats {
  Count load_hits = 0;
  Count load_misses = 0;
  Count store_hits = 0;
  Count store_misses = 0;
  Count evictions = 0;   ///< lines displaced (clean or dirty)
  Count writebacks = 0;  ///< dirty lines displaced
  Count prefetch_fills = 0;   ///< lines inserted by prefetch requests
  Count prefetch_useful = 0;  ///< prefetched lines later hit by demand

  [[nodiscard]] Count hits() const noexcept { return load_hits + store_hits; }
  [[nodiscard]] Count misses() const noexcept {
    return load_misses + store_misses;
  }
  [[nodiscard]] Count accesses() const noexcept { return hits() + misses(); }
  [[nodiscard]] double miss_rate() const noexcept {
    const Count total = accesses();
    return total ? static_cast<double>(misses()) / static_cast<double>(total)
                 : 0.0;
  }
};

/// Result of one cache access, from which the hierarchy derives next-level
/// traffic.
struct AccessOutcome {
  bool hit = false;
  /// The demand hit consumed a line filled by prefetch — the trigger for
  /// tagged prefetching (sustains prefetch chains on streaming patterns).
  bool prefetched_hit = false;
  /// A resident line was displaced to make room.
  bool evicted = false;
  /// The displaced line was dirty and must be written downstream.
  bool writeback = false;
  /// Line-aligned address of the displaced line (valid when evicted).
  Address victim_address = 0;
  /// Bytes the write-back carries (dirty sectors only in sector mode).
  std::uint64_t writeback_bytes = 0;
};

/// See file comment. Accesses must not straddle a line boundary
/// (use trace::LineSplitFilter upstream if they can).
class SetAssocCache {
 public:
  explicit SetAssocCache(CacheConfig config);

  SetAssocCache(SetAssocCache&&) noexcept = default;
  SetAssocCache& operator=(SetAssocCache&&) noexcept = default;

  /// Performs lookup and, on miss, allocation (write-allocate for both
  /// loads and stores, per the paper's write-back model).
  ///
  /// `prefetch` marks a speculative fill request: hits are no-ops (no stat
  /// or recency update), misses allocate the line tagged as prefetched and
  /// count as prefetch_fills instead of demand misses. A later demand hit
  /// on a prefetched line counts prefetch_useful.
  AccessOutcome access(Address address, std::uint64_t size, AccessType type,
                       bool prefetch = false);

  /// Non-modifying presence check.
  [[nodiscard]] bool contains(Address address) const;

  /// Whether a resident line is dirty; false if absent.
  [[nodiscard]] bool is_dirty(Address address) const;

  /// Drains all dirty lines, invalidating the cache. Returns
  /// (line-aligned address, write-back bytes) pairs in set order.
  std::vector<std::pair<Address, std::uint64_t>> flush();

  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint32_t sets() const noexcept { return sets_; }
  [[nodiscard]] std::uint32_t ways() const noexcept { return ways_; }
  [[nodiscard]] std::uint64_t lines() const noexcept {
    return std::uint64_t{sets_} * ways_;
  }
  /// Number of currently valid lines.
  [[nodiscard]] std::uint64_t occupancy() const noexcept { return valid_count_; }

  void reset_stats() noexcept { stats_ = CacheStats{}; }

 private:
  struct Way {
    Address tag = 0;
    std::uint64_t dirty_mask = 0;  ///< nonzero => dirty
    bool valid = false;
    bool prefetched = false;  ///< filled by prefetch, not yet demand-hit
  };

  [[nodiscard]] std::uint32_t set_of(Address line_addr) const noexcept;
  [[nodiscard]] std::uint64_t sector_mask(Address address,
                                          std::uint64_t size) const noexcept;
  [[nodiscard]] std::uint64_t dirty_bytes(std::uint64_t mask) const noexcept;

  CacheConfig config_;
  std::uint32_t sets_ = 0;
  std::uint32_t ways_ = 0;
  unsigned line_shift_ = 0;
  std::uint64_t valid_count_ = 0;
  std::vector<Way> ways_storage_;  ///< sets_ x ways_, row-major
  std::unique_ptr<ReplacementPolicy> policy_;
  CacheStats stats_;
};

}  // namespace hms::cache
