// DynamicPartitionBackend: epoch-based DRAM/NVM migration — the paper's
// stated future work for the NDM design ("Further investigation should
// explore dynamic partitioning, that may change between computation
// phases").
//
// The address space is divided into fixed-size regions. During an epoch,
// per-region access counts accumulate while traffic routes to whichever
// device currently holds each region (everything starts in NVM). At epoch
// boundaries the hottest regions (by an exponentially decayed score) are
// promoted into DRAM up to its capacity, displacing colder residents.
// Every migration is charged to both devices as a bulk region transfer, so
// the models see the real cost of re-partitioning.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "hms/cache/hierarchy.hpp"
#include "hms/mem/memory_device.hpp"

namespace hms::cache {

struct DynamicPartitionConfig {
  mem::MemoryDeviceConfig dram;  ///< hot device (index 0)
  mem::MemoryDeviceConfig nvm;   ///< cold device (index 1, default home)
  /// Migration granularity.
  std::uint64_t region_bytes = 1ull << 20;
  /// Accesses between re-partitioning decisions.
  std::uint64_t epoch_accesses = 64 * 1024;
  /// Weight of history in the region score: score = decay*score + count.
  double score_decay = 0.5;
};

/// See file comment.
class DynamicPartitionBackend final : public MemoryBackend {
 public:
  explicit DynamicPartitionBackend(DynamicPartitionConfig config);

  void load(Address address, std::uint64_t bytes) override;
  void store(Address address, std::uint64_t bytes) override;
  [[nodiscard]] std::vector<LevelProfile> profiles() const override;

  [[nodiscard]] const mem::MemoryDevice& dram() const noexcept {
    return dram_;
  }
  [[nodiscard]] const mem::MemoryDevice& nvm() const noexcept { return nvm_; }

  /// True if the region holding `address` currently resides in DRAM.
  [[nodiscard]] bool in_dram(Address address) const;

  [[nodiscard]] std::uint64_t epochs() const noexcept { return epochs_; }
  [[nodiscard]] std::uint64_t migrations() const noexcept {
    return migrations_;
  }
  [[nodiscard]] std::uint64_t migrated_bytes() const noexcept {
    return migrations_ * config_.region_bytes;
  }
  /// Number of regions DRAM can hold.
  [[nodiscard]] std::uint64_t dram_region_capacity() const noexcept {
    return dram_regions_;
  }
  [[nodiscard]] std::size_t resident_regions() const noexcept {
    return dram_resident_;
  }

  /// Forces an epoch boundary now (mainly for tests).
  void rebalance();

 private:
  struct RegionState {
    std::uint64_t epoch_count = 0;
    double score = 0.0;
    bool in_dram = false;
  };

  void touch(Address address, std::uint64_t bytes, bool is_store);

  DynamicPartitionConfig config_;
  mem::MemoryDevice dram_;
  mem::MemoryDevice nvm_;
  std::uint64_t dram_regions_;
  std::unordered_map<std::uint64_t, RegionState> regions_;
  std::uint64_t accesses_in_epoch_ = 0;
  std::uint64_t epochs_ = 0;
  std::uint64_t migrations_ = 0;
  std::size_t dram_resident_ = 0;
};

}  // namespace hms::cache
