#include "hms/cache/replacement.hpp"

#include <algorithm>
#include <vector>

#include "hms/common/bitops.hpp"
#include "hms/common/error.hpp"
#include "hms/common/random.hpp"
#include "hms/common/string_util.hpp"

namespace hms::cache {

std::string_view to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::LRU:
      return "LRU";
    case PolicyKind::TreePLRU:
      return "TreePLRU";
    case PolicyKind::FIFO:
      return "FIFO";
    case PolicyKind::Random:
      return "Random";
    case PolicyKind::SRRIP:
      return "SRRIP";
  }
  return "unknown";
}

PolicyKind policy_from_string(std::string_view name) {
  for (PolicyKind k : {PolicyKind::LRU, PolicyKind::TreePLRU, PolicyKind::FIFO,
                       PolicyKind::Random, PolicyKind::SRRIP}) {
    if (iequals(name, to_string(k))) return k;
  }
  if (iequals(name, "plru")) return PolicyKind::TreePLRU;
  throw Error("unknown replacement policy: " + std::string(name));
}

namespace {

/// True LRU via a global 64-bit access clock.
class LruPolicy final : public ReplacementPolicy {
 public:
  LruPolicy(std::uint32_t sets, std::uint32_t ways)
      : ways_(ways), stamps_(std::size_t{sets} * ways, 0) {}

  void on_insert(std::uint32_t set, std::uint32_t way) override {
    stamps_[index(set, way)] = ++clock_;
  }
  void on_access(std::uint32_t set, std::uint32_t way) override {
    stamps_[index(set, way)] = ++clock_;
  }
  std::uint32_t choose_victim(std::uint32_t set) override {
    const std::size_t base = std::size_t{set} * ways_;
    std::uint32_t victim = 0;
    std::uint64_t oldest = stamps_[base];
    for (std::uint32_t w = 1; w < ways_; ++w) {
      if (stamps_[base + w] < oldest) {
        oldest = stamps_[base + w];
        victim = w;
      }
    }
    return victim;
  }

 private:
  [[nodiscard]] std::size_t index(std::uint32_t set,
                                  std::uint32_t way) const noexcept {
    return std::size_t{set} * ways_ + way;
  }
  std::uint32_t ways_;
  std::uint64_t clock_ = 0;
  std::vector<std::uint64_t> stamps_;
};

/// FIFO: like LRU but hits do not refresh the stamp.
class FifoPolicy final : public ReplacementPolicy {
 public:
  FifoPolicy(std::uint32_t sets, std::uint32_t ways)
      : ways_(ways), stamps_(std::size_t{sets} * ways, 0) {}

  void on_insert(std::uint32_t set, std::uint32_t way) override {
    stamps_[std::size_t{set} * ways_ + way] = ++clock_;
  }
  void on_access(std::uint32_t, std::uint32_t) override {}
  std::uint32_t choose_victim(std::uint32_t set) override {
    const std::size_t base = std::size_t{set} * ways_;
    std::uint32_t victim = 0;
    std::uint64_t oldest = stamps_[base];
    for (std::uint32_t w = 1; w < ways_; ++w) {
      if (stamps_[base + w] < oldest) {
        oldest = stamps_[base + w];
        victim = w;
      }
    }
    return victim;
  }

 private:
  std::uint32_t ways_;
  std::uint64_t clock_ = 0;
  std::vector<std::uint64_t> stamps_;
};

class RandomPolicy final : public ReplacementPolicy {
 public:
  RandomPolicy(std::uint32_t ways, std::uint64_t seed)
      : ways_(ways), rng_(seed) {}

  void on_insert(std::uint32_t, std::uint32_t) override {}
  void on_access(std::uint32_t, std::uint32_t) override {}
  std::uint32_t choose_victim(std::uint32_t) override {
    return static_cast<std::uint32_t>(rng_.below(ways_));
  }

 private:
  std::uint32_t ways_;
  Xoshiro256 rng_;
};

/// Tree pseudo-LRU over a power-of-two number of ways. Each set holds
/// ways-1 direction bits arranged as an implicit binary tree.
class TreePlruPolicy final : public ReplacementPolicy {
 public:
  TreePlruPolicy(std::uint32_t sets, std::uint32_t ways)
      : ways_(ways), bits_(std::size_t{sets} * (ways - 1), 0) {
    check_config(is_pow2(ways),
                 "TreePLRU requires power-of-two associativity");
    levels_ = log2_exact(ways);
  }

  void on_insert(std::uint32_t set, std::uint32_t way) override {
    touch(set, way);
  }
  void on_access(std::uint32_t set, std::uint32_t way) override {
    touch(set, way);
  }
  std::uint32_t choose_victim(std::uint32_t set) override {
    const std::size_t base = std::size_t{set} * (ways_ - 1);
    std::size_t node = 0;
    for (unsigned level = 0; level < levels_; ++level) {
      const std::uint8_t bit = bits_[base + node];
      node = 2 * node + 1 + bit;  // follow the cold direction
    }
    return static_cast<std::uint32_t>(node - (ways_ - 1));
  }

 private:
  /// Flips the bits along the way's root path to point away from it.
  void touch(std::uint32_t set, std::uint32_t way) {
    const std::size_t base = std::size_t{set} * (ways_ - 1);
    std::size_t node = way + (ways_ - 1);  // leaf index in implicit tree
    while (node != 0) {
      const std::size_t parent = (node - 1) / 2;
      const bool went_right = (node == 2 * parent + 2);
      // Mark the *other* side as the next victim direction.
      bits_[base + parent] = went_right ? 0 : 1;
      node = parent;
    }
  }

  std::uint32_t ways_;
  unsigned levels_ = 0;
  std::vector<std::uint8_t> bits_;
};

/// SRRIP (Jaleel et al., ISCA'10) with 2-bit re-reference predictions.
class SrripPolicy final : public ReplacementPolicy {
 public:
  static constexpr std::uint8_t kMaxRrpv = 3;  // 2-bit

  SrripPolicy(std::uint32_t sets, std::uint32_t ways)
      : ways_(ways), rrpv_(std::size_t{sets} * ways, kMaxRrpv) {}

  void on_insert(std::uint32_t set, std::uint32_t way) override {
    rrpv_[std::size_t{set} * ways_ + way] = kMaxRrpv - 1;  // "long" interval
  }
  void on_access(std::uint32_t set, std::uint32_t way) override {
    rrpv_[std::size_t{set} * ways_ + way] = 0;  // hit promotion
  }
  std::uint32_t choose_victim(std::uint32_t set) override {
    const std::size_t base = std::size_t{set} * ways_;
    while (true) {
      for (std::uint32_t w = 0; w < ways_; ++w) {
        if (rrpv_[base + w] == kMaxRrpv) return w;
      }
      for (std::uint32_t w = 0; w < ways_; ++w) ++rrpv_[base + w];
    }
  }

 private:
  std::uint32_t ways_;
  std::vector<std::uint8_t> rrpv_;
};

}  // namespace

std::unique_ptr<ReplacementPolicy> make_policy(PolicyKind kind,
                                               std::uint32_t sets,
                                               std::uint32_t ways,
                                               std::uint64_t seed) {
  check_config(sets > 0 && ways > 0,
               "make_policy: sets and ways must be positive");
  switch (kind) {
    case PolicyKind::LRU:
      return std::make_unique<LruPolicy>(sets, ways);
    case PolicyKind::TreePLRU:
      return std::make_unique<TreePlruPolicy>(sets, ways);
    case PolicyKind::FIFO:
      return std::make_unique<FifoPolicy>(sets, ways);
    case PolicyKind::Random:
      return std::make_unique<RandomPolicy>(ways, seed);
    case PolicyKind::SRRIP:
      return std::make_unique<SrripPolicy>(sets, ways);
  }
  throw Error("make_policy: unhandled policy kind");
}

}  // namespace hms::cache
