// PartitionedMemoryBackend: the NDM design's main memory — a partitioned
// address space across two (or more) devices, e.g. DRAM for hot ranges and
// NVM for everything else (paper Section III.A, "NVM+DRAM").
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hms/cache/hierarchy.hpp"
#include "hms/mem/memory_device.hpp"

namespace hms::cache {

/// Maps [base, base+length) to the device at `device_index`.
struct AddressRangeRule {
  Address base = 0;
  std::uint64_t length = 0;
  std::size_t device_index = 0;

  [[nodiscard]] bool contains(Address a) const noexcept {
    return a >= base && a - base < length;
  }
};

/// See file comment. Addresses not matched by any rule go to the device at
/// `default_device`.
class PartitionedMemoryBackend final : public MemoryBackend {
 public:
  PartitionedMemoryBackend(std::vector<mem::MemoryDeviceConfig> devices,
                           std::vector<AddressRangeRule> rules,
                           std::size_t default_device);

  void load(Address address, std::uint64_t bytes) override;
  void store(Address address, std::uint64_t bytes) override;
  [[nodiscard]] std::vector<LevelProfile> profiles() const override;

  [[nodiscard]] std::size_t device_count() const noexcept {
    return devices_.size();
  }
  [[nodiscard]] const mem::MemoryDevice& device(std::size_t i) const;
  [[nodiscard]] const std::vector<AddressRangeRule>& rules() const noexcept {
    return rules_;
  }

  /// Device index a given address routes to.
  [[nodiscard]] std::size_t route(Address address) const noexcept;

 private:
  std::vector<mem::MemoryDevice> devices_;
  std::vector<AddressRangeRule> rules_;
  std::size_t default_device_;
};

}  // namespace hms::cache
