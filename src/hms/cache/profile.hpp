// HierarchyProfile: the data-movement statistics a simulation produces and
// the performance/energy models consume (the paper's "cache statistics of
// the target design", Section III.B).
#pragma once

#include <string>
#include <vector>

#include "hms/common/types.hpp"
#include "hms/cache/set_assoc_cache.hpp"
#include "hms/mem/technology.hpp"

namespace hms::cache {

/// Per-level transaction counts. `loads`/`stores` are the Loads_Li and
/// Stores_Li of Eq. 2; the byte totals feed the bits-moved dynamic-energy
/// accounting of Eq. 3.
struct LevelProfile {
  std::string name;
  mem::TechnologyParams tech;
  std::uint64_t capacity_bytes = 0;
  Count loads = 0;
  Count stores = 0;
  std::uint64_t load_bytes = 0;
  std::uint64_t store_bytes = 0;
  bool is_cache = false;
  CacheStats cache_stats;  ///< valid when is_cache

  [[nodiscard]] Count accesses() const noexcept { return loads + stores; }
};

/// Statistics for one complete design simulation.
struct HierarchyProfile {
  std::vector<LevelProfile> levels;
  /// CPU-issued references — the AMAT denominator ("Total Number of
  /// References" in Eq. 2).
  Count references = 0;

  /// Concatenates a front (L1-L3) profile with the back (design-specific)
  /// profile produced by replaying the front's residual stream. The front
  /// supplies the reference count.
  [[nodiscard]] static HierarchyProfile combine(const HierarchyProfile& front,
                                                const HierarchyProfile& back);
};

}  // namespace hms::cache
