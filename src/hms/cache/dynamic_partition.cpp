#include "hms/cache/dynamic_partition.hpp"

#include <algorithm>

#include "hms/common/bitops.hpp"
#include "hms/common/error.hpp"

namespace hms::cache {

DynamicPartitionBackend::DynamicPartitionBackend(
    DynamicPartitionConfig config)
    : config_(std::move(config)),
      dram_(config_.dram),
      nvm_(config_.nvm),
      dram_regions_(config_.dram.capacity_bytes / config_.region_bytes) {
  check_config(is_pow2(config_.region_bytes),
               "DynamicPartitionBackend: region size must be a power of two");
  check_config(dram_regions_ > 0,
               "DynamicPartitionBackend: DRAM smaller than one region");
  check_config(config_.epoch_accesses > 0,
               "DynamicPartitionBackend: epoch must be positive");
  check_config(config_.score_decay >= 0.0 && config_.score_decay < 1.0,
               "DynamicPartitionBackend: decay must be in [0,1)");
}

bool DynamicPartitionBackend::in_dram(Address address) const {
  const auto it = regions_.find(address / config_.region_bytes);
  return it != regions_.end() && it->second.in_dram;
}

void DynamicPartitionBackend::touch(Address address, std::uint64_t bytes,
                                    bool is_store) {
  RegionState& region = regions_[address / config_.region_bytes];
  ++region.epoch_count;
  mem::MemoryDevice& device = region.in_dram ? dram_ : nvm_;
  if (is_store) {
    device.write(address, bytes);
  } else {
    device.read(address, bytes);
  }
  if (++accesses_in_epoch_ >= config_.epoch_accesses) {
    rebalance();
  }
}

void DynamicPartitionBackend::load(Address address, std::uint64_t bytes) {
  touch(address, bytes, /*is_store=*/false);
}

void DynamicPartitionBackend::store(Address address, std::uint64_t bytes) {
  touch(address, bytes, /*is_store=*/true);
}

void DynamicPartitionBackend::rebalance() {
  accesses_in_epoch_ = 0;
  ++epochs_;

  // Fold the epoch's counts into the decayed scores.
  std::vector<std::pair<double, std::uint64_t>> scored;  // (score, region)
  scored.reserve(regions_.size());
  for (auto& [id, state] : regions_) {
    state.score = config_.score_decay * state.score +
                  static_cast<double>(state.epoch_count);
    state.epoch_count = 0;
    scored.emplace_back(state.score, id);
  }

  // The hottest dram_regions_ regions should live in DRAM.
  const std::size_t want =
      std::min<std::size_t>(scored.size(),
                            static_cast<std::size_t>(dram_regions_));
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<std::ptrdiff_t>(want),
                    scored.end(), [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;  // deterministic ties
                    });

  std::unordered_map<std::uint64_t, bool> target;
  target.reserve(want);
  for (std::size_t i = 0; i < want; ++i) {
    target.emplace(scored[i].second, true);
  }

  for (auto& [id, state] : regions_) {
    const bool should = target.count(id) > 0;
    if (should == state.in_dram) continue;
    const Address base = id * config_.region_bytes;
    if (should) {
      // Promote: bulk-read the region from NVM, bulk-write into DRAM.
      nvm_.read(base, config_.region_bytes);
      dram_.write(base, config_.region_bytes);
      ++dram_resident_;
    } else {
      // Demote: bulk-read from DRAM, write back to NVM.
      dram_.read(base, config_.region_bytes);
      nvm_.write(base, config_.region_bytes);
      --dram_resident_;
    }
    state.in_dram = should;
    ++migrations_;
  }
}

std::vector<LevelProfile> DynamicPartitionBackend::profiles() const {
  auto make = [](const mem::MemoryDevice& device) {
    LevelProfile p;
    p.name = device.config().name;
    p.tech = device.technology();
    p.capacity_bytes = device.config().modeled_capacity_bytes != 0
                           ? device.config().modeled_capacity_bytes
                           : device.config().capacity_bytes;
    p.loads = device.stats().reads;
    p.stores = device.stats().writes + device.stats().migration_writes;
    p.load_bytes = device.stats().read_bytes;
    p.store_bytes = device.stats().write_bytes;
    p.is_cache = false;
    return p;
  };
  return {make(dram_), make(nvm_)};
}

}  // namespace hms::cache
