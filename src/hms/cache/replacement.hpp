// Replacement policies for the set-associative cache simulator.
//
// The paper's simulator uses LRU; the other policies support the A1
// ablation bench (replacement sensitivity of the DRAM/L4 page caches).
//
// NOTE: the hot path in SetAssocCache does NOT call through this virtual
// hierarchy — it runs inline template kernels specialized per PolicyKind
// (see set_assoc_cache.cpp and DESIGN.md §5b). These classes are the
// *reference implementation* of the policy semantics: they stay the
// single readable definition of each policy, and the engine differential
// test (tests/test_cache_differential.cpp) asserts the inline kernels
// match them bit-for-bit on every policy × sector × prefetch combination.
// Changes to policy semantics must be made in both places.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

namespace hms::cache {

enum class PolicyKind : std::uint8_t {
  LRU,       ///< true least-recently-used (64-bit timestamps)
  TreePLRU,  ///< tree pseudo-LRU (associativity must be a power of two)
  FIFO,      ///< evict oldest insertion
  Random,    ///< uniform random victim (deterministic generator)
  SRRIP,     ///< static re-reference interval prediction, 2-bit RRPV
};

[[nodiscard]] std::string_view to_string(PolicyKind kind);
[[nodiscard]] PolicyKind policy_from_string(std::string_view name);

/// Per-set victim selection state. The cache guarantees `way < ways` and
/// `set < sets` on every call, and consults `choose_victim` only when the
/// set is full (invalid ways are filled first).
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  /// A line was inserted into (set, way).
  virtual void on_insert(std::uint32_t set, std::uint32_t way) = 0;
  /// A resident line at (set, way) was hit.
  virtual void on_access(std::uint32_t set, std::uint32_t way) = 0;
  /// Chooses the victim way in a full set.
  virtual std::uint32_t choose_victim(std::uint32_t set) = 0;
};

/// Factory. `seed` only affects Random. Throws hms::ConfigError for
/// TreePLRU with non-power-of-two associativity.
[[nodiscard]] std::unique_ptr<ReplacementPolicy> make_policy(
    PolicyKind kind, std::uint32_t sets, std::uint32_t ways,
    std::uint64_t seed = 0x5eed);

}  // namespace hms::cache
