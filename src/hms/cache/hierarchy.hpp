// MemoryHierarchy: the multi-level online simulation engine.
//
// A hierarchy is a stack of write-back caches over a MemoryBackend. Every
// CPU reference enters the first level; a miss at level i triggers a
// line-sized fetch from level i+1 (counted as a *load* there), and a dirty
// eviction triggers a write-back (counted as a *store* there) — exactly the
// accounting of paper Section III.B.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "hms/cache/profile.hpp"
#include "hms/cache/set_assoc_cache.hpp"
#include "hms/mem/memory_device.hpp"
#include "hms/mem/technology.hpp"
#include "hms/trace/sink.hpp"

namespace hms::cache {

/// What lies behind the deepest simulated cache level.
class MemoryBackend {
 public:
  virtual ~MemoryBackend() = default;

  /// A line fetch arriving at main memory (read of `bytes`).
  virtual void load(Address address, std::uint64_t bytes) = 0;
  /// A dirty write-back arriving at main memory (write of `bytes`).
  virtual void store(Address address, std::uint64_t bytes) = 0;
  /// One profile entry per physical device behind this backend.
  [[nodiscard]] virtual std::vector<LevelProfile> profiles() const = 0;
};

/// A single main-memory device (base, 4LC, NMM, 4LCNVM designs).
class SingleMemoryBackend final : public MemoryBackend {
 public:
  explicit SingleMemoryBackend(mem::MemoryDeviceConfig config)
      : device_(std::move(config)) {}

  void load(Address address, std::uint64_t bytes) override {
    device_.read(address, bytes);
  }
  void store(Address address, std::uint64_t bytes) override {
    device_.write(address, bytes);
  }
  [[nodiscard]] std::vector<LevelProfile> profiles() const override;

  [[nodiscard]] const mem::MemoryDevice& device() const noexcept {
    return device_;
  }
  [[nodiscard]] mem::MemoryDevice& device() noexcept { return device_; }

 private:
  mem::MemoryDevice device_;
};

/// Captures residual traffic into an AccessSink instead of modeling a
/// device — the front half of the front/back split (DESIGN.md §5).
class CaptureBackend final : public MemoryBackend {
 public:
  explicit CaptureBackend(trace::AccessSink& sink) : sink_(&sink) {}

  void load(Address address, std::uint64_t bytes) override {
    sink_->access(trace::MemoryAccess{
        address, static_cast<std::uint32_t>(bytes), AccessType::Load, 0});
  }
  void store(Address address, std::uint64_t bytes) override {
    sink_->access(trace::MemoryAccess{
        address, static_cast<std::uint32_t>(bytes), AccessType::Store, 0});
  }
  [[nodiscard]] std::vector<LevelProfile> profiles() const override {
    return {};
  }

 private:
  trace::AccessSink* sink_;
};

/// Hardware prefetcher attached to one cache level. Triggered by demand
/// misses at that level; prefetched fills are fetched from the next level
/// (costing latency and energy there) but are not charged as demand
/// accesses at this level. Usefulness is tracked via the cache's
/// prefetch_useful counter.
struct PrefetcherConfig {
  enum class Kind : std::uint8_t {
    None,
    NextLine,  ///< prefetch the `degree` sequentially following lines
    Stride,    ///< detect a constant miss stride, prefetch along it
  };
  Kind kind = Kind::None;
  std::uint32_t degree = 1;
};

/// One cache level of a hierarchy: simulation structure plus the technology
/// that prices its accesses.
struct CacheLevelSpec {
  CacheConfig cache;
  mem::TechnologyParams tech;
  PrefetcherConfig prefetch;
};

/// See file comment.
class MemoryHierarchy final : public trace::BatchAccessSink {
 public:
  MemoryHierarchy(std::vector<CacheLevelSpec> levels,
                  std::unique_ptr<MemoryBackend> backend);

  /// Consumes one CPU reference (AccessSink interface). References that
  /// straddle a first-level line boundary are split and counted per piece.
  void access(const trace::MemoryAccess& a) override;

  /// Consumes a chunk of references with one dispatch: semantically
  /// identical to calling access() per entry in order, but the inner loop
  /// runs the non-virtual per-access path (the sweep replay fast path).
  void access_batch(std::span<const trace::MemoryAccess> batch) override;

  /// Drains all dirty lines downstream (level by level into memory).
  /// Optional at end of run; the paper ignores terminal dirty state.
  void flush();

  [[nodiscard]] HierarchyProfile profile() const;

  [[nodiscard]] std::size_t cache_levels() const noexcept {
    return levels_.size();
  }
  [[nodiscard]] const SetAssocCache& level(std::size_t i) const;
  [[nodiscard]] const MemoryBackend& backend() const noexcept {
    return *backend_;
  }
  [[nodiscard]] MemoryBackend& backend() noexcept { return *backend_; }
  [[nodiscard]] Count references() const noexcept { return references_; }

 private:
  struct Level {
    SetAssocCache cache;
    mem::TechnologyParams tech;
    PrefetcherConfig prefetch;
    Count loads = 0;
    Count stores = 0;
    std::uint64_t load_bytes = 0;
    std::uint64_t store_bytes = 0;
    // Stride-detector state (demand misses only).
    Address last_miss = 0;
    std::int64_t last_stride = 0;
    bool have_miss = false;

    explicit Level(CacheLevelSpec spec)
        : cache(std::move(spec.cache)),
          tech(spec.tech),
          prefetch(spec.prefetch) {}
  };

  void access_one(const trace::MemoryAccess& a);

  void access_level(std::size_t i, Address address, std::uint64_t size,
                    AccessType type, bool from_prefetch = false);

  /// Issues this level's prefetches after a demand miss on `line_addr`.
  void run_prefetcher(std::size_t i, Address line_addr);

  std::vector<Level> levels_;
  /// Levels whose tag-store metadata outgrows the host's private caches:
  /// only these are worth set-prefetching from the batch path (for the
  /// rest the hint is pure overhead). Filled at construction.
  std::vector<const SetAssocCache*> prefetch_worthy_;
  std::unique_ptr<MemoryBackend> backend_;
  /// Devirtualized fast path for the common single-device backend: set at
  /// construction, lets terminal fetches/write-backs skip the vtable.
  mem::MemoryDevice* single_device_ = nullptr;
  Count references_ = 0;
};

}  // namespace hms::cache
