#include "hms/cache/set_assoc_cache.hpp"

#include <bit>

#include "hms/common/bitops.hpp"
#include "hms/common/error.hpp"

namespace hms::cache {

SetAssocCache::SetAssocCache(CacheConfig config) : config_(std::move(config)) {
  check_config(config_.capacity_bytes > 0, "cache: capacity must be positive");
  check_config(is_pow2(config_.line_bytes),
               "cache: line size must be a power of two");
  check_config(config_.capacity_bytes % config_.line_bytes == 0,
               "cache: capacity must be a multiple of the line size");
  const std::uint64_t total_lines = config_.capacity_bytes / config_.line_bytes;
  const std::uint64_t ways64 =
      config_.associativity == 0 ? total_lines : config_.associativity;
  check_config(ways64 > 0 && ways64 <= total_lines,
               "cache: associativity exceeds number of lines");
  check_config(total_lines % ways64 == 0,
               "cache: lines must divide evenly into sets");
  const std::uint64_t sets64 = total_lines / ways64;
  check_config(is_pow2(sets64), "cache: number of sets must be a power of two");
  check_config(sets64 <= 0xffffffffULL && ways64 <= 0xffffffffULL,
               "cache: geometry too large");
  sets_ = static_cast<std::uint32_t>(sets64);
  ways_ = static_cast<std::uint32_t>(ways64);
  line_shift_ = log2_exact(config_.line_bytes);
  if (config_.sector_bytes != 0) {
    check_config(is_pow2(config_.sector_bytes),
                 "cache: sector size must be a power of two");
    check_config(config_.sector_bytes <= config_.line_bytes,
                 "cache: sector larger than line");
    check_config(config_.line_bytes / config_.sector_bytes <= 64,
                 "cache: more than 64 sectors per line");
  }
  ways_storage_.resize(std::size_t{sets_} * ways_);
  policy_ = make_policy(config_.policy, sets_, ways_, config_.policy_seed);
}

std::uint32_t SetAssocCache::set_of(Address line_addr) const noexcept {
  return static_cast<std::uint32_t>((line_addr >> line_shift_) &
                                    (sets_ - 1));
}

std::uint64_t SetAssocCache::sector_mask(Address address,
                                         std::uint64_t size) const noexcept {
  if (config_.sector_bytes == 0) return ~std::uint64_t{0};
  const std::uint64_t offset = address & (config_.line_bytes - 1);
  const std::uint64_t first = offset / config_.sector_bytes;
  const std::uint64_t last = (offset + size - 1) / config_.sector_bytes;
  const std::uint64_t width = last - first + 1;
  const std::uint64_t ones =
      width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
  return ones << first;
}

std::uint64_t SetAssocCache::dirty_bytes(std::uint64_t mask) const noexcept {
  if (config_.sector_bytes == 0) return config_.line_bytes;
  return static_cast<std::uint64_t>(std::popcount(mask)) *
         config_.sector_bytes;
}

AccessOutcome SetAssocCache::access(Address address, std::uint64_t size,
                                    AccessType type, bool prefetch) {
  check(size > 0, "cache: zero-size access");
  const Address line_addr = align_down(address, config_.line_bytes);
  check(align_down(address + size - 1, config_.line_bytes) == line_addr,
        "cache: access straddles a line boundary");
  const std::uint32_t set = set_of(line_addr);
  const Address tag = line_addr >> line_shift_;
  const std::size_t base = std::size_t{set} * ways_;

  AccessOutcome outcome;
  // Lookup.
  std::uint32_t invalid_way = ways_;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    Way& way = ways_storage_[base + w];
    if (way.valid && way.tag == tag) {
      outcome.hit = true;
      if (prefetch) return outcome;  // already resident: no-op
      if (way.prefetched) {
        way.prefetched = false;
        outcome.prefetched_hit = true;
        ++stats_.prefetch_useful;
      }
      if (type == AccessType::Store) {
        ++stats_.store_hits;
        way.dirty_mask |= sector_mask(address, size);
      } else {
        ++stats_.load_hits;
      }
      policy_->on_access(set, w);
      return outcome;
    }
    if (!way.valid && invalid_way == ways_) invalid_way = w;
  }

  // Miss: allocate (write-allocate policy for loads and stores alike).
  if (prefetch) {
    ++stats_.prefetch_fills;
  } else if (type == AccessType::Store) {
    ++stats_.store_misses;
  } else {
    ++stats_.load_misses;
  }
  std::uint32_t victim_way = invalid_way;
  if (victim_way == ways_) {
    victim_way = policy_->choose_victim(set);
    check(victim_way < ways_, "cache: policy returned invalid way");
    Way& victim = ways_storage_[base + victim_way];
    outcome.evicted = true;
    ++stats_.evictions;
    outcome.victim_address = victim.tag << line_shift_;
    if (victim.dirty_mask != 0) {
      outcome.writeback = true;
      outcome.writeback_bytes = dirty_bytes(victim.dirty_mask);
      ++stats_.writebacks;
    }
  } else {
    ++valid_count_;
  }
  Way& slot = ways_storage_[base + victim_way];
  slot.valid = true;
  slot.tag = tag;
  slot.dirty_mask =
      (!prefetch && type == AccessType::Store) ? sector_mask(address, size)
                                               : 0;
  slot.prefetched = prefetch;
  policy_->on_insert(set, victim_way);
  return outcome;
}

bool SetAssocCache::contains(Address address) const {
  const Address line_addr = align_down(address, config_.line_bytes);
  const std::uint32_t set = set_of(line_addr);
  const Address tag = line_addr >> line_shift_;
  const std::size_t base = std::size_t{set} * ways_;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    const Way& way = ways_storage_[base + w];
    if (way.valid && way.tag == tag) return true;
  }
  return false;
}

bool SetAssocCache::is_dirty(Address address) const {
  const Address line_addr = align_down(address, config_.line_bytes);
  const std::uint32_t set = set_of(line_addr);
  const Address tag = line_addr >> line_shift_;
  const std::size_t base = std::size_t{set} * ways_;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    const Way& way = ways_storage_[base + w];
    if (way.valid && way.tag == tag) return way.dirty_mask != 0;
  }
  return false;
}

std::vector<std::pair<Address, std::uint64_t>> SetAssocCache::flush() {
  std::vector<std::pair<Address, std::uint64_t>> dirty;
  for (std::uint32_t set = 0; set < sets_; ++set) {
    const std::size_t base = std::size_t{set} * ways_;
    for (std::uint32_t w = 0; w < ways_; ++w) {
      Way& way = ways_storage_[base + w];
      if (way.valid && way.dirty_mask != 0) {
        dirty.emplace_back(way.tag << line_shift_,
                           dirty_bytes(way.dirty_mask));
      }
      way = Way{};
    }
  }
  valid_count_ = 0;
  return dirty;
}

}  // namespace hms::cache
