#include "hms/cache/set_assoc_cache.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>

#if HMS_HAVE_AVX512_KERNEL
#include <immintrin.h>
#endif

#include "hms/common/bitops.hpp"
#include "hms/common/error.hpp"

namespace hms::cache {

#if HMS_HAVE_AVX512_KERNEL
namespace {
/// One-time cpuid gate for the vector kernel. HMS_NO_AVX512=1 forces the
/// scalar kernel, so both variants can be A/B-tested on capable hosts.
const bool kUseAvx512 = [] {
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512bw") != 0 &&
         __builtin_cpu_supports("avx512dq") != 0 &&
         __builtin_cpu_supports("avx512vl") != 0 &&
         std::getenv("HMS_NO_AVX512") == nullptr;
}();
}  // namespace
#endif

bool avx512_kernel_active() noexcept {
#if HMS_HAVE_AVX512_KERNEL
  return kUseAvx512;
#else
  return false;
#endif
}

SetAssocCache::SetAssocCache(CacheConfig config)
    : config_(std::move(config)), rng_(config_.policy_seed) {
  check_config(config_.capacity_bytes > 0, "cache: capacity must be positive");
  check_config(is_pow2(config_.line_bytes),
               "cache: line size must be a power of two");
  // AccessOutcome::writeback_bytes is 32-bit (register-return layout).
  check_config(config_.line_bytes <= 0xffffffffULL,
               "cache: line size must fit in 32 bits");
  check_config(config_.capacity_bytes % config_.line_bytes == 0,
               "cache: capacity must be a multiple of the line size");
  const std::uint64_t total_lines = config_.capacity_bytes / config_.line_bytes;
  const std::uint64_t ways64 =
      config_.associativity == 0 ? total_lines : config_.associativity;
  check_config(ways64 > 0 && ways64 <= total_lines,
               "cache: associativity exceeds number of lines");
  check_config(total_lines % ways64 == 0,
               "cache: lines must divide evenly into sets");
  const std::uint64_t sets64 = total_lines / ways64;
  check_config(is_pow2(sets64), "cache: number of sets must be a power of two");
  check_config(sets64 <= 0xffffffffULL && ways64 <= 0xffffffffULL,
               "cache: geometry too large");
  sets_ = static_cast<std::uint32_t>(sets64);
  ways_ = static_cast<std::uint32_t>(ways64);
  set_mask_ = sets_ - 1;
  line_shift_ = log2_exact(config_.line_bytes);
  if (config_.sector_bytes != 0) {
    check_config(is_pow2(config_.sector_bytes),
                 "cache: sector size must be a power of two");
    check_config(config_.sector_bytes <= config_.line_bytes,
                 "cache: sector larger than line");
    check_config(config_.line_bytes / config_.sector_bytes <= 64,
                 "cache: more than 64 sectors per line");
  }
  const std::size_t n = std::size_t{sets_} * ways_;
  tags_.assign(n, kInvalidTag);
  dirty_.assign(n, 0);
  flags_.assign(n, 0);
  // Inline replacement engine: allocate only the state the policy reads.
  // Semantics mirror the reference ReplacementPolicy classes bit for bit.
  switch (config_.policy) {
    case PolicyKind::LRU:
    case PolicyKind::FIFO:
      stamps_.assign(n, 0);
      break;
    case PolicyKind::TreePLRU:
      check_config(is_pow2(ways_),
                   "TreePLRU requires power-of-two associativity");
      plru_levels_ = log2_exact(ways_);
      meta8_.assign(std::size_t{sets_} * (ways_ - 1), 0);
      break;
    case PolicyKind::SRRIP:
      meta8_.assign(n, 3);  // kMaxRrpv: "distant" re-reference prediction
      break;
    case PolicyKind::Random:
      break;
  }
}

std::uint32_t SetAssocCache::set_of(Address line_addr) const noexcept {
  return static_cast<std::uint32_t>((line_addr >> line_shift_) & set_mask_);
}

std::uint64_t SetAssocCache::sector_mask(Address address,
                                         std::uint64_t size) const noexcept {
  if (config_.sector_bytes == 0) return ~std::uint64_t{0};
  const std::uint64_t offset = address & (config_.line_bytes - 1);
  const std::uint64_t first = offset / config_.sector_bytes;
  const std::uint64_t last = (offset + size - 1) / config_.sector_bytes;
  const std::uint64_t width = last - first + 1;
  const std::uint64_t ones =
      width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
  return ones << first;
}

std::uint64_t SetAssocCache::dirty_bytes(std::uint64_t mask) const noexcept {
  if (config_.sector_bytes == 0) return config_.line_bytes;
  return static_cast<std::uint64_t>(std::popcount(mask)) *
         config_.sector_bytes;
}

/// Flips the tree bits along the way's root path to point away from it
/// (same update as the reference TreePlruPolicy).
void SetAssocCache::plru_touch(std::uint32_t set, std::uint32_t way) {
  const std::size_t base = std::size_t{set} * (ways_ - 1);
  std::size_t node = way + (ways_ - 1);  // leaf index in implicit tree
  while (node != 0) {
    const std::size_t parent = (node - 1) / 2;
    const bool went_right = (node == 2 * parent + 2);
    meta8_[base + parent] = went_right ? 0 : 1;
    node = parent;
  }
}

template <PolicyKind K>
void SetAssocCache::policy_touch(std::uint32_t set, std::size_t base,
                                 std::uint32_t way) {
  if constexpr (K == PolicyKind::LRU) {
    stamps_[base + way] = ++clock_;
  } else if constexpr (K == PolicyKind::TreePLRU) {
    plru_touch(set, way);
  } else if constexpr (K == PolicyKind::SRRIP) {
    meta8_[base + way] = 0;  // hit promotion
  } else {
    (void)set;
    (void)base;
    (void)way;  // FIFO, Random: hits do not update state
  }
}

template <PolicyKind K>
void SetAssocCache::policy_insert(std::uint32_t set, std::size_t base,
                                  std::uint32_t way) {
  if constexpr (K == PolicyKind::LRU || K == PolicyKind::FIFO) {
    stamps_[base + way] = ++clock_;
  } else if constexpr (K == PolicyKind::TreePLRU) {
    plru_touch(set, way);
  } else if constexpr (K == PolicyKind::SRRIP) {
    meta8_[base + way] = 2;  // kMaxRrpv - 1: "long" interval
  } else {
    (void)set;
    (void)base;
    (void)way;  // Random: insertion does not update state
  }
}

template <PolicyKind K, unsigned W>
std::uint32_t SetAssocCache::policy_victim(std::uint32_t set,
                                           std::size_t base) {
  if constexpr (K == PolicyKind::LRU || K == PolicyKind::FIFO) {
    // Stamps of a full set are unique (global monotone clock), so the
    // argmin over (stamp << 8 | way) selects the same way as the reference
    // scan-from-way-0 strict-min — but packing lets the reduction run
    // without tracking an index, and for compile-time W it unrolls into a
    // log-depth pairwise tree instead of a serial compare chain.
    const std::uint64_t* stamps = stamps_.data() + base;
    if constexpr (W != 0) {
      static_assert((W & (W - 1)) == 0 && W <= 256);
      std::uint64_t packed[W];
      for (unsigned w = 0; w < W; ++w) {
        packed[w] = (stamps[w] << 8) | w;
      }
      for (unsigned stride = W / 2; stride != 0; stride /= 2) {
        for (unsigned w = 0; w < stride; ++w) {
          packed[w] = std::min(packed[w], packed[w + stride]);
        }
      }
      return static_cast<std::uint32_t>(packed[0] & 0xff);
    } else {
      // Runtime way count: branchless conditional-move min-scan (the
      // victim position is data-dependent, a branchy scan mispredicts).
      std::uint32_t victim = 0;
      std::uint64_t oldest = stamps[0];
      for (std::uint32_t w = 1; w < ways_; ++w) {
        const bool older = stamps[w] < oldest;
        victim = older ? w : victim;
        oldest = older ? stamps[w] : oldest;
      }
      return victim;
    }
  } else if constexpr (K == PolicyKind::Random) {
    (void)set;
    return static_cast<std::uint32_t>(rng_.below(ways_));
  } else if constexpr (K == PolicyKind::TreePLRU) {
    const std::size_t tree = std::size_t{set} * (ways_ - 1);
    const unsigned levels = W != 0 ? std::countr_zero(W) : plru_levels_;
    std::size_t node = 0;
    for (unsigned level = 0; level < levels; ++level) {
      const std::uint8_t bit = meta8_[tree + node];
      node = 2 * node + 1 + bit;  // follow the cold direction
    }
    return static_cast<std::uint32_t>(node - (ways_ - 1));
  } else {  // SRRIP (Jaleel et al., ISCA'10), 2-bit RRPVs
    const std::uint32_t ways = W != 0 ? W : ways_;
    std::uint8_t* rrpv = meta8_.data() + base;
    while (true) {
      if (ways <= 64) {
        // Bitmask pass: byte compares have no cross-way dependency, and
        // the first distant way falls out of one count-trailing-zeros.
        std::uint64_t distant = 0;
        for (std::uint32_t w = 0; w < ways; ++w) {
          distant |= std::uint64_t{rrpv[w] == 3} << w;
        }
        if (distant != 0) {
          return static_cast<std::uint32_t>(std::countr_zero(distant));
        }
      } else {  // highly associative (e.g. fully associative) sets
        for (std::uint32_t w = 0; w < ways; ++w) {
          if (rrpv[w] == 3) return w;
        }
      }
      for (std::uint32_t w = 0; w < ways; ++w) ++rrpv[w];
    }
  }
}

template <PolicyKind K, unsigned W>
AccessOutcome SetAssocCache::access_kernel(Address address, std::uint64_t size,
                                           AccessType type, bool prefetch) {
  check(size > 0, "cache: zero-size access");
  // Same-line test in one xor+shift: the first and last byte share a line
  // iff their tag bits agree.
  check(((address ^ (address + size - 1)) >> line_shift_) == 0,
        "cache: access straddles a line boundary");
  const std::uint32_t ways = W != 0 ? W : ways_;
  const Address tag = address >> line_shift_;
  const auto set = static_cast<std::uint32_t>(tag & set_mask_);
  const std::size_t base = std::size_t{set} * ways;
  Address* tags = tags_.data() + base;
  std::uint8_t* flags = flags_.data() + base;

  // Pull the set's dirty row in while the probe and victim scans run: the
  // victim's mask load otherwise serializes behind the argmin (the row
  // address is known now, the element index only after the reduction).
  {
    const char* dirty_row = reinterpret_cast<const char*>(dirty_.data() + base);
    for (std::uint32_t off = 0; off < ways * sizeof(std::uint64_t);
         off += 64) {
      __builtin_prefetch(dirty_row + off, 1, 3);
    }
  }

  AccessOutcome outcome;
  // Lookup: one branchless pass over the set's contiguous tags. Validity is
  // encoded in the tags (kInvalidTag), so this touches no other array. The
  // hit position is effectively random, so an early-exit loop mispredicts
  // constantly; building bitmasks instead keeps every per-way compare
  // independent, and the matching/first-free way each fall out of one
  // count-trailing-zeros.
  std::uint32_t hit_way;
  std::uint32_t invalid_way;
  if (ways <= 64) {
    std::uint64_t match = 0;
    std::uint64_t free_ways = 0;
    for (std::uint32_t w = 0; w < ways; ++w) {
      const Address t = tags[w];
      match |= std::uint64_t{t == tag} << w;
      free_ways |= std::uint64_t{t == kInvalidTag} << w;
    }
    hit_way = match != 0
                  ? static_cast<std::uint32_t>(std::countr_zero(match))
                  : ways;
    invalid_way =
        free_ways != 0
            ? static_cast<std::uint32_t>(std::countr_zero(free_ways))
            : ways;
  } else {  // highly associative sets: conditional-move reverse scan
    hit_way = ways;
    invalid_way = ways;
    for (std::uint32_t w = ways; w-- > 0;) {
      const Address t = tags[w];
      hit_way = (t == tag) ? w : hit_way;
      invalid_way = (t == kInvalidTag) ? w : invalid_way;
    }
  }
  const bool is_store = type == AccessType::Store;

  if (hit_way != ways) {
    outcome.hit = true;
    if (prefetch) return outcome;  // already resident: no-op
    // has_prefetched_lines_ gates the flags_ load: without a prefetcher the
    // flag can never be set, so skip touching a cold array entirely.
    if (has_prefetched_lines_ && (flags[hit_way] & kPrefetched)) {
      flags[hit_way] = 0;
      outcome.prefetched_hit = true;
      ++stats_.prefetch_useful;
    }
    // Counter selected by cmov; the dirty-mask merge is unconditional (a
    // load merges zero bits), so the load/store mix costs no branch.
    ++*(is_store ? &stats_.store_hits : &stats_.load_hits);
    dirty_[base + hit_way] |= is_store ? sector_mask(address, size) : 0;
    policy_touch<K>(set, base, hit_way);
    return outcome;
  }

  // Miss: allocate (write-allocate policy for loads and stores alike).
  if (prefetch) {
    ++stats_.prefetch_fills;
  } else {
    ++*(is_store ? &stats_.store_misses : &stats_.load_misses);
  }
  std::uint32_t victim_way = invalid_way;
  if (victim_way == ways) {
    victim_way = policy_victim<K, W>(set, base);
    outcome.evicted = true;
    ++stats_.evictions;
    outcome.victim_address = tags[victim_way] << line_shift_;
    // Dirty-victim bookkeeping without a branch: whether the victim needs a
    // write-back is as unpredictable as the store mix.
    const std::uint64_t victim_mask = dirty_[base + victim_way];
    const bool writeback = victim_mask != 0;
    outcome.writeback = writeback;
    outcome.writeback_bytes =
        writeback ? static_cast<std::uint32_t>(dirty_bytes(victim_mask)) : 0;
    stats_.writebacks += writeback ? 1 : 0;
  } else {
    ++valid_count_;
  }
  tags[victim_way] = tag;
  dirty_[base + victim_way] =
      (!prefetch && type == AccessType::Store) ? sector_mask(address, size)
                                               : 0;
  if (prefetch) {
    flags[victim_way] = kPrefetched;
    has_prefetched_lines_ = true;
  } else if (has_prefetched_lines_) {
    flags[victim_way] = 0;
  }
  policy_insert<K>(set, base, victim_way);
  return outcome;
}

#if HMS_HAVE_AVX512_KERNEL
template <PolicyKind K, unsigned W>
HMS_TARGET_AVX512 AccessOutcome SetAssocCache::access_kernel_simd(
    Address address, std::uint64_t size, AccessType type, bool prefetch) {
  static_assert(W == 8 || W == 16, "vector kernel covers 8/16-way sets");
  check(size > 0, "cache: zero-size access");
  check(((address ^ (address + size - 1)) >> line_shift_) == 0,
        "cache: access straddles a line boundary");
  const Address tag = address >> line_shift_;
  const auto set = static_cast<std::uint32_t>(tag & set_mask_);
  const std::size_t base = std::size_t{set} * W;
  Address* tags = tags_.data() + base;
  std::uint8_t* flags = flags_.data() + base;

  // Same eager dirty-row pull as the scalar kernel (see there).
  {
    const char* dirty_row = reinterpret_cast<const char*>(dirty_.data() + base);
    for (std::uint32_t off = 0; off < W * sizeof(std::uint64_t); off += 64) {
      __builtin_prefetch(dirty_row + off, 1, 3);
    }
  }

  AccessOutcome outcome;
  // Probe: the whole set's tags in one or two 512-bit compares; the hit and
  // first-free masks come straight out of the k-registers.
  const __m512i vtag = _mm512_set1_epi64(static_cast<long long>(tag));
  const __m512i vinv = _mm512_set1_epi64(-1);  // kInvalidTag
  const __m512i row0 = _mm512_loadu_si512(tags);
  auto match = static_cast<std::uint32_t>(_mm512_cmpeq_epi64_mask(row0, vtag));
  auto free_ways =
      static_cast<std::uint32_t>(_mm512_cmpeq_epi64_mask(row0, vinv));
  if constexpr (W == 16) {
    const __m512i row1 = _mm512_loadu_si512(tags + 8);
    match |= static_cast<std::uint32_t>(_mm512_cmpeq_epi64_mask(row1, vtag))
             << 8;
    free_ways |=
        static_cast<std::uint32_t>(_mm512_cmpeq_epi64_mask(row1, vinv)) << 8;
  }
  const bool is_store = type == AccessType::Store;

  if (match != 0) {
    const auto hit_way = static_cast<std::uint32_t>(std::countr_zero(match));
    outcome.hit = true;
    if (prefetch) return outcome;  // already resident: no-op
    if (has_prefetched_lines_ && (flags[hit_way] & kPrefetched)) {
      flags[hit_way] = 0;
      outcome.prefetched_hit = true;
      ++stats_.prefetch_useful;
    }
    ++*(is_store ? &stats_.store_hits : &stats_.load_hits);
    dirty_[base + hit_way] |= is_store ? sector_mask(address, size) : 0;
    policy_touch<K>(set, base, hit_way);
    return outcome;
  }

  if (prefetch) {
    ++stats_.prefetch_fills;
  } else {
    ++*(is_store ? &stats_.store_misses : &stats_.load_misses);
  }
  std::uint32_t victim_way;
  if (free_ways != 0) {
    victim_way = static_cast<std::uint32_t>(std::countr_zero(free_ways));
    ++valid_count_;
  } else {
    if constexpr (K == PolicyKind::LRU || K == PolicyKind::FIFO) {
      // Vector form of the packed argmin: unique stamps make
      // min(stamp << 8 | way) pick the reference victim (see scalar kernel).
      const std::uint64_t* stamps = stamps_.data() + base;
      const __m512i iota0 = _mm512_set_epi64(7, 6, 5, 4, 3, 2, 1, 0);
      __m512i packed = _mm512_or_si512(
          _mm512_slli_epi64(_mm512_loadu_si512(stamps), 8), iota0);
      if constexpr (W == 16) {
        const __m512i iota1 = _mm512_set_epi64(15, 14, 13, 12, 11, 10, 9, 8);
        const __m512i hi = _mm512_or_si512(
            _mm512_slli_epi64(_mm512_loadu_si512(stamps + 8), 8), iota1);
        packed = _mm512_min_epu64(packed, hi);
      }
      victim_way =
          static_cast<std::uint32_t>(_mm512_reduce_min_epu64(packed) & 0xff);
    } else {
      victim_way = policy_victim<K, W>(set, base);
    }
    outcome.evicted = true;
    ++stats_.evictions;
    outcome.victim_address = tags[victim_way] << line_shift_;
    const std::uint64_t victim_mask = dirty_[base + victim_way];
    const bool writeback = victim_mask != 0;
    outcome.writeback = writeback;
    outcome.writeback_bytes =
        writeback ? static_cast<std::uint32_t>(dirty_bytes(victim_mask)) : 0;
    stats_.writebacks += writeback ? 1 : 0;
  }
  tags[victim_way] = tag;
  dirty_[base + victim_way] =
      (!prefetch && type == AccessType::Store) ? sector_mask(address, size)
                                               : 0;
  if (prefetch) {
    flags[victim_way] = kPrefetched;
    has_prefetched_lines_ = true;
  } else if (has_prefetched_lines_) {
    flags[victim_way] = 0;
  }
  policy_insert<K>(set, base, victim_way);
  return outcome;
}
#endif  // HMS_HAVE_AVX512_KERNEL

template <PolicyKind K>
AccessOutcome SetAssocCache::dispatch_ways(Address address, std::uint64_t size,
                                           AccessType type, bool prefetch) {
#if HMS_HAVE_AVX512_KERNEL
  // Vector kernel first on capable hosts: 8/16-way sets probe in one or two
  // 512-bit compares. The branch is perfectly predictable (the gate never
  // changes after startup).
  if (kUseAvx512) {
    switch (ways_) {
      case 8:
        return access_kernel_simd<K, 8>(address, size, type, prefetch);
      case 16:
        return access_kernel_simd<K, 16>(address, size, type, prefetch);
      default:
        break;
    }
  }
#endif
  // Common associativities get kernels with the way count baked in: the
  // probe and victim scans fully unroll, and the argmin reduction becomes
  // a log-depth tree instead of a loop-carried compare chain.
  switch (ways_) {
    case 4:
      return access_kernel<K, 4>(address, size, type, prefetch);
    case 8:
      return access_kernel<K, 8>(address, size, type, prefetch);
    case 16:
      return access_kernel<K, 16>(address, size, type, prefetch);
    case 32:
      return access_kernel<K, 32>(address, size, type, prefetch);
    default:
      return access_kernel<K, 0>(address, size, type, prefetch);
  }
}

AccessOutcome SetAssocCache::access(Address address, std::uint64_t size,
                                    AccessType type, bool prefetch) {
  // One predictable dispatch per access; each kernel instantiation inlines
  // its policy's metadata updates into the probe/fill paths.
  switch (config_.policy) {
    case PolicyKind::LRU:
      return dispatch_ways<PolicyKind::LRU>(address, size, type, prefetch);
    case PolicyKind::TreePLRU:
      return dispatch_ways<PolicyKind::TreePLRU>(address, size, type,
                                                 prefetch);
    case PolicyKind::FIFO:
      return dispatch_ways<PolicyKind::FIFO>(address, size, type, prefetch);
    case PolicyKind::Random:
      return dispatch_ways<PolicyKind::Random>(address, size, type, prefetch);
    case PolicyKind::SRRIP:
      return dispatch_ways<PolicyKind::SRRIP>(address, size, type, prefetch);
  }
  throw Error("cache: unhandled policy kind");
}

bool SetAssocCache::contains(Address address) const {
  const Address line_addr = align_down(address, config_.line_bytes);
  const std::uint32_t set = set_of(line_addr);
  const Address tag = line_addr >> line_shift_;
  const std::size_t base = std::size_t{set} * ways_;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (tags_[base + w] == tag) return true;
  }
  return false;
}

bool SetAssocCache::is_dirty(Address address) const {
  const Address line_addr = align_down(address, config_.line_bytes);
  const std::uint32_t set = set_of(line_addr);
  const Address tag = line_addr >> line_shift_;
  const std::size_t base = std::size_t{set} * ways_;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (tags_[base + w] == tag) return dirty_[base + w] != 0;
  }
  return false;
}

void SetAssocCache::flush(
    const std::function<void(Address, std::uint64_t)>& sink) {
  const std::size_t n = std::size_t{sets_} * ways_;
  for (std::size_t i = 0; i < n; ++i) {
    if (tags_[i] != kInvalidTag && dirty_[i] != 0) {
      sink(tags_[i] << line_shift_, dirty_bytes(dirty_[i]));
    }
    tags_[i] = kInvalidTag;
    dirty_[i] = 0;
    flags_[i] = 0;
  }
  valid_count_ = 0;
}

std::vector<std::pair<Address, std::uint64_t>> SetAssocCache::flush() {
  std::vector<std::pair<Address, std::uint64_t>> dirty;
  // Dirty lines are a subset of resident lines; occupancy bounds the size.
  dirty.reserve(static_cast<std::size_t>(valid_count_));
  flush([&dirty](Address address, std::uint64_t bytes) {
    dirty.emplace_back(address, bytes);
  });
  return dirty;
}

}  // namespace hms::cache
