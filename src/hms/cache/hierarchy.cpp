#include "hms/cache/hierarchy.hpp"

#include <algorithm>

#include "hms/common/bitops.hpp"
#include "hms/common/error.hpp"
#include "hms/common/fault.hpp"

namespace hms::cache {

std::vector<LevelProfile> SingleMemoryBackend::profiles() const {
  LevelProfile p;
  p.name = device_.config().name;
  p.tech = device_.technology();
  p.capacity_bytes = device_.config().modeled_capacity_bytes != 0
                         ? device_.config().modeled_capacity_bytes
                         : device_.config().capacity_bytes;
  p.loads = device_.stats().reads;
  p.stores = device_.stats().writes + device_.stats().migration_writes;
  p.load_bytes = device_.stats().read_bytes;
  p.store_bytes = device_.stats().write_bytes;
  p.is_cache = false;
  return {p};
}

HierarchyProfile HierarchyProfile::combine(const HierarchyProfile& front,
                                           const HierarchyProfile& back) {
  HierarchyProfile merged;
  merged.levels = front.levels;
  merged.levels.insert(merged.levels.end(), back.levels.begin(),
                       back.levels.end());
  merged.references = front.references;
  return merged;
}

MemoryHierarchy::MemoryHierarchy(std::vector<CacheLevelSpec> levels,
                                 std::unique_ptr<MemoryBackend> backend)
    : backend_(std::move(backend)) {
  check(backend_ != nullptr, "MemoryHierarchy: backend required");
  levels_.reserve(levels.size());
  for (auto& spec : levels) {
    levels_.emplace_back(std::move(spec));
  }
  // Line sizes must not shrink downstream: a fetch of the upstream line must
  // fit in one downstream line (otherwise fills would straddle lines).
  for (std::size_t i = 1; i < levels_.size(); ++i) {
    check_config(levels_[i].cache.config().line_bytes >=
                     levels_[i - 1].cache.config().line_bytes,
                 "MemoryHierarchy: line size must be non-decreasing "
                 "downstream");
  }
  // ~512 KiB approximates a host private-cache budget: smaller tag stores
  // stay resident and gain nothing from explicit prefetch hints.
  constexpr std::size_t kPrefetchMetadataFloor = 512u << 10;
  for (const auto& level : levels_) {
    if (level.cache.metadata_bytes() >= kPrefetchMetadataFloor) {
      prefetch_worthy_.push_back(&level.cache);
    }
  }
  if (auto* single = dynamic_cast<SingleMemoryBackend*>(backend_.get())) {
    single_device_ = &single->device();
  }
}

const SetAssocCache& MemoryHierarchy::level(std::size_t i) const {
  check(i < levels_.size(), "MemoryHierarchy: level index out of range");
  return levels_[i].cache;
}

void MemoryHierarchy::access(const trace::MemoryAccess& a) { access_one(a); }

void MemoryHierarchy::access_batch(std::span<const trace::MemoryAccess> batch) {
  HMS_FAULT_POINT("cache/access_batch");
  // Knowing the stream ahead of time is what the batch interface buys:
  // pull oversized levels' set metadata for the access kLookahead slots
  // out into host cache before the demand probe reaches it. Levels whose
  // metadata fits the host's private caches are skipped — for them the
  // hint is pure overhead (prefetch_worthy_, fixed at construction).
  constexpr std::size_t kLookahead = 8;
  const std::size_t n = batch.size();
  if (prefetch_worthy_.empty()) {
    for (const auto& a : batch) access_one(a);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kLookahead < n) {
      const Address future = batch[i + kLookahead].address;
      for (const auto* c : prefetch_worthy_) c->prefetch_set(future);
    }
    access_one(batch[i]);
  }
}

void MemoryHierarchy::access_one(const trace::MemoryAccess& a) {
  check(a.size > 0, "MemoryHierarchy: zero-size access");
  if (levels_.empty()) {
    ++references_;
    if (a.type == AccessType::Store) {
      backend_->store(a.address, a.size);
    } else {
      backend_->load(a.address, a.size);
    }
    return;
  }
  const std::uint64_t line = levels_.front().cache.config().line_bytes;
  // Fast path: the reference sits inside one first-level line (the common
  // case for word-sized accesses), so skip the split loop's arithmetic.
  if ((a.address & (line - 1)) + a.size <= line) {
    ++references_;
    access_level(0, a.address, a.size, a.type);
    return;
  }
  Address addr = a.address;
  std::uint64_t remaining = a.size;
  while (remaining > 0) {
    const Address line_end = align_down(addr, line) + line;
    const std::uint64_t chunk =
        std::min<std::uint64_t>(remaining, line_end - addr);
    ++references_;
    access_level(0, addr, chunk, a.type);
    addr += chunk;
    remaining -= chunk;
  }
}

void MemoryHierarchy::access_level(std::size_t i, Address address,
                                   std::uint64_t size, AccessType type,
                                   bool from_prefetch) {
  if (i == levels_.size()) {
    if (single_device_ != nullptr) {
      // Single-device backends bypass the vtable (same calls the virtual
      // SingleMemoryBackend overrides would make).
      if (type == AccessType::Store) {
        single_device_->write(address, size);
      } else {
        single_device_->read(address, size);
      }
    } else if (type == AccessType::Store) {
      backend_->store(address, size);
    } else {
      backend_->load(address, size);
    }
    return;
  }
  Level& level = levels_[i];
  // Counter pair selected by cmov: the load/store mix is data-dependent.
  const bool counts_store = type == AccessType::Store;
  ++*(counts_store ? &level.stores : &level.loads);
  *(counts_store ? &level.store_bytes : &level.load_bytes) += size;
  const AccessOutcome outcome = level.cache.access(address, size, type);
  if (!outcome.hit) {
    // Allocate-on-miss: fetch the full line from the next level (counted as
    // a load there regardless of the triggering access type; paper §III.B:
    // "every other access to fetch a cache line is counted as a read").
    const std::uint64_t line = level.cache.config().line_bytes;
    access_level(i + 1, align_down(address, line), line, AccessType::Load,
                 from_prefetch);
  }
  if (outcome.writeback) {
    access_level(i + 1, outcome.victim_address, outcome.writeback_bytes,
                 AccessType::Store, from_prefetch);
  }
  // Trigger on demand misses and on demand hits of prefetched lines
  // (tagged prefetching), so streaming patterns sustain a prefetch chain.
  if ((!outcome.hit || outcome.prefetched_hit) && !from_prefetch &&
      level.prefetch.kind != PrefetcherConfig::Kind::None) {
    run_prefetcher(i, align_down(address, level.cache.config().line_bytes));
  }
}

void MemoryHierarchy::run_prefetcher(std::size_t i, Address line_addr) {
  Level& level = levels_[i];
  const std::uint64_t line = level.cache.config().line_bytes;

  std::int64_t stride = static_cast<std::int64_t>(line);
  bool issue = true;
  if (level.prefetch.kind == PrefetcherConfig::Kind::Stride) {
    // Global stride detector: issue only when two consecutive trigger
    // events (demand misses or tagged prefetched-hits) repeat the stride.
    const std::int64_t observed =
        level.have_miss ? static_cast<std::int64_t>(line_addr) -
                              static_cast<std::int64_t>(level.last_miss)
                        : 0;
    issue = level.have_miss && observed != 0 &&
            observed == level.last_stride;
    stride = observed;
    level.last_stride = observed;
    level.last_miss = line_addr;
    level.have_miss = true;
    if (!issue) return;
  }

  for (std::uint32_t d = 1; d <= level.prefetch.degree; ++d) {
    const std::int64_t target = static_cast<std::int64_t>(line_addr) +
                                stride * static_cast<std::int64_t>(d);
    if (target < 0) break;
    const Address paddr = static_cast<Address>(target);
    const AccessOutcome outcome =
        level.cache.access(paddr, line, AccessType::Load, /*prefetch=*/true);
    if (!outcome.hit) {
      access_level(i + 1, paddr, line, AccessType::Load,
                   /*from_prefetch=*/true);
    }
    if (outcome.writeback) {
      access_level(i + 1, outcome.victim_address, outcome.writeback_bytes,
                   AccessType::Store, /*from_prefetch=*/true);
    }
  }
}

void MemoryHierarchy::flush() {
  // Sink-callback flush: dirty lines stream straight downstream without an
  // intermediate vector per level. The callback only touches levels > i.
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    levels_[i].cache.flush([this, i](Address address, std::uint64_t bytes) {
      access_level(i + 1, address, bytes, AccessType::Store);
    });
  }
}

HierarchyProfile MemoryHierarchy::profile() const {
  HierarchyProfile p;
  p.references = references_;
  for (const auto& level : levels_) {
    LevelProfile lp;
    lp.name = level.cache.config().name;
    lp.tech = level.tech;
    lp.capacity_bytes = level.cache.config().modeled_capacity_bytes != 0
                            ? level.cache.config().modeled_capacity_bytes
                            : level.cache.config().capacity_bytes;
    lp.loads = level.loads;
    lp.stores = level.stores;
    lp.load_bytes = level.load_bytes;
    lp.store_bytes = level.store_bytes;
    lp.is_cache = true;
    lp.cache_stats = level.cache.stats();
    p.levels.push_back(std::move(lp));
  }
  for (auto& mp : backend_->profiles()) {
    p.levels.push_back(std::move(mp));
  }
  return p;
}

}  // namespace hms::cache
