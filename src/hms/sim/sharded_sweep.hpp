// Decode-once sharded sweep engine.
//
// The chunk-major sweep (sim::replay_back_many) decodes each residual chunk
// once but feeds every config's back from a single thread, so an N-config
// grid is wall-clock-bound by the widest workload. This engine splits the
// config grid into shards: worker threads each own a slice of the config
// axis for one workload, consume decoded chunk batches from a shared
// per-workload ring (trace::ChunkBatchRing — refcounted, decoded at most
// once while referenced), and advance their backs at their own pace. Work
// units are (workload, config-shard) pairs; a worker that drains its own
// queue steals pending units from other workers, so finished shards pick up
// cells from other workloads instead of idling.
//
// Determinism: every back still observes the identical ordered stream a
// standalone replay_back would deliver (each back belongs to exactly one
// unit, fed chunks 0..N in order), so profiles — and therefore
// SuiteResults — are bit-identical to the chunk- and config-major modes no
// matter the thread count. Per-back stats live in the back hierarchies the
// unit owns; they are read once, after the unit's replay finishes, so the
// merge into suite results is order-independent by construction. Fault
// injection stays reproducible under worker interleaving because the
// "sim/replay_back" per-cell hits use canonical logical indices (the
// serial chunk-major order: base + workload * configs + config + 1)
// through FaultInjector::hit_at, with shard-local hit accounting merged
// into the injector's counters when the unit seals (ShardFaultAccount).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "hms/cache/hierarchy.hpp"
#include "hms/sim/simulator.hpp"

namespace hms::sim {

/// Per-cell outcome of a sharded sweep.
struct ShardedCellOutcome {
  bool ok = false;
  /// False when make_back threw — a deterministic construction error the
  /// caller should treat as final. True for replay-stage failures, which
  /// honor the engine's bounded retries.
  bool constructed = false;
  cache::HierarchyProfile profile;  ///< combined front+back when ok
  std::string error;                ///< raw what() when !ok
  /// Per-representative extrapolations when the cell's replay was sampled
  /// (empty for full replays); feeds the experiment layer's error bars.
  std::vector<RepEstimate> reps;
};

struct ShardedSweepSpec {
  /// One front capture per workload column; index = workload slot.
  std::vector<const FrontCapture*> captures;
  /// Optional sample plan per workload column (parallel to `captures`;
  /// empty = every workload replays the full stream). A null or exact
  /// entry replays that workload fully; a non-exact plan makes every cell
  /// in the column feed only the plan's steps through the shared ring
  /// (ChunkBatchRing::get is random-access, so sampled schedules share
  /// decodes exactly like sequential ones).
  std::vector<const SamplePlan*> plans;
  /// Config rows in the grid.
  std::size_t configs = 0;
  /// Builds the back for cell (config, workload). Called concurrently from
  /// worker threads; must be thread-safe.
  std::function<std::unique_ptr<cache::MemoryHierarchy>(
      std::size_t config, std::size_t workload)>
      make_back;
  /// Worker threads (0 = auto via resolve_workers).
  unsigned threads = 0;
  /// Extra fresh-back replay attempts granted to a failed (constructed)
  /// cell, mirroring ExperimentConfig::max_retries.
  std::uint32_t max_retries = 0;
  /// Per-cell watchdog budget in milliseconds (0 = no watchdog). Each
  /// worker arms a CancellationToken deadline with this budget, re-armed
  /// per unit and after each degraded cell, and publishes it as the
  /// thread's ambient token — so a hung cell (stalled fault site, runaway
  /// replay) times out and degrades instead of hanging the sweep.
  std::uint64_t cell_timeout_ms = 0;
  /// Base delay for deterministic exponential backoff between a cell's
  /// fresh-back retry attempts (common/backoff.hpp; 0 = immediate retry).
  std::uint64_t retry_backoff_ms = 0;
  /// Seed mixed with the cell's canonical index into the backoff jitter.
  std::uint64_t backoff_seed = 0;
  /// Decoded batches each workload's ring retains (0 = auto:
  /// 2 * threads + 2 — enough that co-scheduled shards of one workload
  /// share every decode while staying a few MiB per workload).
  std::size_t ring_capacity = 0;
  /// Global "sim/replay_back" hits already taken before this sweep (the
  /// serial warm-up's); cell (c, w) takes its hit at canonical index
  /// base + w * configs + c + 1. Pass FaultInjector::active()->hits(...)
  /// or 0 when injection is inactive.
  std::uint64_t replay_fault_base = 0;
  /// Invoked exactly once per cell as its unit seals, serialized by the
  /// engine (callers may touch shared state without locking). An exception
  /// escaping the callback aborts the sweep with hms::Error after all
  /// workers join; remaining callbacks are skipped.
  std::function<void(std::size_t config, std::size_t workload,
                     ShardedCellOutcome&&)>
      on_cell;
};

/// See file comment. Settles every (config, workload) cell exactly once
/// through spec.on_cell — including under interrupt, where workers stop
/// claiming work and unclaimed cells settle as failed ("skipped:
/// interrupted"); the caller notices the interrupt flag after return and
/// aborts result assembly.
void run_sharded_sweep(const ShardedSweepSpec& spec);

}  // namespace hms::sim
