// Decode-once sharded sweep engine.
//
// The chunk-major sweep (sim::replay_back_many) decodes each residual chunk
// once but feeds every config's back from a single thread, so an N-config
// grid is wall-clock-bound by the widest workload. This engine splits the
// config grid into shards: worker threads each own a slice of the config
// axis for one workload, consume decoded chunk batches from a shared
// per-workload ring (trace::ChunkBatchRing — refcounted, decoded at most
// once while referenced), and advance their backs at their own pace. Work
// units are (workload, config-shard) pairs; a worker that drains its own
// queue steals pending units from other workers, so finished shards pick up
// cells from other workloads instead of idling.
//
// Determinism: every back still observes the identical ordered stream a
// standalone replay_back would deliver (each back belongs to exactly one
// unit, fed chunks 0..N in order), so profiles — and therefore
// SuiteResults — are bit-identical to the chunk- and config-major modes no
// matter the thread count. Per-back stats live in the back hierarchies the
// unit owns; they are read once, after the unit's replay finishes, so the
// merge into suite results is order-independent by construction. Fault
// injection stays reproducible under worker interleaving because the
// "sim/replay_back" per-cell hits use canonical logical indices (the
// serial chunk-major order: base + workload * configs + config + 1)
// through FaultInjector::hit_at, with shard-local hit accounting merged
// into the injector's counters when the unit seals (ShardFaultAccount).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "hms/cache/hierarchy.hpp"
#include "hms/sim/simulator.hpp"

namespace hms::sim {

/// Per-cell outcome of a sharded sweep.
struct ShardedCellOutcome {
  bool ok = false;
  /// False when make_back threw — a deterministic construction error the
  /// caller should treat as final. True for replay-stage failures, which
  /// honor the engine's bounded retries.
  bool constructed = false;
  /// True when the cell never ran because its workload's warm-up (the
  /// spec.warm hook) failed; `error` then carries the warm-up error
  /// verbatim, already contextualized by the warm hook.
  bool warm_failure = false;
  cache::HierarchyProfile profile;  ///< combined front+back when ok
  std::string error;                ///< raw what() when !ok
  /// Per-representative extrapolations when the cell's replay was sampled
  /// (empty for full replays); feeds the experiment layer's error bars.
  std::vector<RepEstimate> reps;
};

/// What a spec.warm hook hands back for one workload column: the settled
/// capture/plan pointers (stable for the rest of the sweep) or a non-empty
/// error when the warm-up failed.
struct ShardedWarmResult {
  const FrontCapture* capture = nullptr;
  const SamplePlan* plan = nullptr;
  std::string error;
};

struct ShardedSweepSpec {
  /// One front capture per workload column; index = workload slot. An
  /// entry may be null only when `warm` is set — the engine then warms
  /// that column on first claim (see `warm`).
  std::vector<const FrontCapture*> captures;
  /// Optional sample plan per workload column (parallel to `captures`;
  /// empty = every workload replays the full stream). A null or exact
  /// entry replays that workload fully; a non-exact plan makes every cell
  /// in the column feed only the plan's steps through the shared ring
  /// (ChunkBatchRing::get is random-access, so sampled schedules share
  /// decodes exactly like sequential ones).
  std::vector<const SamplePlan*> plans;
  /// Config rows in the grid.
  std::size_t configs = 0;
  /// Builds the back for cell (config, workload). Called concurrently from
  /// worker threads; must be thread-safe.
  std::function<std::unique_ptr<cache::MemoryHierarchy>(
      std::size_t config, std::size_t workload)>
      make_back;
  /// Worker threads (0 = auto via resolve_workers).
  unsigned threads = 0;
  /// Extra fresh-back replay attempts granted to a failed (constructed)
  /// cell, mirroring ExperimentConfig::max_retries.
  std::uint32_t max_retries = 0;
  /// Per-cell watchdog budget in milliseconds (0 = no watchdog). Each
  /// worker arms a CancellationToken deadline with this budget, re-armed
  /// per unit and after each degraded cell, and publishes it as the
  /// thread's ambient token — so a hung cell (stalled fault site, runaway
  /// replay) times out and degrades instead of hanging the sweep.
  std::uint64_t cell_timeout_ms = 0;
  /// Base delay for deterministic exponential backoff between a cell's
  /// fresh-back retry attempts (common/backoff.hpp; 0 = immediate retry).
  std::uint64_t retry_backoff_ms = 0;
  /// Seed mixed with the cell's canonical index into the backoff jitter.
  std::uint64_t backoff_seed = 0;
  /// Decoded batches each workload's ring retains (0 = auto:
  /// 2 * threads + 2 — enough that co-scheduled shards of one workload
  /// share every decode while staying a few MiB per workload).
  std::size_t ring_capacity = 0;
  /// Global "sim/replay_back" hits already taken before this sweep (the
  /// serial warm-up's); cell (c, w) takes its hit at canonical index
  /// base + w * configs + c + 1. Pass FaultInjector::active()->hits(...)
  /// or 0 when injection is inactive.
  std::uint64_t replay_fault_base = 0;
  /// Invoked exactly once per cell as its unit seals, serialized by the
  /// engine (callers may touch shared state without locking). An exception
  /// escaping the callback aborts the sweep with hms::Error after all
  /// workers join; remaining callbacks are skipped.
  std::function<void(std::size_t config, std::size_t workload,
                     ShardedCellOutcome&&)>
      on_cell;
  /// Pipelined warm-up hook (optional). When set, a column whose captures
  /// entry is null is warmed by the first worker to claim one of its
  /// units: the engine calls warm(workload) exactly once per column — from
  /// a worker thread, under that worker's watchdog token — and the other
  /// workers defer the column's units until the warm settles. A returned
  /// error (or a thrown exception) fails every cell of the column with
  /// warm_failure=true instead of running it. The returned capture/plan
  /// pointers must stay valid for the remainder of the sweep. Null = every
  /// column pre-warmed (all captures non-null).
  std::function<ShardedWarmResult(std::size_t workload)> warm;
};

/// See file comment. Settles every (config, workload) cell exactly once
/// through spec.on_cell — including under interrupt, where workers stop
/// claiming work and unclaimed cells settle as failed ("skipped:
/// interrupted"); the caller notices the interrupt flag after return and
/// aborts result assembly.
void run_sharded_sweep(const ShardedSweepSpec& spec);

}  // namespace hms::sim
