// ExperimentRunner: the harness behind every figure bench.
//
// Caches one front capture per workload (the L1-L3 pass is identical across
// all designs), evaluates design backs by replaying the residual stream,
// and aggregates per-workload normalized reports into the suite averages
// the paper's figures plot.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hms/designs/configs.hpp"
#include "hms/designs/design.hpp"
#include "hms/designs/partition.hpp"
#include "hms/model/report.hpp"
#include "hms/sim/simulator.hpp"
#include "hms/trace/trace_store.hpp"

namespace hms::sim {

/// How a sweep replays the residual stream into the config grid. All modes
/// produce bit-identical SuiteResults (every config observes the identical
/// ordered stream); they differ only in memory-traffic shape and
/// parallelism grain, so the mode is deliberately excluded from
/// experiment_hash and checkpoints resume across modes.
enum class ReplayMode : std::uint8_t {
  /// One task per workload: decode each residual chunk once and feed the
  /// batch to every pending config's back (sim::replay_back_many). The
  /// default — the compressed stream is streamed from memory once total
  /// instead of once per config.
  ChunkMajor,
  /// One task per (config, workload) cell, each replaying the full stream.
  /// Finer-grained parallelism; useful when configs far outnumber
  /// workloads and threads, or for differential testing.
  ConfigMajor,
  /// Decode-once sharded engine (sim/sharded_sweep.hpp): worker threads
  /// each own a shard of the config axis, consume shared refcounted chunk
  /// batches at their own pace, and steal pending shards across workloads.
  /// Scales with `ExperimentConfig::threads` without re-decoding or
  /// re-streaming the trace per config.
  Sharded,
};

/// Reads HMS_REPLAY_MODE: unset or "chunk" = ChunkMajor, "config" =
/// ConfigMajor, "shard" = Sharded, anything else throws ConfigError.
[[nodiscard]] ReplayMode default_replay_mode();

/// Reads HMS_CELL_TIMEOUT_MS (strict: garbage or negative values throw
/// ConfigError naming the variable and value). Unset/empty = 0 = no
/// per-cell watchdog.
[[nodiscard]] std::uint64_t default_cell_timeout_ms();

/// Reads HMS_RETRY_BACKOFF_MS (strict, like default_cell_timeout_ms).
/// Unset/empty = 25 ms base backoff; 0 disables backoff (immediate
/// retries, the pre-watchdog behavior).
[[nodiscard]] std::uint64_t default_retry_backoff_ms();

/// Reads HMS_WARMUP_THREADS (strict). Unset/empty = 0 = follow
/// ExperimentConfig::threads; an explicit 0 is rejected with ConfigError
/// (unset the variable instead).
[[nodiscard]] unsigned default_warmup_threads();

struct ExperimentConfig {
  /// Capacity scale divisor applied to every cache/DRAM size (power of 2).
  std::uint64_t scale_divisor = 64;
  /// Workload footprints = paper Table 4 footprint / footprint_divisor.
  /// Keeping both divisors equal preserves footprint/capacity ratios.
  std::uint64_t footprint_divisor = 64;
  std::uint64_t seed = 42;
  std::uint32_t iterations = 1;
  /// Workloads to evaluate; defaults to the paper suite.
  std::vector<std::string> suite;
  designs::DesignOptions design_options;
  /// Worker threads for config sweeps, and the shard count of the sharded
  /// replay mode (0 = auto: hardware concurrency, with a documented
  /// fallback of sim::kFallbackWorkers when the host cannot report it).
  unsigned threads = 0;
  /// Extra attempts granted to a failing sweep cell before it is recorded
  /// as a failure (deterministic immediate retries; useful when fault
  /// injection or flaky I/O models transient conditions).
  std::uint32_t max_retries = 0;
  /// Per-cell watchdog budget in milliseconds (0 = no watchdog). A cell
  /// that exceeds it is cancelled cooperatively and degraded with a
  /// timeout failure; surviving cells get a fresh budget. Execution-only
  /// (excluded from experiment_hash). Defaults from HMS_CELL_TIMEOUT_MS.
  std::uint64_t cell_timeout_ms = default_cell_timeout_ms();
  /// Base delay in milliseconds for the deterministic exponential backoff
  /// between a cell's retry attempts (0 = immediate retries).
  /// Execution-only. Defaults from HMS_RETRY_BACKOFF_MS.
  std::uint64_t retry_backoff_ms = default_retry_backoff_ms();
  /// When non-empty, sweeps append each fully-successful SuiteResult to
  /// this checkpoint file and a rerun with an identical experiment hash
  /// skips the configs already present (see sim/checkpoint.hpp).
  std::string checkpoint_path;
  /// Sweep replay strategy (results are identical either way; see
  /// ReplayMode). Defaults from HMS_REPLAY_MODE.
  ReplayMode replay_mode = default_replay_mode();
  /// Statistical sampling of the residual replay (sim/sampling.hpp):
  /// SimPoint mode clusters each workload's intervals once during warm-up
  /// and every cell — base replay included — feeds only the plan's
  /// representative chunks, producing weighted estimates with error bars.
  /// Orthogonal to replay_mode; result-affecting, so SimPoint (with its k
  /// and warmup) is mixed into experiment_hash. Defaults from HMS_SAMPLING.
  SamplingMode sampling = default_sampling_mode();
  /// Target cluster count per workload in SimPoint mode (>= 1). When it
  /// reaches a workload's interval count the plan degenerates to exact
  /// full replay, bit-identical to Full mode. From HMS_SAMPLE_K.
  std::uint32_t sample_k = default_sample_k();
  /// Functional-warming prefix: chunks fed warm-only before each
  /// representative so tag state is realistic while measured counters stay
  /// clean. From HMS_WARMUP_CHUNKS.
  std::uint32_t warmup_chunks = default_warmup_chunks();
  /// Worker threads for the per-workload warm-up stage (front capture +
  /// base report + sample plan): 0 = follow `threads`. The pipelined
  /// chunk/shard modes use it to cap how many warm-ups run concurrently
  /// alongside grid replay; config-major runs the warm-up as its own
  /// barriered pool. Execution-only (excluded from experiment_hash) —
  /// results are bit-identical at any value. From HMS_WARMUP_THREADS.
  unsigned warmup_threads = default_warmup_threads();
  /// Directory of the persistent CRC-checked trace store (empty = no
  /// store): sweeps look front captures up by capture hash before
  /// simulating and append fresh captures after (trace/trace_store.hpp).
  /// Execution-only (excluded from experiment_hash) — cached and fresh
  /// captures replay bit-identically. From HMS_TRACE_CACHE.
  std::string trace_cache_dir = default_trace_cache_dir();

  [[nodiscard]] workloads::WorkloadParams params_for(
      const workloads::WorkloadInfo& info) const;
};

/// Per-workload evaluation of one design configuration.
struct WorkloadResult {
  model::DesignReport report;
  model::NormalizedReport normalized;
  /// True when `report` is a sampled estimate rather than an exact replay.
  bool sampled = false;
  /// Share-weighted stddev of each normalized metric across the sample
  /// plan's representatives (all zeros when !sampled).
  MetricSpread spread;
};

/// One (config, workload) cell that could not be evaluated.
struct SuiteFailure {
  std::string workload;
  std::string error;
};

/// Suite-level (averaged) evaluation of one design configuration — one bar
/// of a paper figure.
struct SuiteResult {
  std::string config_name;
  /// Arithmetic means of per-workload normalized values (the paper's
  /// "average of normalized X of all benchmarks"). When `partial`, the
  /// means cover the surviving workloads only.
  double runtime = 1.0;
  double dynamic = 1.0;
  double leakage = 1.0;
  double total_energy = 1.0;
  double edp = 1.0;
  /// True when at least one workload cell failed and was excluded.
  bool partial = false;
  /// True when any surviving workload's result is a sampled estimate.
  bool sampled = false;
  /// Suite-level error bars: per-workload spreads combined as independent
  /// errors of the mean (sqrt of summed variances / n). All zeros when
  /// !sampled.
  MetricSpread spread;
  /// The excluded cells, with their context-chained error messages.
  std::vector<SuiteFailure> failures;
  std::vector<WorkloadResult> per_workload;  ///< survivors only
};

/// One NDM oracle evaluation for a workload.
struct NdmResult {
  std::string workload;
  designs::Placement chosen;
  WorkloadResult result;
  /// Every evaluated placement, including the all-DRAM anchor.
  std::vector<std::pair<designs::Placement, model::NormalizedReport>>
      all_placements;
};

/// One workload's warm-up products, produced off the shared caches by the
/// pipelined warm-up (ExperimentRunner::warm_workload) and settled into
/// them once a sweep's engines drain.
struct WarmedWorkload {
  FrontCapture capture;
  model::DesignReport base;
  model::ReferenceAnchor anchor;
  std::optional<SamplePlan> plan;  ///< engaged in SimPoint mode
};

/// See file comment.
class ExperimentRunner {
 public:
  explicit ExperimentRunner(ExperimentConfig config);

  [[nodiscard]] const ExperimentConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const designs::DesignFactory& factory() const noexcept {
    return factory_;
  }
  [[nodiscard]] const std::vector<std::string>& suite() const noexcept {
    return suite_;
  }

  /// Front capture for a workload (simulated on first use, then cached).
  const FrontCapture& front(const std::string& workload);

  /// Base-design report for a workload (cached).
  const model::DesignReport& base_report(const std::string& workload);

  /// The workload's sample plan: nullptr in Full mode, otherwise built
  /// once from the capture's interval profile (deterministic in the
  /// config's seed/k/warmup) and cached. The base replay uses the same
  /// plan, so estimation errors partially cancel in the normalization.
  const SamplePlan* plan_for(const std::string& workload);

  /// The Eq. 1 reference anchor for a workload (computes the base report
  /// on first use).
  const model::ReferenceAnchor& anchor(const std::string& workload);

  /// Evaluates a design back for one workload.
  [[nodiscard]] WorkloadResult evaluate_back(
      const std::string& design_name, const std::string& workload,
      cache::MemoryHierarchy& back);

  // -- Figure sweeps ------------------------------------------------------

  /// Fig. 1-2: NMM with `nvm` main memory, one SuiteResult per N config.
  [[nodiscard]] std::vector<SuiteResult> nmm_sweep(
      mem::Technology nvm, const std::vector<designs::NConfig>& configs);

  /// Fig. 3-4: 4LC with `l4` LLC, one SuiteResult per EH config.
  [[nodiscard]] std::vector<SuiteResult> four_lc_sweep(
      mem::Technology l4, const std::vector<designs::EhConfig>& configs);

  /// Fig. 5-6: 4LCNVM, one SuiteResult per EH config.
  [[nodiscard]] std::vector<SuiteResult> four_lc_nvm_sweep(
      mem::Technology l4, mem::Technology nvm,
      const std::vector<designs::EhConfig>& configs);

  /// Fig. 7-8: NDM oracle, one result per workload.
  [[nodiscard]] std::vector<NdmResult> ndm_oracle(mem::Technology nvm);

  /// Configs the most recent sweep restored from the checkpoint instead of
  /// re-simulating (0 when checkpointing is disabled).
  [[nodiscard]] std::size_t last_checkpoint_skips() const noexcept {
    return last_checkpoint_skips_;
  }

 private:
  [[nodiscard]] SuiteResult average(std::string config_name,
                                    std::vector<WorkloadResult> results) const;

  /// Turns an already-computed combined profile into a WorkloadResult
  /// (model evaluation + normalization against the workload's base). The
  /// tail of evaluate_back, shared with the chunk-major sweep path where
  /// replay_back_many produced the profiles. When `reps` is non-empty the
  /// result is a sampled estimate: each representative extrapolation is
  /// model-evaluated and normalized too, and their share-weighted stddev
  /// becomes the result's MetricSpread.
  [[nodiscard]] WorkloadResult finish_result(
      const std::string& design_name, const std::string& workload,
      const cache::HierarchyProfile& profile,
      const std::vector<RepEstimate>& reps = {});

  /// finish_result against explicit base/anchor references instead of the
  /// shared maps — the pipelined sweep calls this with per-task stable
  /// pointers while the maps are still unsettled (and skips the repeated
  /// map lookups on the hot path either way).
  [[nodiscard]] WorkloadResult finish_result(
      const std::string& design_name, const std::string& workload,
      const cache::HierarchyProfile& profile,
      const std::vector<RepEstimate>& reps, const model::DesignReport& base,
      const model::ReferenceAnchor& anchor) const;

  /// Front capture for `workload` (through the trace store when one is
  /// configured), without touching the shared maps.
  [[nodiscard]] FrontCapture capture_workload(const std::string& workload);

  /// Warms one workload entirely off the shared caches: capture + sample
  /// plan + base replay + anchor + base report. The pipelined sweep runs
  /// these concurrently and settles the products into the maps after the
  /// engines drain.
  [[nodiscard]] WarmedWorkload warm_workload(const std::string& workload);

  /// Shared sweep driver. Warm-up is pipelined: per-workload warm-ups
  /// (front capture + base report + sample plan) run across the resolved
  /// `config_.warmup_threads` workers, each settling into a per-workload
  /// slot with a single writer; the chunk-major and sharded grids start a
  /// workload's replay the moment its own warm-up seals (config-major
  /// barriers on the warm pool, since its cell tasks span workloads). The
  /// shared maps are settled serially after the engines drain. Fault
  /// armings keep their serial hit order via canonical per-slot indices
  /// (ScopedFaultIndex; DESIGN.md §5f).
  ///
  /// Grid traversal follows `config_.replay_mode`: chunk-major runs one
  /// task per workload and replays into every pending config at once
  /// (replay_back_many, with per-cell bounded retries falling back to a
  /// standalone replay); config-major runs one task per cell; sharded
  /// hands the whole pending grid to sim::run_sharded_sweep (config-shard
  /// workers over shared decode rings, work-stealing across workloads)
  /// with the same per-cell degrade/retry semantics.
  ///
  /// Resilience: cell failures are degraded into SuiteResult::failures
  /// (with warm-up failures excluding the workload from every config); a
  /// config whose every cell failed aborts the sweep with SimulationError.
  /// When `config_.checkpoint_path` is set, each complete (non-partial)
  /// SuiteResult is appended to the checkpoint as soon as its last cell
  /// finishes, and configs already checkpointed under the same
  /// `experiment_hash(config_, label)` are skipped.
  ///
  /// Watchdog & interrupts: `config_.cell_timeout_ms` arms a per-cell
  /// cooperative deadline in every mode (a timed-out cell degrades like
  /// any failed cell); a process interrupt (SIGINT/SIGTERM through
  /// ScopedSignalHandlers, or raise_interrupt) makes engines stop
  /// claiming work, lets the checkpoint keep every config completed so
  /// far (appends are fsync'd), and aborts with CancelledError(kind ==
  /// interrupt) before result assembly — callers map it to
  /// kExitInterrupted.
  template <typename Config, typename MakeBack>
  [[nodiscard]] std::vector<SuiteResult> sweep(
      const std::string& label, const std::vector<Config>& configs,
      const MakeBack& make_back);

  ExperimentConfig config_;
  designs::DesignFactory factory_;
  std::vector<std::string> suite_;
  /// Persistent capture store, or null when config_.trace_cache_dir is
  /// empty.
  std::unique_ptr<trace::TraceStore> trace_store_;
  std::map<std::string, FrontCapture> fronts_;
  std::map<std::string, model::DesignReport> base_reports_;
  std::map<std::string, model::ReferenceAnchor> anchors_;
  /// One sample plan per workload in SimPoint mode, built during warm-up
  /// and read-only for the parallel grid.
  std::map<std::string, SamplePlan> plans_;
  std::size_t last_checkpoint_skips_ = 0;
};

}  // namespace hms::sim
