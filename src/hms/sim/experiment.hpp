// ExperimentRunner: the harness behind every figure bench.
//
// Caches one front capture per workload (the L1-L3 pass is identical across
// all designs), evaluates design backs by replaying the residual stream,
// and aggregates per-workload normalized reports into the suite averages
// the paper's figures plot.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hms/designs/configs.hpp"
#include "hms/designs/design.hpp"
#include "hms/designs/partition.hpp"
#include "hms/model/report.hpp"
#include "hms/sim/simulator.hpp"

namespace hms::sim {

struct ExperimentConfig {
  /// Capacity scale divisor applied to every cache/DRAM size (power of 2).
  std::uint64_t scale_divisor = 64;
  /// Workload footprints = paper Table 4 footprint / footprint_divisor.
  /// Keeping both divisors equal preserves footprint/capacity ratios.
  std::uint64_t footprint_divisor = 64;
  std::uint64_t seed = 42;
  std::uint32_t iterations = 1;
  /// Workloads to evaluate; defaults to the paper suite.
  std::vector<std::string> suite;
  designs::DesignOptions design_options;
  /// Worker threads for config sweeps (0 = hardware concurrency).
  unsigned threads = 0;

  [[nodiscard]] workloads::WorkloadParams params_for(
      const workloads::WorkloadInfo& info) const;
};

/// Per-workload evaluation of one design configuration.
struct WorkloadResult {
  model::DesignReport report;
  model::NormalizedReport normalized;
};

/// Suite-level (averaged) evaluation of one design configuration — one bar
/// of a paper figure.
struct SuiteResult {
  std::string config_name;
  /// Arithmetic means of per-workload normalized values (the paper's
  /// "average of normalized X of all benchmarks").
  double runtime = 1.0;
  double dynamic = 1.0;
  double leakage = 1.0;
  double total_energy = 1.0;
  double edp = 1.0;
  std::vector<WorkloadResult> per_workload;
};

/// One NDM oracle evaluation for a workload.
struct NdmResult {
  std::string workload;
  designs::Placement chosen;
  WorkloadResult result;
  /// Every evaluated placement, including the all-DRAM anchor.
  std::vector<std::pair<designs::Placement, model::NormalizedReport>>
      all_placements;
};

/// See file comment.
class ExperimentRunner {
 public:
  explicit ExperimentRunner(ExperimentConfig config);

  [[nodiscard]] const ExperimentConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const designs::DesignFactory& factory() const noexcept {
    return factory_;
  }
  [[nodiscard]] const std::vector<std::string>& suite() const noexcept {
    return suite_;
  }

  /// Front capture for a workload (simulated on first use, then cached).
  const FrontCapture& front(const std::string& workload);

  /// Base-design report for a workload (cached).
  const model::DesignReport& base_report(const std::string& workload);

  /// The Eq. 1 reference anchor for a workload (computes the base report
  /// on first use).
  const model::ReferenceAnchor& anchor(const std::string& workload);

  /// Evaluates a design back for one workload.
  [[nodiscard]] WorkloadResult evaluate_back(
      const std::string& design_name, const std::string& workload,
      cache::MemoryHierarchy& back);

  // -- Figure sweeps ------------------------------------------------------

  /// Fig. 1-2: NMM with `nvm` main memory, one SuiteResult per N config.
  [[nodiscard]] std::vector<SuiteResult> nmm_sweep(
      mem::Technology nvm, const std::vector<designs::NConfig>& configs);

  /// Fig. 3-4: 4LC with `l4` LLC, one SuiteResult per EH config.
  [[nodiscard]] std::vector<SuiteResult> four_lc_sweep(
      mem::Technology l4, const std::vector<designs::EhConfig>& configs);

  /// Fig. 5-6: 4LCNVM, one SuiteResult per EH config.
  [[nodiscard]] std::vector<SuiteResult> four_lc_nvm_sweep(
      mem::Technology l4, mem::Technology nvm,
      const std::vector<designs::EhConfig>& configs);

  /// Fig. 7-8: NDM oracle, one result per workload.
  [[nodiscard]] std::vector<NdmResult> ndm_oracle(mem::Technology nvm);

 private:
  [[nodiscard]] SuiteResult average(std::string config_name,
                                    std::vector<WorkloadResult> results) const;

  /// Shared sweep driver: warms every workload's front and base report
  /// serially (they mutate the caches), then evaluates the config x
  /// workload grid with `config_.threads` workers — each task builds its
  /// own back hierarchy and only reads the shared caches.
  template <typename Config, typename MakeBack>
  [[nodiscard]] std::vector<SuiteResult> sweep(
      const std::vector<Config>& configs, const MakeBack& make_back);

  ExperimentConfig config_;
  designs::DesignFactory factory_;
  std::vector<std::string> suite_;
  std::map<std::string, FrontCapture> fronts_;
  std::map<std::string, model::DesignReport> base_reports_;
  std::map<std::string, model::ReferenceAnchor> anchors_;
};

}  // namespace hms::sim
