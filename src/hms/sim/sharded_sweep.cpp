#include "hms/sim/sharded_sweep.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "hms/common/backoff.hpp"
#include "hms/common/cancel.hpp"
#include "hms/common/error.hpp"
#include "hms/common/fault.hpp"
#include "hms/sim/parallel.hpp"
#include "hms/trace/chunk_ring.hpp"

namespace hms::sim {

namespace {

/// One work unit: a contiguous shard of the config axis for one workload.
struct Unit {
  std::size_t workload = 0;
  std::size_t config_begin = 0;
  std::size_t config_end = 0;
};

/// A cell in flight inside one unit.
struct Cell {
  std::size_t config = 0;
  std::unique_ptr<cache::MemoryHierarchy> back;
  std::unique_ptr<PlanSampler> sampler;  ///< non-null when the unit samples
  ShardedCellOutcome out;
};

/// Runs one unit to completion and returns its per-cell outcomes (index
/// i = config_begin + i). Only throws on conditions that should fail the
/// whole unit (e.g. allocation failure of the cell vector itself).
std::vector<ShardedCellOutcome> run_unit(const ShardedSweepSpec& spec,
                                         const Unit& unit,
                                         const FrontCapture& capture,
                                         const SamplePlan* plan,
                                         trace::ChunkBatchRing& ring) {
  const bool sampled = plan != nullptr && !plan->exact;
  const std::size_t n = unit.config_end - unit.config_begin;
  std::vector<Cell> cells(n);

  // Fresh watchdog budget per unit; the worker published this token as
  // the thread's ambient one, so replay internals and fault-point stalls
  // see the same deadline.
  CancellationToken* const token = CancellationToken::current();
  if (token != nullptr) token->rearm();
  bool interrupted = false;
  std::string interrupt_error;

  // Shard-local fault accounting: decisions use canonical indices so a
  // given arming fails the same cells at any thread count; the counters
  // merge into the injector when this account seals (scope exit).
  ShardFaultAccount faults;

  // Build every back first, then take the per-cell "sim/replay_back" hits
  // in config order — the same build-all-then-hit-all sequence the
  // chunk-major workload task produces serially.
  for (std::size_t i = 0; i < n; ++i) {
    Cell& cell = cells[i];
    cell.config = unit.config_begin + i;
    try {
      cell.back = spec.make_back(cell.config, unit.workload);
      cell.out.constructed = true;
    } catch (const std::exception& e) {
      cell.out.error = e.what();
    }
  }
  std::vector<std::size_t> live;
  live.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Cell& cell = cells[i];
    if (!cell.out.constructed) continue;
    if (interrupted) {
      cell.out.error = interrupt_error;
      continue;
    }
    try {
      faults.hit("sim/replay_back",
                 spec.replay_fault_base +
                     static_cast<std::uint64_t>(unit.workload) * spec.configs +
                     cell.config + 1);
      live.push_back(i);
    } catch (const CancelledError& e) {
      cell.out.error = e.what();
      if (e.kind() == CancelKind::interrupt) {
        interrupted = true;
        interrupt_error = e.what();
      } else if (token != nullptr) {
        token->rearm();  // hung cell degraded; survivors get fresh budget
      }
    } catch (const std::exception& e) {
      cell.out.error = e.what();
    }
  }

  // A sampled unit walks the plan's steps instead of the full chunk range;
  // every cell in the unit shares the schedule, so the ring still serves
  // each needed chunk decode-once across co-scheduled shards.
  if (sampled) {
    for (const std::size_t i : live) {
      cells[i].sampler = std::make_unique<PlanSampler>(*plan);
    }
  }

  // Consume the shared decode ring at this shard's own pace. A back that
  // throws mid-stream drops out alone; a decode failure fails every back
  // still in flight (the shared stream is gone for this pass).
  const std::size_t steps =
      sampled ? plan->steps.size() : capture.residual.chunk_count();
  for (std::size_t s = 0; s < steps && !live.empty() && !interrupted; ++s) {
    const SampleStep* const step = sampled ? &plan->steps[s] : nullptr;
    if (token != nullptr && token->cancelled()) {
      // Chunk-boundary cancellation has no single culprit cell: the
      // remaining column fails together (DESIGN.md §6).
      try {
        token->throw_if_cancelled("sim/sharded_replay");
      } catch (const CancelledError& e) {
        for (const std::size_t i : live) cells[i].out.error = e.what();
      }
      live.clear();
      break;
    }
    trace::DecodedBatchView batch;
    try {
      batch = ring.get(step != nullptr ? step->chunk : s);
    } catch (const std::exception& e) {
      for (const std::size_t i : live) cells[i].out.error = e.what();
      live.clear();
      break;
    }
    std::erase_if(live, [&](std::size_t i) {
      if (interrupted) return false;  // mass-failed below
      try {
        if (step != nullptr) cells[i].sampler->begin_step(*step, *cells[i].back);
        cells[i].back->access_batch(*batch);
        if (step != nullptr) cells[i].sampler->end_step(*step, *cells[i].back);
        return false;
      } catch (const CancelledError& e) {
        cells[i].out.error = e.what();
        if (e.kind() == CancelKind::interrupt) {
          interrupted = true;
          interrupt_error = e.what();
        } else if (token != nullptr) {
          token->rearm();
        }
        return true;
      } catch (const std::exception& e) {
        cells[i].out.error = e.what();
        return true;
      }
    });
    if (interrupted) {
      for (const std::size_t i : live) cells[i].out.error = interrupt_error;
      live.clear();
    }
  }
  for (const std::size_t i : live) {
    cells[i].out.ok = true;
    if (sampled) {
      cells[i].out.profile = cache::HierarchyProfile::combine(
          capture.front_profile, cells[i].sampler->estimated_back(*cells[i].back));
      cells[i].out.reps = cells[i].sampler->rep_estimates(capture.front_profile,
                                                          *cells[i].back);
    } else {
      cells[i].out.profile = cache::HierarchyProfile::combine(
          capture.front_profile, cells[i].back->profile());
    }
  }

  // Seal the shard-local tallies before any retry: retry attempts take
  // the plain global "sim/replay_back" hit (exactly like the chunk-major
  // fallback through evaluate_back), and that decision must see the fires
  // this shard just recorded or a max_fires budget would double-spend.
  faults.seal();

  // Bounded per-cell retries with a fresh back and a standalone ring-fed
  // replay (same ordered stream, so a recovered cell is bit-identical).
  // Construction failures are final — retrying a deterministic
  // ConfigError cannot help.
  for (std::size_t i = 0; i < n && !interrupted; ++i) {
    Cell& cell = cells[i];
    if (cell.out.ok || !cell.out.constructed) continue;
    const std::uint64_t cell_seed =
        spec.backoff_seed ^
        (static_cast<std::uint64_t>(unit.workload) * spec.configs +
         cell.config);
    for (std::uint32_t attempt = 0; attempt < spec.max_retries; ++attempt) {
      if (spec.retry_backoff_ms != 0) {
        const std::uint64_t delay =
            backoff_delay_ms(attempt, cell_seed, spec.retry_backoff_ms);
        if (!backoff_sleep(delay)) break;  // interrupted mid-wait
      }
      if (token != nullptr) token->rearm();  // fresh budget per attempt
      try {
        auto back = spec.make_back(cell.config, unit.workload);
        HMS_FAULT_POINT("sim/replay_back");
        // The retry walks the same schedule as the main pass (full chunks
        // or the plan's steps), so a recovered cell is bit-identical.
        std::unique_ptr<PlanSampler> retry_sampler;
        if (sampled) retry_sampler = std::make_unique<PlanSampler>(*plan);
        for (std::size_t s = 0; s < steps; ++s) {
          if (token != nullptr) {
            token->throw_if_cancelled("sim/sharded_retry");
          }
          const SampleStep* const step = sampled ? &plan->steps[s] : nullptr;
          const auto batch = ring.get(step != nullptr ? step->chunk : s);
          if (step != nullptr) retry_sampler->begin_step(*step, *back);
          back->access_batch(*batch);
          if (step != nullptr) retry_sampler->end_step(*step, *back);
        }
        cell.out.ok = true;
        if (sampled) {
          cell.out.profile = cache::HierarchyProfile::combine(
              capture.front_profile, retry_sampler->estimated_back(*back));
          cell.out.reps =
              retry_sampler->rep_estimates(capture.front_profile, *back);
        } else {
          cell.out.profile = cache::HierarchyProfile::combine(
              capture.front_profile, back->profile());
        }
        cell.out.error.clear();
        break;
      } catch (const CancelledError& e) {
        cell.out.error = e.what();
        if (e.kind() == CancelKind::interrupt) {
          interrupted = true;
          break;
        }
      } catch (const std::exception& e) {
        cell.out.error = e.what();
      }
    }
  }

  std::vector<ShardedCellOutcome> outcomes;
  outcomes.reserve(n);
  for (auto& cell : cells) outcomes.push_back(std::move(cell.out));
  return outcomes;
}

/// Warm-up lifecycle of one workload column. Pre-warmed columns start
/// Ready; a null-capture column starts NotWarmed, and the first worker to
/// claim one of its units CASes it to Warming, runs spec.warm, and settles
/// it Ready or Failed (other workers defer the column's units meanwhile).
enum class WarmStatus : int { kNotWarmed, kWarming, kReady, kFailed };

/// Per-workload-column state. `status` publishes the settle: every other
/// field is written before the Ready/Failed store (release) and only read
/// after observing it (acquire).
struct WorkloadState {
  std::atomic<int> status{static_cast<int>(WarmStatus::kReady)};
  const FrontCapture* capture = nullptr;
  const SamplePlan* plan = nullptr;
  std::unique_ptr<trace::ChunkBatchRing> ring;
  std::string error;  ///< warm-up error when Failed
};

}  // namespace

void run_sharded_sweep(const ShardedSweepSpec& spec) {
  const std::size_t width = spec.captures.size();
  if (width == 0 || spec.configs == 0) return;
  check(spec.make_back != nullptr, "run_sharded_sweep: make_back not set");
  check(spec.on_cell != nullptr, "run_sharded_sweep: on_cell not set");
  for (const auto* capture : spec.captures) {
    check(capture != nullptr || spec.warm != nullptr,
          "run_sharded_sweep: null capture without a warm hook");
  }
  check(spec.plans.empty() || spec.plans.size() == width,
        "run_sharded_sweep: plans must be empty or parallel to captures");

  const unsigned threads = resolve_workers(spec.threads);
  const std::size_t shards =
      std::min<std::size_t>(threads, spec.configs);
  const std::size_t ring_capacity =
      spec.ring_capacity != 0 ? spec.ring_capacity : 2 * threads + 2;

  // One shared decode ring per workload: concurrent shards of the same
  // workload reuse each other's decodes instead of re-decoding. Columns
  // awaiting warm-up get their ring lazily, from the warming worker.
  std::vector<WorkloadState> states(width);
  for (std::size_t l = 0; l < width; ++l) {
    if (spec.captures[l] != nullptr) {
      states[l].capture = spec.captures[l];
      states[l].plan = l < spec.plans.size() ? spec.plans[l] : nullptr;
      states[l].ring = std::make_unique<trace::ChunkBatchRing>(
          spec.captures[l]->residual, ring_capacity);
    } else {
      states[l].status.store(static_cast<int>(WarmStatus::kNotWarmed),
                             std::memory_order_relaxed);
    }
  }

  // Per-worker unit queues, workload-major round-robin: the first wave of
  // workers starts on the same workload (sharing its ring), and a worker
  // whose queue drains steals from the others.
  std::vector<std::vector<Unit>> queues(threads);
  {
    std::size_t next_worker = 0;
    for (std::size_t l = 0; l < width; ++l) {
      for (std::size_t s = 0; s < shards; ++s) {
        const std::size_t begin = s * spec.configs / shards;
        const std::size_t end = (s + 1) * spec.configs / shards;
        if (begin == end) continue;
        queues[next_worker % threads].push_back(Unit{l, begin, end});
        ++next_worker;
      }
    }
  }
  std::vector<std::atomic<std::size_t>> heads(threads);

  std::mutex settle_mutex;
  std::exception_ptr callback_error;

  // Settles one finished unit: per-cell callbacks run serialized, and the
  // first callback exception mutes the rest (rethrown after join).
  const auto settle_unit = [&](const Unit& unit,
                               std::vector<ShardedCellOutcome>&& outcomes) {
    const std::lock_guard<std::mutex> lock(settle_mutex);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      if (!callback_error) {
        try {
          spec.on_cell(unit.config_begin + i, unit.workload,
                       std::move(outcomes[i]));
        } catch (...) {
          callback_error = std::current_exception();
        }
      }
    }
  };

  // Units whose column is mid-warm-up on another worker park here; workers
  // drain the deque after their claim loops, waiting on the condvar for
  // the column to settle. The warming worker notifies after its
  // Ready/Failed store, taking the mutex first so a waiter cannot miss
  // the wakeup between its predicate check and the wait.
  std::mutex defer_mutex;
  std::condition_variable defer_cv;
  std::deque<Unit> deferred;

  // Runs a unit whose column has settled (Ready or Failed).
  const auto process_settled = [&](const Unit& unit) {
    std::vector<ShardedCellOutcome> outcomes;
    if (interrupt_signal() != 0) {
      // Keep the exactly-once settle contract under interrupt: unclaimed
      // work settles as failed cells instead of silently vanishing.
      outcomes.assign(unit.config_end - unit.config_begin,
                      ShardedCellOutcome{});
      for (auto& out : outcomes) {
        out.error = "skipped: interrupted before start";
      }
      settle_unit(unit, std::move(outcomes));
      return;
    }
    WorkloadState& st = states[unit.workload];
    if (st.status.load(std::memory_order_acquire) ==
        static_cast<int>(WarmStatus::kFailed)) {
      outcomes.assign(unit.config_end - unit.config_begin,
                      ShardedCellOutcome{});
      for (auto& out : outcomes) {
        out.warm_failure = true;
        out.error = st.error;
      }
      settle_unit(unit, std::move(outcomes));
      return;
    }
    try {
      outcomes = run_unit(spec, unit, *st.capture, st.plan, *st.ring);
    } catch (const std::exception& e) {
      // The whole unit died (e.g. out of memory): every cell fails with
      // the unit error, construction state unknown — report final.
      outcomes.assign(unit.config_end - unit.config_begin,
                      ShardedCellOutcome{});
      for (auto& out : outcomes) out.error = e.what();
    }
    settle_unit(unit, std::move(outcomes));
  };

  // Warms one column in place: called by the worker that won the
  // NotWarmed -> Warming CAS. Settles status Ready or Failed and wakes
  // any workers parked on the column's deferred units.
  const auto warm_column = [&](std::size_t workload) {
    WorkloadState& st = states[workload];
    // Fresh watchdog budget for the warm-up; the hook's capture/replay
    // runs under this worker's ambient token.
    CancellationToken* const token = CancellationToken::current();
    if (token != nullptr) token->rearm();
    ShardedWarmResult result;
    try {
      result = spec.warm(workload);
    } catch (const std::exception& e) {
      result.capture = nullptr;
      result.error = e.what();
    }
    if (result.capture != nullptr && result.error.empty()) {
      st.capture = result.capture;
      st.plan = result.plan;
      try {
        st.ring = std::make_unique<trace::ChunkBatchRing>(
            st.capture->residual, ring_capacity);
        st.status.store(static_cast<int>(WarmStatus::kReady),
                        std::memory_order_release);
      } catch (const std::exception& e) {
        st.error = e.what();
        st.status.store(static_cast<int>(WarmStatus::kFailed),
                        std::memory_order_release);
      }
    } else {
      st.error = result.error.empty()
                     ? "warm-up failed without an error message"
                     : result.error;
      st.status.store(static_cast<int>(WarmStatus::kFailed),
                      std::memory_order_release);
    }
    if (token != nullptr) token->rearm();  // fresh budget for the unit
    { const std::lock_guard<std::mutex> lock(defer_mutex); }
    defer_cv.notify_all();
  };

  const auto run_claimed = [&](const Unit& unit) {
    WorkloadState& st = states[unit.workload];
    int status = st.status.load(std::memory_order_acquire);
    if (status == static_cast<int>(WarmStatus::kNotWarmed) &&
        interrupt_signal() == 0) {
      int expected = static_cast<int>(WarmStatus::kNotWarmed);
      if (st.status.compare_exchange_strong(
              expected, static_cast<int>(WarmStatus::kWarming),
              std::memory_order_acq_rel, std::memory_order_acquire)) {
        warm_column(unit.workload);
        status = st.status.load(std::memory_order_acquire);
      } else {
        status = expected;
      }
    }
    if (status == static_cast<int>(WarmStatus::kWarming)) {
      const std::lock_guard<std::mutex> lock(defer_mutex);
      // Re-check under the lock: if the column settled since the load
      // above, fall through and run it now instead of parking.
      if (st.status.load(std::memory_order_acquire) ==
          static_cast<int>(WarmStatus::kWarming)) {
        deferred.push_back(unit);
        return;
      }
    }
    process_settled(unit);
  };

  const auto worker = [&](unsigned self) {
    // Per-worker watchdog token, published as this thread's ambient token
    // so run_unit, replay internals, and fault-point stalls all see it.
    CancellationToken token(spec.cell_timeout_ms);
    const CancelScope scope(token);
    // Drain the home queue, then steal: scan the other queues round-robin
    // and claim their next pending unit. fetch_add makes each unit claimed
    // exactly once; an overshot head just means that queue is empty.
    while (true) {
      const std::size_t i =
          heads[self].fetch_add(1, std::memory_order_relaxed);
      if (i >= queues[self].size()) break;
      run_claimed(queues[self][i]);
    }
    for (unsigned step = 1; step < threads;) {
      const unsigned victim = (self + step) % threads;
      const std::size_t i =
          heads[victim].fetch_add(1, std::memory_order_relaxed);
      if (i >= queues[victim].size()) {
        ++step;  // victim drained; move on
        continue;
      }
      run_claimed(queues[victim][i]);
    }
    // Drain deferred units. Every deferred unit was pushed by a worker
    // that reaches this loop after the push, so the deque always empties
    // before the last worker exits; the wait below terminates because the
    // warming worker settles the column (success, failure, or interrupt
    // recorded as failure) and notifies.
    while (true) {
      Unit unit;
      {
        const std::lock_guard<std::mutex> lock(defer_mutex);
        if (deferred.empty()) break;
        unit = deferred.front();
        deferred.pop_front();
      }
      WorkloadState& st = states[unit.workload];
      {
        std::unique_lock<std::mutex> lock(defer_mutex);
        defer_cv.wait(lock, [&] {
          return st.status.load(std::memory_order_acquire) !=
                 static_cast<int>(WarmStatus::kWarming);
        });
      }
      token.rearm();  // the park is not the unit's fault
      process_settled(unit);
    }
  };

  if (threads <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (auto& t : pool) t.join();
  }

  if (callback_error) {
    try {
      std::rethrow_exception(callback_error);
    } catch (const std::exception& e) {
      throw Error(with_context("run_sharded_sweep: on_cell callback failed",
                               e.what()));
    } catch (...) {
      throw Error("run_sharded_sweep: on_cell callback failed");
    }
  }
}

}  // namespace hms::sim
