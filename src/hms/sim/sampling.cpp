#include "hms/sim/sampling.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <string>
#include <string_view>

#include "hms/common/env.hpp"
#include "hms/common/error.hpp"
#include "hms/common/random.hpp"
#include "hms/trace/chunked_trace.hpp"
#include "hms/trace/interval_profile.hpp"

namespace hms::sim {

namespace {

using Feature = std::array<double, trace::IntervalSignature::kFeatures>;

double dist2(const Feature& a, const Feature& b) {
  double d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double t = a[i] - b[i];
    d += t * t;
  }
  return d;
}

/// Counters per level in the flattened snapshot vector.
constexpr std::size_t kCountersPerLevel = 12;

void flatten(const cache::HierarchyProfile& p, std::vector<std::uint64_t>& out) {
  out.resize(p.levels.size() * kCountersPerLevel);
  std::size_t i = 0;
  for (const auto& lv : p.levels) {
    out[i++] = lv.loads;
    out[i++] = lv.stores;
    out[i++] = lv.load_bytes;
    out[i++] = lv.store_bytes;
    out[i++] = lv.cache_stats.load_hits;
    out[i++] = lv.cache_stats.load_misses;
    out[i++] = lv.cache_stats.store_hits;
    out[i++] = lv.cache_stats.store_misses;
    out[i++] = lv.cache_stats.evictions;
    out[i++] = lv.cache_stats.writebacks;
    out[i++] = lv.cache_stats.prefetch_fills;
    out[i++] = lv.cache_stats.prefetch_useful;
  }
}

std::uint64_t round_counter(double v) {
  return v <= 0 ? 0 : static_cast<std::uint64_t>(std::llround(v));
}

/// Writes a flattened counter vector (already scaled/summed, in doubles)
/// back into a profile whose level structure matches.
void unflatten(const std::vector<double>& counters,
               cache::HierarchyProfile& p) {
  std::size_t i = 0;
  for (auto& lv : p.levels) {
    lv.loads = round_counter(counters[i++]);
    lv.stores = round_counter(counters[i++]);
    lv.load_bytes = round_counter(counters[i++]);
    lv.store_bytes = round_counter(counters[i++]);
    lv.cache_stats.load_hits = round_counter(counters[i++]);
    lv.cache_stats.load_misses = round_counter(counters[i++]);
    lv.cache_stats.store_hits = round_counter(counters[i++]);
    lv.cache_stats.store_misses = round_counter(counters[i++]);
    lv.cache_stats.evictions = round_counter(counters[i++]);
    lv.cache_stats.writebacks = round_counter(counters[i++]);
    lv.cache_stats.prefetch_fills = round_counter(counters[i++]);
    lv.cache_stats.prefetch_useful = round_counter(counters[i++]);
  }
}

}  // namespace

SamplingMode default_sampling_mode() {
  const char* env = std::getenv("HMS_SAMPLING");
  const std::string_view mode = env != nullptr ? env : "";
  if (mode.empty() || mode == "full") return SamplingMode::Full;
  if (mode == "simpoint") return SamplingMode::SimPoint;
  throw ConfigError(
      with_context("HMS_SAMPLING", "expected \"full\" or \"simpoint\", got \"" +
                                       std::string(mode) + "\""));
}

std::uint32_t default_sample_k() {
  const std::uint64_t k = env_u64("HMS_SAMPLE_K", 16);
  if (k == 0) {
    throw ConfigError(with_context(
        "HMS_SAMPLE_K",
        "must be >= 1 (0 representatives would leave nothing to replay)"));
  }
  if (k > std::numeric_limits<std::uint32_t>::max()) {
    throw ConfigError(with_context(
        "HMS_SAMPLE_K", "value " + std::to_string(k) + " out of range"));
  }
  return static_cast<std::uint32_t>(k);
}

std::uint32_t default_warmup_chunks() {
  const std::uint64_t w = env_u64("HMS_WARMUP_CHUNKS", 2);
  if (w > std::numeric_limits<std::uint32_t>::max()) {
    throw ConfigError(with_context(
        "HMS_WARMUP_CHUNKS", "value " + std::to_string(w) + " out of range"));
  }
  return static_cast<std::uint32_t>(w);
}

SamplePlan build_sample_plan(const trace::ChunkedTraceBuffer& residual,
                             const trace::IntervalProfile& profile,
                             std::uint32_t k, std::uint32_t warmup_chunks,
                             std::uint64_t seed) {
  check(k >= 1, "build_sample_plan: k must be >= 1");
  SamplePlan plan;
  plan.total_chunks = residual.chunk_count();
  plan.total_accesses = residual.access_count();
  const std::size_t n = plan.total_chunks;
  // Degenerate exactness: with at least one representative per interval
  // there is nothing to estimate — the caller replays the full stream and
  // the result is bit-identical to an unsampled run.
  if (n <= 1 || k >= n || plan.total_accesses == 0) return plan;
  plan.exact = false;

  std::vector<trace::IntervalSignature> sigs = profile.signatures();
  if (sigs.size() != n) {
    // The capture was assembled without an attached profile (synthetic
    // bench streams, deserialized traces): rebuild offline, bit-identical
    // to live observation.
    sigs = trace::IntervalProfile::from_trace(residual).signatures();
  }
  check(sigs.size() == n, "build_sample_plan: signature/chunk misalignment");

  std::vector<Feature> feats(n);
  for (std::size_t i = 0; i < n; ++i) feats[i] = sigs[i].features();

  // --- deterministic seeded k-means++ ----------------------------------
  // Single-threaded with fixed iteration order and lowest-index
  // tie-breaks: the plan must be bit-stable across runs and thread counts.
  SplitMix64 rng(seed ^ 0x51a9'90b5'6e1f'c4d7ull);
  const auto rand01 = [&rng] {
    return static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
  };

  const std::size_t kk = k;
  std::vector<Feature> centers;
  centers.reserve(kk);
  centers.push_back(feats[rng.next() % n]);
  std::vector<double> d2(n);
  while (centers.size() < kk) {
    double total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      double best = dist2(feats[i], centers[0]);
      for (std::size_t c = 1; c < centers.size(); ++c) {
        best = std::min(best, dist2(feats[i], centers[c]));
      }
      d2[i] = best;
      total += best;
    }
    std::size_t pick = 0;
    if (total > 0) {
      const double u = rand01() * total;
      double cum = 0;
      pick = n - 1;  // guard against rounding past the end
      for (std::size_t i = 0; i < n; ++i) {
        cum += d2[i];
        if (cum >= u) {
          pick = i;
          break;
        }
      }
    } else {
      // All remaining points coincide with a center; further centers are
      // redundant but harmless (their clusters drain and are dropped).
      pick = rng.next() % n;
    }
    centers.push_back(feats[pick]);
  }

  // --- Lloyd iterations -------------------------------------------------
  std::vector<std::size_t> assign(n, 0);
  constexpr int kMaxIterations = 25;
  for (int iter = 0; iter < kMaxIterations; ++iter) {
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t best = 0;
      double best_d = dist2(feats[i], centers[0]);
      for (std::size_t c = 1; c < centers.size(); ++c) {
        const double d = dist2(feats[i], centers[c]);
        if (d < best_d) {  // strict: ties keep the lowest center index
          best_d = d;
          best = c;
        }
      }
      if (assign[i] != best) {
        assign[i] = best;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    std::vector<Feature> sums(centers.size(), Feature{});
    std::vector<std::size_t> counts(centers.size(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t f = 0; f < feats[i].size(); ++f) {
        sums[assign[i]][f] += feats[i][f];
      }
      ++counts[assign[i]];
    }
    for (std::size_t c = 0; c < centers.size(); ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its center
      for (std::size_t f = 0; f < centers[c].size(); ++f) {
        centers[c][f] = sums[c][f] / static_cast<double>(counts[c]);
      }
    }
  }

  // --- medoids, weights, shares ----------------------------------------
  std::vector<SampleRep> reps;
  for (std::size_t c = 0; c < centers.size(); ++c) {
    SampleRep rep;
    double best_d = std::numeric_limits<double>::infinity();
    std::size_t medoid = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (assign[i] != c) continue;
      ++rep.members;
      rep.cluster_accesses += residual.chunk_access_count(i);
      const double d = dist2(feats[i], centers[c]);
      if (d < best_d) {  // strict: ties keep the lowest interval index
        best_d = d;
        medoid = i;
      }
    }
    if (rep.members == 0) continue;  // drained cluster: drop it
    rep.chunk = medoid;
    rep.rep_accesses = residual.chunk_access_count(medoid);
    rep.share = static_cast<double>(rep.cluster_accesses) /
                static_cast<double>(plan.total_accesses);
    reps.push_back(rep);
  }
  std::sort(reps.begin(), reps.end(),
            [](const SampleRep& a, const SampleRep& b) {
              return a.chunk < b.chunk;
            });
  plan.reps = std::move(reps);

  // --- step schedule: warming prefix + measured medoid, deduplicated ----
  std::map<std::size_t, double> measured;  // chunk -> weight
  for (const auto& rep : plan.reps) {
    measured[rep.chunk] = static_cast<double>(rep.cluster_accesses) /
                          static_cast<double>(rep.rep_accesses);
  }
  std::map<std::size_t, bool> schedule;  // chunk -> measure
  for (const auto& kv : measured) schedule[kv.first] = true;
  for (const auto& rep : plan.reps) {
    const std::size_t w =
        std::min<std::size_t>(warmup_chunks, rep.chunk);
    for (std::size_t c = rep.chunk - w; c < rep.chunk; ++c) {
      schedule.emplace(c, false);  // a measured chunk keeps its flag
    }
  }
  plan.steps.reserve(schedule.size());
  for (const auto& [chunk, measure] : schedule) {
    SampleStep step;
    step.chunk = chunk;
    step.measure = measure;
    if (measure) step.weight = measured.at(chunk);
    plan.steps.push_back(step);
  }
  return plan;
}

PlanSampler::PlanSampler(const SamplePlan& plan) : plan_(&plan) {
  check(!plan.exact, "PlanSampler: exact plans replay through the plain path");
  rep_deltas_.reserve(plan.reps.size());
}

void PlanSampler::begin_step(const SampleStep& step,
                             const cache::MemoryHierarchy& back) {
  if (!step.measure) return;
  flatten(back.profile(), before_);
  if (weighted_.empty()) weighted_.assign(before_.size(), 0.0);
}

void PlanSampler::end_step(const SampleStep& step,
                           const cache::MemoryHierarchy& back) {
  if (!step.measure) return;
  std::vector<std::uint64_t> after;
  flatten(back.profile(), after);
  std::vector<std::uint64_t> delta(after.size());
  for (std::size_t i = 0; i < after.size(); ++i) {
    delta[i] = after[i] - before_[i];
    weighted_[i] += step.weight * static_cast<double>(delta[i]);
  }
  check(next_rep_ < plan_->reps.size(),
        "PlanSampler: more measured steps than representatives");
  rep_deltas_.push_back(std::move(delta));
  ++next_rep_;
}

cache::HierarchyProfile PlanSampler::estimated_back(
    const cache::MemoryHierarchy& back) const {
  check(next_rep_ == plan_->reps.size(),
        "PlanSampler: plan not fully replayed");
  cache::HierarchyProfile profile = back.profile();
  unflatten(weighted_, profile);
  return profile;
}

std::vector<RepEstimate> PlanSampler::rep_estimates(
    const cache::HierarchyProfile& front,
    const cache::MemoryHierarchy& back) const {
  check(next_rep_ == plan_->reps.size(),
        "PlanSampler: plan not fully replayed");
  std::vector<RepEstimate> out;
  out.reserve(plan_->reps.size());
  const cache::HierarchyProfile structure = back.profile();
  std::vector<double> scaled(weighted_.size(), 0.0);
  for (std::size_t r = 0; r < plan_->reps.size(); ++r) {
    const SampleRep& rep = plan_->reps[r];
    // "The whole stream behaved like this interval": scale the interval's
    // delta to the full trace's access count.
    const double scale = static_cast<double>(plan_->total_accesses) /
                         static_cast<double>(rep.rep_accesses);
    for (std::size_t i = 0; i < scaled.size(); ++i) {
      scaled[i] = scale * static_cast<double>(rep_deltas_[r][i]);
    }
    cache::HierarchyProfile rep_back = structure;
    unflatten(scaled, rep_back);
    RepEstimate est;
    est.share = rep.share;
    est.profile = cache::HierarchyProfile::combine(front, rep_back);
    out.push_back(std::move(est));
  }
  return out;
}

}  // namespace hms::sim
