// HeatMapper — Figures 9 and 10.
//
// The paper generalizes its NMM results by re-pricing the captured NMM
// execution profile (512 MB DRAM cache, 512 B pages) under a hypothetical
// main memory whose read/write latency (Fig. 9) or read/write energy
// (Fig. 10) is a multiple of DRAM's. Because the AMAT and energy models are
// linear in the per-level counts, no re-simulation is needed: each cell is
// an analytic re-evaluation of the same profile (DESIGN.md §5).
#pragma once

#include <string>
#include <vector>

#include "hms/cache/profile.hpp"
#include "hms/model/report.hpp"

namespace hms::sim {

/// One captured (design profile, base report, anchor) triple per workload.
struct HeatMapInput {
  std::string workload;
  cache::HierarchyProfile profile;  ///< NMM design profile
  model::ReferenceAnchor anchor;
  model::DesignReport base;
};

/// A dense multiplier grid with row = write multiplier, col = read
/// multiplier (matching the paper's axes).
struct HeatMapGrid {
  std::vector<double> read_multipliers;
  std::vector<double> write_multipliers;
  /// values[w][r]: suite-average normalized runtime or energy.
  std::vector<std::vector<double>> values;

  [[nodiscard]] double at(std::size_t w, std::size_t r) const {
    return values.at(w).at(r);
  }
};

/// See file comment.
class HeatMapper {
 public:
  explicit HeatMapper(std::vector<HeatMapInput> inputs);

  /// Fig. 9: normalized runtime when the terminal memory's read/write
  /// latency is (read_mult, write_mult) x DRAM latency.
  [[nodiscard]] HeatMapGrid runtime_map(
      const std::vector<double>& read_multipliers,
      const std::vector<double>& write_multipliers) const;

  /// Fig. 10: normalized total energy when the terminal memory's
  /// read/write energy-per-bit is (read_mult, write_mult) x DRAM's.
  [[nodiscard]] HeatMapGrid energy_map(
      const std::vector<double>& read_multipliers,
      const std::vector<double>& write_multipliers) const;

  /// The paper's published multiplier axis (1x..20x).
  [[nodiscard]] static std::vector<double> default_multipliers();

 private:
  /// Returns the profile with its terminal (non-cache) level's technology
  /// replaced by scaled-DRAM parameters.
  [[nodiscard]] static cache::HierarchyProfile repriced(
      const cache::HierarchyProfile& profile, double read_latency_mult,
      double write_latency_mult, double read_energy_mult,
      double write_energy_mult);

  std::vector<HeatMapInput> inputs_;
};

}  // namespace hms::sim
