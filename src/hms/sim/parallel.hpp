// Work pool for parallel config x workload sweeps, with structured failure
// reporting.
//
// Every simulation object (hierarchy, workload, profile) is thread-confined;
// tasks share nothing and results are merged after join, so a plain
// atomic-counter worker loop suffices (no work stealing, no futures).
//
// All policies run every task to completion before deciding what to throw —
// sweep tasks are cheap relative to losing a half-finished grid, and the
// full outcome vector is what the resilience layer (degrade + checkpoint)
// consumes. The policies differ only in how failures surface after join:
//
//   fail_fast    rethrow the first failure, appending a summary of the
//                other (suppressed) failures to its message
//   collect_all  throw one SimulationError enumerating every failure
//   degrade      never throw; the caller reads per-task outcomes from the
//                returned ParallelReport and degrades gracefully
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace hms::sim {

enum class ErrorPolicy { fail_fast, collect_all, degrade };

/// Workers used for "auto" (requested == 0) when the host cannot report
/// its core count: std::thread::hardware_concurrency() returns 0 on such
/// hosts, and falling back to 1 would silently serialize every sweep.
inline constexpr unsigned kFallbackWorkers = 2;

/// Resolves a requested worker count against a probed hardware
/// concurrency: non-zero requests pass through untouched; 0 ("auto")
/// resolves to `hardware`, or to kFallbackWorkers when the probe itself
/// returned 0 (unknown host).
[[nodiscard]] unsigned resolve_workers(unsigned requested,
                                       unsigned hardware) noexcept;

/// resolve_workers with hardware = std::thread::hardware_concurrency().
[[nodiscard]] unsigned resolve_workers(unsigned requested) noexcept;

/// `skipped` marks tasks never claimed because a process interrupt was
/// observed first (ParallelOptions::stop_on_interrupt); they were not
/// attempted, carry no failure, and on_complete is not invoked for them.
enum class TaskOutcome { ok, failed, skipped };

/// One unit of work. `transient` opts the task into the bounded-retry
/// mechanism (ParallelOptions::max_retries); retries re-run the task
/// immediately on the same worker, so retry order is deterministic per task.
struct ParallelTask {
  std::string label;
  std::function<void()> fn;
  bool transient = false;
};

/// Post-run record for one task, index-aligned with the input vector.
struct TaskReport {
  std::string label;
  TaskOutcome outcome = TaskOutcome::ok;
  /// Total attempts made (1 = succeeded or failed without retry).
  std::uint32_t attempts = 1;
  /// what() of the last failed attempt; empty on success.
  std::string error;
};

struct ParallelOptions {
  /// Worker threads (0 = std::thread::hardware_concurrency).
  unsigned threads = 0;
  ErrorPolicy policy = ErrorPolicy::fail_fast;
  /// Extra attempts granted to tasks marked transient.
  std::uint32_t max_retries = 0;
  /// Invoked once per task, right after it settles (serialized under the
  /// pool's mutex, so callbacks may touch shared state without locking).
  /// Used by the sweep layer to append per-config checkpoints as soon as a
  /// config's last cell finishes. Exceptions escaping the callback abort
  /// the run with hms::Error after all workers join.
  std::function<void(std::size_t index, const TaskReport&)> on_complete;
  /// Stop claiming new tasks once the process interrupt flag is raised
  /// (SIGINT/SIGTERM via ScopedSignalHandlers, or raise_interrupt in
  /// tests). In-flight tasks finish; unclaimed ones settle as
  /// TaskOutcome::skipped. The caller is expected to notice the interrupt
  /// after join and abort result assembly.
  bool stop_on_interrupt = false;
  /// Base delay for deterministic exponential backoff between retry
  /// attempts of transient tasks (common/backoff.hpp). 0 = immediate
  /// retry, the historical behavior.
  std::uint64_t retry_backoff_ms = 0;
  /// Seed mixed (with the task index) into the backoff jitter so retry
  /// timing is reproducible run-to-run yet decorrelated across tasks.
  std::uint64_t backoff_seed = 0;
};

struct ParallelReport {
  std::vector<TaskReport> tasks;
  std::size_t failures = 0;
  [[nodiscard]] bool ok() const noexcept { return failures == 0; }
  /// "3 task(s) failed: a: ...; b: ...; ..." capped at `max_messages`.
  [[nodiscard]] std::string summary(std::size_t max_messages = 3) const;
};

/// Runs every task over `options.threads` workers and returns the per-task
/// outcome vector. Throws according to `options.policy` (see file comment).
ParallelReport run_parallel(std::vector<ParallelTask> tasks,
                            const ParallelOptions& options);

/// Legacy entry point: unlabeled tasks, fail_fast policy. Kept because most
/// call sites want exactly that; the rethrown error carries the suppressed
/// failure summary like the structured overload.
void run_parallel(std::vector<std::function<void()>> tasks,
                  unsigned threads = 0);

}  // namespace hms::sim
