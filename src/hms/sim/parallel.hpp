// Minimal work pool for parallel config x workload sweeps.
//
// Every simulation object (hierarchy, workload, profile) is thread-confined;
// tasks share nothing and results are merged after join, so a plain
// atomic-counter worker loop suffices (no work stealing, no futures).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace hms::sim {

/// Runs every task, distributing them over `threads` worker threads
/// (0 = std::thread::hardware_concurrency). Exceptions thrown by tasks are
/// collected; the first one is rethrown after all workers join.
void run_parallel(std::vector<std::function<void()>> tasks,
                  unsigned threads = 0);

}  // namespace hms::sim
