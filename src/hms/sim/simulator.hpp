// Simulator: executes a workload online against a hierarchy, and the
// front/back capture utilities behind the experiment runner.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "hms/cache/hierarchy.hpp"
#include "hms/designs/design.hpp"
#include "hms/sim/sampling.hpp"
#include "hms/trace/chunked_trace.hpp"
#include "hms/trace/interval_profile.hpp"
#include "hms/workloads/registry.hpp"
#include "hms/workloads/workload.hpp"

namespace hms::trace {
class TraceStore;
}  // namespace hms::trace

namespace hms::sim {

/// Runs `workload` directly into `hierarchy` (full online simulation) and
/// returns the hierarchy's profile.
[[nodiscard]] cache::HierarchyProfile simulate(workloads::Workload& workload,
                                               cache::MemoryHierarchy& h);

/// Everything the experiment layer needs from one front (L1-L3) pass of a
/// workload: the residual stream, the front profile, and workload metadata.
struct FrontCapture {
  std::string workload_name;
  workloads::WorkloadInfo info;
  std::uint64_t footprint_bytes = 0;
  std::vector<workloads::AddressRange> ranges;  ///< for the NDM oracle
  cache::HierarchyProfile front_profile;
  /// Post-L3 loads + dirty write-backs, stored compressed (~3-6x smaller
  /// than the former flat buffer) in independently decodable chunks.
  trace::ChunkedTraceBuffer residual;
  /// Per-chunk behavior signatures, accumulated inline during capture
  /// (signature i describes residual chunk i) — the sampling layer's
  /// clustering input. Detached from the buffer before the capture is
  /// returned, so moving a FrontCapture is safe.
  trace::IntervalProfile interval_profile;
};

/// Instantiates the named workload, runs it through the factory's L1-L3
/// front once, and captures the residual stream.
[[nodiscard]] FrontCapture capture_front(
    const std::string& workload_name, const workloads::WorkloadParams& params,
    const designs::DesignFactory& factory);

/// Reads HMS_TRACE_CACHE: the persistent trace-store directory, or empty
/// (the default) for no store.
[[nodiscard]] std::string default_trace_cache_dir();

/// The trace-store key of one front capture: a pure function of everything
/// that determines the captured bytes — workload name, the resolved
/// params, the factory's capacity scale (the L1-L3 front is fully
/// determined by it), and the trace encoder version. Design options and
/// the technology registry shape back designs only, so they are
/// deliberately not mixed in.
[[nodiscard]] std::uint64_t capture_hash(
    const std::string& workload_name, const workloads::WorkloadParams& params,
    const designs::DesignFactory& factory);

/// capture_front with a persistent trace store in front of the simulation.
/// Takes the "sim/capture_front" fault hit exactly once, hit or miss, so
/// armings keep their serial meaning; then tries `store` (nullptr = no
/// cache, plain capture) before running the workload. A store hit decodes
/// straight from the CRC-verified encoded bytes; any load failure —
/// corruption, hash or key-echo mismatch, I/O error, an injected
/// "trace/read" fault — falls back to a fresh capture, which is then
/// appended back best-effort (append failures are swallowed; the capture
/// is still returned). Cancellation (watchdog / interrupt) outranks the
/// cache and propagates.
[[nodiscard]] FrontCapture capture_front_cached(
    const std::string& workload_name, const workloads::WorkloadParams& params,
    const designs::DesignFactory& factory, const trace::TraceStore* store);

/// Replays a capture's residual stream into a design's back hierarchy and
/// returns the combined (front + back) profile. With a non-exact `plan`,
/// only the plan's steps are fed (warming prefixes warm-only, measured
/// chunks snapshot-delta'd) and the returned profile is the weighted
/// estimate; `reps` (when non-null) receives the per-representative
/// whole-trace extrapolations for error bars. A null or exact plan replays
/// the full stream — bit-identical to the pre-sampling behavior.
[[nodiscard]] cache::HierarchyProfile replay_back(
    const FrontCapture& capture, cache::MemoryHierarchy& back,
    const SamplePlan* plan = nullptr, std::vector<RepEstimate>* reps = nullptr);

/// Per-back result of replay_back_many. A failed back carries the raw error
/// message (no context prefix; callers add "config X / workload Y").
struct BackReplayOutcome {
  bool ok = false;
  cache::HierarchyProfile profile;  ///< combined front+back when ok
  std::string error;                ///< raw what() when !ok
  /// Per-representative extrapolations when the replay was sampled (empty
  /// for full replays); feeds the error-bar math in the experiment layer.
  std::vector<RepEstimate> reps;
};

/// Chunk-major multi-config replay: decodes each residual chunk once into a
/// scratch batch and feeds it to every still-live back before advancing, so
/// N config sweeps stream the (compressed) trace from memory once instead
/// of N times. Each back observes the identical ordered stream as a
/// standalone replay_back, so profiles are bit-identical. A back that
/// throws mid-stream is dropped from the chunk loop and reported failed;
/// the others continue. Fault sites: one "sim/replay_back" hit per back, in
/// order, before any decoding, plus "trace/decode_chunk" per chunk.
[[nodiscard]] std::vector<BackReplayOutcome> replay_back_many(
    const FrontCapture& capture,
    std::span<cache::MemoryHierarchy* const> backs,
    const SamplePlan* plan = nullptr);

}  // namespace hms::sim
