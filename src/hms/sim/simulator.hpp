// Simulator: executes a workload online against a hierarchy, and the
// front/back capture utilities behind the experiment runner.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hms/cache/hierarchy.hpp"
#include "hms/designs/design.hpp"
#include "hms/trace/trace_buffer.hpp"
#include "hms/workloads/registry.hpp"
#include "hms/workloads/workload.hpp"

namespace hms::sim {

/// Runs `workload` directly into `hierarchy` (full online simulation) and
/// returns the hierarchy's profile.
[[nodiscard]] cache::HierarchyProfile simulate(workloads::Workload& workload,
                                               cache::MemoryHierarchy& h);

/// Everything the experiment layer needs from one front (L1-L3) pass of a
/// workload: the residual stream, the front profile, and workload metadata.
struct FrontCapture {
  std::string workload_name;
  workloads::WorkloadInfo info;
  std::uint64_t footprint_bytes = 0;
  std::vector<workloads::AddressRange> ranges;  ///< for the NDM oracle
  cache::HierarchyProfile front_profile;
  trace::TraceBuffer residual;  ///< post-L3 loads + dirty write-backs
};

/// Instantiates the named workload, runs it through the factory's L1-L3
/// front once, and captures the residual stream.
[[nodiscard]] FrontCapture capture_front(
    const std::string& workload_name, const workloads::WorkloadParams& params,
    const designs::DesignFactory& factory);

/// Replays a capture's residual stream into a design's back hierarchy and
/// returns the combined (front + back) profile.
[[nodiscard]] cache::HierarchyProfile replay_back(
    const FrontCapture& capture, cache::MemoryHierarchy& back);

}  // namespace hms::sim
