#include "hms/sim/parallel.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace hms::sim {

void run_parallel(std::vector<std::function<void()>> tasks,
                  unsigned threads) {
  if (tasks.empty()) return;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  threads = std::min<unsigned>(threads,
                               static_cast<unsigned>(tasks.size()));
  if (threads <= 1) {
    for (auto& task : tasks) task();
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks.size()) return;
      try {
        tasks[i]();
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace hms::sim
