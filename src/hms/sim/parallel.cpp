#include "hms/sim/parallel.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "hms/common/backoff.hpp"
#include "hms/common/cancel.hpp"
#include "hms/common/error.hpp"

namespace hms::sim {

namespace {

/// Runs one task with its retry budget and fills in its report.
/// Returns the exception of the last failed attempt (nullptr on success).
std::exception_ptr run_one(const ParallelTask& task,
                           const ParallelOptions& options, std::size_t index,
                           TaskReport& report) {
  report.label = task.label;
  const std::uint32_t budget = 1 + (task.transient ? options.max_retries : 0);
  std::exception_ptr last_error;
  for (std::uint32_t attempt = 1; attempt <= budget; ++attempt) {
    report.attempts = attempt;
    try {
      task.fn();
      report.outcome = TaskOutcome::ok;
      report.error.clear();
      return nullptr;
    } catch (const CancelledError& e) {
      report.error = e.what();
      last_error = std::current_exception();
      // A timed-out attempt may be retried (the task re-arms its own
      // deadline); an interrupt ends the retry loop outright.
      if (e.kind() == CancelKind::interrupt) break;
    } catch (const std::exception& e) {
      report.error = e.what();
      last_error = std::current_exception();
    } catch (...) {
      report.error = "unknown exception";
      last_error = std::current_exception();
    }
    if (attempt < budget && options.retry_backoff_ms != 0) {
      const std::uint64_t delay = backoff_delay_ms(
          attempt - 1, options.backoff_seed ^ index, options.retry_backoff_ms);
      if (!backoff_sleep(delay)) break;  // interrupted mid-wait
    }
  }
  report.outcome = TaskOutcome::failed;
  return last_error;
}

std::string prefixed(const TaskReport& report) {
  return report.label.empty() ? report.error
                              : report.label + ": " + report.error;
}

}  // namespace

unsigned resolve_workers(unsigned requested, unsigned hardware) noexcept {
  if (requested != 0) return requested;
  return hardware != 0 ? hardware : kFallbackWorkers;
}

unsigned resolve_workers(unsigned requested) noexcept {
  return resolve_workers(requested, std::thread::hardware_concurrency());
}

std::string ParallelReport::summary(std::size_t max_messages) const {
  std::string out = std::to_string(failures) + " task(s) failed";
  if (failures == 0) return out;
  out += ": ";
  std::size_t shown = 0;
  for (const auto& task : tasks) {
    if (task.outcome != TaskOutcome::failed) continue;
    if (shown == max_messages) {
      out += "; ...";
      break;
    }
    if (shown > 0) out += "; ";
    out += prefixed(task);
    ++shown;
  }
  return out;
}

ParallelReport run_parallel(std::vector<ParallelTask> tasks,
                            const ParallelOptions& options) {
  ParallelReport report;
  report.tasks.resize(tasks.size());
  if (tasks.empty()) return report;

  unsigned threads = std::min<unsigned>(resolve_workers(options.threads),
                                        static_cast<unsigned>(tasks.size()));

  // First failure in task order (not completion order) would be racy to
  // track exactly; "first observed" is what fail_fast rethrows, which is
  // deterministic in the single-threaded case used by tests.
  std::exception_ptr first_error;
  std::exception_ptr callback_error;
  std::mutex mutex;

  auto settle = [&](std::size_t i, std::exception_ptr error) {
    const std::lock_guard<std::mutex> lock(mutex);
    if (error) {
      ++report.failures;
      if (!first_error) first_error = error;
    }
    if (options.on_complete && !callback_error) {
      try {
        options.on_complete(i, report.tasks[i]);
      } catch (...) {
        callback_error = std::current_exception();
      }
    }
  };

  // Claim-or-skip: once the interrupt flag is up (and the caller opted
  // in), remaining tasks are recorded as skipped without running or
  // invoking on_complete — the caller aborts assembly after join.
  auto run_or_skip = [&](std::size_t i) {
    if (options.stop_on_interrupt && interrupt_signal() != 0) {
      report.tasks[i].label = tasks[i].label;
      report.tasks[i].outcome = TaskOutcome::skipped;
      report.tasks[i].attempts = 0;
      report.tasks[i].error = "skipped: interrupted before start";
      return;
    }
    settle(i, run_one(tasks[i], options, i, report.tasks[i]));
  };

  if (threads <= 1) {
    for (std::size_t i = 0; i < tasks.size(); ++i) run_or_skip(i);
  } else {
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
      while (true) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= tasks.size()) return;
        run_or_skip(i);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  if (callback_error) {
    try {
      std::rethrow_exception(callback_error);
    } catch (const std::exception& e) {
      throw Error(with_context("run_parallel: on_complete callback failed",
                               e.what()));
    } catch (...) {
      throw Error("run_parallel: on_complete callback failed");
    }
  }

  if (report.failures == 0 || options.policy == ErrorPolicy::degrade) {
    return report;
  }
  if (options.policy == ErrorPolicy::collect_all) {
    throw SimulationError(report.summary(report.failures));
  }
  // fail_fast: rethrow the first failure; if others were suppressed, the
  // original exception type is traded for SimulationError so their count
  // and first few messages can ride along instead of vanishing.
  if (report.failures == 1) std::rethrow_exception(first_error);
  std::string message;
  try {
    std::rethrow_exception(first_error);
  } catch (const std::exception& e) {
    message = e.what();
  } catch (...) {
    message = "unknown exception";
  }
  ParallelReport suppressed;
  suppressed.failures = report.failures - 1;
  bool skipped_first = false;
  for (const auto& task : report.tasks) {
    if (task.outcome == TaskOutcome::failed && !skipped_first &&
        task.error == message) {
      // Best-effort: drop one copy of the rethrown error from the summary.
      skipped_first = true;
      continue;
    }
    suppressed.tasks.push_back(task);
  }
  throw SimulationError(message + " [suppressed " +
                        suppressed.summary() + "]");
}

void run_parallel(std::vector<std::function<void()>> tasks,
                  unsigned threads) {
  std::vector<ParallelTask> wrapped;
  wrapped.reserve(tasks.size());
  for (auto& fn : tasks) wrapped.push_back({"", std::move(fn), false});
  ParallelOptions options;
  options.threads = threads;
  options.policy = ErrorPolicy::fail_fast;
  (void)run_parallel(std::move(wrapped), options);
}

}  // namespace hms::sim
