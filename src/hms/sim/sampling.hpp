// SimPoint-style statistical sampling of the residual replay.
//
// Full-stream replay makes every design config consume every residual chunk,
// so sweep cost scales with footprint no matter how the grid is
// parallelized. This layer converts the scale knob into a sampling knob:
// cluster the trace's intervals (= residual chunks, via the per-chunk
// signatures of trace/interval_profile.hpp) with deterministic seeded
// k-means++, replay one medoid representative per cluster behind a
// functional-warming prefix of W preceding chunks (fed warm-only: tag and
// stride state become realistic, but the measured counters exclude them),
// and scale each representative's per-interval stat deltas by its cluster's
// access-weighted share to estimate the full-stream profile.
//
// Determinism: clustering is single-threaded with a fixed iteration order,
// lowest-index tie-breaks, and SplitMix64-derived draws, so the plan — and
// therefore every estimated result — is bit-stable across runs, thread
// counts, and replay modes. Degenerate exactness: when k >= interval count
// the plan is flagged `exact` and callers replay the full stream through
// the ordinary path, bit-identical to HMS_SAMPLING=full.
//
// Error bars: each representative also yields a whole-trace extrapolation
// ("the full stream behaved like this interval"); evaluating the model per
// representative and taking the share-weighted standard deviation across
// them gives the per-metric spread attached to sampled results.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hms/cache/hierarchy.hpp"
#include "hms/cache/profile.hpp"

namespace hms::trace {
class ChunkedTraceBuffer;
class IntervalProfile;
}  // namespace hms::trace

namespace hms::sim {

/// How a sweep replays each cell's residual stream.
enum class SamplingMode : std::uint8_t {
  Full,      ///< every chunk, exact counters (the pre-sampling behavior)
  SimPoint,  ///< representative chunks, weighted estimates + error bars
};

/// Reads HMS_SAMPLING: unset, empty or "full" = Full, "simpoint" =
/// SimPoint, anything else throws ConfigError naming the variable.
[[nodiscard]] SamplingMode default_sampling_mode();

/// Reads HMS_SAMPLE_K (strict via env_u64): target cluster count. Unset or
/// empty = 16. 0 is rejected explicitly — zero representatives would leave
/// nothing to replay.
[[nodiscard]] std::uint32_t default_sample_k();

/// Reads HMS_WARMUP_CHUNKS (strict via env_u64): functional-warming prefix
/// length W per representative. Unset or empty = 2; 0 disables warming.
[[nodiscard]] std::uint32_t default_warmup_chunks();

/// One chunk a sampled replay feeds, in ascending chunk order.
struct SampleStep {
  std::size_t chunk = 0;
  /// False = warm-only (tag state, no measurement); true = measured, with
  /// the before/after counter delta scaled by `weight`.
  bool measure = false;
  /// Cluster accesses / representative accesses (measured steps only).
  double weight = 1.0;
};

/// One cluster representative (medoid interval).
struct SampleRep {
  std::size_t chunk = 0;    ///< medoid chunk index
  std::size_t members = 0;  ///< intervals in the cluster
  std::uint64_t cluster_accesses = 0;
  std::uint64_t rep_accesses = 0;
  /// cluster_accesses / total trace accesses — the weight this
  /// representative carries in estimates and error bars.
  double share = 0.0;
};

/// The replay schedule for one workload's residual stream.
struct SamplePlan {
  /// True when the plan is the whole stream (Full mode, k >= intervals, or
  /// a trivially small trace): callers replay plainly and the result is
  /// bit-identical to an unsampled run. `steps`/`reps` are empty.
  bool exact = true;
  std::size_t total_chunks = 0;
  std::uint64_t total_accesses = 0;
  std::vector<SampleStep> steps;  ///< ascending by chunk, unique
  std::vector<SampleRep> reps;    ///< ascending by chunk; one per measured step
};

/// Clusters `residual`'s interval signatures and builds the replay plan.
/// `profile` must align with the buffer (signature i = chunk i); when it
/// does not (e.g. a synthetic capture assembled without an attached
/// profile), signatures are rebuilt offline via IntervalProfile::from_trace
/// — bit-identical to live observation. Deterministic in (residual, k,
/// warmup_chunks, seed).
[[nodiscard]] SamplePlan build_sample_plan(
    const trace::ChunkedTraceBuffer& residual,
    const trace::IntervalProfile& profile, std::uint32_t k,
    std::uint32_t warmup_chunks, std::uint64_t seed);

/// Per-metric spread (weighted standard deviation across representatives)
/// of a sampled estimate, in normalized-report units. All zeros for exact
/// results.
struct MetricSpread {
  double runtime = 0;
  double dynamic = 0;
  double leakage = 0;
  double total_energy = 0;
  double edp = 0;

  [[nodiscard]] bool operator==(const MetricSpread&) const = default;
};

/// One representative's whole-trace extrapolation: the combined front+back
/// profile as if the entire residual stream behaved like this interval,
/// with the share it carries. The experiment layer model-evaluates these to
/// derive MetricSpread.
struct RepEstimate {
  double share = 0.0;
  cache::HierarchyProfile profile;
};

/// Accumulates weighted per-interval counter deltas for one back hierarchy
/// replaying a non-exact plan. Usage, per step in plan order:
///
///   sampler.begin_step(step, back);   // snapshot (measured steps only)
///   back.access_batch(decoded chunk);
///   sampler.end_step(step, back);     // delta, weight, accumulate
///
/// then estimated_back() / rep_estimates() once the plan is exhausted.
/// Warm-only steps cost nothing here; their traffic lands in the back's raw
/// counters but is excluded from every measured delta.
class PlanSampler {
 public:
  explicit PlanSampler(const SamplePlan& plan);

  void begin_step(const SampleStep& step, const cache::MemoryHierarchy& back);
  void end_step(const SampleStep& step, const cache::MemoryHierarchy& back);

  /// The estimated full-stream back profile: the back's level structure
  /// with every counter replaced by the rounded weighted-delta sum.
  [[nodiscard]] cache::HierarchyProfile estimated_back(
      const cache::MemoryHierarchy& back) const;

  /// Whole-trace extrapolation per representative, each combined with
  /// `front` (for error bars; see file comment).
  [[nodiscard]] std::vector<RepEstimate> rep_estimates(
      const cache::HierarchyProfile& front,
      const cache::MemoryHierarchy& back) const;

 private:
  const SamplePlan* plan_;
  std::vector<std::uint64_t> before_;        ///< snapshot at begin_step
  std::vector<double> weighted_;             ///< sum of weight * delta
  std::vector<std::vector<std::uint64_t>> rep_deltas_;  ///< per rep, in order
  std::size_t next_rep_ = 0;
};

}  // namespace hms::sim
